// Platform comparison through the minicl (OpenCL-shaped) host API:
// run the same gamma kernel on all four simulated host+accelerator
// combinations, read the results back over the modeled PCIe link, and
// report runtime + energy per invocation — the paper's §IV evaluation
// in miniature, driven entirely through the public runtime API.
#include <iostream>

#include "common/table.h"
#include "minicl/devices.h"
#include "minicl/runtime.h"
#include "power/energy_protocol.h"

int main() {
  using namespace dwi;

  minicl::KernelLaunch launch;
  launch.config = rng::config(rng::ConfigId::kConfig1);
  launch.transform = launch.config.fixed_arch_transform;
  // §IV-B defaults: 2,621,440 scenarios × 240 sectors, v = 1.39.

  std::cout << "Kernel: " << launch.config.name << " ("
            << rng::to_string(launch.transform) << "), "
            << launch.total_outputs << " gamma RNs (~"
            << TextTable::num(
                   static_cast<double>(launch.total_outputs) * 4 / 1e9, 2)
            << " GB)\n\n";

  TextTable t;
  t.set_header({"Combination", "Kernel [ms]", "Read-back [ms]",
                "Total [ms]", "E_dyn/invocation [J]"});
  double best_total = 1e300;
  std::string best_name;
  for (auto& dev : minicl::default_devices()) {
    minicl::CommandQueue queue(*dev);
    auto kernel_event = queue.enqueue_kernel(launch);
    auto read_event = queue.enqueue_read(
        launch.total_outputs * 4, minicl::BufferCombining::kDeviceLevel, 6);
    const double total = queue.finish();

    const auto energy = power::run_energy_protocol(*dev, launch);

    t.add_row({dev->name(), TextTable::num(kernel_event->duration() * 1e3, 0),
               TextTable::num(read_event->duration() * 1e3, 0),
               TextTable::num(total * 1e3, 0),
               TextTable::num(energy.energy.per_invocation.value, 1)});
    if (total < best_total) {
      best_total = total;
      best_name = dev->name();
    }
  }
  t.render(std::cout);
  std::cout << "\nFastest end-to-end: " << best_name << "\n"
            << "(paper, Config1: FPGA wins at 701 ms kernel time — "
               "5.5x/3.5x/1.4x vs CPU/GPU/PHI)\n";
  return 0;
}
