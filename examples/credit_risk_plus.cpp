// CreditRisk+ end to end: the paper's motivating application (§II-D4).
//
// A synthetic loan portfolio over four economic sectors is analyzed
// with the CreditRisk+ Monte-Carlo model. The gamma-distributed sector
// variables are produced by the *FPGA pipeline* (decoupled work-items,
// Listing 1/2 functional execution), streamed into the packed device
// buffer, read back, and consumed scenario-major by the credit engine.
// Outputs: loss distribution summary, VaR and expected shortfall at
// the usual confidence levels, checked against the analytic moments.
#include <cmath>
#include <iostream>
#include <span>

#include "common/table.h"
#include "core/decoupled_work_items.h"
#include "finance/contributions.h"
#include "finance/creditrisk_plus.h"
#include "finance/panjer.h"

int main() {
  using namespace dwi;

  // --- portfolio ---------------------------------------------------------
  std::vector<finance::Sector> sectors = {
      {1.39, "manufacturing"},  // the paper's representative variance
      {0.75, "services"},
      {2.10, "energy"},
      {0.40, "retail"},
  };
  const auto portfolio = finance::Portfolio::synthetic(500, sectors, 20240706);
  std::cout << "Portfolio: " << portfolio.num_obligors() << " obligors, "
            << portfolio.num_sectors() << " sectors\n"
            << "expected loss (analytic): " << portfolio.expected_loss()
            << "\n\n";

  // --- gamma generation on the FPGA pipeline ------------------------------
  constexpr std::uint64_t kScenarios = 8192;
  const std::size_t n_sectors = sectors.size();

  // One work-item per sector: work-item k produces that sector's
  // variance stream; the host interleaves them scenario-major.
  core::DecoupledConfig task;
  task.work_items = static_cast<unsigned>(n_sectors);
  task.floats_per_work_item = kScenarios;
  std::cout << "Generating " << kScenarios * n_sectors
            << " sector gammas on " << task.work_items
            << " decoupled work-items...\n";
  const auto result = core::run_gamma_task(task, [&](unsigned wid) {
    core::GammaWorkItemConfig cfg;
    cfg.app = rng::config(rng::ConfigId::kConfig1);
    cfg.sector_variances = {
        static_cast<float>(sectors[wid].variance)};
    cfg.outputs_per_sector = kScenarios;
    cfg.work_item_id = wid;
    cfg.seed = 99;
    return cfg;
  });

  // Interleave work-item slices into scenario-major layout.
  std::vector<float> gammas(kScenarios * n_sectors);
  for (std::size_t k = 0; k < n_sectors; ++k) {
    const auto slice =
        result.work_item_slice(static_cast<unsigned>(k), kScenarios);
    for (std::uint64_t s = 0; s < kScenarios; ++s) {
      gammas[s * n_sectors + k] = slice[s];
    }
  }

  // --- Monte-Carlo credit simulation --------------------------------------
  finance::McConfig mc;
  mc.num_scenarios = kScenarios;
  const auto losses = finance::simulate_losses(
      portfolio, mc,
      finance::buffered_gamma_source(std::span<const float>(gammas),
                                     n_sectors));

  TextTable t;
  t.set_header({"Measure", "Value"});
  t.add_row({"scenarios", TextTable::integer(
                              static_cast<long long>(losses.scenarios()))});
  t.add_row({"mean loss (MC)", TextTable::num(losses.mean(), 1)});
  t.add_row({"mean loss (analytic)",
             TextTable::num(portfolio.expected_loss(), 1)});
  t.add_row({"loss stddev (MC)",
             TextTable::num(std::sqrt(losses.variance()), 1)});
  t.add_row({"loss stddev (analytic)",
             TextTable::num(std::sqrt(portfolio.analytic_loss_variance()), 1)});
  t.add_row({"VaR 99%", TextTable::num(losses.value_at_risk(0.99), 1)});
  t.add_row({"VaR 99.9%", TextTable::num(losses.value_at_risk(0.999), 1)});
  t.add_row({"ES 99%", TextTable::num(losses.expected_shortfall(0.99), 1)});
  t.render(std::cout);

  // --- analytic cross-check: the CSFB Panjer recursion ------------------
  std::cout << "\n--- Analytic CreditRisk+ (Panjer recursion) vs "
               "Monte-Carlo ---\n";
  const double unit = finance::default_loss_unit(portfolio) / 2.0;
  const auto analytic =
      finance::creditrisk_plus_analytic(portfolio, unit, 8192);
  TextTable a;
  a.set_header({"Measure", "Monte-Carlo (FPGA gammas)", "Analytic"});
  a.add_row({"mean", TextTable::num(losses.mean(), 1),
             TextTable::num(analytic.mean(), 1)});
  a.add_row({"stddev", TextTable::num(std::sqrt(losses.variance()), 1),
             TextTable::num(std::sqrt(analytic.variance()), 1)});
  a.add_row({"VaR 99%", TextTable::num(losses.value_at_risk(0.99), 1),
             TextTable::num(analytic.value_at_risk(0.99), 1)});
  a.add_row({"VaR 99.9%", TextTable::num(losses.value_at_risk(0.999), 1),
             TextTable::num(analytic.value_at_risk(0.999), 1)});
  a.render(std::cout);

  // --- who drives the tail? Euler allocation -----------------------------
  std::cout << "\n--- Top-5 expected-shortfall contributors (95% tail) "
               "---\n";
  finance::McConfig cmc;
  cmc.num_scenarios = 4096;
  const auto contrib = finance::shortfall_contributions(
      portfolio, cmc, finance::sampler_gamma_source(portfolio, 7), 0.95);
  TextTable c;
  c.set_header({"Obligor", "E[L_i]", "ES contribution", "Tail multiple"});
  auto ranked = contrib.ranked();
  for (std::size_t i = 0; i < 5 && i < ranked.size(); ++i) {
    c.add_row({TextTable::integer(static_cast<long long>(ranked[i].obligor)),
               TextTable::num(ranked[i].expected_loss, 0),
               TextTable::num(ranked[i].shortfall_contribution, 0),
               TextTable::num(ranked[i].shortfall_contribution /
                                  std::max(1.0, ranked[i].expected_loss),
                              1) + "x"});
  }
  c.render(std::cout);

  const double mean_err =
      std::abs(losses.mean() / portfolio.expected_loss() - 1.0);
  const double var_err =
      std::abs(losses.value_at_risk(0.99) / analytic.value_at_risk(0.99) -
               1.0);
  const bool ok = mean_err < 0.05 && var_err < 0.15;
  std::cout << (ok ? "\nOK: Monte-Carlo (FPGA-generated gammas) agrees "
                     "with the analytic model\n"
                   : "\nWARNING: Monte-Carlo deviates from the analytic "
                     "model\n");
  return ok ? 0 : 1;
}
