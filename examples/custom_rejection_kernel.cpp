// Extending the pattern to a different rejection algorithm — the
// paper's §V claim: "the DecoupledWorkItems function ... as well as
// the Transfer block ... can be easily reused or customized to any
// application. The designer just needs to rewrite the application
// function in Listing 2."
//
// Here the application function is a *tail-truncated normal* sampler:
// X ~ N(0,1) conditioned on X > a (a = 2), generated with Robert's
// exponential-proposal rejection method — like the gamma kernel, a
// data-dependent branch whose acceptance depends on the proposal, plus
// enable-gated twisters so rejected iterations never distort the
// uniform streams. The same ComputeFn plugs into both the functional
// dataflow Task (run_decoupled_work_items) and the cycle-level timing
// simulation (fpga::simulate_kernel), so we get the validated output
// distribution AND the throughput estimate in one program.
#include <cmath>
#include <iostream>
#include <memory>
#include <span>

#include "common/bits.h"
#include "core/decoupled_work_items.h"
#include "core/rejection_kernel.h"
#include "fpga/kernel_sim.h"
#include "rng/mersenne_twister.h"
#include "stats/distributions.h"
#include "stats/ks_test.h"
#include "stats/moments.h"

namespace {

using namespace dwi;

constexpr float kThreshold = 2.0f;  // sample N(0,1) | X > 2

/// One pipelined work-item of the truncated-normal kernel: the analogue
/// of Listing 2 for a different rejection method. Implements
/// fpga::ProducerModel so the timing simulator can drive it too.
class TruncatedNormalWorkItem final : public fpga::ProducerModel {
 public:
  explicit TruncatedNormalWorkItem(std::uint32_t seed)
      : mt0_(rng::mt521_params(), seed | 1u),
        mt1_(rng::mt521_params(), (seed * 2654435761u) | 1u),
        lambda_((kThreshold + std::sqrt(kThreshold * kThreshold + 4.0f)) /
                2.0f) {}

  bool produce(float* value) override {
    // Exponential proposal X = a + Exp(λ)/λ; both twisters free-run,
    // but MT1's state only commits when a proposal was drawn — the
    // Listing 3 discipline, reused verbatim.
    const float u0 = uint2float_open0(mt0_.next(true));
    const float x = kThreshold - std::log(u0) / lambda_;
    const float rho =
        std::exp(-0.5f * (x - lambda_) * (x - lambda_));
    const float u1 = uint2float_open0(mt1_.next(true));
    if (u1 <= rho) {
      *value = x;
      return true;
    }
    return false;
  }

 private:
  rng::AdaptedMersenneTwister mt0_;
  rng::AdaptedMersenneTwister mt1_;
  float lambda_;
};

double truncated_normal_cdf(double x) {
  const double tail = 1.0 - stats::normal_cdf(kThreshold);
  if (x <= kThreshold) return 0.0;
  return (stats::normal_cdf(x) - stats::normal_cdf(kThreshold)) / tail;
}

/// The same sampler expressed as a core::RejectionWorkItem attempt —
/// the library-template route to §V's generalization.
struct TruncatedNormalAttempt {
  static constexpr unsigned kUniformSources = 2;
  template <typename U>
  bool operator()(U&& u, float* value) {
    const float lambda =
        (kThreshold + std::sqrt(kThreshold * kThreshold + 4.0f)) / 2.0f;
    const float x =
        kThreshold - std::log(dwi::uint2float_open0(u(0))) / lambda;
    const float rho = std::exp(-0.5f * (x - lambda) * (x - lambda));
    if (dwi::uint2float_open0(u(1)) <= rho) {
      *value = x;
      return true;
    }
    return false;
  }
};

}  // namespace

int main() {
  std::cout << "=== Custom rejection kernel on the decoupled-work-item "
               "pattern ===\n"
            << "Sampling N(0,1) | X > " << kThreshold
            << " (Robert's exponential-proposal rejection)\n\n";

  // --- functional Task: 4 decoupled work-items, real dataflow ----------
  core::DecoupledConfig task;
  task.work_items = 4;
  task.floats_per_work_item = 50'000 - 50'000 % 16;
  const auto result = core::run_decoupled_work_items(
      task, [](unsigned wid, hls::stream<float>& out, std::uint64_t n) {
        TruncatedNormalWorkItem wi(7u + wid * 1299721u);
        std::uint64_t produced = 0;
        float v = 0.0f;
        while (produced < n) {
          if (wi.produce(&v)) {
            out.write(v);
            ++produced;
          }
        }
      });

  const auto xs = result.to_floats();
  stats::RunningMoments m;
  for (float v : xs) m.add(static_cast<double>(v));
  const auto ks = stats::ks_test(std::span<const float>(xs),
                                 truncated_normal_cdf);

  // Analytic mean of the truncated normal: φ(a)/(1-Φ(a)).
  const double a = kThreshold;
  const double expected_mean =
      stats::normal_pdf(a) / (1.0 - stats::normal_cdf(a));
  std::cout << "samples: " << xs.size() << "\n"
            << "mean     = " << m.mean() << " (analytic "
            << expected_mean << ")\n"
            << "min      = " << m.min() << " (must exceed " << a << ")\n"
            << "KS p     = " << ks.p_value << " (D=" << ks.statistic << ")\n";

  // --- timing on the simulated FPGA -------------------------------------
  fpga::KernelSimConfig sim;
  sim.work_items = 8;  // this kernel is small: more pipelines fit
  sim.outputs_per_work_item = 100'000;
  const auto timing = fpga::simulate_kernel(sim, [](unsigned w) {
    return std::make_unique<TruncatedNormalWorkItem>(1000u + w);
  });
  const double throughput =
      static_cast<double>(timing.outputs) /
      timing.seconds_at(200e6) / 1e6;
  std::cout << "\nFPGA timing (8 decoupled work-items @ 200 MHz):\n"
            << "rejection rate: " << timing.rejection_rate() * 100 << " %\n"
            << "throughput:     " << throughput << " Msamples/s\n";

  // --- the same kernel via the library template --------------------------
  // core/rejection_kernel.h packages everything this file hand-rolled
  // (gated sources, delayed counter, quota logic): the designer writes
  // only the attempt functor (TruncatedNormalAttempt above).
  core::RejectionKernelConfig rcfg;
  rcfg.quota = 50'000;
  core::RejectionWorkItem<TruncatedNormalAttempt> templated(rcfg);
  stats::RunningMoments mt_template;
  float tv = 0.0f;
  while (!templated.finished()) {
    if (templated.produce(&tv)) mt_template.add(static_cast<double>(tv));
  }
  std::cout << "\nSame kernel via core::RejectionWorkItem<Attempt>: mean="
            << mt_template.mean() << " (hand-rolled gave " << m.mean()
            << "), rejection=" << templated.rejection_rate() * 100
            << " %\n";

  const bool ok = ks.p_value > 1e-4 && m.min() >= a &&
                  std::abs(m.mean() - expected_mean) < 0.01 &&
                  std::abs(mt_template.mean() - expected_mean) < 0.01;
  std::cout << (ok ? "\nOK: custom kernel validated on the same pattern\n"
                   : "\nWARNING: validation failed\n");
  return ok ? 0 : 1;
}
