// Sampling-as-a-service walkthrough (src/serve).
//
// A SamplingServer turns the paper's decoupled work-items into a
// multi-tenant service: clients submit typed requests (gamma batches,
// CreditRisk+ portfolio jobs), a bounded admission queue applies
// explicit backpressure, and a batch scheduler fans compatible
// requests out over the process-wide exec pool. Every request draws
// from its own jump-ahead substream keyed by (server_seed,
// request_id), so results are bit-identical no matter how requests
// were interleaved, batched or threaded.
//
// This example walks the full surface: mixed async submission,
// synchronous calls, the determinism guarantee (resubmit == replay),
// offline reproduction of a served result without a server, typed
// backpressure on a tiny queue, and the metrics snapshot.
#include <future>
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "finance/portfolio.h"
#include "rng/gamma.h"
#include "serve/sampling_server.h"

int main() {
  using namespace dwi;

  serve::ServeConfig cfg;
  cfg.server_seed = 20240706u;
  cfg.max_batch = 8;
  serve::SamplingServer server(cfg);

  std::cout << "== mixed async workload ==\n";

  // Tenant A: gamma batches for three sector variances.
  std::vector<std::future<serve::GammaResult>> gammas;
  const float alphas[3] = {0.72f, 1.5f, 4.0f};
  for (std::uint64_t i = 0; i < 3; ++i) {
    serve::GammaRequest req;
    req.id = 100 + i;  // client-assigned: the id *is* the substream key
    req.alpha = alphas[i];
    req.scale = 1.39f;
    req.count = 10'000;
    gammas.push_back(server.submit(req));
  }

  // Tenant B: a CreditRisk+ loss distribution over a shared portfolio.
  auto portfolio =
      std::make_shared<const finance::Portfolio>(finance::Portfolio::synthetic(
          64, {{1.39, "representative"}, {0.8, "stable"}}, 7u));
  serve::CreditRiskRequest crq;
  crq.id = 500;
  crq.portfolio = portfolio;
  crq.num_scenarios = 20'000;
  std::future<serve::CreditRiskResult> loss = server.submit(crq);

  for (auto& f : gammas) {
    const serve::GammaResult r = f.get();
    std::cout << "  gamma id=" << r.id << ": " << r.samples.size()
              << " samples, rejection rate "
              << std::fixed << std::setprecision(3)
              << 1.0 - static_cast<double>(r.accepted) /
                           static_cast<double>(r.attempts)
              << "\n";
  }
  const serve::CreditRiskResult cr = loss.get();
  std::cout << "  creditrisk id=" << cr.id << ": mean loss "
            << std::setprecision(2) << cr.mean << ", VaR99.9 " << cr.var999
            << ", ES99.9 " << cr.es999 << " over " << cr.scenarios
            << " scenarios\n";

  std::cout << "== determinism: resubmit replays the stream ==\n";
  serve::GammaRequest probe;
  probe.id = 100;
  probe.alpha = alphas[0];
  probe.scale = 1.39f;
  probe.count = 10'000;
  const serve::GammaResult replay = server.run(probe);
  const serve::GammaResult once = server.run(probe);
  std::cout << "  two runs of id=100 identical: "
            << (replay.samples == once.samples ? "yes" : "NO — BUG")
            << "\n";

  // Offline reproduction: the served result is a pure function of the
  // request's substream — no server needed to recompute it.
  rng::MersenneTwister mt = server.gamma_stream(probe.id);
  rng::GammaSampler sampler(
      rng::GammaConstants::make(probe.alpha, probe.scale), probe.transform);
  std::vector<float> offline(probe.count);
  sampler.sample_block(mt, offline.data(), offline.size());
  std::cout << "  offline recomputation matches served result: "
            << (offline == once.samples ? "yes" : "NO — BUG") << "\n";

  std::cout << "== backpressure on an overloaded server ==\n";
  serve::ServeConfig tiny = cfg;
  tiny.queue_capacity = 4;
  serve::SamplingServer small(tiny);
  std::size_t admitted = 0, rejected = 0;
  std::vector<std::future<serve::GammaResult>> accepted;
  for (std::uint64_t i = 0; i < 64; ++i) {
    serve::GammaRequest req;
    req.id = i + 1;
    req.alpha = 1.0f;
    req.count = 50'000;  // heavy enough to keep the queue busy
    std::future<serve::GammaResult> f;
    switch (small.try_submit(req, &f)) {
      case serve::ServeStatus::kAdmitted:
        ++admitted;
        accepted.push_back(std::move(f));
        break;
      case serve::ServeStatus::kQueueFull:
        ++rejected;  // typed fast-fail: back off, retry, or shed load
        break;
      default:
        break;
    }
  }
  for (auto& f : accepted) (void)f.get();  // every admitted future resolves
  std::cout << "  64 submissions against queue_capacity=4: " << admitted
            << " admitted, " << rejected << " rejected with kQueueFull\n";

  std::cout << "== metrics snapshot ==\n";
  const serve::MetricsSnapshot m = server.metrics();
  std::cout << "  submitted " << m.submitted << ", completed " << m.completed
            << ", batches " << m.batches << " (mean occupancy "
            << std::setprecision(2) << m.mean_batch_occupancy
            << "), p99 latency " << std::setprecision(1)
            << m.latency.p99_seconds * 1e3 << " ms\n";

  server.shutdown();  // idempotent; drains in-flight work
  return 0;
}
