// Quickstart: generate gamma-distributed random numbers with the
// paper's decoupled-work-item FPGA design, functionally executed —
// real hls::stream FIFOs, one thread per pipeline process — and check
// the output distribution.
//
//   1. pick a Table I configuration (Config2: Marsaglia-Bray + MT521),
//   2. run the DecoupledWorkItems Task with 6 work-items,
//   3. read the packed 512-bit device buffer back as floats,
//   4. validate mean/variance against the CreditRisk+ sector model.
#include <iostream>

#include "core/decoupled_work_items.h"
#include "stats/moments.h"

int main() {
  using namespace dwi;

  // The sector variance of the paper's representative setup: v = 1.39,
  // i.e. Gamma(shape 1/1.39, scale 1.39) with unit mean.
  const float sector_variance = 1.39f;

  core::DecoupledConfig task;
  task.work_items = 6;                  // Config2's pipeline count
  task.floats_per_work_item = 65'536;   // outputs per work-item

  std::cout << "Generating " << task.work_items * task.floats_per_work_item
            << " gamma RNs on " << task.work_items
            << " decoupled work-item pipelines...\n";

  const auto result = core::run_gamma_task(task, [&](unsigned wid) {
    core::GammaWorkItemConfig cfg;
    cfg.app = rng::config(rng::ConfigId::kConfig2);
    cfg.sector_variances = {sector_variance};
    cfg.outputs_per_sector =
        static_cast<std::uint32_t>(task.floats_per_work_item);
    cfg.work_item_id = wid;
    cfg.seed = 2024;
    return cfg;
  });

  const auto values = result.to_floats();
  stats::RunningMoments m;
  for (float v : values) m.add(static_cast<double>(v));

  std::cout << "generated " << values.size() << " samples\n"
            << "mean     = " << m.mean() << "   (expected 1.0)\n"
            << "variance = " << m.variance() << "   (expected "
            << sector_variance << ")\n"
            << "min/max  = " << m.min() << " / " << m.max() << "\n";

  const bool ok = std::abs(m.mean() - 1.0) < 0.02 &&
                  std::abs(m.variance() - sector_variance) < 0.1;
  std::cout << (ok ? "OK: distribution matches the sector model\n"
                   : "WARNING: moments off\n");
  return ok ? 0 : 1;
}
