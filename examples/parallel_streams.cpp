// Parallel RNG streams done right: jump-ahead partitioning.
//
// The paper gives every work-item its own seeds and relies on the
// astronomically small overlap probability. With the library's GF(2)
// jump-ahead (rng/jump.h) the guarantee is structural instead: all
// work-items draw from ONE master MT(521) sequence, each offset by a
// fixed stride, so overlap is impossible by construction. This example
// partitions a master sequence across 6 decoupled work-items, verifies
// the partitioning against the sequential generator, runs the gamma
// pipeline on top, and checks the combined output distribution.
#include <cmath>
#include <iostream>

#include "common/bits.h"
#include "rng/gamma.h"
#include "rng/jump.h"
#include "rng/mersenne_twister.h"
#include "stats/moments.h"

int main() {
  using namespace dwi;

  constexpr unsigned kWorkItems = 6;
  constexpr std::uint64_t kStride = 4'000'000;  // uniforms per work-item
  const auto params = rng::mt521_params();

  std::cout << "Partitioning one MT(521) master sequence into "
            << kWorkItems << " streams of " << kStride
            << " uniforms (jump-ahead, no overlap possible)...\n";
  auto streams = rng::make_parallel_streams(params, 20240706u, kWorkItems,
                                            kStride);

  // --- verify the partitioning on a sample ------------------------------
  {
    rng::MersenneTwister master(params, 20240706u);
    bool ok = true;
    for (unsigned w = 0; w < kWorkItems && ok; ++w) {
      rng::MersenneTwister probe = streams[w];  // copy; keep originals
      for (int i = 0; i < 1000; ++i) {
        if (probe.next() != master.next()) {
          ok = false;
          break;
        }
      }
      // Skip the rest of this work-item's slice in the master.
      for (std::uint64_t i = 1000; i < kStride && ok; ++i) {
        (void)master.next();
      }
    }
    std::cout << (ok ? "stream prefixes verified against the master "
                       "sequence\n"
                     : "ERROR: stream mismatch\n");
    if (!ok) return 1;
  }

  // --- gamma generation on the partitioned streams ----------------------
  const auto k = rng::GammaConstants::from_sector_variance(1.39f);
  stats::RunningMoments m;
  constexpr int kPerStream = 50'000;
  for (unsigned w = 0; w < kWorkItems; ++w) {
    rng::GammaSampler sampler(k, rng::NormalTransform::kMarsagliaBray);
    auto& mt = streams[w];
    auto src = [&mt] { return mt.next(); };
    for (int i = 0; i < kPerStream; ++i) {
      m.add(static_cast<double>(sampler.sample(src)));
    }
  }
  std::cout << "combined output over " << m.count()
            << " samples: mean=" << m.mean()
            << " (expected 1.0), variance=" << m.variance()
            << " (expected 1.39)\n";
  const bool ok = std::abs(m.mean() - 1.0) < 0.02 &&
                  std::abs(m.variance() - 1.39) < 0.1;
  std::cout << (ok ? "OK: partitioned streams feed the gamma pipeline "
                     "correctly\n"
                   : "WARNING: distribution off\n");
  return ok ? 0 : 1;
}
