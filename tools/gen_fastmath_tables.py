#!/usr/bin/env python3
"""Generate the hex-double tables in src/rng/fastmath.cpp.

The fastmath kernels evaluate float log/pow through double-precision
table-driven polynomials so the scalar and SIMD paths can execute the
exact same rounded operation sequence (see docs/PERF.md). This script
derives every constant from first principles with 60-digit decimal
arithmetic and prints them as hex double literals; the checked-in
fastmath.cpp is its verbatim output, so reviewers can re-run it to
audit the tables.
"""

from decimal import Decimal, getcontext
from fractions import Fraction
import struct

getcontext().prec = 60

LN2 = Decimal(2).ln()


def to_double(d: Decimal) -> float:
    return float(d)  # Decimal -> nearest double (round-half-even)


def hexd(x: float) -> str:
    return x.hex()


def exact(x: float) -> Decimal:
    f = Fraction(x)
    return Decimal(f.numerator) / Decimal(f.denominator)


def asfloat32(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits))[0]


def main() -> None:
    # --- log segment tables (16 segments over z in [0x1.66p-1, 0x1.66p0)) ---
    OFF = 0x3F330000
    invc, logc, log2c = [], [], []
    for i in range(16):
        z_lo = exact(asfloat32(OFF + i * 0x80000))
        z_hi = exact(asfloat32(OFF + (i + 1) * 0x80000))
        mid = (z_lo * z_hi).sqrt()
        c = to_double(1 / mid)  # stored double reciprocal of segment center
        # ln/log2 of the *stored* double, so table pairs are self-consistent.
        lc = (-exact(c).ln())
        invc.append(c)
        logc.append(to_double(lc))
        log2c.append(to_double(lc / LN2))

    # --- exp2 fraction table: bits of double 2^(j/32) --------------------
    exp2tab = []
    for j in range(32):
        v = to_double((Decimal(j) / 32 * LN2).exp())
        exp2tab.append(struct.unpack("<Q", struct.pack("<d", v))[0])

    def emit(name, vals, fmt):
        print(f"const double k{name}[] = {{")
        for v in vals:
            print(f"    {fmt(v)},")
        print("};")

    emit("InvC", invc, hexd)
    emit("LogC", logc, hexd)
    emit("Log2C", log2c, hexd)
    print("const std::uint64_t kExp2Tab[] = {")
    for v in exp2tab:
        print(f"    0x{v:016x}ull,")
    print("};")

    for name, d in [
        ("Ln2", LN2),
        ("InvLn2", 1 / LN2),
        ("Ln2Div32", LN2 / 32),
    ]:
        print(f"k{name} = {hexd(to_double(d))}")
    # Taylor coefficients for ln(1+r), |r| <= 0.0222 (deg 6) and e^w,
    # |w| <= 0.0109 (deg 4): truncation < 4e-13 relative, far below the
    # half-ulp float budget.
    for n in range(2, 7):
        c = to_double(Decimal((-1) ** n) / Decimal(n) * -1)
        print(f"kP{n} = {hexd(c)}  // {'-' if n % 2 == 0 else '+'}1/{n}")
    for n in range(2, 5):
        import math

        print(f"kQ{n} = {hexd(to_double(Decimal(1) / math.factorial(n)))}")


if __name__ == "__main__":
    main()
