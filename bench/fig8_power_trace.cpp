// Fig 8: system power-consumption trace while repeatedly enqueuing the
// Config1 kernel (the paper's wall-plug measurement with a Voltcraft
// VC870 at 1 sample/s). Shows the enqueue spike at the first marker,
// the cooling ramp, the plateau, and the two markers delimiting the
// 100 s integration window.
#include <algorithm>
#include <iostream>

#include "common/table.h"
#include "minicl/runtime.h"
#include "power/energy_protocol.h"

int main() {
  using namespace dwi;

  minicl::KernelLaunch launch;
  launch.config = rng::config(rng::ConfigId::kConfig1);
  launch.transform = rng::NormalTransform::kMarsagliaBray;

  std::cout << "=== Fig 8: power trace, Config1 on the FPGA combination "
               "===\n\n";
  auto dev = minicl::find_device("FPGA");
  const auto r = power::run_energy_protocol(*dev, launch);

  // ASCII strip chart, one row per 5 s.
  const auto& s = r.trace.samples_watts;
  const double lo = 200.0;
  double hi = 0.0;
  for (double w : s) hi = std::max(hi, w);
  hi += 2.0;
  std::cout << "t[s]   P[W]   (" << TextTable::num(lo, 0) << " W .. "
            << TextTable::num(hi, 0) << " W; M = plot marker)\n";
  for (std::size_t i = 0; i < s.size(); i += 5) {
    const double t = static_cast<double>(i) * r.trace.sample_period_s;
    const auto bar = static_cast<std::size_t>(
        std::max(0.0, (s[i] - lo) / (hi - lo) * 60.0));
    bool marker = false;
    for (double m : r.trace.markers_s) {
      if (std::abs(m - t) < 2.5) marker = true;
    }
    std::cout << TextTable::num(t, 0) << "\t" << TextTable::num(s[i], 1)
              << "\t|" << std::string(bar, '#') << (marker ? " <-- M" : "")
              << "\n";
  }

  std::cout << "\nidle floor: 204 W (paper: ~204 W)\n"
            << "kernel time: " << TextTable::num(r.kernel_seconds * 1e3, 0)
            << " ms, invocations enqueued: " << r.invocations << "\n"
            << "device dynamic power: "
            << TextTable::num(r.device_dynamic_watts, 1) << " W\n"
            << "dynamic energy per invocation (100 s window): "
            << TextTable::num(r.energy.per_invocation.value, 1) << " J\n";

  std::cout << "\n--- The same protocol on the other combinations "
               "(plateau power) ---\n";
  TextTable t;
  t.set_header({"Combination", "Plateau [W]", "Kernel [ms]",
                "E_dyn/invocation [J]"});
  for (const char* name : {"CPU", "GPU", "PHI", "FPGA"}) {
    auto d = minicl::find_device(name);
    const auto rr = power::run_energy_protocol(*d, launch);
    const auto& ss = rr.trace.samples_watts;
    double plateau = 0.0;
    for (std::size_t i = ss.size() / 2; i < ss.size(); ++i) {
      plateau = std::max(plateau, ss[i]);
    }
    t.add_row({name, TextTable::num(plateau, 0),
               TextTable::num(rr.kernel_seconds * 1e3, 0),
               TextTable::num(rr.energy.per_invocation.value, 1)});
  }
  t.render(std::cout);
  return 0;
}
