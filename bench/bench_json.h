// Machine-readable benchmark artifacts.
//
// The text tables the bench binaries print reproduce the paper's
// figures for humans; BENCH_*.json files carry the same numbers (plus
// host-side throughput) for machines, so successive PRs can track the
// performance trajectory without parsing ASCII tables. Writers emit
// into the current working directory by default — run benches from
// the repo root to land BENCH_table3.json etc. next to ROADMAP.md.
//
// JsonWriter is a minimal streaming emitter: explicit begin/end for
// objects and arrays, automatic comma placement, no dependencies.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace dwi::bench {

/// Version of the BENCH_*.json layout. Bump when a key is renamed,
/// removed or changes meaning — bench/compare_bench.py refuses to
/// compare artifacts across versions rather than misread them.
inline constexpr unsigned kBenchSchemaVersion = 2;

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(&out) {
    out_->precision(std::numeric_limits<double>::max_digits10);
  }

  JsonWriter& begin_object() {
    prefix();
    *out_ << '{';
    stack_.push_back(State{false});
    return *this;
  }
  JsonWriter& end_object() {
    stack_.pop_back();
    *out_ << '}';
    return *this;
  }
  JsonWriter& begin_array() {
    prefix();
    *out_ << '[';
    stack_.push_back(State{false});
    return *this;
  }
  JsonWriter& end_array() {
    stack_.pop_back();
    *out_ << ']';
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    prefix();
    write_string(k);
    *out_ << ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(double v) {
    prefix();
    *out_ << v;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    prefix();
    *out_ << v;
    return *this;
  }
  JsonWriter& value(int v) {
    prefix();
    *out_ << v;
    return *this;
  }
  JsonWriter& value(unsigned v) {
    prefix();
    *out_ << v;
    return *this;
  }
  JsonWriter& value(bool v) {
    prefix();
    *out_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(std::string_view v) {
    prefix();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }

  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  struct State {
    bool has_item;
  };

  void prefix() {
    if (pending_value_) {
      pending_value_ = false;  // value directly follows its key
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back().has_item) *out_ << ',';
      stack_.back().has_item = true;
    }
  }

  void write_string(std::string_view s) {
    *out_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': *out_ << "\\\""; break;
        case '\\': *out_ << "\\\\"; break;
        case '\n': *out_ << "\\n"; break;
        case '\t': *out_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            *out_ << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
                  << "0123456789abcdef"[c & 0xf];
          } else {
            *out_ << c;
          }
      }
    }
    *out_ << '"';
  }

  std::ostream* out_;
  std::vector<State> stack_;
  bool pending_value_ = false;
};

/// Standard artifact preamble: every BENCH_*.json opens with the bench
/// name, the schema version and the RNG seed the run used, so baseline
/// comparisons can verify they are looking at the same experiment.
inline void write_bench_header(JsonWriter& j, std::string_view bench,
                               std::uint64_t seed) {
  j.kv("bench", bench);
  j.kv("schema_version", kBenchSchemaVersion);
  j.kv("seed", seed);
}

/// Parse "1,2,8"-style comma lists (for --threads=LIST flags).
/// Malformed segments are skipped; zeros are dropped (0 is not a
/// valid explicit thread count).
inline std::vector<unsigned> parse_uint_list(std::string_view s) {
  std::vector<unsigned> out;
  unsigned cur = 0;
  bool have = false;
  for (const char c : s) {
    if (c >= '0' && c <= '9') {
      cur = cur * 10u + static_cast<unsigned>(c - '0');
      have = true;
    } else {
      if (have && cur > 0) out.push_back(cur);
      cur = 0;
      have = false;
    }
  }
  if (have && cur > 0) out.push_back(cur);
  return out;
}

/// Open `path` for writing and warn (without failing the bench) when
/// the file cannot be created.
inline std::ofstream open_bench_json(const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    std::cerr << "warning: cannot write " << path
              << " (benchmark output is unaffected)\n";
  }
  return f;
}

}  // namespace dwi::bench
