// Resource-aware throughput autotuner bench: runs src/tune's seeded
// coordinate-descent search over the repo's three workload families
// and emits BENCH_tuner.json — the search trajectory, the chosen
// TunedConfig per (workload, device), and tuned-vs-default modeled
// throughput — which the perf-regression CI job polices against
// bench/baselines/autotune.json via compare_bench.py's "tuner" kind.
//
// Sweep entries (axis: "workload"):
//   * table3:Config1..4 on the ADM-PCIE-7V3 — joint {work-items,
//     stream depth, burst beats, cycle_skipping, batch_iterations}
//     against the cycle-level simulator, with Table II resource
//     pruning (§IV-C's routability ceiling as an admission rule).
//   * fig5:CPU/GPU/PHI:Config1 — NDRange {local, global} against the
//     fixed-architecture runtime estimator. The estimator's default
//     local size already IS the paper's Fig 5a optimum, so the honest
//     speedup here is ~1.0x: the search's job is to re-find the
//     published optimum from scratch, not to beat it.
//   * serve:classic / serve:resident — host serving knobs against the
//     calibrated analytic cost model; these two also get a small
//     MEASURED closed-loop run (default vs tuned SamplingServer) so
//     the artifact records modeled-vs-measured side by side. Measured
//     numbers are informational (timing noise); the gate below uses
//     modeled ratios only.
//
// Gate (exit 1 on failure): every chosen config must be feasible,
// every search must be run-to-run deterministic (same seed, same
// TunedConfig — checked by running each search twice), and the tuned
// config must beat the default by >= 1.15x geomean in at least two of
// the three workload categories ("tuned_beats_default").
#include <cmath>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_args.h"
#include "bench_json.h"
#include "common/table.h"
#include "exec/thread_pool.h"
#include "finance/portfolio.h"
#include "fpga/device.h"
#include "rng/configs.h"
#include "serve/sampling_server.h"
#include "simt/platform.h"
#include "tune/autotuner.h"
#include "tune/tuned_config.h"

namespace {

using namespace dwi;

constexpr double kSpeedupThreshold = 1.15;

struct Entry {
  std::string category;  ///< "table3" / "fig5" / "serve"
  tune::TuneResult result;
  bool search_identical = true;
  // serve entries only: small measured closed-loop run, informational.
  double measured_default_rps = 0.0;
  double measured_tuned_rps = 0.0;
};

/// The chosen config as a single diff-friendly line ("key=value ..."),
/// the string compare_bench.py prints as "offending config" when a
/// tuner gate fails.
std::string one_line_config(const tune::TunedConfig& cfg) {
  std::string text = tune::format_tuned_config(cfg);
  std::string out;
  bool first_line = true;  // drop the "dwi-tuned-config v1" header
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (!first_line && end > start) {
      if (!out.empty()) out += ' ';
      out.append(text, start, end - start);
    }
    first_line = false;
    start = end + 1;
  }
  return out;
}

/// Run `search` twice with identical options and keep the first
/// outcome; flags run-to-run divergence (the determinism contract the
/// walk_flags gate in compare_bench.py makes fatal).
template <typename Search>
Entry tuned_twice(const std::string& category, Search&& search) {
  Entry e;
  e.category = category;
  e.result = search();
  const tune::TuneResult repeat = search();
  e.search_identical = tune::format_tuned_config(e.result.best) ==
                       tune::format_tuned_config(repeat.best);
  return e;
}

/// Small measured closed-loop run: the serve_throughput request mix
/// (7 gamma x 2048 samples : 1 CreditRisk+ x 256 scenarios), served
/// back-to-back; returns requests/second.
double measure_serve_rps(const serve::ServeConfig& cfg, unsigned threads,
                         std::uint32_t seed, std::size_t requests) {
  const auto portfolio = std::make_shared<const finance::Portfolio>(
      finance::Portfolio::synthetic(
          48, {{1.39, "representative"}, {0.8, "stable"}}, seed));
  exec::set_thread_count(threads);
  serve::SamplingServer server(cfg);
  const float alphas[4] = {0.72f, 1.5f, 2.47f, 5.0f};
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    if (i % 8 == 7) {
      serve::CreditRiskRequest req;
      req.id = i + 1;
      req.portfolio = portfolio;
      req.num_scenarios = 256;
      (void)server.run(req);
    } else {
      serve::GammaRequest req;
      req.id = i + 1;
      req.alpha = alphas[i % 4];
      req.scale = 1.0f;
      req.count = 2048;
      (void)server.run(req);
    }
  }
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  exec::set_thread_count(0);  // back to the environment default
  return static_cast<double>(requests) / wall;
}

/// Build the ServeConfig a TunedConfig describes (the wiring a real
/// deployment does once at startup).
serve::ServeConfig serve_config_from(const tune::TunedConfig& cfg,
                                     bool resident, std::uint32_t seed) {
  serve::ServeConfig out;
  out.server_seed = seed;
  out.max_batch = cfg.max_batch;
  out.queue_capacity = cfg.queue_capacity;
  out.stream_strategy = cfg.stream_strategy == "counter-based"
                            ? rng::StreamStrategy::kCounterBased
                            : rng::StreamStrategy::kJumpAhead;
  out.resident = resident;
  out.resident_pipe_depth = cfg.pipe_depth;
  return out;
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> extra;
  const auto args = bench::parse_bench_args(
      argc, argv, "autotune", "BENCH_tuner.json",
      "[--budget=N] [--passes=N]", &extra);
  if (!args) return 2;

  tune::TunerOptions opt;
  opt.seed = args->seed;
  opt.budget = 48;
  for (const std::string& arg : extra) {
    if (arg.rfind("--budget=", 0) == 0) {
      opt.budget = static_cast<unsigned>(
          std::strtoul(arg.c_str() + 9, nullptr, 10));
    } else if (arg.rfind("--passes=", 0) == 0) {
      opt.passes = static_cast<unsigned>(
          std::strtoul(arg.c_str() + 9, nullptr, 10));
    } else {
      std::cerr << "autotune: unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (opt.budget == 0 || opt.passes == 0) {
    std::cerr << "autotune: need budget>0 and passes>0\n";
    return 2;
  }

  std::cout << "seed: " << opt.seed << ", budget: " << opt.budget
            << " evaluations, passes: " << opt.passes << "\n";

  std::vector<Entry> entries;

  // --- table3: all four Table I configurations on the paper device ----
  const fpga::DeviceSpec& dev = fpga::adm_pcie_7v3();
  for (const rng::AppConfig& app : rng::all_configs()) {
    entries.push_back(tuned_twice(
        "table3", [&] { return tune_table3(dev, app, opt); }));
  }

  // --- fig5: Config1 NDRange shape on the three fixed architectures ---
  for (const simt::PlatformId plat :
       {simt::PlatformId::kCpu, simt::PlatformId::kGpu,
        simt::PlatformId::kPhi}) {
    entries.push_back(tuned_twice("fig5", [&] {
      return tune_fig5(plat, rng::config(rng::ConfigId::kConfig1), opt);
    }));
  }

  // --- serve: classic scheduler path and resident CreditRisk+ path ----
  const std::uint32_t serve_seed = static_cast<std::uint32_t>(args->seed);
  constexpr std::size_t kMeasuredRequests = 128;
  for (const bool resident : {false, true}) {
    tune::ServeWorkloadSpec spec;
    spec.resident = resident;
    spec.thread_candidates = args->threads;
    Entry e =
        tuned_twice("serve", [&] { return tune_serve(spec, opt); });
    e.measured_default_rps =
        measure_serve_rps(serve_config_from(e.result.fallback, resident,
                                            serve_seed),
                          e.result.fallback.threads, serve_seed,
                          kMeasuredRequests);
    e.measured_tuned_rps =
        measure_serve_rps(serve_config_from(e.result.best, resident,
                                            serve_seed),
                          e.result.best.threads, serve_seed,
                          kMeasuredRequests);
    entries.push_back(std::move(e));
  }

  // --- gates ----------------------------------------------------------
  bool all_feasible = true;
  bool all_identical = true;
  std::vector<double> table3_speedups, fig5_speedups, serve_speedups;
  for (const Entry& e : entries) {
    all_feasible &= e.result.best.feasible;
    all_identical &= e.search_identical;
    if (e.category == "table3") table3_speedups.push_back(e.result.speedup());
    if (e.category == "fig5") fig5_speedups.push_back(e.result.speedup());
    if (e.category == "serve") serve_speedups.push_back(e.result.speedup());
  }
  const double table3_geomean = geomean(table3_speedups);
  const double fig5_geomean = geomean(fig5_speedups);
  const double serve_geomean = geomean(serve_speedups);
  unsigned categories_passed = 0;
  for (const double g : {table3_geomean, fig5_geomean, serve_geomean}) {
    if (g >= kSpeedupThreshold) ++categories_passed;
  }
  const bool tuned_beats_default = categories_passed >= 2;

  std::cout << "\n=== Tuned vs default (modeled) ===\n";
  {
    TextTable t;
    t.set_header({"Workload", "Device", "Default", "Tuned", "Speedup",
                  "Evals", "Pruned"});
    for (const Entry& e : entries) {
      t.add_row({e.result.best.workload, e.result.best.device,
                 TextTable::num(e.result.fallback.modeled_throughput, 0),
                 TextTable::num(e.result.best.modeled_throughput, 0),
                 TextTable::num(e.result.speedup(), 3),
                 TextTable::integer(e.result.evaluations),
                 TextTable::integer(e.result.pruned_infeasible)});
    }
    t.render(std::cout);
  }
  std::cout << "\ncategory geomeans: table3 " << table3_geomean << ", fig5 "
            << fig5_geomean << ", serve " << serve_geomean << " (threshold "
            << kSpeedupThreshold << ", " << categories_passed
            << "/3 passed, need 2)\n";
  for (const Entry& e : entries) {
    if (e.category != "serve") continue;
    std::cout << e.result.best.workload << ": measured "
              << e.measured_default_rps << " -> " << e.measured_tuned_rps
              << " req/s (modeled "
              << e.result.fallback.modeled_throughput << " -> "
              << e.result.best.modeled_throughput << ")\n";
  }
  if (!all_feasible) {
    std::cout << "ERROR: a chosen config exceeds the modeled resource "
                 "budget\n";
  }
  if (!all_identical) {
    std::cout << "ERROR: a search diverged between identically seeded "
                 "runs\n";
  }
  if (!tuned_beats_default) {
    std::cout << "ERROR: tuned configs beat the defaults in only "
              << categories_passed << "/3 categories (need 2)\n";
  }

  // --- artifact -------------------------------------------------------
  if (auto jf = bench::open_bench_json(args->json_path)) {
    bench::JsonWriter j(jf);
    j.begin_object();
    bench::write_bench_header(j, "autotune", args->seed);
    j.kv("kind", "tuner");
    j.kv("budget", opt.budget);
    j.kv("passes", opt.passes);
    j.kv("speedup_threshold", kSpeedupThreshold);
    j.key("category_geomeans").begin_object();
    j.kv("table3", table3_geomean);
    j.kv("fig5", fig5_geomean);
    j.kv("serve", serve_geomean);
    j.end_object();
    j.kv("categories_passed", categories_passed);
    j.kv("tuned_beats_default", tuned_beats_default);
    j.kv("all_feasible", all_feasible);
    j.key("sweep").begin_array();
    for (const Entry& e : entries) {
      const tune::TuneResult& r = e.result;
      j.begin_object();
      j.kv("workload", r.best.workload);
      j.kv("category", e.category);
      j.kv("device", r.best.device);
      j.kv("modeled_default", r.fallback.modeled_throughput);
      j.kv("modeled_tuned", r.best.modeled_throughput);
      // throughput_rps mirrors modeled_tuned so the generic
      // higher-is-better comparison in compare_bench.py applies; the
      // model is deterministic, so baseline drift here is a real
      // change, not noise.
      j.kv("throughput_rps", r.best.modeled_throughput);
      j.kv("modeled_speedup", r.speedup());
      j.kv("evaluations", r.evaluations);
      j.kv("pruned_infeasible", r.pruned_infeasible);
      j.kv("feasible", r.best.feasible);
      j.kv("search_identical", e.search_identical);
      j.kv("chosen_config", one_line_config(r.best));
      if (e.category == "serve") {
        j.kv("measured_default_rps", e.measured_default_rps);
        j.kv("measured_tuned_rps", e.measured_tuned_rps);
      }
      j.key("trajectory").begin_array();
      for (const tune::TrajectoryPoint& p : r.trajectory) {
        j.begin_object();
        j.kv("eval", p.eval);
        j.kv("point", p.point);
        j.kv("objective", p.objective);
        j.kv("feasible", p.feasible);
        j.kv("improved", p.improved);
        j.end_object();
      }
      j.end_array();
      j.end_object();
    }
    j.end_array();
    j.end_object();
    jf << "\n";
    std::cout << "Wrote " << args->json_path << "\n";
  }

  return (tuned_beats_default && all_feasible && all_identical) ? 0 : 1;
}
