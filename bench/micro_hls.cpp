// Micro-benchmarks (google-benchmark) of the HLS construct library:
// ap_uint arithmetic, 512-bit packing, stream throughput, and the
// dataflow region overhead.
#include <benchmark/benchmark.h>

#include <thread>

#include "common/bits.h"
#include "core/transfer_unit.h"
#include "hls/ap_fixed.h"
#include "hls/ap_uint.h"
#include "hls/stream.h"

namespace {

using namespace dwi;

void BM_ApUint512Add(benchmark::State& state) {
  hls::ap_uint<512> a(0x12345678u);
  hls::ap_uint<512> b(0x9abcdef0u);
  for (auto _ : state) {
    a = a + b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ApUint512Add);

void BM_ApUint512Shift(benchmark::State& state) {
  hls::ap_uint<512> a(0xdeadbeefu);
  unsigned s = 0;
  for (auto _ : state) {
    s = (s + 7) & 255u;
    benchmark::DoNotOptimize(a << s);
  }
}
BENCHMARK(BM_ApUint512Shift);

void BM_ApUintRangeWrite(benchmark::State& state) {
  hls::ap_uint<512> word;
  unsigned lane = 0;
  for (auto _ : state) {
    word.set_range(lane * 32 + 31, lane * 32, 0xabcd1234u);
    lane = (lane + 1) & 15u;
    benchmark::DoNotOptimize(word);
  }
}
BENCHMARK(BM_ApUintRangeWrite);

void BM_ApFixedMul(benchmark::State& state) {
  hls::ap_fixed<32, 5> a(1.234);
  hls::ap_fixed<32, 5> b(0.987);
  for (auto _ : state) {
    b = a * b + hls::ap_fixed<32, 5>(0.001);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_ApFixedMul);

void BM_PackG512(benchmark::State& state) {
  core::MemoryWord word;
  unsigned lane = 0;
  float v = 0.0f;
  for (auto _ : state) {
    v += 1.0f;
    benchmark::DoNotOptimize(core::pack_g512(&word, v, &lane));
  }
}
BENCHMARK(BM_PackG512);

void BM_StreamThroughput(benchmark::State& state) {
  // Producer thread feeding a bounded stream; measures blocking
  // read-side throughput at the configured depth.
  const auto depth = static_cast<std::size_t>(state.range(0));
  hls::stream<float> s(depth);
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    float v = 0.0f;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!s.write_nb(v)) std::this_thread::yield();
      v += 1.0f;
    }
  });
  for (auto _ : state) {
    float v = 0.0f;
    if (s.read_nb(v)) {
      benchmark::DoNotOptimize(v);
    }
  }
  stop = true;
  producer.join();
  // Drain so the producer can't be blocked at exit.
  float v = 0.0f;
  while (s.read_nb(v)) {
  }
}
BENCHMARK(BM_StreamThroughput)->Arg(2)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
