// Fig 7: transfers-only runtime (dummy data, computation removed from
// the kernel) for different burst lengths and numbers of parallel
// work-items, on the 512-bit memory interface. Also reports the
// achieved bandwidths the paper quotes (3.58 GB/s for Config1/2's
// operating point, 3.94 GB/s for Config3/4's) against the 12.8 GB/s
// raw interface peak.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_args.h"
#include "bench_json.h"
#include "common/table.h"
#include "fpga/device.h"
#include "fpga/kernel_sim.h"

int main(int argc, char** argv) {
  using namespace dwi;

  // Pure device simulation (dummy data, no RNG): --seed and --threads
  // are parsed for CLI uniformity only; the cycle counts are exact.
  const auto args = bench::parse_bench_args(argc, argv, "fig7_transfers",
                                            "BENCH_fig7.json");
  if (!args) return 2;
  const auto& dev = fpga::adm_pcie_7v3();

  // Full-size Fig 7 transfers 2.5 GB; simulate a 1/256 slice and
  // extrapolate (steady-state, like every timing bench).
  const std::uint64_t full_floats = 2'621'440ull * 240ull;
  const std::uint64_t sim_floats = full_floats / 256;

  std::cout << "=== Fig 7: transfers-only runtime [ms] vs burst length ===\n"
            << "(rows: burst length in RNs = 16 floats x beats; columns: "
               "parallel work-items; dummy data)\n\n";

  TextTable t;
  t.set_header({"Burst [RNs]", "1 WI", "2 WI", "4 WI", "6 WI", "8 WI"});
  const unsigned wi_counts[] = {1, 2, 4, 6, 8};
  for (unsigned beats : {1u, 2u, 4u, 8u, 16u, 18u, 32u, 64u, 128u, 256u}) {
    std::vector<std::string> row = {
        TextTable::integer(static_cast<long long>(beats) * 16)};
    for (unsigned n : wi_counts) {
      fpga::KernelSimConfig cfg;
      cfg.work_items = n;
      cfg.burst_beats = beats;
      cfg.outputs_per_work_item = sim_floats / n;
      const auto r = fpga::simulate_kernel(cfg, [](unsigned) {
        return std::make_unique<fpga::DummyProducer>();
      });
      const double full_ms =
          fpga::extrapolate_seconds(r, full_floats, dev.clock_hz) * 1e3;
      row.push_back(TextTable::num(full_ms, 0));
    }
    t.add_row(row);
  }
  t.render(std::cout);

  std::cout << "\n=== Operating points (SS IV-E measured bandwidths) ===\n";
  TextTable b;
  b.set_header({"Design point", "Bandwidth [GB/s]", "Paper [GB/s]",
                "Runtime for 2.5 GB [ms]"});
  struct Point {
    const char* name;
    unsigned wi, beats;
    double paper_bw;
  } points[] = {{"Config1/2 (6 WI, 256-RN bursts)", 6, 16, 3.58},
                {"Config3/4 (8 WI, 288-RN bursts)", 8, 18, 3.94}};
  struct PointResult {
    const char* name;
    double bandwidth_gbs, paper_gbs, runtime_ms;
  };
  std::vector<PointResult> results;
  for (const auto& p : points) {
    fpga::KernelSimConfig cfg;
    cfg.work_items = p.wi;
    cfg.burst_beats = p.beats;
    cfg.outputs_per_work_item = sim_floats / p.wi;
    const auto r = fpga::simulate_kernel(cfg, [](unsigned) {
      return std::make_unique<fpga::DummyProducer>();
    });
    const double bw_gbs = r.bandwidth_bytes(dev.clock_hz) / 1e9;
    const double runtime_ms =
        fpga::extrapolate_seconds(r, full_floats, dev.clock_hz) * 1e3;
    results.push_back({p.name, bw_gbs, p.paper_bw, runtime_ms});
    b.add_row({p.name, TextTable::num(bw_gbs, 2), TextTable::num(p.paper_bw, 2),
               TextTable::num(runtime_ms, 0)});
  }
  b.render(std::cout);
  std::cout << "Raw interface peak: "
            << TextTable::num(dev.peak_bandwidth_bytes() / 1e9, 1)
            << " GB/s; the gap is the per-burst turnaround of the SDAccel "
               "2015.4 memory subsystem (the paper: 'further customizations "
               "of the memory controller inside the tool would improve the "
               "performance').\n";

  if (auto jf = bench::open_bench_json(args->json_path)) {
    bench::JsonWriter j(jf);
    j.begin_object();
    bench::write_bench_header(j, "fig7_transfers", args->seed);
    j.kv("peak_bandwidth_gbs", dev.peak_bandwidth_bytes() / 1e9);
    j.key("operating_points").begin_array();
    for (const PointResult& r : results) {
      j.begin_object();
      j.kv("name", r.name);
      j.kv("bandwidth_gbs", r.bandwidth_gbs);
      j.kv("paper_gbs", r.paper_gbs);
      j.kv("runtime_2_5gb_ms", r.runtime_ms);
      j.end_object();
    }
    j.end_array();
    j.end_object();
    jf << "\n";
    std::cout << "Wrote " << args->json_path << "\n";
  }
  return 0;
}
