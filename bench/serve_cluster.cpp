// Sharded-cluster load generator: cross-shard determinism and modeled
// multi-device capacity of the serve/cluster ShardedSamplingServer.
//
// Two phases:
//   1. Cross-shard determinism fingerprints — one fixed request set is
//      served through clusters of {1, 2, 4, 8} shards, under both
//      routing policies and the resident pipeline; per-request results
//      must be bit-identical in every cell (the cluster determinism
//      contract, pinned by tests/test_cluster.cpp). Any divergence
//      fails the bench (exit 1) and trips compare_bench.py via
//      cross_shard_identical=false.
//   2. Open-loop shard sweep — per --shards entry, a pacer offers the
//      whole set at --rate req/s to an S-shard cluster of simulated
//      FPGAs. Every admitted request is mirrored onto its shard's
//      modeled device timeline (minicl::ShardBackend), and the sweep's
//      headline metric is the modeled aggregate capacity
//          throughput_rps = admitted / busiest-shard modeled seconds
//      — the multi-device scaling signal (host wall time on the CI
//      box measures one CPU serving all shards and is reported as
//      context only). The modeled metric is deterministic: same
//      placement, same simulated devices, same number on any host.
//      compare_bench.py polices these entries against
//      bench/baselines/serve_cluster.json; scaling_1_to_4 summarizes
//      the 1 -> 4 shard capacity ratio.
//
// Emits BENCH_serve_cluster.json (schema: docs/SERVE.md).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <future>
#include <iostream>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench_args.h"
#include "bench_json.h"
#include "common/table.h"
#include "exec/thread_pool.h"
#include "finance/portfolio.h"
#include "serve/cluster.h"

namespace {

using namespace dwi;

struct RequestItem {
  bool is_gamma = true;
  serve::GammaRequest gamma;
  serve::CreditRiskRequest credit;
};

struct LoadSpec {
  std::size_t requests = 256;
  std::uint32_t samples = 1024;    ///< gamma variates per request
  double open_loop_rate = 4000.0;  ///< offered req/s
  std::vector<unsigned> shards = {1, 2, 4, 8};
  std::uint32_t seed = 1;
};

std::vector<RequestItem> build_request_set(
    const LoadSpec& spec,
    const std::shared_ptr<const finance::Portfolio>& portfolio) {
  const float alphas[4] = {0.72f, 1.5f, 2.47f, 5.0f};
  std::vector<RequestItem> items;
  items.reserve(spec.requests);
  for (std::size_t i = 0; i < spec.requests; ++i) {
    RequestItem item;
    if (i % 8 == 7) {
      item.is_gamma = false;
      item.credit.id = i + 1;
      item.credit.portfolio = portfolio;
      item.credit.num_scenarios = 256;
    } else {
      item.is_gamma = true;
      item.gamma.id = i + 1;
      item.gamma.alpha = alphas[i % 4];
      item.gamma.scale = 1.0f;
      item.gamma.count = spec.samples;
    }
    items.push_back(item);
  }
  return items;
}

std::uint64_t fnv_mix(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Serve the whole set through the cluster, then fingerprint every
/// result in set order so the hash is independent of completion
/// interleaving and of WHERE each request was computed.
std::uint64_t run_set_fingerprint(serve::ShardedSamplingServer& cluster,
                                  const std::vector<RequestItem>& items) {
  std::vector<std::future<serve::GammaResult>> gamma_futures(items.size());
  std::vector<std::future<serve::CreditRiskResult>> credit_futures(
      items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].is_gamma) {
      gamma_futures[i] = cluster.submit(items[i].gamma);
    } else {
      credit_futures[i] = cluster.submit(items[i].credit);
    }
  }
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].is_gamma) {
      const serve::GammaResult r = gamma_futures[i].get();
      h = fnv_mix(h, &r.id, sizeof r.id);
      h = fnv_mix(h, r.samples.data(), r.samples.size() * sizeof(float));
      h = fnv_mix(h, &r.attempts, sizeof r.attempts);
    } else {
      const serve::CreditRiskResult r = credit_futures[i].get();
      h = fnv_mix(h, &r.id, sizeof r.id);
      const double stats[5] = {r.mean, r.variance, r.var95, r.var999,
                               r.es999};
      h = fnv_mix(h, stats, sizeof stats);
    }
  }
  return h;
}

serve::ClusterConfig cluster_config(const LoadSpec& spec,
                                    std::size_t shards) {
  serve::ClusterConfig cfg;
  cfg.num_shards = shards;
  cfg.shard.server_seed = spec.seed;
  // The sweep's capacity metric wants every offered request admitted:
  // size each shard's queue for the worst case (everything on one).
  cfg.shard.queue_capacity = spec.requests + 1;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> extra;
  const auto args = bench::parse_bench_args(
      argc, argv, "serve_cluster", "BENCH_serve_cluster.json",
      "[--requests=N] [--samples=N] [--rate=RPS] [--shards=1,2,4,8]",
      &extra);
  if (!args) return 2;

  LoadSpec spec;
  spec.seed = static_cast<std::uint32_t>(args->seed);
  for (const std::string& arg : extra) {
    if (arg.rfind("--requests=", 0) == 0) {
      spec.requests = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 11, nullptr, 10));
    } else if (arg.rfind("--samples=", 0) == 0) {
      spec.samples = static_cast<std::uint32_t>(
          std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--rate=", 0) == 0) {
      spec.open_loop_rate = std::strtod(arg.c_str() + 7, nullptr);
    } else if (arg.rfind("--shards=", 0) == 0) {
      spec.shards = bench::parse_uint_list(
          std::string_view(arg).substr(9));
    } else {
      std::cerr << "serve_cluster: unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (spec.requests < 16 || spec.samples == 0 || spec.shards.empty() ||
      !(spec.open_loop_rate > 0.0)) {
    std::cerr << "serve_cluster: need requests>=16, samples>0, "
                 "shards non-empty, rate>0\n";
    return 2;
  }

  const auto portfolio = std::make_shared<const finance::Portfolio>(
      finance::Portfolio::synthetic(
          48, {{1.39, "representative"}, {0.8, "stable"}}, spec.seed));
  const std::vector<RequestItem> items = build_request_set(spec, portfolio);
  const unsigned max_threads =
      *std::max_element(args->threads.begin(), args->threads.end());
  exec::set_thread_count(max_threads);

  std::cout << "seed: " << spec.seed << "\n";
  std::cout << "request set: " << items.size() << " requests ("
            << items.size() - items.size() / 8 << " gamma x "
            << spec.samples << " samples, " << items.size() / 8
            << " CreditRisk+ x 256 scenarios)\n";

  // ==== Phase 1: cross-shard determinism fingerprints =================
  struct Cell {
    const char* name;
    std::size_t shards;
    serve::RouterPolicy policy;
    bool steal;
    bool resident;
  };
  const Cell cells[] = {
      {"1 shard, hash, steal", 1, serve::RouterPolicy::kConsistentHash,
       true, false},
      {"2 shards, hash, steal", 2, serve::RouterPolicy::kConsistentHash,
       true, false},
      {"4 shards, hash, steal", 4, serve::RouterPolicy::kConsistentHash,
       true, false},
      {"8 shards, hash, steal", 8, serve::RouterPolicy::kConsistentHash,
       true, false},
      {"4 shards, least-loaded", 4, serve::RouterPolicy::kLeastLoaded,
       true, false},
      {"4 shards, hash, no steal", 4, serve::RouterPolicy::kConsistentHash,
       false, false},
      {"4 shards, hash, resident", 4, serve::RouterPolicy::kConsistentHash,
       true, true},
  };
  constexpr std::size_t kCells = sizeof(cells) / sizeof(cells[0]);
  std::uint64_t fingerprints[kCells] = {};
  for (std::size_t c = 0; c < kCells; ++c) {
    serve::ClusterConfig cfg = cluster_config(spec, cells[c].shards);
    cfg.policy = cells[c].policy;
    cfg.steal = cells[c].steal;
    cfg.shard.resident = cells[c].resident;
    serve::ShardedSamplingServer cluster(cfg);
    fingerprints[c] = run_set_fingerprint(cluster, items);
  }
  bool identical = true;
  std::cout << "\n=== Cross-shard determinism (per-request fingerprints) "
               "===\n";
  for (std::size_t c = 0; c < kCells; ++c) {
    const bool ok = fingerprints[c] == fingerprints[0];
    identical &= ok;
    std::cout << "  " << cells[c].name << ": " << std::hex
              << fingerprints[c] << std::dec << (ok ? "" : "  MISMATCH")
              << "\n";
  }
  std::cout << (identical
                    ? "All cluster topologies produced bit-identical "
                      "results."
                    : "ERROR: responses depend on shard placement!")
            << "\n";

  // ==== Phase 2: open-loop shard sweep ================================
  struct SweepPoint {
    unsigned shards = 0;
    double wall_seconds = 0.0;            ///< host wall (context only)
    double bottleneck_seconds = 0.0;      ///< busiest modeled device
    double total_modeled_seconds = 0.0;   ///< sum over devices
    double throughput_rps = 0.0;          ///< modeled aggregate capacity
    double max_shard_share = 0.0;         ///< admitted fraction, busiest
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t stolen = 0;
  };
  std::vector<SweepPoint> sweep;
  for (const unsigned shards : spec.shards) {
    serve::ShardedSamplingServer cluster(cluster_config(spec, shards));
    std::vector<std::future<serve::GammaResult>> gfs;
    std::vector<std::future<serve::CreditRiskResult>> cfs;
    gfs.reserve(items.size());
    cfs.reserve(items.size());
    std::uint64_t rejected = 0;
    const auto period = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(1.0 / spec.open_loop_rate));
    const auto t0 = std::chrono::steady_clock::now();
    auto next_arrival = t0;
    for (const RequestItem& item : items) {
      std::this_thread::sleep_until(next_arrival);
      next_arrival += period;
      if (item.is_gamma) {
        std::future<serve::GammaResult> f;
        if (cluster.try_submit(item.gamma, &f) ==
            serve::ServeStatus::kAdmitted) {
          gfs.push_back(std::move(f));
        } else {
          ++rejected;
        }
      } else {
        std::future<serve::CreditRiskResult> f;
        if (cluster.try_submit(item.credit, &f) ==
            serve::ServeStatus::kAdmitted) {
          cfs.push_back(std::move(f));
        } else {
          ++rejected;
        }
      }
    }
    for (auto& f : gfs) (void)f.get();
    for (auto& f : cfs) (void)f.get();
    const auto t1 = std::chrono::steady_clock::now();

    const serve::ClusterSnapshot snap = cluster.metrics();
    SweepPoint p;
    p.shards = shards;
    p.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    p.bottleneck_seconds = snap.bottleneck_modeled_seconds();
    p.admitted = snap.admitted;
    p.rejected = rejected;
    p.stolen = snap.stolen;
    std::uint64_t busiest = 0;
    for (const serve::ShardSnapshot& s : snap.shards) {
      p.total_modeled_seconds += s.modeled_busy_seconds;
      busiest = std::max(busiest, s.routed_primary + s.stolen_in);
    }
    p.max_shard_share = snap.admitted > 0
                            ? static_cast<double>(busiest) /
                                  static_cast<double>(snap.admitted)
                            : 0.0;
    p.throughput_rps = p.bottleneck_seconds > 0.0
                           ? static_cast<double>(p.admitted) /
                                 p.bottleneck_seconds
                           : 0.0;
    sweep.push_back(p);
  }
  exec::set_thread_count(0);  // back to the environment default

  std::cout << "\n=== Open-loop shard sweep (offered "
            << spec.open_loop_rate << " req/s, modeled FPGA shards) ===\n";
  {
    TextTable t;
    t.set_header({"Shards", "Admitted", "Stolen", "Max share",
                  "Bottleneck [s]", "Capacity [req/s]", "Host wall [s]"});
    for (const auto& p : sweep) {
      t.add_row({TextTable::integer(p.shards),
                 TextTable::integer(static_cast<long long>(p.admitted)),
                 TextTable::integer(static_cast<long long>(p.stolen)),
                 TextTable::num(p.max_shard_share, 2),
                 TextTable::num(p.bottleneck_seconds, 4),
                 TextTable::num(p.throughput_rps, 0),
                 TextTable::num(p.wall_seconds, 3)});
    }
    t.render(std::cout);
  }

  double scaling_1_to_4 = 0.0;
  {
    const SweepPoint* one = nullptr;
    const SweepPoint* four = nullptr;
    for (const auto& p : sweep) {
      if (p.shards == 1) one = &p;
      if (p.shards == 4) four = &p;
    }
    if (one && four && one->throughput_rps > 0.0) {
      scaling_1_to_4 = four->throughput_rps / one->throughput_rps;
      std::cout << "Modeled capacity scaling 1 -> 4 shards: "
                << TextTable::num(scaling_1_to_4, 2) << "x\n";
    }
  }

  // ==== Artifact ======================================================
  if (auto jf = bench::open_bench_json(args->json_path)) {
    bench::JsonWriter j(jf);
    j.begin_object();
    bench::write_bench_header(j, "serve_cluster", args->seed);
    j.kv("requests", static_cast<std::uint64_t>(items.size()));
    j.kv("gamma_samples_per_request", spec.samples);
    j.kv("offered_rps", spec.open_loop_rate);
    j.kv("cross_shard_identical", identical);
    j.key("sweep").begin_array();
    for (const auto& p : sweep) {
      j.begin_object();
      j.kv("shards", p.shards);
      j.kv("wall_seconds", p.wall_seconds);
      j.kv("modeled_bottleneck_seconds", p.bottleneck_seconds);
      j.kv("modeled_total_seconds", p.total_modeled_seconds);
      j.kv("throughput_rps", p.throughput_rps);
      j.kv("max_shard_share", p.max_shard_share);
      j.kv("admitted", p.admitted);
      j.kv("rejected_queue_full", p.rejected);
      j.kv("stolen", p.stolen);
      j.end_object();
    }
    j.end_array();
    j.kv("scaling_1_to_4", scaling_1_to_4);
    j.end_object();
    jf << "\n";
    std::cout << "Wrote " << args->json_path << "\n";
  }
  return identical ? 0 : 1;
}
