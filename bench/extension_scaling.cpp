// Extensions beyond the paper's evaluation, following its own pointers:
//
//  (1) §V: "Further customizations of the memory controller inside the
//      tool would improve the performance" — sweep the number of
//      independent memory channels and the burst turnaround to show
//      where the Config3/4 designs stop being transfer-bound;
//
//  (2) §I: the paper motivates FPGAs-in-the-cloud with the Amazon EC2
//      F1 announcement — project the design onto an F1-class VU9P
//      (more slices → more decoupled work-items, 4 DDR4 channels,
//      higher clock) and estimate the kernel runtime there.
#include <iostream>
#include <memory>

#include "common/table.h"
#include "fpga/device.h"
#include "fpga/kernel_sim.h"
#include "fpga/resource_model.h"
#include "rng/configs.h"

int main() {
  using namespace dwi;
  const std::uint64_t full_outputs = 2'621'440ull * 240ull;
  const std::uint64_t sim_outputs = full_outputs / 512;

  std::cout << "=== (1) Memory-controller customization: channels x "
               "turnaround (Config3/4-like: 8 WI, 18-beat bursts, "
               "2.4% rejection) ===\n\n";
  TextTable t;
  t.set_header({"Channels", "Turnaround", "Runtime [ms]",
                "Bandwidth [GB/s]", "Bound by"});
  for (unsigned channels : {1u, 2u, 4u}) {
    for (unsigned turnaround : {41u, 16u}) {
      fpga::KernelSimConfig cfg;
      cfg.work_items = 8;
      cfg.burst_beats = 18;
      cfg.memory_channels = channels;
      cfg.channel.turnaround_cycles = turnaround;
      cfg.outputs_per_work_item = sim_outputs / cfg.work_items;
      const auto r = fpga::simulate_kernel(cfg, [](unsigned w) {
        return std::make_unique<fpga::BernoulliProducer>(0.976, 5 + w);
      });
      const double ms =
          fpga::extrapolate_seconds(r, full_outputs, 200e6) * 1e3;
      const double stall = static_cast<double>(r.compute_stall_cycles) /
                           (static_cast<double>(r.cycles) * cfg.work_items);
      t.add_row({TextTable::integer(channels),
                 TextTable::integer(turnaround), TextTable::num(ms, 0),
                 TextTable::num(r.bandwidth_bytes(200e6) / 1e9, 2),
                 stall > 0.05 ? "memory" : "compute"});
    }
  }
  t.render(std::cout);
  std::cout << "Paper baseline: 1 channel, 642 ms, transfer-bound; Eq(1) "
               "compute bound is ~400 ms — one extra channel (or a "
               "leaner datamover) recovers it.\n";

  std::cout << "\n=== (2) Projection onto an AWS F1-class VU9P ===\n\n";
  TextTable f;
  f.set_header({"Device", "Config", "Max WI", "Slice%", "Est. kernel [ms]"});
  for (const fpga::DeviceSpec* dev :
       {&fpga::adm_pcie_7v3(), &fpga::aws_f1_vu9p()}) {
    const bool is_f1 = dev == &fpga::aws_f1_vu9p();
    for (const auto& cfg :
         {rng::config(rng::ConfigId::kConfig1), rng::config(rng::ConfigId::kConfig3)}) {
      const unsigned n = fpga::max_work_items(*dev, cfg);
      const auto u = fpga::estimate_utilization(*dev, cfg, n);
      fpga::KernelSimConfig k;
      k.work_items = n > 64 ? 64 : n;  // simulator lane cap
      k.burst_beats = cfg.uses_marsaglia_bray ? 16 : 18;
      k.memory_channels = is_f1 ? 4 : 1;
      k.outputs_per_work_item =
          std::max<std::uint64_t>(2048, sim_outputs / k.work_items);
      const double accept = cfg.uses_marsaglia_bray ? 0.766 : 0.976;
      const auto r = fpga::simulate_kernel(k, [&](unsigned w) {
        return std::make_unique<fpga::BernoulliProducer>(accept, 9 + w);
      });
      const double ms =
          fpga::extrapolate_seconds(r, full_outputs, dev->clock_hz) * 1e3;
      f.add_row({is_f1 ? "AWS F1 (VU9P)" : "ADM-PCIE-7V3 (paper)",
                 cfg.name, TextTable::integer(n),
                 TextTable::num(u.slice_util * 100, 1),
                 TextTable::num(ms, 0)});
    }
  }
  f.render(std::cout);
  std::cout << "The decoupled-work-item pattern scales with the fabric: "
               "an F1-class part fits an order of magnitude more "
               "pipelines, and with 4 DDR4 channels the kernel goes "
               "compute-bound again (work-item count capped at 64 in the "
               "simulator; resource-model maximum shown in 'Max WI').\n";
  return 0;
}
