// Ablation: §III-E buffer-combining strategies. Host-level combining
// issues one read request per work-item buffer; device-level combining
// (the paper's choice) assigns the same device buffer to every
// work-item with wid-based offsets and needs a single read. Shows the
// host-side cost difference and the functional equivalence of the two
// layouts.
#include <iostream>

#include "common/table.h"
#include "core/decoupled_work_items.h"
#include "minicl/runtime.h"

int main() {
  using namespace dwi;

  std::cout << "=== Ablation: combining result buffers at host vs device "
               "level (SS III-E) ===\n\n";

  const std::uint64_t total_bytes = 2'500'000'000ull;  // the paper's 2.5 GB
  auto fpga = minicl::find_device("FPGA");

  TextTable t;
  t.set_header({"Strategy", "Read requests", "Host read time [ms]",
                "Overhead vs device-level"});
  double device_ms = 0.0;
  for (unsigned n : {1u, 2u, 4u, 6u, 8u}) {
    minicl::CommandQueue q(*fpga);
    auto e = q.enqueue_read(total_bytes, minicl::BufferCombining::kHostLevel,
                            n);
    const double ms = e->duration() * 1e3;
    if (n == 1) device_ms = ms;  // 1 request == device-level combining
    t.add_row({n == 1 ? "device-level (1 buffer)"
                      : "host-level (" + std::to_string(n) + " buffers)",
               TextTable::integer(n), TextTable::num(ms, 2),
               TextTable::num((ms - device_ms) / device_ms * 100, 3) + "%"});
  }
  t.render(std::cout);
  std::cout << "\nDevice-side cost of sharing one buffer across work-items: "
               "<1% (paper, SS III-E2) — the shared-buffer offsets do not "
               "change the burst pattern, so the kernel simulation is "
               "identical by construction.\n";

  // Functional equivalence of the two layouts.
  std::cout << "\n--- Functional check: both strategies yield the same host "
               "buffer ---\n";
  const std::uint64_t floats_per_wi = 512;
  std::vector<std::vector<core::MemoryWord>> per_wi(4);
  for (unsigned wid = 0; wid < 4; ++wid) {
    per_wi[wid].resize(floats_per_wi / 16);
    core::MemoryWord acc;
    unsigned lane = 0;
    std::uint64_t word = 0;
    for (std::uint64_t i = 0; i < floats_per_wi; ++i) {
      if (core::pack_g512(&acc, static_cast<float>(wid * 10000 + i), &lane)) {
        per_wi[wid][word++] = acc;
      }
    }
  }
  const auto host = core::combine_buffers_at_host(per_wi, floats_per_wi);

  core::DecoupledConfig dcfg;
  dcfg.work_items = 4;
  dcfg.floats_per_work_item = floats_per_wi;
  const auto device = core::run_decoupled_work_items(
      dcfg, [](unsigned wid, hls::stream<float>& out, std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; ++i) {
          out.write(static_cast<float>(wid * 10000 + i));
        }
      });
  const auto device_floats = device.to_floats();
  bool equal = device_floats.size() == host.size();
  for (std::size_t i = 0; equal && i < host.size(); ++i) {
    equal = host[i] == device_floats[i];
  }
  std::cout << (equal ? "PASS" : "FAIL")
            << ": host-level and device-level combining produce identical "
               "host buffers ("
            << host.size() << " floats compared)\n";
  return equal ? 0 : 1;
}
