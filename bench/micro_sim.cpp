// Micro-benchmarks of the simulators themselves: how many simulated
// cycles/regions per second the engines sustain on the host. These
// numbers bound the experiment turnaround (e.g. how much scaling
// headroom the DESIGN.md §5 extrapolation buys).
#include <benchmark/benchmark.h>

#include <memory>

#include "core/fpga_app.h"
#include "fpga/kernel_sim.h"
#include "fpga/scheduler.h"
#include "rng/configs.h"
#include "simt/gamma_kernel.h"
#include "simt/platform.h"

namespace {

using namespace dwi;

void BM_FpgaKernelSimCyclesPerSecond(benchmark::State& state) {
  const auto wi = static_cast<unsigned>(state.range(0));
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    fpga::KernelSimConfig cfg;
    cfg.work_items = wi;
    cfg.outputs_per_work_item = 20'000;
    const auto r = fpga::simulate_kernel(cfg, [](unsigned w) {
      return std::make_unique<fpga::BernoulliProducer>(0.766, 3 + w);
    });
    cycles += r.cycles;
    benchmark::DoNotOptimize(r.outputs);
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FpgaKernelSimCyclesPerSecond)->Arg(1)->Arg(6)->Arg(8);

void BM_FpgaKernelSimWithRealNumerics(benchmark::State& state) {
  // Full Listing 2 numerics as the producer (the Table III FPGA path).
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    core::FpgaWorkload w;
    w.scale_divisor = 16'384;
    const auto r = core::run_fpga_application(
        rng::config(rng::ConfigId::kConfig1), w);
    cycles += r.sim.cycles;
    benchmark::DoNotOptimize(r.seconds_full);
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FpgaKernelSimWithRealNumerics);

void BM_SimtPartitionIterations(benchmark::State& state) {
  std::uint64_t iters = 0;
  std::uint32_t seed = 1;
  for (auto _ : state) {
    const auto r = simt::run_gamma_partition(
        simt::gpu_tesla_k80(), rng::config(rng::ConfigId::kConfig2),
        rng::NormalTransform::kMarsagliaBray, 1.39f, 500, seed++);
    iters += r.iterations;
    benchmark::DoNotOptimize(r.accepted);
  }
  state.counters["warp_iters/s"] = benchmark::Counter(
      static_cast<double>(iters), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimtPartitionIterations);

void BM_ModuloSchedulerMii(benchmark::State& state) {
  for (auto _ : state) {
    const auto g = fpga::gamma_mainloop_graph(2, true);
    benchmark::DoNotOptimize(g.min_initiation_interval());
  }
}
BENCHMARK(BM_ModuloSchedulerMii);

}  // namespace

BENCHMARK_MAIN();
