// Ablation: the Listing 2 delayed-counter workaround. Compares the
// full FPGA application with II = 1 (delayed counter, breakId = 0)
// against the naive dynamically-modified loop exit (the scheduler is
// forced to II = counter-chain latency), and tabulates the II model
// over the delay-register count.
#include <iostream>

#include "common/table.h"
#include "core/delayed_counter.h"
#include "core/fpga_app.h"
#include "fpga/scheduler.h"
#include "rng/configs.h"

int main() {
  using namespace dwi;

  std::cout << "=== Ablation: dynamically-modified loop exit at II = 1 "
               "(Listing 2 workaround) ===\n\n";

  std::cout << "--- Scheduling model: achieved II vs delay registers "
               "(counter recurrence latency 2; RecMII = ceil(lat/dist)) "
               "---\n";
  TextTable m;
  m.set_header({"Delay registers (breakId+1)", "Achieved II",
                "Modulo-scheduler MII (derived)"});
  for (unsigned d = 0; d <= 3; ++d) {
    const auto g = fpga::gamma_mainloop_graph(d + 1, true);
    m.add_row({TextTable::integer(d),
               TextTable::integer(core::achieved_initiation_interval(2, d)),
               TextTable::integer(g.min_initiation_interval())});
  }
  m.render(std::cout);

  std::cout << "\n--- Full application, naive counter vs delayed counter "
               "---\n";
  TextTable t;
  t.set_header({"Config", "II", "Runtime [ms]", "Bandwidth [GB/s]",
                "Slowdown"});
  core::FpgaWorkload w;
  w.scale_divisor = 1024;
  for (const auto& cfg : rng::all_configs()) {
    const auto fast = core::run_fpga_application(cfg, w, 1, true);
    const auto slow = core::run_fpga_application(cfg, w, 1, false);
    t.add_row({cfg.name,
               TextTable::integer(core::config_initiation_interval(true)),
               TextTable::num(fast.seconds_full * 1e3, 0),
               TextTable::num(fast.bandwidth_gbps, 2), "1.00"});
    t.add_row({std::string(cfg.name) + " (naive)",
               TextTable::integer(core::config_initiation_interval(false)),
               TextTable::num(slow.seconds_full * 1e3, 0),
               TextTable::num(slow.bandwidth_gbps, 2),
               TextTable::num(slow.seconds_full / fast.seconds_full, 2)});
    t.add_separator();
  }
  t.render(std::cout);
  std::cout << "\nWithout the workaround the pipeline initiates every 2 "
               "cycles and the kernel becomes compute-bound everywhere — "
               "the FPGA would lose to the Xeon Phi in every configuration "
               "and to the GPU in Config2/4.\n";
  return 0;
}
