// Shared argv parsing for the bench/ drivers.
//
// Every sweep-style bench takes the same three flags —
//   --threads=1,2,8   host thread counts to sweep (sorted, deduped)
//   --json=PATH       BENCH_*.json artifact path
//   --seed=S          RNG seed recorded in the artifact
// — previously copy-pasted per driver. parse_bench_args() owns them;
// bench-specific flags can be collected through `extra` and parsed by
// the caller.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bench_json.h"
#include "exec/thread_pool.h"

namespace dwi::bench {

struct BenchArgs {
  /// Sorted, deduplicated sweep thread counts. Default: {1, the
  /// DWI_THREADS / hardware default}.
  std::vector<unsigned> threads;
  std::string json_path;
  std::uint64_t seed = 1;
};

/// Parse the shared flags. On success returns the filled BenchArgs; on
/// a malformed or unknown flag prints a usage line mentioning
/// `bench_name` (plus `extra_usage`, if any) to stderr and returns
/// nullopt — callers should exit 2. When `extra` is non-null,
/// unrecognized arguments are appended there instead of failing, for
/// benches with flags of their own.
inline std::optional<BenchArgs> parse_bench_args(
    int argc, char** argv, std::string_view bench_name,
    std::string default_json, std::string_view extra_usage = "",
    std::vector<std::string>* extra = nullptr) {
  BenchArgs a;
  a.threads = {1, exec::ExecConfig::from_env().resolved()};
  a.json_path = std::move(default_json);

  const auto usage = [&] {
    std::cerr << "usage: " << bench_name
              << " [--threads=1,2,8] [--json=PATH] [--seed=S]";
    if (!extra_usage.empty()) std::cerr << ' ' << extra_usage;
    std::cerr << '\n';
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      a.threads = parse_uint_list(arg.substr(10));
    } else if (arg.rfind("--json=", 0) == 0) {
      a.json_path = std::string(arg.substr(7));
    } else if (arg.rfind("--seed=", 0) == 0) {
      char* end = nullptr;
      const std::string text(arg.substr(7));
      a.seed = std::strtoull(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        std::cerr << "error: --seed needs a decimal integer\n";
        usage();
        return std::nullopt;
      }
    } else if (extra != nullptr) {
      extra->emplace_back(arg);
    } else {
      usage();
      return std::nullopt;
    }
  }

  std::sort(a.threads.begin(), a.threads.end());
  a.threads.erase(std::unique(a.threads.begin(), a.threads.end()),
                  a.threads.end());
  if (a.threads.empty()) {
    std::cerr << "error: --threads needs at least one positive count\n";
    usage();
    return std::nullopt;
  }
  return a;
}

}  // namespace dwi::bench
