// Fig 2 and Fig 3, regenerated from real execution traces instead of
// drawn as concept art:
//
//   Fig 2b: a lockstep hardware partition running the Marsaglia-Bray
//   gamma kernel — every executed region prints one column, active
//   lanes '#', idle lanes '.' (the paper's red dots), showing the
//   divergence the fixed architectures pay;
//
//   Fig 2c / Fig 3: the FPGA's decoupled work-items — per-cycle state
//   of each pipeline (C = computation, S = stalled on the stream) and
//   of the single memory channel (digit = work-item being served),
//   showing computation/transfer interleaving and the work-items
//   shifting apart in time.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_args.h"
#include "bench_json.h"
#include "fpga/kernel_sim.h"
#include "rng/configs.h"
#include "simt/gamma_kernel.h"
#include "simt/platform.h"

int main(int argc, char** argv) {
  using namespace dwi;

  // Single-threaded figure bench: the shared --threads flag is parsed
  // for CLI uniformity but has nothing to sweep here.
  const auto args = bench::parse_bench_args(argc, argv, "fig2_fig3_schedules",
                                            "BENCH_fig2_fig3.json");
  if (!args) return 2;
  double idle_lane_pct = 0.0;

  // --- Fig 2b: divergence on a fixed architecture ----------------------
  std::cout << "=== Fig 2b: lockstep partition, Marsaglia-Bray gamma "
               "kernel (16 lanes, first 28 regions) ===\n"
               "columns = executed regions in issue order; '#' = lane "
               "active, '.' = lane idle (divergence waste)\n\n";
  {
    std::vector<std::pair<simt::Mask, simt::Mask>> regions;
    simt::PlatformModel pm = simt::phi_7120p();
    (void)simt::run_gamma_partition(
        pm, rng::config(rng::ConfigId::kConfig2),
        rng::NormalTransform::kMarsagliaBray, 1.39f, 4, 21,
        rng::StreamStrategy::kDistinctSeeds,
        [&](simt::Mask mask, simt::Mask parent, const simt::OpBundle&) {
          if (regions.size() < 28) regions.emplace_back(mask, parent);
        });
    for (unsigned lane = 0; lane < pm.width; ++lane) {
      std::cout << "lane " << (lane < 10 ? " " : "") << lane << " |";
      for (const auto& [mask, parent] : regions) {
        const bool active = (mask >> lane) & 1u;
        const bool in_flow = (parent >> lane) & 1u;
        std::cout << (active ? '#' : (in_flow ? '.' : ' '));
      }
      std::cout << "|\n";
    }
    double idle = 0.0;
    double total = 0.0;
    for (const auto& [mask, parent] : regions) {
      total += pm.width;
      idle += pm.width - static_cast<double>(simt::popcount(mask));
    }
    idle_lane_pct = 100.0 * idle / total;
    std::cout << "\nidle lane-slots in this window: " << idle_lane_pct
              << " %\n";
  }

  // --- Fig 2c / Fig 3: decoupled FPGA work-items ------------------------
  std::cout << "\n=== Fig 2c / Fig 3: decoupled work-items on the FPGA "
               "(4 work-items, small bursts for visibility) ===\n"
               "per work-item: C = computation, S = stalled on stream, "
               "- = II wait; channel row: digit = serving work-item\n\n";
  {
    fpga::ScheduleTrace trace;
    fpga::KernelSimConfig cfg;
    cfg.work_items = 4;
    cfg.outputs_per_work_item = 192;
    cfg.burst_beats = 2;          // tiny bursts so transfers are visible
    cfg.stream_depth = 8;
    cfg.channel.turnaround_cycles = 6;
    cfg.trace = &trace;
    // --seed shifts the producers' acceptance pattern; the default (1)
    // reproduces the committed figure.
    const auto base_seed = static_cast<unsigned>(args->seed) + 32;
    (void)fpga::simulate_kernel(cfg, [base_seed](unsigned w) {
      return std::make_unique<fpga::BernoulliProducer>(0.766, base_seed + w);
    });
    const std::size_t window_start = 40;  // skip the fill, show steady state
    const std::size_t window = 140;
    for (unsigned w = 0; w < cfg.work_items; ++w) {
      std::cout << "WI" << w << " |"
                << trace.work_items[w].substr(window_start, window) << "|\n";
    }
    std::cout << "mem |" << trace.channel.substr(window_start, window)
              << "|\n";
    std::cout << "\nEach work-item computes continuously (rejections do "
                 "not stall the others); the single channel serializes "
                 "the bursts, shifting the work-items apart exactly as "
                 "Fig 3 sketches.\n";
  }

  if (auto jf = bench::open_bench_json(args->json_path)) {
    bench::JsonWriter j(jf);
    j.begin_object();
    bench::write_bench_header(j, "fig2_fig3_schedules", args->seed);
    j.kv("idle_lane_pct", idle_lane_pct);
    j.end_object();
    jf << "\n";
    std::cout << "\nWrote " << args->json_path << "\n";
  }
  return 0;
}
