// Serving-layer load generator: latency/throughput of the
// src/serve SamplingServer under closed-loop and open-loop traffic.
//
// Three phases:
//   1. Determinism matrix — one fixed request set (mixed gamma +
//      CreditRisk+) is served under serial/parallel, batching on/off,
//      natural/shuffled submission order; per-request results must be
//      bit-identical in every cell (the serving determinism contract,
//      also pinned by tests/test_serve.cpp). Any divergence fails the
//      bench (exit 1) and trips compare_bench.py via
//      identical_across_threads=false.
//   2. Closed loop — per --threads entry, C client threads submit the
//      set synchronously back-to-back; wall time gives req/s, server
//      metrics give admission→completion p50/p95/p99. These are the
//      "sweep" entries the perf-regression CI job polices against
//      bench/baselines/serve_throughput.json.
//   3. Open loop — a single pacer offers requests at a fixed arrival
//      rate (--rate) regardless of completions; overload shows up as
//      typed queue-full rejections, never as a blocked client.
//
// Emits BENCH_serve.json (schema: docs/SERVE.md) via bench/bench_json.h.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <future>
#include <iostream>
#include <memory>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_args.h"
#include "bench_json.h"
#include "common/table.h"
#include "exec/thread_pool.h"
#include "finance/portfolio.h"
#include "serve/sampling_server.h"

namespace {

using namespace dwi;

struct RequestItem {
  bool is_gamma = true;
  serve::GammaRequest gamma;
  serve::CreditRiskRequest credit;
};

struct LoadSpec {
  std::size_t requests = 384;
  std::uint32_t samples = 2048;     ///< gamma variates per request
  double open_loop_rate = 4000.0;   ///< offered req/s
  unsigned clients = 4;             ///< closed-loop client threads
  std::uint32_t seed = 1;
};

/// The fixed request mix: seven gamma batches (shapes cycling through
/// the paper's CreditRisk+ regime and heavier tails) per CreditRisk+
/// portfolio job.
std::vector<RequestItem> build_request_set(
    const LoadSpec& spec,
    const std::shared_ptr<const finance::Portfolio>& portfolio) {
  const float alphas[4] = {0.72f, 1.5f, 2.47f, 5.0f};
  std::vector<RequestItem> items;
  items.reserve(spec.requests);
  for (std::size_t i = 0; i < spec.requests; ++i) {
    RequestItem item;
    if (i % 8 == 7) {
      item.is_gamma = false;
      item.credit.id = i + 1;
      item.credit.portfolio = portfolio;
      item.credit.num_scenarios = 256;
    } else {
      item.is_gamma = true;
      item.gamma.id = i + 1;
      item.gamma.alpha = alphas[i % 4];
      item.gamma.scale = 1.0f;
      item.gamma.count = spec.samples;
    }
    items.push_back(item);
  }
  return items;
}

std::uint64_t fnv_mix(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Serve the whole set (submission order given by `order`), then
/// fingerprint every result in ascending-id order so the hash is
/// independent of completion interleaving.
std::uint64_t run_set_fingerprint(serve::SamplingServer& server,
                                  const std::vector<RequestItem>& items,
                                  const std::vector<std::size_t>& order) {
  std::vector<std::future<serve::GammaResult>> gamma_futures(items.size());
  std::vector<std::future<serve::CreditRiskResult>> credit_futures(
      items.size());
  for (const std::size_t i : order) {
    if (items[i].is_gamma) {
      gamma_futures[i] = server.submit(items[i].gamma);
    } else {
      credit_futures[i] = server.submit(items[i].credit);
    }
  }
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].is_gamma) {
      const serve::GammaResult r = gamma_futures[i].get();
      h = fnv_mix(h, &r.id, sizeof r.id);
      h = fnv_mix(h, r.samples.data(), r.samples.size() * sizeof(float));
      h = fnv_mix(h, &r.attempts, sizeof r.attempts);
    } else {
      const serve::CreditRiskResult r = credit_futures[i].get();
      h = fnv_mix(h, &r.id, sizeof r.id);
      const double stats[5] = {r.mean, r.variance, r.var95, r.var999,
                               r.es999};
      h = fnv_mix(h, stats, sizeof stats);
    }
  }
  return h;
}

serve::ServeConfig server_config(const LoadSpec& spec, bool batching) {
  serve::ServeConfig cfg;
  cfg.server_seed = spec.seed;
  cfg.batching = batching;
  // Determinism runs submit the whole set before draining; size the
  // queue for it so admission never rejects in that phase.
  cfg.queue_capacity = spec.requests + 1;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> extra;
  const auto args = bench::parse_bench_args(
      argc, argv, "serve_throughput", "BENCH_serve.json",
      "[--requests=N] [--samples=N] [--rate=RPS] [--clients=C]", &extra);
  if (!args) return 2;

  LoadSpec spec;
  spec.seed = static_cast<std::uint32_t>(args->seed);
  for (const std::string& arg : extra) {
    if (arg.rfind("--requests=", 0) == 0) {
      spec.requests = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 11, nullptr, 10));
    } else if (arg.rfind("--samples=", 0) == 0) {
      spec.samples = static_cast<std::uint32_t>(
          std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--rate=", 0) == 0) {
      spec.open_loop_rate = std::strtod(arg.c_str() + 7, nullptr);
    } else if (arg.rfind("--clients=", 0) == 0) {
      spec.clients = static_cast<unsigned>(
          std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else {
      std::cerr << "serve_throughput: unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (spec.requests < 8 || spec.samples == 0 || spec.clients == 0 ||
      !(spec.open_loop_rate > 0.0)) {
    std::cerr << "serve_throughput: need requests>=8, samples>0, "
                 "clients>0, rate>0\n";
    return 2;
  }

  const auto portfolio = std::make_shared<const finance::Portfolio>(
      finance::Portfolio::synthetic(
          48, {{1.39, "representative"}, {0.8, "stable"}}, spec.seed));
  const std::vector<RequestItem> items = build_request_set(spec, portfolio);
  std::vector<std::size_t> natural(items.size());
  std::iota(natural.begin(), natural.end(), std::size_t{0});
  std::vector<std::size_t> shuffled = natural;
  std::shuffle(shuffled.begin(), shuffled.end(),
               std::mt19937_64(args->seed ^ 0xD1CEull));

  const unsigned max_threads =
      *std::max_element(args->threads.begin(), args->threads.end());

  std::cout << "seed: " << spec.seed << "\n";
  std::cout << "request set: " << items.size() << " requests ("
            << items.size() - items.size() / 8 << " gamma x "
            << spec.samples << " samples, " << items.size() / 8
            << " CreditRisk+ x 256 scenarios)\n";

  // ==== Phase 1: determinism matrix ===================================
  struct Cell {
    const char* name;
    unsigned threads;
    bool batching;
    const std::vector<std::size_t>* order;
  };
  const Cell cells[4] = {
      {"serial, unbatched, natural", 1, false, &natural},
      {"parallel, batched, natural", max_threads, true, &natural},
      {"parallel, batched, shuffled", max_threads, true, &shuffled},
      {"parallel, unbatched, shuffled", max_threads, false, &shuffled},
  };
  std::uint64_t fingerprints[4] = {0, 0, 0, 0};
  for (int c = 0; c < 4; ++c) {
    exec::set_thread_count(cells[c].threads);
    serve::SamplingServer server(server_config(spec, cells[c].batching));
    fingerprints[c] = run_set_fingerprint(server, items, *cells[c].order);
  }
  bool identical = true;
  std::cout << "\n=== Determinism matrix (per-request fingerprints) ===\n";
  for (int c = 0; c < 4; ++c) {
    const bool ok = fingerprints[c] == fingerprints[0];
    identical &= ok;
    std::cout << "  " << cells[c].name << ": " << std::hex
              << fingerprints[c] << std::dec << (ok ? "" : "  MISMATCH")
              << "\n";
  }
  std::cout << (identical
                    ? "All serving schedules produced bit-identical results."
                    : "ERROR: serving results depend on the schedule!")
            << "\n";

  // ==== Phase 2: closed loop per thread count =========================
  struct SweepPoint {
    unsigned threads = 0;
    double wall_seconds = 0.0;
    double throughput_rps = 0.0;
    serve::MetricsSnapshot metrics;
  };
  std::vector<SweepPoint> sweep;
  for (const unsigned threads : args->threads) {
    exec::set_thread_count(threads);
    serve::SamplingServer server(server_config(spec, true));
    const unsigned clients = spec.clients;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (unsigned c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        for (std::size_t i = c; i < items.size(); i += clients) {
          if (items[i].is_gamma) {
            (void)server.run(items[i].gamma);
          } else {
            (void)server.run(items[i].credit);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    const auto t1 = std::chrono::steady_clock::now();
    SweepPoint p;
    p.threads = threads;
    p.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    p.throughput_rps =
        static_cast<double>(items.size()) / p.wall_seconds;
    p.metrics = server.metrics();
    sweep.push_back(p);
  }

  std::cout << "\n=== Closed loop (" << spec.clients << " clients, "
            << items.size() << " requests) ===\n";
  {
    TextTable t;
    t.set_header({"Threads", "Wall [s]", "Req/s", "p50 [ms]", "p95 [ms]",
                  "p99 [ms]", "Mean batch"});
    for (const auto& p : sweep) {
      t.add_row({TextTable::integer(p.threads),
                 TextTable::num(p.wall_seconds, 3),
                 TextTable::num(p.throughput_rps, 0),
                 TextTable::num(p.metrics.latency.p50_seconds * 1e3, 2),
                 TextTable::num(p.metrics.latency.p95_seconds * 1e3, 2),
                 TextTable::num(p.metrics.latency.p99_seconds * 1e3, 2),
                 TextTable::num(p.metrics.mean_batch_occupancy, 2)});
    }
    t.render(std::cout);
  }

  // ==== Phase 2b: substream-strategy sweep ============================
  // kJumpAhead vs kCounterBased head-to-head: closed-loop throughput,
  // determinism across submission orders, and the per-request substream
  // derivation cost (the popcount(index) GF(2) matrix applies the
  // splitter pays vs the counter write Philox pays).
  struct StrategyPoint {
    const char* name = "";
    double wall_seconds = 0.0;
    double throughput_rps = 0.0;
    double derivation_ns = 0.0;
    bool identical = true;
  };
  std::vector<StrategyPoint> strategies;
  for (const auto strategy : {rng::StreamStrategy::kJumpAhead,
                              rng::StreamStrategy::kCounterBased}) {
    const bool counter = strategy == rng::StreamStrategy::kCounterBased;
    StrategyPoint sp;
    sp.name = counter ? "counter_based" : "jump_ahead";

    // Derivation microcost: serve-realistic spread of request ids.
    {
      serve::ServeConfig cfg = server_config(spec, true);
      cfg.stream_strategy = strategy;
      serve::SamplingServer server(cfg);
      constexpr std::size_t kDerivations = 20'000;
      double best = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        std::uint32_t sink = 0;
        for (std::size_t i = 0; i < kDerivations; ++i) {
          const serve::RequestId id = (i * 2654435761u) % 1'000'000u;
          if (counter) {
            rng::Philox px = server.gamma_counter_stream(id);
            sink ^= px.next();
          } else {
            rng::MersenneTwister mt = server.gamma_stream(id);
            sink ^= mt.next();
          }
        }
        const double s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        best = std::min(best, s / kDerivations * 1e9);
        if (sink == 0xdeadbeefu) std::cout << "";  // defeat DCE
      }
      sp.derivation_ns = best;
    }

    // Closed loop at the widest thread count, plus an order-shuffled
    // fingerprint pass pinning determinism under this strategy.
    {
      exec::set_thread_count(max_threads);
      serve::ServeConfig cfg = server_config(spec, true);
      cfg.stream_strategy = strategy;
      std::uint64_t fp_natural = 0, fp_shuffled = 0;
      {
        serve::SamplingServer server(cfg);
        fp_natural = run_set_fingerprint(server, items, natural);
      }
      {
        serve::SamplingServer server(cfg);
        fp_shuffled = run_set_fingerprint(server, items, shuffled);
      }
      sp.identical = fp_natural == fp_shuffled;
      identical &= sp.identical;

      serve::SamplingServer server(cfg);
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::thread> workers;
      workers.reserve(spec.clients);
      for (unsigned c = 0; c < spec.clients; ++c) {
        workers.emplace_back([&, c] {
          for (std::size_t i = c; i < items.size(); i += spec.clients) {
            if (items[i].is_gamma) {
              (void)server.run(items[i].gamma);
            } else {
              (void)server.run(items[i].credit);
            }
          }
        });
      }
      for (auto& w : workers) w.join();
      sp.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      sp.throughput_rps = static_cast<double>(items.size()) / sp.wall_seconds;
    }
    strategies.push_back(sp);
  }

  std::cout << "\n=== Substream strategy sweep (" << max_threads
            << " threads) ===\n";
  {
    TextTable t;
    t.set_header({"Strategy", "Wall [s]", "Req/s", "Derivation [ns]",
                  "Deterministic"});
    for (const auto& sp : strategies) {
      t.add_row({sp.name, TextTable::num(sp.wall_seconds, 3),
                 TextTable::num(sp.throughput_rps, 0),
                 TextTable::num(sp.derivation_ns, 0),
                 sp.identical ? "yes" : "NO"});
    }
    t.render(std::cout);
  }

  // ==== Phase 3: open loop at a fixed offered rate ====================
  exec::set_thread_count(max_threads);
  serve::MetricsSnapshot open_metrics;
  std::uint64_t open_submitted = 0, open_admitted = 0, open_rejected = 0;
  double open_wall = 0.0;
  {
    serve::ServeConfig cfg = server_config(spec, true);
    cfg.queue_capacity = 64;  // small on purpose: overload must reject
    serve::SamplingServer server(cfg);
    std::vector<std::future<serve::GammaResult>> gfs;
    std::vector<std::future<serve::CreditRiskResult>> cfs;
    gfs.reserve(items.size());
    cfs.reserve(items.size());
    const auto period = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(1.0 / spec.open_loop_rate));
    const auto t0 = std::chrono::steady_clock::now();
    auto next_arrival = t0;
    for (const std::size_t i : natural) {
      std::this_thread::sleep_until(next_arrival);
      next_arrival += period;
      ++open_submitted;
      if (items[i].is_gamma) {
        std::future<serve::GammaResult> f;
        if (server.try_submit(items[i].gamma, &f) ==
            serve::ServeStatus::kAdmitted) {
          gfs.push_back(std::move(f));
          ++open_admitted;
        } else {
          ++open_rejected;
        }
      } else {
        std::future<serve::CreditRiskResult> f;
        if (server.try_submit(items[i].credit, &f) ==
            serve::ServeStatus::kAdmitted) {
          cfs.push_back(std::move(f));
          ++open_admitted;
        } else {
          ++open_rejected;
        }
      }
    }
    for (auto& f : gfs) (void)f.get();
    for (auto& f : cfs) (void)f.get();
    const auto t1 = std::chrono::steady_clock::now();
    open_wall = std::chrono::duration<double>(t1 - t0).count();
    open_metrics = server.metrics();
  }
  exec::set_thread_count(0);  // back to the environment default

  std::cout << "\n=== Open loop (offered " << spec.open_loop_rate
            << " req/s, queue capacity 64) ===\n"
            << "  submitted " << open_submitted << ", admitted "
            << open_admitted << ", rejected (queue full) " << open_rejected
            << "\n  achieved "
            << static_cast<double>(open_admitted) / open_wall
            << " req/s, p99 latency "
            << open_metrics.latency.p99_seconds * 1e3 << " ms\n";

  // ==== Artifact ======================================================
  if (auto jf = bench::open_bench_json(args->json_path)) {
    bench::JsonWriter j(jf);
    j.begin_object();
    bench::write_bench_header(j, "serve_throughput", args->seed);
    j.kv("requests", static_cast<std::uint64_t>(items.size()));
    j.kv("gamma_samples_per_request", spec.samples);
    j.kv("clients", spec.clients);
    j.kv("identical_across_threads", identical);
    j.key("sweep").begin_array();
    for (const auto& p : sweep) {
      j.begin_object();
      j.kv("threads", p.threads);
      j.kv("wall_seconds", p.wall_seconds);
      j.kv("throughput_rps", p.throughput_rps);
      j.kv("latency_p50_seconds", p.metrics.latency.p50_seconds);
      j.kv("latency_p95_seconds", p.metrics.latency.p95_seconds);
      j.kv("latency_p99_seconds", p.metrics.latency.p99_seconds);
      j.kv("mean_batch_occupancy", p.metrics.mean_batch_occupancy);
      j.kv("queue_high_water",
           static_cast<std::uint64_t>(p.metrics.queue_high_water));
      j.end_object();
    }
    j.end_array();
    j.key("strategy_sweep").begin_array();
    for (const auto& sp : strategies) {
      j.begin_object();
      j.kv("strategy", sp.name);
      j.kv("wall_seconds", sp.wall_seconds);
      j.kv("throughput_rps", sp.throughput_rps);
      j.kv("derivation_ns_per_request", sp.derivation_ns);
      j.kv("order_identical", sp.identical);
      j.end_object();
    }
    j.end_array();
    j.key("open_loop").begin_object();
    j.kv("offered_rps", spec.open_loop_rate);
    j.kv("submitted", open_submitted);
    j.kv("admitted", open_admitted);
    j.kv("rejected_queue_full", open_rejected);
    j.kv("wall_seconds", open_wall);
    j.kv("achieved_rps", static_cast<double>(open_admitted) / open_wall);
    j.kv("latency_p50_seconds", open_metrics.latency.p50_seconds);
    j.kv("latency_p95_seconds", open_metrics.latency.p95_seconds);
    j.kv("latency_p99_seconds", open_metrics.latency.p99_seconds);
    j.end_object();
    j.end_object();
    jf << "\n";
    std::cout << "Wrote " << args->json_path << "\n";
  }
  return identical ? 0 : 1;
}
