// Fig 5: measured runtime vs localSize (a) and vs globalSize (b) for
// Config1 and Config3 on the three fixed-architecture platforms. The
// paper derives localSize = 8 / 64 / 16 for CPU / GPU / PHI from (a)
// and confirms globalSize = 65,536 from (b).
//
// Like table3_runtime, a host-side thread sweep re-runs every
// estimate point of Fig 5a/5b under each entry of --threads=LIST and
// writes throughput + a bit-identity check to --json=PATH (default
// BENCH_fig5.json).
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_args.h"
#include "bench_json.h"
#include "common/table.h"
#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "rng/configs.h"
#include "simt/runtime_estimator.h"

int main(int argc, char** argv) {
  using namespace dwi;
  using simt::PlatformId;

  const auto args =
      bench::parse_bench_args(argc, argv, "fig5_worksizes",
                              "BENCH_fig5.json");
  if (!args) return 2;
  const std::vector<unsigned>& sweep_threads = args->threads;
  const std::string& json_path = args->json_path;

  // Explicit estimator seed, recorded in the JSON artifact so baseline
  // comparisons know the runs match.
  const auto kSeed = static_cast<std::uint32_t>(args->seed);
  std::cout << "seed: " << kSeed << "\n";
  const rng::AppConfig& c1 = rng::config(rng::ConfigId::kConfig1);
  const rng::AppConfig& c3 = rng::config(rng::ConfigId::kConfig3);
  const PlatformId pids[3] = {PlatformId::kCpu, PlatformId::kGpu,
                              PlatformId::kPhi};

  std::cout << "=== Fig 5a: runtime [ms] vs localSize (globalSize = 65536) "
               "===\n";
  for (const auto* cfg : {&c1, &c3}) {
    std::cout << "\n-- " << cfg->name << " ("
              << (cfg->uses_marsaglia_bray ? "Marsaglia-Bray"
                                           : "ICDF CUDA-style")
              << ") --\n";
    TextTable t;
    t.set_header({"localSize", "CPU", "GPU", "PHI"});
    unsigned best[3] = {0, 0, 0};
    double best_ms[3] = {1e300, 1e300, 1e300};
    for (unsigned l = 1; l <= 512; l *= 2) {
      std::vector<std::string> row = {TextTable::integer(l)};
      for (int p = 0; p < 3; ++p) {
        simt::NdRangeWorkload w;
        w.local_size = l;
        const double ms =
            simt::estimate_runtime(simt::platform(pids[p]), *cfg,
                                   cfg->fixed_arch_transform, w, 4, 400, kSeed)
                .seconds * 1e3;
        if (ms < best_ms[p]) {
          best_ms[p] = ms;
          best[p] = l;
        }
        row.push_back(TextTable::num(ms, 0));
      }
      t.add_row(row);
    }
    t.render(std::cout);
    std::cout << "Optimal localSize: CPU=" << best[0] << " GPU=" << best[1]
              << " PHI=" << best[2] << "   (paper: 8 / 64 / 16)\n";
  }

  std::cout << "\n=== Fig 5b: runtime [ms] vs globalSize (optimal "
               "localSizes) ===\n";
  for (const auto* cfg : {&c1, &c3}) {
    std::cout << "\n-- " << cfg->name << " --\n";
    TextTable t;
    t.set_header({"globalSize", "CPU", "GPU", "PHI"});
    std::uint64_t best[3] = {0, 0, 0};
    double best_ms[3] = {1e300, 1e300, 1e300};
    for (std::uint64_t g = 1024; g <= (1ull << 20); g *= 4) {
      std::vector<std::string> row = {TextTable::integer(
          static_cast<long long>(g))};
      for (int p = 0; p < 3; ++p) {
        simt::NdRangeWorkload w;
        w.global_size = g;
        const double ms =
            simt::estimate_runtime(simt::platform(pids[p]), *cfg,
                                   cfg->fixed_arch_transform, w, 4, 400, kSeed)
                .seconds * 1e3;
        if (ms < best_ms[p]) {
          best_ms[p] = ms;
          best[p] = g;
        }
        row.push_back(TextTable::num(ms, 0));
      }
      t.add_row(row);
    }
    t.render(std::cout);
    std::cout << "Best globalSize: CPU=" << best[0] << " GPU=" << best[1]
              << " PHI=" << best[2]
              << "   (paper confirms 65536; 65536 and 262144 are nearly "
                 "flat)\n";
  }

  // ==== Host thread sweep ==============================================
  // Every (config, worksize, platform) estimate point of Fig 5a + 5b,
  // run as one flat exec::parallel_map so the pool sees all points at
  // once. Each lockstep sample simulates sample_partitions x
  // sample_quota = 4 x 400 nominal outputs.
  struct Point {
    const rng::AppConfig* cfg;
    PlatformId pid;
    simt::NdRangeWorkload w;
  };
  std::vector<Point> pts;
  for (const auto* cfg : {&c1, &c3}) {
    for (unsigned l = 1; l <= 512; l *= 2) {
      for (int p = 0; p < 3; ++p) {
        simt::NdRangeWorkload w;
        w.local_size = l;
        pts.push_back({cfg, pids[p], w});
      }
    }
    for (std::uint64_t g = 1024; g <= (1ull << 20); g *= 4) {
      for (int p = 0; p < 3; ++p) {
        simt::NdRangeWorkload w;
        w.global_size = g;
        pts.push_back({cfg, pids[p], w});
      }
    }
  }
  constexpr std::uint64_t kSamplesPerPoint = 4ull * 400ull;

  std::cout << "\n=== Host thread sweep (" << pts.size()
            << " estimate points) ===\n";
  struct SweepPoint {
    unsigned threads = 0;
    double wall_seconds = 0.0;
    std::uint64_t fp = 0;
  };
  std::vector<SweepPoint> points;
  for (const unsigned threads : sweep_threads) {
    exec::set_thread_count(threads);
    const auto t0 = std::chrono::steady_clock::now();
    const auto ms = exec::parallel_map(pts.size(), [&](std::size_t i) {
      const Point& pt = pts[i];
      return simt::estimate_runtime(simt::platform(pt.pid), *pt.cfg,
                                    pt.cfg->fixed_arch_transform, pt.w, 4, 400, kSeed)
                 .seconds * 1e3;
    });
    const auto t1 = std::chrono::steady_clock::now();
    SweepPoint sp;
    sp.threads = threads;
    sp.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    // Estimates are doubles computed from deterministic counters; the
    // exact bit patterns must match across thread counts.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const double v : ms) {
      std::uint64_t bits = 0;
      static_assert(sizeof bits == sizeof v);
      std::memcpy(&bits, &v, sizeof bits);
      for (int b = 0; b < 8; ++b) {
        h ^= (bits >> (8 * b)) & 0xffu;
        h *= 0x100000001b3ull;
      }
    }
    sp.fp = h;
    points.push_back(sp);
  }
  exec::set_thread_count(0);

  bool identical = true;
  for (const auto& p : points) identical &= p.fp == points.front().fp;
  const std::uint64_t samples = kSamplesPerPoint * pts.size();
  const double serial_sps =
      static_cast<double>(samples) / points.front().wall_seconds;
  {
    TextTable st;
    st.set_header({"Threads", "Wall [s]", "Samples/s", "Speedup",
                   "Identical"});
    for (const auto& p : points) {
      const double sps = static_cast<double>(samples) / p.wall_seconds;
      st.add_row({TextTable::integer(p.threads),
                  TextTable::num(p.wall_seconds, 3), TextTable::num(sps, 0),
                  TextTable::num(sps / serial_sps, 2),
                  p.fp == points.front().fp ? "yes" : "NO"});
    }
    st.render(std::cout);
    std::cout << (identical
                      ? "All thread counts produced bit-identical estimates."
                      : "ERROR: estimates diverged across thread counts!")
              << "\n";
  }

  if (auto jf = bench::open_bench_json(json_path)) {
    bench::JsonWriter j(jf);
    j.begin_object();
    bench::write_bench_header(j, "fig5_worksizes", kSeed);
    j.kv("estimate_points", static_cast<std::uint64_t>(pts.size()));
    j.kv("samples_per_point", kSamplesPerPoint);
    j.kv("identical_across_threads", identical);
    j.key("sweep").begin_array();
    for (const auto& p : points) {
      const double sps = static_cast<double>(samples) / p.wall_seconds;
      j.begin_object();
      j.kv("threads", p.threads);
      j.kv("wall_seconds", p.wall_seconds);
      j.kv("samples", samples);
      j.kv("samples_per_sec", sps);
      j.kv("speedup_vs_serial", sps / serial_sps);
      j.kv("identical_to_serial", p.fp == points.front().fp);
      j.end_object();
    }
    j.end_array();
    j.end_object();
    jf << "\n";
    std::cout << "Wrote " << json_path << "\n";
  }
  return identical ? 0 : 1;
}
