// Fig 5: measured runtime vs localSize (a) and vs globalSize (b) for
// Config1 and Config3 on the three fixed-architecture platforms. The
// paper derives localSize = 8 / 64 / 16 for CPU / GPU / PHI from (a)
// and confirms globalSize = 65,536 from (b).
#include <iostream>

#include "common/table.h"
#include "rng/configs.h"
#include "simt/runtime_estimator.h"

int main() {
  using namespace dwi;
  using simt::PlatformId;

  const rng::AppConfig& c1 = rng::config(rng::ConfigId::kConfig1);
  const rng::AppConfig& c3 = rng::config(rng::ConfigId::kConfig3);
  const PlatformId pids[3] = {PlatformId::kCpu, PlatformId::kGpu,
                              PlatformId::kPhi};

  std::cout << "=== Fig 5a: runtime [ms] vs localSize (globalSize = 65536) "
               "===\n";
  for (const auto* cfg : {&c1, &c3}) {
    std::cout << "\n-- " << cfg->name << " ("
              << (cfg->uses_marsaglia_bray ? "Marsaglia-Bray"
                                           : "ICDF CUDA-style")
              << ") --\n";
    TextTable t;
    t.set_header({"localSize", "CPU", "GPU", "PHI"});
    unsigned best[3] = {0, 0, 0};
    double best_ms[3] = {1e300, 1e300, 1e300};
    for (unsigned l = 1; l <= 512; l *= 2) {
      std::vector<std::string> row = {TextTable::integer(l)};
      for (int p = 0; p < 3; ++p) {
        simt::NdRangeWorkload w;
        w.local_size = l;
        const double ms =
            simt::estimate_runtime(simt::platform(pids[p]), *cfg,
                                   cfg->fixed_arch_transform, w)
                .seconds * 1e3;
        if (ms < best_ms[p]) {
          best_ms[p] = ms;
          best[p] = l;
        }
        row.push_back(TextTable::num(ms, 0));
      }
      t.add_row(row);
    }
    t.render(std::cout);
    std::cout << "Optimal localSize: CPU=" << best[0] << " GPU=" << best[1]
              << " PHI=" << best[2] << "   (paper: 8 / 64 / 16)\n";
  }

  std::cout << "\n=== Fig 5b: runtime [ms] vs globalSize (optimal "
               "localSizes) ===\n";
  for (const auto* cfg : {&c1, &c3}) {
    std::cout << "\n-- " << cfg->name << " --\n";
    TextTable t;
    t.set_header({"globalSize", "CPU", "GPU", "PHI"});
    std::uint64_t best[3] = {0, 0, 0};
    double best_ms[3] = {1e300, 1e300, 1e300};
    for (std::uint64_t g = 1024; g <= (1ull << 20); g *= 4) {
      std::vector<std::string> row = {TextTable::integer(
          static_cast<long long>(g))};
      for (int p = 0; p < 3; ++p) {
        simt::NdRangeWorkload w;
        w.global_size = g;
        const double ms =
            simt::estimate_runtime(simt::platform(pids[p]), *cfg,
                                   cfg->fixed_arch_transform, w)
                .seconds * 1e3;
        if (ms < best_ms[p]) {
          best_ms[p] = ms;
          best[p] = g;
        }
        row.push_back(TextTable::num(ms, 0));
      }
      t.add_row(row);
    }
    t.render(std::cout);
    std::cout << "Best globalSize: CPU=" << best[0] << " GPU=" << best[1]
              << " PHI=" << best[2]
              << "   (paper confirms 65536; 65536 and 262144 are nearly "
                 "flat)\n";
  }
  return 0;
}
