#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against a committed baseline.

Used by the perf-regression CI job: after building Release and running
table3_runtime / fig5_worksizes, compare the fresh JSON artifact to
bench/baselines/<name>.json and fail (exit 1) when a matching sweep
entry's wall time regressed more than --max-regression (default 25%).

Matching: sweep entries are keyed by their "threads" field (or
"shards" for cluster-scaling benches whose sweep axis is the shard
count). Three
metrics are compared when present on both sides: "wall_seconds" and
"latency_p99_seconds" (lower is better, fail when the fresh value
exceeds baseline by more than --max-regression) and "throughput_rps"
(higher is better, fail when the fresh value drops below baseline by
more than --max-regression) — so the serve bench's latency/throughput
regress the same way the simulation benches' wall times do. Entries
present only on one side are reported but not fatal (sweeps may grow).
Artifacts with different "bench" names or "schema_version"s are never
compared. A baseline captures one machine's numbers — refresh it (see
docs/PERF.md) when the CI hardware or the build profile changes, not
to paper over a real regression.

Also enforces correctness flags carried by the artifact: any
"identical_across_threads": false in the fresh run is always fatal.

Every failure message names the bench and the exact field that
breached the margin (e.g. "table3_runtime: sweep threads=1: field
'wall_seconds' breached the 25% margin ..."), so a red CI line is
actionable without opening the artifacts.

Usage:
  bench/compare_bench.py BASELINE FRESH [--max-regression 0.25]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def sweep_by_key(doc):
    """Index sweep entries by their axis: "threads", "shards", or
    "workload" (the autotuner bench sweeps workloads, not threads)."""
    out = {}
    for entry in doc.get("sweep", []):
        for axis in ("threads", "shards", "workload"):
            key = entry.get(axis)
            if key is not None:
                out[(axis, key)] = entry
                break
    return out


def offending_config(entry):
    """The tuned config blamed in a tuner failure message, if present."""
    chosen = entry.get("chosen_config")
    return f" (offending config: {chosen})" if chosen else ""


def tuner_checks(fresh, failures, bench):
    """Extra gates of the "tuner" bench kind (bench/autotune): the
    tuned config must beat the default and must fit the modeled
    device's resource budget. Both failures print the offending config
    so the red CI line identifies the bad point without opening the
    artifact."""
    if fresh.get("kind") != "tuner":
        return
    for entry in fresh.get("sweep", []):
        workload = entry.get("workload", "<unknown workload>")
        if entry.get("feasible") is False:
            failures.append(
                f"{bench}: workload={workload}: tuned config exceeds the "
                f"modeled resource budget{offending_config(entry)}")
    if fresh.get("tuned_beats_default") is False:
        losers = [e for e in fresh.get("sweep", [])
                  if e.get("modeled_speedup", 0) < fresh.get(
                      "speedup_threshold", 1.15)]
        detail = "; ".join(
            f"{e.get('workload')}: {e.get('modeled_speedup', 0):.3f}x"
            f"{offending_config(e)}" for e in losers) or "no sweep entries"
        failures.append(
            f"{bench}: tuned configs did not beat the defaults on enough "
            f"workload categories: {detail}")


def zoo_checks(fresh, failures, bench):
    """Extra gates of the "workload_zoo" bench kind (bench/workload_zoo):
    dynamic scheduling must keep beating the static schedule — on the
    colliding histogram traces as a whole, and per workload entry. The
    cycle counts are modeled and deterministic, so any flip here is a
    scheduler correctness change, not host noise."""
    if fresh.get("kind") != "workload_zoo":
        return
    if fresh.get("dynamic_beats_static_histogram") is False:
        failures.append(
            f"{bench}: dynamic scheduling no longer beats the static "
            f"schedule on colliding histogram traces")
    for entry in fresh.get("sweep", []):
        if entry.get("dynamic_beats_static") is False:
            failures.append(
                f"{bench}: workload={entry.get('workload')}: "
                f"dynamic_cycles >= static_cycles in the fresh run")


def walk_flags(node, path, failures, bench):
    """Recursively find identical_across_threads / *_identical flags."""
    if isinstance(node, dict):
        for k, v in node.items():
            if (k == "identical_across_threads" or k.endswith("_identical")) \
                    and v is False:
                failures.append(f"{bench}: correctness flag '{path}/{k}' "
                                f"is false in the fresh run")
            walk_flags(v, f"{path}/{k}", failures, bench)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            walk_flags(v, f"{path}[{i}]", failures, bench)


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--max-regression", type=float, default=0.25,
                    help="fail when wall_seconds exceeds baseline by more "
                         "than this fraction (default 0.25)")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    failures = []
    bench = fresh.get("bench") or base.get("bench") or "<unnamed bench>"
    if base.get("bench") != fresh.get("bench"):
        failures.append(f"{bench}: field 'bench' mismatch: baseline "
                        f"{base.get('bench')!r} vs fresh "
                        f"{fresh.get('bench')!r}")
    if base.get("schema_version") != fresh.get("schema_version"):
        failures.append(f"{bench}: field 'schema_version' mismatch: baseline "
                        f"{base.get('schema_version')!r} vs fresh "
                        f"{fresh.get('schema_version')!r}")
    if base.get("seed") != fresh.get("seed"):
        failures.append(f"{bench}: field 'seed' mismatch: baseline "
                        f"{base.get('seed')!r} vs fresh {fresh.get('seed')!r}")
    walk_flags(fresh, "", failures, bench)
    tuner_checks(fresh, failures, bench)
    zoo_checks(fresh, failures, bench)

    bsweep = sweep_by_key(base)
    fsweep = sweep_by_key(fresh)

    # (metric, lower_is_better): wall time and tail latency regress
    # upward, throughput and tuner speedups regress downward.
    metrics = [("wall_seconds", True),
               ("latency_p99_seconds", True),
               ("throughput_rps", False),
               ("modeled_speedup", False)]

    compared = 0
    for (axis, key), bentry in sorted(bsweep.items()):
        fentry = fsweep.get((axis, key))
        if fentry is None:
            print(f"note: baseline {axis}={key} missing from fresh run")
            continue
        for metric, lower_is_better in metrics:
            bs = bentry.get(metric)
            fs = fentry.get(metric)
            if not bs or not fs:
                continue
            compared += 1
            ratio = fs / bs
            limit = (1.0 + args.max_regression if lower_is_better
                     else 1.0 / (1.0 + args.max_regression))
            regressed = (ratio > limit if lower_is_better
                         else ratio < limit)
            status = "ok"
            if regressed:
                status = "REGRESSION"
                direction = "above" if lower_is_better else "below"
                failures.append(
                    f"{bench}: sweep {axis}={key}: field '{metric}' "
                    f"breached the {args.max_regression:.0%} margin "
                    f"({direction} baseline): fresh {fs:.4g} vs baseline "
                    f"{bs:.4g} ({ratio:.2f}x, limit {limit:.2f}x)"
                    f"{offending_config(fentry)}")
            print(f"{axis}={key}: {metric} {fs:.4g} vs {bs:.4g} "
                  f"baseline ({ratio:.2f}x) {status}")

    if compared == 0:
        failures.append(f"{bench}: no comparable sweep entries "
                        f"(schema mismatch?)")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nPASS: {compared} sweep entries within "
          f"{args.max_regression:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
