// Table III: kernel runtime [ms] of all four configurations on the
// four platforms (CPU / GPU / PHI via the SIMT lockstep model, FPGA
// via the cycle-level dataflow simulation), including the
// ICDF CUDA-style vs FPGA-style split, the Eq (1) theoretical FPGA
// estimate, and the headline speedup factors.
//
// Workload (§IV-B): numScenarios = 2,621,440, numSectors = 240,
// v = 1.39, globalSize = 65,536 at each platform's optimal localSize.
#include <iostream>

#include "common/table.h"
#include "core/fpga_app.h"
#include "rng/configs.h"
#include "simt/runtime_estimator.h"

int main() {
  using namespace dwi;
  using rng::NormalTransform;

  std::cout << "=== Table I: Simulation Setup (application configurations) "
               "===\n";
  {
    TextTable t;
    t.set_header({"Config", "U->N Transform", "MT Exponent", "MT Period",
                  "MT States"});
    for (const auto& c : rng::all_configs()) {
      t.add_row({c.name,
                 c.uses_marsaglia_bray ? "Marsaglia-Bray" : "ICDF",
                 TextTable::integer(c.mt.period_exponent()),
                 "2^(" + std::to_string(c.mt.period_exponent()) + "-1)",
                 TextTable::integer(c.mt.n)});
    }
    t.render(std::cout);
  }

  simt::NdRangeWorkload w;  // the paper's defaults
  core::FpgaWorkload fw;
  fw.scale_divisor = 512;

  const double paper[4][4] = {{3825, 2479, 996, 701},
                              {3883, 1011, 696, 701},
                              {807, 1177, 555, 642},
                              {839, 522, 460, 642}};
  const double paper_fpga_style[2][3] = {{2794, 1181, 2435},
                                         {2776, 521, 2294}};

  auto simt_ms = [&](simt::PlatformId pid, const rng::AppConfig& c,
                     NormalTransform t) {
    return simt::estimate_runtime(simt::platform(pid), c, t, w).seconds * 1e3;
  };

  std::cout << "\n=== Table III: Runtime [ms] (model vs paper) ===\n";
  TextTable t;
  t.set_header({"Setup", "CPU", "GPU", "PHI", "FPGA"});
  int ci = 0;
  double fpga_ms[4] = {0, 0, 0, 0};
  double cell[4][3];
  for (const auto& c : rng::all_configs()) {
    const auto fpga_run = core::run_fpga_application(c, fw);
    fpga_ms[ci] = fpga_run.seconds_full * 1e3;
    std::vector<std::string> row = {c.name};
    const simt::PlatformId pids[3] = {simt::PlatformId::kCpu,
                                      simt::PlatformId::kGpu,
                                      simt::PlatformId::kPhi};
    for (int p = 0; p < 3; ++p) {
      cell[ci][p] = simt_ms(pids[p], c, c.fixed_arch_transform);
      row.push_back(TextTable::num(cell[ci][p], 0) + " (" +
                    TextTable::num(paper[ci][p], 0) + ")");
    }
    row.push_back(TextTable::num(fpga_ms[ci], 0) + " (" +
                  TextTable::num(paper[ci][3], 0) + ")");
    t.add_row(row);

    if (!c.uses_marsaglia_bray) {
      std::vector<std::string> frow = {std::string(c.name) +
                                       " ICDF FPGA-style"};
      for (int p = 0; p < 3; ++p) {
        const double ms = simt_ms(pids[p], c, NormalTransform::kIcdfBitwise);
        frow.push_back(TextTable::num(ms, 0) + " (" +
                       TextTable::num(paper_fpga_style[ci - 2][p], 0) + ")");
      }
      frow.push_back("-");
      t.add_row(frow);
    }
    ++ci;
  }
  t.render(std::cout);

  std::cout << "\n=== Headline speedups (FPGA vs others) ===\n";
  TextTable s;
  s.set_header({"Config", "vs CPU (paper)", "vs GPU (paper)",
                "vs PHI (paper)"});
  const double paper_speedup[4][3] = {
      {5.5, 3.5, 1.4}, {5.54, 1.44, 0.99}, {1.26, 1.8, 0.9}, {1.31, 0.8, 0.7}};
  for (int i = 0; i < 4; ++i) {
    s.add_row({rng::all_configs()[static_cast<std::size_t>(i)].name,
               TextTable::num(cell[i][0] / fpga_ms[i], 2) + " (" +
                   TextTable::num(paper_speedup[i][0], 2) + ")",
               TextTable::num(cell[i][1] / fpga_ms[i], 2) + " (" +
                   TextTable::num(paper_speedup[i][1], 2) + ")",
               TextTable::num(cell[i][2] / fpga_ms[i], 2) + " (" +
                   TextTable::num(paper_speedup[i][2], 2) + ")"});
  }
  s.render(std::cout);

  std::cout << "\n=== Eq (1) theoretical FPGA runtime vs simulated ===\n";
  TextTable e;
  e.set_header({"Config", "Eq(1) [ms]", "Simulated [ms]", "Ratio",
                "Bandwidth [GB/s]", "Rejection"});
  for (const auto& c : rng::all_configs()) {
    const auto r = core::run_fpga_application(c, fw);
    e.add_row({c.name, TextTable::num(r.eq1_seconds * 1e3, 0),
               TextTable::num(r.seconds_full * 1e3, 0),
               TextTable::num(r.seconds_full / r.eq1_seconds, 2),
               TextTable::num(r.bandwidth_gbps, 2),
               TextTable::percent(r.rejection_rate, 1)});
  }
  e.render(std::cout);
  std::cout << "Paper: Eq(1) gives ~683 ms (Config1/2, close to measured "
               "701 ms) and ~422 ms (Config3/4, ~35% below measured 642 ms "
               "because the transfers dominate; measured bandwidths 3.58 / "
               "3.94 GB/s).\n"
            << "Note: our canonical Marsaglia-Tsang rejection (squeeze + "
               "exact test) is lower than the paper's reported rates "
               "(23% vs 30.3% MB-combined; 2.4% vs 7.4% ICDF) — see "
               "EXPERIMENTS.md.\n";
  return 0;
}
