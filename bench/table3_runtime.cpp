// Table III: kernel runtime [ms] of all four configurations on the
// four platforms (CPU / GPU / PHI via the SIMT lockstep model, FPGA
// via the cycle-level dataflow simulation), including the
// ICDF CUDA-style vs FPGA-style split, the Eq (1) theoretical FPGA
// estimate, and the headline speedup factors.
//
// Workload (§IV-B): numScenarios = 2,621,440, numSectors = 240,
// v = 1.39, globalSize = 65,536 at each platform's optimal localSize.
//
// A host-side thread sweep follows the paper tables: it re-runs the
// four FPGA simulations under exec::set_thread_count for each entry
// of --threads=LIST (default "1,<DWI_THREADS or hardware>"), checks
// the results are bit-identical across thread counts, and writes
// samples/sec + speedup to --json=PATH (default BENCH_table3.json).
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_args.h"
#include "bench_json.h"
#include "common/table.h"
#include "core/fpga_app.h"
#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "rng/configs.h"
#include "simt/runtime_estimator.h"

namespace {

/// FNV-1a over the integer fields of the four simulation results; any
/// cycle-count or output-count divergence between thread counts moves
/// the fingerprint.
std::uint64_t fingerprint(const std::vector<dwi::core::FpgaRunResult>& runs) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  };
  for (const auto& r : runs) {
    mix(r.sim.cycles);
    mix(r.sim.outputs);
    mix(r.sim.attempts);
    mix(r.sim.compute_stall_cycles);
    mix(r.sim.bursts);
    mix(r.work_items);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dwi;
  using rng::NormalTransform;

  const auto args =
      bench::parse_bench_args(argc, argv, "table3_runtime",
                              "BENCH_table3.json");
  if (!args) return 2;
  const std::vector<unsigned>& sweep_threads = args->threads;
  const std::string& json_path = args->json_path;

  std::cout << "=== Table I: Simulation Setup (application configurations) "
               "===\n";
  {
    TextTable t;
    t.set_header({"Config", "U->N Transform", "MT Exponent", "MT Period",
                  "MT States"});
    for (const auto& c : rng::all_configs()) {
      t.add_row({c.name,
                 c.uses_marsaglia_bray ? "Marsaglia-Bray" : "ICDF",
                 TextTable::integer(c.mt.period_exponent()),
                 "2^(" + std::to_string(c.mt.period_exponent()) + "-1)",
                 TextTable::integer(c.mt.n)});
    }
    t.render(std::cout);
  }

  simt::NdRangeWorkload w;  // the paper's defaults
  core::FpgaWorkload fw;
  fw.scale_divisor = 512;
  // One explicit seed for every simulation in this bench: it lands in
  // the JSON artifact so baseline comparisons know the runs match.
  const auto kSeed = static_cast<std::uint32_t>(args->seed);
  std::cout << "seed: " << kSeed << "\n";

  const double paper[4][4] = {{3825, 2479, 996, 701},
                              {3883, 1011, 696, 701},
                              {807, 1177, 555, 642},
                              {839, 522, 460, 642}};
  const double paper_fpga_style[2][3] = {{2794, 1181, 2435},
                                         {2776, 521, 2294}};

  auto simt_ms = [&](simt::PlatformId pid, const rng::AppConfig& c,
                     NormalTransform t) {
    return simt::estimate_runtime(simt::platform(pid), c, t, w).seconds * 1e3;
  };

  std::cout << "\n=== Table III: Runtime [ms] (model vs paper) ===\n";
  TextTable t;
  t.set_header({"Setup", "CPU", "GPU", "PHI", "FPGA"});
  int ci = 0;
  double fpga_ms[4] = {0, 0, 0, 0};
  double cell[4][3];
  for (const auto& c : rng::all_configs()) {
    const auto fpga_run = core::run_fpga_application(c, fw, kSeed);
    fpga_ms[ci] = fpga_run.seconds_full * 1e3;
    std::vector<std::string> row = {c.name};
    const simt::PlatformId pids[3] = {simt::PlatformId::kCpu,
                                      simt::PlatformId::kGpu,
                                      simt::PlatformId::kPhi};
    for (int p = 0; p < 3; ++p) {
      cell[ci][p] = simt_ms(pids[p], c, c.fixed_arch_transform);
      row.push_back(TextTable::num(cell[ci][p], 0) + " (" +
                    TextTable::num(paper[ci][p], 0) + ")");
    }
    row.push_back(TextTable::num(fpga_ms[ci], 0) + " (" +
                  TextTable::num(paper[ci][3], 0) + ")");
    t.add_row(row);

    if (!c.uses_marsaglia_bray) {
      std::vector<std::string> frow = {std::string(c.name) +
                                       " ICDF FPGA-style"};
      for (int p = 0; p < 3; ++p) {
        const double ms = simt_ms(pids[p], c, NormalTransform::kIcdfBitwise);
        frow.push_back(TextTable::num(ms, 0) + " (" +
                       TextTable::num(paper_fpga_style[ci - 2][p], 0) + ")");
      }
      frow.push_back("-");
      t.add_row(frow);
    }
    ++ci;
  }
  t.render(std::cout);

  std::cout << "\n=== Headline speedups (FPGA vs others) ===\n";
  TextTable s;
  s.set_header({"Config", "vs CPU (paper)", "vs GPU (paper)",
                "vs PHI (paper)"});
  const double paper_speedup[4][3] = {
      {5.5, 3.5, 1.4}, {5.54, 1.44, 0.99}, {1.26, 1.8, 0.9}, {1.31, 0.8, 0.7}};
  for (int i = 0; i < 4; ++i) {
    s.add_row({rng::all_configs()[static_cast<std::size_t>(i)].name,
               TextTable::num(cell[i][0] / fpga_ms[i], 2) + " (" +
                   TextTable::num(paper_speedup[i][0], 2) + ")",
               TextTable::num(cell[i][1] / fpga_ms[i], 2) + " (" +
                   TextTable::num(paper_speedup[i][1], 2) + ")",
               TextTable::num(cell[i][2] / fpga_ms[i], 2) + " (" +
                   TextTable::num(paper_speedup[i][2], 2) + ")"});
  }
  s.render(std::cout);

  std::cout << "\n=== Eq (1) theoretical FPGA runtime vs simulated ===\n";
  TextTable e;
  e.set_header({"Config", "Eq(1) [ms]", "Simulated [ms]", "Ratio",
                "Bandwidth [GB/s]", "Rejection"});
  for (const auto& c : rng::all_configs()) {
    const auto r = core::run_fpga_application(c, fw, kSeed);
    e.add_row({c.name, TextTable::num(r.eq1_seconds * 1e3, 0),
               TextTable::num(r.seconds_full * 1e3, 0),
               TextTable::num(r.seconds_full / r.eq1_seconds, 2),
               TextTable::num(r.bandwidth_gbps, 2),
               TextTable::percent(r.rejection_rate, 1)});
  }
  e.render(std::cout);
  std::cout << "Paper: Eq(1) gives ~683 ms (Config1/2, close to measured "
               "701 ms) and ~422 ms (Config3/4, ~35% below measured 642 ms "
               "because the transfers dominate; measured bandwidths 3.58 / "
               "3.94 GB/s).\n"
            << "Note: our canonical Marsaglia-Tsang rejection (squeeze + "
               "exact test) is lower than the paper's reported rates "
               "(23% vs 30.3% MB-combined; 2.4% vs 7.4% ICDF) — see "
               "EXPERIMENTS.md.\n";

  // ==== Host-side thread sweep =========================================
  // Times the four FPGA simulations (the dominant cost above) under
  // each thread count. The four configurations run through an outer
  // exec::parallel_map and each simulation preruns its work-items on
  // the pool, so the sweep exercises both parallelism layers. The
  // result fingerprint must not move: the parallel engine is bit-
  // identical to the serial one by construction.
  std::cout << "\n=== Host thread sweep (simulation throughput) ===\n";
  struct SweepPoint {
    unsigned threads = 0;
    double wall_seconds = 0.0;
    std::uint64_t samples = 0;
    std::uint64_t fp = 0;
  };
  std::vector<SweepPoint> points;
  const auto configs = rng::all_configs();
  for (const unsigned threads : sweep_threads) {
    exec::set_thread_count(threads);
    const auto t0 = std::chrono::steady_clock::now();
    auto runs = exec::parallel_map(configs.size(), [&](std::size_t i) {
      return core::run_fpga_application(configs[i], fw, kSeed);
    });
    const auto t1 = std::chrono::steady_clock::now();
    SweepPoint p;
    p.threads = threads;
    p.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    for (const auto& r : runs) p.samples += r.sim.outputs;
    p.fp = fingerprint(runs);
    points.push_back(p);
  }
  exec::set_thread_count(0);  // back to the DWI_THREADS / hardware default

  bool identical = true;
  for (const auto& p : points) identical &= p.fp == points.front().fp;
  const double serial_sps =
      static_cast<double>(points.front().samples) / points.front().wall_seconds;
  {
    TextTable st;
    st.set_header({"Threads", "Wall [s]", "Samples", "Samples/s",
                   "Speedup", "Identical"});
    for (const auto& p : points) {
      const double sps = static_cast<double>(p.samples) / p.wall_seconds;
      st.add_row({TextTable::integer(p.threads),
                  TextTable::num(p.wall_seconds, 3),
                  TextTable::integer(static_cast<long long>(p.samples)),
                  TextTable::num(sps, 0), TextTable::num(sps / serial_sps, 2),
                  p.fp == points.front().fp ? "yes" : "NO"});
    }
    st.render(std::cout);
    std::cout << (identical
                      ? "All thread counts produced bit-identical simulations."
                      : "ERROR: results diverged across thread counts!")
              << "\n";
  }

  if (auto jf = bench::open_bench_json(json_path)) {
    bench::JsonWriter j(jf);
    j.begin_object();
    bench::write_bench_header(j, "table3_runtime", kSeed);
    j.kv("scale_divisor", static_cast<std::uint64_t>(fw.scale_divisor));
    j.kv("identical_across_threads", identical);
    j.key("configs").begin_array();
    for (std::size_t i = 0; i < configs.size(); ++i) {
      j.begin_object();
      j.kv("name", configs[i].name);
      j.kv("fpga_ms", fpga_ms[i]);
      j.kv("cpu_ms", cell[i][0]);
      j.kv("gpu_ms", cell[i][1]);
      j.kv("phi_ms", cell[i][2]);
      j.end_object();
    }
    j.end_array();
    j.key("sweep").begin_array();
    for (const auto& p : points) {
      const double sps = static_cast<double>(p.samples) / p.wall_seconds;
      j.begin_object();
      j.kv("threads", p.threads);
      j.kv("wall_seconds", p.wall_seconds);
      j.kv("samples", p.samples);
      j.kv("samples_per_sec", sps);
      j.kv("speedup_vs_serial", sps / serial_sps);
      j.kv("identical_to_serial", p.fp == points.front().fp);
      j.end_object();
    }
    j.end_array();
    j.end_object();
    jf << "\n";
    std::cout << "Wrote " << json_path << "\n";
  }
  return identical ? 0 : 1;
}
