// Divergent-kernel zoo: static vs dynamic scheduling across the three
// hazard-shaped workloads (src/workloads), Table-III style.
//
// Four phases:
//   1. Oracle identity — every kernel, in BOTH scheduling modes, must
//      be bit-identical to its scalar host oracle; any divergence
//      fails the bench (exit 1) and trips compare_bench.py via
//      oracle_identical=false.
//   2. SIMT cross-check — the same traces replayed through the
//      lockstep CPU / GPU / PHI models (simt/executor.h), with
//      divergence charged by each platform's scalarization factor.
//      Results must again match the oracle bit-for-bit
//      (simt_identical), and the issued-slot totals price the
//      workloads on the paper's fixed architectures next to the
//      FPGA-sim cycle counts.
//   3. Static-vs-dynamic cycle table — the histogram collision-knob
//      sweep plus SpMV and matching, with the stall counters that
//      EXPLAIN the gap (conservative II spacing vs actual forwarded
//      collisions). The headline flag dynamic_beats_static_histogram
//      is policed by compare_bench.py: dynamic scheduling must beat
//      the static schedule on every colliding trace.
//   4. Serve determinism — a mixed zoo request set through the
//      SamplingServer at each --threads entry; per-request response
//      fingerprints must not move (identical_across_threads).
//
// Emits BENCH_workloads.json with a "workload"-keyed sweep (one entry
// per kernel; modeled_speedup = static/dynamic cycles, throughput_rps
// = items/sec of the dynamic schedule at the ADM-PCIE-7V3 clock —
// all deterministic, so the baseline comparison is exact on any host).
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "bench_args.h"
#include "bench_json.h"
#include "common/table.h"
#include "exec/thread_pool.h"
#include "fpga/device.h"
#include "rng/mersenne_twister.h"
#include "serve/sampling_server.h"
#include "simt/executor.h"
#include "simt/platform.h"
#include "workloads/histogram.h"
#include "workloads/matching.h"
#include "workloads/spmv.h"

namespace {

using namespace dwi;

struct ZooSpec {
  std::uint32_t hist_updates = 1u << 14;
  std::uint32_t hist_bins = 256;
  float hist_hot = 0.5f;  ///< headline collision fraction
  std::uint32_t spmv_rows = 2048;
  std::uint32_t spmv_nnz_max = 8;
  std::uint32_t match_vertices = 4096;
  std::uint32_t match_edges = 1u << 14;
  std::uint32_t seed = 1;
};

std::uint64_t fnv_mix(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

simt::Mask lane_mask(unsigned lanes) {
  return lanes >= 64 ? ~simt::Mask{0} : ((simt::Mask{1} << lanes) - 1);
}

// --- SIMT lockstep replays -------------------------------------------------
//
// Each replay runs the workload's functional updates through a
// LockstepPartition in trace order (the per-lane body executes active
// lanes in lane order, and lanes map to consecutive trace positions),
// so the values stay bit-faithful while the masked regions charge the
// platform's divergence cost.

struct SimtRun {
  double ms = 0.0;
  double simd_efficiency = 1.0;
  bool identical = false;
};

SimtRun simt_histogram(const simt::PlatformModel& pm,
                       const workloads::HistogramTrace& trace,
                       std::uint32_t num_bins,
                       const std::vector<float>& oracle) {
  simt::LockstepPartition part(pm.width, pm.costs,
                               pm.divergence_scalarization);
  std::vector<float> bins(num_bins, 0.0f);
  simt::OpBundle update;
  update.add(simt::OpClass::kIntAlu, 2)
      .add(simt::OpClass::kFloatAdd)
      .add(simt::OpClass::kMemStore)
      .add(simt::OpClass::kLoopCtl);
  const double cost = part.bundle_cost(update);
  const std::size_t n = trace.addrs.size();
  for (std::size_t base = 0; base < n; base += pm.width) {
    const auto lanes =
        static_cast<unsigned>(std::min<std::size_t>(pm.width, n - base));
    const simt::Mask active = lane_mask(lanes);
    // The hot-bin updates form their own control path (the collision
    // branch); on CPU/PHI a partial mask scalarizes.
    simt::Mask hot = 0;
    for (unsigned l = 0; l < lanes; ++l) {
      if (trace.addrs[base + l] == 0) hot |= simt::Mask{1} << l;
    }
    const auto apply = [&](unsigned l) {
      bins[trace.addrs[base + l]] += trace.weights[base + l];
    };
    // Hot and cold lanes touch disjoint bins inside a chunk, so the
    // two-region split cannot reorder any same-bin addition.
    part.region(hot, active, update, cost, apply);
    part.region(active & ~hot, active, update, cost, apply);
  }
  SimtRun r;
  r.ms = pm.slots_to_seconds(part.stats().issued_slots) * 1e3;
  r.simd_efficiency = part.stats().simd_efficiency(pm.width);
  r.identical = bins == oracle;
  return r;
}

SimtRun simt_spmv(const simt::PlatformModel& pm, const workloads::CsrMatrix& m,
                  const std::vector<float>& x,
                  const std::vector<float>& oracle) {
  simt::LockstepPartition part(pm.width, pm.costs,
                               pm.divergence_scalarization);
  std::vector<float> y(m.rows, 0.0f);
  simt::OpBundle mac;
  mac.add(simt::OpClass::kIntAlu, 2)
      .add(simt::OpClass::kFloatMul)
      .add(simt::OpClass::kFloatAdd)
      .add(simt::OpClass::kLoopCtl);
  simt::OpBundle store;
  store.add(simt::OpClass::kMemStore);
  const double mac_cost = part.bundle_cost(mac);
  for (std::uint32_t base = 0; base < m.rows; base += pm.width) {
    const auto lanes =
        static_cast<unsigned>(std::min<std::uint32_t>(pm.width, m.rows - base));
    const simt::Mask active = lane_mask(lanes);
    std::uint32_t longest = 0;
    for (unsigned l = 0; l < lanes; ++l) {
      const std::uint32_t r = base + l;
      longest = std::max(longest, m.row_ptr[r + 1] - m.row_ptr[r]);
    }
    // Variable trip counts: lane r stays active while its row still
    // has elements — the partial masks are the divergence the paper's
    // data-dependent loops cause on lockstep hardware.
    for (std::uint32_t k = 0; k < longest; ++k) {
      simt::Mask mask = 0;
      for (unsigned l = 0; l < lanes; ++l) {
        const std::uint32_t r = base + l;
        if (m.row_ptr[r] + k < m.row_ptr[r + 1]) mask |= simt::Mask{1} << l;
      }
      part.region(mask, active, mac, mac_cost, [&](unsigned l) {
        const std::uint32_t r = base + l;
        const std::uint32_t idx = m.row_ptr[r] + k;
        y[r] += m.values[idx] * x[m.col_idx[idx]];
      });
    }
    part.region(active, active, store, [&](unsigned) {});
  }
  SimtRun r;
  r.ms = pm.slots_to_seconds(part.stats().issued_slots) * 1e3;
  r.simd_efficiency = part.stats().simd_efficiency(pm.width);
  r.identical = y == oracle;
  return r;
}

SimtRun simt_matching(const simt::PlatformModel& pm,
                      const workloads::EdgeList& g, std::uint32_t target_pairs,
                      const std::vector<std::int32_t>& oracle) {
  // The greedy decision sequence is inherently serial; compute it
  // scalar first, then replay it lockstep — the take mask drives the
  // divergent write region, pricing the branch on each platform while
  // the writes land in lane (= edge) order.
  const std::size_t n = g.u.size();
  std::vector<char> take(n, 0);
  {
    std::vector<std::int32_t> match(g.num_vertices, -1);
    std::uint32_t pairs = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (target_pairs != 0 && pairs >= target_pairs) break;
      const std::uint32_t a = g.u[i], b = g.v[i];
      if (a != b && match[a] < 0 && match[b] < 0) {
        match[a] = static_cast<std::int32_t>(b);
        match[b] = static_cast<std::int32_t>(a);
        ++pairs;
        take[i] = 1;
      }
    }
  }
  simt::LockstepPartition part(pm.width, pm.costs,
                               pm.divergence_scalarization);
  std::vector<std::int32_t> match(g.num_vertices, -1);
  simt::OpBundle examine;
  examine.add(simt::OpClass::kIntAlu, 4).add(simt::OpClass::kLoopCtl);
  simt::OpBundle write;
  write.add(simt::OpClass::kMemStore, 2).add(simt::OpClass::kIntAlu);
  const double examine_cost = part.bundle_cost(examine);
  const double write_cost = part.bundle_cost(write);
  for (std::size_t base = 0; base < n; base += pm.width) {
    const auto lanes =
        static_cast<unsigned>(std::min<std::size_t>(pm.width, n - base));
    const simt::Mask active = lane_mask(lanes);
    simt::Mask taken = 0;
    for (unsigned l = 0; l < lanes; ++l) {
      if (take[base + l]) taken |= simt::Mask{1} << l;
    }
    part.region(active, active, examine, examine_cost, [&](unsigned) {});
    part.region(taken, active, write, write_cost, [&](unsigned l) {
      const std::size_t i = base + l;
      match[g.u[i]] = static_cast<std::int32_t>(g.v[i]);
      match[g.v[i]] = static_cast<std::int32_t>(g.u[i]);
    });
  }
  SimtRun r;
  r.ms = pm.slots_to_seconds(part.stats().issued_slots) * 1e3;
  r.simd_efficiency = part.stats().simd_efficiency(pm.width);
  r.identical = match == oracle;
  return r;
}

// --- serve-phase fingerprint -----------------------------------------------

std::uint64_t serve_zoo_fingerprint(unsigned threads, std::uint32_t seed) {
  exec::set_thread_count(threads);
  serve::ServeConfig cfg;
  cfg.server_seed = seed;
  serve::SamplingServer server(cfg);

  std::vector<std::future<serve::HistogramResult>> hf;
  std::vector<std::future<serve::SpmvResult>> sf;
  std::vector<std::future<serve::MatchingResult>> mf;
  constexpr std::size_t kPerKind = 8;
  for (std::size_t i = 0; i < kPerKind; ++i) {
    serve::HistogramRequest h;
    h.id = 100 + i;
    h.num_updates = 2048;
    h.num_bins = 128;
    h.hot_fraction = 0.25f * static_cast<float>(i % 4);
    h.mode = (i % 2 == 0) ? workloads::SchedulingMode::kDynamic
                          : workloads::SchedulingMode::kStatic;
    hf.push_back(server.submit(h));
    serve::SpmvRequest s;
    s.id = 200 + i;
    s.rows = 256;
    s.nnz_per_row_max = static_cast<std::uint32_t>(2 + i);
    sf.push_back(server.submit(s));
    serve::MatchingRequest mreq;
    mreq.id = 300 + i;
    mreq.num_vertices = 512;
    mreq.num_edges = 1024;
    mreq.target_pairs = (i % 2 == 0) ? 0u : static_cast<std::uint32_t>(32 * i);
    mf.push_back(server.submit(mreq));
  }

  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix_stats = [&h](const serve::WorkloadStatsResult& s) {
    const std::uint64_t fields[5] = {s.cycles, s.initiations,
                                     s.hazard_stall_cycles, s.forwarded,
                                     s.skipped};
    h = fnv_mix(h, fields, sizeof fields);
  };
  for (auto& f : hf) {
    const serve::HistogramResult r = f.get();
    h = fnv_mix(h, &r.id, sizeof r.id);
    h = fnv_mix(h, r.bins.data(), r.bins.size() * sizeof(float));
    mix_stats(r.stats);
  }
  for (auto& f : sf) {
    const serve::SpmvResult r = f.get();
    h = fnv_mix(h, &r.id, sizeof r.id);
    h = fnv_mix(h, r.y.data(), r.y.size() * sizeof(float));
    mix_stats(r.stats);
  }
  for (auto& f : mf) {
    const serve::MatchingResult r = f.get();
    h = fnv_mix(h, &r.id, sizeof r.id);
    h = fnv_mix(h, r.match.data(), r.match.size() * sizeof(std::int32_t));
    h = fnv_mix(h, &r.pairs, sizeof r.pairs);
    mix_stats(r.stats);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> extra;
  const auto args = bench::parse_bench_args(
      argc, argv, "workload_zoo", "BENCH_workloads.json",
      "[--updates=N] [--rows=N] [--edges=N]", &extra);
  if (!args) return 2;

  ZooSpec spec;
  spec.seed = static_cast<std::uint32_t>(args->seed);
  for (const std::string& arg : extra) {
    if (arg.rfind("--updates=", 0) == 0) {
      spec.hist_updates = static_cast<std::uint32_t>(
          std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--rows=", 0) == 0) {
      spec.spmv_rows = static_cast<std::uint32_t>(
          std::strtoul(arg.c_str() + 7, nullptr, 10));
    } else if (arg.rfind("--edges=", 0) == 0) {
      spec.match_edges = static_cast<std::uint32_t>(
          std::strtoul(arg.c_str() + 8, nullptr, 10));
    } else {
      std::cerr << "workload_zoo: unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (spec.hist_updates == 0 || spec.spmv_rows == 0 || spec.match_edges == 0) {
    std::cerr << "workload_zoo: need updates>0, rows>0, edges>0\n";
    return 2;
  }
  std::cout << "seed: " << spec.seed << "\n";

  // One deterministic source for every trace in this bench.
  rng::MersenneTwister mt(rng::mt19937_params(), spec.seed);
  const auto next = [&mt] { return mt.next(); };

  const workloads::HistogramTrace hist_trace = workloads::make_histogram_trace(
      spec.hist_updates, spec.hist_bins, spec.hist_hot, next);
  const workloads::CsrMatrix matrix = workloads::make_spmv_matrix(
      spec.spmv_rows, spec.spmv_rows, 0, spec.spmv_nnz_max, next);
  const std::vector<float> x =
      workloads::make_dense_vector(spec.spmv_rows, next);
  const workloads::EdgeList graph =
      workloads::make_edge_list(spec.match_vertices, spec.match_edges, next);
  const std::uint32_t match_quota = spec.match_vertices / 8;

  const std::vector<float> hist_oracle = workloads::histogram_oracle(
      spec.hist_bins, hist_trace.addrs, hist_trace.weights);
  const std::vector<float> spmv_gold = workloads::spmv_oracle(matrix, x);
  const workloads::MatchingOutput match_gold =
      workloads::matching_oracle(graph, match_quota);

  // ==== Phase 1: oracle identity in both modes =========================
  struct ModePair {
    workloads::WorkloadStats st;   ///< static-schedule stats
    workloads::WorkloadStats dyn;  ///< dynamic-schedule stats
  };
  bool oracle_identical = true;
  ModePair hist_modes, spmv_modes, match_modes;
  for (const auto mode : {workloads::SchedulingMode::kStatic,
                          workloads::SchedulingMode::kDynamic}) {
    const bool dynamic = mode == workloads::SchedulingMode::kDynamic;
    workloads::HistogramConfig hc;
    hc.num_bins = spec.hist_bins;
    hc.mode = mode;
    const workloads::HistogramOutput ho =
        workloads::run_histogram(hc, hist_trace.addrs, hist_trace.weights);
    oracle_identical &= ho.bins == hist_oracle;
    (dynamic ? hist_modes.dyn : hist_modes.st) = ho.stats;

    workloads::SpmvConfig sc;
    sc.mode = mode;
    const workloads::SpmvOutput so = workloads::run_spmv(sc, matrix, x);
    oracle_identical &= so.y == spmv_gold;
    (dynamic ? spmv_modes.dyn : spmv_modes.st) = so.stats;

    workloads::MatchingConfig mc;
    mc.mode = mode;
    mc.target_pairs = match_quota;
    const workloads::MatchingOutput mo = workloads::run_matching(mc, graph);
    oracle_identical &= mo.match == match_gold.match;
    oracle_identical &= mo.pairs == match_gold.pairs;
    (dynamic ? match_modes.dyn : match_modes.st) = mo.stats;
  }
  std::cout << "\n=== Oracle identity (both scheduling modes) ===\n"
            << (oracle_identical
                    ? "All kernels bit-identical to their host oracles."
                    : "ERROR: a scheduling mode moved payload bytes!")
            << "\n";

  // ==== Phase 2: SIMT cross-check + cross-platform pricing =============
  struct PlatformRow {
    const char* name;
    const simt::PlatformModel* pm;
  };
  const PlatformRow platforms[] = {
      {"CPU", &simt::cpu_haswell()},
      {"GPU", &simt::gpu_tesla_k80()},
      {"PHI", &simt::phi_7120p()},
  };
  const double fpga_clock = fpga::adm_pcie_7v3().clock_hz;
  bool simt_identical = true;
  double simt_ms[3][3];  // [workload][platform]
  for (int p = 0; p < 3; ++p) {
    const SimtRun h = simt_histogram(*platforms[p].pm, hist_trace,
                                     spec.hist_bins, hist_oracle);
    const SimtRun s = simt_spmv(*platforms[p].pm, matrix, x, spmv_gold);
    const SimtRun m =
        simt_matching(*platforms[p].pm, graph, match_quota, match_gold.match);
    simt_identical &= h.identical && s.identical && m.identical;
    simt_ms[0][p] = h.ms;
    simt_ms[1][p] = s.ms;
    simt_ms[2][p] = m.ms;
  }
  const double fpga_static_ms[3] = {
      hist_modes.st.seconds_at(fpga_clock) * 1e3,
      spmv_modes.st.seconds_at(fpga_clock) * 1e3,
      match_modes.st.seconds_at(fpga_clock) * 1e3};
  const double fpga_dynamic_ms[3] = {
      hist_modes.dyn.seconds_at(fpga_clock) * 1e3,
      spmv_modes.dyn.seconds_at(fpga_clock) * 1e3,
      match_modes.dyn.seconds_at(fpga_clock) * 1e3};

  std::cout << "\n=== Modeled runtime [ms] per platform (Table III style) "
               "===\n";
  {
    TextTable t;
    t.set_header({"Workload", "FPGA static", "FPGA dynamic", "CPU", "GPU",
                  "PHI"});
    const char* names[3] = {"histogram", "spmv", "matching"};
    for (int w = 0; w < 3; ++w) {
      t.add_row({names[w], TextTable::num(fpga_static_ms[w], 3),
                 TextTable::num(fpga_dynamic_ms[w], 3),
                 TextTable::num(simt_ms[w][0], 3),
                 TextTable::num(simt_ms[w][1], 3),
                 TextTable::num(simt_ms[w][2], 3)});
    }
    t.render(std::cout);
  }
  std::cout << (simt_identical
                    ? "SIMT replays bit-identical to the oracles on all "
                      "platforms."
                    : "ERROR: a lockstep replay diverged from the oracle!")
            << "\n";

  // ==== Phase 3: static vs dynamic, with the stalls that explain it ====
  std::cout << "\n=== Histogram collision sweep (static vs dynamic cycles) "
               "===\n";
  bool dynamic_beats_static_histogram = true;
  {
    TextTable t;
    t.set_header({"Hot frac", "Static cyc", "Static II", "Dyn cyc", "Dyn II",
                  "Forwarded", "Dyn hazard stalls", "Speedup"});
    rng::MersenneTwister sweep_mt(rng::mt19937_params(), spec.seed + 1);
    const auto sweep_next = [&sweep_mt] { return sweep_mt.next(); };
    for (const float hot : {0.0f, 0.25f, 0.5f, 0.75f, 1.0f}) {
      const workloads::HistogramTrace trace = workloads::make_histogram_trace(
          spec.hist_updates, spec.hist_bins, hot, sweep_next);
      workloads::HistogramConfig hc;
      hc.num_bins = spec.hist_bins;
      hc.mode = workloads::SchedulingMode::kStatic;
      const auto st = workloads::run_histogram(hc, trace.addrs, trace.weights);
      hc.mode = workloads::SchedulingMode::kDynamic;
      const auto dyn = workloads::run_histogram(hc, trace.addrs, trace.weights);
      if (hot > 0.0f) {
        dynamic_beats_static_histogram &=
            dyn.stats.cycles < st.stats.cycles;
      }
      t.add_row(
          {TextTable::num(hot, 2),
           TextTable::integer(static_cast<long long>(st.stats.cycles)),
           TextTable::num(st.stats.achieved_ii(), 2),
           TextTable::integer(static_cast<long long>(dyn.stats.cycles)),
           TextTable::num(dyn.stats.achieved_ii(), 2),
           TextTable::integer(static_cast<long long>(dyn.stats.forwarded)),
           TextTable::integer(
               static_cast<long long>(dyn.stats.hazard_stall_cycles)),
           TextTable::num(static_cast<double>(st.stats.cycles) /
                              static_cast<double>(dyn.stats.cycles),
                          2) +
               "x"});
    }
    t.render(std::cout);
  }
  std::cout << "Static pays chain-latency spacing on EVERY update; dynamic "
               "pays the forward\nbubble only on the collisions that "
               "actually happened (the Forwarded column).\n";

  // ==== Phase 4: serve determinism across threads ======================
  bool identical_across_threads = true;
  std::uint64_t reference_fp = 0;
  std::cout << "\n=== Serve-path determinism (zoo request fingerprints) "
               "===\n";
  for (std::size_t i = 0; i < args->threads.size(); ++i) {
    const std::uint64_t fp =
        serve_zoo_fingerprint(args->threads[i], spec.seed);
    if (i == 0) reference_fp = fp;
    const bool ok = fp == reference_fp;
    identical_across_threads &= ok;
    std::cout << "  threads=" << args->threads[i] << ": " << std::hex << fp
              << std::dec << (ok ? "" : "  MISMATCH") << "\n";
  }
  exec::set_thread_count(0);  // back to the environment default

  // ==== Artifact ======================================================
  struct SweepEntry {
    const char* workload;
    std::uint64_t items;
    const ModePair* modes;
    double fpga_static_ms, fpga_dynamic_ms, cpu_ms, gpu_ms, phi_ms;
  };
  const SweepEntry entries[] = {
      {serve::to_string(serve::RequestKind::kHistogram), spec.hist_updates,
       &hist_modes, fpga_static_ms[0], fpga_dynamic_ms[0], simt_ms[0][0],
       simt_ms[0][1], simt_ms[0][2]},
      {serve::to_string(serve::RequestKind::kSpmv), matrix.nnz(), &spmv_modes,
       fpga_static_ms[1], fpga_dynamic_ms[1], simt_ms[1][0], simt_ms[1][1],
       simt_ms[1][2]},
      {serve::to_string(serve::RequestKind::kMatching), spec.match_edges,
       &match_modes, fpga_static_ms[2], fpga_dynamic_ms[2], simt_ms[2][0],
       simt_ms[2][1], simt_ms[2][2]},
  };

  if (auto jf = bench::open_bench_json(args->json_path)) {
    bench::JsonWriter j(jf);
    j.begin_object();
    bench::write_bench_header(j, "workload_zoo", args->seed);
    j.kv("kind", "workload_zoo");
    j.kv("histogram_updates", spec.hist_updates);
    j.kv("histogram_hot_fraction", static_cast<double>(spec.hist_hot));
    j.kv("spmv_rows", spec.spmv_rows);
    j.kv("matching_edges", spec.match_edges);
    j.kv("oracle_identical", oracle_identical);
    j.kv("simt_identical", simt_identical);
    j.kv("identical_across_threads", identical_across_threads);
    j.kv("dynamic_beats_static_histogram", dynamic_beats_static_histogram);
    j.key("sweep").begin_array();
    for (const SweepEntry& e : entries) {
      const workloads::WorkloadStats& st = e.modes->st;
      const workloads::WorkloadStats& dyn = e.modes->dyn;
      j.begin_object();
      j.kv("workload", e.workload);
      j.kv("items", e.items);
      j.kv("static_cycles", st.cycles);
      j.kv("dynamic_cycles", dyn.cycles);
      j.kv("static_ii", st.achieved_ii());
      j.kv("dynamic_ii", dyn.achieved_ii());
      j.kv("static_hazard_stall_cycles", st.hazard_stall_cycles);
      j.kv("dynamic_hazard_stall_cycles", dyn.hazard_stall_cycles);
      j.kv("forwarded", dyn.forwarded);
      j.kv("skipped", dyn.skipped);
      j.kv("dynamic_beats_static", dyn.cycles < st.cycles);
      // Modeled, deterministic: exact on any host, so the baseline
      // margin is really a correctness check.
      j.kv("modeled_speedup", static_cast<double>(st.cycles) /
                                  static_cast<double>(dyn.cycles));
      j.kv("throughput_rps",
           static_cast<double>(e.items) /
               dyn.seconds_at(fpga_clock));
      j.kv("fpga_static_ms", e.fpga_static_ms);
      j.kv("fpga_dynamic_ms", e.fpga_dynamic_ms);
      j.kv("cpu_ms", e.cpu_ms);
      j.kv("gpu_ms", e.gpu_ms);
      j.kv("phi_ms", e.phi_ms);
      j.end_object();
    }
    j.end_array();
    j.end_object();
    jf << "\n";
    std::cout << "Wrote " << args->json_path << "\n";
  }

  const bool ok =
      oracle_identical && simt_identical && identical_across_threads;
  return ok ? 0 : 1;
}
