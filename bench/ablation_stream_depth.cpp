// Ablation: where does the design's elasticity live?
//
// Two buffers sit between a work-item's pipeline and the shared memory
// channel: the hls::stream FIFO (Listing 1) and the LTRANSF burst
// buffer, which Listing 4's `#pragma HLS DEPENDENCE variable=transfBuf
// false` lets the tool double-buffer. This bench separates their
// contributions:
//
//   * WITH the pragma (double-buffered), collection overlaps the
//     in-flight burst and the transfer unit drains the stream at a
//     constant 1 float/cycle — the stream depth is then irrelevant;
//   * WITHOUT it, collection stalls for the whole burst service
//     (turnaround + beats cycles), the stall propagates into the
//     stream, and only a deep stream can hide it.
//
// Conclusion: the pragma, not the FIFO, is what makes Fig 3's
// interleaving work — and it is cheaper (one extra LTRANSF buffer vs a
// deep FIFO per work-item).
#include <iostream>
#include <memory>

#include "common/table.h"
#include "fpga/device.h"
#include "fpga/kernel_sim.h"

int main() {
  using namespace dwi;
  const auto& dev = fpga::adm_pcie_7v3();
  const std::uint64_t full_outputs = 2'621'440ull * 240ull;

  std::cout << "=== Ablation: transfer double-buffering (DEPENDENCE "
               "false) x stream depth ===\n"
               "(6 WI, 16-beat bursts, 23% rejection — the Config1 "
               "operating point)\n\n";
  TextTable t;
  t.set_header({"transfBuf", "Stream depth", "Runtime [ms]",
                "Compute stalls", "Bandwidth [GB/s]"});
  for (bool double_buffered : {true, false}) {
    for (std::size_t depth : {2u, 16u, 64u, 256u, 1024u}) {
      fpga::KernelSimConfig cfg;
      cfg.work_items = 6;
      cfg.burst_beats = 16;
      cfg.stream_depth = depth;
      cfg.transfer_double_buffered = double_buffered;
      cfg.outputs_per_work_item = (full_outputs / 512) / cfg.work_items;
      const auto r = fpga::simulate_kernel(cfg, [](unsigned w) {
        return std::make_unique<fpga::BernoulliProducer>(0.766, 13 + w);
      });
      const double ms =
          fpga::extrapolate_seconds(r, full_outputs, dev.clock_hz) * 1e3;
      const double stall = static_cast<double>(r.compute_stall_cycles) /
                           (static_cast<double>(r.cycles) * cfg.work_items);
      t.add_row({double_buffered ? "double (pragma)" : "single (no pragma)",
                 TextTable::integer(static_cast<long long>(depth)),
                 TextTable::num(ms, 0), TextTable::percent(stall, 2),
                 TextTable::num(r.bandwidth_bytes(dev.clock_hz) / 1e9, 2)});
    }
    t.add_separator();
  }
  t.render(std::cout);
  std::cout << "\nWith the DEPENDENCE-false pragma the stream depth is "
               "irrelevant (the burst buffer absorbs the channel); "
               "without it, collection freezes during every burst and "
               "only a very deep stream claws the time back — the "
               "paper's Listing 4 pragma is load-bearing.\n";
  return 0;
}
