// Micro-benchmarks (google-benchmark) of every RNG building block:
// twisters, normal transforms, the gamma sampler and the Listing 2
// work-item. These are host-CPU throughput numbers for the library
// itself, not simulated-platform numbers.
#include <benchmark/benchmark.h>

#include "common/bits.h"
#include "core/gamma_work_item.h"
#include "rng/erfinv.h"
#include "rng/gamma.h"
#include "rng/icdf_bitwise.h"
#include "rng/mersenne_twister.h"
#include "rng/normal.h"
#include "rng/philox.h"
#include "rng/ziggurat.h"

namespace {

using namespace dwi;

void BM_Mt19937(benchmark::State& state) {
  rng::MersenneTwister mt(rng::mt19937_params(), 1);
  for (auto _ : state) benchmark::DoNotOptimize(mt.next());
}
BENCHMARK(BM_Mt19937);

void BM_Mt521(benchmark::State& state) {
  rng::MersenneTwister mt(rng::mt521_params(), 1);
  for (auto _ : state) benchmark::DoNotOptimize(mt.next());
}
BENCHMARK(BM_Mt521);

void BM_AdaptedMtGated(benchmark::State& state) {
  // Worst case for the adapted twister: enable toggling every call.
  rng::AdaptedMersenneTwister mt(rng::mt19937_params(), 1);
  bool enable = false;
  for (auto _ : state) {
    enable = !enable;
    benchmark::DoNotOptimize(mt.next(enable));
  }
}
BENCHMARK(BM_AdaptedMtGated);

void BM_MarsagliaBray(benchmark::State& state) {
  rng::MersenneTwister mt(rng::mt19937_params(), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::marsaglia_bray_attempt(mt.next(), mt.next()));
  }
}
BENCHMARK(BM_MarsagliaBray);

void BM_BoxMuller(benchmark::State& state) {
  rng::MersenneTwister mt(rng::mt19937_params(), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::box_muller(mt.next(), mt.next()));
  }
}
BENCHMARK(BM_BoxMuller);

void BM_IcdfCuda(benchmark::State& state) {
  rng::MersenneTwister mt(rng::mt19937_params(), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::normal_icdf_cuda(mt.next()));
  }
}
BENCHMARK(BM_IcdfCuda);

void BM_IcdfBitwise(benchmark::State& state) {
  rng::MersenneTwister mt(rng::mt19937_params(), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::normal_icdf_bitwise(mt.next()));
  }
}
BENCHMARK(BM_IcdfBitwise);

void BM_ErfinvGiles(benchmark::State& state) {
  float x = -0.999f;
  for (auto _ : state) {
    x += 1e-4f;
    if (x >= 1.0f) x = -0.999f;
    benchmark::DoNotOptimize(rng::erfinv_giles(x));
  }
}
BENCHMARK(BM_ErfinvGiles);

void BM_GammaSampler(benchmark::State& state) {
  const auto v = static_cast<float>(state.range(0)) / 100.0f;
  rng::GammaSampler sampler(rng::GammaConstants::from_sector_variance(v),
                            rng::NormalTransform::kMarsagliaBray);
  rng::MersenneTwister mt(rng::mt19937_params(), 4);
  auto src = [&] { return mt.next(); };
  for (auto _ : state) benchmark::DoNotOptimize(sampler.sample(src));
}
BENCHMARK(BM_GammaSampler)->Arg(30)->Arg(139)->Arg(1000);

void BM_ZigguratNormal(benchmark::State& state) {
  // The classic fast software GRNG ([16]): table lookup + multiply on
  // ~97% of draws — the host-side baseline the FPGA transforms face.
  rng::ZigguratNormal zig;
  rng::MersenneTwister mt(rng::mt19937_params(), 6);
  auto src = [&] { return mt.next(); };
  for (auto _ : state) benchmark::DoNotOptimize(zig.sample(src));
}
BENCHMARK(BM_ZigguratNormal);

void BM_Philox(benchmark::State& state) {
  // Counter-based: the statelessness that avoids the GPU spill penalty
  // costs 10 rounds of 2x 32x32 multiplies per 4 outputs.
  rng::Philox p(1u, 0);
  for (auto _ : state) benchmark::DoNotOptimize(p.next());
}
BENCHMARK(BM_Philox);

void BM_GammaWorkItemStep(benchmark::State& state) {
  core::GammaWorkItemConfig cfg;
  cfg.app = rng::config(rng::ConfigId::kConfig1);
  cfg.outputs_per_sector = 1u << 30;  // effectively endless
  core::GammaWorkItem wi(cfg);
  float v = 0.0f;
  for (auto _ : state) benchmark::DoNotOptimize(wi.produce(&v));
}
BENCHMARK(BM_GammaWorkItemStep);

}  // namespace

BENCHMARK_MAIN();
