// Micro-benchmarks (google-benchmark) of every RNG building block:
// twisters, normal transforms, the gamma sampler and the Listing 2
// work-item. These are host-CPU throughput numbers for the library
// itself, not simulated-platform numbers.
//
// With --json=PATH the binary additionally hand-times the Philox
// generation tiers — scalar next(), the dispatched generate_block()
// bulk path, and the scalar/AVX2 block kernels head-to-head — and
// writes the rows to BENCH_micro_rng.json, so the vectorization payoff
// is tracked as a machine-readable artifact like the figure benches.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bench_json.h"
#include "common/bits.h"
#include "core/gamma_work_item.h"
#include "rng/erfinv.h"
#include "rng/gamma.h"
#include "rng/icdf_bitwise.h"
#include "rng/mersenne_twister.h"
#include "rng/normal.h"
#include "rng/philox.h"
#include "rng/simd_kernels.h"
#include "rng/ziggurat.h"

namespace {

using namespace dwi;

void BM_Mt19937(benchmark::State& state) {
  rng::MersenneTwister mt(rng::mt19937_params(), 1);
  for (auto _ : state) benchmark::DoNotOptimize(mt.next());
}
BENCHMARK(BM_Mt19937);

void BM_Mt521(benchmark::State& state) {
  rng::MersenneTwister mt(rng::mt521_params(), 1);
  for (auto _ : state) benchmark::DoNotOptimize(mt.next());
}
BENCHMARK(BM_Mt521);

void BM_AdaptedMtGated(benchmark::State& state) {
  // Worst case for the adapted twister: enable toggling every call.
  rng::AdaptedMersenneTwister mt(rng::mt19937_params(), 1);
  bool enable = false;
  for (auto _ : state) {
    enable = !enable;
    benchmark::DoNotOptimize(mt.next(enable));
  }
}
BENCHMARK(BM_AdaptedMtGated);

void BM_MarsagliaBray(benchmark::State& state) {
  rng::MersenneTwister mt(rng::mt19937_params(), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::marsaglia_bray_attempt(mt.next(), mt.next()));
  }
}
BENCHMARK(BM_MarsagliaBray);

void BM_BoxMuller(benchmark::State& state) {
  rng::MersenneTwister mt(rng::mt19937_params(), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::box_muller(mt.next(), mt.next()));
  }
}
BENCHMARK(BM_BoxMuller);

void BM_IcdfCuda(benchmark::State& state) {
  rng::MersenneTwister mt(rng::mt19937_params(), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::normal_icdf_cuda(mt.next()));
  }
}
BENCHMARK(BM_IcdfCuda);

void BM_IcdfBitwise(benchmark::State& state) {
  rng::MersenneTwister mt(rng::mt19937_params(), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::normal_icdf_bitwise(mt.next()));
  }
}
BENCHMARK(BM_IcdfBitwise);

void BM_ErfinvGiles(benchmark::State& state) {
  float x = -0.999f;
  for (auto _ : state) {
    x += 1e-4f;
    if (x >= 1.0f) x = -0.999f;
    benchmark::DoNotOptimize(rng::erfinv_giles(x));
  }
}
BENCHMARK(BM_ErfinvGiles);

void BM_GammaSampler(benchmark::State& state) {
  const auto v = static_cast<float>(state.range(0)) / 100.0f;
  rng::GammaSampler sampler(rng::GammaConstants::from_sector_variance(v),
                            rng::NormalTransform::kMarsagliaBray);
  rng::MersenneTwister mt(rng::mt19937_params(), 4);
  auto src = [&] { return mt.next(); };
  for (auto _ : state) benchmark::DoNotOptimize(sampler.sample(src));
}
BENCHMARK(BM_GammaSampler)->Arg(30)->Arg(139)->Arg(1000);

void BM_ZigguratNormal(benchmark::State& state) {
  // The classic fast software GRNG ([16]): table lookup + multiply on
  // ~97% of draws — the host-side baseline the FPGA transforms face.
  rng::ZigguratNormal zig;
  rng::MersenneTwister mt(rng::mt19937_params(), 6);
  auto src = [&] { return mt.next(); };
  for (auto _ : state) benchmark::DoNotOptimize(zig.sample(src));
}
BENCHMARK(BM_ZigguratNormal);

void BM_Philox(benchmark::State& state) {
  // Counter-based: the statelessness that avoids the GPU spill penalty
  // costs 10 rounds of 2x 32x32 multiplies per 4 outputs.
  rng::Philox p(1u, 0);
  for (auto _ : state) benchmark::DoNotOptimize(p.next());
}
BENCHMARK(BM_Philox);

void BM_PhiloxBlock(benchmark::State& state) {
  // The bulk path: counters encrypted straight into the buffer through
  // the dispatched kernel (8 abreast under AVX2).
  rng::Philox p(1u, 0);
  std::vector<std::uint32_t> buf(4096);
  for (auto _ : state) {
    p.generate_block(buf.data(), buf.size());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_PhiloxBlock);

void BM_PhiloxBlockKernelScalar(benchmark::State& state) {
  const std::uint32_t counter[4] = {0, 0, 0, 0};
  const std::uint32_t key[2] = {1u, 0u};
  std::vector<std::uint32_t> buf(4096);
  for (auto _ : state) {
    rng::simd::philox_block_scalar(counter, key, buf.size() / 4, buf.data());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_PhiloxBlockKernelScalar);

#if defined(DWI_SIMD_AVX2)
void BM_PhiloxBlockKernelAvx2(benchmark::State& state) {
  if (rng::simd::active_level() != rng::simd::Level::kAvx2) {
    state.SkipWithError("AVX2 not active on this host");
    return;
  }
  const std::uint32_t counter[4] = {0, 0, 0, 0};
  const std::uint32_t key[2] = {1u, 0u};
  std::vector<std::uint32_t> buf(4096);
  for (auto _ : state) {
    rng::simd::philox_block_avx2(counter, key, buf.size() / 4, buf.data());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_PhiloxBlockKernelAvx2);
#endif

void BM_Mt19937Block(benchmark::State& state) {
  rng::MersenneTwister mt(rng::mt19937_params(), 1);
  std::vector<std::uint32_t> buf(4096);
  for (auto _ : state) {
    mt.generate_block(buf.data(), buf.size());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_Mt19937Block);

void BM_GammaWorkItemStep(benchmark::State& state) {
  core::GammaWorkItemConfig cfg;
  cfg.app = rng::config(rng::ConfigId::kConfig1);
  cfg.outputs_per_sector = 1u << 30;  // effectively endless
  core::GammaWorkItem wi(cfg);
  float v = 0.0f;
  for (auto _ : state) benchmark::DoNotOptimize(wi.produce(&v));
}
BENCHMARK(BM_GammaWorkItemStep);

// --- BENCH_micro_rng.json: Philox generation-tier rows -----------------

/// Best-of-N wall-clock throughput of `run` (which produces `outputs`
/// uniforms per call), in outputs per second.
template <typename Fn>
double best_outputs_per_second(Fn&& run, std::size_t outputs) {
  double best = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (s > 0.0) best = std::max(best, static_cast<double>(outputs) / s);
  }
  return best;
}

void write_micro_rng_json(const std::string& path) {
  constexpr std::size_t kOutputs = std::size_t{1} << 22;  // 4M per rep
  std::vector<std::uint32_t> buf(kOutputs);

  // Row 1: scalar next() — one output per call, block buffered.
  const double scalar_next = best_outputs_per_second(
      [&] {
        rng::Philox p(1u, 0);
        std::uint32_t acc = 0;
        for (std::size_t i = 0; i < kOutputs; ++i) acc ^= p.next();
        benchmark::DoNotOptimize(acc);
      },
      kOutputs);

  // Row 2: generate_block() through the runtime-dispatched kernel.
  const double block_dispatched = best_outputs_per_second(
      [&] {
        rng::Philox p(1u, 0);
        p.generate_block(buf.data(), buf.size());
        benchmark::DoNotOptimize(buf.data());
      },
      kOutputs);

  // Rows 3/4: the block kernels head-to-head, bypassing dispatch.
  const std::uint32_t counter[4] = {0, 0, 0, 0};
  const std::uint32_t key[2] = {1u, 0u};
  const double kernel_scalar = best_outputs_per_second(
      [&] {
        rng::simd::philox_block_scalar(counter, key, kOutputs / 4, buf.data());
        benchmark::DoNotOptimize(buf.data());
      },
      kOutputs);
  double kernel_avx2 = 0.0;
#if defined(DWI_SIMD_AVX2)
  if (rng::simd::active_level() == rng::simd::Level::kAvx2) {
    kernel_avx2 = best_outputs_per_second(
        [&] {
          rng::simd::philox_block_avx2(counter, key, kOutputs / 4, buf.data());
          benchmark::DoNotOptimize(buf.data());
        },
        kOutputs);
  }
#endif

  auto f = bench::open_bench_json(path);
  if (!f) return;
  bench::JsonWriter j(f);
  j.begin_object();
  bench::write_bench_header(j, "micro_rng", 1);
  j.kv("simd_level", rng::simd::to_string(rng::simd::active_level()));
  j.key("rows");
  j.begin_array();
  const struct {
    const char* name;
    double ops;
  } rows[] = {
      {"philox_next_scalar", scalar_next},
      {"philox_generate_block", block_dispatched},
      {"philox_block_kernel_scalar", kernel_scalar},
      {"philox_block_kernel_avx2", kernel_avx2},
  };
  for (const auto& r : rows) {
    if (r.ops <= 0.0) continue;  // avx2 row absent on non-AVX2 hosts
    j.begin_object();
    j.kv("name", r.name);
    j.kv("outputs_per_second", r.ops);
    j.kv("ns_per_output", 1e9 / r.ops);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  f << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off --json=PATH (ours), hand the rest to google-benchmark.
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view a(argv[i]);
    if (a.rfind("--json=", 0) == 0) {
      json_path = std::string(a.substr(7));
    } else {
      args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  if (!json_path.empty()) write_micro_rng_json(json_path);
  return 0;
}
