// Inter-kernel pipeline benchmark: the resident CreditRisk+ chain
// (finance/pipeline) against its staged and scalar baselines, plus the
// serve-layer resident mode and the cycle-level pipe-depth model.
//
// Phases:
//   1. Bit-identity matrix — run_staged vs run_piped across pipe
//      depths, scenario-block sizes and all three substream strategies;
//      every cell must produce the same loss vector bit for bit
//      (`piped_vs_staged_identical`, fatal in compare_bench.py).
//   2. End-to-end sweep — per --threads entry: scalar reference
//      (pre-pipe per-draw architecture), staged block kernels (host
//      round-trips) and the resident piped chain, same outputs each
//      way. `wall_seconds` (the piped time) is what the perf CI
//      polices against bench/baselines/pipeline_creditrisk.json; the
//      headline is speedup_piped_vs_scalar (the ISSUE's >= 1.5x).
//   3. Serve resident mode — classic scheduler dispatch vs the
//      resident sampler→aggregator kernels, byte-compared responses
//      (`resident_identical`, fatal) and req/s both ways.
//   4. Pipe-depth model — fpga::simulate_pipeline stall/cycle counts
//      across depths next to the scheduler's inter-kernel RecMII bound
//      (the depth-tuning table of docs/PERF.md).
//
// Emits BENCH_pipeline.json via bench/bench_json.h.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_args.h"
#include "bench_json.h"
#include "common/table.h"
#include "exec/thread_pool.h"
#include "finance/pipeline.h"
#include "finance/portfolio.h"
#include "fpga/pipeline_sim.h"
#include "fpga/scheduler.h"
#include "serve/sampling_server.h"

namespace {

using namespace dwi;

std::uint64_t fnv_mix(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fingerprint(const finance::LossDistribution& dist) {
  return fnv_mix(0xcbf29ce484222325ull, dist.losses().data(),
                 dist.losses().size() * sizeof(double));
}

double time_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Sampling-dominated book: many sectors (each one an independent
/// gamma substream to sample), few obligors (cheap aggregation) — the
/// regime where the four-stage chain, not the Poisson consumer, sets
/// the pace.
finance::Portfolio bench_portfolio(std::uint64_t seed) {
  return finance::Portfolio::synthetic(
      12,
      {{1.39, "representative"},
       {0.8, "stable"},
       {1.1, "cyclical"},
       {1.6, "volatile"},
       {0.5, "utilities"},
       {2.0, "emerging"},
       {1.39, "financials"},
       {0.9, "industrial"}},
      seed);
}

const char* strategy_name(rng::StreamStrategy s) {
  switch (s) {
    case rng::StreamStrategy::kDistinctSeeds: return "distinct_seeds";
    case rng::StreamStrategy::kJumpAhead: return "jump_ahead";
    case rng::StreamStrategy::kCounterBased: return "counter_based";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> extra;
  const auto args = bench::parse_bench_args(
      argc, argv, "pipeline_creditrisk", "BENCH_pipeline.json",
      "[--scenarios=N] [--serve-requests=N] [--serve-scenarios=N]", &extra);
  if (!args) return 2;

  std::uint64_t scenarios = 100'000;
  std::size_t serve_requests = 24;
  std::uint64_t serve_scenarios = 2'000;
  for (const std::string& arg : extra) {
    if (arg.rfind("--scenarios=", 0) == 0) {
      scenarios = std::strtoull(arg.c_str() + 12, nullptr, 10);
    } else if (arg.rfind("--serve-requests=", 0) == 0) {
      serve_requests = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 17, nullptr, 10));
    } else if (arg.rfind("--serve-scenarios=", 0) == 0) {
      serve_scenarios = std::strtoull(arg.c_str() + 18, nullptr, 10);
    } else {
      std::cerr << "pipeline_creditrisk: unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (scenarios < 2 || serve_requests < 1 || serve_scenarios < 2) {
    std::cerr << "pipeline_creditrisk: need scenarios>=2, "
                 "serve-requests>=1, serve-scenarios>=2\n";
    return 2;
  }

  const finance::Portfolio portfolio = bench_portfolio(args->seed);
  std::cout << "portfolio: " << portfolio.num_sectors() << " sectors, "
            << portfolio.num_obligors() << " obligors, " << scenarios
            << " scenarios, seed " << args->seed << "\n";

  // ==== Phase 1: staged vs piped bit-identity matrix ==================
  bool piped_identical = true;
  std::cout << "\n=== Bit-identity: run_staged vs run_piped ===\n";
  {
    TextTable t;
    t.set_header({"Strategy", "Depth", "Block", "Staged fp", "Piped fp",
                  "Match"});
    for (const auto strategy : {rng::StreamStrategy::kDistinctSeeds,
                                rng::StreamStrategy::kJumpAhead,
                                rng::StreamStrategy::kCounterBased}) {
      finance::PipelineConfig cfg;
      cfg.num_scenarios = 4'000;
      cfg.seed = args->seed;
      cfg.strategy = strategy;
      const std::uint64_t staged_fp =
          fingerprint(finance::run_staged(portfolio, cfg));
      for (const std::size_t depth : {std::size_t{1}, std::size_t{8},
                                      std::size_t{64}}) {
        for (const std::size_t block : {std::size_t{1}, std::size_t{256}}) {
          cfg.pipe_depth = depth;
          cfg.scenario_block = block;
          const std::uint64_t piped_fp =
              fingerprint(finance::run_piped(portfolio, cfg));
          const bool ok = piped_fp == staged_fp;
          piped_identical &= ok;
          char staged_hex[32], piped_hex[32];
          std::snprintf(staged_hex, sizeof staged_hex, "%016llx",
                        static_cast<unsigned long long>(staged_fp));
          std::snprintf(piped_hex, sizeof piped_hex, "%016llx",
                        static_cast<unsigned long long>(piped_fp));
          t.add_row({strategy_name(strategy),
                     TextTable::integer(static_cast<long long>(depth)),
                     TextTable::integer(static_cast<long long>(block)),
                     staged_hex, piped_hex, ok ? "yes" : "NO"});
        }
      }
    }
    t.render(std::cout);
  }
  std::cout << (piped_identical
                    ? "Piped chain is bit-identical to the staged launches "
                      "at every depth and block size."
                    : "ERROR: piped results depend on pipe configuration!")
            << "\n";

  // ==== Phase 2: end-to-end sweep =====================================
  struct SweepPoint {
    unsigned threads = 0;
    double scalar_seconds = 0.0;
    double staged_seconds = 0.0;
    double piped_seconds = 0.0;
    finance::PipelineStats stats;
  };
  std::vector<SweepPoint> sweep;
  for (const unsigned threads : args->threads) {
    exec::set_thread_count(threads);
    finance::PipelineConfig cfg;
    cfg.num_scenarios = scenarios;
    cfg.seed = args->seed;
    SweepPoint p;
    p.threads = threads;
    // Best of 2 per engine: these runs are seconds-long, the second
    // repetition removes first-touch noise.
    for (int rep = 0; rep < 2; ++rep) {
      const double scalar = time_seconds(
          [&] { (void)finance::run_scalar_reference(portfolio, cfg); });
      const double staged =
          time_seconds([&] { (void)finance::run_staged(portfolio, cfg); });
      finance::PipelineStats stats;
      const double piped = time_seconds(
          [&] { (void)finance::run_piped(portfolio, cfg, &stats); });
      if (rep == 0 || scalar < p.scalar_seconds) p.scalar_seconds = scalar;
      if (rep == 0 || staged < p.staged_seconds) p.staged_seconds = staged;
      if (rep == 0 || piped < p.piped_seconds) {
        p.piped_seconds = piped;
        p.stats = stats;
      }
    }
    sweep.push_back(p);
  }
  exec::set_thread_count(0);

  std::cout << "\n=== End-to-end CreditRisk+ (" << scenarios
            << " scenarios) ===\n";
  {
    TextTable t;
    t.set_header({"Threads", "Scalar [s]", "Staged [s]", "Piped [s]",
                  "Piped/scalar", "Piped/staged"});
    for (const auto& p : sweep) {
      t.add_row({TextTable::integer(p.threads),
                 TextTable::num(p.scalar_seconds, 3),
                 TextTable::num(p.staged_seconds, 3),
                 TextTable::num(p.piped_seconds, 3),
                 TextTable::num(p.scalar_seconds / p.piped_seconds, 2) + "x",
                 TextTable::num(p.staged_seconds / p.piped_seconds, 2) +
                     "x"});
    }
    t.render(std::cout);
  }
  {
    const auto& p = sweep.back();
    std::cout << "pipe stalls (widest entry): uniform full "
              << p.stats.uniform_pipe_full << ", normal full "
              << p.stats.normal_pipe_full << ", normal starved "
              << p.stats.normal_pipe_empty << ", gamma starved "
              << p.stats.gamma_pipe_empty << ", aggregate starved "
              << p.stats.aggregate_pipe_empty << "; rounds "
              << p.stats.rounds_produced << ", discarded "
              << p.stats.bundles_discarded << "\n";
  }

  // ==== Phase 3: serve classic vs resident ============================
  struct ServePoint {
    const char* strategy = "";
    double classic_seconds = 0.0;
    double resident_seconds = 0.0;
    bool identical = true;
  };
  std::vector<ServePoint> serve_points;
  bool resident_identical = true;
  {
    const auto shared = std::make_shared<const finance::Portfolio>(
        bench_portfolio(args->seed));
    for (const auto strategy : {rng::StreamStrategy::kJumpAhead,
                                rng::StreamStrategy::kCounterBased}) {
      ServePoint sp;
      sp.strategy = strategy_name(strategy);
      std::vector<serve::CreditRiskResult> classic_results;
      std::vector<serve::CreditRiskResult> resident_results;
      for (const bool resident : {false, true}) {
        serve::ServeConfig cfg;
        cfg.server_seed = static_cast<std::uint32_t>(args->seed);
        cfg.stream_strategy = strategy;
        cfg.queue_capacity = serve_requests + 1;
        cfg.resident = resident;
        serve::SamplingServer server(cfg);
        std::vector<std::future<serve::CreditRiskResult>> futures;
        futures.reserve(serve_requests);
        const double wall = time_seconds([&] {
          for (std::size_t i = 0; i < serve_requests; ++i) {
            serve::CreditRiskRequest req;
            req.id = i + 1;
            req.portfolio = shared;
            req.num_scenarios = serve_scenarios;
            futures.push_back(server.submit(req));
          }
          for (auto& f : futures) {
            (resident ? resident_results : classic_results)
                .push_back(f.get());
          }
        });
        (resident ? sp.resident_seconds : sp.classic_seconds) = wall;
      }
      sp.identical =
          std::memcmp(classic_results.data(), resident_results.data(),
                      classic_results.size() *
                          sizeof(serve::CreditRiskResult)) == 0;
      resident_identical &= sp.identical;
      serve_points.push_back(sp);
    }
  }

  std::cout << "\n=== Serve: classic dispatch vs resident pipeline ("
            << serve_requests << " requests x " << serve_scenarios
            << " scenarios) ===\n";
  {
    TextTable t;
    t.set_header({"Strategy", "Classic [s]", "Resident [s]", "Classic rps",
                  "Resident rps", "Identical"});
    for (const auto& sp : serve_points) {
      t.add_row(
          {sp.strategy, TextTable::num(sp.classic_seconds, 3),
           TextTable::num(sp.resident_seconds, 3),
           TextTable::num(static_cast<double>(serve_requests) /
                              sp.classic_seconds,
                          1),
           TextTable::num(static_cast<double>(serve_requests) /
                              sp.resident_seconds,
                          1),
           sp.identical ? "yes" : "NO"});
    }
    t.render(std::cout);
  }
  std::cout << (resident_identical
                    ? "Resident serving responses are byte-identical to the "
                      "classic path."
                    : "ERROR: resident serving changed response bytes!")
            << "\n";

  // ==== Phase 4: pipe-depth model (cycle-level) =======================
  struct DepthPoint {
    std::size_t depth = 0;
    std::uint64_t cycles = 0;
    std::uint64_t full_stalls = 0;
    std::uint64_t empty_stalls = 0;
    unsigned rec_mii = 0;
  };
  std::vector<DepthPoint> depth_points;
  {
    fpga::PipelineSimConfig sim;
    // The CreditRisk+ chain shape: uniform source (II 1), normal
    // transform (~pi/4 acceptance for Marsaglia-Bray), gamma rejection
    // (~0.95 given a valid normal), aggregation sink.
    sim.stages = {{"uniform", 1, 8, 1.0, 11},
                  {"normal", 1, 24, 0.785, 22},
                  {"gamma", 1, 64, 0.95, 33},
                  {"aggregate", 1, 16, 1.0, 44}};
    sim.outputs = 50'000;
    const std::vector<unsigned> latencies = {8, 24, 64, 16};
    for (const std::size_t depth :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}, std::size_t{64}}) {
      sim.pipe_depth = depth;
      const fpga::PipelineSimResult r = fpga::simulate_pipeline(sim);
      DepthPoint d;
      d.depth = depth;
      d.cycles = r.cycles;
      for (const auto& st : r.stages) {
        d.full_stalls += st.full_stalls;
        d.empty_stalls += st.empty_stalls;
      }
      d.rec_mii =
          fpga::inter_kernel_chain_graph(latencies,
                                         static_cast<unsigned>(depth))
              .recurrence_mii();
      depth_points.push_back(d);
    }
  }
  std::cout << "\n=== Pipe-depth model (cycle-level, 50k outputs) ===\n";
  {
    TextTable t;
    t.set_header({"Depth", "Cycles", "Full stalls", "Empty stalls",
                  "Chain RecMII"});
    for (const auto& d : depth_points) {
      t.add_row({TextTable::integer(static_cast<long long>(d.depth)),
                 TextTable::integer(static_cast<long long>(d.cycles)),
                 TextTable::integer(static_cast<long long>(d.full_stalls)),
                 TextTable::integer(static_cast<long long>(d.empty_stalls)),
                 TextTable::integer(d.rec_mii)});
    }
    t.render(std::cout);
  }

  // ==== Artifact ======================================================
  if (auto jf = bench::open_bench_json(args->json_path)) {
    bench::JsonWriter j(jf);
    j.begin_object();
    bench::write_bench_header(j, "pipeline_creditrisk", args->seed);
    j.kv("scenarios", scenarios);
    j.kv("sectors", static_cast<std::uint64_t>(portfolio.num_sectors()));
    j.kv("obligors", static_cast<std::uint64_t>(portfolio.num_obligors()));
    j.kv("piped_vs_staged_identical", piped_identical);
    j.kv("resident_identical", resident_identical);
    j.key("sweep").begin_array();
    for (const auto& p : sweep) {
      j.begin_object();
      j.kv("threads", p.threads);
      j.kv("wall_seconds", p.piped_seconds);
      j.kv("scalar_seconds", p.scalar_seconds);
      j.kv("staged_seconds", p.staged_seconds);
      j.kv("speedup_piped_vs_scalar", p.scalar_seconds / p.piped_seconds);
      j.kv("speedup_piped_vs_staged", p.staged_seconds / p.piped_seconds);
      j.kv("rounds_produced", p.stats.rounds_produced);
      j.kv("bundles_discarded", p.stats.bundles_discarded);
      j.kv("uniform_pipe_full", p.stats.uniform_pipe_full);
      j.kv("gamma_pipe_empty", p.stats.gamma_pipe_empty);
      j.kv("aggregate_pipe_empty", p.stats.aggregate_pipe_empty);
      j.end_object();
    }
    j.end_array();
    j.key("serve").begin_array();
    for (const auto& sp : serve_points) {
      j.begin_object();
      j.kv("strategy", sp.strategy);
      j.kv("classic_seconds", sp.classic_seconds);
      j.kv("resident_seconds", sp.resident_seconds);
      j.kv("classic_rps",
           static_cast<double>(serve_requests) / sp.classic_seconds);
      j.kv("resident_rps",
           static_cast<double>(serve_requests) / sp.resident_seconds);
      j.end_object();
    }
    j.end_array();
    j.key("depth_model").begin_array();
    for (const auto& d : depth_points) {
      j.begin_object();
      j.kv("pipe_depth", static_cast<std::uint64_t>(d.depth));
      j.kv("cycles", d.cycles);
      j.kv("full_stalls", d.full_stalls);
      j.kv("empty_stalls", d.empty_stalls);
      j.kv("chain_rec_mii", d.rec_mii);
      j.end_object();
    }
    j.end_array();
    j.end_object();
    jf << "\n";
    std::cout << "\nWrote " << args->json_path << "\n";
  }

  const bool ok = piped_identical && resident_identical;
  std::cout << "headline: piped "
            << sweep.back().scalar_seconds / sweep.back().piped_seconds
            << "x over the scalar staged baseline\n";
  return ok ? 0 : 1;
}
