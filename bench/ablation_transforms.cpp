// Ablation: choice of the uniform-to-normal transform on the FPGA
// (§II-D2/D3). The paper evaluates Marsaglia-Bray and the bit-level
// ICDF; Box-Muller is the well-known alternative it dismisses for its
// "heavy trigonometric math operations". This bench quantifies the
// trade on the simulated device: resources per work-item → maximum
// work-item count → end-to-end runtime, plus the statistical quality
// of each path (all three are exercised by the real numerics).
#include <iostream>
#include <memory>

#include "common/table.h"
#include "core/gamma_work_item.h"
#include "fpga/kernel_sim.h"
#include "fpga/resource_model.h"
#include "rng/configs.h"

int main() {
  using namespace dwi;
  using rng::NormalTransform;
  const auto& dev = fpga::adm_pcie_7v3();
  const std::uint64_t full_outputs = 2'621'440ull * 240ull;

  std::cout << "=== Ablation: uniform-to-normal transform on the FPGA "
               "(MT(19937) twisters, v = 1.39) ===\n\n";
  TextTable t;
  t.set_header({"Transform", "Twisters", "Max WI", "Slice%", "DSP%",
                "Rejection", "Runtime [ms]", "Bound by"});

  for (NormalTransform tr :
       {NormalTransform::kMarsagliaBray, NormalTransform::kIcdfBitwise,
        NormalTransform::kBoxMuller}) {
    const auto& mt = rng::mt19937_params();
    const unsigned n = fpga::max_work_items_transform(dev, tr, mt);
    const auto u = fpga::estimate_utilization_transform(dev, tr, mt, n);

    // Functional rejection rate of this transform feeding the gamma
    // stage, measured on the real work-item.
    core::GammaWorkItemConfig wcfg;
    wcfg.app = rng::config(rng::ConfigId::kConfig1);
    wcfg.app.fpga_transform = tr;
    wcfg.sector_variances = {1.39f};
    wcfg.outputs_per_sector = 100'000;
    core::GammaWorkItem probe(wcfg);
    float v = 0.0f;
    while (!probe.finished()) (void)probe.produce(&v);
    const double rejection = probe.rejection_rate();

    fpga::KernelSimConfig k;
    k.work_items = n;
    k.burst_beats = tr == NormalTransform::kMarsagliaBray ? 16 : 18;
    k.outputs_per_work_item = (full_outputs / 512) / n;
    const double accept = 1.0 - rejection;
    const auto r = fpga::simulate_kernel(k, [&](unsigned w) {
      return std::make_unique<fpga::BernoulliProducer>(accept, 77 + w);
    });
    const double ms =
        fpga::extrapolate_seconds(r, full_outputs, dev.clock_hz) * 1e3;
    const double stall = static_cast<double>(r.compute_stall_cycles) /
                         (static_cast<double>(r.cycles) * n);

    t.add_row({rng::to_string(tr),
               TextTable::integer(rng::uniforms_per_attempt(tr) + 2),
               TextTable::integer(n), TextTable::num(u.slice_util * 100, 1),
               TextTable::num(u.dsp_util * 100, 1),
               TextTable::percent(rejection, 1), TextTable::num(ms, 0),
               stall > 0.05 ? "memory" : "compute"});
  }
  t.render(std::cout);
  std::cout << "\nBox-Muller never rejects at the normal stage but its "
               "sin/cos cores shrink the work-item count; the bit-level "
               "ICDF is the resource-cheapest and fits the most "
               "pipelines — the paper's Config3/4 choice. Once the single "
               "memory channel saturates, the remaining differences "
               "vanish: on this board the transform choice is a resource "
               "decision, not a throughput one.\n";
  return 0;
}
