// Fig 9: derived system-level dynamic energy consumption per kernel
// invocation, for all four configurations on all four host+accelerator
// combinations, using the full §IV-F protocol (repeated enqueue past
// 150 s, 100 s integration window, idle subtraction). Also prints the
// FPGA's efficiency factors against each platform, the paper's
// headline Fig 9 result.
#include <iostream>

#include "common/table.h"
#include "minicl/runtime.h"
#include "power/energy_protocol.h"

int main() {
  using namespace dwi;

  std::cout << "=== Fig 9: dynamic energy per kernel invocation [J] ===\n\n";

  double energy[4][4];  // [config][device]
  const char* devices[4] = {"CPU", "GPU", "PHI", "FPGA"};

  TextTable t;
  t.set_header({"Config", "CPU [J]", "GPU [J]", "PHI [J]", "FPGA [J]"});
  int ci = 0;
  for (const auto& cfg : rng::all_configs()) {
    minicl::KernelLaunch launch;
    launch.config = cfg;
    launch.transform = cfg.fixed_arch_transform;
    std::vector<std::string> row = {cfg.name};
    for (int d = 0; d < 4; ++d) {
      auto dev = minicl::find_device(devices[d]);
      const auto r = power::run_energy_protocol(*dev, launch);
      energy[ci][d] = r.energy.per_invocation.value;
      row.push_back(TextTable::num(energy[ci][d], 1));
    }
    t.add_row(row);
    ++ci;
  }
  t.render(std::cout);

  std::cout << "\n=== FPGA energy-efficiency factors (others / FPGA) ===\n";
  TextTable f;
  f.set_header({"Config", "vs CPU (paper)", "vs GPU (paper)",
                "vs PHI (paper)"});
  // Paper anchors (§IV-F): maxima 9.5/7.9/4.1 under Config1, minimum
  // ~2.2 vs GPU and PHI under Config4.
  const char* paper[4][3] = {{"9.5", "7.9", "4.1"},
                             {"-", "-", "-"},
                             {"-", "-", "-"},
                             {"-", "~2.2", "~2.2"}};
  for (int i = 0; i < 4; ++i) {
    f.add_row({rng::all_configs()[static_cast<std::size_t>(i)].name,
               TextTable::num(energy[i][0] / energy[i][3], 1) + " (" +
                   paper[i][0] + ")",
               TextTable::num(energy[i][1] / energy[i][3], 1) + " (" +
                   paper[i][1] + ")",
               TextTable::num(energy[i][2] / energy[i][3], 1) + " (" +
                   paper[i][2] + ")"});
  }
  f.render(std::cout);
  std::cout << "\nPaper: 'The FPGA solution shows the best energy "
               "efficiency in all cases, ranging from a maximum of "
               "9.5x/7.9x/4.1x vs CPU/GPU/PHI under Config1, to a minimum "
               "of approximately 2.2x vs GPU and PHI under Config4.'\n";
  return 0;
}
