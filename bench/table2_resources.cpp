// Table II: FPGA post-P&R resource utilization for all four
// configurations at the maximum routable work-item count, plus the
// §IV-C place-and-route growth trace (adding work-items until routing
// fails).
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "fpga/resource_model.h"
#include "rng/configs.h"

int main() {
  using namespace dwi;
  const auto& dev = fpga::adm_pcie_7v3();

  std::cout << "=== Table II: FPGA P&R Resources Utilization Report ===\n"
            << "Device: Virtex-7 XC7VX690T (slices " << dev.slices
            << ", DSP " << dev.dsps << ", BRAM " << dev.bram36 << ")\n\n";

  struct PaperRow {
    double slice, dsp, bram;
  };
  const PaperRow paper[4] = {{53.43, 23.67, 20.31},
                             {52.75, 23.67, 20.31},
                             {52.92, 21.56, 24.05},
                             {52.72, 21.56, 24.05}};

  TextTable t;
  t.set_header({"Config", "WorkItems", "Slice% (paper)", "DSP% (paper)",
                "BRAM% (paper)"});
  int i = 0;
  for (const auto& cfg : rng::all_configs()) {
    const unsigned n = fpga::max_work_items(dev, cfg);
    const auto u = fpga::estimate_utilization(dev, cfg, n);
    t.add_row({cfg.name, TextTable::integer(n),
               TextTable::num(u.slice_util * 100) + " (" +
                   TextTable::num(paper[i].slice) + ")",
               TextTable::num(u.dsp_util * 100) + " (" +
                   TextTable::num(paper[i].dsp) + ")",
               TextTable::num(u.bram_util * 100) + " (" +
                   TextTable::num(paper[i].bram) + ")"});
    ++i;
  }
  t.render(std::cout);

  std::cout << "\n--- SS IV-C methodology: grow work-items until P&R fails "
               "(slice ceiling "
            << TextTable::num(dev.route_ceiling_slice_util * 100, 1)
            << "% of the device) ---\n";
  TextTable g;
  g.set_header({"Config", "N", "Slice%", "Routable"});
  for (const auto& cfg :
       {rng::config(rng::ConfigId::kConfig1), rng::config(rng::ConfigId::kConfig3)}) {
    const unsigned n_max = fpga::max_work_items(dev, cfg);
    for (unsigned n = n_max - 1; n <= n_max + 1; ++n) {
      const auto u = fpga::estimate_utilization(dev, cfg, n);
      g.add_row({cfg.name, TextTable::integer(n),
                 TextTable::num(u.slice_util * 100),
                 u.routable ? "yes" : "NO (P&R fails)"});
    }
    g.add_separator();
  }
  g.render(std::cout);

  std::cout << "\nPaper: 6 work-items for Config1/2, 8 for Config3/4; the "
               "design is slice-limited in all cases.\n";
  return 0;
}
