// Ablation: what does decoupling the work-items buy (Fig 2c vs 2a/2b)?
//
// Three alternatives for the same total workload:
//   (a) decoupled: N independent pipelines, one work-item each — the
//       paper's design;
//   (b) sequential compute unit: SDAccel's default .cl NDRange mapping
//       (§II-A: one work-group -> one pipeline via nested loops), i.e.
//       a single II=1 pipeline time-multiplexing all the work, with a
//       pipeline flush between sectors (dynamic inner-loop exits
//       prevent loop flattening);
//   (c) fixed-architecture lockstep: the SIMT model's divergence tax
//       at several partition widths, to show what "grouping work-items
//       in hardware" costs on the same algorithm.
#include <iostream>
#include <memory>

#include "common/table.h"
#include "core/fpga_app.h"
#include "fpga/kernel_sim.h"
#include "rng/configs.h"
#include "simt/gamma_kernel.h"
#include "simt/platform.h"

int main() {
  using namespace dwi;
  const auto& cfg1 = rng::config(rng::ConfigId::kConfig1);
  const auto& dev = fpga::adm_pcie_7v3();

  const std::uint64_t sim_outputs = 1'000'000;
  const std::uint64_t full_outputs = 2'621'440ull * 240ull;
  const double accept = 0.766;  // Config1 measured acceptance

  std::cout << "=== Ablation: decoupled work-items vs the alternatives "
               "(Config1 workload) ===\n\n";
  TextTable t;
  t.set_header({"Design", "Pipelines", "Runtime [ms]", "vs decoupled"});

  auto run = [&](unsigned n_wi, unsigned flush_every_outputs) {
    fpga::KernelSimConfig k;
    k.work_items = n_wi;
    k.burst_beats = 16;
    k.outputs_per_work_item = sim_outputs / n_wi;
    std::uint32_t s = 11;
    auto r = fpga::simulate_kernel(k, [&](unsigned w) {
      return std::make_unique<fpga::BernoulliProducer>(accept, s + w);
    });
    double seconds =
        fpga::extrapolate_seconds(r, full_outputs, dev.clock_hz);
    if (flush_every_outputs != 0) {
      // Pipeline flush (≈ datapath depth) at every dynamic inner-loop
      // exit: the sequential NDRange mapping pays it per sector sweep.
      const double flushes = static_cast<double>(full_outputs) /
                             flush_every_outputs;
      seconds += flushes * 90.0 / dev.clock_hz;
    }
    return seconds;
  };

  const double decoupled = run(6, 0);
  t.add_row({"(a) decoupled (paper, Listing 1)", "6",
             TextTable::num(decoupled * 1e3, 0), "1.00"});
  const double sequential = run(1, 10'922);  // scenarios per sector sweep
  t.add_row({"(b) single sequential CU (.cl default)", "1",
             TextTable::num(sequential * 1e3, 0),
             TextTable::num(sequential / decoupled, 2)});
  t.render(std::cout);

  std::cout << "\n--- (c) fixed-architecture lockstep divergence tax "
               "(same algorithm, SIMT model) ---\n";
  TextTable s;
  s.set_header({"Partition width", "SIMD efficiency", "Issue overhead"});
  for (unsigned width : {1u, 4u, 8u, 16u, 32u, 64u}) {
    simt::PlatformModel pm = simt::gpu_tesla_k80();
    pm.width = width;
    const auto r = simt::run_gamma_partition(
        pm, cfg1, rng::NormalTransform::kMarsagliaBray, 1.39f, 2000, 5);
    const double eff = r.stats.simd_efficiency(width);
    s.add_row({TextTable::integer(width), TextTable::percent(eff, 1),
               TextTable::num(1.0 / eff, 2) + "x"});
  }
  s.render(std::cout);
  std::cout << "\nWidth 1 is the FPGA's decoupled case (no divergence tax "
               "by construction); wider hardware partitions pay an "
               "increasing both-sides-of-every-branch overhead — the "
               "paper's Fig 2 argument, quantified.\n";
  return 0;
}
