file(REMOVE_RECURSE
  "libdwi_stats.a"
)
