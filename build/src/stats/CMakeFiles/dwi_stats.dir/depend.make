# Empty dependencies file for dwi_stats.
# This may be replaced when dependencies are built.
