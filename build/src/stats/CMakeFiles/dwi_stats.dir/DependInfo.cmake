
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/anderson_darling.cpp" "src/stats/CMakeFiles/dwi_stats.dir/anderson_darling.cpp.o" "gcc" "src/stats/CMakeFiles/dwi_stats.dir/anderson_darling.cpp.o.d"
  "/root/repo/src/stats/battery.cpp" "src/stats/CMakeFiles/dwi_stats.dir/battery.cpp.o" "gcc" "src/stats/CMakeFiles/dwi_stats.dir/battery.cpp.o.d"
  "/root/repo/src/stats/chi_square.cpp" "src/stats/CMakeFiles/dwi_stats.dir/chi_square.cpp.o" "gcc" "src/stats/CMakeFiles/dwi_stats.dir/chi_square.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/stats/CMakeFiles/dwi_stats.dir/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/dwi_stats.dir/distributions.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/dwi_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/dwi_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/ks_test.cpp" "src/stats/CMakeFiles/dwi_stats.dir/ks_test.cpp.o" "gcc" "src/stats/CMakeFiles/dwi_stats.dir/ks_test.cpp.o.d"
  "/root/repo/src/stats/moments.cpp" "src/stats/CMakeFiles/dwi_stats.dir/moments.cpp.o" "gcc" "src/stats/CMakeFiles/dwi_stats.dir/moments.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/dwi_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/dwi_stats.dir/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dwi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
