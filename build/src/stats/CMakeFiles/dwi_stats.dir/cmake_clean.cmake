file(REMOVE_RECURSE
  "CMakeFiles/dwi_stats.dir/anderson_darling.cpp.o"
  "CMakeFiles/dwi_stats.dir/anderson_darling.cpp.o.d"
  "CMakeFiles/dwi_stats.dir/battery.cpp.o"
  "CMakeFiles/dwi_stats.dir/battery.cpp.o.d"
  "CMakeFiles/dwi_stats.dir/chi_square.cpp.o"
  "CMakeFiles/dwi_stats.dir/chi_square.cpp.o.d"
  "CMakeFiles/dwi_stats.dir/distributions.cpp.o"
  "CMakeFiles/dwi_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/dwi_stats.dir/histogram.cpp.o"
  "CMakeFiles/dwi_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/dwi_stats.dir/ks_test.cpp.o"
  "CMakeFiles/dwi_stats.dir/ks_test.cpp.o.d"
  "CMakeFiles/dwi_stats.dir/moments.cpp.o"
  "CMakeFiles/dwi_stats.dir/moments.cpp.o.d"
  "CMakeFiles/dwi_stats.dir/special.cpp.o"
  "CMakeFiles/dwi_stats.dir/special.cpp.o.d"
  "libdwi_stats.a"
  "libdwi_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwi_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
