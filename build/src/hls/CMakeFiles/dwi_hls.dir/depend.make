# Empty dependencies file for dwi_hls.
# This may be replaced when dependencies are built.
