file(REMOVE_RECURSE
  "libdwi_hls.a"
)
