file(REMOVE_RECURSE
  "CMakeFiles/dwi_hls.dir/pragmas.cpp.o"
  "CMakeFiles/dwi_hls.dir/pragmas.cpp.o.d"
  "libdwi_hls.a"
  "libdwi_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwi_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
