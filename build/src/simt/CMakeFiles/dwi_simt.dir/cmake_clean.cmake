file(REMOVE_RECURSE
  "CMakeFiles/dwi_simt.dir/gamma_kernel.cpp.o"
  "CMakeFiles/dwi_simt.dir/gamma_kernel.cpp.o.d"
  "CMakeFiles/dwi_simt.dir/ops.cpp.o"
  "CMakeFiles/dwi_simt.dir/ops.cpp.o.d"
  "CMakeFiles/dwi_simt.dir/platform.cpp.o"
  "CMakeFiles/dwi_simt.dir/platform.cpp.o.d"
  "CMakeFiles/dwi_simt.dir/runtime_estimator.cpp.o"
  "CMakeFiles/dwi_simt.dir/runtime_estimator.cpp.o.d"
  "libdwi_simt.a"
  "libdwi_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwi_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
