# Empty compiler generated dependencies file for dwi_simt.
# This may be replaced when dependencies are built.
