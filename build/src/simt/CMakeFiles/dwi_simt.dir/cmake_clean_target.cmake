file(REMOVE_RECURSE
  "libdwi_simt.a"
)
