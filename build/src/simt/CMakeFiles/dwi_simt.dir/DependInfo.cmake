
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simt/gamma_kernel.cpp" "src/simt/CMakeFiles/dwi_simt.dir/gamma_kernel.cpp.o" "gcc" "src/simt/CMakeFiles/dwi_simt.dir/gamma_kernel.cpp.o.d"
  "/root/repo/src/simt/ops.cpp" "src/simt/CMakeFiles/dwi_simt.dir/ops.cpp.o" "gcc" "src/simt/CMakeFiles/dwi_simt.dir/ops.cpp.o.d"
  "/root/repo/src/simt/platform.cpp" "src/simt/CMakeFiles/dwi_simt.dir/platform.cpp.o" "gcc" "src/simt/CMakeFiles/dwi_simt.dir/platform.cpp.o.d"
  "/root/repo/src/simt/runtime_estimator.cpp" "src/simt/CMakeFiles/dwi_simt.dir/runtime_estimator.cpp.o" "gcc" "src/simt/CMakeFiles/dwi_simt.dir/runtime_estimator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dwi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/dwi_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/dwi_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dwi_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
