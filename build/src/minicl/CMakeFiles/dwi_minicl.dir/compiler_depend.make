# Empty compiler generated dependencies file for dwi_minicl.
# This may be replaced when dependencies are built.
