file(REMOVE_RECURSE
  "libdwi_minicl.a"
)
