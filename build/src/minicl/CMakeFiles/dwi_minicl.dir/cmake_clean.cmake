file(REMOVE_RECURSE
  "CMakeFiles/dwi_minicl.dir/context.cpp.o"
  "CMakeFiles/dwi_minicl.dir/context.cpp.o.d"
  "CMakeFiles/dwi_minicl.dir/devices.cpp.o"
  "CMakeFiles/dwi_minicl.dir/devices.cpp.o.d"
  "CMakeFiles/dwi_minicl.dir/program.cpp.o"
  "CMakeFiles/dwi_minicl.dir/program.cpp.o.d"
  "CMakeFiles/dwi_minicl.dir/runtime.cpp.o"
  "CMakeFiles/dwi_minicl.dir/runtime.cpp.o.d"
  "libdwi_minicl.a"
  "libdwi_minicl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwi_minicl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
