# Empty dependencies file for dwi_rng.
# This may be replaced when dependencies are built.
