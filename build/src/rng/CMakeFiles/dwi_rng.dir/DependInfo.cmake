
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rng/configs.cpp" "src/rng/CMakeFiles/dwi_rng.dir/configs.cpp.o" "gcc" "src/rng/CMakeFiles/dwi_rng.dir/configs.cpp.o.d"
  "/root/repo/src/rng/dcmt.cpp" "src/rng/CMakeFiles/dwi_rng.dir/dcmt.cpp.o" "gcc" "src/rng/CMakeFiles/dwi_rng.dir/dcmt.cpp.o.d"
  "/root/repo/src/rng/erfinv.cpp" "src/rng/CMakeFiles/dwi_rng.dir/erfinv.cpp.o" "gcc" "src/rng/CMakeFiles/dwi_rng.dir/erfinv.cpp.o.d"
  "/root/repo/src/rng/gamma.cpp" "src/rng/CMakeFiles/dwi_rng.dir/gamma.cpp.o" "gcc" "src/rng/CMakeFiles/dwi_rng.dir/gamma.cpp.o.d"
  "/root/repo/src/rng/icdf_bitwise.cpp" "src/rng/CMakeFiles/dwi_rng.dir/icdf_bitwise.cpp.o" "gcc" "src/rng/CMakeFiles/dwi_rng.dir/icdf_bitwise.cpp.o.d"
  "/root/repo/src/rng/jump.cpp" "src/rng/CMakeFiles/dwi_rng.dir/jump.cpp.o" "gcc" "src/rng/CMakeFiles/dwi_rng.dir/jump.cpp.o.d"
  "/root/repo/src/rng/mersenne_twister.cpp" "src/rng/CMakeFiles/dwi_rng.dir/mersenne_twister.cpp.o" "gcc" "src/rng/CMakeFiles/dwi_rng.dir/mersenne_twister.cpp.o.d"
  "/root/repo/src/rng/normal.cpp" "src/rng/CMakeFiles/dwi_rng.dir/normal.cpp.o" "gcc" "src/rng/CMakeFiles/dwi_rng.dir/normal.cpp.o.d"
  "/root/repo/src/rng/philox.cpp" "src/rng/CMakeFiles/dwi_rng.dir/philox.cpp.o" "gcc" "src/rng/CMakeFiles/dwi_rng.dir/philox.cpp.o.d"
  "/root/repo/src/rng/ziggurat.cpp" "src/rng/CMakeFiles/dwi_rng.dir/ziggurat.cpp.o" "gcc" "src/rng/CMakeFiles/dwi_rng.dir/ziggurat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dwi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/dwi_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dwi_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
