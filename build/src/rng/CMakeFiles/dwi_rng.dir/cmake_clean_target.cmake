file(REMOVE_RECURSE
  "libdwi_rng.a"
)
