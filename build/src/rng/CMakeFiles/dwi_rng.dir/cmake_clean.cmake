file(REMOVE_RECURSE
  "CMakeFiles/dwi_rng.dir/configs.cpp.o"
  "CMakeFiles/dwi_rng.dir/configs.cpp.o.d"
  "CMakeFiles/dwi_rng.dir/dcmt.cpp.o"
  "CMakeFiles/dwi_rng.dir/dcmt.cpp.o.d"
  "CMakeFiles/dwi_rng.dir/erfinv.cpp.o"
  "CMakeFiles/dwi_rng.dir/erfinv.cpp.o.d"
  "CMakeFiles/dwi_rng.dir/gamma.cpp.o"
  "CMakeFiles/dwi_rng.dir/gamma.cpp.o.d"
  "CMakeFiles/dwi_rng.dir/icdf_bitwise.cpp.o"
  "CMakeFiles/dwi_rng.dir/icdf_bitwise.cpp.o.d"
  "CMakeFiles/dwi_rng.dir/jump.cpp.o"
  "CMakeFiles/dwi_rng.dir/jump.cpp.o.d"
  "CMakeFiles/dwi_rng.dir/mersenne_twister.cpp.o"
  "CMakeFiles/dwi_rng.dir/mersenne_twister.cpp.o.d"
  "CMakeFiles/dwi_rng.dir/normal.cpp.o"
  "CMakeFiles/dwi_rng.dir/normal.cpp.o.d"
  "CMakeFiles/dwi_rng.dir/philox.cpp.o"
  "CMakeFiles/dwi_rng.dir/philox.cpp.o.d"
  "CMakeFiles/dwi_rng.dir/ziggurat.cpp.o"
  "CMakeFiles/dwi_rng.dir/ziggurat.cpp.o.d"
  "libdwi_rng.a"
  "libdwi_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwi_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
