file(REMOVE_RECURSE
  "CMakeFiles/dwi_finance.dir/contributions.cpp.o"
  "CMakeFiles/dwi_finance.dir/contributions.cpp.o.d"
  "CMakeFiles/dwi_finance.dir/creditrisk_plus.cpp.o"
  "CMakeFiles/dwi_finance.dir/creditrisk_plus.cpp.o.d"
  "CMakeFiles/dwi_finance.dir/panjer.cpp.o"
  "CMakeFiles/dwi_finance.dir/panjer.cpp.o.d"
  "CMakeFiles/dwi_finance.dir/portfolio.cpp.o"
  "CMakeFiles/dwi_finance.dir/portfolio.cpp.o.d"
  "libdwi_finance.a"
  "libdwi_finance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwi_finance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
