# Empty dependencies file for dwi_finance.
# This may be replaced when dependencies are built.
