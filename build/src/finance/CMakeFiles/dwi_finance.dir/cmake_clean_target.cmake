file(REMOVE_RECURSE
  "libdwi_finance.a"
)
