file(REMOVE_RECURSE
  "CMakeFiles/dwi_common.dir/error.cpp.o"
  "CMakeFiles/dwi_common.dir/error.cpp.o.d"
  "CMakeFiles/dwi_common.dir/table.cpp.o"
  "CMakeFiles/dwi_common.dir/table.cpp.o.d"
  "libdwi_common.a"
  "libdwi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
