file(REMOVE_RECURSE
  "libdwi_common.a"
)
