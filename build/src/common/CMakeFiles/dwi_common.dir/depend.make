# Empty dependencies file for dwi_common.
# This may be replaced when dependencies are built.
