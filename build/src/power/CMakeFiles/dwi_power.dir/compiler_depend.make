# Empty compiler generated dependencies file for dwi_power.
# This may be replaced when dependencies are built.
