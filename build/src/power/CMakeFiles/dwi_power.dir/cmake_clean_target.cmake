file(REMOVE_RECURSE
  "libdwi_power.a"
)
