file(REMOVE_RECURSE
  "CMakeFiles/dwi_power.dir/energy_protocol.cpp.o"
  "CMakeFiles/dwi_power.dir/energy_protocol.cpp.o.d"
  "CMakeFiles/dwi_power.dir/trace.cpp.o"
  "CMakeFiles/dwi_power.dir/trace.cpp.o.d"
  "libdwi_power.a"
  "libdwi_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwi_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
