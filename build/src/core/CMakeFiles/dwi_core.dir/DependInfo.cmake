
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/decoupled_work_items.cpp" "src/core/CMakeFiles/dwi_core.dir/decoupled_work_items.cpp.o" "gcc" "src/core/CMakeFiles/dwi_core.dir/decoupled_work_items.cpp.o.d"
  "/root/repo/src/core/delayed_counter.cpp" "src/core/CMakeFiles/dwi_core.dir/delayed_counter.cpp.o" "gcc" "src/core/CMakeFiles/dwi_core.dir/delayed_counter.cpp.o.d"
  "/root/repo/src/core/fpga_app.cpp" "src/core/CMakeFiles/dwi_core.dir/fpga_app.cpp.o" "gcc" "src/core/CMakeFiles/dwi_core.dir/fpga_app.cpp.o.d"
  "/root/repo/src/core/gamma_work_item.cpp" "src/core/CMakeFiles/dwi_core.dir/gamma_work_item.cpp.o" "gcc" "src/core/CMakeFiles/dwi_core.dir/gamma_work_item.cpp.o.d"
  "/root/repo/src/core/transfer_unit.cpp" "src/core/CMakeFiles/dwi_core.dir/transfer_unit.cpp.o" "gcc" "src/core/CMakeFiles/dwi_core.dir/transfer_unit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dwi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/dwi_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/dwi_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/dwi_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dwi_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
