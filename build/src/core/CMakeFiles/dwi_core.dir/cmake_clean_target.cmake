file(REMOVE_RECURSE
  "libdwi_core.a"
)
