# Empty compiler generated dependencies file for dwi_core.
# This may be replaced when dependencies are built.
