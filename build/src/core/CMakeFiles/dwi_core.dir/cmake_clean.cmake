file(REMOVE_RECURSE
  "CMakeFiles/dwi_core.dir/decoupled_work_items.cpp.o"
  "CMakeFiles/dwi_core.dir/decoupled_work_items.cpp.o.d"
  "CMakeFiles/dwi_core.dir/delayed_counter.cpp.o"
  "CMakeFiles/dwi_core.dir/delayed_counter.cpp.o.d"
  "CMakeFiles/dwi_core.dir/fpga_app.cpp.o"
  "CMakeFiles/dwi_core.dir/fpga_app.cpp.o.d"
  "CMakeFiles/dwi_core.dir/gamma_work_item.cpp.o"
  "CMakeFiles/dwi_core.dir/gamma_work_item.cpp.o.d"
  "CMakeFiles/dwi_core.dir/transfer_unit.cpp.o"
  "CMakeFiles/dwi_core.dir/transfer_unit.cpp.o.d"
  "libdwi_core.a"
  "libdwi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
