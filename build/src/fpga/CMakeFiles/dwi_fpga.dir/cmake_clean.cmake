file(REMOVE_RECURSE
  "CMakeFiles/dwi_fpga.dir/device.cpp.o"
  "CMakeFiles/dwi_fpga.dir/device.cpp.o.d"
  "CMakeFiles/dwi_fpga.dir/kernel_sim.cpp.o"
  "CMakeFiles/dwi_fpga.dir/kernel_sim.cpp.o.d"
  "CMakeFiles/dwi_fpga.dir/memory_channel.cpp.o"
  "CMakeFiles/dwi_fpga.dir/memory_channel.cpp.o.d"
  "CMakeFiles/dwi_fpga.dir/resource_model.cpp.o"
  "CMakeFiles/dwi_fpga.dir/resource_model.cpp.o.d"
  "CMakeFiles/dwi_fpga.dir/scheduler.cpp.o"
  "CMakeFiles/dwi_fpga.dir/scheduler.cpp.o.d"
  "libdwi_fpga.a"
  "libdwi_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwi_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
