# Empty dependencies file for dwi_fpga.
# This may be replaced when dependencies are built.
