
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/device.cpp" "src/fpga/CMakeFiles/dwi_fpga.dir/device.cpp.o" "gcc" "src/fpga/CMakeFiles/dwi_fpga.dir/device.cpp.o.d"
  "/root/repo/src/fpga/kernel_sim.cpp" "src/fpga/CMakeFiles/dwi_fpga.dir/kernel_sim.cpp.o" "gcc" "src/fpga/CMakeFiles/dwi_fpga.dir/kernel_sim.cpp.o.d"
  "/root/repo/src/fpga/memory_channel.cpp" "src/fpga/CMakeFiles/dwi_fpga.dir/memory_channel.cpp.o" "gcc" "src/fpga/CMakeFiles/dwi_fpga.dir/memory_channel.cpp.o.d"
  "/root/repo/src/fpga/resource_model.cpp" "src/fpga/CMakeFiles/dwi_fpga.dir/resource_model.cpp.o" "gcc" "src/fpga/CMakeFiles/dwi_fpga.dir/resource_model.cpp.o.d"
  "/root/repo/src/fpga/scheduler.cpp" "src/fpga/CMakeFiles/dwi_fpga.dir/scheduler.cpp.o" "gcc" "src/fpga/CMakeFiles/dwi_fpga.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dwi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/dwi_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/dwi_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dwi_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
