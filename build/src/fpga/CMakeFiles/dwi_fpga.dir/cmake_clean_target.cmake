file(REMOVE_RECURSE
  "libdwi_fpga.a"
)
