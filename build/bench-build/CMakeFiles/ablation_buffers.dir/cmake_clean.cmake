file(REMOVE_RECURSE
  "../bench/ablation_buffers"
  "../bench/ablation_buffers.pdb"
  "CMakeFiles/ablation_buffers.dir/ablation_buffers.cpp.o"
  "CMakeFiles/ablation_buffers.dir/ablation_buffers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
