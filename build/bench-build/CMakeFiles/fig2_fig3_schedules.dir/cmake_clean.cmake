file(REMOVE_RECURSE
  "../bench/fig2_fig3_schedules"
  "../bench/fig2_fig3_schedules.pdb"
  "CMakeFiles/fig2_fig3_schedules.dir/fig2_fig3_schedules.cpp.o"
  "CMakeFiles/fig2_fig3_schedules.dir/fig2_fig3_schedules.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_fig3_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
