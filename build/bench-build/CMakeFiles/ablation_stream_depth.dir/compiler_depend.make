# Empty compiler generated dependencies file for ablation_stream_depth.
# This may be replaced when dependencies are built.
