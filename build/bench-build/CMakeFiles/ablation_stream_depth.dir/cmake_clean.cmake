file(REMOVE_RECURSE
  "../bench/ablation_stream_depth"
  "../bench/ablation_stream_depth.pdb"
  "CMakeFiles/ablation_stream_depth.dir/ablation_stream_depth.cpp.o"
  "CMakeFiles/ablation_stream_depth.dir/ablation_stream_depth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stream_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
