file(REMOVE_RECURSE
  "../bench/table2_resources"
  "../bench/table2_resources.pdb"
  "CMakeFiles/table2_resources.dir/table2_resources.cpp.o"
  "CMakeFiles/table2_resources.dir/table2_resources.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
