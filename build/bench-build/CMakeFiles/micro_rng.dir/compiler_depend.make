# Empty compiler generated dependencies file for micro_rng.
# This may be replaced when dependencies are built.
