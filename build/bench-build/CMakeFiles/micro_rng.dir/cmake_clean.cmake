file(REMOVE_RECURSE
  "../bench/micro_rng"
  "../bench/micro_rng.pdb"
  "CMakeFiles/micro_rng.dir/micro_rng.cpp.o"
  "CMakeFiles/micro_rng.dir/micro_rng.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
