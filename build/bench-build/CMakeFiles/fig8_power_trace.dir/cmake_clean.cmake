file(REMOVE_RECURSE
  "../bench/fig8_power_trace"
  "../bench/fig8_power_trace.pdb"
  "CMakeFiles/fig8_power_trace.dir/fig8_power_trace.cpp.o"
  "CMakeFiles/fig8_power_trace.dir/fig8_power_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_power_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
