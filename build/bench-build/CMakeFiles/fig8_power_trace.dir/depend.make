# Empty dependencies file for fig8_power_trace.
# This may be replaced when dependencies are built.
