file(REMOVE_RECURSE
  "../bench/ablation_transforms"
  "../bench/ablation_transforms.pdb"
  "CMakeFiles/ablation_transforms.dir/ablation_transforms.cpp.o"
  "CMakeFiles/ablation_transforms.dir/ablation_transforms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
