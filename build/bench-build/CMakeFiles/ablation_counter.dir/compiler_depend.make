# Empty compiler generated dependencies file for ablation_counter.
# This may be replaced when dependencies are built.
