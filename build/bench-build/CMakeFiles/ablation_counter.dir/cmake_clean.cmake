file(REMOVE_RECURSE
  "../bench/ablation_counter"
  "../bench/ablation_counter.pdb"
  "CMakeFiles/ablation_counter.dir/ablation_counter.cpp.o"
  "CMakeFiles/ablation_counter.dir/ablation_counter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
