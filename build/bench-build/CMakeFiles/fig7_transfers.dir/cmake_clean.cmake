file(REMOVE_RECURSE
  "../bench/fig7_transfers"
  "../bench/fig7_transfers.pdb"
  "CMakeFiles/fig7_transfers.dir/fig7_transfers.cpp.o"
  "CMakeFiles/fig7_transfers.dir/fig7_transfers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
