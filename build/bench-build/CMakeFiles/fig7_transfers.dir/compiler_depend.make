# Empty compiler generated dependencies file for fig7_transfers.
# This may be replaced when dependencies are built.
