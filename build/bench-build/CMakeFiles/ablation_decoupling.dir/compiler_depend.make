# Empty compiler generated dependencies file for ablation_decoupling.
# This may be replaced when dependencies are built.
