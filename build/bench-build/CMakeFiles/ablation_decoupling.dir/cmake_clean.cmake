file(REMOVE_RECURSE
  "../bench/ablation_decoupling"
  "../bench/ablation_decoupling.pdb"
  "CMakeFiles/ablation_decoupling.dir/ablation_decoupling.cpp.o"
  "CMakeFiles/ablation_decoupling.dir/ablation_decoupling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decoupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
