file(REMOVE_RECURSE
  "../bench/fig5_worksizes"
  "../bench/fig5_worksizes.pdb"
  "CMakeFiles/fig5_worksizes.dir/fig5_worksizes.cpp.o"
  "CMakeFiles/fig5_worksizes.dir/fig5_worksizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_worksizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
