# Empty dependencies file for fig5_worksizes.
# This may be replaced when dependencies are built.
