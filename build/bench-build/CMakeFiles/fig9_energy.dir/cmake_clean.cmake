file(REMOVE_RECURSE
  "../bench/fig9_energy"
  "../bench/fig9_energy.pdb"
  "CMakeFiles/fig9_energy.dir/fig9_energy.cpp.o"
  "CMakeFiles/fig9_energy.dir/fig9_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
