# Empty dependencies file for extension_scaling.
# This may be replaced when dependencies are built.
