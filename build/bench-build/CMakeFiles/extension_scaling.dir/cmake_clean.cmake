file(REMOVE_RECURSE
  "../bench/extension_scaling"
  "../bench/extension_scaling.pdb"
  "CMakeFiles/extension_scaling.dir/extension_scaling.cpp.o"
  "CMakeFiles/extension_scaling.dir/extension_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
