# Empty compiler generated dependencies file for micro_hls.
# This may be replaced when dependencies are built.
