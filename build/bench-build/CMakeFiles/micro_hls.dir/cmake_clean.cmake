file(REMOVE_RECURSE
  "../bench/micro_hls"
  "../bench/micro_hls.pdb"
  "CMakeFiles/micro_hls.dir/micro_hls.cpp.o"
  "CMakeFiles/micro_hls.dir/micro_hls.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
