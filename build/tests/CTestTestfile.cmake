# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_ap_types[1]_include.cmake")
include("/root/repo/build/tests/test_stream_dataflow[1]_include.cmake")
include("/root/repo/build/tests/test_mersenne_twister[1]_include.cmake")
include("/root/repo/build/tests/test_normal_transforms[1]_include.cmake")
include("/root/repo/build/tests/test_gamma[1]_include.cmake")
include("/root/repo/build/tests/test_simt[1]_include.cmake")
include("/root/repo/build/tests/test_fpga[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_minicl_power[1]_include.cmake")
include("/root/repo/build/tests/test_finance[1]_include.cmake")
include("/root/repo/build/tests/test_dcmt[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_panjer[1]_include.cmake")
include("/root/repo/build/tests/test_hls_property[1]_include.cmake")
include("/root/repo/build/tests/test_rng_property[1]_include.cmake")
include("/root/repo/build/tests/test_sim_invariants[1]_include.cmake")
include("/root/repo/build/tests/test_jump[1]_include.cmake")
include("/root/repo/build/tests/test_battery[1]_include.cmake")
include("/root/repo/build/tests/test_program_contrib[1]_include.cmake")
include("/root/repo/build/tests/test_api_contracts[1]_include.cmake")
include("/root/repo/build/tests/test_anderson_darling[1]_include.cmake")
include("/root/repo/build/tests/test_rejection_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_golden[1]_include.cmake")
include("/root/repo/build/tests/test_philox[1]_include.cmake")
include("/root/repo/build/tests/test_ziggurat[1]_include.cmake")
include("/root/repo/build/tests/test_headline[1]_include.cmake")
