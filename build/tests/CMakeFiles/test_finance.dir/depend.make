# Empty dependencies file for test_finance.
# This may be replaced when dependencies are built.
