file(REMOVE_RECURSE
  "CMakeFiles/test_finance.dir/test_finance.cpp.o"
  "CMakeFiles/test_finance.dir/test_finance.cpp.o.d"
  "test_finance"
  "test_finance.pdb"
  "test_finance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_finance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
