# Empty compiler generated dependencies file for test_program_contrib.
# This may be replaced when dependencies are built.
