file(REMOVE_RECURSE
  "CMakeFiles/test_program_contrib.dir/test_program_contrib.cpp.o"
  "CMakeFiles/test_program_contrib.dir/test_program_contrib.cpp.o.d"
  "test_program_contrib"
  "test_program_contrib.pdb"
  "test_program_contrib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_program_contrib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
