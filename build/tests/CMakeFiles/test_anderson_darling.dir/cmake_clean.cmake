file(REMOVE_RECURSE
  "CMakeFiles/test_anderson_darling.dir/test_anderson_darling.cpp.o"
  "CMakeFiles/test_anderson_darling.dir/test_anderson_darling.cpp.o.d"
  "test_anderson_darling"
  "test_anderson_darling.pdb"
  "test_anderson_darling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anderson_darling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
