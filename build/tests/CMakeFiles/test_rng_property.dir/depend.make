# Empty dependencies file for test_rng_property.
# This may be replaced when dependencies are built.
