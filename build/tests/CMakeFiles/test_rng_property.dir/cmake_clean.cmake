file(REMOVE_RECURSE
  "CMakeFiles/test_rng_property.dir/test_rng_property.cpp.o"
  "CMakeFiles/test_rng_property.dir/test_rng_property.cpp.o.d"
  "test_rng_property"
  "test_rng_property.pdb"
  "test_rng_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rng_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
