file(REMOVE_RECURSE
  "CMakeFiles/test_hls_property.dir/test_hls_property.cpp.o"
  "CMakeFiles/test_hls_property.dir/test_hls_property.cpp.o.d"
  "test_hls_property"
  "test_hls_property.pdb"
  "test_hls_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
