# Empty dependencies file for test_hls_property.
# This may be replaced when dependencies are built.
