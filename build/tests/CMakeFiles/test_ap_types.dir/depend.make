# Empty dependencies file for test_ap_types.
# This may be replaced when dependencies are built.
