file(REMOVE_RECURSE
  "CMakeFiles/test_ap_types.dir/test_ap_types.cpp.o"
  "CMakeFiles/test_ap_types.dir/test_ap_types.cpp.o.d"
  "test_ap_types"
  "test_ap_types.pdb"
  "test_ap_types[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ap_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
