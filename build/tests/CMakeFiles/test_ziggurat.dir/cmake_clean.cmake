file(REMOVE_RECURSE
  "CMakeFiles/test_ziggurat.dir/test_ziggurat.cpp.o"
  "CMakeFiles/test_ziggurat.dir/test_ziggurat.cpp.o.d"
  "test_ziggurat"
  "test_ziggurat.pdb"
  "test_ziggurat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ziggurat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
