# Empty dependencies file for test_ziggurat.
# This may be replaced when dependencies are built.
