file(REMOVE_RECURSE
  "CMakeFiles/test_mersenne_twister.dir/test_mersenne_twister.cpp.o"
  "CMakeFiles/test_mersenne_twister.dir/test_mersenne_twister.cpp.o.d"
  "test_mersenne_twister"
  "test_mersenne_twister.pdb"
  "test_mersenne_twister[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mersenne_twister.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
