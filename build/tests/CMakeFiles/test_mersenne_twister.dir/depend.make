# Empty dependencies file for test_mersenne_twister.
# This may be replaced when dependencies are built.
