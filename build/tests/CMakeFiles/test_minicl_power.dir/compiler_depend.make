# Empty compiler generated dependencies file for test_minicl_power.
# This may be replaced when dependencies are built.
