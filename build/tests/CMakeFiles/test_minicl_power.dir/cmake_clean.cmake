file(REMOVE_RECURSE
  "CMakeFiles/test_minicl_power.dir/test_minicl_power.cpp.o"
  "CMakeFiles/test_minicl_power.dir/test_minicl_power.cpp.o.d"
  "test_minicl_power"
  "test_minicl_power.pdb"
  "test_minicl_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minicl_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
