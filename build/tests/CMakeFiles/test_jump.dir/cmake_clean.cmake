file(REMOVE_RECURSE
  "CMakeFiles/test_jump.dir/test_jump.cpp.o"
  "CMakeFiles/test_jump.dir/test_jump.cpp.o.d"
  "test_jump"
  "test_jump.pdb"
  "test_jump[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
