# Empty dependencies file for test_jump.
# This may be replaced when dependencies are built.
