file(REMOVE_RECURSE
  "CMakeFiles/test_philox.dir/test_philox.cpp.o"
  "CMakeFiles/test_philox.dir/test_philox.cpp.o.d"
  "test_philox"
  "test_philox.pdb"
  "test_philox[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_philox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
