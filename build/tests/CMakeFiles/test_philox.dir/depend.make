# Empty dependencies file for test_philox.
# This may be replaced when dependencies are built.
