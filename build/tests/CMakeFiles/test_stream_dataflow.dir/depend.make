# Empty dependencies file for test_stream_dataflow.
# This may be replaced when dependencies are built.
