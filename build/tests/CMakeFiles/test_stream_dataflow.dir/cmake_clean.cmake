file(REMOVE_RECURSE
  "CMakeFiles/test_stream_dataflow.dir/test_stream_dataflow.cpp.o"
  "CMakeFiles/test_stream_dataflow.dir/test_stream_dataflow.cpp.o.d"
  "test_stream_dataflow"
  "test_stream_dataflow.pdb"
  "test_stream_dataflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
