# Empty dependencies file for test_normal_transforms.
# This may be replaced when dependencies are built.
