file(REMOVE_RECURSE
  "CMakeFiles/test_normal_transforms.dir/test_normal_transforms.cpp.o"
  "CMakeFiles/test_normal_transforms.dir/test_normal_transforms.cpp.o.d"
  "test_normal_transforms"
  "test_normal_transforms.pdb"
  "test_normal_transforms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_normal_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
