# Empty dependencies file for test_headline.
# This may be replaced when dependencies are built.
