file(REMOVE_RECURSE
  "CMakeFiles/test_dcmt.dir/test_dcmt.cpp.o"
  "CMakeFiles/test_dcmt.dir/test_dcmt.cpp.o.d"
  "test_dcmt"
  "test_dcmt.pdb"
  "test_dcmt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dcmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
