# Empty compiler generated dependencies file for test_dcmt.
# This may be replaced when dependencies are built.
