
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_panjer.cpp" "tests/CMakeFiles/test_panjer.dir/test_panjer.cpp.o" "gcc" "tests/CMakeFiles/test_panjer.dir/test_panjer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/finance/CMakeFiles/dwi_finance.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dwi_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/dwi_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/dwi_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dwi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
