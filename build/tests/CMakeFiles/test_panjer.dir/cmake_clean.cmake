file(REMOVE_RECURSE
  "CMakeFiles/test_panjer.dir/test_panjer.cpp.o"
  "CMakeFiles/test_panjer.dir/test_panjer.cpp.o.d"
  "test_panjer"
  "test_panjer.pdb"
  "test_panjer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_panjer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
