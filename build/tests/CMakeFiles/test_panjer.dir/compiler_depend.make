# Empty compiler generated dependencies file for test_panjer.
# This may be replaced when dependencies are built.
