# Empty compiler generated dependencies file for test_rejection_kernel.
# This may be replaced when dependencies are built.
