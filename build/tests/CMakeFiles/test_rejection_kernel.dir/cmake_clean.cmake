file(REMOVE_RECURSE
  "CMakeFiles/test_rejection_kernel.dir/test_rejection_kernel.cpp.o"
  "CMakeFiles/test_rejection_kernel.dir/test_rejection_kernel.cpp.o.d"
  "test_rejection_kernel"
  "test_rejection_kernel.pdb"
  "test_rejection_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rejection_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
