file(REMOVE_RECURSE
  "../examples/credit_risk_plus"
  "../examples/credit_risk_plus.pdb"
  "CMakeFiles/credit_risk_plus.dir/credit_risk_plus.cpp.o"
  "CMakeFiles/credit_risk_plus.dir/credit_risk_plus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/credit_risk_plus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
