# Empty dependencies file for credit_risk_plus.
# This may be replaced when dependencies are built.
