# Empty compiler generated dependencies file for parallel_streams.
# This may be replaced when dependencies are built.
