file(REMOVE_RECURSE
  "../examples/parallel_streams"
  "../examples/parallel_streams.pdb"
  "CMakeFiles/parallel_streams.dir/parallel_streams.cpp.o"
  "CMakeFiles/parallel_streams.dir/parallel_streams.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
