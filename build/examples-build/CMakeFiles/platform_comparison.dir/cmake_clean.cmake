file(REMOVE_RECURSE
  "../examples/platform_comparison"
  "../examples/platform_comparison.pdb"
  "CMakeFiles/platform_comparison.dir/platform_comparison.cpp.o"
  "CMakeFiles/platform_comparison.dir/platform_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
