# Empty dependencies file for custom_rejection_kernel.
# This may be replaced when dependencies are built.
