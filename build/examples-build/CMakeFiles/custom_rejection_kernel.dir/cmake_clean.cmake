file(REMOVE_RECURSE
  "../examples/custom_rejection_kernel"
  "../examples/custom_rejection_kernel.pdb"
  "CMakeFiles/custom_rejection_kernel.dir/custom_rejection_kernel.cpp.o"
  "CMakeFiles/custom_rejection_kernel.dir/custom_rejection_kernel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_rejection_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
