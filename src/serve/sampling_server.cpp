#include "serve/sampling_server.h"

#include <chrono>
#include <cmath>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "finance/creditrisk_plus.h"
#include "rng/gamma.h"
#include "workloads/histogram.h"
#include "workloads/matching.h"
#include "workloads/spmv.h"

namespace dwi::serve {

namespace {

/// splitmix64 finalizer: mixes (server_seed, request_id) into the
/// Poisson seed so CreditRisk+ scenario noise is decorrelated across
/// requests yet fully reproducible.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double duration_seconds(std::chrono::steady_clock::time_point from,
                        std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// One uniform source over the request's slot-0 substream; exactly one
/// of {mt, px} is consumed, selected once per request (same shape as
/// the CreditRisk+ sector streams below).
struct SlotSource {
  std::optional<rng::MersenneTwister> mt;
  std::optional<rng::Philox> px;
  std::uint32_t operator()() { return px ? px->next() : mt->next(); }
};

WorkloadStatsResult to_stats_result(const workloads::WorkloadStats& s) {
  WorkloadStatsResult r;
  r.cycles = s.cycles;
  r.initiations = s.initiations;
  r.hazard_stall_cycles = s.hazard_stall_cycles;
  r.forwarded = s.forwarded;
  r.skipped = s.skipped;
  return r;
}

}  // namespace

SamplingServer::SamplingServer(ServeConfig cfg)
    : cfg_(cfg),
      splitter_(cfg.mt, cfg.server_seed, cfg.substream_stride),
      counter_streams_(cfg.server_seed, cfg.substream_stride) {
  DWI_REQUIRE(cfg_.substreams_per_request >= 2,
              "serve: need at least one gamma slot and one sector slot "
              "per request id");
  DWI_REQUIRE(cfg_.stream_strategy != rng::StreamStrategy::kDistinctSeeds,
              "serve: kDistinctSeeds cannot guarantee non-overlapping "
              "request substreams; use kJumpAhead or kCounterBased");
  // Modeled-capacity admission: an enabled plan replaces the explicit
  // queue/batch constants with bounds derived from the device's
  // modeled throughput (serve/capacity.h); config() then reports the
  // effective values. A disabled plan leaves them untouched.
  cfg_.queue_capacity =
      derived_queue_capacity(cfg_.capacity, cfg_.queue_capacity);
  cfg_.max_batch =
      derived_max_batch(cfg_.capacity, cfg_.max_batch, cfg_.queue_capacity);
  if (cfg_.response_cache_entries > 0) {
    cache_ = std::make_unique<ResponseCache>(cfg_.response_cache_entries);
  }
  SchedulerConfig sched;
  sched.queue_capacity = cfg_.queue_capacity;
  sched.max_batch = cfg_.max_batch;
  sched.batching = cfg_.batching;
  scheduler_ = std::make_unique<BatchScheduler>(sched, &metrics_);
  if (cfg_.resident) {
    resident_ = std::make_unique<ResidentPipeline>(
        *this, &metrics_, cfg_.queue_capacity, cfg_.resident_pipe_depth,
        cfg_.resident_row_block, cache_.get());
  }
}

SamplingServer::~SamplingServer() { shutdown(); }

void SamplingServer::shutdown() {
  if (resident_) resident_->shutdown();
  scheduler_->shutdown();
}

MetricsSnapshot SamplingServer::metrics() const {
  MetricsSnapshot s = metrics_.snapshot();
  if (resident_) {
    s.resident = true;
    s.resident_pipes = resident_->pipe_stalls();
  }
  return s;
}

std::size_t SamplingServer::queue_depth() const {
  std::size_t depth = scheduler_->queue_depth();
  if (resident_) depth += resident_->queue_depth();
  return depth;
}

rng::MersenneTwister SamplingServer::gamma_stream(RequestId id) const {
  return splitter_.stream(id * cfg_.substreams_per_request);
}

rng::MersenneTwister SamplingServer::sector_stream(RequestId id,
                                                   std::size_t k) const {
  DWI_REQUIRE(k + 1 < cfg_.substreams_per_request,
              "serve: sector index exceeds the request's substream block");
  return splitter_.stream(id * cfg_.substreams_per_request + 1 + k);
}

rng::Philox SamplingServer::gamma_counter_stream(RequestId id) const {
  return counter_streams_.stream(id * cfg_.substreams_per_request);
}

rng::Philox SamplingServer::sector_counter_stream(RequestId id,
                                                  std::size_t k) const {
  DWI_REQUIRE(k + 1 < cfg_.substreams_per_request,
              "serve: sector index exceeds the request's substream block");
  return counter_streams_.stream(id * cfg_.substreams_per_request + 1 + k);
}

std::uint64_t SamplingServer::poisson_seed(RequestId id) const {
  return mix64((static_cast<std::uint64_t>(cfg_.server_seed) << 32) ^ id);
}

ServeStatus SamplingServer::validate(const GammaRequest& req) const {
  if (req.count == 0 || req.count > cfg_.max_gamma_count) {
    return ServeStatus::kInvalidRequest;
  }
  if (!(req.alpha > 0.0f) || !std::isfinite(req.alpha)) {
    return ServeStatus::kInvalidRequest;
  }
  if (!(req.scale > 0.0f) || !std::isfinite(req.scale)) {
    return ServeStatus::kInvalidRequest;
  }
  if (req.id > (~std::uint64_t{0}) / cfg_.substreams_per_request - 1) {
    return ServeStatus::kInvalidRequest;  // substream index would wrap
  }
  return ServeStatus::kAdmitted;
}

ServeStatus SamplingServer::validate(const CreditRiskRequest& req) const {
  if (!req.portfolio) return ServeStatus::kInvalidRequest;
  if (req.num_scenarios < 2 || req.num_scenarios > cfg_.max_scenarios) {
    return ServeStatus::kInvalidRequest;
  }
  const std::size_t sectors = req.portfolio->num_sectors();
  if (sectors == 0 || sectors > cfg_.substreams_per_request - 1) {
    return ServeStatus::kInvalidRequest;
  }
  if (req.id > (~std::uint64_t{0}) / cfg_.substreams_per_request - 1) {
    return ServeStatus::kInvalidRequest;
  }
  return ServeStatus::kAdmitted;
}

ServeStatus SamplingServer::validate(const HistogramRequest& req) const {
  if (req.num_updates == 0 || req.num_updates > cfg_.max_histogram_updates) {
    return ServeStatus::kInvalidRequest;
  }
  if (req.num_bins == 0 || req.num_bins > cfg_.max_histogram_bins) {
    return ServeStatus::kInvalidRequest;
  }
  if (!(req.hot_fraction >= 0.0f) || !(req.hot_fraction <= 1.0f) ||
      !std::isfinite(req.hot_fraction)) {
    return ServeStatus::kInvalidRequest;
  }
  if (req.id > (~std::uint64_t{0}) / cfg_.substreams_per_request - 1) {
    return ServeStatus::kInvalidRequest;
  }
  return ServeStatus::kAdmitted;
}

ServeStatus SamplingServer::validate(const SpmvRequest& req) const {
  if (req.rows == 0 || req.rows > cfg_.max_spmv_rows) {
    return ServeStatus::kInvalidRequest;
  }
  if (req.nnz_per_row_min > req.nnz_per_row_max ||
      req.nnz_per_row_max > cfg_.max_spmv_nnz_per_row) {
    return ServeStatus::kInvalidRequest;
  }
  if (req.id > (~std::uint64_t{0}) / cfg_.substreams_per_request - 1) {
    return ServeStatus::kInvalidRequest;
  }
  return ServeStatus::kAdmitted;
}

ServeStatus SamplingServer::validate(const MatchingRequest& req) const {
  if (req.num_vertices < 2 || req.num_vertices > cfg_.max_matching_vertices) {
    return ServeStatus::kInvalidRequest;
  }
  if (req.num_edges == 0 || req.num_edges > cfg_.max_matching_edges) {
    return ServeStatus::kInvalidRequest;
  }
  if (req.id > (~std::uint64_t{0}) / cfg_.substreams_per_request - 1) {
    return ServeStatus::kInvalidRequest;
  }
  return ServeStatus::kAdmitted;
}

GammaResult SamplingServer::compute(const GammaRequest& req) const {
  rng::GammaSampler sampler(rng::GammaConstants::make(req.alpha, req.scale),
                            req.transform);
  GammaResult res;
  res.id = req.id;
  res.samples.resize(req.count);
  if (cfg_.stream_strategy == rng::StreamStrategy::kCounterBased) {
    rng::Philox px = gamma_counter_stream(req.id);
    sampler.sample_block(px, res.samples.data(), res.samples.size());
  } else {
    rng::MersenneTwister mt = gamma_stream(req.id);
    sampler.sample_block(mt, res.samples.data(), res.samples.size());
  }
  res.attempts = sampler.attempts();
  res.accepted = sampler.accepted();
  return res;
}

CreditRiskResult SamplingServer::compute(const CreditRiskRequest& req) const {
  const finance::Portfolio& portfolio = *req.portfolio;
  const bool counter_based =
      cfg_.stream_strategy == rng::StreamStrategy::kCounterBased;
  // One uniform source per sector; exactly one of {mt, px} is consumed,
  // selected once per request rather than per draw.
  struct SectorStream {
    rng::GammaSampler sampler;
    std::optional<rng::MersenneTwister> mt;
    std::optional<rng::Philox> px;
  };
  std::vector<SectorStream> streams;
  streams.reserve(portfolio.num_sectors());
  for (std::size_t k = 0; k < portfolio.num_sectors(); ++k) {
    SectorStream s{rng::GammaSampler(
                       rng::GammaConstants::from_sector_variance(
                           static_cast<float>(portfolio.sectors()[k].variance)),
                       rng::NormalTransform::kMarsagliaBray),
                   std::nullopt, std::nullopt};
    if (counter_based) {
      s.px.emplace(sector_counter_stream(req.id, k));
    } else {
      s.mt.emplace(sector_stream(req.id, k));
    }
    streams.push_back(std::move(s));
  }
  const finance::GammaSource source =
      [&streams](std::uint64_t, std::size_t sector) -> double {
    SectorStream& s = streams[sector];
    return static_cast<double>(s.sampler.sample(
        [&s] { return s.px ? s.px->next() : s.mt->next(); }));
  };

  finance::McConfig mc;
  mc.num_scenarios = req.num_scenarios;
  mc.seed = poisson_seed(req.id);
  const finance::LossDistribution dist =
      finance::simulate_losses(portfolio, mc, source);

  CreditRiskResult res;
  res.id = req.id;
  res.scenarios = dist.scenarios();
  res.mean = dist.mean();
  res.variance = dist.variance();
  res.var95 = dist.value_at_risk(0.95);
  res.var999 = dist.value_at_risk(0.999);
  res.es999 = dist.expected_shortfall(0.999);
  return res;
}

HistogramResult SamplingServer::compute(const HistogramRequest& req) const {
  SlotSource src;
  if (cfg_.stream_strategy == rng::StreamStrategy::kCounterBased) {
    src.px.emplace(gamma_counter_stream(req.id));
  } else {
    src.mt.emplace(gamma_stream(req.id));
  }
  const workloads::HistogramTrace trace = workloads::make_histogram_trace(
      req.num_updates, req.num_bins, req.hot_fraction, src);

  workloads::HistogramConfig kcfg;
  kcfg.num_bins = req.num_bins;
  kcfg.mode = req.mode;
  workloads::HistogramOutput out =
      workloads::run_histogram(kcfg, trace.addrs, trace.weights);

  HistogramResult res;
  res.id = req.id;
  res.bins = std::move(out.bins);
  res.updates = req.num_updates;
  res.stats = to_stats_result(out.stats);
  return res;
}

SpmvResult SamplingServer::compute(const SpmvRequest& req) const {
  SlotSource src;
  if (cfg_.stream_strategy == rng::StreamStrategy::kCounterBased) {
    src.px.emplace(gamma_counter_stream(req.id));
  } else {
    src.mt.emplace(gamma_stream(req.id));
  }
  const workloads::CsrMatrix matrix = workloads::make_spmv_matrix(
      req.rows, req.rows, req.nnz_per_row_min, req.nnz_per_row_max, src);
  const std::vector<float> x = workloads::make_dense_vector(req.rows, src);

  workloads::SpmvConfig kcfg;
  kcfg.mode = req.mode;
  workloads::SpmvOutput out = workloads::run_spmv(kcfg, matrix, x);

  SpmvResult res;
  res.id = req.id;
  res.y = std::move(out.y);
  res.nnz = matrix.nnz();
  res.stats = to_stats_result(out.stats);
  return res;
}

MatchingResult SamplingServer::compute(const MatchingRequest& req) const {
  SlotSource src;
  if (cfg_.stream_strategy == rng::StreamStrategy::kCounterBased) {
    src.px.emplace(gamma_counter_stream(req.id));
  } else {
    src.mt.emplace(gamma_stream(req.id));
  }
  const workloads::EdgeList graph =
      workloads::make_edge_list(req.num_vertices, req.num_edges, src);

  workloads::MatchingConfig kcfg;
  kcfg.mode = req.mode;
  kcfg.target_pairs = req.target_pairs;
  workloads::MatchingOutput out = workloads::run_matching(kcfg, graph);

  MatchingResult res;
  res.id = req.id;
  res.match = std::move(out.match);
  res.pairs = out.pairs;
  res.edges_examined = out.edges_examined;
  res.stats = to_stats_result(out.stats);
  return res;
}

template <typename Request, typename Result>
bool SamplingServer::serve_from_cache(RequestKind kind, const Request& req,
                                      std::future<Result>* out,
                                      bool* cache_hit) {
  if (!cache_) return false;
  Result cached;
  if (!cache_->lookup(req, &cached)) {
    metrics_.record_cache_miss();
    return false;
  }
  metrics_.record_cache_hit();
  metrics_.record_completed(0.0, kind);  // answered in-line, nothing queued
  std::promise<Result> promise;
  promise.set_value(std::move(cached));
  *out = promise.get_future();
  if (cache_hit) *cache_hit = true;
  return true;
}

template <typename Request, typename Result>
ServeStatus SamplingServer::submit_impl(RequestKind kind, const Request& req,
                                        std::future<Result>* out,
                                        bool* cache_hit) {
  metrics_.record_submitted(kind);
  const ServeStatus valid = validate(req);
  if (valid != ServeStatus::kAdmitted) {
    metrics_.record_rejected(valid);
    return valid;
  }
  if (serve_from_cache(kind, req, out, cache_hit)) {
    return ServeStatus::kAdmitted;
  }

  auto promise = std::make_shared<std::promise<Result>>();
  std::future<Result> future = promise->get_future();
  const auto admitted_at = std::chrono::steady_clock::now();

  Job job;
  job.kind = kind;
  job.request_id = req.id;
  job.admitted_at = admitted_at;
  // The job owns everything it touches (scheduler contract); `this`
  // outlives it because shutdown() drains before the server dies.
  // Metrics are recorded before the promise is fulfilled so a caller
  // that sees the future ready also sees the completion counted.
  job.run = [this, kind, req, promise, admitted_at] {
    try {
      Result result = compute(req);
      if (cache_) cache_->insert(req, result);
      metrics_.record_completed(
          duration_seconds(admitted_at, std::chrono::steady_clock::now()),
          kind);
      promise->set_value(std::move(result));
    } catch (...) {
      metrics_.record_failed(duration_seconds(
          admitted_at, std::chrono::steady_clock::now()));
      promise->set_exception(std::current_exception());
    }
  };

  const ServeStatus status = scheduler_->try_enqueue(std::move(job));
  if (status != ServeStatus::kAdmitted) {
    metrics_.record_rejected(status);
    return status;
  }
  *out = std::move(future);
  return ServeStatus::kAdmitted;
}

ServeStatus SamplingServer::try_submit(const GammaRequest& req,
                                       std::future<GammaResult>* out) {
  return try_submit(req, out, nullptr);
}

ServeStatus SamplingServer::try_submit(const CreditRiskRequest& req,
                                       std::future<CreditRiskResult>* out) {
  return try_submit(req, out, nullptr);
}

ServeStatus SamplingServer::try_submit(const GammaRequest& req,
                                       std::future<GammaResult>* out,
                                       bool* cache_hit) {
  DWI_ASSERT(out != nullptr);
  if (cache_hit) *cache_hit = false;
  return submit_impl<GammaRequest, GammaResult>(RequestKind::kGamma, req, out,
                                                cache_hit);
}

ServeStatus SamplingServer::try_submit(const CreditRiskRequest& req,
                                       std::future<CreditRiskResult>* out,
                                       bool* cache_hit) {
  DWI_ASSERT(out != nullptr);
  if (cache_hit) *cache_hit = false;
  if (resident_) {
    // Resident chain: validated here, admitted straight onto the
    // pipeline's bounded admission pipe (same metrics protocol as the
    // scheduler path; completion is recorded by the aggregator kernel).
    metrics_.record_submitted(RequestKind::kCreditRisk);
    const ServeStatus valid = validate(req);
    if (valid != ServeStatus::kAdmitted) {
      metrics_.record_rejected(valid);
      return valid;
    }
    if (serve_from_cache(RequestKind::kCreditRisk, req, out, cache_hit)) {
      return ServeStatus::kAdmitted;
    }
    const ServeStatus status = resident_->try_enqueue(req, out);
    if (status != ServeStatus::kAdmitted) {
      metrics_.record_rejected(status);
      return status;
    }
    metrics_.record_admitted(resident_->queue_depth());
    return ServeStatus::kAdmitted;
  }
  return submit_impl<CreditRiskRequest, CreditRiskResult>(
      RequestKind::kCreditRisk, req, out, cache_hit);
}

ServeStatus SamplingServer::try_submit(const HistogramRequest& req,
                                       std::future<HistogramResult>* out,
                                       bool* cache_hit) {
  DWI_ASSERT(out != nullptr);
  if (cache_hit) *cache_hit = false;
  return submit_impl<HistogramRequest, HistogramResult>(
      RequestKind::kHistogram, req, out, cache_hit);
}

ServeStatus SamplingServer::try_submit(const SpmvRequest& req,
                                       std::future<SpmvResult>* out,
                                       bool* cache_hit) {
  DWI_ASSERT(out != nullptr);
  if (cache_hit) *cache_hit = false;
  return submit_impl<SpmvRequest, SpmvResult>(RequestKind::kSpmv, req, out,
                                              cache_hit);
}

ServeStatus SamplingServer::try_submit(const MatchingRequest& req,
                                       std::future<MatchingResult>* out,
                                       bool* cache_hit) {
  DWI_ASSERT(out != nullptr);
  if (cache_hit) *cache_hit = false;
  return submit_impl<MatchingRequest, MatchingResult>(RequestKind::kMatching,
                                                      req, out, cache_hit);
}

std::future<GammaResult> SamplingServer::submit(const GammaRequest& req) {
  std::future<GammaResult> f;
  const ServeStatus s = try_submit(req, &f);
  if (s != ServeStatus::kAdmitted) {
    throw RejectedError(
        s, std::string("serve: gamma request rejected: ") + to_string(s));
  }
  return f;
}

std::future<CreditRiskResult> SamplingServer::submit(
    const CreditRiskRequest& req) {
  std::future<CreditRiskResult> f;
  const ServeStatus s = try_submit(req, &f);
  if (s != ServeStatus::kAdmitted) {
    throw RejectedError(
        s, std::string("serve: credit-risk request rejected: ") +
               to_string(s));
  }
  return f;
}

std::future<HistogramResult> SamplingServer::submit(
    const HistogramRequest& req) {
  std::future<HistogramResult> f;
  const ServeStatus s = try_submit(req, &f);
  if (s != ServeStatus::kAdmitted) {
    throw RejectedError(
        s, std::string("serve: histogram request rejected: ") + to_string(s));
  }
  return f;
}

std::future<SpmvResult> SamplingServer::submit(const SpmvRequest& req) {
  std::future<SpmvResult> f;
  const ServeStatus s = try_submit(req, &f);
  if (s != ServeStatus::kAdmitted) {
    throw RejectedError(
        s, std::string("serve: spmv request rejected: ") + to_string(s));
  }
  return f;
}

std::future<MatchingResult> SamplingServer::submit(const MatchingRequest& req) {
  std::future<MatchingResult> f;
  const ServeStatus s = try_submit(req, &f);
  if (s != ServeStatus::kAdmitted) {
    throw RejectedError(
        s, std::string("serve: matching request rejected: ") + to_string(s));
  }
  return f;
}

GammaResult SamplingServer::run(const GammaRequest& req) {
  return submit(req).get();
}

CreditRiskResult SamplingServer::run(const CreditRiskRequest& req) {
  return submit(req).get();
}

HistogramResult SamplingServer::run(const HistogramRequest& req) {
  return submit(req).get();
}

SpmvResult SamplingServer::run(const SpmvRequest& req) {
  return submit(req).get();
}

MatchingResult SamplingServer::run(const MatchingRequest& req) {
  return submit(req).get();
}

}  // namespace dwi::serve
