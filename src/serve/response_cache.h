// Bounded deterministic response cache (per server / per cluster
// shard, behind ServeConfig::response_cache_entries).
//
// The serving determinism contract makes responses cacheable by
// construction: a result is a pure function of (server_seed, request
// content), so two submissions of the SAME request to the SAME server
// must produce byte-identical responses — the second one can be
// answered from memory without touching the scheduler or the modeled
// backend. That is exactly the idempotent-retry shape the cluster's
// stable-hash placement produces: a retried request id hashes to the
// same shard, so a per-shard cache sees every retry of the ids it
// owns.
//
// Correctness over cleverness:
//   - Lookup keys are the FULL request content, not a hash — a hash
//     collision must never serve another request's bytes. (The cluster
//     still routes by stable hash; the cache just refuses to trust
//     one.)
//   - A CreditRisk+ entry retains the request's portfolio shared_ptr.
//     Requests identify the portfolio by pointer (the portfolio is
//     immutable by contract, request.h), and retaining it guarantees
//     the pointed-to object outlives the entry — a freed-and-reused
//     address can never alias a stale hit.
//   - Eviction is FIFO in insertion order: deterministic, independent
//     of wall-clock and of lookup timing, so a run's hit/miss sequence
//     is reproducible.
//
// A hit counts as submitted + completed (the client observed both) but
// NOT admitted — nothing entered the queue — and the cluster router
// skips ShardBackend::account() for it, so modeled device occupancy
// charges real work only. Hit/miss totals surface in MetricsSnapshot.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "serve/request.h"

namespace dwi::serve {

class ResponseCache {
 public:
  /// `max_entries` bounds EACH of the kind-specific maps; 0 makes
  /// every lookup a miss and every insert a no-op (disabled).
  explicit ResponseCache(std::size_t max_entries);

  /// Exact-match lookup. On a hit, *out receives a copy of the cached
  /// result and the call returns true.
  bool lookup(const GammaRequest& req, GammaResult* out);
  bool lookup(const CreditRiskRequest& req, CreditRiskResult* out);
  bool lookup(const HistogramRequest& req, HistogramResult* out);
  bool lookup(const SpmvRequest& req, SpmvResult* out);
  bool lookup(const MatchingRequest& req, MatchingResult* out);

  /// Record a computed response. Overwrites an existing entry for the
  /// same key (idempotent — the determinism contract guarantees the
  /// value is identical); evicts the oldest entry of the same kind
  /// once max_entries is reached.
  void insert(const GammaRequest& req, const GammaResult& result);
  void insert(const CreditRiskRequest& req, const CreditRiskResult& result);
  void insert(const HistogramRequest& req, const HistogramResult& result);
  void insert(const SpmvRequest& req, const SpmvResult& result);
  void insert(const MatchingRequest& req, const MatchingResult& result);

  std::size_t max_entries() const { return max_entries_; }
  std::size_t size() const;  ///< entries currently stored (all kinds)

 private:
  // Full request content, ordered — std::map keeps lookups exact and
  // iteration deterministic without inventing a request hash.
  using GammaKey = std::tuple<RequestId, float, float, std::uint32_t, int>;
  using CreditKey =
      std::tuple<RequestId, const finance::Portfolio*, std::uint64_t>;
  // The zoo requests are generation parameters, so their full content
  // fits a small tuple; SchedulingMode participates because it changes
  // the response's cycle stats even though the payload bytes match.
  using HistogramKey =
      std::tuple<RequestId, std::uint32_t, std::uint32_t, float, int>;
  using SpmvKey = std::tuple<RequestId, std::uint32_t, std::uint32_t,
                             std::uint32_t, int>;
  using MatchingKey = std::tuple<RequestId, std::uint32_t, std::uint32_t,
                                 std::uint32_t, int>;

  static GammaKey key_of(const GammaRequest& req);
  static CreditKey key_of(const CreditRiskRequest& req);
  static HistogramKey key_of(const HistogramRequest& req);
  static SpmvKey key_of(const SpmvRequest& req);
  static MatchingKey key_of(const MatchingRequest& req);

  struct CreditEntry {
    CreditRiskResult result;
    /// Aliasing guard: keeps the keyed portfolio address alive for as
    /// long as the entry may match it.
    std::shared_ptr<const finance::Portfolio> portfolio;
  };

  /// One kind's exact-key store with FIFO eviction in insertion order.
  template <typename Key, typename Entry>
  struct KindStore {
    std::map<Key, Entry> entries;
    std::deque<Key> order;  ///< FIFO insertion order

    bool find(const Key& key, Entry* out) const {
      const auto it = entries.find(key);
      if (it == entries.end()) return false;
      *out = it->second;
      return true;
    }

    void put(const Key& key, Entry entry, std::size_t max_entries) {
      const auto [it, inserted] =
          entries.insert_or_assign(key, std::move(entry));
      (void)it;
      if (!inserted) return;  // overwrite keeps the original FIFO position
      order.push_back(key);
      if (order.size() > max_entries) {
        entries.erase(order.front());
        order.pop_front();
      }
    }
  };

  std::size_t max_entries_;
  mutable std::mutex mutex_;
  KindStore<GammaKey, GammaResult> gamma_;
  KindStore<CreditKey, CreditEntry> credit_;
  KindStore<HistogramKey, HistogramResult> histogram_;
  KindStore<SpmvKey, SpmvResult> spmv_;
  KindStore<MatchingKey, MatchingResult> matching_;
};

}  // namespace dwi::serve
