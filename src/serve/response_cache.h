// Bounded deterministic response cache (per server / per cluster
// shard, behind ServeConfig::response_cache_entries).
//
// The serving determinism contract makes responses cacheable by
// construction: a result is a pure function of (server_seed, request
// content), so two submissions of the SAME request to the SAME server
// must produce byte-identical responses — the second one can be
// answered from memory without touching the scheduler or the modeled
// backend. That is exactly the idempotent-retry shape the cluster's
// stable-hash placement produces: a retried request id hashes to the
// same shard, so a per-shard cache sees every retry of the ids it
// owns.
//
// Correctness over cleverness:
//   - Lookup keys are the FULL request content, not a hash — a hash
//     collision must never serve another request's bytes. (The cluster
//     still routes by stable hash; the cache just refuses to trust
//     one.)
//   - A CreditRisk+ entry retains the request's portfolio shared_ptr.
//     Requests identify the portfolio by pointer (the portfolio is
//     immutable by contract, request.h), and retaining it guarantees
//     the pointed-to object outlives the entry — a freed-and-reused
//     address can never alias a stale hit.
//   - Eviction is FIFO in insertion order: deterministic, independent
//     of wall-clock and of lookup timing, so a run's hit/miss sequence
//     is reproducible.
//
// A hit counts as submitted + completed (the client observed both) but
// NOT admitted — nothing entered the queue — and the cluster router
// skips ShardBackend::account() for it, so modeled device occupancy
// charges real work only. Hit/miss totals surface in MetricsSnapshot.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "serve/request.h"

namespace dwi::serve {

class ResponseCache {
 public:
  /// `max_entries` bounds each of the two kind-specific maps; 0 makes
  /// every lookup a miss and every insert a no-op (disabled).
  explicit ResponseCache(std::size_t max_entries);

  /// Exact-match lookup. On a hit, *out receives a copy of the cached
  /// result and the call returns true.
  bool lookup(const GammaRequest& req, GammaResult* out);
  bool lookup(const CreditRiskRequest& req, CreditRiskResult* out);

  /// Record a computed response. Overwrites an existing entry for the
  /// same key (idempotent — the determinism contract guarantees the
  /// value is identical); evicts the oldest entry of the same kind
  /// once max_entries is reached.
  void insert(const GammaRequest& req, const GammaResult& result);
  void insert(const CreditRiskRequest& req, const CreditRiskResult& result);

  std::size_t max_entries() const { return max_entries_; }
  std::size_t size() const;  ///< entries currently stored (both kinds)

 private:
  // Full request content, ordered — std::map keeps lookups exact and
  // iteration deterministic without inventing a request hash.
  using GammaKey = std::tuple<RequestId, float, float, std::uint32_t, int>;
  using CreditKey =
      std::tuple<RequestId, const finance::Portfolio*, std::uint64_t>;

  static GammaKey key_of(const GammaRequest& req);
  static CreditKey key_of(const CreditRiskRequest& req);

  struct CreditEntry {
    CreditRiskResult result;
    /// Aliasing guard: keeps the keyed portfolio address alive for as
    /// long as the entry may match it.
    std::shared_ptr<const finance::Portfolio> portfolio;
  };

  std::size_t max_entries_;
  mutable std::mutex mutex_;
  std::map<GammaKey, GammaResult> gamma_;
  std::deque<GammaKey> gamma_order_;  ///< FIFO insertion order
  std::map<CreditKey, CreditEntry> credit_;
  std::deque<CreditKey> credit_order_;
};

}  // namespace dwi::serve
