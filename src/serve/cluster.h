// ShardedSamplingServer: the sampling service scaled out across
// simulated devices.
//
// The paper scales by replicating fully decoupled work-items that
// synchronize only at a shared channel; the serving layer scales the
// same way one level up: N independent SamplingServer shards, each
// bound to its own simulated device (minicl::ShardBackend — an
// fpgasim FPGA or a SIMT CPU/GPU/PHI instance it owns exclusively),
// behind one router. The scheduler model follows the
// tasks-across-device-owning-workers shape of "Enabling OpenMP Task
// Parallelism on Multi-FPGAs" (PAPERS.md): placement is a routing
// decision, execution is per-shard, and nothing is shared between
// shards but the router.
//
// Placement policies:
//   * kConsistentHash — a virtual-node hash ring over the request id.
//     Hot/hot-retry ids land on a stable shard (idempotent retries,
//     future result caching); adding or removing a shard remaps only
//     the keys the ring moves (ConsistentHashRing pins this as a
//     property test).
//   * kLeastLoaded — shards ordered by current admission occupancy
//     (SamplingServer::queue_depth()), ties to the lowest index.
//
// Cross-shard stealing (ClusterConfig::steal): when the placed shard's
// bounded queue is full, the router retries the remaining shards in
// placement order instead of rejecting — hot keys overflow onto idle
// shards. Only when EVERY candidate is full does the caller see
// kQueueFull; the router never blocks and never drops an admitted
// request.
//
// Determinism contract (tests/test_cluster.cpp): every shard is
// configured with the SAME server_seed, so a request's response is
// derived from (server_seed, request id) counter/jump-ahead substreams
// no matter which shard computes it. Shard count, routing policy,
// stealing, resident mode and thread count cannot move a single bit of
// any response — placement is invisible in the bytes, which is what
// makes stealing and re-sharding safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "minicl/shard_backend.h"
#include "serve/request.h"
#include "serve/sampling_server.h"

namespace dwi::serve {

/// How the router places a request's primary shard.
enum class RouterPolicy { kConsistentHash, kLeastLoaded };

const char* to_string(RouterPolicy policy);

/// Consistent-hash ring with virtual nodes. Each shard owns
/// `vnodes_per_shard` pseudo-random points on a 64-bit ring; a key
/// belongs to the first vnode clockwise from its hash. Adding or
/// removing a shard only moves the keys whose owning arc changed —
/// the minimal-remap property the cluster relies on for re-sharding.
class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(std::size_t vnodes_per_shard = 64);

  void add_shard(std::size_t shard);
  void remove_shard(std::size_t shard);

  std::size_t num_shards() const { return num_shards_; }
  std::size_t vnodes_per_shard() const { return vnodes_; }
  bool empty() const { return ring_.empty(); }

  /// The shard owning `key` (the request id). Requires a non-empty
  /// ring.
  std::size_t shard_for(std::uint64_t key) const;

  /// Every distinct shard in clockwise ring order starting from the
  /// key's owner — the router's steal/retry order.
  std::vector<std::size_t> preference_order(std::uint64_t key) const;

 private:
  struct VNode {
    std::uint64_t point;
    std::size_t shard;
  };

  std::size_t vnodes_;
  std::size_t num_shards_ = 0;
  std::vector<VNode> ring_;  ///< sorted by point
};

struct ClusterConfig {
  std::size_t num_shards = 4;
  RouterPolicy policy = RouterPolicy::kConsistentHash;
  /// Retry-on-next-shard when the placed shard's queue is full.
  bool steal = true;
  /// Virtual nodes per shard on the consistent-hash ring.
  std::size_t virtual_nodes = 64;

  /// Per-shard server configuration. Every shard gets an identical
  /// copy — one server_seed for the whole cluster is precisely what
  /// makes placement irrelevant to response bytes. queue_capacity,
  /// resident, stream_strategy etc. all apply per shard.
  /// (shard.response_cache_entries turns on a PER-SHARD response
  /// cache; with consistent-hash placement, retries of an id land on
  /// the shard that cached it.)
  ServeConfig shard;

  /// Simulated device kind per shard; cycled when shorter than
  /// num_shards, all-FPGA when empty.
  std::vector<minicl::BackendKind> devices;

  /// Per-shard modeled-capacity plans (normally from
  /// tune::plan_cluster_capacity); cycled like `devices` when shorter
  /// than num_shards. Each entry overrides shard.capacity for its
  /// shard, so a heterogeneous cluster derives DIFFERENT admission
  /// bounds per device kind. Empty leaves shard.capacity (usually
  /// disabled) in force everywhere.
  std::vector<CapacityPlan> shard_capacity;

  /// Mirror admitted requests onto each shard's modeled device
  /// timeline (minicl::ShardBackend::account). Off leaves the device
  /// binding purely nominal.
  bool model_devices = true;
};

/// Per-shard slice of a cluster snapshot.
struct ShardSnapshot {
  std::string device;                 ///< backend name ("fpgasim:0 (...)")
  std::uint64_t routed_primary = 0;   ///< admitted here as first choice
  std::uint64_t stolen_in = 0;        ///< admitted here after a full primary
  double modeled_busy_seconds = 0.0;  ///< device-model busy time
  std::uint64_t modeled_launches = 0;
  std::size_t queue_depth = 0;        ///< admission occupancy at snapshot
  MetricsSnapshot metrics;            ///< the shard server's own counters
};

/// Router-level counters plus every shard's snapshot.
struct ClusterSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t stolen = 0;            ///< admitted on a non-primary shard
  std::uint64_t rejected_full = 0;     ///< every candidate shard was full
  std::uint64_t rejected_invalid = 0;
  std::uint64_t rejected_shutdown = 0;
  std::vector<ShardSnapshot> shards;

  /// Busy time of the most-loaded device — the modeled completion
  /// bound of the work admitted so far (capacity = admitted /
  /// bottleneck seconds).
  double bottleneck_modeled_seconds() const;
};

class ShardedSamplingServer {
 public:
  explicit ShardedSamplingServer(ClusterConfig cfg = {});
  ~ShardedSamplingServer();  ///< shutdown(): drains every shard

  ShardedSamplingServer(const ShardedSamplingServer&) = delete;
  ShardedSamplingServer& operator=(const ShardedSamplingServer&) = delete;

  /// Non-blocking admission through the router; same contract as
  /// SamplingServer::try_submit. kQueueFull means every candidate
  /// shard (one without stealing) was full.
  ServeStatus try_submit(const GammaRequest& req,
                         std::future<GammaResult>* out);
  ServeStatus try_submit(const CreditRiskRequest& req,
                         std::future<CreditRiskResult>* out);
  ServeStatus try_submit(const HistogramRequest& req,
                         std::future<HistogramResult>* out);
  ServeStatus try_submit(const SpmvRequest& req, std::future<SpmvResult>* out);
  ServeStatus try_submit(const MatchingRequest& req,
                         std::future<MatchingResult>* out);

  /// Throwing / synchronous wrappers, as on SamplingServer.
  std::future<GammaResult> submit(const GammaRequest& req);
  std::future<CreditRiskResult> submit(const CreditRiskRequest& req);
  std::future<HistogramResult> submit(const HistogramRequest& req);
  std::future<SpmvResult> submit(const SpmvRequest& req);
  std::future<MatchingResult> submit(const MatchingRequest& req);
  GammaResult run(const GammaRequest& req);
  CreditRiskResult run(const CreditRiskRequest& req);
  HistogramResult run(const HistogramRequest& req);
  SpmvResult run(const SpmvRequest& req);
  MatchingResult run(const MatchingRequest& req);

  /// Stop admitting cluster-wide, then drain every shard. Idempotent.
  void shutdown();

  ClusterSnapshot metrics() const;
  const ClusterConfig& config() const { return cfg_; }
  std::size_t num_shards() const { return shards_.size(); }
  SamplingServer& shard(std::size_t i) { return *shards_[i]->server; }
  const minicl::ShardBackend& backend(std::size_t i) const {
    return *shards_[i]->backend;
  }
  const ConsistentHashRing& ring() const { return ring_; }

  /// The shards the router would try for `id`, in order (index 0 is
  /// the primary; the rest is the steal order). Least-loaded placement
  /// is a point-in-time answer.
  std::vector<std::size_t> placement_order(RequestId id) const;

  /// Offline-reproduction accessors, identical on every shard (same
  /// seed, same geometry) — delegated to shard 0 so cluster responses
  /// can be recomputed without knowing placement.
  rng::MersenneTwister gamma_stream(RequestId id) const;
  rng::MersenneTwister sector_stream(RequestId id, std::size_t k) const;
  rng::Philox gamma_counter_stream(RequestId id) const;
  rng::Philox sector_counter_stream(RequestId id, std::size_t k) const;
  std::uint64_t poisson_seed(RequestId id) const;

 private:
  struct Shard {
    std::unique_ptr<SamplingServer> server;
    std::unique_ptr<minicl::ShardBackend> backend;
    std::atomic<std::uint64_t> routed_primary{0};
    std::atomic<std::uint64_t> stolen_in{0};
  };

  template <typename Request, typename Result>
  ServeStatus route(const Request& req, std::future<Result>* out,
                    std::uint64_t modeled_outputs, float sector_variance);

  ClusterConfig cfg_;
  ConsistentHashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> accepting_{true};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> rejected_invalid_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
};

}  // namespace dwi::serve
