#include "serve/cluster.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/error.h"
#include "finance/portfolio.h"

namespace dwi::serve {

namespace {

/// splitmix64 finalizer — the ring's point hash and key hash. Request
/// ids are often small and sequential; the finalizer spreads them
/// uniformly over the 64-bit ring.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t vnode_point(std::size_t shard, std::size_t vnode) {
  return mix64(mix64(static_cast<std::uint64_t>(shard) +
                     0x632be59bd9b4e019ull) ^
               (static_cast<std::uint64_t>(vnode) * 0x9e3779b97f4a7c15ull));
}

}  // namespace

const char* to_string(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kConsistentHash:
      return "consistent-hash";
    case RouterPolicy::kLeastLoaded:
      return "least-loaded";
  }
  return "unknown";
}

ConsistentHashRing::ConsistentHashRing(std::size_t vnodes_per_shard)
    : vnodes_(vnodes_per_shard) {
  DWI_REQUIRE(vnodes_ >= 1, "ring: need at least one virtual node per shard");
}

void ConsistentHashRing::add_shard(std::size_t shard) {
  for (const VNode& v : ring_) {
    DWI_REQUIRE(v.shard != shard, "ring: shard already present");
  }
  ring_.reserve(ring_.size() + vnodes_);
  for (std::size_t j = 0; j < vnodes_; ++j) {
    ring_.push_back(VNode{vnode_point(shard, j), shard});
  }
  std::sort(ring_.begin(), ring_.end(), [](const VNode& a, const VNode& b) {
    return a.point != b.point ? a.point < b.point : a.shard < b.shard;
  });
  ++num_shards_;
}

void ConsistentHashRing::remove_shard(std::size_t shard) {
  const std::size_t before = ring_.size();
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [shard](const VNode& v) {
                               return v.shard == shard;
                             }),
              ring_.end());
  DWI_REQUIRE(ring_.size() != before, "ring: shard not present");
  --num_shards_;
}

std::size_t ConsistentHashRing::shard_for(std::uint64_t key) const {
  DWI_REQUIRE(!ring_.empty(), "ring: no shards");
  const std::uint64_t h = mix64(key);
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), h,
      [](std::uint64_t value, const VNode& v) { return value < v.point; });
  if (it == ring_.end()) it = ring_.begin();  // wrap past the last point
  return it->shard;
}

std::vector<std::size_t> ConsistentHashRing::preference_order(
    std::uint64_t key) const {
  DWI_REQUIRE(!ring_.empty(), "ring: no shards");
  const std::uint64_t h = mix64(key);
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), h,
      [](std::uint64_t value, const VNode& v) { return value < v.point; });
  if (it == ring_.end()) it = ring_.begin();

  std::vector<std::size_t> order;
  order.reserve(num_shards_);
  const std::size_t start = static_cast<std::size_t>(it - ring_.begin());
  for (std::size_t i = 0; i < ring_.size() && order.size() < num_shards_;
       ++i) {
    const std::size_t shard = ring_[(start + i) % ring_.size()].shard;
    if (std::find(order.begin(), order.end(), shard) == order.end()) {
      order.push_back(shard);
    }
  }
  return order;
}

double ClusterSnapshot::bottleneck_modeled_seconds() const {
  double worst = 0.0;
  for (const ShardSnapshot& s : shards) {
    worst = std::max(worst, s.modeled_busy_seconds);
  }
  return worst;
}

ShardedSamplingServer::ShardedSamplingServer(ClusterConfig cfg)
    : cfg_(std::move(cfg)), ring_(cfg_.virtual_nodes) {
  DWI_REQUIRE(cfg_.num_shards >= 1, "cluster: need at least one shard");
  shards_.reserve(cfg_.num_shards);
  for (std::size_t i = 0; i < cfg_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    // Every shard gets the SAME ServeConfig — one server_seed, one
    // substream geometry — which is the whole determinism story. Only
    // the capacity plan (admission bounds, not response bytes) may
    // vary per shard, cycled like the device list.
    ServeConfig shard_cfg = cfg_.shard;
    if (!cfg_.shard_capacity.empty()) {
      shard_cfg.capacity = cfg_.shard_capacity[i % cfg_.shard_capacity.size()];
    }
    shard->server = std::make_unique<SamplingServer>(shard_cfg);
    const minicl::BackendKind kind =
        cfg_.devices.empty()
            ? minicl::BackendKind::kFpga
            : cfg_.devices[i % cfg_.devices.size()];
    shard->backend = minicl::make_shard_backend(kind,
                                                static_cast<unsigned>(i));
    shards_.push_back(std::move(shard));
    ring_.add_shard(i);
  }
}

ShardedSamplingServer::~ShardedSamplingServer() { shutdown(); }

void ShardedSamplingServer::shutdown() {
  accepting_.store(false, std::memory_order_release);
  for (auto& shard : shards_) shard->server->shutdown();
}

std::vector<std::size_t> ShardedSamplingServer::placement_order(
    RequestId id) const {
  if (cfg_.policy == RouterPolicy::kConsistentHash) {
    return ring_.preference_order(id);
  }
  // Least-loaded: admission occupancy ascending, ties to the lowest
  // shard index (stable sort over an index-ordered base).
  std::vector<std::pair<std::size_t, std::size_t>> load;
  load.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    load.emplace_back(shards_[i]->server->queue_depth(), i);
  }
  std::stable_sort(load.begin(), load.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<std::size_t> order;
  order.reserve(load.size());
  for (const auto& [depth, index] : load) order.push_back(index);
  return order;
}

template <typename Request, typename Result>
ServeStatus ShardedSamplingServer::route(const Request& req,
                                         std::future<Result>* out,
                                         std::uint64_t modeled_outputs,
                                         float sector_variance) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!accepting_.load(std::memory_order_acquire)) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    return ServeStatus::kShuttingDown;
  }
  const std::vector<std::size_t> order = placement_order(req.id);
  // Without stealing only the placed shard is tried; with it, a full
  // primary falls through to the rest of the placement order.
  const std::size_t candidates = cfg_.steal ? order.size() : 1;
  for (std::size_t i = 0; i < candidates; ++i) {
    Shard& shard = *shards_[order[i]];
    bool cache_hit = false;
    const ServeStatus status = shard.server->try_submit(req, out, &cache_hit);
    switch (status) {
      case ServeStatus::kAdmitted:
        admitted_.fetch_add(1, std::memory_order_relaxed);
        if (i == 0) {
          shard.routed_primary.fetch_add(1, std::memory_order_relaxed);
        } else {
          shard.stolen_in.fetch_add(1, std::memory_order_relaxed);
          stolen_.fetch_add(1, std::memory_order_relaxed);
        }
        // A cached answer never reached the device: charging the
        // modeled timeline for it would overstate occupancy and skew
        // capacity planning, so accounting is for computed work only.
        if (cfg_.model_devices && !cache_hit) {
          shard.backend->account(modeled_outputs, sector_variance);
        }
        return status;
      case ServeStatus::kQueueFull:
        continue;  // retry-on-next-shard (or fall out of the loop)
      case ServeStatus::kInvalidRequest:
        rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
        return status;
      case ServeStatus::kShuttingDown:
        rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
        return status;
    }
  }
  rejected_full_.fetch_add(1, std::memory_order_relaxed);
  return ServeStatus::kQueueFull;
}

ServeStatus ShardedSamplingServer::try_submit(const GammaRequest& req,
                                              std::future<GammaResult>* out) {
  DWI_ASSERT(out != nullptr);
  // Model the launch the way CreditRisk+ sizes gammas: shape alpha
  // corresponds to sector variance 1/alpha.
  const float variance = req.alpha > 0.0f ? 1.0f / req.alpha : 1.0f;
  return route<GammaRequest, GammaResult>(req, out, req.count, variance);
}

ServeStatus ShardedSamplingServer::try_submit(
    const CreditRiskRequest& req, std::future<CreditRiskResult>* out) {
  DWI_ASSERT(out != nullptr);
  std::uint64_t outputs = req.num_scenarios;
  float variance = 1.0f;
  if (req.portfolio && req.portfolio->num_sectors() > 0) {
    outputs = req.num_scenarios * req.portfolio->num_sectors();
    double sum = 0.0;
    for (const auto& sector : req.portfolio->sectors()) {
      sum += sector.variance;
    }
    variance = static_cast<float>(
        sum / static_cast<double>(req.portfolio->num_sectors()));
  }
  return route<CreditRiskRequest, CreditRiskResult>(req, out, outputs,
                                                    variance);
}

ServeStatus ShardedSamplingServer::try_submit(
    const HistogramRequest& req, std::future<HistogramResult>* out) {
  DWI_ASSERT(out != nullptr);
  // One modeled output per update; divergence knob maps to variance
  // like gamma shape does (hotter traces stall more on real hardware).
  return route<HistogramRequest, HistogramResult>(
      req, out, req.num_updates, 1.0f + req.hot_fraction);
}

ServeStatus ShardedSamplingServer::try_submit(const SpmvRequest& req,
                                              std::future<SpmvResult>* out) {
  DWI_ASSERT(out != nullptr);
  // Expected nnz: rows × midpoint of the per-row occupancy range.
  const std::uint64_t outputs =
      std::uint64_t{req.rows} *
      ((std::uint64_t{req.nnz_per_row_min} + req.nnz_per_row_max + 1) / 2);
  return route<SpmvRequest, SpmvResult>(req, out, std::max<std::uint64_t>(
                                                      outputs, req.rows),
                                        1.0f);
}

ServeStatus ShardedSamplingServer::try_submit(
    const MatchingRequest& req, std::future<MatchingResult>* out) {
  DWI_ASSERT(out != nullptr);
  return route<MatchingRequest, MatchingResult>(req, out, req.num_edges, 1.0f);
}

std::future<GammaResult> ShardedSamplingServer::submit(
    const GammaRequest& req) {
  std::future<GammaResult> f;
  const ServeStatus s = try_submit(req, &f);
  if (s != ServeStatus::kAdmitted) {
    throw RejectedError(
        s, std::string("cluster: gamma request rejected: ") + to_string(s));
  }
  return f;
}

std::future<CreditRiskResult> ShardedSamplingServer::submit(
    const CreditRiskRequest& req) {
  std::future<CreditRiskResult> f;
  const ServeStatus s = try_submit(req, &f);
  if (s != ServeStatus::kAdmitted) {
    throw RejectedError(
        s, std::string("cluster: credit-risk request rejected: ") +
               to_string(s));
  }
  return f;
}

std::future<HistogramResult> ShardedSamplingServer::submit(
    const HistogramRequest& req) {
  std::future<HistogramResult> f;
  const ServeStatus s = try_submit(req, &f);
  if (s != ServeStatus::kAdmitted) {
    throw RejectedError(
        s, std::string("cluster: histogram request rejected: ") +
               to_string(s));
  }
  return f;
}

std::future<SpmvResult> ShardedSamplingServer::submit(const SpmvRequest& req) {
  std::future<SpmvResult> f;
  const ServeStatus s = try_submit(req, &f);
  if (s != ServeStatus::kAdmitted) {
    throw RejectedError(
        s, std::string("cluster: spmv request rejected: ") + to_string(s));
  }
  return f;
}

std::future<MatchingResult> ShardedSamplingServer::submit(
    const MatchingRequest& req) {
  std::future<MatchingResult> f;
  const ServeStatus s = try_submit(req, &f);
  if (s != ServeStatus::kAdmitted) {
    throw RejectedError(
        s, std::string("cluster: matching request rejected: ") + to_string(s));
  }
  return f;
}

GammaResult ShardedSamplingServer::run(const GammaRequest& req) {
  return submit(req).get();
}

CreditRiskResult ShardedSamplingServer::run(const CreditRiskRequest& req) {
  return submit(req).get();
}

HistogramResult ShardedSamplingServer::run(const HistogramRequest& req) {
  return submit(req).get();
}

SpmvResult ShardedSamplingServer::run(const SpmvRequest& req) {
  return submit(req).get();
}

MatchingResult ShardedSamplingServer::run(const MatchingRequest& req) {
  return submit(req).get();
}

ClusterSnapshot ShardedSamplingServer::metrics() const {
  ClusterSnapshot snap;
  snap.submitted = submitted_.load(std::memory_order_relaxed);
  snap.admitted = admitted_.load(std::memory_order_relaxed);
  snap.stolen = stolen_.load(std::memory_order_relaxed);
  snap.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  snap.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  snap.rejected_shutdown =
      rejected_shutdown_.load(std::memory_order_relaxed);
  snap.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardSnapshot s;
    s.device = shard->backend->name();
    s.routed_primary = shard->routed_primary.load(std::memory_order_relaxed);
    s.stolen_in = shard->stolen_in.load(std::memory_order_relaxed);
    s.modeled_busy_seconds = shard->backend->modeled_busy_seconds();
    s.modeled_launches = shard->backend->modeled_launches();
    s.queue_depth = shard->server->queue_depth();
    s.metrics = shard->server->metrics();
    snap.shards.push_back(std::move(s));
  }
  return snap;
}

rng::MersenneTwister ShardedSamplingServer::gamma_stream(RequestId id) const {
  return shards_[0]->server->gamma_stream(id);
}

rng::MersenneTwister ShardedSamplingServer::sector_stream(
    RequestId id, std::size_t k) const {
  return shards_[0]->server->sector_stream(id, k);
}

rng::Philox ShardedSamplingServer::gamma_counter_stream(RequestId id) const {
  return shards_[0]->server->gamma_counter_stream(id);
}

rng::Philox ShardedSamplingServer::sector_counter_stream(
    RequestId id, std::size_t k) const {
  return shards_[0]->server->sector_counter_stream(id, k);
}

std::uint64_t ShardedSamplingServer::poisson_seed(RequestId id) const {
  return shards_[0]->server->poisson_seed(id);
}

}  // namespace dwi::serve
