// Resident CreditRisk+ serving pipeline: the serve-path fusion of the
// inter-kernel pipe work (hls/pipe.h, finance/pipeline).
//
// The classic path treats every CreditRisk+ request as one kernel
// launch: BatchScheduler dispatches a closure to the exec pool, which
// samples all sector draws and then aggregates them, request by
// request. The resident path instead keeps TWO kernels permanently
// running — a sector-sampler and a conditional-Poisson aggregator —
// connected by bounded pipes:
//
//   admission ─Pipe<Job>→ sampler ─Pipe<Job>──────→ aggregator
//                                 └Pipe<RowBlock>─↗
//
// Requests stream in, scenario rows stream across, results stream out;
// no per-request thread launches, and aggregation of a request's early
// scenarios overlaps sampling of its later ones (and of the next
// request's) — the paper's decoupling, applied between serving stages.
//
// Determinism (pinned by tests/test_serve.cpp): the resident path
// reproduces the classic path BYTE FOR BYTE. It derives the same
// per-sector substreams from (server_seed, id) through the server's
// public stream accessors, consumes them in the same scenario-major,
// sector-minor order, and feeds the same rows in the same order to a
// ScenarioAggregator seeded with the same Poisson seed — so every
// CreditRiskResult field is bit-identical whether `resident` is on or
// off, for every row-block size and pipe depth.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "hls/pipe.h"
#include "serve/metrics.h"
#include "serve/request.h"

namespace dwi::serve {

class ResponseCache;
class SamplingServer;

class ResidentPipeline {
 public:
  /// `server` must outlive the pipeline (it is a member of the server;
  /// the server destroys it first). `cache` may be null; when set, the
  /// aggregator inserts every finished result so idempotent retries of
  /// a served id are answered without re-entering the chain.
  ResidentPipeline(const SamplingServer& server, ServerMetrics* metrics,
                   std::size_t queue_capacity, std::size_t pipe_depth,
                   std::size_t row_block, ResponseCache* cache = nullptr);
  ~ResidentPipeline();

  ResidentPipeline(const ResidentPipeline&) = delete;
  ResidentPipeline& operator=(const ResidentPipeline&) = delete;

  /// Non-blocking admission into the resident chain. The request must
  /// already be validated.
  ServeStatus try_enqueue(const CreditRiskRequest& req,
                          std::future<CreditRiskResult>* out);

  /// Stop admitting, drain every admitted request, join the resident
  /// kernels. Idempotent.
  void shutdown();

  /// Admission-queue occupancy (for the queue high-water metric).
  std::size_t queue_depth() const { return admission_.size(); }

  /// Current blocking-stall counts of the three pipes; merged into the
  /// server's MetricsSnapshot. Monotone over the pipeline's lifetime.
  PipeStallCounters pipe_stalls() const;

 private:
  struct Job {
    CreditRiskRequest req;
    std::shared_ptr<std::promise<CreditRiskResult>> promise;
    std::chrono::steady_clock::time_point admitted_at;
  };
  /// A block of consecutive scenario rows (rows x num_sectors,
  /// scenario-major) for the job most recently handed to the
  /// aggregator. One sampler and FIFO pipes keep blocks in job order.
  struct RowBlock {
    std::size_t rows = 0;
    std::vector<double> data;
  };

  void sampler_loop();
  void aggregator_loop();

  const SamplingServer* server_;
  ServerMetrics* metrics_;
  ResponseCache* cache_;  ///< may be null (caching disabled)
  std::size_t row_block_;

  hls::Pipe<Job> admission_;
  hls::Pipe<Job> handoff_;   ///< sampler → aggregator job metadata
  hls::Pipe<RowBlock> rows_; ///< sampler → aggregator scenario rows

  std::mutex submit_mutex_;  ///< serializes try_enqueue vs close()
  bool accepting_ = true;

  std::thread sampler_;
  std::thread aggregator_;
};

}  // namespace dwi::serve
