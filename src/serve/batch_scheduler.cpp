#include "serve/batch_scheduler.h"

#include <utility>
#include <vector>

#include "common/error.h"
#include "exec/parallel_for.h"

namespace dwi::serve {

static_assert(kNumRequestKinds <= kMaxRequestKinds,
              "serve/metrics.h per-kind counter arrays are too small for "
              "the RequestKind enum — bump kMaxRequestKinds");

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kGamma:
      return "gamma";
    case RequestKind::kCreditRisk:
      return "creditrisk";
    case RequestKind::kHistogram:
      return "histogram";
    case RequestKind::kSpmv:
      return "spmv";
    case RequestKind::kMatching:
      return "matching";
  }
  return "unknown";
}

std::optional<RequestKind> parse_request_kind(std::string_view name) {
  for (std::size_t i = 0; i < kNumRequestKinds; ++i) {
    const auto kind = static_cast<RequestKind>(i);
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

BatchScheduler::BatchScheduler(SchedulerConfig cfg, ServerMetrics* metrics)
    : cfg_(cfg), metrics_(metrics), queue_(cfg.queue_capacity) {
  DWI_REQUIRE(cfg.queue_capacity > 0, "serve: queue capacity must be > 0");
  DWI_REQUIRE(cfg.max_batch > 0, "serve: max_batch must be > 0");
  DWI_ASSERT(metrics_ != nullptr);
  thread_ = std::thread([this] { loop(); });
}

BatchScheduler::~BatchScheduler() { shutdown(); }

ServeStatus BatchScheduler::try_enqueue(Job job) {
  DWI_ASSERT(job.run != nullptr);
  std::size_t depth = 0;
  {
    std::lock_guard lock(mutex_);
    if (!accepting_) return ServeStatus::kShuttingDown;
    if (queue_.full()) return ServeStatus::kQueueFull;
    queue_.push(std::move(job));
    depth = queue_.size();
  }
  metrics_->record_admitted(depth);
  cv_.notify_one();
  return ServeStatus::kAdmitted;
}

void BatchScheduler::shutdown() {
  {
    std::lock_guard lock(mutex_);
    accepting_ = false;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::size_t BatchScheduler::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void BatchScheduler::loop() {
  std::vector<Job> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      const RequestKind kind = queue_.front().kind;
      const std::size_t limit = cfg_.batching ? cfg_.max_batch : 1;
      while (!queue_.empty() && batch.size() < limit &&
             queue_.front().kind == kind) {
        batch.push_back(queue_.pop());
      }
    }
    metrics_->record_batch(batch.size());
    // Jobs are independent (each computes from its own substream), so
    // the batch fans out over the pool; the scheduler thread
    // participates via parallel_for's caller-claims protocol. run()
    // never throws by contract, so no exception can reach here.
    exec::parallel_for(batch.size(),
                       [&](std::size_t i) { batch[i].run(); });
  }
}

}  // namespace dwi::serve
