// Batched admission and dispatch for the sampling service.
//
// The scheduler owns the *only* shared mutable state of the serving
// layer: a bounded FIFO of admitted jobs (a common/ring_buffer.h
// RingBuffer under one mutex — the same structure the FPGA simulator
// uses for its channel queues). Producers (client threads) enqueue
// with explicit backpressure — try_enqueue() returns kQueueFull
// instead of ever blocking the caller — and one scheduler thread
// drains the FIFO, coalescing *runs of same-kind jobs from the front*
// into batches of at most `max_batch`, which it executes on the
// process-wide exec::ThreadPool via parallel_for.
//
// Coalescing never reorders: a batch is a contiguous prefix of the
// FIFO, so admission order is completion-batch order and a slow kind
// cannot starve the other. Batching is a pure scheduling decision —
// each job computes from its own request-derived substream
// (sampling_server.cpp), so results are bit-identical whether a job
// ran alone, in a full batch, or under any thread count.
//
// Shutdown contract: shutdown() stops admission (subsequent
// try_enqueue → kShuttingDown), lets the scheduler drain every
// already-admitted job, then joins. No admitted job is ever dropped —
// every accepted future is eventually fulfilled.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>

#include "common/ring_buffer.h"
#include "serve/metrics.h"
#include "serve/request.h"

namespace dwi::serve {

/// Workload class of a job; only same-kind jobs share a batch (they
/// have comparable per-request cost, which keeps batch tail latency
/// predictable). The fixed std::uint8_t base lets headers that only
/// name the kind (serve/metrics.h) forward-declare it.
enum class RequestKind : std::uint8_t {
  kGamma,       ///< Marsaglia-Tsang gamma batch (the paper's kernel)
  kCreditRisk,  ///< CreditRisk+ loss distribution
  kHistogram,   ///< hazard-aware histogram (src/workloads)
  kSpmv,        ///< CSR SpMV with data-dependent trip counts
  kMatching,    ///< greedy maximal matching with a dynamic loop bound
};

/// Number of RequestKind members; keep in sync with the enum (the
/// exhaustive switches in to_string/parse are the compile-time check).
inline constexpr std::size_t kNumRequestKinds = 5;

/// Stable wire/JSON name of a kind — metrics and bench artifacts key
/// per-kind numbers by this instead of raw enum integers.
const char* to_string(RequestKind kind);

/// Round-trip inverse of to_string(); nullopt on unknown names.
std::optional<RequestKind> parse_request_kind(std::string_view name);

/// One admitted unit of work. `run` executes the request and fulfills
/// its promise; it must not throw (wrap failures into the promise).
struct Job {
  RequestKind kind = RequestKind::kGamma;
  RequestId request_id = 0;
  std::function<void()> run;
  std::chrono::steady_clock::time_point admitted_at{};
};

struct SchedulerConfig {
  std::size_t queue_capacity = 256;  ///< bounded admission depth
  std::size_t max_batch = 16;        ///< jobs coalesced per dispatch
  /// false = dispatch one job per batch (the batching ablation knob;
  /// results are identical either way, only latency/throughput move).
  bool batching = true;
};

class BatchScheduler {
 public:
  /// Starts the scheduler thread. `metrics` must outlive the scheduler.
  BatchScheduler(SchedulerConfig cfg, ServerMetrics* metrics);
  ~BatchScheduler();  ///< shutdown(): drains admitted work, then joins

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Non-blocking admission. kAdmitted means `job.run` will execute
  /// exactly once (possibly during shutdown drain); kQueueFull and
  /// kShuttingDown mean the job was NOT taken.
  ServeStatus try_enqueue(Job job);

  /// Stop admitting, drain every admitted job, join the scheduler
  /// thread. Idempotent; safe to call concurrently with producers.
  void shutdown();

  const SchedulerConfig& config() const { return cfg_; }

  /// Approximate admission-queue occupancy (for observability).
  std::size_t queue_depth() const;

 private:
  void loop();

  SchedulerConfig cfg_;
  ServerMetrics* metrics_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  RingBuffer<Job> queue_;
  bool accepting_ = true;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace dwi::serve
