#include "serve/request.h"

namespace dwi::serve {

const char* to_string(ServeStatus s) {
  switch (s) {
    case ServeStatus::kAdmitted: return "admitted";
    case ServeStatus::kQueueFull: return "queue-full";
    case ServeStatus::kShuttingDown: return "shutting-down";
    case ServeStatus::kInvalidRequest: return "invalid-request";
  }
  return "unknown";
}

}  // namespace dwi::serve
