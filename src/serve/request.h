// Typed requests and responses of the sampling service (src/serve).
//
// The serving layer exposes the paper's two workloads as multi-tenant
// request types: raw Marsaglia-Tsang gamma batches (the work-item
// kernel of Listing 2) and full CreditRisk+ portfolio loss
// distributions (§II-D4, the consumer those gammas exist for). Both
// carry a *client-assigned* request id: the id, together with the
// server seed, fully determines the request's RNG substream, so a
// request's result is a pure function of (server_seed, request
// content) — never of arrival order, batching decisions or thread
// count. See docs/SERVE.md for the determinism contract.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "finance/portfolio.h"
#include "rng/normal.h"
#include "workloads/scheduling.h"

namespace dwi::serve {

/// Client-assigned request identity. Ids select disjoint jump-ahead
/// substream blocks; clients must keep them unique per server if they
/// want statistically independent results (reusing an id deliberately
/// replays the exact same stream — useful for idempotent retries).
using RequestId = std::uint64_t;

/// Admission verdict for a submission attempt.
enum class ServeStatus {
  kAdmitted,        ///< queued; the future will be fulfilled
  kQueueFull,       ///< bounded admission queue is full — back off and retry
  kShuttingDown,    ///< server no longer accepts work
  kInvalidRequest,  ///< request failed validation (limits, parameters)
};

const char* to_string(ServeStatus s);

/// Typed rejection thrown by the throwing submit()/run() wrappers.
/// try_submit() reports the same condition as a return status instead.
class RejectedError : public Error {
 public:
  RejectedError(ServeStatus status, const std::string& what)
      : Error(what), status_(status) {}

  ServeStatus status() const { return status_; }

 private:
  ServeStatus status_;
};

/// A batch of Gamma(alpha, scale) variates.
struct GammaRequest {
  RequestId id = 0;
  float alpha = 1.0f;        ///< shape; must be > 0
  float scale = 1.0f;        ///< scale; must be > 0
  std::uint32_t count = 0;   ///< variates requested; must be in (0, max]
  /// Uniform→normal transform for the nested sampler (§II-D3). The
  /// default is the paper's Config1/2 choice.
  rng::NormalTransform transform = rng::NormalTransform::kMarsagliaBray;
};

struct GammaResult {
  RequestId id = 0;
  std::vector<float> samples;
  std::uint64_t attempts = 0;  ///< main-loop iterations spent
  std::uint64_t accepted = 0;  ///< == samples.size()
};

/// A CreditRisk+ Monte-Carlo loss-distribution job over a shared
/// (immutable) portfolio. One gamma substream per sector plus a
/// derived Poisson seed, all keyed by (server_seed, id).
struct CreditRiskRequest {
  RequestId id = 0;
  std::shared_ptr<const finance::Portfolio> portfolio;
  std::uint64_t num_scenarios = 0;  ///< must be in [2, max]
};

struct CreditRiskResult {
  RequestId id = 0;
  std::uint64_t scenarios = 0;
  double mean = 0.0;
  double variance = 0.0;
  double var95 = 0.0;   ///< VaR at 95%
  double var999 = 0.0;  ///< VaR at 99.9% (the regulatory quantile)
  double es999 = 0.0;   ///< expected shortfall beyond var999
};

// --- divergent-kernel zoo (src/workloads) ---------------------------------
//
// The zoo requests carry GENERATION PARAMETERS, not input data: the
// server derives the update trace / matrix / edge list from the
// request's own (server_seed, id) substream (slot 0 of the request's
// block, the same slot gamma batches use), so the response — values
// AND modeled cycle stats — stays a pure function of (server_seed,
// request content) and joins the cross-shard determinism matrix. The
// SchedulingMode knob moves cycles, never bytes of the payload.

/// Cycle accounting echoed into every zoo response. Deterministic
/// (derived from the trace, not from host timing), so it is part of
/// the response's determinism contract like any other field.
struct WorkloadStatsResult {
  std::uint64_t cycles = 0;
  std::uint64_t initiations = 0;
  std::uint64_t hazard_stall_cycles = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t skipped = 0;
};

/// Hazard-aware histogram (workloads/histogram.h).
struct HistogramRequest {
  RequestId id = 0;
  std::uint32_t num_updates = 0;  ///< must be in (0, max]
  std::uint32_t num_bins = 256;   ///< must be in [1, max]
  /// Fraction of updates hitting bin 0 — the RAW-collision knob.
  float hot_fraction = 0.0f;      ///< must be in [0, 1]
  workloads::SchedulingMode mode = workloads::SchedulingMode::kDynamic;
};

struct HistogramResult {
  RequestId id = 0;
  std::vector<float> bins;
  std::uint64_t updates = 0;
  WorkloadStatsResult stats;
};

/// CSR SpMV with data-dependent row trip counts (workloads/spmv.h);
/// the matrix is square (cols == rows).
struct SpmvRequest {
  RequestId id = 0;
  std::uint32_t rows = 0;          ///< must be in [1, max]
  std::uint32_t nnz_per_row_min = 0;
  std::uint32_t nnz_per_row_max = 8;  ///< >= min, <= max limit
  workloads::SchedulingMode mode = workloads::SchedulingMode::kDynamic;
};

struct SpmvResult {
  RequestId id = 0;
  std::vector<float> y;
  std::uint64_t nnz = 0;
  WorkloadStatsResult stats;
};

/// Greedy maximal matching with a dynamically-modified loop bound
/// (workloads/matching.h).
struct MatchingRequest {
  RequestId id = 0;
  std::uint32_t num_vertices = 0;  ///< must be in [2, max]
  std::uint32_t num_edges = 0;     ///< must be in (0, max]
  /// Pair quota turning the loop bound dynamic (0 = full pass).
  std::uint32_t target_pairs = 0;
  workloads::SchedulingMode mode = workloads::SchedulingMode::kDynamic;
};

struct MatchingResult {
  RequestId id = 0;
  std::vector<std::int32_t> match;
  std::uint32_t pairs = 0;
  std::uint64_t edges_examined = 0;
  WorkloadStatsResult stats;
};

}  // namespace dwi::serve
