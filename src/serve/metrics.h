// Serving metrics: admission counters, queue depth, batch occupancy
// and per-request latency with order-statistic summaries.
//
// The recorder is deliberately simple — one mutex, plain counters, a
// latency sample vector — because the serving hot path (the batch
// compute itself) runs on the exec pool and touches the recorder once
// per request, not per sample. snapshot() is the only reader and
// copies everything out, so a live server can be observed at any time.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "serve/request.h"

namespace dwi::serve {

// Defined in serve/batch_scheduler.h (which includes this header); the
// recorder only passes kinds through, so the forward declaration of the
// fixed-base enum suffices.
enum class RequestKind : std::uint8_t;

/// Capacity of the per-kind counter arrays below. Deliberately a
/// little above kNumRequestKinds (static_asserted in
/// batch_scheduler.cpp) so growing the enum does not ripple through
/// every snapshot consumer; index with static_cast<std::size_t>(kind)
/// and name rows via to_string(RequestKind).
inline constexpr std::size_t kMaxRequestKinds = 8;

/// Order statistics over a latency sample set (nearest-rank
/// percentiles, the convention load-testing tools report).
struct LatencySummary {
  std::size_t count = 0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// Bounded uniform sample of a latency stream (Vitter's Algorithm R
/// with a deterministic splitmix64 replacement draw) plus EXACT
/// count/min/max/sum over everything ever recorded. Keeps the metrics
/// mutex hold time and memory bounded no matter how many requests the
/// server has served: record() is O(1), and a snapshot copies at most
/// `capacity` samples — the old recorder kept every latency forever
/// and copied the whole history under the lock on every snapshot().
/// Percentiles become estimates once count exceeds capacity;
/// count/min/max/mean stay exact.
class LatencyReservoir {
 public:
  explicit LatencyReservoir(std::size_t capacity = kDefaultCapacity);

  void record(double seconds);

  std::uint64_t count() const { return seen_; }
  std::size_t stored() const { return samples_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Summary with exact count/min/max/mean and reservoir-estimated
  /// percentiles. Copies at most capacity() samples.
  LatencySummary summarize() const;

  static constexpr std::size_t kDefaultCapacity = 8192;

 private:
  std::size_t capacity_;
  std::vector<double> samples_;
  std::uint64_t seen_ = 0;
  std::uint64_t rng_state_;
  double min_seconds_ = 0.0;
  double max_seconds_ = 0.0;
  double sum_seconds_ = 0.0;
};

/// Nearest-rank summary of `seconds` (consumed; empty input yields an
/// all-zero summary).
LatencySummary summarize_latencies(std::vector<double> seconds);

/// Blocking-stall counters of the resident pipeline's three pipes
/// (serve/resident_pipeline.h): how many write()/read() calls had to
/// block on a full/empty pipe since the server started. Monotone
/// non-decreasing over a server's lifetime and all-zero when the
/// resident mode is off — the serve-level mirror of the
/// fpga::PipelineSim full/empty stall cycles, used to tune
/// resident_pipe_depth / resident_row_block (docs/PERF.md).
struct PipeStallCounters {
  std::uint64_t admission_write_stalls = 0;
  std::uint64_t admission_read_stalls = 0;
  std::uint64_t handoff_write_stalls = 0;
  std::uint64_t handoff_read_stalls = 0;
  std::uint64_t rows_write_stalls = 0;
  std::uint64_t rows_read_stalls = 0;

  std::uint64_t total() const {
    return admission_write_stalls + admission_read_stalls +
           handoff_write_stalls + handoff_read_stalls + rows_write_stalls +
           rows_read_stalls;
  }
};

/// Point-in-time copy of every metric the server tracks. The latency
/// summary covers *completed* requests, admission→completion;
/// percentiles are reservoir estimates once more requests have
/// finished than LatencyReservoir::kDefaultCapacity (count, min, max
/// and mean remain exact).
struct MetricsSnapshot {
  std::uint64_t submitted = 0;          ///< all submission attempts
  std::uint64_t admitted = 0;
  std::uint64_t rejected_full = 0;      ///< backpressure rejections
  std::uint64_t rejected_invalid = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;             ///< future carries an exception
  /// Response-cache outcomes (serve/response_cache.h). A hit counts as
  /// submitted + completed but never admitted; both stay zero when the
  /// cache is disabled (ServeConfig::response_cache_entries == 0).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Per-RequestKind slices of `submitted` / `completed`, indexed by
  /// static_cast<std::size_t>(kind) and named via to_string(kind) —
  /// the observability the multi-workload zoo needs (which kinds a
  /// shard actually serves). Sums equal the totals above.
  std::array<std::uint64_t, kMaxRequestKinds> submitted_by_kind{};
  std::array<std::uint64_t, kMaxRequestKinds> completed_by_kind{};
  std::size_t queue_high_water = 0;     ///< max observed admission depth
  std::uint64_t batches = 0;            ///< batches dispatched
  std::size_t max_batch_occupancy = 0;
  double mean_batch_occupancy = 0.0;    ///< requests per batch
  LatencySummary latency;
  /// Resident-pipeline pipe stalls; all-zero (and `resident` false)
  /// when the server runs the classic scheduler path only.
  bool resident = false;
  PipeStallCounters resident_pipes;
};

class ServerMetrics {
 public:
  void record_submitted(RequestKind kind);
  void record_rejected(ServeStatus status);
  /// `queue_depth`: admission queue occupancy right after the push.
  void record_admitted(std::size_t queue_depth);
  void record_batch(std::size_t occupancy);
  void record_completed(double latency_seconds, RequestKind kind);
  void record_failed(double latency_seconds);
  /// A cache hit also records submitted + completed (the caller
  /// observed both); this only bumps the hit counter itself.
  void record_cache_hit();
  void record_cache_miss();

  MetricsSnapshot snapshot() const;

  /// Latencies currently held by the reservoir (bounded by
  /// LatencyReservoir::kDefaultCapacity; the regression test pins
  /// this).
  std::size_t latency_samples_stored() const;

 private:
  mutable std::mutex mutex_;
  std::uint64_t submitted_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_full_ = 0;
  std::uint64_t rejected_invalid_ = 0;
  std::uint64_t rejected_shutdown_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::array<std::uint64_t, kMaxRequestKinds> submitted_by_kind_{};
  std::array<std::uint64_t, kMaxRequestKinds> completed_by_kind_{};
  std::size_t queue_high_water_ = 0;
  std::uint64_t batches_ = 0;
  std::size_t max_batch_occupancy_ = 0;
  std::uint64_t batched_requests_ = 0;
  LatencyReservoir latencies_;
};

}  // namespace dwi::serve
