#include "serve/response_cache.h"

namespace dwi::serve {

ResponseCache::ResponseCache(std::size_t max_entries)
    : max_entries_(max_entries) {}

ResponseCache::GammaKey ResponseCache::key_of(const GammaRequest& req) {
  return {req.id, req.alpha, req.scale, req.count,
          static_cast<int>(req.transform)};
}

ResponseCache::CreditKey ResponseCache::key_of(const CreditRiskRequest& req) {
  return {req.id, req.portfolio.get(), req.num_scenarios};
}

bool ResponseCache::lookup(const GammaRequest& req, GammaResult* out) {
  if (max_entries_ == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gamma_.find(key_of(req));
  if (it == gamma_.end()) return false;
  *out = it->second;
  return true;
}

bool ResponseCache::lookup(const CreditRiskRequest& req,
                           CreditRiskResult* out) {
  if (max_entries_ == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = credit_.find(key_of(req));
  if (it == credit_.end()) return false;
  *out = it->second.result;
  return true;
}

void ResponseCache::insert(const GammaRequest& req, const GammaResult& result) {
  if (max_entries_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const GammaKey key = key_of(req);
  const auto [it, inserted] = gamma_.insert_or_assign(key, result);
  (void)it;
  if (!inserted) return;  // overwrite keeps the original FIFO position
  gamma_order_.push_back(key);
  if (gamma_order_.size() > max_entries_) {
    gamma_.erase(gamma_order_.front());
    gamma_order_.pop_front();
  }
}

void ResponseCache::insert(const CreditRiskRequest& req,
                           const CreditRiskResult& result) {
  if (max_entries_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const CreditKey key = key_of(req);
  const auto [it, inserted] =
      credit_.insert_or_assign(key, CreditEntry{result, req.portfolio});
  (void)it;
  if (!inserted) return;
  credit_order_.push_back(key);
  if (credit_order_.size() > max_entries_) {
    credit_.erase(credit_order_.front());
    credit_order_.pop_front();
  }
}

std::size_t ResponseCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gamma_.size() + credit_.size();
}

}  // namespace dwi::serve
