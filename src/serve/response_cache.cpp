#include "serve/response_cache.h"

namespace dwi::serve {

ResponseCache::ResponseCache(std::size_t max_entries)
    : max_entries_(max_entries) {}

ResponseCache::GammaKey ResponseCache::key_of(const GammaRequest& req) {
  return {req.id, req.alpha, req.scale, req.count,
          static_cast<int>(req.transform)};
}

ResponseCache::CreditKey ResponseCache::key_of(const CreditRiskRequest& req) {
  return {req.id, req.portfolio.get(), req.num_scenarios};
}

ResponseCache::HistogramKey ResponseCache::key_of(
    const HistogramRequest& req) {
  return {req.id, req.num_updates, req.num_bins, req.hot_fraction,
          static_cast<int>(req.mode)};
}

ResponseCache::SpmvKey ResponseCache::key_of(const SpmvRequest& req) {
  return {req.id, req.rows, req.nnz_per_row_min, req.nnz_per_row_max,
          static_cast<int>(req.mode)};
}

ResponseCache::MatchingKey ResponseCache::key_of(const MatchingRequest& req) {
  return {req.id, req.num_vertices, req.num_edges, req.target_pairs,
          static_cast<int>(req.mode)};
}

bool ResponseCache::lookup(const GammaRequest& req, GammaResult* out) {
  if (max_entries_ == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return gamma_.find(key_of(req), out);
}

bool ResponseCache::lookup(const CreditRiskRequest& req,
                           CreditRiskResult* out) {
  if (max_entries_ == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  CreditEntry entry;
  if (!credit_.find(key_of(req), &entry)) return false;
  *out = entry.result;
  return true;
}

bool ResponseCache::lookup(const HistogramRequest& req, HistogramResult* out) {
  if (max_entries_ == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return histogram_.find(key_of(req), out);
}

bool ResponseCache::lookup(const SpmvRequest& req, SpmvResult* out) {
  if (max_entries_ == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return spmv_.find(key_of(req), out);
}

bool ResponseCache::lookup(const MatchingRequest& req, MatchingResult* out) {
  if (max_entries_ == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return matching_.find(key_of(req), out);
}

void ResponseCache::insert(const GammaRequest& req, const GammaResult& result) {
  if (max_entries_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  gamma_.put(key_of(req), result, max_entries_);
}

void ResponseCache::insert(const CreditRiskRequest& req,
                           const CreditRiskResult& result) {
  if (max_entries_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  credit_.put(key_of(req), CreditEntry{result, req.portfolio}, max_entries_);
}

void ResponseCache::insert(const HistogramRequest& req,
                           const HistogramResult& result) {
  if (max_entries_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  histogram_.put(key_of(req), result, max_entries_);
}

void ResponseCache::insert(const SpmvRequest& req, const SpmvResult& result) {
  if (max_entries_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  spmv_.put(key_of(req), result, max_entries_);
}

void ResponseCache::insert(const MatchingRequest& req,
                           const MatchingResult& result) {
  if (max_entries_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  matching_.put(key_of(req), result, max_entries_);
}

std::size_t ResponseCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gamma_.entries.size() + credit_.entries.size() +
         histogram_.entries.size() + spmv_.entries.size() +
         matching_.entries.size();
}

}  // namespace dwi::serve
