#include "serve/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace dwi::serve {

LatencySummary summarize_latencies(std::vector<double> seconds) {
  LatencySummary s;
  if (seconds.empty()) return s;
  std::sort(seconds.begin(), seconds.end());
  s.count = seconds.size();
  s.min_seconds = seconds.front();
  s.max_seconds = seconds.back();
  double sum = 0.0;
  for (const double v : seconds) sum += v;
  s.mean_seconds = sum / static_cast<double>(seconds.size());
  const auto rank = [&](double q) {
    // Nearest-rank: the smallest sample with at least q of the mass
    // at or below it.
    const auto n = static_cast<double>(seconds.size());
    const auto idx =
        static_cast<std::size_t>(std::ceil(q * n)) - std::size_t{1};
    return seconds[std::min(idx, seconds.size() - 1)];
  };
  s.p50_seconds = rank(0.50);
  s.p95_seconds = rank(0.95);
  s.p99_seconds = rank(0.99);
  return s;
}

void ServerMetrics::record_submitted() {
  std::lock_guard lock(mutex_);
  ++submitted_;
}

void ServerMetrics::record_rejected(ServeStatus status) {
  std::lock_guard lock(mutex_);
  switch (status) {
    case ServeStatus::kQueueFull: ++rejected_full_; break;
    case ServeStatus::kInvalidRequest: ++rejected_invalid_; break;
    case ServeStatus::kShuttingDown: ++rejected_shutdown_; break;
    case ServeStatus::kAdmitted: DWI_ASSERT(false && "not a rejection");
  }
}

void ServerMetrics::record_admitted(std::size_t queue_depth) {
  std::lock_guard lock(mutex_);
  ++admitted_;
  queue_high_water_ = std::max(queue_high_water_, queue_depth);
}

void ServerMetrics::record_batch(std::size_t occupancy) {
  std::lock_guard lock(mutex_);
  ++batches_;
  batched_requests_ += occupancy;
  max_batch_occupancy_ = std::max(max_batch_occupancy_, occupancy);
}

void ServerMetrics::record_completed(double latency_seconds) {
  std::lock_guard lock(mutex_);
  ++completed_;
  latencies_.push_back(latency_seconds);
}

void ServerMetrics::record_failed(double latency_seconds) {
  std::lock_guard lock(mutex_);
  ++failed_;
  latencies_.push_back(latency_seconds);
}

MetricsSnapshot ServerMetrics::snapshot() const {
  std::vector<double> latencies;
  MetricsSnapshot s;
  {
    std::lock_guard lock(mutex_);
    s.submitted = submitted_;
    s.admitted = admitted_;
    s.rejected_full = rejected_full_;
    s.rejected_invalid = rejected_invalid_;
    s.rejected_shutdown = rejected_shutdown_;
    s.completed = completed_;
    s.failed = failed_;
    s.queue_high_water = queue_high_water_;
    s.batches = batches_;
    s.max_batch_occupancy = max_batch_occupancy_;
    s.mean_batch_occupancy =
        batches_ == 0 ? 0.0
                      : static_cast<double>(batched_requests_) /
                            static_cast<double>(batches_);
    latencies = latencies_;
  }
  s.latency = summarize_latencies(std::move(latencies));
  return s;
}

}  // namespace dwi::serve
