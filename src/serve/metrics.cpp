#include "serve/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "serve/batch_scheduler.h"

namespace dwi::serve {

namespace {

std::size_t kind_index(RequestKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  DWI_ASSERT(i < kMaxRequestKinds);
  return i;
}

}  // namespace

LatencySummary summarize_latencies(std::vector<double> seconds) {
  LatencySummary s;
  if (seconds.empty()) return s;
  std::sort(seconds.begin(), seconds.end());
  s.count = seconds.size();
  s.min_seconds = seconds.front();
  s.max_seconds = seconds.back();
  double sum = 0.0;
  for (const double v : seconds) sum += v;
  s.mean_seconds = sum / static_cast<double>(seconds.size());
  const auto rank = [&](double q) {
    // Nearest-rank: the smallest sample with at least q of the mass
    // at or below it.
    const auto n = static_cast<double>(seconds.size());
    const auto idx =
        static_cast<std::size_t>(std::ceil(q * n)) - std::size_t{1};
    return seconds[std::min(idx, seconds.size() - 1)];
  };
  s.p50_seconds = rank(0.50);
  s.p95_seconds = rank(0.95);
  s.p99_seconds = rank(0.99);
  return s;
}

LatencyReservoir::LatencyReservoir(std::size_t capacity)
    : capacity_(capacity),
      // Fixed seed: reservoir contents are a deterministic function of
      // the record() sequence, so tests and repeated runs agree.
      rng_state_(0x853c49e6748fea9bull) {
  DWI_REQUIRE(capacity_ >= 1, "latency reservoir needs capacity >= 1");
  samples_.reserve(capacity_);
}

void LatencyReservoir::record(double seconds) {
  if (seen_ == 0 || seconds < min_seconds_) min_seconds_ = seconds;
  if (seen_ == 0 || seconds > max_seconds_) max_seconds_ = seconds;
  sum_seconds_ += seconds;
  ++seen_;
  if (samples_.size() < capacity_) {
    samples_.push_back(seconds);
    return;
  }
  // Algorithm R: keep the new sample with probability capacity/seen by
  // drawing a uniform slot in [0, seen); splitmix64 output drives the
  // draw.
  rng_state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  const std::uint64_t slot = z % seen_;
  if (slot < capacity_) samples_[slot] = seconds;
}

LatencySummary LatencyReservoir::summarize() const {
  LatencySummary s = summarize_latencies(samples_);
  // Overwrite the whole-stream statistics with their exact values;
  // only the percentiles stay reservoir-estimated.
  s.count = seen_;
  if (seen_ > 0) {
    s.min_seconds = min_seconds_;
    s.max_seconds = max_seconds_;
    s.mean_seconds = sum_seconds_ / static_cast<double>(seen_);
  }
  return s;
}

void ServerMetrics::record_submitted(RequestKind kind) {
  std::lock_guard lock(mutex_);
  ++submitted_;
  ++submitted_by_kind_[kind_index(kind)];
}

void ServerMetrics::record_rejected(ServeStatus status) {
  std::lock_guard lock(mutex_);
  switch (status) {
    case ServeStatus::kQueueFull: ++rejected_full_; break;
    case ServeStatus::kInvalidRequest: ++rejected_invalid_; break;
    case ServeStatus::kShuttingDown: ++rejected_shutdown_; break;
    case ServeStatus::kAdmitted: DWI_ASSERT(false && "not a rejection");
  }
}

void ServerMetrics::record_admitted(std::size_t queue_depth) {
  std::lock_guard lock(mutex_);
  ++admitted_;
  queue_high_water_ = std::max(queue_high_water_, queue_depth);
}

void ServerMetrics::record_batch(std::size_t occupancy) {
  std::lock_guard lock(mutex_);
  ++batches_;
  batched_requests_ += occupancy;
  max_batch_occupancy_ = std::max(max_batch_occupancy_, occupancy);
}

void ServerMetrics::record_completed(double latency_seconds,
                                     RequestKind kind) {
  std::lock_guard lock(mutex_);
  ++completed_;
  ++completed_by_kind_[kind_index(kind)];
  latencies_.record(latency_seconds);
}

void ServerMetrics::record_failed(double latency_seconds) {
  std::lock_guard lock(mutex_);
  ++failed_;
  latencies_.record(latency_seconds);
}

void ServerMetrics::record_cache_hit() {
  std::lock_guard lock(mutex_);
  ++cache_hits_;
}

void ServerMetrics::record_cache_miss() {
  std::lock_guard lock(mutex_);
  ++cache_misses_;
}

std::size_t ServerMetrics::latency_samples_stored() const {
  std::lock_guard lock(mutex_);
  return latencies_.stored();
}

MetricsSnapshot ServerMetrics::snapshot() const {
  // The reservoir copy under the lock is bounded by its capacity; the
  // O(n log n) percentile sort happens outside the critical section.
  LatencyReservoir latencies;
  MetricsSnapshot s;
  {
    std::lock_guard lock(mutex_);
    s.submitted = submitted_;
    s.admitted = admitted_;
    s.rejected_full = rejected_full_;
    s.rejected_invalid = rejected_invalid_;
    s.rejected_shutdown = rejected_shutdown_;
    s.completed = completed_;
    s.failed = failed_;
    s.cache_hits = cache_hits_;
    s.cache_misses = cache_misses_;
    s.submitted_by_kind = submitted_by_kind_;
    s.completed_by_kind = completed_by_kind_;
    s.queue_high_water = queue_high_water_;
    s.batches = batches_;
    s.max_batch_occupancy = max_batch_occupancy_;
    s.mean_batch_occupancy =
        batches_ == 0 ? 0.0
                      : static_cast<double>(batched_requests_) /
                            static_cast<double>(batches_);
    latencies = latencies_;
  }
  s.latency = latencies.summarize();
  return s;
}

}  // namespace dwi::serve
