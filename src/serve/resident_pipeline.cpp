#include "serve/resident_pipeline.h"

#include <optional>
#include <utility>

#include "common/error.h"
#include "finance/creditrisk_plus.h"
#include "rng/gamma.h"
#include "rng/mersenne_twister.h"
#include "rng/philox.h"
#include "serve/metrics.h"
#include "serve/response_cache.h"
#include "serve/sampling_server.h"

namespace dwi::serve {

namespace {

double duration_seconds(std::chrono::steady_clock::time_point from,
                        std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

ResidentPipeline::ResidentPipeline(const SamplingServer& server,
                                   ServerMetrics* metrics,
                                   std::size_t queue_capacity,
                                   std::size_t pipe_depth,
                                   std::size_t row_block,
                                   ResponseCache* cache)
    : server_(&server),
      metrics_(metrics),
      cache_(cache),
      row_block_(row_block),
      admission_(queue_capacity, "resident.admission"),
      handoff_(pipe_depth, "resident.handoff"),
      rows_(pipe_depth, "resident.rows") {
  DWI_REQUIRE(row_block_ >= 1, "resident pipeline: row block must be >= 1");
  sampler_ = std::thread([this] { sampler_loop(); });
  aggregator_ = std::thread([this] { aggregator_loop(); });
}

ResidentPipeline::~ResidentPipeline() { shutdown(); }

void ResidentPipeline::shutdown() {
  {
    std::lock_guard lock(submit_mutex_);
    if (!accepting_) return;
    accepting_ = false;
    admission_.close();
  }
  sampler_.join();
  aggregator_.join();
}

PipeStallCounters ResidentPipeline::pipe_stalls() const {
  PipeStallCounters s;
  s.admission_write_stalls = admission_.write_stalls();
  s.admission_read_stalls = admission_.read_stalls();
  s.handoff_write_stalls = handoff_.write_stalls();
  s.handoff_read_stalls = handoff_.read_stalls();
  s.rows_write_stalls = rows_.write_stalls();
  s.rows_read_stalls = rows_.read_stalls();
  return s;
}

ServeStatus ResidentPipeline::try_enqueue(const CreditRiskRequest& req,
                                          std::future<CreditRiskResult>* out) {
  Job job;
  job.req = req;
  job.promise = std::make_shared<std::promise<CreditRiskResult>>();
  job.admitted_at = std::chrono::steady_clock::now();
  std::future<CreditRiskResult> future = job.promise->get_future();
  {
    std::lock_guard lock(submit_mutex_);
    if (!accepting_) return ServeStatus::kShuttingDown;
    if (!admission_.try_write(job)) return ServeStatus::kQueueFull;
  }
  *out = std::move(future);
  return ServeStatus::kAdmitted;
}

void ResidentPipeline::sampler_loop() {
  const bool counter_based = server_->config().stream_strategy ==
                             rng::StreamStrategy::kCounterBased;
  Job job;
  while (admission_.read(&job)) {
    // Hand the job forward first so the aggregator can start consuming
    // rows while this kernel is still producing them.
    handoff_.write(job);

    const finance::Portfolio& portfolio = *job.req.portfolio;
    const std::size_t K = portfolio.num_sectors();
    // Same streams, same construction order as the classic
    // SamplingServer::compute path — this is what makes the two paths
    // byte-identical.
    struct SectorStream {
      rng::GammaSampler sampler;
      std::optional<rng::MersenneTwister> mt;
      std::optional<rng::Philox> px;
    };
    std::vector<SectorStream> streams;
    streams.reserve(K);
    for (std::size_t k = 0; k < K; ++k) {
      SectorStream s{
          rng::GammaSampler(
              rng::GammaConstants::from_sector_variance(static_cast<float>(
                  portfolio.sectors()[k].variance)),
              rng::NormalTransform::kMarsagliaBray),
          std::nullopt, std::nullopt};
      if (counter_based) {
        s.px.emplace(server_->sector_counter_stream(job.req.id, k));
      } else {
        s.mt.emplace(server_->sector_stream(job.req.id, k));
      }
      streams.push_back(std::move(s));
    }

    RowBlock block;
    block.data.reserve(row_block_ * K);
    for (std::uint64_t s = 0; s < job.req.num_scenarios; ++s) {
      for (std::size_t k = 0; k < K; ++k) {
        SectorStream& st = streams[k];
        block.data.push_back(static_cast<double>(st.sampler.sample(
            [&st] { return st.px ? st.px->next() : st.mt->next(); })));
      }
      if (++block.rows == row_block_) {
        rows_.write(std::move(block));
        block = RowBlock{};
        block.data.reserve(row_block_ * K);
      }
    }
    if (block.rows > 0) rows_.write(std::move(block));
  }
  handoff_.close();
  rows_.close();
}

void ResidentPipeline::aggregator_loop() {
  Job job;
  while (handoff_.read(&job)) {
    const auto fail = [&](std::exception_ptr e) {
      metrics_->record_failed(duration_seconds(
          job.admitted_at, std::chrono::steady_clock::now()));
      job.promise->set_exception(std::move(e));
    };
    try {
      const finance::Portfolio& portfolio = *job.req.portfolio;
      const std::size_t K = portfolio.num_sectors();
      finance::ScenarioAggregator agg(portfolio,
                                      server_->poisson_seed(job.req.id));
      std::uint64_t consumed = 0;
      RowBlock block;
      while (consumed < job.req.num_scenarios) {
        const bool ok = rows_.read(&block);
        DWI_REQUIRE(ok, "resident pipeline: row stream ended early");
        for (std::size_t r = 0; r < block.rows; ++r) {
          agg.consume_row(block.data.data() + r * K);
        }
        consumed += block.rows;
      }
      DWI_ASSERT(consumed == job.req.num_scenarios);

      const finance::LossDistribution dist = std::move(agg).finish();
      CreditRiskResult res;
      res.id = job.req.id;
      res.scenarios = dist.scenarios();
      res.mean = dist.mean();
      res.variance = dist.variance();
      res.var95 = dist.value_at_risk(0.95);
      res.var999 = dist.value_at_risk(0.999);
      res.es999 = dist.expected_shortfall(0.999);
      if (cache_) cache_->insert(job.req, res);
      metrics_->record_completed(
          duration_seconds(job.admitted_at, std::chrono::steady_clock::now()),
          RequestKind::kCreditRisk);
      job.promise->set_value(res);
    } catch (...) {
      fail(std::current_exception());
    }
  }
}

}  // namespace dwi::serve
