// SamplingServer: sampling-as-a-service over the repo's deterministic
// parallel machinery.
//
// The ROADMAP's north star is a service shape — many tenants, heavy
// traffic — and the paper's core asset (fully decoupled work-items
// that synchronize only at a shared channel) is exactly what a
// multi-tenant sampling backend needs: every request is an independent
// work-item. This server is the request/response layer every future
// scaling PR (sharding, multi-backend dispatch, result caching) plugs
// into.
//
// Pipeline: submit() validates and admits into the BatchScheduler's
// bounded FIFO (reject-with-typed-error on overload — the caller is
// never blocked indefinitely); the scheduler coalesces same-kind runs
// into batches and fans them out over the process-wide exec pool; each
// request computes on RNG substreams derived from
// (server_seed, request_id) via the GF(2) jump-ahead
// rng::SubstreamSplitter.
//
// Determinism contract (pinned by tests/test_serve.cpp): a request's
// result is a pure function of the server seed and the request itself.
// Request id r owns substream indices
//   [r · substreams_per_request, (r+1) · substreams_per_request)
// of the master MT(521) sequence — gamma requests use slot 0, a
// CreditRisk+ request uses slot 1+k for sector k plus a Poisson seed
// mixed from (server_seed, id). Arrival order, batch boundaries,
// DWI_THREADS, and batching on/off cannot move a single bit of any
// response.
#pragma once

#include <cstdint>
#include <future>
#include <memory>

#include "rng/jump.h"
#include "rng/mersenne_twister.h"
#include "rng/philox.h"
#include "rng/stream_strategy.h"
#include "serve/batch_scheduler.h"
#include "serve/capacity.h"
#include "serve/metrics.h"
#include "serve/request.h"
#include "serve/resident_pipeline.h"
#include "serve/response_cache.h"

namespace dwi::serve {

struct ServeConfig {
  /// Master seed of the substream splitter; the whole service's output
  /// is a deterministic function of this and the request stream.
  std::uint32_t server_seed = 1;

  std::size_t queue_capacity = 256;
  std::size_t max_batch = 16;
  bool batching = true;

  /// Per-request limits (violations reject with kInvalidRequest).
  std::uint32_t max_gamma_count = 1u << 20;
  std::uint64_t max_scenarios = 1u << 20;
  /// Divergent-kernel zoo limits (src/workloads). Sized so the largest
  /// request's uniform consumption (2 draws per update/edge, 1+2·nnz
  /// per row plus the dense vector) stays far below substream_stride.
  std::uint32_t max_histogram_updates = 1u << 20;
  std::uint32_t max_histogram_bins = 1u << 16;
  std::uint32_t max_spmv_rows = 1u << 12;
  std::uint32_t max_spmv_nnz_per_row = 64;
  std::uint32_t max_matching_vertices = 1u << 16;
  std::uint32_t max_matching_edges = 1u << 20;

  /// Substream indices reserved per request id: slot 0 for gamma, slots
  /// 1..substreams_per_request-1 for CreditRisk+ sectors (so a
  /// portfolio may have at most substreams_per_request - 1 sectors).
  std::uint64_t substreams_per_request = 16;

  /// Master-sequence outputs reserved per substream. Must cover the
  /// worst-case uniform consumption of one request slot; the default
  /// gives max_gamma_count samples a 64-uniform budget each (the
  /// Marsaglia-Tsang expectation is ~4–6).
  std::uint64_t substream_stride = 1ull << 26;

  /// Splitter geometry. Jump-ahead needs a small-period member of the
  /// MT family (rng/jump.h) — the paper's MT(521) by default.
  rng::MtParams mt = rng::mt521_params();

  /// How request substreams are derived from (server_seed, id):
  ///   kJumpAhead (default) — GF(2) offsets into one master MT(521)
  ///     sequence; derivation costs popcount(index) matrix-vector
  ///     applies against the splitter's cached squaring chain.
  ///   kCounterBased — the same index space over one master Philox
  ///     counter sequence; derivation is a counter write, O(1) with
  ///     zero shared state, and any position of a served request's
  ///     uniform tape can be seek()ed for cheap recomputation.
  /// The two strategies sample different (equally valid) stream
  /// families, so switching changes response VALUES; within either
  /// strategy the determinism contract is identical.
  /// kDistinctSeeds is not accepted: a serving layer must make
  /// cross-request stream overlap impossible, not merely improbable.
  rng::StreamStrategy stream_strategy = rng::StreamStrategy::kJumpAhead;

  /// Resident CreditRisk+ pipeline (serve/resident_pipeline.h): route
  /// CreditRisk+ requests to two permanently resident kernels
  /// (sampler → aggregator over hls::Pipe) instead of per-request
  /// dispatch through the BatchScheduler. Responses are byte-identical
  /// either way (the resident path derives the same substreams and
  /// consumes them in the same order); what changes is execution shape
  /// — no per-request launches, and aggregation overlaps sampling.
  /// Gamma requests always use the classic scheduler. Default off so
  /// the classic path's scheduling metrics and baselines are
  /// undisturbed.
  bool resident = false;
  /// Scenario rows per block on the resident sampler→aggregator pipe.
  std::size_t resident_row_block = 64;
  /// Depth of the resident handoff and row pipes.
  std::size_t resident_pipe_depth = 8;

  /// Modeled-capacity admission (serve/capacity.h). When enabled
  /// (modeled_rps > 0, normally filled in by tune::apply_capacity),
  /// the constructor REPLACES queue_capacity and max_batch above with
  /// bounds derived from the plan; config() reflects the effective
  /// values. Disabled plans leave the explicit constants untouched.
  CapacityPlan capacity;

  /// Bounded deterministic response cache
  /// (serve/response_cache.h): entries retained per request kind.
  /// 0 (default) disables caching entirely — no lookup, no counters —
  /// so existing baselines and determinism matrices are unaffected.
  std::size_t response_cache_entries = 0;
};

class SamplingServer {
 public:
  explicit SamplingServer(ServeConfig cfg = {});
  ~SamplingServer();  ///< shutdown(): drains in-flight work

  SamplingServer(const SamplingServer&) = delete;
  SamplingServer& operator=(const SamplingServer&) = delete;

  /// Non-blocking admission: on kAdmitted, *out receives the future;
  /// any other status leaves *out untouched. Never blocks, never
  /// throws on overload.
  ServeStatus try_submit(const GammaRequest& req,
                         std::future<GammaResult>* out);
  ServeStatus try_submit(const CreditRiskRequest& req,
                         std::future<CreditRiskResult>* out);
  /// As above, additionally reporting whether the response came from
  /// the response cache (the future is then already ready and nothing
  /// entered the admission queue). `cache_hit` may be null. The
  /// cluster router uses this to skip modeled-device accounting for
  /// cached answers.
  ServeStatus try_submit(const GammaRequest& req,
                         std::future<GammaResult>* out, bool* cache_hit);
  ServeStatus try_submit(const CreditRiskRequest& req,
                         std::future<CreditRiskResult>* out,
                         bool* cache_hit);

  /// Divergent-kernel zoo admission (src/workloads): identical
  /// contract. The input trace is derived from the request's slot-0
  /// substream — the one gamma_stream()/gamma_counter_stream() expose —
  /// so responses (payload and cycle stats) are pure functions of
  /// (server_seed, request content).
  ServeStatus try_submit(const HistogramRequest& req,
                         std::future<HistogramResult>* out,
                         bool* cache_hit = nullptr);
  ServeStatus try_submit(const SpmvRequest& req,
                         std::future<SpmvResult>* out,
                         bool* cache_hit = nullptr);
  ServeStatus try_submit(const MatchingRequest& req,
                         std::future<MatchingResult>* out,
                         bool* cache_hit = nullptr);

  /// Throwing wrappers: return the future or throw RejectedError.
  std::future<GammaResult> submit(const GammaRequest& req);
  std::future<CreditRiskResult> submit(const CreditRiskRequest& req);
  std::future<HistogramResult> submit(const HistogramRequest& req);
  std::future<SpmvResult> submit(const SpmvRequest& req);
  std::future<MatchingResult> submit(const MatchingRequest& req);

  /// Synchronous convenience: submit and wait.
  GammaResult run(const GammaRequest& req);
  CreditRiskResult run(const CreditRiskRequest& req);
  HistogramResult run(const HistogramRequest& req);
  SpmvResult run(const SpmvRequest& req);
  MatchingResult run(const MatchingRequest& req);

  /// Stop admitting, drain every admitted request, fulfill every
  /// accepted future. Idempotent.
  void shutdown();

  /// Snapshot of the server's counters and latency summary; in
  /// resident mode the snapshot also carries the pipeline's pipe
  /// stall counters (zero otherwise).
  MetricsSnapshot metrics() const;
  const ServeConfig& config() const { return cfg_; }

  /// Current admission occupancy (scheduler FIFO plus, in resident
  /// mode, the resident admission pipe). The cluster router's
  /// least-loaded placement reads this.
  std::size_t queue_depth() const;

  /// The substream a gamma request with this id draws from (exposed so
  /// tests and offline pipelines can reproduce server results without
  /// a server). Only meaningful under kJumpAhead.
  rng::MersenneTwister gamma_stream(RequestId id) const;
  /// The substream sector `k` of CreditRisk+ request `id` draws from.
  rng::MersenneTwister sector_stream(RequestId id, std::size_t k) const;
  /// kCounterBased counterparts: the Philox stream positioned at the
  /// request's slot, derived in O(1). skip() from its start reaches
  /// any position of the request's uniform tape in O(1), so offline
  /// recomputation of a served response (or any suffix of one) never
  /// replays the master sequence.
  rng::Philox gamma_counter_stream(RequestId id) const;
  rng::Philox sector_counter_stream(RequestId id, std::size_t k) const;
  /// The Poisson seed CreditRisk+ request `id` conditions on.
  std::uint64_t poisson_seed(RequestId id) const;

 private:
  ServeStatus validate(const GammaRequest& req) const;
  ServeStatus validate(const CreditRiskRequest& req) const;
  ServeStatus validate(const HistogramRequest& req) const;
  ServeStatus validate(const SpmvRequest& req) const;
  ServeStatus validate(const MatchingRequest& req) const;
  GammaResult compute(const GammaRequest& req) const;
  CreditRiskResult compute(const CreditRiskRequest& req) const;
  HistogramResult compute(const HistogramRequest& req) const;
  SpmvResult compute(const SpmvRequest& req) const;
  MatchingResult compute(const MatchingRequest& req) const;

  template <typename Request, typename Result>
  ServeStatus submit_impl(RequestKind kind, const Request& req,
                          std::future<Result>* out, bool* cache_hit);

  /// Serve `req` from the cache if present: fulfills *out with an
  /// already-ready future, records submitted/hit/completed (never
  /// admitted), sets *cache_hit. Returns false (recording a miss) when
  /// the cache is enabled but cold; no-op false when disabled.
  template <typename Request, typename Result>
  bool serve_from_cache(RequestKind kind, const Request& req,
                        std::future<Result>* out, bool* cache_hit);

  ServeConfig cfg_;
  rng::SubstreamSplitter splitter_;      ///< kJumpAhead derivation
  rng::CounterSubstreams counter_streams_;  ///< kCounterBased derivation
  ServerMetrics metrics_;
  /// Response cache (cfg_.response_cache_entries; null when disabled).
  /// Declared before the scheduler/resident chain so in-flight jobs
  /// can still insert while those drain on shutdown.
  std::unique_ptr<ResponseCache> cache_;
  std::unique_ptr<BatchScheduler> scheduler_;
  /// Resident CreditRisk+ chain (cfg_.resident); declared after the
  /// scheduler so it drains first on destruction.
  std::unique_ptr<ResidentPipeline> resident_;
};

}  // namespace dwi::serve
