// Modeled-capacity admission: the plan the resource-aware capacity
// planner (src/tune/capacity_planner.h) hands a server or a cluster
// shard, and the rules that turn it into admission bounds.
//
// The serving layer's queue_capacity / max_batch defaults are
// hand-picked constants; a shard bound to a slow modeled device with a
// 256-deep queue buffers minutes of work before backpressure fires,
// while a fast device behind a short queue rejects load it could
// absorb. A CapacityPlan replaces the constants with quantities derived
// from the shard's *modeled* throughput on its device for the expected
// workload mix:
//
//   queue_capacity = clamp(ceil(modeled_rps * target_queue_seconds))
//   max_batch      = clamp(ceil(modeled_rps * batch_window_seconds))
//
// i.e. the queue bounds the time-to-drain, not an arbitrary request
// count, and the batch window bounds how much latency coalescing may
// add. Both derivations floor at 1 (a shard must always be able to
// admit and dispatch) and never exceed kMaxDerivedQueue.
//
// A plan with modeled_rps == 0 means "no plan": the server falls back
// to the explicit ServeConfig constants unchanged, which keeps every
// pre-tuner configuration bit-for-bit identical in behavior.
//
// Determinism: the plan only resizes the admission FIFO and the batch
// window — scheduling shape, never response bytes. The cluster
// determinism matrix runs with plans on and off and pins equality
// (tests/test_cluster.cpp).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>

namespace dwi::serve {

struct CapacityPlan {
  /// Modeled sustainable requests/second of the (device, workload mix)
  /// pair, from tune::plan_capacity. 0 disables the plan (fallback to
  /// the ServeConfig constants).
  double modeled_rps = 0.0;
  /// Worst-case queue drain time the admission bound should allow.
  double target_queue_seconds = 0.05;
  /// Latency the batch coalescing window may add.
  double batch_window_seconds = 0.002;
  /// Device the plan was computed for (informational, e.g. "fpgasim").
  std::string device;

  bool enabled() const { return modeled_rps > 0.0; }
};

/// Upper clamp of any derived bound: far above every sane plan, small
/// enough that a wild modeled_rps cannot allocate an absurd FIFO.
inline constexpr std::size_t kMaxDerivedQueue = 1u << 16;

/// Admission-queue bound derived from the plan; `fallback` when the
/// plan is disabled. Never below 1.
inline std::size_t derived_queue_capacity(const CapacityPlan& plan,
                                          std::size_t fallback) {
  if (!plan.enabled()) return std::max<std::size_t>(1, fallback);
  const double raw = std::ceil(plan.modeled_rps * plan.target_queue_seconds);
  const double clamped =
      std::clamp(raw, 1.0, static_cast<double>(kMaxDerivedQueue));
  return static_cast<std::size_t>(clamped);
}

/// Batch-window bound derived from the plan; `fallback` when disabled.
/// Never below 1, never above the (already derived) queue capacity.
inline std::size_t derived_max_batch(const CapacityPlan& plan,
                                     std::size_t fallback,
                                     std::size_t queue_capacity) {
  const std::size_t cap = std::max<std::size_t>(1, queue_capacity);
  if (!plan.enabled()) {
    return std::clamp<std::size_t>(fallback, 1, cap);
  }
  const double raw = std::ceil(plan.modeled_rps * plan.batch_window_seconds);
  const double clamped = std::clamp(raw, 1.0, static_cast<double>(cap));
  return static_cast<std::size_t>(clamped);
}

}  // namespace dwi::serve
