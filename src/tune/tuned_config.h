// TunedConfig: the serializable winner the autotuner emits per
// (workload, device) pair — every knob the search space covers, the
// modeled objective it achieved, and the provenance (seed, feasibility)
// needed to reproduce or audit the search.
//
// The wire format is deliberately boring: one `key=value` per line,
// first line a format tag. It round-trips exactly (tests/test_tune.cpp)
// and diffs cleanly when a committed tuned config changes in review.
#pragma once

#include <cstdint>
#include <string>

namespace dwi::tune {

struct TunedConfig {
  /// Workload the config was tuned for ("table3:Config1", "fig5:cpu",
  /// "serve:classic", ...).
  std::string workload;
  /// Device the objective was modeled on ("adm-pcie-7v3",
  /// "cpu-haswell", "host", ...).
  std::string device;
  /// Search seed the winner was found under (same seed → same config).
  std::uint64_t seed = 0;

  // --- FPGA design point (table3 workloads) ---------------------------
  unsigned work_items = 0;
  std::size_t stream_depth = 64;
  unsigned burst_beats = 16;
  bool cycle_skipping = true;
  /// Host-side SIMD block width of the GammaWorkItem tape.
  std::uint32_t batch_iterations = 2048;

  // --- SIMT NDRange (fig5 workloads) ----------------------------------
  std::uint64_t global_size = 0;
  unsigned local_size = 0;

  // --- serving (serve workloads) --------------------------------------
  unsigned threads = 1;
  std::size_t max_batch = 16;       ///< serve batch coalescing window
  std::size_t queue_capacity = 256; ///< admission-queue bound
  std::size_t pipe_depth = 8;       ///< resident pipes (resident mode)
  /// "jump-ahead" / "counter-based"; empty when not a serve workload.
  std::string stream_strategy;

  /// Objective value of this point: modeled throughput in units/second
  /// (samples/s for table3, runs/s for fig5, requests/s for serve).
  double modeled_throughput = 0.0;
  /// Within the modeled device's resource budget (always true for
  /// workloads without a resource model).
  bool feasible = false;
};

/// Serialize as "dwi-tuned-config v1\n" + one key=value per line.
std::string format_tuned_config(const TunedConfig& cfg);

/// Parse the format_tuned_config output; throws dwi::Error on a
/// malformed header, line, or value. Unknown keys throw too — a config
/// from a newer writer must not be silently half-read.
TunedConfig parse_tuned_config(const std::string& text);

}  // namespace dwi::tune
