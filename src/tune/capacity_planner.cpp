#include "tune/capacity_planner.h"

#include <map>
#include <utility>

#include "common/error.h"

namespace dwi::tune {

serve::CapacityPlan plan_capacity(const minicl::ShardBackend& backend,
                                  const WorkloadMix& mix,
                                  double target_queue_seconds,
                                  double batch_window_seconds) {
  DWI_REQUIRE(mix.gamma_weight >= 0.0 && mix.credit_weight >= 0.0,
              "capacity planner: negative workload weight");
  const double weight_sum = mix.gamma_weight + mix.credit_weight;
  DWI_REQUIRE(weight_sum > 0.0, "capacity planner: empty workload mix");
  DWI_REQUIRE(target_queue_seconds > 0.0 && batch_window_seconds > 0.0,
              "capacity planner: windows must be positive");

  double weighted_seconds = 0.0;
  if (mix.gamma_weight > 0.0) {
    weighted_seconds += mix.gamma_weight * backend.estimate_seconds(
                                               mix.gamma_outputs,
                                               mix.gamma_variance);
  }
  if (mix.credit_weight > 0.0) {
    weighted_seconds += mix.credit_weight * backend.estimate_seconds(
                                                mix.credit_outputs,
                                                mix.credit_variance);
  }
  const double mean_seconds = weighted_seconds / weight_sum;
  DWI_REQUIRE(mean_seconds > 0.0,
              "capacity planner: device model priced the mix at zero");

  serve::CapacityPlan plan;
  plan.modeled_rps = 1.0 / mean_seconds;
  plan.target_queue_seconds = target_queue_seconds;
  plan.batch_window_seconds = batch_window_seconds;
  plan.device = backend.name();
  return plan;
}

std::vector<serve::CapacityPlan> plan_cluster_capacity(
    const serve::ClusterConfig& cfg, const WorkloadMix& mix,
    double target_queue_seconds, double batch_window_seconds) {
  DWI_REQUIRE(cfg.num_shards >= 1, "capacity planner: need a shard");
  // One fresh backend per distinct device kind: the modeled rate only
  // depends on the kind, so shards sharing a kind share the pricing
  // (but each plan still names its own shard's backend).
  std::map<minicl::BackendKind, double> rps_by_kind;
  std::vector<serve::CapacityPlan> plans;
  plans.reserve(cfg.num_shards);
  for (std::size_t i = 0; i < cfg.num_shards; ++i) {
    const minicl::BackendKind kind =
        cfg.devices.empty() ? minicl::BackendKind::kFpga
                            : cfg.devices[i % cfg.devices.size()];
    const auto backend =
        minicl::make_shard_backend(kind, static_cast<unsigned>(i));
    serve::CapacityPlan plan;
    const auto it = rps_by_kind.find(kind);
    if (it != rps_by_kind.end()) {
      plan.modeled_rps = it->second;
      plan.target_queue_seconds = target_queue_seconds;
      plan.batch_window_seconds = batch_window_seconds;
      plan.device = backend->name();
    } else {
      plan = plan_capacity(*backend, mix, target_queue_seconds,
                           batch_window_seconds);
      rps_by_kind.emplace(kind, plan.modeled_rps);
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

serve::ServeConfig apply_capacity(serve::ServeConfig cfg,
                                  const serve::CapacityPlan& plan) {
  cfg.capacity = plan;
  return cfg;
}

}  // namespace dwi::tune
