#include "tune/tuned_config.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/error.h"

namespace dwi::tune {

namespace {

constexpr const char* kHeader = "dwi-tuned-config v1";

std::string format_double(double v) {
  // Shortest round-trip representation: %.17g always reconstructs the
  // exact double through strtod.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
  DWI_REQUIRE(end != nullptr && *end == '\0' && !value.empty(),
              "tuned config: bad integer for key '" + key + "': " + value);
  return v;
}

double parse_f64(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  DWI_REQUIRE(end != nullptr && *end == '\0' && !value.empty(),
              "tuned config: bad number for key '" + key + "': " + value);
  return v;
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "true") return true;
  if (value == "false") return false;
  throw Error("tuned config: bad bool for key '" + key + "': " + value);
}

}  // namespace

std::string format_tuned_config(const TunedConfig& cfg) {
  std::ostringstream out;
  out << kHeader << '\n';
  out << "workload=" << cfg.workload << '\n';
  out << "device=" << cfg.device << '\n';
  out << "seed=" << cfg.seed << '\n';
  out << "work_items=" << cfg.work_items << '\n';
  out << "stream_depth=" << cfg.stream_depth << '\n';
  out << "burst_beats=" << cfg.burst_beats << '\n';
  out << "cycle_skipping=" << (cfg.cycle_skipping ? "true" : "false") << '\n';
  out << "batch_iterations=" << cfg.batch_iterations << '\n';
  out << "global_size=" << cfg.global_size << '\n';
  out << "local_size=" << cfg.local_size << '\n';
  out << "threads=" << cfg.threads << '\n';
  out << "max_batch=" << cfg.max_batch << '\n';
  out << "queue_capacity=" << cfg.queue_capacity << '\n';
  out << "pipe_depth=" << cfg.pipe_depth << '\n';
  out << "stream_strategy=" << cfg.stream_strategy << '\n';
  out << "modeled_throughput=" << format_double(cfg.modeled_throughput)
      << '\n';
  out << "feasible=" << (cfg.feasible ? "true" : "false") << '\n';
  return out.str();
}

TunedConfig parse_tuned_config(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  DWI_REQUIRE(std::getline(in, line) && line == kHeader,
              "tuned config: missing '" + std::string(kHeader) + "' header");
  TunedConfig cfg;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    DWI_REQUIRE(eq != std::string::npos,
                "tuned config: line without '=': " + line);
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "workload") {
      cfg.workload = value;
    } else if (key == "device") {
      cfg.device = value;
    } else if (key == "seed") {
      cfg.seed = parse_u64(key, value);
    } else if (key == "work_items") {
      cfg.work_items = static_cast<unsigned>(parse_u64(key, value));
    } else if (key == "stream_depth") {
      cfg.stream_depth = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "burst_beats") {
      cfg.burst_beats = static_cast<unsigned>(parse_u64(key, value));
    } else if (key == "cycle_skipping") {
      cfg.cycle_skipping = parse_bool(key, value);
    } else if (key == "batch_iterations") {
      cfg.batch_iterations = static_cast<std::uint32_t>(parse_u64(key, value));
    } else if (key == "global_size") {
      cfg.global_size = parse_u64(key, value);
    } else if (key == "local_size") {
      cfg.local_size = static_cast<unsigned>(parse_u64(key, value));
    } else if (key == "threads") {
      cfg.threads = static_cast<unsigned>(parse_u64(key, value));
    } else if (key == "max_batch") {
      cfg.max_batch = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "queue_capacity") {
      cfg.queue_capacity = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "pipe_depth") {
      cfg.pipe_depth = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "stream_strategy") {
      cfg.stream_strategy = value;
    } else if (key == "modeled_throughput") {
      cfg.modeled_throughput = parse_f64(key, value);
    } else if (key == "feasible") {
      cfg.feasible = parse_bool(key, value);
    } else {
      throw Error("tuned config: unknown key '" + key + "'");
    }
  }
  return cfg;
}

}  // namespace dwi::tune
