// Capacity planner: turns a shard's modeled device throughput into the
// serve::CapacityPlan the admission layer derives its bounds from.
//
// The serving cluster already mirrors every admitted request onto its
// shard's simulated device (minicl::ShardBackend::account) — the
// planner runs the same pricing BEFORE any traffic exists:
// ShardBackend::estimate_seconds prices one request of each shape in
// the expected workload mix on the shard's device, the weighted mean
// inverts into a modeled requests/second, and serve/capacity.h turns
// that into queue and batch bounds. A heterogeneous cluster (FPGA +
// CPU shards) therefore derives DIFFERENT admission bounds per shard
// from one workload mix — the slow device gets the short queue.
#pragma once

#include <vector>

#include "minicl/shard_backend.h"
#include "serve/capacity.h"
#include "serve/cluster.h"
#include "serve/sampling_server.h"

namespace dwi::tune {

/// The request mix a shard is expected to serve, in the modeled
/// device's units (total_outputs, sector_variance — the same pair the
/// router passes to ShardBackend::account).
struct WorkloadMix {
  double gamma_weight = 7.0;           ///< relative request frequency
  std::uint64_t gamma_outputs = 2048;  ///< samples per gamma request
  float gamma_variance = 1.0f;         ///< 1/alpha of a typical request
  double credit_weight = 1.0;
  std::uint64_t credit_outputs = 512;  ///< scenarios x sectors
  float credit_variance = 1.39f;
};

/// Price `mix` on `backend`'s device and return the capacity plan:
/// modeled_rps = 1 / (weighted mean modeled seconds per request).
/// `target_queue_seconds` / `batch_window_seconds` pass through to the
/// plan (see serve/capacity.h for how bounds derive from them).
serve::CapacityPlan plan_capacity(const minicl::ShardBackend& backend,
                                  const WorkloadMix& mix,
                                  double target_queue_seconds = 0.05,
                                  double batch_window_seconds = 0.002);

/// One plan per shard of `cfg`, pricing `mix` on the same device
/// cycling the cluster constructor uses — ready to assign to
/// ClusterConfig::shard_capacity. Devices are instantiated fresh here
/// (the plans must not touch the cluster's own backends' accounts).
std::vector<serve::CapacityPlan> plan_cluster_capacity(
    const serve::ClusterConfig& cfg, const WorkloadMix& mix,
    double target_queue_seconds = 0.05, double batch_window_seconds = 0.002);

/// One-call wiring: returns `cfg` with the plan installed, ready to
/// construct a SamplingServer whose admission bounds come from modeled
/// capacity (README shows the snippet).
serve::ServeConfig apply_capacity(serve::ServeConfig cfg,
                                  const serve::CapacityPlan& plan);

}  // namespace dwi::tune
