#include "tune/autotuner.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <sstream>

#include "common/error.h"
#include "core/fpga_app.h"
#include "core/gamma_work_item.h"
#include "fpga/kernel_sim.h"
#include "fpga/resource_model.h"
#include "simt/runtime_estimator.h"

namespace dwi::tune {

namespace {

std::uint64_t splitmix64(std::uint64_t* state) {
  *state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = *state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// One discrete search dimension.
struct Knob {
  const char* name;
  std::vector<std::uint64_t> values;
  std::size_t start;  ///< index of the default value
};

using Point = std::vector<std::uint64_t>;
using FeasibleFn = std::function<bool(const Point&)>;
using ObjectiveFn = std::function<double(const Point&)>;

std::string point_summary(const std::vector<Knob>& knobs, const Point& p) {
  std::ostringstream out;
  for (std::size_t i = 0; i < knobs.size(); ++i) {
    if (i > 0) out << ' ';
    out << knobs[i].name << '=' << p[i];
  }
  return out.str();
}

struct SearchOutcome {
  Point best;
  double best_objective = 0.0;
  Point defaults;
  double default_objective = 0.0;
  std::vector<TrajectoryPoint> trajectory;
  unsigned evaluations = 0;
  unsigned pruned = 0;
};

/// Seeded coordinate descent: evaluate the default, then sweep each
/// knob in a splitmix64-shuffled order (re-shuffled per pass), keeping
/// any strict improvement. Infeasible points are pruned by `feasible`
/// before the objective runs — they cost nothing against the budget.
/// Previously-seen points are memoized, so re-visiting the incumbent's
/// coordinates never re-simulates.
SearchOutcome coordinate_descent(const std::vector<Knob>& knobs,
                                 const FeasibleFn& feasible,
                                 const ObjectiveFn& objective,
                                 const TunerOptions& opt) {
  DWI_REQUIRE(!knobs.empty(), "tuner: need at least one knob");
  DWI_REQUIRE(opt.budget >= 1, "tuner: need a positive budget");

  SearchOutcome out;
  out.defaults.reserve(knobs.size());
  for (const Knob& k : knobs) {
    DWI_REQUIRE(k.start < k.values.size(), "tuner: default index out of range");
    out.defaults.push_back(k.values[k.start]);
  }

  std::map<Point, double> memo;  // objective; <0 marks infeasible
  bool exhausted = false;

  // Returns the point's objective (<0 when infeasible), consuming
  // budget only for fresh feasible evaluations. Sets `exhausted` when
  // the budget would be exceeded.
  const auto evaluate = [&](const Point& p) -> double {
    const auto it = memo.find(p);
    if (it != memo.end()) return it->second;
    if (!feasible(p)) {
      ++out.pruned;
      out.trajectory.push_back(TrajectoryPoint{
          out.evaluations, point_summary(knobs, p), 0.0, false, false});
      memo.emplace(p, -1.0);
      return -1.0;
    }
    if (out.evaluations >= opt.budget) {
      exhausted = true;
      return -1.0;  // not memoized: a future run with budget left may eval
    }
    const double value = objective(p);
    ++out.evaluations;
    out.trajectory.push_back(TrajectoryPoint{
        out.evaluations, point_summary(knobs, p), value, true, false});
    memo.emplace(p, value);
    return value;
  };

  out.default_objective = evaluate(out.defaults);
  DWI_REQUIRE(out.default_objective >= 0.0,
              "tuner: the default configuration must be feasible");
  out.best = out.defaults;
  out.best_objective = out.default_objective;
  if (!out.trajectory.empty()) out.trajectory.back().improved = true;

  std::uint64_t rng = opt.seed;
  for (unsigned pass = 0; pass < opt.passes && !exhausted; ++pass) {
    // Fisher-Yates over the knob visiting order — the seed's only job.
    std::vector<std::size_t> order(knobs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[splitmix64(&rng) % i]);
    }
    for (const std::size_t k : order) {
      for (const std::uint64_t value : knobs[k].values) {
        Point candidate = out.best;
        candidate[k] = value;
        const double obj = evaluate(candidate);
        if (exhausted) break;
        if (obj > out.best_objective) {
          out.best = std::move(candidate);
          out.best_objective = obj;
          out.trajectory.back().improved = true;
        }
      }
      if (exhausted) break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// table3: FPGA design-point tuning
// ---------------------------------------------------------------------

/// Host-harness overhead factor of the two host-side knobs. The kernel
/// itself is unaffected (its outputs are bit-identical for every
/// batch_iterations and cycle_skipping value); what these knobs move is
/// how fast the HOST can drive and simulate the kernel:
///   * batch_iterations b: the GammaWorkItem tape amortizes per-call
///     overhead over b block-generated iterations; bench/block_rng
///     measures the scalar path (b = 1) ~33x slower per iteration, so
///     the factor is 1 + 32/b.
///   * cycle_skipping off: the cycle simulator walks every stalled
///     cycle individually, ~3x the wall time of the skipping engine on
///     the Table III workloads (bench/kernel_sim).
double host_overhead_factor(std::uint64_t batch_iterations,
                            bool cycle_skipping) {
  const double batch =
      static_cast<double>(std::max<std::uint64_t>(1, batch_iterations));
  return (1.0 + 32.0 / batch) * (cycle_skipping ? 1.0 : 3.0);
}

/// Modeled kernel outputs/cycle of one design point: the cycle-level
/// simulation of a 1/(scale·work_items) slice of the §IV-B workload,
/// with the real Listing 2 numerics as producers (same scaling shape as
/// core::run_fpga_application).
double modeled_outputs_per_cycle(const rng::AppConfig& app,
                                 unsigned work_items, unsigned burst_beats,
                                 std::size_t stream_depth,
                                 std::uint64_t scale_divisor) {
  core::FpgaWorkload wl;
  const std::uint64_t scenarios_sim = std::max<std::uint64_t>(
      16, wl.num_scenarios / (scale_divisor * work_items));
  const std::uint64_t outputs_per_sector = (scenarios_sim / 16) * 16;
  const std::uint64_t quota = outputs_per_sector * wl.num_sectors;

  fpga::KernelSimConfig cfg;
  cfg.work_items = work_items;
  cfg.burst_beats = burst_beats;
  cfg.stream_depth = stream_depth;
  cfg.outputs_per_work_item = quota;
  const auto result = fpga::simulate_kernel(
      cfg, [&](unsigned wid) -> std::unique_ptr<fpga::ProducerModel> {
        core::GammaWorkItemConfig wcfg;
        wcfg.app = app;
        wcfg.sector_variances.assign(wl.num_sectors, wl.sector_variance);
        wcfg.outputs_per_sector =
            static_cast<std::uint32_t>(outputs_per_sector);
        wcfg.work_item_id = wid;
        wcfg.seed = 1 + 0x1000u * wid;
        return std::make_unique<core::GammaWorkItem>(wcfg);
      });
  return static_cast<double>(result.outputs) /
         static_cast<double>(result.cycles);
}

std::string fpga_device_name(const fpga::DeviceSpec& dev) {
  if (dev.slices == fpga::adm_pcie_7v3().slices) return "adm-pcie-7v3";
  if (dev.slices == fpga::aws_f1_vu9p().slices) return "aws-f1-vu9p";
  return "fpga";
}

}  // namespace

TuneResult tune_table3(const fpga::DeviceSpec& dev, const rng::AppConfig& app,
                       const TunerOptions& options) {
  const unsigned nmax = fpga::max_work_items(dev, app);
  const unsigned default_burst = core::config_burst_beats(app);

  // Knob order matters only for display; visiting order is seeded.
  std::vector<Knob> knobs;
  {
    std::vector<std::uint64_t> wi = {2, 4, 6, 8, 10, 12};
    if (std::find(wi.begin(), wi.end(), nmax) == wi.end()) {
      wi.push_back(nmax);
      std::sort(wi.begin(), wi.end());
    }
    const std::size_t start = static_cast<std::size_t>(
        std::find(wi.begin(), wi.end(), nmax) - wi.begin());
    knobs.push_back(Knob{"work_items", std::move(wi), start});
  }
  knobs.push_back(Knob{"stream_depth", {32, 64, 128, 256, 1024}, 1});
  {
    std::vector<std::uint64_t> bursts = {8, 16, 18, 32, 64, 128};
    const std::size_t start = static_cast<std::size_t>(
        std::find(bursts.begin(), bursts.end(), default_burst) -
        bursts.begin());
    DWI_ASSERT(start < bursts.size());
    knobs.push_back(Knob{"burst_beats", std::move(bursts), start});
  }
  knobs.push_back(Knob{"cycle_skipping", {1, 0}, 0});
  knobs.push_back(Knob{"batch_iterations", {1, 256, 2048, 8192}, 2});

  enum { kWi, kDepth, kBurst, kSkip, kBatch };

  const FeasibleFn feasible = [&](const Point& p) {
    fpga::DesignPoint point;
    point.work_items = static_cast<unsigned>(p[kWi]);
    point.stream_depth = static_cast<std::size_t>(p[kDepth]);
    point.burst_beats = static_cast<unsigned>(p[kBurst]);
    return fpga::estimate_utilization(dev, app, point).routable;
  };
  const ObjectiveFn objective = [&](const Point& p) {
    const double per_cycle = modeled_outputs_per_cycle(
        app, static_cast<unsigned>(p[kWi]), static_cast<unsigned>(p[kBurst]),
        static_cast<std::size_t>(p[kDepth]), options.sim_scale_divisor);
    return per_cycle * dev.clock_hz /
           host_overhead_factor(p[kBatch], p[kSkip] != 0);
  };

  const SearchOutcome search =
      coordinate_descent(knobs, feasible, objective, options);

  const auto to_config = [&](const Point& p, double obj) {
    TunedConfig cfg;
    cfg.workload = std::string("table3:") + app.name;
    cfg.device = fpga_device_name(dev);
    cfg.seed = options.seed;
    cfg.work_items = static_cast<unsigned>(p[kWi]);
    cfg.stream_depth = static_cast<std::size_t>(p[kDepth]);
    cfg.burst_beats = static_cast<unsigned>(p[kBurst]);
    cfg.cycle_skipping = p[kSkip] != 0;
    cfg.batch_iterations = static_cast<std::uint32_t>(p[kBatch]);
    cfg.modeled_throughput = obj;
    cfg.feasible = true;
    return cfg;
  };
  TuneResult result;
  result.best = to_config(search.best, search.best_objective);
  result.fallback = to_config(search.defaults, search.default_objective);
  result.trajectory = std::move(search.trajectory);
  result.evaluations = search.evaluations;
  result.pruned_infeasible = search.pruned;
  return result;
}

TuneResult tune_fig5(simt::PlatformId platform, const rng::AppConfig& app,
                     const TunerOptions& options) {
  const simt::PlatformModel& plat = simt::platform(platform);
  const unsigned paper_local = simt::paper_optimal_local_size(platform);

  std::vector<Knob> knobs;
  {
    std::vector<std::uint64_t> locals = {1, 2, 4, 8, 16, 32, 64, 128, 256,
                                         512};
    const std::size_t start = static_cast<std::size_t>(
        std::find(locals.begin(), locals.end(), paper_local) -
        locals.begin());
    DWI_ASSERT(start < locals.size());
    knobs.push_back(Knob{"local_size", std::move(locals), start});
  }
  knobs.push_back(
      Knob{"global_size", {16'384, 65'536, 262'144, 1'048'576}, 1});

  enum { kLocal, kGlobal };

  const FeasibleFn feasible = [&](const Point& p) {
    // The OpenCL NDRange rule: local divides global.
    return p[kLocal] <= p[kGlobal] && p[kGlobal] % p[kLocal] == 0;
  };
  const ObjectiveFn objective = [&](const Point& p) {
    simt::NdRangeWorkload wl;
    wl.local_size = static_cast<unsigned>(p[kLocal]);
    wl.global_size = p[kGlobal];
    const auto est =
        simt::estimate_runtime(plat, app, app.fixed_arch_transform, wl);
    return 1.0 / est.seconds;  // full kernel runs per second
  };

  const SearchOutcome search =
      coordinate_descent(knobs, feasible, objective, options);

  const auto to_config = [&](const Point& p, double obj) {
    TunedConfig cfg;
    cfg.workload =
        std::string("fig5:") + simt::to_string(platform) + ":" + app.name;
    cfg.device = plat.name;
    cfg.seed = options.seed;
    cfg.local_size = static_cast<unsigned>(p[kLocal]);
    cfg.global_size = p[kGlobal];
    cfg.modeled_throughput = obj;
    cfg.feasible = true;
    return cfg;
  };
  TuneResult result;
  result.best = to_config(search.best, search.best_objective);
  result.fallback = to_config(search.defaults, search.default_objective);
  result.trajectory = std::move(search.trajectory);
  result.evaluations = search.evaluations;
  result.pruned_infeasible = search.pruned;
  return result;
}

// ---------------------------------------------------------------------
// serve: analytic host cost model
// ---------------------------------------------------------------------

namespace {

// Calibrated on the reference single-core host against
// bench/serve_throughput (docs/TUNING.md documents the fit):
//   * jump-ahead substream derivation: ~84 us/request (popcount(index)
//     GF(2) matrix applies against the splitter's squaring chain);
//   * counter-based derivation: ~29 ns (one Philox counter write);
//   * per-sample compute: fitted so the modeled default mix reproduces
//     the measured closed-loop ~4.8 krps;
//   * per-obligor aggregation cost of a CreditRisk+ scenario;
//   * scheduler dispatch overhead per batch, amortized over the batch.
constexpr double kDeriveJumpSeconds = 8.4e-5;
constexpr double kDeriveCounterSeconds = 2.9e-8;
constexpr double kSampleSeconds = 4.15e-8;
constexpr double kObligorSeconds = 2.0e-8;
constexpr double kDispatchSeconds = 2.0e-5;
/// Amdahl serial fraction of the serving loop (admission + metrics
/// mutexes) and the concurrency the dispatch overlap can actually use.
constexpr double kSerialFraction = 0.08;
constexpr double kModeledConcurrency = 4.0;

}  // namespace

double modeled_serve_rps(const ServeWorkloadSpec& spec, bool counter_based,
                         std::size_t max_batch, std::size_t queue_capacity,
                         unsigned threads, std::size_t pipe_depth) {
  DWI_REQUIRE(threads >= 1, "serve model: need at least one thread");
  DWI_REQUIRE(max_batch >= 1 && queue_capacity >= 1 && pipe_depth >= 1,
              "serve model: batch/queue/pipe bounds must be >= 1");
  DWI_REQUIRE(spec.gamma_fraction >= 0.0 && spec.gamma_fraction <= 1.0,
              "serve model: gamma_fraction must be in [0, 1]");

  const double derive =
      counter_based ? kDeriveCounterSeconds : kDeriveJumpSeconds;
  // Dispatch cost amortizes over the coalesced batch, but overlap is
  // bounded by the modeled concurrency of the drain loop.
  const double effective_batch = std::min(
      static_cast<double>(max_batch), kModeledConcurrency);
  const double dispatch = kDispatchSeconds / std::max(1.0, effective_batch);

  const double t_gamma =
      derive + static_cast<double>(spec.gamma_count) * kSampleSeconds +
      dispatch;

  double t_credit = 0.0;
  const double credit_fraction = 1.0 - spec.gamma_fraction;
  if (credit_fraction > 0.0) {
    const double sectors = static_cast<double>(spec.credit_sectors);
    t_credit = derive * sectors +
               static_cast<double>(spec.credit_scenarios) *
                   (sectors * kSampleSeconds +
                    static_cast<double>(spec.credit_obligors) *
                        kObligorSeconds);
    if (spec.resident) {
      // Resident path: no per-request scheduler dispatch, but shallow
      // pipes stall the sampler↔aggregator handoff.
      t_credit *= 1.0 + 0.5 / static_cast<double>(pipe_depth);
    } else {
      t_credit += dispatch;
    }
  }

  const double t = spec.gamma_fraction * t_gamma +
                   credit_fraction * t_credit;
  DWI_REQUIRE(t > 0.0, "serve model: degenerate workload");

  const double amdahl =
      1.0 / (kSerialFraction +
             (1.0 - kSerialFraction) / static_cast<double>(threads));
  // A queue that cannot hold two batches starves the drain loop.
  const double starvation = std::min(
      1.0, static_cast<double>(queue_capacity) /
               (2.0 * static_cast<double>(max_batch)));
  return starvation * amdahl / t;
}

TuneResult tune_serve(const ServeWorkloadSpec& spec,
                      const TunerOptions& options) {
  DWI_REQUIRE(!spec.thread_candidates.empty(),
              "tune_serve: need at least one thread candidate");

  std::vector<Knob> knobs;
  knobs.push_back(Knob{"counter_based",
                       spec.allow_strategy_switch
                           ? std::vector<std::uint64_t>{0, 1}
                           : std::vector<std::uint64_t>{0},
                       0});
  knobs.push_back(Knob{"max_batch", {1, 4, 16, 64}, 2});
  knobs.push_back(Knob{"queue_capacity", {16, 64, 256, 1024}, 2});
  {
    std::vector<std::uint64_t> threads;
    for (const unsigned t : spec.thread_candidates) {
      DWI_REQUIRE(t >= 1, "tune_serve: thread candidates must be >= 1");
      threads.push_back(t);
    }
    knobs.push_back(Knob{"threads", std::move(threads), 0});
  }
  knobs.push_back(Knob{"pipe_depth",
                       spec.resident ? std::vector<std::uint64_t>{2, 8, 32}
                                     : std::vector<std::uint64_t>{8},
                       spec.resident ? 1u : 0u});

  enum { kStrategy, kBatch, kQueue, kThreads, kPipe };

  const FeasibleFn feasible = [&](const Point& p) {
    return p[kBatch] <= p[kQueue];
  };
  const ObjectiveFn objective = [&](const Point& p) {
    return modeled_serve_rps(spec, p[kStrategy] != 0,
                             static_cast<std::size_t>(p[kBatch]),
                             static_cast<std::size_t>(p[kQueue]),
                             static_cast<unsigned>(p[kThreads]),
                             static_cast<std::size_t>(p[kPipe]));
  };

  const SearchOutcome search =
      coordinate_descent(knobs, feasible, objective, options);

  const auto to_config = [&](const Point& p, double obj) {
    TunedConfig cfg;
    cfg.workload = spec.resident ? "serve:resident" : "serve:classic";
    cfg.device = "host";
    cfg.seed = options.seed;
    cfg.stream_strategy = p[kStrategy] != 0 ? "counter-based" : "jump-ahead";
    cfg.max_batch = static_cast<std::size_t>(p[kBatch]);
    cfg.queue_capacity = static_cast<std::size_t>(p[kQueue]);
    cfg.threads = static_cast<unsigned>(p[kThreads]);
    cfg.pipe_depth = static_cast<std::size_t>(p[kPipe]);
    cfg.modeled_throughput = obj;
    cfg.feasible = true;
    return cfg;
  };
  TuneResult result;
  result.best = to_config(search.best, search.best_objective);
  result.fallback = to_config(search.defaults, search.default_objective);
  result.trajectory = std::move(search.trajectory);
  result.evaluations = search.evaluations;
  result.pruned_infeasible = search.pruned;
  return result;
}

}  // namespace dwi::tune
