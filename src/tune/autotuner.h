// Resource-aware throughput autotuner.
//
// One search skeleton — seeded coordinate descent over a small set of
// discrete knobs — applied to the repo's three workload families:
//
//   * table3 (FPGA): joint {work-items, stream depth, burst beats,
//     cycle_skipping, batch_iterations} against the cycle-level kernel
//     simulation. Every candidate design point is first priced by the
//     Table II resource model (fpga::estimate_utilization with a
//     DesignPoint); points whose slices/DSP/BRAM exceed the modeled
//     device's budget are PRUNED — counted, recorded in the
//     trajectory, never simulated. This reproduces §IV-C's
//     "grow until place-and-route fails" as a feasibility constraint
//     inside a joint search instead of a one-knob sweep.
//   * fig5 (SIMT): {local size, global size} against the
//     fixed-architecture runtime estimator. Feasibility = the OpenCL
//     NDRange rule (local divides global).
//   * serve (host): {stream strategy, batch window, queue bound,
//     thread count, resident pipe depth} against a calibrated analytic
//     cost model (modeled_serve_rps below) — deterministic, so CI can
//     gate on it without timing noise.
//
// Determinism: the search is a pure function of (workload, options).
// The only randomness is a splitmix64-seeded knob visiting order; no
// wall-clock, no global RNG. Same seed → same trajectory → same
// TunedConfig (tests/test_tune.cpp pins this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/device.h"
#include "rng/configs.h"
#include "simt/platform.h"
#include "tune/tuned_config.h"

namespace dwi::tune {

struct TunerOptions {
  /// Seed of the knob-order shuffle. Same seed → same search.
  std::uint64_t seed = 1;
  /// Hard cap on objective evaluations (pruned points are free — the
  /// resource model is why the budget stretches).
  unsigned budget = 96;
  /// Coordinate-descent sweeps over the knob set.
  unsigned passes = 2;
  /// FPGA probe scale: simulate 1/(scale·work_items) of the paper
  /// workload's scenarios per evaluation. Larger = cheaper and still
  /// steady-state (the sim floor is 16 scenarios/work-item).
  std::uint64_t sim_scale_divisor = 4096;
};

/// One objective evaluation (or resource-model rejection) in search
/// order — the audit trail BENCH_tuner.json serializes.
struct TrajectoryPoint {
  unsigned eval = 0;       ///< evaluation index (pruned points share it)
  std::string point;       ///< "knob=value ..." summary
  double objective = 0.0;  ///< units/second; 0 when pruned
  bool feasible = true;    ///< false = resource model rejected it
  bool improved = false;   ///< became the incumbent best
};

struct TuneResult {
  TunedConfig best;
  /// The untouched default configuration, scored with the same
  /// objective — the baseline "tuned vs default" ratios compare
  /// against, and the fallback callers keep when tuning is off.
  TunedConfig fallback;
  std::vector<TrajectoryPoint> trajectory;
  unsigned evaluations = 0;
  unsigned pruned_infeasible = 0;

  double speedup() const {
    return fallback.modeled_throughput > 0.0
               ? best.modeled_throughput / fallback.modeled_throughput
               : 0.0;
  }
};

/// Tune the Table III FPGA configuration `app` for `dev`. Objective:
/// modeled kernel samples/second (cycle sim × device clock) divided by
/// the host-harness overhead factor of {batch_iterations,
/// cycle_skipping}. Default point: the §IV-C N_max design at the
/// calibrated burst/depth.
TuneResult tune_table3(const fpga::DeviceSpec& dev, const rng::AppConfig& app,
                       const TunerOptions& options = {});

/// Tune the Fig 5 NDRange shape of `app` on `platform`. Objective:
/// modeled kernel runs/second. The estimator's default local size is
/// already the paper's Fig 5a optimum, so an honest tuner mostly
/// CONFIRMS the paper here (speedup ≈ 1.0) — the point of the sweep is
/// that the search finds the published optimum from scratch.
TuneResult tune_fig5(simt::PlatformId platform, const rng::AppConfig& app,
                     const TunerOptions& options = {});

/// The serve workload the analytic model prices: the request mix of
/// bench/serve_throughput.cpp by default (7/8 gamma x 2048 samples,
/// 1/8 CreditRisk+ x 256 scenarios over a 48-obligor/2-sector
/// portfolio).
struct ServeWorkloadSpec {
  double gamma_fraction = 7.0 / 8.0;
  std::uint32_t gamma_count = 2048;
  std::uint64_t credit_scenarios = 256;
  std::size_t credit_sectors = 2;
  std::size_t credit_obligors = 48;
  /// Price the resident CreditRisk+ pipeline instead of the classic
  /// scheduler path (adds the pipe-depth knob).
  bool resident = false;
  /// Let the tuner switch kJumpAhead → kCounterBased. The strategies
  /// sample different (equally valid) stream families, so response
  /// VALUES change — callers who must keep jump-ahead bytes opt out
  /// and the tuner only moves value-preserving knobs.
  bool allow_strategy_switch = true;
  /// Thread counts the deployment can actually use (the host's core
  /// budget); the tuner picks among these, never invents one.
  std::vector<unsigned> thread_candidates = {1};
};

/// Tune the serving configuration for `spec`. Objective:
/// modeled_serve_rps. Default point: ServeConfig's defaults
/// (jump-ahead, max_batch 16, queue 256, 1 thread, pipe depth 8).
TuneResult tune_serve(const ServeWorkloadSpec& spec,
                      const TunerOptions& options = {});

/// The calibrated analytic serve cost model (deterministic; no clocks).
/// Per-request cost = substream derivation + sample compute + amortized
/// dispatch, scaled by Amdahl thread speedup and the queue-starvation
/// factor; constants calibrated against bench/serve_throughput on the
/// reference host (docs/TUNING.md lists them with their provenance).
double modeled_serve_rps(const ServeWorkloadSpec& spec, bool counter_based,
                         std::size_t max_batch, std::size_t queue_capacity,
                         unsigned threads, std::size_t pipe_depth);

}  // namespace dwi::tune
