// ForwardingBuffer: runtime hazard resolution for address collisions —
// the dynamic-scheduling counterpart of core/delayed_counter.h.
//
// DelayedCounter breaks the *rejection-shaped* recurrence of Listing 2
// (the loop exit reads a counter written by the previous iteration) by
// comparing against a delayed register copy. The zoo's kernels have a
// different recurrence: a read-modify-write against a data-dependent
// ADDRESS (histogram bin, matching endpoint). A static scheduler must
// assume every iteration collides with the one in flight and spaces
// them by the full RMW chain latency; a dynamic scheduler instead keeps
// the last `depth` in-flight addresses in a shift register, snoops each
// new address against them, and only when a real collision is found
// stalls long enough to forward the in-flight value from the adder
// bypass instead of waiting for the store to retire.
//
// This class is that shift register plus its snoop port, kept
// kernel-agnostic so histogram (one address per update) and maximal
// matching (two endpoints per edge) share one implementation. push()
// advances the window by one issued update; push_bubble() advances it
// by one stall/idle cycle so entries age out on real time, not on
// update count.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.h"

namespace dwi::workloads {

template <typename Addr = std::uint32_t>
class ForwardingBuffer {
 public:
  /// Sentinel occupying empty slots; never matches a snoop because
  /// callers' address spaces are required to stay below it.
  static constexpr Addr kIdle = std::numeric_limits<Addr>::max();

  /// `depth`: how many cycles an update stays in flight (the RMW chain
  /// latency minus the one cycle the forward path needs).
  explicit ForwardingBuffer(unsigned depth) : slots_(depth, kIdle) {
    DWI_REQUIRE(depth >= 1, "forwarding buffer needs at least one slot");
  }

  /// Snoop `addr` against every in-flight update. True means the value
  /// must be forwarded (a RAW hazard would fire).
  bool snoop(Addr addr) {
    ++snoops_;
    for (const Addr in_flight : slots_) {
      if (in_flight == addr) {
        ++hits_;
        return true;
      }
    }
    return false;
  }

  /// Shift the window by one cycle that issued an update to `addr`.
  void push(Addr addr) {
    DWI_ASSERT(addr != kIdle);
    shift(addr);
  }

  /// Shift the window by one cycle that issued nothing (stall, starved
  /// input, or a skipped iteration) — in-flight updates keep retiring.
  void push_bubble() { shift(kIdle); }

  unsigned depth() const { return static_cast<unsigned>(slots_.size()); }
  std::uint64_t snoops() const { return snoops_; }
  std::uint64_t hits() const { return hits_; }

  void reset() {
    for (Addr& s : slots_) s = kIdle;
    snoops_ = 0;
    hits_ = 0;
  }

 private:
  void shift(Addr incoming) {
    for (std::size_t j = slots_.size(); j-- > 1;) slots_[j] = slots_[j - 1];
    slots_[0] = incoming;
  }

  std::vector<Addr> slots_;  ///< fully partitioned shift register in HLS
  std::uint64_t snoops_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace dwi::workloads
