// SpMV over CSR — the zoo's data-dependent trip-count kernel.
//
// Two decoupled work-items, the paper's producer/consumer split applied
// to sparse algebra: a row-pointer work-item walks row_ptr and streams
// each row's [begin, end) range through an hls::stream; a MAC work-item
// consumes (col, value) pairs and accumulates y[r]. The inner trip
// count is the row's nnz — known only at runtime:
//   kStatic  — the scheduler cannot flatten a variable-bound inner loop,
//     so every row drains the MAC pipeline (pipeline_latency cycles)
//     before the next row issues, and the single-accumulator float
//     recurrence forces II = add_latency inside a row.
//   kDynamic — rows stream back-to-back at II = 1 (the decoupled
//     row-pointer work-item keeps ranges buffered ahead); only a row
//     SHORTER than the adder latency stalls, for the cycles the final
//     sum still needs before y[r] can store.
// Both modes accumulate in CSR order, so y is bit-identical to
// spmv_oracle().
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/scheduling.h"

namespace dwi::workloads {

struct CsrMatrix {
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  std::vector<std::uint32_t> row_ptr;  ///< rows+1 entries, row_ptr[0] == 0
  std::vector<std::uint32_t> col_idx;  ///< nnz entries, each < cols
  std::vector<float> values;           ///< nnz entries

  std::uint32_t nnz() const {
    return row_ptr.empty() ? 0u : row_ptr.back();
  }
};

struct SpmvConfig {
  SchedulingMode mode = SchedulingMode::kDynamic;
  /// Float-accumulate chain latency (the y[r] += v*x recurrence).
  unsigned add_latency = 4;
  /// MAC pipeline depth a static schedule drains at each row boundary.
  unsigned pipeline_latency = 8;
  /// Depth of the row-pointer → MAC hls::stream.
  std::size_t stream_depth = 8;
};

struct SpmvOutput {
  std::vector<float> y;
  WorkloadStats stats;
};

SpmvOutput run_spmv(const SpmvConfig& cfg, const CsrMatrix& m,
                    const std::vector<float>& x);

/// Scalar host oracle: per-row accumulation in CSR order, no timing.
std::vector<float> spmv_oracle(const CsrMatrix& m,
                               const std::vector<float>& x);

/// Deterministic CSR matrix from a uniform u32 source: each row draws
/// its nnz from [nnz_min, nnz_max], then (col, value) per element —
/// a fixed 1 + 2·nnz draws per row.
template <typename NextU32>
CsrMatrix make_spmv_matrix(std::uint32_t rows, std::uint32_t cols,
                           std::uint32_t nnz_min, std::uint32_t nnz_max,
                           NextU32&& next) {
  CsrMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.reserve(rows + 1);
  m.row_ptr.push_back(0);
  const std::uint32_t span = nnz_max - nnz_min + 1;
  for (std::uint32_t r = 0; r < rows; ++r) {
    const std::uint32_t nnz = nnz_min + next() % span;
    for (std::uint32_t e = 0; e < nnz; ++e) {
      m.col_idx.push_back(next() % cols);
      m.values.push_back(static_cast<float>(next() >> 8) *
                         (1.0f / 16777216.0f));
    }
    m.row_ptr.push_back(m.row_ptr.back() + nnz);
  }
  return m;
}

/// Dense vector with 24-bit-exact entries in [0, 1).
template <typename NextU32>
std::vector<float> make_dense_vector(std::uint32_t n, NextU32&& next) {
  std::vector<float> x;
  x.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    x.push_back(static_cast<float>(next() >> 8) * (1.0f / 16777216.0f));
  }
  return x;
}

}  // namespace dwi::workloads
