// Scheduling-mode axis and cycle accounting of the divergent-kernel
// zoo (src/workloads).
//
// The zoo reproduces the static_sched/dynamic_sched split of the
// sycl-playground catalogue the ROADMAP names: every kernel computes
// the SAME values either way (the host oracle pins that), but its
// cycle cost is modeled under two schedulers —
//   kStatic  — the conservative HLS default. The scheduler must prove
//     at compile time that a loop-carried dependency cannot fire, and
//     for data-dependent addresses / trip counts it cannot, so every
//     iteration is spaced by the worst-case dependency chain latency
//     (II = chain latency) and variable-bound inner loops drain the
//     pipeline at each boundary.
//   kDynamic — a dynamically scheduled pipeline (the paper's decoupled
//     work-item discipline): iterations issue at II = 1 and a runtime
//     hazard unit (workloads/forwarding_buffer.h) stalls only when a
//     dependency ACTUALLY fires, paying a short forward penalty
//     instead of the full chain latency.
//
// WorkloadStats separates where the cycles went — hazard stalls,
// inter-work-item pipe stalls, early-exit iterations — so the benches
// can show not just that dynamic wins but why.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace dwi::workloads {

enum class SchedulingMode {
  kStatic,   ///< conservative static II (worst-case dependency spacing)
  kDynamic,  ///< II=1 with runtime hazard resolution (forwarding)
};

const char* to_string(SchedulingMode mode);

/// Round-trip parse of to_string(); nullopt on unknown names.
std::optional<SchedulingMode> parse_scheduling_mode(std::string_view name);

/// Cycle-level accounting of one kernel run. Deterministic: a pure
/// function of (config, input trace), never of host timing.
struct WorkloadStats {
  std::uint64_t cycles = 0;       ///< total modeled kernel cycles
  std::uint64_t initiations = 0;  ///< iterations issued into the pipeline
  /// Cycles lost to the dependency chain: conservative II spacing under
  /// kStatic, forward-penalty bubbles on real collisions under kDynamic.
  std::uint64_t hazard_stall_cycles = 0;
  /// Collisions resolved by the forwarding network (kDynamic only).
  std::uint64_t forwarded = 0;
  /// Producer-side cycles blocked on a full inter-work-item stream.
  std::uint64_t pipe_full_stall_cycles = 0;
  /// Consumer-side cycles starved by an empty inter-work-item stream.
  std::uint64_t pipe_empty_stall_cycles = 0;
  /// Iterations retired through a dynamic early exit (matched edge
  /// skipped, quota reached) rather than full-cost execution.
  std::uint64_t skipped = 0;

  /// Mean initiation interval actually achieved.
  double achieved_ii() const {
    return initiations == 0
               ? 0.0
               : static_cast<double>(cycles) / static_cast<double>(initiations);
  }

  /// Modeled wall time of this run at a device clock.
  double seconds_at(double clock_hz) const {
    return clock_hz <= 0.0 ? 0.0
                           : static_cast<double>(cycles) / clock_hz;
  }
};

}  // namespace dwi::workloads
