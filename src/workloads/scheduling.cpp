#include "workloads/scheduling.h"

namespace dwi::workloads {

const char* to_string(SchedulingMode mode) {
  switch (mode) {
    case SchedulingMode::kStatic:
      return "static";
    case SchedulingMode::kDynamic:
      return "dynamic";
  }
  return "unknown";
}

std::optional<SchedulingMode> parse_scheduling_mode(std::string_view name) {
  if (name == "static") return SchedulingMode::kStatic;
  if (name == "dynamic") return SchedulingMode::kDynamic;
  return std::nullopt;
}

}  // namespace dwi::workloads
