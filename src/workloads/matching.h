// Greedy maximal matching over an edge list — the zoo's closest
// analogue of the paper's dynamically-modified loop bound.
//
// The kernel walks the edge list once: an edge whose endpoints are both
// unmatched is taken (match[u] = v, match[v] = u), anything else is
// skipped. Two data-dependent mechanisms shape the schedule:
//   * the match[] array is a RAW hazard — an edge may read an endpoint
//     written by the edge in flight ahead of it (two ForwardingBuffer
//     windows, one per endpoint lane, resolve it under kDynamic);
//   * an optional pair quota turns the loop bound dynamic, exactly
//     Listing 2's shape: the exit compares a core::DelayedCounter's
//     DELAYED pair count (II = 1 despite the count being written in the
//     same iteration), while the match write is guarded by the LIVE
//     count — the kernel may examine up to break_id+1 extra edges after
//     the quota fills, but can never take one, so the result is
//     bit-identical to the oracle that stops exactly on quota.
//   kStatic  — every edge is spaced by chain_latency: the scheduler
//     must assume it reads what the previous edge wrote, skips
//     included.
//   kDynamic — edges issue at II = 1; skipped edges (the dynamic early
//     exit) retire in one cycle, and only a real endpoint collision
//     pays the forward_stall bubble.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/scheduling.h"

namespace dwi::workloads {

struct EdgeList {
  std::uint32_t num_vertices = 0;
  std::vector<std::uint32_t> u;  ///< endpoint a of edge i, < num_vertices
  std::vector<std::uint32_t> v;  ///< endpoint b of edge i, < num_vertices
};

struct MatchingConfig {
  SchedulingMode mode = SchedulingMode::kDynamic;
  /// Cycles of the match[] read→compare→store chain.
  unsigned chain_latency = 4;
  /// Bubble cycles a forwarded endpoint collision costs under kDynamic.
  unsigned forward_stall = 1;
  /// Stop once this many pairs are matched (0 = no quota, full pass).
  /// With a quota the loop exit is the dynamically-modified bound.
  std::uint32_t target_pairs = 0;
  /// DelayedCounter delay registers for the quota exit (Listing 2's
  /// breakId); only meaningful when target_pairs > 0.
  unsigned break_id = 0;
};

struct MatchingOutput {
  std::vector<std::int32_t> match;  ///< partner vertex, -1 if unmatched
  std::uint32_t pairs = 0;
  /// Edges the kernel looked at (under a quota this may exceed the
  /// oracle's count by up to break_id+1 harmless iterations).
  std::uint64_t edges_examined = 0;
  WorkloadStats stats;
};

MatchingOutput run_matching(const MatchingConfig& cfg, const EdgeList& g);

/// Scalar host oracle: the same greedy pass, stopping exactly when
/// `target_pairs` is reached (0 = full pass). Stats stay zero.
MatchingOutput matching_oracle(const EdgeList& g,
                               std::uint32_t target_pairs = 0);

/// Deterministic edge list from a uniform u32 source — two draws per
/// edge. Self-loops may occur and are skipped by the kernel.
template <typename NextU32>
EdgeList make_edge_list(std::uint32_t vertices, std::uint32_t edges,
                        NextU32&& next) {
  EdgeList g;
  g.num_vertices = vertices;
  g.u.reserve(edges);
  g.v.reserve(edges);
  for (std::uint32_t i = 0; i < edges; ++i) {
    g.u.push_back(next() % vertices);
    g.v.push_back(next() % vertices);
  }
  return g;
}

}  // namespace dwi::workloads
