#include "workloads/spmv.h"

#include "common/error.h"
#include "hls/stream.h"

namespace dwi::workloads {

namespace {

struct RowRange {
  std::uint32_t row = 0;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

void check_matrix(const CsrMatrix& m, const std::vector<float>& x) {
  DWI_REQUIRE(m.row_ptr.size() == static_cast<std::size_t>(m.rows) + 1,
              "spmv: row_ptr must have rows+1 entries");
  DWI_REQUIRE(!m.row_ptr.empty() && m.row_ptr.front() == 0,
              "spmv: row_ptr[0] must be 0");
  DWI_REQUIRE(m.col_idx.size() == m.values.size() &&
                  m.col_idx.size() == static_cast<std::size_t>(m.nnz()),
              "spmv: col_idx/values must hold nnz entries");
  DWI_REQUIRE(x.size() == static_cast<std::size_t>(m.cols),
              "spmv: x must have cols entries");
}

}  // namespace

std::vector<float> spmv_oracle(const CsrMatrix& m,
                               const std::vector<float>& x) {
  check_matrix(m, x);
  std::vector<float> y(m.rows, 0.0f);
  for (std::uint32_t r = 0; r < m.rows; ++r) {
    float acc = 0.0f;
    for (std::uint32_t e = m.row_ptr[r]; e < m.row_ptr[r + 1]; ++e) {
      DWI_REQUIRE(m.col_idx[e] < m.cols, "spmv: column out of range");
      acc += m.values[e] * x[m.col_idx[e]];
    }
    y[r] = acc;
  }
  return y;
}

SpmvOutput run_spmv(const SpmvConfig& cfg, const CsrMatrix& m,
                    const std::vector<float>& x) {
  DWI_REQUIRE(cfg.add_latency >= 1, "spmv: add latency >= 1");
  check_matrix(m, x);

  SpmvOutput out;
  out.y.assign(m.rows, 0.0f);
  WorkloadStats& stats = out.stats;

  hls::stream<RowRange> rows(cfg.stream_depth, "spmv.rows");
  std::uint32_t next_fetch = 0;  // next row the pointer work-item sends

  if (cfg.mode == SchedulingMode::kDynamic && m.rows > 0) {
    stats.cycles += cfg.pipeline_latency;  // one-time pipeline fill
  }

  for (std::uint32_t r = 0; r < m.rows; ++r) {
    // Row-pointer work-item: stay up to stream_depth rows ahead.
    while (next_fetch < m.rows &&
           rows.try_write(RowRange{next_fetch, m.row_ptr[next_fetch],
                                   m.row_ptr[next_fetch + 1]})) {
      ++next_fetch;
    }

    RowRange range;
    const bool got = rows.try_read(range);
    DWI_ASSERT(got);
    const std::uint32_t nnz = range.end - range.begin;

    // MAC work-item: accumulate in CSR order (both modes).
    float acc = 0.0f;
    for (std::uint32_t e = range.begin; e < range.end; ++e) {
      DWI_REQUIRE(m.col_idx[e] < m.cols, "spmv: column out of range");
      acc += m.values[e] * x[m.col_idx[e]];
    }
    out.y[range.row] = acc;
    ++stats.initiations;

    if (cfg.mode == SchedulingMode::kStatic) {
      // Variable trip count: II = add_latency inside the row (the
      // accumulator recurrence), then the pipeline drains before the
      // next row may issue.
      stats.cycles += static_cast<std::uint64_t>(nnz) * cfg.add_latency +
                      cfg.pipeline_latency;
      if (nnz > 0) {
        stats.hazard_stall_cycles +=
            static_cast<std::uint64_t>(nnz) * (cfg.add_latency - 1);
      }
      // Drain cycles: the MAC pipe runs empty at the row boundary.
      stats.pipe_empty_stall_cycles += cfg.pipeline_latency;
    } else {
      // Rows stream back-to-back at II = 1; only a row shorter than
      // the adder latency waits for its final sum to retire before
      // y[r] stores.
      stats.cycles += nnz > 0 ? nnz : 1u;
      if (nnz > 0 && nnz < cfg.add_latency) {
        const std::uint32_t tail = cfg.add_latency - nnz;
        stats.cycles += tail;
        stats.hazard_stall_cycles += tail;
      }
    }
  }

  // The pointer work-item issues one range per cycle and then blocks on
  // the full stream while the MAC side catches up.
  if (stats.cycles > m.rows) {
    stats.pipe_full_stall_cycles = stats.cycles - m.rows;
  }
  return out;
}

}  // namespace dwi::workloads
