// Histogram with read-after-write hazards — the zoo's address-collision
// kernel (sycl-playground's data-hazard exemplar, SNIPPETS.md).
//
// Two decoupled work-items: a fetch stage streams (bin, weight) updates
// through an hls::stream into an update stage that performs the
// read-modify-write `bins[bin] += weight`. The RMW takes
// `chain_latency` cycles (load, float add, store), so an update whose
// bin equals one still in flight is a RAW hazard:
//   kStatic  — the scheduler cannot prove two consecutive bins differ,
//     so it spaces EVERY update by chain_latency (II = chain_latency).
//   kDynamic — updates issue at II = 1; a ForwardingBuffer snoops each
//     bin against the in-flight window and only an ACTUAL collision
//     stalls, for `forward_stall` cycles, taking the in-flight sum off
//     the adder bypass instead of waiting for the store.
// Both modes apply updates in trace order, so the bins are bit-identical
// to histogram_oracle() — scheduling moves cycles, never values.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/scheduling.h"

namespace dwi::workloads {

struct HistogramConfig {
  std::uint32_t num_bins = 256;
  SchedulingMode mode = SchedulingMode::kDynamic;
  /// Cycles of the load→add→store chain on one bin.
  unsigned chain_latency = 4;
  /// Bubble cycles a forwarded collision costs under kDynamic (the
  /// bypass-mux delay); must be < chain_latency for forwarding to pay.
  unsigned forward_stall = 1;
  /// Depth of the fetch→update hls::stream.
  std::size_t stream_depth = 8;
};

struct HistogramOutput {
  std::vector<float> bins;
  WorkloadStats stats;
};

/// Cycle-level run of the two-work-item histogram. `addrs[i]` must be
/// < cfg.num_bins; `addrs` and `weights` must have equal length.
HistogramOutput run_histogram(const HistogramConfig& cfg,
                              const std::vector<std::uint32_t>& addrs,
                              const std::vector<float>& weights);

/// Scalar host oracle: the same updates in the same order, no timing.
std::vector<float> histogram_oracle(std::uint32_t num_bins,
                                    const std::vector<std::uint32_t>& addrs,
                                    const std::vector<float>& weights);

/// An update trace plus the generator that derives one from any uniform
/// u32 source (serve substreams, bench PRNGs) — two draws per update,
/// so consumption is deterministic.
struct HistogramTrace {
  std::vector<std::uint32_t> addrs;
  std::vector<float> weights;
};

/// `hot_fraction` of updates land on bin 0 (the colliding-trace knob
/// of the static-vs-dynamic comparison); the rest spread uniformly.
template <typename NextU32>
HistogramTrace make_histogram_trace(std::uint32_t updates,
                                    std::uint32_t num_bins,
                                    float hot_fraction, NextU32&& next) {
  HistogramTrace t;
  t.addrs.reserve(updates);
  t.weights.reserve(updates);
  const auto threshold = static_cast<std::uint64_t>(
      static_cast<double>(hot_fraction) * 4294967296.0);
  for (std::uint32_t i = 0; i < updates; ++i) {
    const std::uint32_t pick = next();
    const std::uint32_t raw_weight = next();
    const bool hot = static_cast<std::uint64_t>(pick) < threshold;
    t.addrs.push_back(hot ? 0u : pick % num_bins);
    // 24-bit mantissa load keeps the weight exact in a float.
    t.weights.push_back(static_cast<float>(raw_weight >> 8) *
                        (1.0f / 16777216.0f));
  }
  return t;
}

}  // namespace dwi::workloads
