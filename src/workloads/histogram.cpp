#include "workloads/histogram.h"

#include <optional>

#include "common/error.h"
#include "hls/stream.h"
#include "workloads/forwarding_buffer.h"

namespace dwi::workloads {

namespace {

struct Update {
  std::uint32_t addr = 0;
  float weight = 0.0f;
};

}  // namespace

std::vector<float> histogram_oracle(std::uint32_t num_bins,
                                    const std::vector<std::uint32_t>& addrs,
                                    const std::vector<float>& weights) {
  DWI_REQUIRE(num_bins >= 1, "histogram: need at least one bin");
  DWI_REQUIRE(addrs.size() == weights.size(),
              "histogram: addrs/weights length mismatch");
  std::vector<float> bins(num_bins, 0.0f);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    DWI_REQUIRE(addrs[i] < num_bins, "histogram: address out of range");
    bins[addrs[i]] += weights[i];
  }
  return bins;
}

HistogramOutput run_histogram(const HistogramConfig& cfg,
                              const std::vector<std::uint32_t>& addrs,
                              const std::vector<float>& weights) {
  DWI_REQUIRE(cfg.num_bins >= 1, "histogram: need at least one bin");
  DWI_REQUIRE(cfg.chain_latency >= 1, "histogram: chain latency >= 1");
  DWI_REQUIRE(cfg.forward_stall >= 1 &&
                  cfg.forward_stall < cfg.chain_latency,
              "histogram: forward stall must be in [1, chain_latency)");
  DWI_REQUIRE(addrs.size() == weights.size(),
              "histogram: addrs/weights length mismatch");

  HistogramOutput out;
  out.bins.assign(cfg.num_bins, 0.0f);

  // The in-flight window: an update issued k cycles ago,
  // k in [1, chain_latency-1], has not stored yet and must be snooped.
  const unsigned window =
      cfg.chain_latency > 1 ? cfg.chain_latency - 1 : 0;
  std::optional<ForwardingBuffer<std::uint32_t>> fb;
  if (cfg.mode == SchedulingMode::kDynamic && window > 0) {
    fb.emplace(window);
  }

  hls::stream<Update> channel(cfg.stream_depth, "hist.updates");
  const std::size_t n = addrs.size();
  std::size_t fetched = 0;    // next trace element the fetch stage sends
  std::size_t processed = 0;  // updates retired by the update stage
  unsigned stall = 0;         // update-stage bubble cycles outstanding
  WorkloadStats& stats = out.stats;

  // One iteration = one cycle; both work-items advance concurrently.
  // The update stage runs first within the cycle, so a value written by
  // the fetch stage is visible one cycle later — the FIFO's registered
  // output.
  while (processed < n) {
    // --- update work-item -------------------------------------------
    if (stall > 0) {
      --stall;
      ++stats.hazard_stall_cycles;
      if (fb) fb->push_bubble();
    } else {
      Update u;
      if (channel.try_read(u)) {
        DWI_REQUIRE(u.addr < cfg.num_bins,
                    "histogram: address out of range");
        out.bins[u.addr] += u.weight;  // trace order in both modes
        ++stats.initiations;
        ++processed;
        if (cfg.mode == SchedulingMode::kStatic) {
          // Conservative schedule: the next update may hit the same
          // bin, so it waits out the whole RMW chain.
          stall = cfg.chain_latency - 1;
        } else if (fb) {
          const bool collide = fb->snoop(u.addr);
          fb->push(u.addr);
          if (collide) {
            ++stats.forwarded;
            stall = cfg.forward_stall;
          }
        }
      } else {
        ++stats.pipe_empty_stall_cycles;
        if (fb) fb->push_bubble();
      }
    }

    // --- fetch work-item --------------------------------------------
    if (fetched < n) {
      if (channel.try_write(Update{addrs[fetched], weights[fetched]})) {
        ++fetched;
      } else {
        ++stats.pipe_full_stall_cycles;
      }
    }

    ++stats.cycles;
  }
  return out;
}

}  // namespace dwi::workloads
