#include "workloads/matching.h"

#include <optional>

#include "common/error.h"
#include "core/delayed_counter.h"
#include "workloads/forwarding_buffer.h"

namespace dwi::workloads {

namespace {

void check_graph(const EdgeList& g) {
  DWI_REQUIRE(g.num_vertices >= 1, "matching: need at least one vertex");
  DWI_REQUIRE(g.u.size() == g.v.size(),
              "matching: endpoint arrays must have equal length");
  for (std::size_t i = 0; i < g.u.size(); ++i) {
    DWI_REQUIRE(g.u[i] < g.num_vertices && g.v[i] < g.num_vertices,
                "matching: endpoint out of range");
  }
}

}  // namespace

MatchingOutput matching_oracle(const EdgeList& g,
                               std::uint32_t target_pairs) {
  check_graph(g);
  MatchingOutput out;
  out.match.assign(g.num_vertices, -1);
  for (std::size_t i = 0; i < g.u.size(); ++i) {
    if (target_pairs > 0 && out.pairs >= target_pairs) break;
    ++out.edges_examined;
    const std::uint32_t a = g.u[i];
    const std::uint32_t b = g.v[i];
    if (a != b && out.match[a] < 0 && out.match[b] < 0) {
      out.match[a] = static_cast<std::int32_t>(b);
      out.match[b] = static_cast<std::int32_t>(a);
      ++out.pairs;
    }
  }
  return out;
}

MatchingOutput run_matching(const MatchingConfig& cfg, const EdgeList& g) {
  DWI_REQUIRE(cfg.chain_latency >= 1, "matching: chain latency >= 1");
  DWI_REQUIRE(cfg.forward_stall >= 1 &&
                  cfg.forward_stall < cfg.chain_latency,
              "matching: forward stall must be in [1, chain_latency)");
  check_graph(g);

  MatchingOutput out;
  out.match.assign(g.num_vertices, -1);
  WorkloadStats& stats = out.stats;

  const bool quota = cfg.target_pairs > 0;
  core::DelayedCounter pairs_counter(cfg.break_id);

  // One in-flight window per endpoint lane: edge i's reads must snoop
  // both writes of any accepted edge still in the chain.
  const unsigned window =
      cfg.chain_latency > 1 ? cfg.chain_latency - 1 : 0;
  std::optional<ForwardingBuffer<std::uint32_t>> fb_u;
  std::optional<ForwardingBuffer<std::uint32_t>> fb_v;
  if (cfg.mode == SchedulingMode::kDynamic && window > 0) {
    fb_u.emplace(window);
    fb_v.emplace(window);
  }

  for (std::size_t i = 0; i < g.u.size(); ++i) {
    // Listing 2's shape: the exit reads the DELAYED pair count, so the
    // comparison never waits on this iteration's increment.
    pairs_counter.update_registers();
    if (quota && pairs_counter.delayed_value() >= cfg.target_pairs) break;

    ++out.edges_examined;
    ++stats.initiations;
    const std::uint32_t a = g.u[i];
    const std::uint32_t b = g.v[i];
    // Guarded write: the LIVE count gates the store, so the delayed
    // exit's overrun iterations can never take an extra pair.
    const bool take = a != b && out.match[a] < 0 && out.match[b] < 0 &&
                      (!quota || pairs_counter.value() < cfg.target_pairs);

    if (cfg.mode == SchedulingMode::kStatic) {
      // Conservative schedule: every edge, skips included, is assumed
      // to read what the edge ahead of it wrote.
      stats.cycles += cfg.chain_latency;
      stats.hazard_stall_cycles += cfg.chain_latency - 1;
    } else {
      stats.cycles += 1;
      bool collide = false;
      if (fb_u) {
        // Snoop both endpoints against both in-flight write lanes
        // (bitwise | keeps all four snoops counted).
        collide = static_cast<bool>(
            static_cast<unsigned>(fb_u->snoop(a)) |
            static_cast<unsigned>(fb_v->snoop(a)) |
            static_cast<unsigned>(fb_u->snoop(b)) |
            static_cast<unsigned>(fb_v->snoop(b)));
        if (take) {
          fb_u->push(a);
          fb_v->push(b);
        } else {
          fb_u->push_bubble();
          fb_v->push_bubble();
        }
      }
      if (collide) {
        ++stats.forwarded;
        stats.cycles += cfg.forward_stall;
        stats.hazard_stall_cycles += cfg.forward_stall;
        if (fb_u) {
          for (unsigned s = 0; s < cfg.forward_stall; ++s) {
            fb_u->push_bubble();
            fb_v->push_bubble();
          }
        }
      }
    }

    if (take) {
      out.match[a] = static_cast<std::int32_t>(b);
      out.match[b] = static_cast<std::int32_t>(a);
      pairs_counter.increment();
    } else {
      ++stats.skipped;  // the dynamic early exit: retire, write nothing
    }
  }
  out.pairs = pairs_counter.value();
  return out;
}

}  // namespace dwi::workloads
