#include "stats/chi_square.h"

#include <cmath>
#include <vector>

#include "common/error.h"
#include "stats/special.h"

namespace dwi::stats {

ChiSquareResult chi_square_test(const Histogram& hist,
                                const std::function<double(double)>& cdf,
                                double min_expected) {
  DWI_REQUIRE(hist.total() > 0, "chi_square_test: empty histogram");
  const double n = static_cast<double>(hist.total());

  // Cell probabilities: (-inf, lo], per-bin, [hi, inf).
  struct Cell {
    double observed;
    double expected;
  };
  std::vector<Cell> cells;
  cells.reserve(hist.bin_count() + 2);

  double prev_cdf = 0.0;
  {
    const double p_under = cdf(hist.lo());
    cells.push_back({static_cast<double>(hist.underflow()), n * p_under});
    prev_cdf = p_under;
  }
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    const double upper = hist.lo() + (static_cast<double>(b) + 1.0) *
                                         hist.bin_width();
    const double f = cdf(upper);
    cells.push_back({static_cast<double>(hist.count(b)), n * (f - prev_cdf)});
    prev_cdf = f;
  }
  cells.push_back({static_cast<double>(hist.overflow()), n * (1.0 - prev_cdf)});

  // Merge adjacent cells until every expected count reaches the minimum.
  std::vector<Cell> merged;
  Cell acc{0.0, 0.0};
  std::size_t merges = 0;
  for (const Cell& c : cells) {
    acc.observed += c.observed;
    acc.expected += c.expected;
    if (acc.expected >= min_expected) {
      merged.push_back(acc);
      acc = Cell{0.0, 0.0};
    } else {
      ++merges;
    }
  }
  if (acc.expected > 0.0 || acc.observed > 0.0) {
    if (!merged.empty()) {
      merged.back().observed += acc.observed;
      merged.back().expected += acc.expected;
    } else {
      merged.push_back(acc);
    }
  }
  DWI_REQUIRE(merged.size() >= 2,
              "chi_square_test: too few cells after merging");

  double x2 = 0.0;
  for (const Cell& c : merged) {
    const double diff = c.observed - c.expected;
    x2 += diff * diff / c.expected;
  }
  const std::size_t dof = merged.size() - 1;
  const double p = gamma_q(static_cast<double>(dof) / 2.0, x2 / 2.0);
  return ChiSquareResult{x2, dof, p, merges};
}

}  // namespace dwi::stats
