// A compact statistical test battery for uniform 32-bit generators —
// a TestU01-flavoured health check applied to every PRNG configuration
// the library ships (both Mersenne-Twister parameter sets, jumped
// streams, and the enable-gated adapted variant under random gating).
//
// Six classical tests, each reduced to a p-value:
//   1. bit-frequency   — every one of the 32 bit positions is fair;
//   2. runs            — runs above/below the median (Wald-Wolfowitz);
//   3. serial corr.    — lag-1..3 autocorrelation of the uniforms;
//   4. poker           — 4-bit nibble frequencies (chi-square);
//   5. gap             — gaps between visits to [0, 0.1) are geometric;
//   6. coupon          — draws needed to collect all 8 octants.
//
// These are health checks, not proofs: the full-period guarantee for
// MT(521) comes from rng/dcmt.h.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace dwi::stats {

struct BatteryTestResult {
  std::string name;
  double statistic = 0.0;
  double p_value = 1.0;
};

struct BatteryReport {
  std::vector<BatteryTestResult> results;

  /// All p-values above the rejection threshold.
  bool all_pass(double alpha = 1e-4) const;
  /// Smallest p-value across the battery.
  double min_p_value() const;
  void render(std::ostream& os) const;
};

/// Run the battery on `next_u32`, consuming ~`samples` draws per test.
BatteryReport run_battery(const std::function<std::uint32_t()>& next_u32,
                          std::uint64_t samples = 200'000);

}  // namespace dwi::stats
