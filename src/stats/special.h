// Special functions needed by the statistical validation suite:
// regularized incomplete gamma functions (for the gamma CDF and the
// chi-square test p-value) and the inverse error function used as the
// double-precision reference for the ICDF transforms.
#pragma once

namespace dwi::stats {

/// Regularized lower incomplete gamma function P(a, x) = γ(a,x)/Γ(a).
/// Domain: a > 0, x >= 0. Accurate to ~1e-14 (series / continued
/// fraction split at x = a + 1, Numerical-Recipes style).
double gamma_p(double a, double x);

/// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

/// Natural log of the complete gamma function (thin wrapper over
/// std::lgamma, kept here so every module shares one entry point).
double log_gamma(double a);

/// Inverse of the standard normal CDF Φ^{-1}(p), p in (0,1).
/// Acklam's rational approximation refined with one Halley step on
/// erfc, giving ~1e-15 relative accuracy — the library's ground-truth
/// reference for all single-precision ICDF implementations.
double inverse_normal_cdf(double p);

/// Inverse error function erfinv(x), x in (-1,1), double precision,
/// derived from inverse_normal_cdf.
double erf_inv(double x);

/// Inverse complementary error function erfcinv(x), x in (0,2).
double erfc_inv(double x);

/// Survival function of the Kolmogorov distribution:
/// Q_KS(λ) = 2 Σ_{j>=1} (-1)^{j-1} exp(-2 j^2 λ^2). Used to turn a KS
/// statistic into a p-value.
double kolmogorov_q(double lambda);

}  // namespace dwi::stats
