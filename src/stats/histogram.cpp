#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "common/error.h"

namespace dwi::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  DWI_REQUIRE(hi > lo, "histogram range must be non-empty");
  DWI_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // fp edge case
  ++counts_[bin];
}

void Histogram::add(std::span<const double> xs) {
  for (double x : xs) add(x);
}

void Histogram::add(std::span<const float> xs) {
  for (float x : xs) add(static_cast<double>(x));
}

double Histogram::bin_center(std::size_t bin) const {
  DWI_REQUIRE(bin < counts_.size(), "bin index out of range");
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::density(std::size_t bin) const {
  DWI_REQUIRE(bin < counts_.size(), "bin index out of range");
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) /
         (static_cast<double>(total_) * width_);
}

void Histogram::render(std::ostream& os,
                       const std::function<double(double)>& reference_pdf,
                       std::size_t max_bar_width) const {
  double max_density = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    max_density = std::max(max_density, density(b));
    if (reference_pdf) {
      const double ref = reference_pdf(bin_center(b));
      if (std::isfinite(ref)) max_density = std::max(max_density, ref);
    }
  }
  if (max_density <= 0.0) max_density = 1.0;

  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double d = density(b);
    const auto bar = static_cast<std::size_t>(
        std::lround(d / max_density * static_cast<double>(max_bar_width)));
    os << std::fixed << std::setprecision(3) << std::setw(8) << bin_center(b)
       << " | " << std::string(bar, '#');
    if (reference_pdf) {
      const double ref = reference_pdf(bin_center(b));
      if (std::isfinite(ref)) {
        const auto mark = static_cast<std::size_t>(std::lround(
            ref / max_density * static_cast<double>(max_bar_width)));
        if (mark > bar) {
          os << std::string(mark - bar, ' ') << '*';
        } else {
          os << '*';
        }
      }
    }
    os << '\n';
  }
  os << "samples=" << total_ << " underflow=" << underflow_
     << " overflow=" << overflow_ << '\n';
}

}  // namespace dwi::stats
