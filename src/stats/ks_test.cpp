#include "stats/ks_test.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "stats/special.h"

namespace dwi::stats {

namespace {

KsResult ks_on_sorted(std::vector<double>& xs,
                      const std::function<double(double)>& cdf) {
  DWI_REQUIRE(!xs.empty(), "ks_test: empty sample");
  std::sort(xs.begin(), xs.end());
  const double n = static_cast<double>(xs.size());
  double d = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double f = cdf(xs[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::fabs(f - lo), std::fabs(hi - f)});
  }
  const double sqrt_n = std::sqrt(n);
  // Stephens' small-sample correction for the asymptotic distribution.
  const double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
  return KsResult{d, kolmogorov_q(lambda), xs.size()};
}

}  // namespace

KsResult ks_test(std::span<const double> sample,
                 const std::function<double(double)>& cdf) {
  std::vector<double> xs(sample.begin(), sample.end());
  return ks_on_sorted(xs, cdf);
}

KsResult ks_test(std::span<const float> sample,
                 const std::function<double(double)>& cdf) {
  std::vector<double> xs(sample.begin(), sample.end());
  return ks_on_sorted(xs, cdf);
}

}  // namespace dwi::stats
