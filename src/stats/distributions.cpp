#include "stats/distributions.h"

#include <cmath>
#include <limits>
#include <numbers>

#include "common/error.h"
#include "stats/special.h"

namespace dwi::stats {

double normal_pdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

double gamma_pdf(double x, double shape, double scale) {
  DWI_REQUIRE(shape > 0.0 && scale > 0.0,
              "gamma_pdf: shape and scale must be positive");
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    // Density at the origin: 0 for shape > 1, 1/scale for shape == 1,
    // +inf for shape < 1 (we clamp to a large finite value for plotting).
    if (shape > 1.0) return 0.0;
    if (shape == 1.0) return 1.0 / scale;
    return std::numeric_limits<double>::infinity();
  }
  const double z = x / scale;
  const double log_pdf =
      (shape - 1.0) * std::log(z) - z - log_gamma(shape) - std::log(scale);
  return std::exp(log_pdf);
}

double gamma_cdf(double x, double shape, double scale) {
  DWI_REQUIRE(shape > 0.0 && scale > 0.0,
              "gamma_cdf: shape and scale must be positive");
  if (x <= 0.0) return 0.0;
  return gamma_p(shape, x / scale);
}

double gamma_quantile(double p, double shape, double scale) {
  DWI_REQUIRE(p >= 0.0 && p < 1.0, "gamma_quantile: p must be in [0,1)");
  if (p == 0.0) return 0.0;
  // Bracket: mean + k stddev grows until the CDF exceeds p.
  double hi = shape * scale + 10.0 * std::sqrt(shape) * scale;
  while (gamma_cdf(hi, shape, scale) < p) hi *= 2.0;
  double lo = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (gamma_cdf(mid, shape, scale) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-13 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

GammaParams GammaParams::from_sector_variance(double v) {
  DWI_REQUIRE(v > 0.0, "sector variance must be positive");
  return GammaParams{1.0 / v, v};
}

}  // namespace dwi::stats
