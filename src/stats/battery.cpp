#include "stats/battery.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <ostream>

#include "common/bits.h"
#include "common/error.h"
#include "stats/distributions.h"
#include "stats/special.h"

namespace dwi::stats {

namespace {

using Source = std::function<std::uint32_t()>;

double two_sided_normal_p(double z) {
  return std::erfc(std::fabs(z) / std::sqrt(2.0));
}

double chi_square_p(double x2, unsigned dof) {
  return gamma_q(dof / 2.0, x2 / 2.0);
}

BatteryTestResult bit_frequency(const Source& gen, std::uint64_t n) {
  std::array<std::uint64_t, 32> ones{};
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint32_t v = gen();
    for (unsigned b = 0; b < 32; ++b) {
      ones[b] += (v >> b) & 1u;
    }
  }
  // Chi-square over the 32 positions (each ~ Binomial(n, 1/2)).
  double x2 = 0.0;
  const double expected = static_cast<double>(n) / 2.0;
  for (unsigned b = 0; b < 32; ++b) {
    const double d = static_cast<double>(ones[b]) - expected;
    x2 += d * d / (expected / 2.0);
  }
  return {"bit-frequency", x2, chi_square_p(x2, 32)};
}

BatteryTestResult runs_test(const Source& gen, std::uint64_t n) {
  std::uint64_t runs = 1;
  std::uint64_t n_above = 0;
  bool prev = (gen() >> 31) != 0;
  if (prev) ++n_above;
  for (std::uint64_t i = 1; i < n; ++i) {
    const bool cur = (gen() >> 31) != 0;
    if (cur) ++n_above;
    if (cur != prev) ++runs;
    prev = cur;
  }
  const double n1 = static_cast<double>(n_above);
  const double n2 = static_cast<double>(n - n_above);
  const double mean = 2.0 * n1 * n2 / (n1 + n2) + 1.0;
  const double var = (mean - 1.0) * (mean - 2.0) / (n1 + n2 - 1.0);
  const double z = (static_cast<double>(runs) - mean) / std::sqrt(var);
  return {"runs", z, two_sided_normal_p(z)};
}

BatteryTestResult serial_correlation(const Source& gen, std::uint64_t n) {
  // Worst (smallest p) over lags 1..3, Bonferroni-corrected.
  std::vector<double> xs(n);
  for (auto& x : xs) x = uint2double(gen());
  double worst_p = 1.0;
  double worst_stat = 0.0;
  for (unsigned lag = 1; lag <= 3; ++lag) {
    double sum = 0.0;
    for (std::uint64_t i = 0; i + lag < n; ++i) {
      sum += (xs[i] - 0.5) * (xs[i + lag] - 0.5);
    }
    const double m = static_cast<double>(n - lag);
    // Var[(U-1/2)(V-1/2)] = 1/144 for independent uniforms.
    const double z = sum / std::sqrt(m / 144.0);
    const double p = two_sided_normal_p(z) * 3.0;  // Bonferroni
    if (p < worst_p) {
      worst_p = p;
      worst_stat = z;
    }
  }
  return {"serial-correlation", worst_stat, std::min(1.0, worst_p)};
}

BatteryTestResult poker_test(const Source& gen, std::uint64_t n) {
  std::array<std::uint64_t, 16> counts{};
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint32_t v = gen();
    for (unsigned nib = 0; nib < 8; ++nib) {
      ++counts[(v >> (nib * 4)) & 0xF];
      ++total;
    }
  }
  const double expected = static_cast<double>(total) / 16.0;
  double x2 = 0.0;
  for (auto c : counts) {
    const double d = static_cast<double>(c) - expected;
    x2 += d * d / expected;
  }
  return {"poker(4-bit)", x2, chi_square_p(x2, 15)};
}

BatteryTestResult gap_test(const Source& gen, std::uint64_t n) {
  // Gaps between visits to [0, 0.1): Geometric(p = 0.1); chi-square
  // over gap lengths 0..19 and the 20+ tail.
  constexpr double kP = 0.1;
  constexpr unsigned kMaxGap = 20;
  std::array<std::uint64_t, kMaxGap + 1> counts{};
  std::uint64_t gap = 0;
  std::uint64_t gaps_seen = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (uint2double(gen()) < kP) {
      ++counts[std::min<std::uint64_t>(gap, kMaxGap)];
      ++gaps_seen;
      gap = 0;
    } else {
      ++gap;
    }
  }
  DWI_REQUIRE(gaps_seen > 200, "gap test needs more samples");
  double x2 = 0.0;
  for (unsigned g = 0; g <= kMaxGap; ++g) {
    const double prob = g < kMaxGap
                            ? kP * std::pow(1.0 - kP, g)
                            : std::pow(1.0 - kP, kMaxGap);
    const double expected = prob * static_cast<double>(gaps_seen);
    const double d = static_cast<double>(counts[g]) - expected;
    x2 += d * d / expected;
  }
  return {"gap", x2, chi_square_p(x2, kMaxGap)};
}

BatteryTestResult coupon_test(const Source& gen, std::uint64_t n) {
  // Draws needed to see all 8 octants; compare mean against the
  // coupon-collector expectation 8·H_8 ≈ 21.743 with a z-test
  // (variance 8²·Σ(1−1/i)/i² ≈ 36.26... computed exactly below).
  constexpr unsigned kCells = 8;
  double expected_mean = 0.0;
  double expected_var = 0.0;
  for (unsigned i = 1; i <= kCells; ++i) {
    expected_mean += static_cast<double>(kCells) / i;
    const double p = static_cast<double>(i) / kCells;  // success prob
    expected_var += (1.0 - p) / (p * p);
  }
  std::uint64_t collections = 0;
  double sum_draws = 0.0;
  unsigned seen_mask = 0;
  std::uint64_t draws = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    ++draws;
    seen_mask |= 1u << (gen() >> 29);
    if (seen_mask == 0xFFu) {
      sum_draws += static_cast<double>(draws);
      ++collections;
      seen_mask = 0;
      draws = 0;
    }
  }
  DWI_REQUIRE(collections > 100, "coupon test needs more samples");
  const double mean = sum_draws / static_cast<double>(collections);
  const double z = (mean - expected_mean) /
                   std::sqrt(expected_var / static_cast<double>(collections));
  return {"coupon(octants)", z, two_sided_normal_p(z)};
}

}  // namespace

bool BatteryReport::all_pass(double alpha) const {
  return std::all_of(results.begin(), results.end(),
                     [&](const auto& r) { return r.p_value > alpha; });
}

double BatteryReport::min_p_value() const {
  double p = 1.0;
  for (const auto& r : results) p = std::min(p, r.p_value);
  return p;
}

void BatteryReport::render(std::ostream& os) const {
  for (const auto& r : results) {
    os << "  " << r.name << ": stat=" << r.statistic
       << " p=" << r.p_value << "\n";
  }
}

BatteryReport run_battery(const std::function<std::uint32_t()>& next_u32,
                          std::uint64_t samples) {
  DWI_REQUIRE(samples >= 50'000, "battery needs at least 50k samples");
  BatteryReport report;
  report.results.push_back(bit_frequency(next_u32, samples));
  report.results.push_back(runs_test(next_u32, samples));
  report.results.push_back(serial_correlation(next_u32, samples));
  report.results.push_back(poker_test(next_u32, samples / 4));
  report.results.push_back(gap_test(next_u32, samples));
  report.results.push_back(coupon_test(next_u32, samples));
  return report;
}

}  // namespace dwi::stats
