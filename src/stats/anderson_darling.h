// Anderson-Darling goodness-of-fit test against a fully specified
// CDF. Compared to Kolmogorov-Smirnov it weights the tails by
// 1/(F(1−F)), which is where the gamma distributions of this library
// differ when an implementation is subtly wrong (e.g. a clipped
// correction term) — KS can miss what A-D catches.
#pragma once

#include <functional>
#include <span>

namespace dwi::stats {

struct AdResult {
  double a2 = 0.0;        ///< the A² statistic
  double a2_star = 0.0;   ///< small-sample adjusted A²*
  double p_value = 1.0;   ///< case-0 (fully specified) approximation
  std::size_t n = 0;
};

/// One-sample A-D test of `sample` against `cdf` (distribution fully
/// specified, no fitted parameters). Sample is copied and sorted.
AdResult anderson_darling_test(std::span<const double> sample,
                               const std::function<double(double)>& cdf);
AdResult anderson_darling_test(std::span<const float> sample,
                               const std::function<double(double)>& cdf);

}  // namespace dwi::stats
