// Fixed-bin histogram used to reproduce Fig 6 (empirical gamma
// distribution vs analytic reference) and to drive chi-square tests.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <vector>

namespace dwi::stats {

class Histogram {
 public:
  /// Equal-width bins over [lo, hi); samples outside land in the
  /// underflow/overflow counters.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add(std::span<const double> xs);
  void add(std::span<const float> xs);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const { return width_; }
  double bin_center(std::size_t bin) const;

  /// Empirical density of a bin: count / (total * bin_width).
  double density(std::size_t bin) const;

  /// Render an ASCII bar plot, optionally overlaying a reference density
  /// (marked with '*' at the reference height) — the textual analogue of
  /// Fig 6's "gray area vs dotted line".
  void render(std::ostream& os,
              const std::function<double(double)>& reference_pdf = nullptr,
              std::size_t max_bar_width = 60) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace dwi::stats
