#include "stats/moments.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace dwi::stats {

void RunningMoments::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

void RunningMoments::add(std::span<const double> xs) {
  for (double x : xs) add(x);
}

void RunningMoments::add(std::span<const float> xs) {
  for (float x : xs) add(static_cast<double>(x));
}

void RunningMoments::merge(const RunningMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ +
                    delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 =
      m4_ + other.m4_ +
      delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ = (na * mean_ + nb * other.mean_) / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningMoments::mean() const {
  DWI_REQUIRE(n_ > 0, "mean of empty sample");
  return mean_;
}

double RunningMoments::variance() const {
  DWI_REQUIRE(n_ > 1, "variance needs at least two samples");
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningMoments::stddev() const { return std::sqrt(variance()); }

double RunningMoments::skewness() const {
  DWI_REQUIRE(n_ > 2, "skewness needs at least three samples");
  const double n = static_cast<double>(n_);
  if (m2_ <= 0.0) return 0.0;
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double RunningMoments::excess_kurtosis() const {
  DWI_REQUIRE(n_ > 3, "kurtosis needs at least four samples");
  const double n = static_cast<double>(n_);
  if (m2_ <= 0.0) return 0.0;
  return n * m4_ / (m2_ * m2_) - 3.0;
}

}  // namespace dwi::stats
