#include "stats/anderson_darling.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"

namespace dwi::stats {

namespace {

double case0_p_value(double a2) {
  // Marsaglia & Marsaglia (2004) style piecewise approximation for the
  // fully specified case; accurate to ~1e-3 over the useful range.
  if (a2 <= 0.0) return 1.0;
  if (a2 < 2.0) {
    return 1.0 - std::exp(-1.2337141 / a2) / std::sqrt(a2) *
                     (2.00012 + (0.247105 -
                                 (0.0649821 - (0.0347962 -
                                               (0.011672 - 0.00168691 * a2) *
                                                   a2) *
                                                  a2) *
                                     a2) *
                                    a2);
  }
  const double p = std::exp(
      1.0776 - (2.30695 - (0.43424 - (0.082433 -
                                      (0.008056 - 0.0003146 * a2) * a2) *
                                         a2) *
                              a2) *
                   a2);
  return std::clamp(p, 0.0, 1.0);
}

AdResult ad_on_sorted(std::vector<double>& xs,
                      const std::function<double(double)>& cdf) {
  DWI_REQUIRE(xs.size() >= 8, "anderson_darling_test: need >= 8 samples");
  std::sort(xs.begin(), xs.end());
  const auto n = xs.size();
  const double dn = static_cast<double>(n);

  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double fi = cdf(xs[i]);
    double fj = cdf(xs[n - 1 - i]);
    // Clamp away from the log singularities (float-tail samples can
    // evaluate to exactly 0 or 1 in the reference CDF).
    fi = std::clamp(fi, 1e-300, 1.0 - 1e-16);
    fj = std::clamp(fj, 1e-300, 1.0 - 1e-16);
    s += (2.0 * static_cast<double>(i) + 1.0) *
         (std::log(fi) + std::log1p(-fj));
  }
  AdResult r;
  r.n = n;
  r.a2 = -dn - s / dn;
  r.a2_star = r.a2 * (1.0 + 0.75 / dn + 2.25 / (dn * dn));
  r.p_value = case0_p_value(r.a2_star);
  return r;
}

}  // namespace

AdResult anderson_darling_test(std::span<const double> sample,
                               const std::function<double(double)>& cdf) {
  std::vector<double> xs(sample.begin(), sample.end());
  return ad_on_sorted(xs, cdf);
}

AdResult anderson_darling_test(std::span<const float> sample,
                               const std::function<double(double)>& cdf) {
  std::vector<double> xs(sample.begin(), sample.end());
  return ad_on_sorted(xs, cdf);
}

}  // namespace dwi::stats
