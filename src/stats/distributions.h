// Analytic probability distributions used for validation (Fig 6) and by
// the CreditRisk+ application: standard normal, and the gamma
// distribution in the paper's (shape a, scale b) parameterization with
// E[X] = a·b and Var[X] = a·b².
//
// In the CreditRisk+ setup (§II-D4) each sector S_k ~ Gamma(a_k, b_k)
// with a_k = 1/v_k, b_k = v_k so that E[S_k] = 1, Var[S_k] = v_k.
#pragma once

namespace dwi::stats {

/// Standard normal density φ(x).
double normal_pdf(double x);

/// Standard normal CDF Φ(x).
double normal_cdf(double x);

/// Gamma(shape, scale) density at x (0 for x < 0).
double gamma_pdf(double x, double shape, double scale);

/// Gamma(shape, scale) CDF at x.
double gamma_cdf(double x, double shape, double scale);

/// Quantile of Gamma(shape, scale): smallest x with CDF(x) >= p.
/// Computed by bisection on gamma_cdf (robust; validation-only path).
double gamma_quantile(double p, double shape, double scale);

/// Parameters of a CreditRisk+ sector with variance v: shape = 1/v,
/// scale = v (unit mean).
struct GammaParams {
  double shape = 1.0;
  double scale = 1.0;

  static GammaParams from_sector_variance(double v);
  double mean() const { return shape * scale; }
  double variance() const { return shape * scale * scale; }
};

}  // namespace dwi::stats
