#include "stats/special.h"

#include <cmath>
#include <limits>
#include <numbers>

#include "common/error.h"

namespace dwi::stats {

namespace {

// Series expansion of P(a,x), converges fast for x < a + 1.
double gamma_p_series(double a, double x) {
  const double gln = std::lgamma(a);
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - gln);
}

// Continued fraction for Q(a,x) (modified Lentz), converges for x >= a + 1.
double gamma_q_cont_fraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  const double gln = std::lgamma(a);
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-16) break;
  }
  return std::exp(-x + a * std::log(x) - gln) * h;
}

}  // namespace

double gamma_p(double a, double x) {
  DWI_REQUIRE(a > 0.0 && x >= 0.0, "gamma_p: need a > 0, x >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cont_fraction(a, x);
}

double gamma_q(double a, double x) {
  DWI_REQUIRE(a > 0.0 && x >= 0.0, "gamma_q: need a > 0, x >= 0");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cont_fraction(a, x);
}

double log_gamma(double a) { return std::lgamma(a); }

double inverse_normal_cdf(double p) {
  DWI_REQUIRE(p > 0.0 && p < 1.0, "inverse_normal_cdf: p must be in (0,1)");

  // Acklam's rational approximation (relative error < 1.15e-9), then one
  // Halley refinement against the exact CDF expressed via erfc, pushing
  // the result to near machine precision.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // Halley: e = Φ(x) - p, u = e / φ(x), x -= u / (1 + x u / 2).
  const double e = 0.5 * std::erfc(-x / std::numbers::sqrt2) - p;
  const double u =
      e * std::sqrt(2.0 * std::numbers::pi) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double erf_inv(double x) {
  DWI_REQUIRE(x > -1.0 && x < 1.0, "erf_inv: x must be in (-1,1)");
  // erf^{-1}(x) = Φ^{-1}((x + 1) / 2) / sqrt(2)
  return inverse_normal_cdf(0.5 * (x + 1.0)) / std::sqrt(2.0);
}

double erfc_inv(double x) {
  DWI_REQUIRE(x > 0.0 && x < 2.0, "erfc_inv: x must be in (0,2)");
  return erf_inv(1.0 - x);
}

double kolmogorov_q(double lambda) {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term =
        std::exp(-2.0 * static_cast<double>(j) * static_cast<double>(j) *
                 lambda * lambda);
    sum += sign * term;
    if (term < 1e-16) break;
    sign = -sign;
  }
  const double q = 2.0 * sum;
  return q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
}

}  // namespace dwi::stats
