// Pearson chi-square goodness-of-fit test over a Histogram against an
// analytic CDF, with tail bins merged until every expected count is at
// least a configurable minimum (the classic >= 5 rule).
#pragma once

#include <functional>

#include "stats/histogram.h"

namespace dwi::stats {

struct ChiSquareResult {
  double statistic = 0.0;
  std::size_t dof = 0;     ///< degrees of freedom after merging
  double p_value = 1.0;    ///< upper-tail probability Q(dof/2, X²/2)
  std::size_t merged_bins = 0;
};

/// Test `hist` against the distribution with CDF `cdf`. Underflow and
/// overflow counters are folded into the first/last cells so the test
/// covers the full support.
ChiSquareResult chi_square_test(const Histogram& hist,
                                const std::function<double(double)>& cdf,
                                double min_expected = 5.0);

}  // namespace dwi::stats
