// Single-pass running moments (mean, variance, skewness, excess
// kurtosis) with the numerically stable Welford/Pébay update. Used to
// validate every RNG transform against its analytic moments.
#pragma once

#include <cstdint>
#include <span>

namespace dwi::stats {

class RunningMoments {
 public:
  void add(double x);
  void add(std::span<const double> xs);
  void add(std::span<const float> xs);

  /// Merge another accumulator (parallel reduction support).
  void merge(const RunningMoments& other);

  std::uint64_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator).
  double variance() const;
  double stddev() const;
  /// Sample skewness g1.
  double skewness() const;
  /// Sample excess kurtosis g2.
  double excess_kurtosis() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dwi::stats
