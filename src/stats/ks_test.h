// One-sample Kolmogorov-Smirnov test against an analytic CDF.
// Used to validate every generated distribution (uniform, normal,
// gamma) against its reference, reproducing Fig 6's comparison
// quantitatively instead of by eye.
#pragma once

#include <functional>
#include <span>

namespace dwi::stats {

struct KsResult {
  double statistic = 0.0;  ///< sup_x |F_n(x) - F(x)|
  double p_value = 1.0;    ///< asymptotic Kolmogorov p-value
  std::size_t n = 0;
};

/// Compute the KS statistic of `sample` against `cdf`. The sample is
/// copied and sorted internally.
KsResult ks_test(std::span<const double> sample,
                 const std::function<double(double)>& cdf);
KsResult ks_test(std::span<const float> sample,
                 const std::function<double(double)>& cdf);

}  // namespace dwi::stats
