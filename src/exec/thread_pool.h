// Host-side parallel execution engine.
//
// The paper's whole argument (Fig 3) is that N work-items with no data
// dependencies between them can run fully decoupled, synchronizing
// only at the shared memory channel. The simulators exploit the same
// independence on the host: embarrassingly parallel units of work
// (SIMT sample partitions, per-work-item compute pipelines, whole
// kernel launches) are sharded over one process-wide thread pool.
//
// Determinism contract: parallelism here never changes results. Work
// is identified by *shard index*, not by worker thread — every shard
// derives its RNG streams and writes its results from that index
// (parallel_for.h), and reductions run in index order on the calling
// thread. Run-to-run and thread-count-to-thread-count outputs are
// bit-identical; tests/test_exec.cpp enforces this.
//
// Thread count resolution (ExecConfig): the DWI_THREADS environment
// variable when set, else std::thread::hardware_concurrency. A set
// DWI_THREADS must be a positive decimal count no larger than
// kMaxThreads — anything else (empty, "0", non-numeric, absurd) throws
// dwi::Error instead of silently misconfiguring the pool. Benches
// override it programmatically (set_thread_count) for their --threads
// sweeps. DWI_THREADS=1 disables the pool entirely: every call site
// degrades to the plain serial loop.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

namespace dwi::exec {

/// Thread-count configuration for the process-wide pool.
struct ExecConfig {
  /// Upper bound on an explicit thread count: beyond this a request is
  /// certainly a typo or a unit mixup (e.g. a byte count), not a pool
  /// size any host supports.
  static constexpr unsigned kMaxThreads = 4096;

  /// Total threads doing work (callers participate, so a pool of
  /// `threads` uses `threads - 1` workers). 0 = auto.
  unsigned threads = 0;

  /// Parse an explicit DWI_THREADS value. Accepts only a plain
  /// positive decimal in [1, kMaxThreads]; throws dwi::Error for
  /// empty, non-numeric, zero, negative, or out-of-range text. Never
  /// returns 0.
  static unsigned parse_threads(std::string_view text);

  /// Read DWI_THREADS from the environment: unset means auto; a set
  /// value goes through parse_threads (so a bad value throws instead
  /// of being silently ignored).
  static ExecConfig from_env();

  /// Resolve auto to the hardware concurrency (at least 1).
  unsigned resolved() const;
};

/// Fixed-size worker pool executing submitted tasks FIFO.
///
/// This is deliberately minimal: parallel_for builds the structured,
/// exception-safe, deterministic layer on top. Raw submit() tasks must
/// not throw.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Enqueue a task. Tasks may be executed on any worker, in any
  /// order relative to other tasks, possibly long after the caller
  /// moved on — they must own (or share ownership of) everything they
  /// touch.
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

/// Effective thread count: the set_thread_count override, else
/// ExecConfig::from_env().resolved(). Always >= 1.
unsigned thread_count();

/// Override the thread count (0 = back to the environment default).
/// Resizes the global pool on the next global_pool() call; only call
/// when no parallel work is in flight (benches between sweep points).
void set_thread_count(unsigned threads);

/// The process-wide pool, sized to thread_count() - 1 workers.
/// Constructed lazily on first use.
ThreadPool& global_pool();

}  // namespace dwi::exec
