#include "exec/thread_pool.h"

#include <cstdlib>
#include <memory>
#include <string>

#include "common/error.h"

namespace dwi::exec {

unsigned ExecConfig::parse_threads(std::string_view text) {
  DWI_REQUIRE(!text.empty(),
              "DWI_THREADS is set but empty; unset it for the hardware "
              "default or give a thread count in [1, 4096]");
  unsigned long v = 0;
  for (const char c : text) {
    DWI_REQUIRE(c >= '0' && c <= '9',
                "DWI_THREADS must be a plain positive decimal (got \"" +
                    std::string(text) + "\")");
    v = v * 10ul + static_cast<unsigned long>(c - '0');
    DWI_REQUIRE(v <= kMaxThreads,
                "DWI_THREADS=" + std::string(text) + " exceeds the sanity "
                "cap of " + std::to_string(kMaxThreads) + " threads");
  }
  DWI_REQUIRE(v > 0,
              "DWI_THREADS=0 is not a valid thread count; unset the "
              "variable for the hardware default or use DWI_THREADS=1 "
              "for serial execution");
  return static_cast<unsigned>(v);
}

ExecConfig ExecConfig::from_env() {
  ExecConfig cfg;
  if (const char* env = std::getenv("DWI_THREADS")) {
    cfg.threads = parse_threads(env);
  }
  return cfg;
}

unsigned ExecConfig::resolved() const {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers) {
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  DWI_ASSERT(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
unsigned g_thread_override = 0;  // 0 = use the environment

unsigned effective_threads_locked() {
  if (g_thread_override > 0) return g_thread_override;
  return ExecConfig::from_env().resolved();
}

}  // namespace

unsigned thread_count() {
  std::lock_guard lock(g_pool_mutex);
  return effective_threads_locked();
}

void set_thread_count(unsigned threads) {
  std::unique_ptr<ThreadPool> retired;
  {
    std::lock_guard lock(g_pool_mutex);
    g_thread_override = threads;
    // Retire a mismatched pool now; global_pool() rebuilds on demand.
    if (g_pool && g_pool->workers() + 1 != effective_threads_locked()) {
      retired = std::move(g_pool);
    }
  }
  // Joins outside the lock (workers never take g_pool_mutex).
  retired.reset();
}

ThreadPool& global_pool() {
  std::lock_guard lock(g_pool_mutex);
  const unsigned want_workers = effective_threads_locked() - 1;
  if (!g_pool || g_pool->workers() != want_workers) {
    g_pool.reset();  // join the old pool before replacing it
    g_pool = std::make_unique<ThreadPool>(want_workers);
  }
  return *g_pool;
}

}  // namespace dwi::exec
