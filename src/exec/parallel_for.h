// Structured, deterministic parallel loops over the global pool.
//
// parallel_for(n, f) runs f(0..n-1) with the calling thread
// participating: helper tasks are submitted to the pool, every thread
// (caller included) claims indices from a shared atomic counter, and
// the call returns once all n iterations completed. Because the caller
// always makes progress, nesting is safe — an inner parallel_for
// inside a pool task degrades gracefully instead of deadlocking, and
// the whole process shares one pool (no oversubscription spiral).
//
// Determinism: the *schedule* (which thread runs which index, in what
// order) is nondeterministic; anything affecting results must
// therefore depend only on the index. parallel_map writes slot i from
// f(i) and parallel_reduce folds the slots in index order on the
// caller — floating-point sums come out bit-identical for any thread
// count, which is what lets the simulators use these loops without
// perturbing calibrated outputs (tests/test_exec.cpp pins this).
//
// Exceptions: the first exception thrown by any f(i) is captured and
// rethrown on the calling thread after all claimed iterations drain;
// unclaimed indices are abandoned.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"

namespace dwi::exec {

namespace detail {

struct ParallelForState {
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr error;  // first failure, guarded by mutex

  void finish_one() {
    if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      // Lock so the notify cannot race ahead of the waiter's predicate
      // check (classic missed-wakeup guard).
      std::lock_guard lock(mutex);
      cv.notify_all();
    }
  }

  void fail(std::exception_ptr e) {
    {
      std::lock_guard lock(mutex);
      if (!error) error = std::move(e);
    }
    failed.store(true, std::memory_order_release);
  }
};

/// Claim-and-run loop shared by the caller and the helper tasks.
/// Every index is claimed and counted even after a failure (its body
/// is just skipped), so `done` always converges to n and the waiter
/// cannot hang. `f` is only dereferenced for claimed in-range indices,
/// so a helper dequeued after parallel_for returned touches nothing
/// stale.
template <typename F>
void drain(ParallelForState& st, F* f) {
  for (;;) {
    const std::size_t i = st.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= st.n) return;
    if (!st.failed.load(std::memory_order_acquire)) {
      try {
        (*f)(i);
      } catch (...) {
        st.fail(std::current_exception());
      }
    }
    st.finish_one();
  }
}

}  // namespace detail

/// Run f(i) for every i in [0, n), in parallel over the global pool.
template <typename F>
void parallel_for(std::size_t n, F&& f) {
  if (n == 0) return;
  ThreadPool& pool = global_pool();
  const std::size_t helpers =
      std::min<std::size_t>(pool.workers(), n - 1);
  if (helpers == 0) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }

  auto st = std::make_shared<detail::ParallelForState>();
  st->n = n;
  using Fn = std::remove_reference_t<F>;
  Fn* fp = &f;
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([st, fp] { detail::drain(*st, fp); });
  }
  detail::drain(*st, fp);

  std::unique_lock lock(st->mutex);
  st->cv.wait(lock, [&] {
    return st->done.load(std::memory_order_acquire) == st->n;
  });
  if (st->error) std::rethrow_exception(st->error);
}

/// Map i -> f(i) into a vector, slot i written by iteration i only:
/// the result is independent of the schedule. R must be
/// default-constructible and move-assignable.
template <typename F>
auto parallel_map(std::size_t n, F&& f)
    -> std::vector<decltype(f(std::size_t{0}))> {
  std::vector<decltype(f(std::size_t{0}))> out(n);
  parallel_for(n, [&](std::size_t i) { out[i] = f(i); });
  return out;
}

/// Deterministic reduction: compute the n partial results in parallel,
/// then fold them *in index order* on the calling thread —
/// acc = reduce(move(acc), part[0]), then part[1], ... — so
/// non-associative folds (floating-point accumulation) match the
/// serial loop bit-for-bit.
template <typename T, typename F, typename R>
T parallel_reduce(std::size_t n, T init, F&& f, R&& reduce) {
  auto parts = parallel_map(n, std::forward<F>(f));
  T acc = std::move(init);
  for (auto& p : parts) acc = reduce(std::move(acc), std::move(p));
  return acc;
}

}  // namespace dwi::exec
