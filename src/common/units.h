// Unit-carrying value types used across the timing and power models.
//
// The simulators mix three time bases (FPGA cycles, seconds, host
// milliseconds) and two data bases (bytes, 512-bit beats); keeping them
// as distinct vocabulary types prevents the classic cycles-vs-ns mixups.
#pragma once

#include <cstdint>

namespace dwi {

/// A count of FPGA clock cycles.
struct Cycles {
  std::uint64_t value = 0;

  constexpr Cycles() = default;
  constexpr explicit Cycles(std::uint64_t v) : value(v) {}

  constexpr Cycles operator+(Cycles o) const { return Cycles{value + o.value}; }
  constexpr Cycles operator-(Cycles o) const { return Cycles{value - o.value}; }
  constexpr Cycles& operator+=(Cycles o) {
    value += o.value;
    return *this;
  }
  constexpr auto operator<=>(const Cycles&) const = default;

  /// Convert to seconds at a given clock frequency.
  constexpr double seconds_at(double hz) const {
    return static_cast<double>(value) / hz;
  }
  constexpr double milliseconds_at(double hz) const {
    return seconds_at(hz) * 1e3;
  }
};

/// Seconds as a double, tagged.
struct Seconds {
  double value = 0.0;
  constexpr Seconds() = default;
  constexpr explicit Seconds(double v) : value(v) {}
  constexpr double milliseconds() const { return value * 1e3; }
  constexpr Seconds operator+(Seconds o) const { return Seconds{value + o.value}; }
  constexpr Seconds operator-(Seconds o) const { return Seconds{value - o.value}; }
  constexpr auto operator<=>(const Seconds&) const = default;
};

/// Bytes as an unsigned count, tagged.
struct Bytes {
  std::uint64_t value = 0;
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t v) : value(v) {}
  constexpr double gigabytes() const {
    return static_cast<double>(value) / 1e9;
  }
  constexpr Bytes operator+(Bytes o) const { return Bytes{value + o.value}; }
  constexpr auto operator<=>(const Bytes&) const = default;
};

/// Bandwidth in bytes/second derived from tagged quantities.
constexpr double bandwidth_gbps(Bytes bytes, Seconds t) {
  return bytes.gigabytes() / t.value;
}

/// Energy in joules, tagged.
struct Joules {
  double value = 0.0;
  constexpr Joules() = default;
  constexpr explicit Joules(double v) : value(v) {}
  constexpr Joules operator+(Joules o) const { return Joules{value + o.value}; }
  constexpr Joules operator-(Joules o) const { return Joules{value - o.value}; }
  constexpr auto operator<=>(const Joules&) const = default;
};

/// Watts, tagged.
struct Watts {
  double value = 0.0;
  constexpr Watts() = default;
  constexpr explicit Watts(double v) : value(v) {}
  constexpr Watts operator+(Watts o) const { return Watts{value + o.value}; }
  constexpr auto operator<=>(const Watts&) const = default;
};

constexpr Joules operator*(Watts p, Seconds t) {
  return Joules{p.value * t.value};
}

}  // namespace dwi
