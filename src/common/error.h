// Error handling for the dwi library.
//
// The library throws dwi::Error (a std::runtime_error) on contract
// violations that are recoverable from the caller's point of view
// (bad configuration, protocol misuse of the mini-OpenCL runtime, ...).
// Hard internal invariants use DWI_ASSERT, which aborts.
#pragma once

#include <stdexcept>
#include <string>

namespace dwi {

/// Exception type thrown by all dwi components on contract violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* cond, const char* file, int line,
                              const std::string& msg);
[[noreturn]] void assert_fail(const char* cond, const char* file, int line);
}  // namespace detail

}  // namespace dwi

/// Throw dwi::Error with location info when `cond` is false.
/// Use for caller-facing contract checks (always on, release included).
#define DWI_REQUIRE(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::dwi::detail::throw_error(#cond, __FILE__, __LINE__, (msg));     \
    }                                                                   \
  } while (0)

/// Abort on violated internal invariant. Always on: the simulators are
/// deterministic and an inconsistent simulator state must never produce
/// silently wrong timing numbers.
#define DWI_ASSERT(cond)                                                \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::dwi::detail::assert_fail(#cond, __FILE__, __LINE__);            \
    }                                                                   \
  } while (0)
