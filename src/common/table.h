// Minimal console table printer used by the benchmark harness to emit
// the paper's tables/figure series as aligned text (and optionally CSV).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dwi {

/// Builds a column-aligned text table. Cells are strings; helpers format
/// numbers with a fixed precision. Rendering pads every column to its
/// widest cell, mirroring how the paper's tables read.
class TextTable {
 public:
  /// Set the header row. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Append a horizontal separator line.
  void add_separator();

  /// Render to an output stream with ASCII borders. Setting the
  /// environment variable DWI_FORMAT=csv switches to CSV output (all
  /// bench binaries become plotting-script-friendly at once).
  void render(std::ostream& os) const;

  /// Render rows as CSV (header first, separators skipped).
  void render_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

  /// Format helpers used by the bench binaries.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);
  static std::string percent(double fraction, int precision = 2);

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace dwi
