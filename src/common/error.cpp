#include "common/error.h"

#include <cstdio>
#include <cstdlib>

namespace dwi::detail {

void throw_error(const char* cond, const char* file, int line,
                 const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) +
              ": requirement failed: (" + cond + "): " + msg);
}

void assert_fail(const char* cond, const char* file, int line) {
  std::fprintf(stderr, "%s:%d: internal invariant violated: (%s)\n", file,
               line, cond);
  std::abort();
}

}  // namespace dwi::detail
