// Reusable per-thread scratch buffers for block-batched hot paths.
//
// The batched sampling pipeline (rng::generate_block feeding the
// batched normal transforms and the Marsaglia-Tsang rejection loop)
// needs a handful of u32/f32/u8 staging arrays per chunk. Allocating
// them per call would put malloc back on the hot path the batching
// just removed; storing them inside every work-item would bloat
// objects that tests construct by the hundreds. Instead each worker
// thread owns one BlockArena whose slots grow monotonically and are
// reused across calls — zero allocation in steady state, and safe
// under src/exec's thread pool because the arena is thread_local.
//
// Usage contract: u32(slot, count) returns a pointer to at least
// `count` elements; the pointer stays valid until the next request
// for the SAME slot (possibly by another object on the same thread),
// so callers must finish consuming a slot before any callee that
// might touch the arena reuses it. Slots are namespaced per element
// type; contents are uninitialized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dwi::common {

class BlockArena {
 public:
  static constexpr std::size_t kSlots = 8;

  std::uint32_t* u32(std::size_t slot, std::size_t count) {
    return grow(u32_[slot], count);
  }
  float* f32(std::size_t slot, std::size_t count) {
    return grow(f32_[slot], count);
  }
  std::uint8_t* u8(std::size_t slot, std::size_t count) {
    return grow(u8_[slot], count);
  }

 private:
  template <typename T>
  static T* grow(std::vector<T>& v, std::size_t count) {
    if (v.size() < count) v.resize(count);
    return v.data();
  }

  std::vector<std::uint32_t> u32_[kSlots];
  std::vector<float> f32_[kSlots];
  std::vector<std::uint8_t> u8_[kSlots];
};

/// The calling thread's arena (one per thread, created on first use;
/// lives until thread exit, so steady-state calls never allocate once
/// the high-water marks are reached).
inline BlockArena& thread_block_arena() {
  thread_local BlockArena arena;
  return arena;
}

}  // namespace dwi::common
