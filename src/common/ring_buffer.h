// Fixed-capacity single-threaded ring buffer.
//
// Used by the FPGA timing simulator to model hls::stream FIFO occupancy
// (where capacity == the stream depth set by #pragma HLS STREAM) and by
// the memory-channel arbitration queue. Unlike dwi::hls::stream it is
// non-blocking and single-threaded: the discrete-event engine polls
// full()/empty() explicitly, exactly as RTL handshake signals would.
//
// THREADING CONTRACT: this class performs no synchronization. It may
// migrate between threads (the exec engine hands whole work-item
// simulations to pool workers), but at most one thread may touch a
// given instance at a time, with a happens-before edge on every
// handoff — which exec::parallel_for's claim/complete protocol
// provides. Two threads that need a shared queue must use
// hls::stream (blocking, mutex-based) or SpscRingBuffer
// (common/spsc_ring_buffer.h, lock-free single-producer/single-
// consumer). Debug builds enforce the contract: every mutating or
// reading accessor asserts that no other access is in flight.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/error.h"

#ifndef DWI_RING_BUFFER_CHECKS
#ifdef NDEBUG
#define DWI_RING_BUFFER_CHECKS 0
#else
#define DWI_RING_BUFFER_CHECKS 1
#endif
#endif

#if DWI_RING_BUFFER_CHECKS
#include <atomic>
#endif

namespace dwi {

#if DWI_RING_BUFFER_CHECKS
namespace detail {

/// Debug-only concurrent-access detector. Copy/move of the owning
/// buffer resets the flag (a fresh object has no access in flight).
struct RingBufferAccessFlag {
  std::atomic<unsigned> in_flight{0};
  RingBufferAccessFlag() = default;
  RingBufferAccessFlag(const RingBufferAccessFlag&) noexcept {}
  RingBufferAccessFlag& operator=(const RingBufferAccessFlag&) noexcept {
    return *this;
  }
};

class RingBufferAccessScope {
 public:
  explicit RingBufferAccessScope(RingBufferAccessFlag& flag) : flag_(flag) {
    const unsigned prior =
        flag_.in_flight.fetch_add(1, std::memory_order_acq_rel);
    DWI_ASSERT(prior == 0 && "concurrent RingBuffer access: the "
               "single-threaded contract is violated");
  }
  ~RingBufferAccessScope() {
    flag_.in_flight.fetch_sub(1, std::memory_order_acq_rel);
  }
  RingBufferAccessScope(const RingBufferAccessScope&) = delete;
  RingBufferAccessScope& operator=(const RingBufferAccessScope&) = delete;

 private:
  RingBufferAccessFlag& flag_;
};

}  // namespace detail
#define DWI_RING_BUFFER_GUARD() \
  ::dwi::detail::RingBufferAccessScope dwi_rb_guard_(access_flag_)
#else
#define DWI_RING_BUFFER_GUARD() \
  do {                          \
  } while (0)
#endif

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : slots_(capacity), capacity_(capacity) {
    DWI_REQUIRE(capacity > 0, "ring buffer capacity must be positive");
  }

  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

  /// Insert an element; the buffer must not be full.
  void push(T value) {
    DWI_RING_BUFFER_GUARD();
    DWI_ASSERT(size_ != capacity_);
    slots_[tail_] = std::move(value);
    tail_ = next(tail_);
    ++size_;
  }

  /// Attempt to insert; returns false when full.
  bool try_push(T value) {
    if (full()) return false;
    push(std::move(value));
    return true;
  }

  /// Look at the oldest element; the buffer must not be empty.
  const T& front() const {
    DWI_ASSERT(!empty());
    return slots_[head_];
  }

  /// Remove and return the oldest element; the buffer must not be empty.
  T pop() {
    DWI_RING_BUFFER_GUARD();
    DWI_ASSERT(size_ != 0);
    T value = std::move(slots_[head_]);
    head_ = next(head_);
    --size_;
    return value;
  }

  void clear() {
    DWI_RING_BUFFER_GUARD();
    head_ = tail_ = 0;
    size_ = 0;
  }

 private:
  std::size_t next(std::size_t i) const {
    return i + 1 == capacity_ ? 0 : i + 1;
  }

  std::vector<T> slots_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
#if DWI_RING_BUFFER_CHECKS
  mutable detail::RingBufferAccessFlag access_flag_;
#endif
};

}  // namespace dwi
