// Fixed-capacity single-threaded ring buffer.
//
// Used by the FPGA timing simulator to model hls::stream FIFO occupancy
// (where capacity == the stream depth set by #pragma HLS STREAM) and by
// the memory-channel arbitration queue. Unlike dwi::hls::stream it is
// non-blocking and single-threaded: the discrete-event engine polls
// full()/empty() explicitly, exactly as RTL handshake signals would.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/error.h"

namespace dwi {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : slots_(capacity), capacity_(capacity) {
    DWI_REQUIRE(capacity > 0, "ring buffer capacity must be positive");
  }

  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

  /// Insert an element; the buffer must not be full.
  void push(T value) {
    DWI_ASSERT(!full());
    slots_[tail_] = std::move(value);
    tail_ = next(tail_);
    ++size_;
  }

  /// Attempt to insert; returns false when full.
  bool try_push(T value) {
    if (full()) return false;
    push(std::move(value));
    return true;
  }

  /// Look at the oldest element; the buffer must not be empty.
  const T& front() const {
    DWI_ASSERT(!empty());
    return slots_[head_];
  }

  /// Remove and return the oldest element; the buffer must not be empty.
  T pop() {
    DWI_ASSERT(!empty());
    T value = std::move(slots_[head_]);
    head_ = next(head_);
    --size_;
    return value;
  }

  void clear() {
    head_ = tail_ = 0;
    size_ = 0;
  }

 private:
  std::size_t next(std::size_t i) const {
    return i + 1 == capacity_ ? 0 : i + 1;
  }

  std::vector<T> slots_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dwi
