// Small bit-manipulation helpers shared by the RNG transforms, the
// arbitrary-precision types and the FPGA resource model.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace dwi {

/// Reinterpret the bit pattern of a float as a 32-bit unsigned integer.
inline std::uint32_t float_to_bits(float f) {
  return std::bit_cast<std::uint32_t>(f);
}

/// Reinterpret a 32-bit unsigned integer bit pattern as a float.
inline float bits_to_float(std::uint32_t u) { return std::bit_cast<float>(u); }

/// Number of leading zeros of a 32-bit value; 32 when x == 0.
inline int count_leading_zeros(std::uint32_t x) {
  return x == 0 ? 32 : std::countl_zero(x);
}

/// Number of leading zeros of a 64-bit value; 64 when x == 0.
inline int count_leading_zeros(std::uint64_t x) {
  return x == 0 ? 64 : std::countl_zero(x);
}

/// ceil(a / b) for positive integers.
template <typename T>
constexpr T ceil_div(T a, T b) {
  static_assert(std::is_integral_v<T>);
  return static_cast<T>((a + b - 1) / b);
}

/// Round `a` up to the next multiple of `b`.
template <typename T>
constexpr T round_up(T a, T b) {
  return ceil_div(a, b) * b;
}

/// True when x is a power of two (and nonzero).
constexpr bool is_power_of_two(std::uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Convert a 32-bit uniform integer to a float in [0, 1).
/// This mirrors the paper's `uint2float` helper used in Listing 2.
/// Only the top 24 bits are used — a float mantissa cannot hold more,
/// and naive u · 2^-32 rounds the largest inputs up to exactly 1.0f.
inline float uint2float(std::uint32_t u) {
  return static_cast<float>(u >> 8) * 0x1.0p-24f;
}

/// Convert a 32-bit uniform integer to a float in (0, 1): never exactly
/// zero or one, so it is safe on either side of log()/pow(). Used by
/// the rejection and correction uniforms.
inline float uint2float_open0(std::uint32_t u) {
  // 23 bits + the half-offset fit a 24-bit mantissa exactly, so the
  // largest result is 1 - 2^-24, strictly below one.
  return (static_cast<float>(u >> 9) + 0.5f) * 0x1.0p-23f;
}

/// Convert a 32-bit uniform integer to a double in [0, 1).
inline double uint2double(std::uint32_t u) {
  return static_cast<double>(u) * 0x1.0p-32;
}

}  // namespace dwi
