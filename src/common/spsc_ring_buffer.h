// Lock-free single-producer / single-consumer ring buffer.
//
// The concurrency-safe counterpart of common/ring_buffer.h for the one
// sharing pattern the codebase needs under the exec thread pool: one
// thread produces, one thread consumes, both non-blocking — the same
// handshake an RTL FIFO implements in hardware. hls::stream remains
// the *blocking* channel (mutex + condvar, used by the dataflow
// processes); this class is for polling producers/consumers that must
// not sleep, e.g. pipelines bridged between a pool worker and the
// scheduling thread.
//
// Contract: exactly one thread calls try_push (the producer), exactly
// one thread calls try_pop (the consumer), concurrently and without
// external locking. size()/empty()/full() are approximations when
// called from "the other side" — exact only on the calling side of
// the respective index.
//
// Implementation: classic Lamport queue. One slot is sacrificed to
// distinguish full from empty, indices are acquire/release atomics,
// and each index is written by exactly one side.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/error.h"

namespace dwi {

template <typename T>
class SpscRingBuffer {
 public:
  explicit SpscRingBuffer(std::size_t capacity)
      : slots_(capacity + 1), ring_(capacity + 1) {
    DWI_REQUIRE(capacity > 0, "ring buffer capacity must be positive");
  }

  SpscRingBuffer(const SpscRingBuffer&) = delete;
  SpscRingBuffer& operator=(const SpscRingBuffer&) = delete;

  std::size_t capacity() const { return ring_ - 1; }

  /// Producer side. Returns false when full.
  bool try_push(T value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next_tail = next(tail);
    if (next_tail == head_.load(std::memory_order_acquire)) {
      return false;  // full
    }
    slots_[tail] = std::move(value);
    tail_.store(next_tail, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) {
      return false;  // empty
    }
    out = std::move(slots_[head]);
    head_.store(next(head), std::memory_order_release);
    return true;
  }

  /// Exact from the consumer; conservative from the producer.
  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Occupancy snapshot (exact only when one side is quiescent).
  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : ring_ - head + tail;
  }

 private:
  std::size_t next(std::size_t i) const {
    return i + 1 == ring_ ? 0 : i + 1;
  }

  std::vector<T> slots_;
  std::size_t ring_;  ///< capacity + 1 (one slot distinguishes full)
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace dwi
