#include "common/table.h"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string_view>

#include "common/error.h"

namespace dwi {

void TextTable::set_header(std::vector<std::string> header) {
  DWI_REQUIRE(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  DWI_REQUIRE(row.size() == header_.size(),
              "row arity must match header arity");
  rows_.push_back(Row{false, std::move(row)});
}

void TextTable::add_separator() { rows_.push_back(Row{true, {}}); }

void TextTable::render(std::ostream& os) const {
  // DWI_FORMAT=csv switches every bench table to machine-readable
  // output (plotting scripts) without touching the binaries.
  if (const char* fmt = std::getenv("DWI_FORMAT");
      fmt != nullptr && std::string_view(fmt) == "csv") {
    render_csv(os);
    return;
  }
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& r : rows_) {
    if (r.separator) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }

  auto print_rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << '\n';
  };

  print_rule();
  print_cells(header_);
  print_rule();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].separator) {
      // A trailing separator would double the closing rule.
      if (i + 1 < rows_.size()) print_rule();
    } else {
      print_cells(rows_[i].cells);
    }
  }
  print_rule();
}

void TextTable::render_csv(std::ostream& os) const {
  auto print_csv_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  print_csv_row(header_);
  for (const Row& r : rows_) {
    if (!r.separator) print_csv_row(r.cells);
  }
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string TextTable::integer(long long v) { return std::to_string(v); }

std::string TextTable::percent(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

}  // namespace dwi
