#include "core/delayed_counter.h"

#include <algorithm>

namespace dwi::core {

DelayedCounter::DelayedCounter(unsigned break_id)
    : break_id_(break_id), prev_(break_id + 1, 0) {
  DWI_REQUIRE(break_id < 16, "break id unreasonably large");
}

unsigned achieved_initiation_interval(unsigned counter_chain_latency,
                                      unsigned delay_iterations) {
  DWI_REQUIRE(counter_chain_latency >= 1, "chain latency must be >= 1");
  // Recurrence-constrained minimum II (Rau): the counter cycle has
  // `counter_chain_latency` cycles of latency and a total dependence
  // distance of 1 + delay_iterations (the loop back-edge plus the
  // shift-register delay) — II = ceil(latency / distance). The
  // modulo-scheduling model in fpga/scheduler.h derives the same
  // value from the full Listing 2 dependence graph (tested).
  const unsigned distance = 1 + delay_iterations;
  return std::max(1u, (counter_chain_latency + distance - 1) / distance);
}

}  // namespace dwi::core
