// Listing 1: DecoupledWorkItems — the paper's central design pattern.
//
// N OpenCL work-items are instantiated as N independent pipelines
// inside a single Task, each split into a compute function (GammaRNG)
// and a Transfer function connected by a blocking hls::stream, all
// scheduled concurrently by #pragma HLS DATAFLOW. A work-item's
// data-dependent branches (rejections) therefore never stall any other
// work-item — Fig 2c's "hardware partitions of one work-item each".
//
// This is the functional execution of that structure: every process
// runs on its own thread (hls::DataflowRegion), the streams enforce the
// real FIFO handshakes, and the transfer units write into the shared
// device buffer at wid-based offsets (§III-E2 device-level combining).
// The matching host-level combining strategy (§III-E1: N device
// buffers gathered into one host buffer by N offset reads) is also
// provided for the ablation bench.
//
// The pattern is generic: any ProducerFactory-compatible compute
// function can replace GammaRNG (§V: "can be easily reused or
// customized to any application") — see examples/custom_rejection_kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/gamma_work_item.h"
#include "core/transfer_unit.h"
#include "hls/stream.h"

namespace dwi::core {

/// A compute process: writes exactly `total_floats` validated values to
/// the stream, then returns. GammaWorkItem provides the paper's kernel;
/// custom applications provide their own.
using ComputeFn =
    std::function<void(unsigned wid, hls::stream<float>& out,
                       std::uint64_t total_floats)>;

struct DecoupledConfig {
  unsigned work_items = 6;
  std::uint64_t floats_per_work_item = 16 * 1024;
  unsigned words_per_burst = 16;   ///< LTRANSF
  std::size_t stream_depth = 64;   ///< gammaStream FIFO depth
};

/// Result of one Task invocation.
struct DecoupledResult {
  /// The device global-memory buffer, one contiguous slice per
  /// work-item (device-level combining: a single buffer).
  std::vector<MemoryWord> device_buffer;
  std::uint64_t total_floats = 0;

  /// Unpack everything into floats, in work-item-major order.
  std::vector<float> to_floats() const;
  /// Unpack one work-item's slice.
  std::vector<float> work_item_slice(unsigned wid, std::uint64_t floats_per_wi)
      const;
};

/// Run the DecoupledWorkItems Task: 2N concurrent processes (compute +
/// transfer per work-item) under dataflow semantics.
DecoupledResult run_decoupled_work_items(const DecoupledConfig& cfg,
                                         const ComputeFn& compute);

/// Convenience: the paper's kernel. Builds one GammaWorkItem per wid
/// from `make_config(wid)` and runs the Task.
DecoupledResult run_gamma_task(
    const DecoupledConfig& cfg,
    const std::function<GammaWorkItemConfig(unsigned wid)>& make_config);

/// §III-E1: host-level combining — each work-item writes its own device
/// buffer; the host enqueues N reads, each landing at offset
/// wid·L/N of one host buffer. Returns the combined host buffer; used
/// by the ablation bench to show functional equivalence of the two
/// strategies.
std::vector<float> combine_buffers_at_host(
    const std::vector<std::vector<MemoryWord>>& per_wi_buffers,
    std::uint64_t floats_per_wi);

}  // namespace dwi::core
