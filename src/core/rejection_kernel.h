// The paper's §V generalization, made a first-class library facility:
//
//   "The DecoupledWorkItems function in Listing 1, as well as the
//    Transfer block in Listing 4, can be easily reused or customized
//    to any application. The designer just needs to rewrite the
//    application function in Listing 2."
//
// RejectionWorkItem<Attempt> is that rewrite reduced to its essence:
// the designer supplies only the per-iteration attempt (uniforms in,
// optional value out); the template supplies everything Listing 2
// scaffolds around it — the enable-gated uniform sources (Listing 3
// discipline, so rejected iterations never distort the streams), the
// delayed-counter loop exit at II = 1, the guarded quota write, and
// the fpga::ProducerModel interface that plugs into both the
// functional dataflow Task and the cycle-level timing simulation.
//
// The Attempt contract:
//   struct MyAttempt {
//     static constexpr unsigned kUniformSources = 2;  // gated MTs
//     // `u` delivers this iteration's uniform from source s; calling
//     // it *commits* that source's state (enable = true); skipping it
//     // leaves the stream untouched.
//     template <typename U>
//     bool operator()(U&& u, float* value);
//   };
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/delayed_counter.h"
#include "fpga/kernel_sim.h"
#include "rng/mersenne_twister.h"

namespace dwi::core {

struct RejectionKernelConfig {
  rng::MtParams mt = rng::mt521_params();
  std::uint32_t quota = 1000;       ///< validated outputs (limitMain)
  std::uint32_t limit_max = 0;      ///< 0 = derive with rejection headroom
  unsigned break_id = 0;            ///< delayed-counter register index
  unsigned work_item_id = 0;
  std::uint32_t seed = 1;
};

template <typename Attempt>
class RejectionWorkItem final : public fpga::ProducerModel {
 public:
  static constexpr unsigned kSources = Attempt::kUniformSources;

  explicit RejectionWorkItem(const RejectionKernelConfig& cfg,
                             Attempt attempt = {})
      : cfg_(cfg), attempt_(std::move(attempt)), counter_(cfg.break_id),
        limit_max_(cfg.limit_max != 0 ? cfg.limit_max
                                      : cfg.quota * 8u + 1024u) {
    DWI_REQUIRE(cfg.quota > 0, "rejection kernel needs a positive quota");
    sources_.reserve(kSources);
    for (unsigned s = 0; s < kSources; ++s) {
      sources_.emplace_back(cfg.mt, derive_seed(s));
    }
  }

  /// One MAINLOOP initiation (II = 1 with the delayed counter).
  bool produce(float* value) override {
    if (finished_) return false;
    if (k_ >= limit_max_ || counter_.delayed_value() >= cfg_.quota) {
      finished_ = true;
      return false;
    }
    ++k_;
    ++iterations_;
    counter_.update_registers();

    // The attempt pulls uniforms through the gated accessor: every
    // source it touches this iteration commits; untouched sources
    // observe-without-commit next time — Listing 3's discipline.
    unsigned calls = 0;
    auto uniform = [this, &calls](unsigned source) -> std::uint32_t {
      DWI_ASSERT(source < kSources);
      ++calls;
      return sources_[source].next(true);
    };
    float v = 0.0f;
    const bool valid = attempt_(uniform, &v);
    (void)calls;

    if (valid && counter_.value() < cfg_.quota) {
      counter_.increment();
      ++outputs_;
      *value = v;
      return true;
    }
    return false;
  }

  bool finished() const { return finished_; }
  std::uint64_t iterations() const { return iterations_; }
  std::uint64_t outputs() const { return outputs_; }
  double rejection_rate() const {
    return iterations_ == 0 ? 0.0
                            : 1.0 - static_cast<double>(outputs_) /
                                        static_cast<double>(iterations_);
  }

 private:
  std::uint32_t derive_seed(unsigned stream) const {
    std::uint64_t z = (static_cast<std::uint64_t>(cfg_.seed) << 32) ^
                      (cfg_.work_item_id * 0x9e3779b97f4a7c15ull) ^
                      (stream * 0xbf58476d1ce4e5b9ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::uint32_t>(z >> 32) | 1u;
  }

  RejectionKernelConfig cfg_;
  Attempt attempt_;
  std::vector<rng::AdaptedMersenneTwister> sources_;
  DelayedCounter counter_;
  std::uint32_t k_ = 0;
  std::uint32_t limit_max_;
  bool finished_ = false;
  std::uint64_t iterations_ = 0;
  std::uint64_t outputs_ = 0;
};

}  // namespace dwi::core
