// Stage kernels of the inter-kernel CreditRisk+ chain (finance/pipeline):
// uniform RNG → normal transform → gamma rejection, factored so that the
// *same* kernel bodies run in both execution modes —
//
//   staged: each kernel runs to completion, materializing its whole
//     output before the next kernel launches (host round-trips, the
//     pre-pipe OpenCL baseline);
//   piped:  all kernels resident at once, chained by hls::Pipe
//     (fpga::PipelineSim is the cycle-level model of the same shape).
//
// Bit-identity between the modes is by construction: every kernel is a
// pure function of its input bundles, and bundles for one sector flow
// through FIFO pipes in round order, so per-sector outputs cannot
// depend on pipe depths or kernel overlap.
//
// Uniform-tape contract (the pipeline analogue of the Philox
// sample_block tape in rng/gamma.h): sector k's stream is consumed in
// fixed-size rounds of `round` attempts; round r draws, in block order,
//     ua[round], (ub[round] when the transform takes two uniforms),
//     u1[round], (u2[round] when the sector's α < 1)
// — a data-INdependent layout. The i-th *valid* normal of a round is
// tested against u1[i], the j-th *accepted* candidate corrected with
// u2[j]; surplus u1/u2 entries are discarded. The accepted-variate
// sequence of a sector is therefore a pure function of the stream
// alone: any execution that consumes rounds in order reproduces the
// same prefix bit for bit, no matter how many extra rounds it ran.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "rng/gamma.h"
#include "rng/jump.h"
#include "rng/mersenne_twister.h"
#include "rng/normal.h"
#include "rng/philox.h"
#include "rng/stream_strategy.h"

namespace dwi::core {

/// One round of raw uniforms for one sector (output of the uniform
/// kernel). Blocks that the sector's layout does not use stay empty.
struct RoundBundle {
  std::uint32_t sector = 0;
  std::uint64_t round = 0;  ///< per-sector round index (diagnostics)
  std::vector<std::uint32_t> ua;
  std::vector<std::uint32_t> ub;
  std::vector<std::uint32_t> u1;
  std::vector<std::uint32_t> u2;
};

/// Output of the normal-transform kernel: the round's valid normals,
/// compacted, with the rejection/correction uniforms passed through.
struct CandidateBundle {
  std::uint32_t sector = 0;
  std::uint64_t round = 0;
  std::uint64_t attempts = 0;  ///< round size (for rejection stats)
  std::vector<float> n0;       ///< compacted valid normals
  std::vector<std::uint32_t> u1;
  std::vector<std::uint32_t> u2;
};

/// Output of the gamma-rejection kernel for one bundle: accepted
/// variates (scaled, α<1-corrected), still per sector.
struct AcceptedBlock {
  std::uint32_t sector = 0;
  std::vector<float> values;
};

/// How the per-sector master substreams are derived from `seed`.
struct StreamConfig {
  rng::StreamStrategy strategy = rng::StreamStrategy::kCounterBased;
  std::uint32_t seed = 1;
  std::uint64_t stride = 1ull << 26;  ///< master outputs per sector
  rng::MtParams jump_params;          ///< kJumpAhead geometry (MT(521))

  StreamConfig() : jump_params(rng::mt521_params()) {}
};

/// Uniform RNG kernel: owns one substream per sector (jump-ahead
/// MT(521), counter-based Philox, or the paper's distinct-seed
/// MT19937) and emits fixed-layout RoundBundles on demand.
class UniformKernel {
 public:
  /// `constants[k]` decides whether sector k's layout includes u2
  /// (α < 1); `transform` whether it includes ub.
  UniformKernel(const StreamConfig& cfg, rng::NormalTransform transform,
                std::vector<rng::GammaConstants> constants,
                std::size_t round);

  std::size_t num_sectors() const { return constants_.size(); }
  std::size_t round() const { return round_; }

  /// Produce sector `k`'s next round. Rounds for one sector must be
  /// taken in order (the kernel advances k's stream).
  RoundBundle next_round(std::size_t k);

  /// Rounds produced so far for sector `k`.
  std::uint64_t rounds_produced(std::size_t k) const {
    return rounds_[k];
  }

 private:
  struct SectorStream {
    std::optional<rng::MersenneTwister> mt;
    std::optional<rng::Philox> px;
    void generate(std::uint32_t* out, std::size_t n) {
      if (px) {
        px->generate_block(out, n);
      } else {
        mt->generate_block(out, n);
      }
    }
  };

  rng::NormalTransform transform_;
  std::vector<rng::GammaConstants> constants_;
  std::size_t round_;
  std::vector<SectorStream> streams_;
  std::vector<std::uint64_t> rounds_;
};

/// Normal-transform kernel: one bundle in, one bundle out. Applies the
/// block transform (rng/normal.h) and compacts the valid normals; the
/// u1/u2 blocks ride through untouched.
CandidateBundle normal_kernel(rng::NormalTransform transform,
                              RoundBundle bundle);

/// Gamma-rejection kernel: Marsaglia-Tsang predicate + α<1 correction
/// over one candidate bundle (vectorized, rng/simd_kernels.h). Pure:
/// carries no cross-bundle state.
class GammaRejectKernel {
 public:
  explicit GammaRejectKernel(std::vector<rng::GammaConstants> constants);

  AcceptedBlock run(const CandidateBundle& bundle);

  /// Attempt/acceptance totals across every bundle run (the paper's
  /// combined rejection rate, §IV-E).
  std::uint64_t attempts() const { return attempts_; }
  std::uint64_t accepted() const { return accepted_; }

 private:
  std::vector<rng::GammaConstants> constants_;
  std::uint64_t attempts_ = 0;
  std::uint64_t accepted_ = 0;
};

/// Expected accepted variates per round attempt for sizing staged
/// epochs: P(valid normal) · P(accept | valid), the second factor the
/// Marsaglia-Tsang squeeze-region estimate (~0.95 for the shapes the
/// CreditRisk+ sectors use).
double expected_accept_per_attempt(rng::NormalTransform transform);

}  // namespace dwi::core
