#include "core/fpga_app.h"

#include <memory>
#include <vector>

#include "common/error.h"
#include "core/delayed_counter.h"
#include "core/gamma_work_item.h"
#include "fpga/resource_model.h"

namespace dwi::core {

unsigned config_burst_beats(const rng::AppConfig& config) {
  // Calibrated against §IV-E's measured transfer bandwidths: 16 beats
  // (256 RNs) for the Marsaglia-Bray designs, 18 beats (288 RNs) for
  // the ICDF designs, whose smaller per-work-item datapath leaves BRAM
  // for a slightly deeper transfer buffer.
  return config.uses_marsaglia_bray ? 16u : 18u;
}

unsigned config_initiation_interval(bool use_delayed_counter) {
  // The counter recurrence is increment → exit-compare: 2 cycles of
  // latency around the loop back-edge. Naive counter: distance 1 →
  // II = 2. Delayed counter (breakId = 0, "a delay of one cycle"):
  // one extra register of distance → II = 1, exactly the paper's
  // finding. fpga::gamma_mainloop_graph derives the same values.
  constexpr unsigned kCounterChainLatency = 2;
  return use_delayed_counter
             ? achieved_initiation_interval(kCounterChainLatency, 1)
             : achieved_initiation_interval(kCounterChainLatency, 0);
}

FpgaRunResult run_fpga_application(const rng::AppConfig& config,
                                   const FpgaWorkload& workload,
                                   std::uint32_t seed,
                                   bool use_delayed_counter) {
  DWI_REQUIRE(workload.scale_divisor >= 1, "scale divisor must be >= 1");

  const auto& dev = fpga::adm_pcie_7v3();
  FpgaRunResult result;
  result.work_items = fpga::max_work_items(dev, config);
  result.burst_beats = config_burst_beats(config);

  // Scaled per-work-item workload: each work-item covers its share of
  // the scenarios across every sector (SECLOOP).
  const std::uint64_t scenarios_sim =
      std::max<std::uint64_t>(16, workload.num_scenarios /
                                      (workload.scale_divisor *
                                       result.work_items));
  // Keep the transfer slice beat-aligned (16 floats).
  const std::uint64_t outputs_per_sector = (scenarios_sim / 16) * 16;
  const std::uint64_t quota =
      outputs_per_sector * workload.num_sectors;

  fpga::KernelSimConfig sim_cfg;
  sim_cfg.work_items = result.work_items;
  sim_cfg.initiation_interval =
      config_initiation_interval(use_delayed_counter);
  sim_cfg.burst_beats = result.burst_beats;
  sim_cfg.outputs_per_work_item = quota;

  const unsigned n_wi = result.work_items;
  result.sim = fpga::simulate_kernel(
      sim_cfg, [&](unsigned wid) -> std::unique_ptr<fpga::ProducerModel> {
        GammaWorkItemConfig wcfg;
        wcfg.app = config;
        wcfg.sector_variances.assign(workload.num_sectors,
                                     workload.sector_variance);
        wcfg.outputs_per_sector =
            static_cast<std::uint32_t>(outputs_per_sector);
        wcfg.work_item_id = wid;
        wcfg.seed = seed + 0x1000u * static_cast<std::uint32_t>(n_wi);
        return std::make_unique<GammaWorkItem>(wcfg);
      });

  result.seconds_simulated = result.sim.seconds_at(dev.clock_hz);
  result.seconds_full = fpga::extrapolate_seconds(
      result.sim, workload.total_outputs(), dev.clock_hz);
  result.rejection_rate = result.sim.rejection_rate();
  result.bandwidth_gbps = result.sim.bandwidth_bytes(dev.clock_hz) / 1e9;
  result.eq1_seconds = fpga::eq1_theoretical_seconds(
      workload.total_outputs(), result.work_items, dev.clock_hz,
      result.rejection_rate);
  result.compute_stall_fraction =
      result.sim.cycles == 0
          ? 0.0
          : static_cast<double>(result.sim.compute_stall_cycles) /
                (static_cast<double>(result.sim.cycles) * result.work_items);
  return result;
}

}  // namespace dwi::core
