// Listing 2's workaround for dynamically-modified loop exit conditions
// in an II=1 pipeline.
//
// Problem: MAINLOOP's exit depends on `counter`, which is incremented
// inside a data-dependent branch of the *same* iteration. The exit
// comparison therefore depends on the previous iteration's result — a
// loop-carried dependency whose latency (increment + compare) exceeds
// one cycle, forcing the scheduler to II > 1.
//
// Workaround: compare against a *delayed* copy of the counter, shifted
// through a completely partitioned register array `prevCounter` of
// length breakId+1 (`UpdateRegUI` in the paper). The comparison then
// reads a register written `breakId+1` iterations ago, breaking the
// tight recurrence; the pipeline reaches II = 1 at the cost of up to
// breakId+1 extra (harmless) loop iterations, because the guarded
// output write (`counter < limitMain`) never emits extra values. The
// paper finds breakId = 0 — a delay of one cycle — sufficient.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"

namespace dwi::core {

class DelayedCounter {
 public:
  /// `break_id`: index into the delay register array (delay in
  /// iterations is break_id + 1).
  explicit DelayedCounter(unsigned break_id = 0);

  /// Listing 2's `UpdateRegUI`: shift the current counter into the
  /// delay registers. Call exactly once at the top of every iteration.
  void update_registers();

  /// Increment the live counter (inside the validated-output branch).
  void increment();

  /// The delayed value `prevCounter[breakId]` used in the loop exit
  /// comparison.
  std::uint32_t delayed_value() const;

  /// The live counter (used in the guarded write condition).
  std::uint32_t value() const { return counter_; }

  unsigned break_id() const { return break_id_; }

  void reset();

 private:
  unsigned break_id_;
  std::uint32_t counter_ = 0;
  std::vector<std::uint32_t> prev_;  ///< fully partitioned in HLS
};

/// Scheduling model: the II Vivado HLS achieves for MAINLOOP given the
/// latency of the counter-increment + compare chain and the delay the
/// workaround provides. Without the workaround (delay 0) the recurrence
/// forces II = chain latency; each register of delay recovers one
/// cycle, down to the II=1 floor. Used by the ablation bench
/// (bench/ablation_counter) and the FPGA timing simulation.
unsigned achieved_initiation_interval(unsigned counter_chain_latency,
                                      unsigned delay_iterations);

}  // namespace dwi::core
