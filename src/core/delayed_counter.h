// Listing 2's workaround for dynamically-modified loop exit conditions
// in an II=1 pipeline.
//
// Problem: MAINLOOP's exit depends on `counter`, which is incremented
// inside a data-dependent branch of the *same* iteration. The exit
// comparison therefore depends on the previous iteration's result — a
// loop-carried dependency whose latency (increment + compare) exceeds
// one cycle, forcing the scheduler to II > 1.
//
// Workaround: compare against a *delayed* copy of the counter, shifted
// through a completely partitioned register array `prevCounter` of
// length breakId+1 (`UpdateRegUI` in the paper). The comparison then
// reads a register written `breakId+1` iterations ago, breaking the
// tight recurrence; the pipeline reaches II = 1 at the cost of up to
// breakId+1 extra (harmless) loop iterations, because the guarded
// output write (`counter < limitMain`) never emits extra values. The
// paper finds breakId = 0 — a delay of one cycle — sufficient.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"

namespace dwi::core {

class DelayedCounter {
 public:
  /// `break_id`: index into the delay register array (delay in
  /// iterations is break_id + 1).
  explicit DelayedCounter(unsigned break_id = 0);

  /// Listing 2's `UpdateRegUI`: shift the current counter into the
  /// delay registers. Call exactly once at the top of every iteration.
  /// Inline: this runs once per MAINLOOP iteration in the host
  /// simulation's hottest loop, and the common break_id = 0 case is a
  /// single store.
  void update_registers() {
    for (std::size_t j = prev_.size(); j-- > 1;) prev_[j] = prev_[j - 1];
    prev_[0] = counter_;
  }

  /// Increment the live counter (inside the validated-output branch).
  void increment() { ++counter_; }

  /// The delayed value `prevCounter[breakId]` used in the loop exit
  /// comparison.
  std::uint32_t delayed_value() const { return prev_[break_id_]; }

  /// The live counter (used in the guarded write condition).
  std::uint32_t value() const { return counter_; }

  unsigned break_id() const { return break_id_; }

  /// Closed-form replay of `chunk` iterations of the Listing 2 loop
  /// when every increment's guard is known to pass: iteration i ran
  /// update_registers() and then incremented iff ok[i]. Requires
  /// chunk > break_id so every delay register is overwritten; the
  /// resulting state is bit-identical to the explicit loop. The batch
  /// tape fill uses this to skip the per-iteration shift dance.
  void advance_bulk(const std::uint8_t* ok, std::size_t chunk,
                    std::uint32_t total_incremented) {
    DWI_ASSERT(chunk > break_id_);
    counter_ += total_incremented;
    std::uint32_t enter = counter_;
    for (std::size_t j = 0; j <= break_id_; ++j) {
      enter -= ok[chunk - 1 - j];
      prev_[j] = enter;
    }
  }

  void reset() {
    counter_ = 0;
    for (auto& p : prev_) p = 0;
  }

 private:
  unsigned break_id_;
  std::uint32_t counter_ = 0;
  std::vector<std::uint32_t> prev_;  ///< fully partitioned in HLS
};

/// Scheduling model: the II Vivado HLS achieves for MAINLOOP given the
/// latency of the counter-increment + compare chain and the delay the
/// workaround provides. Without the workaround (delay 0) the recurrence
/// forces II = chain latency; each register of delay recovers one
/// cycle, down to the II=1 floor. Used by the ablation bench
/// (bench/ablation_counter) and the FPGA timing simulation.
unsigned achieved_initiation_interval(unsigned counter_chain_latency,
                                      unsigned delay_iterations);

}  // namespace dwi::core
