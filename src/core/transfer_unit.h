// Listing 4: the Transfer block — reads validated gamma RNs from the
// work-item's hls::stream, packs 16 of them into one 512-bit word
// (`g512` packer, float16-equivalent), collects LTRANSF words in a
// false-dependence burst buffer, and memcpy-bursts each full buffer to
// device global memory at the work-item's own offset (§III-E2:
// device-level buffer combining — one shared device buffer, each
// work-item addressing its slice via wid).
//
// This is the *functional* implementation used by the dataflow
// execution (DecoupledWorkItems) and by the data-integrity tests; the
// cycle timing of the same block lives in fpga::simulate_kernel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hls/ap_uint.h"
#include "hls/stream.h"

namespace dwi::core {

using MemoryWord = hls::ap_uint<512>;

/// Pack a float into the next lane of a 512-bit word (Listing 4's
/// `g512` helper). Returns true when the word just became full.
bool pack_g512(MemoryWord* word, float value, unsigned* lane);

/// Unpack lane `i` of a 512-bit word back to a float.
float unpack_g512(const MemoryWord& word, unsigned lane);

struct TransferUnitConfig {
  unsigned work_item_id = 0;
  /// LTRANSF: 512-bit words per burst buffer.
  unsigned words_per_burst = 16;
  /// Total floats this work-item will transfer (its slice length).
  std::uint64_t total_floats = 0;
  /// Start offset (in 512-bit words) of this work-item's slice in the
  /// shared device buffer: blockOffset · wid (Listing 4).
  std::uint64_t word_offset = 0;
};

/// Drain `stream` into `device_buffer` per Listing 4. Blocks on stream
/// reads, so it must run concurrently with its producer (DATAFLOW).
/// Returns the number of words written.
std::uint64_t run_transfer_unit(const TransferUnitConfig& cfg,
                                hls::stream<float>& stream,
                                std::span<MemoryWord> device_buffer);

}  // namespace dwi::core
