// Listing 2: the fully pipelined GammaRNG work-item for the FPGA.
//
// One call to step() is one MAINLOOP initiation — the body the paper
// schedules at II = 1:
//   * the enable-gated Mersenne-Twisters (Listing 3) run every cycle
//     but commit state only when their stage actually consumed a value,
//     so rejections upstream never distort the uniform streams (§II-E);
//   * the normal transform (Marsaglia-Bray or bit-level ICDF per
//     config), the Marsaglia-Tsang rejection test and the α<1
//     correction are computed unconditionally and *selected* by flags,
//     exactly as a pipelined datapath evaluates both sides;
//   * the loop exit uses the DelayedCounter workaround, so the work
//     item runs up to breakId+1 harmless extra iterations per sector;
//   * the guarded write (`gRN_ok && counter < limitMain`) emits the
//     validated gamma RN.
//
// SECLOOP iterates the financial sectors, each with its own variance
// (CreditRisk+, §II-D4). The class also implements fpga::ProducerModel
// so the same object drives the cycle-level timing simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/delayed_counter.h"
#include "fpga/kernel_sim.h"
#include "rng/configs.h"
#include "rng/gamma.h"
#include "rng/mersenne_twister.h"
#include "rng/philox.h"
#include "rng/stream_strategy.h"

namespace dwi::core {

/// How a work-item's four uniform streams obtain independence — the
/// shared vocabulary lives in rng/stream_strategy.h so the SIMT engine
/// and the serving layer speak the same one:
///   kDistinctSeeds — the paper's choice: distinct SplitMix-derived
///     seeds per (work-item, stream); overlap improbable.
///   kJumpAhead — fixed-stride substreams of ONE master MT sequence
///     via GF(2) jump-ahead (rng/jump.h); overlap impossible. Requires
///     a small DCMT geometry (MT(521) configs).
///   kCounterBased — fixed-stride windows of ONE master Philox counter
///     sequence (rng/philox.h); overlap impossible, derivation O(1),
///     any position seekable. Works with every config (no geometry
///     constraint) but replaces the paper's twisters with Philox, so
///     it samples a different (equally valid) stream family.
using StreamStrategy = rng::StreamStrategy;

struct GammaWorkItemConfig {
  rng::AppConfig app = rng::config(rng::ConfigId::kConfig1);
  /// Per-sector variances v_k (CreditRisk+ sectors). One entry per
  /// SECLOOP trip; the representative setup uses 240 × 1.39.
  std::vector<float> sector_variances = {1.39f};
  /// limitMain: validated outputs per sector for this work-item.
  std::uint32_t outputs_per_sector = 1000;
  /// limitMax: safety bound on MAINLOOP trips (0 = derive from
  /// outputs_per_sector with ample rejection headroom).
  std::uint32_t limit_max = 0;
  unsigned break_id = 0;  ///< DelayedCounter delay register index
  unsigned work_item_id = 0;
  std::uint32_t seed = 1;
  StreamStrategy stream_strategy = StreamStrategy::kDistinctSeeds;
  /// kJumpAhead/kCounterBased substream stride in outputs (0 = derive
  /// a safe bound from limit_max x sectors). Work-item w's stream t is
  /// substream index w*4 + t of the master sequence seeded with `seed`.
  std::uint64_t substream_stride = 0;
  /// Host-side batching width: produce() serves from an internal tape
  /// of up to this many precomputed MAINLOOP iterations, generated via
  /// the block RNG fast path (rng::MersenneTwister::generate_block)
  /// and the batched normal/rejection transforms. Outputs, iteration
  /// counts and finished() timing are bit-identical to the scalar
  /// path for every value; <= 1 disables batching and runs the scalar
  /// reference path (the equivalence tests compare both).
  std::uint32_t batch_iterations = 2048;
};

class GammaWorkItem final : public fpga::ProducerModel {
 public:
  explicit GammaWorkItem(const GammaWorkItemConfig& cfg);

  /// One MAINLOOP initiation. Returns true and sets *value when this
  /// iteration wrote a validated gamma RN to the stream.
  bool produce(float* value) override;

  /// True once every sector's quota has been produced.
  bool finished() const { return finished_; }

  // --- statistics -----------------------------------------------------
  std::uint64_t iterations() const { return iterations_; }
  std::uint64_t outputs() const { return outputs_; }
  /// Combined rejection rate observed so far (§IV-E definition:
  /// fraction of iterations without a validated output).
  double rejection_rate() const;

  /// Total validated outputs this work-item will produce.
  std::uint64_t total_quota() const;

 private:
  void enter_sector(std::size_t sector);

  /// Precompute the next run of MAINLOOP iterations into the tape.
  /// Handles the SECLOOP exit checks, then either one scalar iteration
  /// (batching disabled) or a batched chunk sized so no exit condition
  /// can fire mid-chunk. Sets finished_ (leaving the tape empty) when
  /// every sector is exhausted.
  void fill_tape();
  void fill_tape_scalar();   ///< one iteration, classic Listing 2 body
  void fill_tape_batched();  ///< block-RNG chunk, bit-identical outputs

  GammaWorkItemConfig cfg_;

  // The paper's twisters: MT0 (normal input; Marsaglia-Bray splits it
  // into two parallel twisters per [18]), MT1 (rejection uniform),
  // MT2 (correction uniform).
  rng::AdaptedMersenneTwister mt0a_;
  rng::AdaptedMersenneTwister mt0b_;
  rng::AdaptedMersenneTwister mt1_;
  rng::AdaptedMersenneTwister mt2_;

  // kCounterBased replaces the four twisters with enable-gated Philox
  // substreams (same Listing 3 contract); the mt*_ members above are
  // left at their cheap defaults and never consumed.
  std::vector<rng::AdaptedPhilox> px_;  ///< 4 entries when counter-based

  // Stream selection helpers: stage s ∈ {0:normal-a, 1:normal-b,
  // 2:rejection, 3:correction}.
  std::uint32_t draw(unsigned s, bool enable);
  void draw_block(unsigned s, std::uint32_t* out, std::size_t count);

  DelayedCounter counter_;
  std::size_t sector_ = 0;
  std::uint32_t k_ = 0;  ///< MAINLOOP induction variable
  std::uint32_t limit_max_ = 0;
  rng::GammaConstants gamma_k_{};
  bool alpha_flag_ = false;
  bool finished_ = false;

  std::uint64_t iterations_ = 0;
  std::uint64_t outputs_ = 0;

  // Tape of precomputed MAINLOOP iterations: one flag per iteration
  // (did the guarded write emit?) plus the compacted output values.
  // produce() consumes one entry per call, preserving the scalar
  // call-for-call contract (iteration counts, finished() timing).
  std::vector<std::uint8_t> tape_flags_;
  std::vector<float> tape_values_;
  std::size_t tape_pos_ = 0;
  std::size_t tape_value_pos_ = 0;
};

}  // namespace dwi::core
