#include "core/transfer_unit.h"

#include <cstring>

#include "common/bits.h"
#include "common/error.h"

namespace dwi::core {

bool pack_g512(MemoryWord* word, float value, unsigned* lane) {
  DWI_ASSERT(*lane < 16);
  word->set_range(*lane * 32 + 31, *lane * 32, float_to_bits(value));
  ++*lane;
  if (*lane == 16) {
    *lane = 0;
    return true;
  }
  return false;
}

float unpack_g512(const MemoryWord& word, unsigned lane) {
  DWI_ASSERT(lane < 16);
  return bits_to_float(
      static_cast<std::uint32_t>(word.get_range64(lane * 32 + 31, lane * 32)));
}

std::uint64_t run_transfer_unit(const TransferUnitConfig& cfg,
                                hls::stream<float>& stream,
                                std::span<MemoryWord> device_buffer) {
  DWI_REQUIRE(cfg.words_per_burst >= 1, "burst must hold at least one word");
  DWI_REQUIRE(cfg.total_floats % 16 == 0,
              "slice length must be a multiple of 16 floats (one beat)");

  // Burst buffer (transfBuf in Listing 4; #pragma HLS DEPENDENCE false).
  std::vector<MemoryWord> transf_buf(cfg.words_per_burst);

  MemoryWord gamma512;
  unsigned lane = 0;        // position inside the current 512-bit word
  unsigned i = 0;           // position inside the burst buffer
  std::uint64_t offset = cfg.word_offset;
  std::uint64_t words_written = 0;

  const std::uint64_t total_words = cfg.total_floats / 16;
  std::uint64_t words_done = 0;

  while (words_done < total_words) {
    // TLOOP: read one float per trip, pack into gamma512.
    const float gamma = stream.read();
    const bool t_flag = pack_g512(&gamma512, gamma, &lane);
    if (t_flag) {
      transf_buf[i] = gamma512;
      i = (i >= cfg.words_per_burst - 1) ? 0u : i + 1u;
      ++words_done;
      // Burst boundary: memcpy the full buffer to global memory.
      if (i == 0) {
        DWI_REQUIRE(offset + cfg.words_per_burst <=
                        cfg.word_offset + total_words &&
                    offset + cfg.words_per_burst <= device_buffer.size(),
                    "transfer overruns the device buffer slice");
        for (unsigned w = 0; w < cfg.words_per_burst; ++w) {
          device_buffer[offset + w] = transf_buf[w];
        }
        offset += cfg.words_per_burst;
        words_written += cfg.words_per_burst;
      }
    }
  }

  // Tail burst: flush a partially filled buffer (total not a multiple
  // of the burst size).
  if (i != 0) {
    DWI_REQUIRE(offset + i <= device_buffer.size(),
                "tail transfer overruns the device buffer");
    for (unsigned w = 0; w < i; ++w) {
      device_buffer[offset + w] = transf_buf[w];
    }
    words_written += i;
  }
  return words_written;
}

}  // namespace dwi::core
