#include "core/pipeline_kernels.h"

#include <utility>

#include "common/error.h"
#include "rng/simd_kernels.h"

namespace dwi::core {

UniformKernel::UniformKernel(const StreamConfig& cfg,
                             rng::NormalTransform transform,
                             std::vector<rng::GammaConstants> constants,
                             std::size_t round)
    : transform_(transform),
      constants_(std::move(constants)),
      round_(round),
      rounds_(constants_.size(), 0) {
  DWI_REQUIRE(!constants_.empty(), "pipeline: need at least one sector");
  DWI_REQUIRE(round_ >= 1, "pipeline: round size must be at least 1");
  streams_.reserve(constants_.size());
  switch (cfg.strategy) {
    case rng::StreamStrategy::kCounterBased: {
      const rng::CounterSubstreams subs(cfg.seed, cfg.stride);
      for (std::size_t k = 0; k < constants_.size(); ++k) {
        SectorStream s;
        s.px.emplace(subs.stream(k));
        streams_.push_back(std::move(s));
      }
      break;
    }
    case rng::StreamStrategy::kJumpAhead: {
      const rng::SubstreamSplitter splitter(cfg.jump_params, cfg.seed,
                                            cfg.stride);
      for (std::size_t k = 0; k < constants_.size(); ++k) {
        SectorStream s;
        s.mt.emplace(splitter.stream(k));
        streams_.push_back(std::move(s));
      }
      break;
    }
    case rng::StreamStrategy::kDistinctSeeds: {
      // The paper's §II-E seeding: per-sector MT19937 with decorrelated
      // seeds (the scalar sampler_gamma_source convention).
      for (std::size_t k = 0; k < constants_.size(); ++k) {
        SectorStream s;
        s.mt.emplace(rng::mt19937_params(),
                     cfg.seed + static_cast<std::uint32_t>(k) * 7919u);
        streams_.push_back(std::move(s));
      }
      break;
    }
  }
}

RoundBundle UniformKernel::next_round(std::size_t k) {
  DWI_ASSERT(k < streams_.size());
  RoundBundle b;
  b.sector = static_cast<std::uint32_t>(k);
  b.round = rounds_[k]++;
  SectorStream& s = streams_[k];
  b.ua.resize(round_);
  s.generate(b.ua.data(), round_);
  if (rng::uniforms_per_attempt(transform_) == 2) {
    b.ub.resize(round_);
    s.generate(b.ub.data(), round_);
  }
  b.u1.resize(round_);
  s.generate(b.u1.data(), round_);
  if (constants_[k].boosted) {
    b.u2.resize(round_);
    s.generate(b.u2.data(), round_);
  }
  return b;
}

CandidateBundle normal_kernel(rng::NormalTransform transform,
                              RoundBundle bundle) {
  const std::size_t n = bundle.ua.size();
  CandidateBundle out;
  out.sector = bundle.sector;
  out.round = bundle.round;
  out.attempts = n;
  out.n0.resize(n);
  std::vector<std::uint8_t> valid(n);
  rng::normal_attempt_block(transform, bundle.ua.data(),
                            bundle.ub.empty() ? nullptr : bundle.ub.data(),
                            n, out.n0.data(), valid.data());
  // Compact the valid normals in place (branchless, as in
  // GammaSampler::sample_block).
  std::size_t n_valid = 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.n0[n_valid] = out.n0[i];
    n_valid += valid[i];
  }
  out.n0.resize(n_valid);
  out.u1 = std::move(bundle.u1);
  out.u2 = std::move(bundle.u2);
  return out;
}

GammaRejectKernel::GammaRejectKernel(
    std::vector<rng::GammaConstants> constants)
    : constants_(std::move(constants)) {
  DWI_REQUIRE(!constants_.empty(), "pipeline: need at least one sector");
}

AcceptedBlock GammaRejectKernel::run(const CandidateBundle& bundle) {
  DWI_ASSERT(bundle.sector < constants_.size());
  const rng::GammaConstants& k = constants_[bundle.sector];
  const std::size_t n_valid = bundle.n0.size();
  DWI_REQUIRE(bundle.u1.size() >= n_valid,
              "pipeline: candidate bundle under-provisioned u1");

  AcceptedBlock out;
  out.sector = bundle.sector;
  out.values.resize(n_valid);
  std::vector<std::uint8_t> ok(n_valid);
  rng::simd::gamma_attempt_block(bundle.n0.data(), bundle.u1.data(), n_valid,
                                 k, out.values.data(), ok.data());
  std::size_t n_accepted = 0;
  for (std::size_t i = 0; i < n_valid; ++i) {
    out.values[n_accepted] = out.values[i];
    n_accepted += ok[i];
  }
  out.values.resize(n_accepted);
  if (k.boosted && n_accepted > 0) {
    DWI_REQUIRE(bundle.u2.size() >= n_accepted,
                "pipeline: candidate bundle under-provisioned u2");
    rng::simd::gamma_correct_block(out.values.data(), bundle.u2.data(),
                                   n_accepted, k);
  }
  attempts_ += bundle.attempts;
  accepted_ += n_accepted;
  return out;
}

double expected_accept_per_attempt(rng::NormalTransform transform) {
  // Marsaglia-Tsang acceptance given a valid normal is ≥ the squeeze
  // mass; 0.95 is conservative for every α the CreditRisk+ sectors use
  // (α ∈ [1/v, 1/v + 1]). Under-estimating only costs one extra staged
  // epoch, never correctness.
  return rng::analytic_acceptance(transform) * 0.95;
}

}  // namespace dwi::core
