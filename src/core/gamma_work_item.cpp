#include "core/gamma_work_item.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/block_arena.h"
#include "common/error.h"
#include "rng/erfinv.h"
#include "rng/icdf_bitwise.h"
#include "rng/jump.h"
#include "rng/normal.h"
#include "rng/simd_kernels.h"

namespace dwi::core {

namespace {

std::uint32_t derive_seed(std::uint32_t base, unsigned wid, unsigned stream) {
  // SplitMix-style mixing so work-items and streams decorrelate even
  // with adjacent base seeds.
  std::uint64_t z = (static_cast<std::uint64_t>(base) << 32) ^
                    (static_cast<std::uint64_t>(wid) * 0x9e3779b97f4a7c15ull) ^
                    (static_cast<std::uint64_t>(stream) * 0xbf58476d1ce4e5b9ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::uint32_t>(z >> 32) | 1u;
}

}  // namespace

GammaWorkItem::GammaWorkItem(const GammaWorkItemConfig& cfg)
    : cfg_(cfg),
      mt0a_(cfg.app.mt, derive_seed(cfg.seed, cfg.work_item_id, 0)),
      mt0b_(cfg.app.mt, derive_seed(cfg.seed, cfg.work_item_id, 1)),
      mt1_(cfg.app.mt, derive_seed(cfg.seed, cfg.work_item_id, 2)),
      mt2_(cfg.app.mt, derive_seed(cfg.seed, cfg.work_item_id, 3)),
      counter_(cfg.break_id) {
  DWI_REQUIRE(!cfg.sector_variances.empty(), "need at least one sector");
  DWI_REQUIRE(cfg.outputs_per_sector > 0, "empty sector quota");
  // Every stream advances at most once per MAINLOOP iteration and
  // limit_max bounds the iterations per sector, so limit_max x
  // sectors outputs per substream can never overlap the next one.
  const std::uint64_t per_sector_bound =
      cfg.limit_max != 0 ? cfg.limit_max
                         : cfg.outputs_per_sector * 4u + 1024u;
  const std::uint64_t stride =
      cfg.substream_stride != 0
          ? cfg.substream_stride
          : per_sector_bound * cfg.sector_variances.size();
  const std::uint64_t base =
      static_cast<std::uint64_t>(cfg.work_item_id) * 4u;
  if (cfg.stream_strategy == StreamStrategy::kJumpAhead) {
    const rng::SubstreamSplitter splitter(cfg.app.mt, cfg.seed, stride);
    mt0a_ = rng::AdaptedMersenneTwister(splitter.stream(base + 0));
    mt0b_ = rng::AdaptedMersenneTwister(splitter.stream(base + 1));
    mt1_ = rng::AdaptedMersenneTwister(splitter.stream(base + 2));
    mt2_ = rng::AdaptedMersenneTwister(splitter.stream(base + 3));
  } else if (cfg.stream_strategy == StreamStrategy::kCounterBased) {
    const rng::CounterSubstreams substreams(cfg.seed, stride);
    px_.reserve(4);
    for (unsigned t = 0; t < 4; ++t) {
      px_.emplace_back(rng::AdaptedPhilox(substreams.stream(base + t)));
    }
  }
  enter_sector(0);
}

void GammaWorkItem::enter_sector(std::size_t sector) {
  sector_ = sector;
  k_ = 0;
  counter_.reset();
  const float v = cfg_.sector_variances[sector];
  gamma_k_ = rng::GammaConstants::from_sector_variance(v);
  // Listing 2: bool alphaFlag = (alpha <= 1.0f);
  alpha_flag_ = gamma_k_.alpha <= 1.0f;
  // limitMax: generous rejection headroom (the stochastic process can
  // exceed the mean attempt count; 4x + slack covers it for all v).
  limit_max_ = cfg_.limit_max != 0
                   ? cfg_.limit_max
                   : cfg_.outputs_per_sector * 4u + 1024u;
}

std::uint32_t GammaWorkItem::draw(unsigned s, bool enable) {
  if (!px_.empty()) return px_[s].next(enable);
  switch (s) {
    case 0: return mt0a_.next(enable);
    case 1: return mt0b_.next(enable);
    case 2: return mt1_.next(enable);
    default: return mt2_.next(enable);
  }
}

void GammaWorkItem::draw_block(unsigned s, std::uint32_t* out,
                               std::size_t count) {
  if (!px_.empty()) return px_[s].generate_block(out, count);
  switch (s) {
    case 0: return mt0a_.generate_block(out, count);
    case 1: return mt0b_.generate_block(out, count);
    case 2: return mt1_.generate_block(out, count);
    default: return mt2_.generate_block(out, count);
  }
}

bool GammaWorkItem::produce(float* value) {
  // Serve the next precomputed MAINLOOP iteration; (re)fill the tape
  // when it runs dry. One tape entry per call preserves the scalar
  // contract exactly: every call while !finished() is one iteration.
  while (tape_pos_ == tape_flags_.size()) {
    if (finished_) return false;
    fill_tape();
  }
  ++iterations_;
  if (tape_flags_[tape_pos_++] == 0) return false;
  *value = tape_values_[tape_value_pos_++];
  ++outputs_;
  return true;
}

void GammaWorkItem::fill_tape() {
  tape_flags_.clear();
  tape_values_.clear();
  tape_pos_ = 0;
  tape_value_pos_ = 0;

  // ---- MAINLOOP exit checks (Listing 2's for-condition) ---------------
  // Uses the DELAYED counter, so the loop may run breakId+1 extra
  // iterations after the quota is met — the guarded write keeps those
  // iterations output-free.
  while (k_ >= limit_max_ ||
         counter_.delayed_value() >= cfg_.outputs_per_sector) {
    DWI_ASSERT(counter_.value() == cfg_.outputs_per_sector ||
               k_ >= limit_max_);
    if (sector_ + 1 >= cfg_.sector_variances.size()) {
      finished_ = true;
      return;
    }
    enter_sector(sector_ + 1);
  }

  if (cfg_.batch_iterations <= 1) {
    fill_tape_scalar();
  } else {
    fill_tape_batched();
  }
}

void GammaWorkItem::fill_tape_scalar() {
  ++k_;
  counter_.update_registers();

  // ---- Normal RN -------------------------------------------------------
  float n0 = 0.0f;
  bool n0_valid = false;
  switch (cfg_.app.fpga_transform) {
    case rng::NormalTransform::kMarsagliaBray: {
      // Both input twisters advance every iteration (enable = true):
      // the polar method consumes a fresh pair per attempt.
      const auto a = rng::marsaglia_bray_attempt(draw(0, true),
                                                 draw(1, true));
      n0 = a.value;
      n0_valid = a.valid;
      break;
    }
    case rng::NormalTransform::kIcdfBitwise: {
      const auto r = rng::normal_icdf_bitwise(draw(0, true));
      n0 = r.value;
      n0_valid = r.valid;
      break;
    }
    case rng::NormalTransform::kIcdfCuda: {
      n0 = rng::normal_icdf_cuda(draw(0, true));
      n0_valid = true;
      break;
    }
    case rng::NormalTransform::kBoxMuller: {
      n0 = rng::box_muller(draw(0, true), draw(1, true));
      n0_valid = true;
      break;
    }
  }

  // ---- Uniform RN (for rejection): MT1 advances only when the normal
  // stage produced a value (Listing 2: MT1(n0_valid, ...)). -------------
  const float u1 = uint2float_open0(draw(2, n0_valid));

  // ---- Rejection method ------------------------------------------------
  const rng::GammaAttempt g = rng::gamma_attempt(n0, u1, gamma_k_);
  const bool g_rn_ok = n0_valid && g.valid;

  // ---- Uniform RN for correction: MT2 advances only on acceptance. ----
  const float u2 = uint2float_open0(draw(3, g_rn_ok));
  const float g_corrected = rng::gamma_correct(g.value, u2, gamma_k_);

  // ---- Output selection + guarded write --------------------------------
  const float gamma = alpha_flag_ ? g_corrected : g.value;
  if (g_rn_ok && counter_.value() < cfg_.outputs_per_sector) {
    counter_.increment();
    tape_flags_.push_back(1);
    tape_values_.push_back(gamma);
  } else {
    tape_flags_.push_back(0);
  }
}

void GammaWorkItem::fill_tape_batched() {
  // Same dataflow as fill_tape_scalar, restructured stage-by-stage over
  // a chunk of iterations so every twister advances via generate_block
  // and every transform runs in a tight loop. The enable-gated commits
  // become exact draw counts: MT1 advances once per valid normal, MT2
  // once per accepted candidate — the disabled "peek" re-reads of the
  // scalar path never reach an output, so skipping them is invisible.
  const std::uint32_t quota = cfg_.outputs_per_sector;

  // Chunk bound such that no exit check could fire mid-chunk. While
  // the live counter is below quota the delay registers (past counter
  // values) are too, and the exit needs at least (quota − counter) +
  // breakId + 1 more iterations: the counter gains at most 1 per
  // iteration and the delay line adds breakId+1. Once the counter HAS
  // reached quota the quota value may already be anywhere inside the
  // delay line, so the up-to-breakId+1 tail iterations run one at a
  // time, re-checking the exit after each exactly like the scalar
  // path. k_ may not cross limit_max_ either way.
  const std::uint64_t until_quota =
      counter_.value() < quota
          ? static_cast<std::uint64_t>(quota - counter_.value()) +
                counter_.break_id() + 1
          : 1;
  const std::uint64_t until_limit = limit_max_ - k_;
  const std::size_t chunk = static_cast<std::size_t>(
      std::min({until_quota, until_limit,
                static_cast<std::uint64_t>(cfg_.batch_iterations)}));

  const rng::NormalTransform transform = cfg_.app.fpga_transform;
  const bool two_uniforms = rng::uniforms_per_attempt(transform) == 2;
  common::BlockArena& arena = common::thread_block_arena();

  // ---- Normal RNs, one block ------------------------------------------
  std::uint32_t* ua = arena.u32(0, chunk);
  std::uint32_t* ub = two_uniforms ? arena.u32(1, chunk) : nullptr;
  draw_block(0, ua, chunk);
  if (two_uniforms) draw_block(1, ub, chunk);

  float* n0 = arena.f32(0, chunk);
  std::uint8_t* n0_valid = arena.u8(0, chunk);
  rng::normal_attempt_block(transform, ua, ub, chunk, n0, n0_valid);

  // ---- Rejection stage: MT1 commits once per valid normal. The
  // valid normals are compacted so the vectorized Marsaglia-Tsang
  // predicate (rng/simd_kernels.h) runs over a dense block, then the
  // accept flags are scattered back to iteration order. ----------------
  float* n0c = arena.f32(1, chunk);
  std::size_t n_valid = 0;
  for (std::size_t i = 0; i < chunk; ++i) {
    n0c[n_valid] = n0[i];
    n_valid += n0_valid[i];
  }
  std::uint32_t* u1 = arena.u32(2, chunk);
  draw_block(2, u1, n_valid);
  float* g_value = arena.f32(2, chunk);   // compacted: one per valid normal
  std::uint8_t* g_ok = arena.u8(1, chunk);  // compacted accept flags
  rng::simd::gamma_attempt_block(n0c, u1, n_valid, gamma_k_, g_value, g_ok);

  // Compact the accepted candidates in place; count acceptances.
  std::size_t n_accepted = 0;
  for (std::size_t i = 0; i < n_valid; ++i) {
    g_value[n_accepted] = g_value[i];
    n_accepted += g_ok[i];
  }

  // ---- Correction stage: MT2 commits once per accepted candidate. The
  // correction is only *selected* when alphaFlag is set (Listing 2
  // computes both sides and muxes), so the pow runs only on the
  // accepted+selected lanes — everything else is dead datapath. --------
  std::uint32_t* u2 = arena.u32(3, chunk);
  draw_block(3, u2, n_accepted);
  if (alpha_flag_) {
    rng::simd::gamma_correct_block(g_value, u2, n_accepted, gamma_k_);
  }

  // ---- DelayedCounter bookkeeping + guarded write, integer-only.
  // Scatter the accept decisions back to iteration order first; the
  // guarded-write loop then only consults one flag per iteration. ------
  tape_flags_.resize(chunk);
  {
    std::size_t vi = 0;
    for (std::size_t i = 0; i < chunk; ++i) {
      tape_flags_[i] = n0_valid[i] != 0 ? g_ok[vi] : std::uint8_t{0};
      vi += n0_valid[i];
    }
  }
  if (static_cast<std::uint64_t>(counter_.value()) + n_accepted <= quota &&
      chunk > counter_.break_id()) {
    // Every guard passes (the counter cannot reach quota mid-chunk), so
    // the loop collapses: flags are the accepts as-is, the values are
    // the compacted block unchanged, and the counter state is replayed
    // in closed form. Bit-identical to the explicit loop below.
    tape_values_.assign(g_value, g_value + n_accepted);
    counter_.advance_bulk(tape_flags_.data(), chunk,
                          static_cast<std::uint32_t>(n_accepted));
  } else {
    tape_values_.resize(n_accepted);
    std::size_t ai = 0;
    std::size_t emitted = 0;
    for (std::size_t i = 0; i < chunk; ++i) {
      counter_.update_registers();
      if (tape_flags_[i] != 0) {
        if (counter_.value() < quota) {
          counter_.increment();
          tape_values_[emitted++] = g_value[ai];
        } else {
          tape_flags_[i] = 0;
        }
        ++ai;
      }
    }
    tape_values_.resize(emitted);
  }
  k_ += static_cast<std::uint32_t>(chunk);
}

double GammaWorkItem::rejection_rate() const {
  if (iterations_ == 0) return 0.0;
  return 1.0 -
         static_cast<double>(outputs_) / static_cast<double>(iterations_);
}

std::uint64_t GammaWorkItem::total_quota() const {
  return static_cast<std::uint64_t>(cfg_.outputs_per_sector) *
         cfg_.sector_variances.size();
}

}  // namespace dwi::core
