#include "core/gamma_work_item.h"

#include <cmath>

#include "common/bits.h"
#include "common/error.h"
#include "rng/erfinv.h"
#include "rng/icdf_bitwise.h"
#include "rng/jump.h"
#include "rng/normal.h"

namespace dwi::core {

namespace {

std::uint32_t derive_seed(std::uint32_t base, unsigned wid, unsigned stream) {
  // SplitMix-style mixing so work-items and streams decorrelate even
  // with adjacent base seeds.
  std::uint64_t z = (static_cast<std::uint64_t>(base) << 32) ^
                    (static_cast<std::uint64_t>(wid) * 0x9e3779b97f4a7c15ull) ^
                    (static_cast<std::uint64_t>(stream) * 0xbf58476d1ce4e5b9ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::uint32_t>(z >> 32) | 1u;
}

}  // namespace

GammaWorkItem::GammaWorkItem(const GammaWorkItemConfig& cfg)
    : cfg_(cfg),
      mt0a_(cfg.app.mt, derive_seed(cfg.seed, cfg.work_item_id, 0)),
      mt0b_(cfg.app.mt, derive_seed(cfg.seed, cfg.work_item_id, 1)),
      mt1_(cfg.app.mt, derive_seed(cfg.seed, cfg.work_item_id, 2)),
      mt2_(cfg.app.mt, derive_seed(cfg.seed, cfg.work_item_id, 3)),
      counter_(cfg.break_id) {
  DWI_REQUIRE(!cfg.sector_variances.empty(), "need at least one sector");
  DWI_REQUIRE(cfg.outputs_per_sector > 0, "empty sector quota");
  if (cfg.stream_strategy == StreamStrategy::kJumpAhead) {
    // Every twister advances at most once per MAINLOOP iteration and
    // limit_max bounds the iterations per sector, so limit_max x
    // sectors outputs per substream can never overlap the next one.
    const std::uint64_t per_sector_bound =
        cfg.limit_max != 0 ? cfg.limit_max
                           : cfg.outputs_per_sector * 4u + 1024u;
    const std::uint64_t stride =
        cfg.substream_stride != 0
            ? cfg.substream_stride
            : per_sector_bound * cfg.sector_variances.size();
    const rng::SubstreamSplitter splitter(cfg.app.mt, cfg.seed, stride);
    const std::uint64_t base =
        static_cast<std::uint64_t>(cfg.work_item_id) * 4u;
    mt0a_ = rng::AdaptedMersenneTwister(splitter.stream(base + 0));
    mt0b_ = rng::AdaptedMersenneTwister(splitter.stream(base + 1));
    mt1_ = rng::AdaptedMersenneTwister(splitter.stream(base + 2));
    mt2_ = rng::AdaptedMersenneTwister(splitter.stream(base + 3));
  }
  enter_sector(0);
}

void GammaWorkItem::enter_sector(std::size_t sector) {
  sector_ = sector;
  k_ = 0;
  counter_.reset();
  const float v = cfg_.sector_variances[sector];
  gamma_k_ = rng::GammaConstants::from_sector_variance(v);
  // Listing 2: bool alphaFlag = (alpha <= 1.0f);
  alpha_flag_ = gamma_k_.alpha <= 1.0f;
  // limitMax: generous rejection headroom (the stochastic process can
  // exceed the mean attempt count; 4x + slack covers it for all v).
  limit_max_ = cfg_.limit_max != 0
                   ? cfg_.limit_max
                   : cfg_.outputs_per_sector * 4u + 1024u;
}

bool GammaWorkItem::produce(float* value) {
  if (finished_) return false;

  // ---- MAINLOOP exit checks (Listing 2's for-condition) ---------------
  // Uses the DELAYED counter, so the loop may run breakId+1 extra
  // iterations after the quota is met — the guarded write below keeps
  // those iterations output-free.
  while (k_ >= limit_max_ ||
         counter_.delayed_value() >= cfg_.outputs_per_sector) {
    DWI_ASSERT(counter_.value() == cfg_.outputs_per_sector ||
               k_ >= limit_max_);
    if (sector_ + 1 >= cfg_.sector_variances.size()) {
      finished_ = true;
      return false;
    }
    enter_sector(sector_ + 1);
  }

  ++iterations_;
  ++k_;
  counter_.update_registers();

  // ---- Normal RN -------------------------------------------------------
  float n0 = 0.0f;
  bool n0_valid = false;
  switch (cfg_.app.fpga_transform) {
    case rng::NormalTransform::kMarsagliaBray: {
      // Both input twisters advance every iteration (enable = true):
      // the polar method consumes a fresh pair per attempt.
      const auto a = rng::marsaglia_bray_attempt(mt0a_.next(true),
                                                 mt0b_.next(true));
      n0 = a.value;
      n0_valid = a.valid;
      break;
    }
    case rng::NormalTransform::kIcdfBitwise: {
      const auto r = rng::normal_icdf_bitwise(mt0a_.next(true));
      n0 = r.value;
      n0_valid = r.valid;
      break;
    }
    case rng::NormalTransform::kIcdfCuda: {
      n0 = rng::normal_icdf_cuda(mt0a_.next(true));
      n0_valid = true;
      break;
    }
    case rng::NormalTransform::kBoxMuller: {
      n0 = rng::box_muller(mt0a_.next(true), mt0b_.next(true));
      n0_valid = true;
      break;
    }
  }

  // ---- Uniform RN (for rejection): MT1 advances only when the normal
  // stage produced a value (Listing 2: MT1(n0_valid, ...)). -------------
  const float u1 = uint2float_open0(mt1_.next(n0_valid));

  // ---- Rejection method ------------------------------------------------
  const rng::GammaAttempt g = rng::gamma_attempt(n0, u1, gamma_k_);
  const bool g_rn_ok = n0_valid && g.valid;

  // ---- Uniform RN for correction: MT2 advances only on acceptance. ----
  const float u2 = uint2float_open0(mt2_.next(g_rn_ok));
  const float g_corrected = rng::gamma_correct(g.value, u2, gamma_k_);

  // ---- Output selection + guarded write --------------------------------
  const float gamma = alpha_flag_ ? g_corrected : g.value;
  if (g_rn_ok && counter_.value() < cfg_.outputs_per_sector) {
    counter_.increment();
    ++outputs_;
    *value = gamma;
    return true;
  }
  return false;
}

double GammaWorkItem::rejection_rate() const {
  if (iterations_ == 0) return 0.0;
  return 1.0 -
         static_cast<double>(outputs_) / static_cast<double>(iterations_);
}

std::uint64_t GammaWorkItem::total_quota() const {
  return static_cast<std::uint64_t>(cfg_.outputs_per_sector) *
         cfg_.sector_variances.size();
}

}  // namespace dwi::core
