#include "core/decoupled_work_items.h"

#include <limits>

#include "common/error.h"
#include "hls/dataflow.h"

namespace dwi::core {

std::vector<float> DecoupledResult::to_floats() const {
  std::vector<float> out;
  out.reserve(total_floats);
  for (const MemoryWord& w : device_buffer) {
    for (unsigned lane = 0; lane < 16 && out.size() < total_floats; ++lane) {
      out.push_back(unpack_g512(w, lane));
    }
  }
  return out;
}

std::vector<float> DecoupledResult::work_item_slice(
    unsigned wid, std::uint64_t floats_per_wi) const {
  DWI_REQUIRE(floats_per_wi % 16 == 0, "slice must be beat-aligned");
  const std::uint64_t words_per_wi = floats_per_wi / 16;
  const std::uint64_t begin = wid * words_per_wi;
  DWI_REQUIRE(begin + words_per_wi <= device_buffer.size(),
              "work-item slice out of range");
  std::vector<float> out;
  out.reserve(floats_per_wi);
  for (std::uint64_t w = begin; w < begin + words_per_wi; ++w) {
    for (unsigned lane = 0; lane < 16; ++lane) {
      out.push_back(unpack_g512(device_buffer[w], lane));
    }
  }
  return out;
}

DecoupledResult run_decoupled_work_items(const DecoupledConfig& cfg,
                                         const ComputeFn& compute) {
  DWI_REQUIRE(cfg.work_items >= 1 && cfg.work_items <= 64,
              "work-item count out of range");
  DWI_REQUIRE(cfg.floats_per_work_item % 16 == 0,
              "per-work-item length must be a multiple of 16 floats");

  const std::uint64_t words_per_wi = cfg.floats_per_work_item / 16;

  DecoupledResult result;
  result.total_floats =
      cfg.floats_per_work_item * static_cast<std::uint64_t>(cfg.work_items);
  result.device_buffer.assign(words_per_wi * cfg.work_items, MemoryWord{});

  // The streams must outlive the region; one per work-item (single
  // producer-consumer pairs — the DATAFLOW constraint of §III-A).
  std::vector<std::unique_ptr<hls::stream<float>>> streams;
  streams.reserve(cfg.work_items);
  for (unsigned w = 0; w < cfg.work_items; ++w) {
    streams.push_back(std::make_unique<hls::stream<float>>(
        cfg.stream_depth, "gammaStream" + std::to_string(w)));
  }

  hls::DataflowRegion region;
  std::span<MemoryWord> device_span(result.device_buffer);
  for (unsigned w = 0; w < cfg.work_items; ++w) {
    hls::stream<float>& s = *streams[w];
    region.add_process("GammaRNG" + std::to_string(w),
                       [&compute, w, &s, &cfg] {
                         compute(w, s, cfg.floats_per_work_item);
                       });
    TransferUnitConfig tcfg;
    tcfg.work_item_id = w;
    tcfg.words_per_burst = cfg.words_per_burst;
    tcfg.total_floats = cfg.floats_per_work_item;
    tcfg.word_offset = static_cast<std::uint64_t>(w) * words_per_wi;
    region.add_process("Transfer" + std::to_string(w),
                       [tcfg, &s, device_span] {
                         run_transfer_unit(tcfg, s, device_span);
                       });
  }
  region.run();
  return result;
}

DecoupledResult run_gamma_task(
    const DecoupledConfig& cfg,
    const std::function<GammaWorkItemConfig(unsigned wid)>& make_config) {
  // Validate every work-item's quota BEFORE the dataflow region spins
  // up: a contract failure inside a compute thread would leave its
  // Transfer peer blocked on the stream and deadlock the join.
  auto work_items =
      std::make_shared<std::vector<std::unique_ptr<GammaWorkItem>>>();
  work_items->reserve(cfg.work_items);
  for (unsigned wid = 0; wid < cfg.work_items; ++wid) {
    work_items->push_back(std::make_unique<GammaWorkItem>(make_config(wid)));
    DWI_REQUIRE(work_items->back()->total_quota() ==
                    cfg.floats_per_work_item,
                "work-item quota must match the transfer slice");
  }
  return run_decoupled_work_items(
      cfg, [work_items](unsigned wid, hls::stream<float>& out,
                        std::uint64_t total_floats) {
        GammaWorkItem& wi = *(*work_items)[wid];
        std::uint64_t produced = 0;
        while (produced < total_floats && !wi.finished()) {
          float value = 0.0f;
          if (wi.produce(&value)) {
            out.write(value);
            ++produced;
          }
        }
        if (produced < total_floats) {
          // limitMax exhausted the sector before the quota: pad the
          // slice with NaNs so the Transfer process can drain and the
          // dataflow region can join, then surface the failure.
          for (std::uint64_t i = produced; i < total_floats; ++i) {
            out.write(std::numeric_limits<float>::quiet_NaN());
          }
          DWI_REQUIRE(false,
                      "work-item exhausted limitMax before its quota");
        }
      });
}

std::vector<float> combine_buffers_at_host(
    const std::vector<std::vector<MemoryWord>>& per_wi_buffers,
    std::uint64_t floats_per_wi) {
  DWI_REQUIRE(!per_wi_buffers.empty(), "no buffers to combine");
  DWI_REQUIRE(floats_per_wi % 16 == 0, "slice must be beat-aligned");
  std::vector<float> host(per_wi_buffers.size() * floats_per_wi);
  // N read requests, each with destination offset wid · L/N (§III-E1).
  for (std::size_t wid = 0; wid < per_wi_buffers.size(); ++wid) {
    const auto& buf = per_wi_buffers[wid];
    DWI_REQUIRE(buf.size() * 16 >= floats_per_wi,
                "device buffer shorter than the slice");
    std::uint64_t out = wid * floats_per_wi;
    for (std::uint64_t w = 0; w < floats_per_wi / 16; ++w) {
      for (unsigned lane = 0; lane < 16; ++lane) {
        host[out++] = unpack_g512(buf[w], lane);
      }
    }
  }
  return host;
}

}  // namespace dwi::core
