// Philox4x32-10 counter-based PRNG (Salmon et al., "Parallel Random
// Numbers: As Easy as 1, 2, 3", SC'11) — the third way to give every
// work-item its own stream, completing the library's parallel-RNG
// menu:
//
//   * distinct seeds (the paper's choice): overlap merely improbable;
//   * jump-ahead (rng/jump.h): one master sequence, overlap impossible,
//     needs the GF(2) machinery per stream;
//   * counter-based (this file): stateless — output = bijection(key,
//     counter) — so work-item w simply *is* key w, streams never
//     overlap by construction, and there is no state to spill
//     (contrast with the MT19937 spill penalty that costs the GPU a
//     factor of ~2 in Table III; this is what cuRAND ships today).
//
// On the paper's FPGA the Mersenne-Twister is preferable (tiny BRAM,
// one new value per cycle with trivial logic), which the micro bench
// quantifies — Philox's four 32x32 multiplies per round x 10 rounds
// are the cost of statelessness. On the host the picture inverts:
// counters have no sequential state recurrence, so generate_block()
// encrypts independent counters 8 abreast through the AVX2 kernel
// (rng/simd_kernels.h) and seek() to ANY 128-bit output position is a
// handful of integer ops.
#pragma once

#include <array>
#include <cstdint>

namespace dwi::rng {

/// One Philox4x32-10 block: encrypt `counter` under `key`, producing
/// four 32-bit outputs.
std::array<std::uint32_t, 4> philox4x32(
    const std::array<std::uint32_t, 4>& counter,
    const std::array<std::uint32_t, 2>& key);

/// Stream adapter: key = (seed, stream id), counter increments per
/// block; next() serves the four lanes in order.
class Philox {
 public:
  Philox(std::uint32_t seed, std::uint32_t stream_id = 0);

  std::uint32_t next();

  /// Bulk path mirroring MersenneTwister::generate_block: fill `out`
  /// with the next `count` outputs, exactly as count x next(). Drains
  /// the buffered block first, then encrypts whole counters straight
  /// into `out` through the dispatched block kernel (8 counters
  /// abreast under AVX2).
  void generate_block(std::uint32_t* out, std::size_t count);

  /// Jump to an absolute output position (O(1) — the counter-based
  /// superpower).
  void seek(std::uint64_t output_index);

  /// 128-bit variant for positions beyond 2^64 outputs — substream
  /// allocation multiplies index by stride, which overflows 64 bits
  /// long before the counter space (2^130 outputs) runs out. The
  /// position is hi·2^64 + lo.
  void seek(std::uint64_t output_index_lo, std::uint64_t output_index_hi);

  /// Relative counterpart of seek(): advance `count` outputs from the
  /// current position, also O(1). This is the primitive for jumping
  /// *within* a derived substream (whose absolute base position the
  /// holder need not know) — e.g. recomputing a suffix of a served
  /// request's tape without replaying its prefix.
  void skip(std::uint64_t count);

  const std::array<std::uint32_t, 2>& key() const { return key_; }

 private:
  friend class AdaptedPhilox;

  void refill();

  std::array<std::uint32_t, 2> key_;
  std::array<std::uint32_t, 4> counter_{};
  std::array<std::uint32_t, 4> block_{};
  unsigned lane_ = 4;  ///< forces refill on first next()
};

/// Counter-based analogue of rng::SubstreamSplitter: partitions the
/// single master Philox sequence keyed (seed, stream_id) into
/// fixed-stride substreams, where substream i is the master with the
/// first i·stride outputs discarded. Derivation is one 128-bit
/// multiply and a counter write — O(1) per stream, stateless, no
/// squaring chains, no caches, nothing to contend on — which is what
/// makes per-request substream keying in the serving layer free.
class CounterSubstreams {
 public:
  CounterSubstreams(std::uint32_t seed, std::uint64_t stride,
                    std::uint32_t stream_id = 0);

  /// Generator positioned at absolute output index·stride of the
  /// master sequence. Any index up to 2^64-1 is valid: the 128-bit
  /// product always fits the Philox counter space.
  Philox stream(std::uint64_t index) const;

  std::uint64_t stride() const { return stride_; }
  std::uint32_t seed() const { return seed_; }

 private:
  std::uint32_t seed_;
  std::uint32_t stream_id_;
  std::uint64_t stride_;
};

/// Listing 3 semantics over a Philox stream: next(enable) always
/// computes the current output but commits the position only when
/// `enable` is true — the same enable-gating contract as
/// AdaptedMersenneTwister, so the pipelined work-item can run on
/// counter-based substreams unchanged. Filtering the call sequence to
/// enabled calls yields exactly the plain Philox sequence.
class AdaptedPhilox {
 public:
  explicit AdaptedPhilox(Philox inner) : inner_(inner) {}

  /// Compute the current output; commit the lane advance iff `enable`.
  std::uint32_t next(bool enable) {
    if (inner_.lane_ >= 4) inner_.refill();
    const std::uint32_t y = inner_.block_[inner_.lane_];
    if (enable) {
      ++inner_.lane_;
      ++committed_;
    }
    return y;
  }

  /// Block fast path for a run of `count` enabled draws: equivalent to
  /// count x next(true).
  void generate_block(std::uint32_t* out, std::size_t count) {
    inner_.generate_block(out, count);
    committed_ += count;
  }

  /// Number of committed (enabled) steps so far.
  std::uint64_t committed_steps() const { return committed_; }

 private:
  Philox inner_;
  std::uint64_t committed_ = 0;
};

}  // namespace dwi::rng
