// Philox4x32-10 counter-based PRNG (Salmon et al., "Parallel Random
// Numbers: As Easy as 1, 2, 3", SC'11) — the third way to give every
// work-item its own stream, completing the library's parallel-RNG
// menu:
//
//   * distinct seeds (the paper's choice): overlap merely improbable;
//   * jump-ahead (rng/jump.h): one master sequence, overlap impossible,
//     needs the GF(2) machinery per stream;
//   * counter-based (this file): stateless — output = bijection(key,
//     counter) — so work-item w simply *is* key w, streams never
//     overlap by construction, and there is no state to spill
//     (contrast with the MT19937 spill penalty that costs the GPU a
//     factor of ~2 in Table III; this is what cuRAND ships today).
//
// On the paper's FPGA the Mersenne-Twister is preferable (tiny BRAM,
// one new value per cycle with trivial logic), which the micro bench
// quantifies — Philox's four 32x32 multiplies per round x 10 rounds
// are the cost of statelessness.
#pragma once

#include <array>
#include <cstdint>

namespace dwi::rng {

/// One Philox4x32-10 block: encrypt `counter` under `key`, producing
/// four 32-bit outputs.
std::array<std::uint32_t, 4> philox4x32(
    const std::array<std::uint32_t, 4>& counter,
    const std::array<std::uint32_t, 2>& key);

/// Stream adapter: key = (stream id, seed), counter increments per
/// block; next() serves the four lanes in order.
class Philox {
 public:
  Philox(std::uint32_t seed, std::uint32_t stream_id = 0);

  std::uint32_t next();

  /// Jump to an absolute output position (O(1) — the counter-based
  /// superpower).
  void seek(std::uint64_t output_index);

 private:
  void refill();

  std::array<std::uint32_t, 2> key_;
  std::array<std::uint32_t, 4> counter_{};
  std::array<std::uint32_t, 4> block_{};
  unsigned lane_ = 4;  ///< forces refill on first next()
};

}  // namespace dwi::rng
