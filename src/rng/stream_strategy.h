// How a parallel worker (work-item, SIMT lane, serve request) derives
// its private RNG substreams from one master seed. Lives in rng so
// every layer that owns streams — core work-items, the SIMT engine,
// the serving layer — can speak the same vocabulary without depending
// on each other.
#pragma once

namespace dwi::rng {

enum class StreamStrategy {
  /// The paper's choice: every stream gets its own mixed seed. Overlap
  /// between streams is merely improbable (§II-E), not impossible.
  kDistinctSeeds,

  /// One master Mersenne-Twister sequence partitioned by GF(2)
  /// jump-ahead (rng/jump.h): stream i is the master with the first
  /// i·stride outputs discarded. Overlap is impossible; derivation
  /// costs popcount(i) matrix-vector applies against a cached
  /// squaring chain.
  kJumpAhead,

  /// One master Philox4x32 counter sequence (rng/philox.h): stream i
  /// starts at absolute output i·stride, reached by writing the
  /// counter — an O(1) integer multiply, no per-stream state, no
  /// caches. Overlap is impossible by construction and random seek()
  /// into any position of any stream is free.
  kCounterBased,
};

}  // namespace dwi::rng
