#include "rng/erfinv.h"

#include <cmath>

#include "common/bits.h"
#include "rng/fastmath.h"

namespace dwi::rng {

float erfinv_giles(float x) {
  // Giles' single-precision approximation: w = -log(1 - x^2); a degree-8
  // polynomial in w (central, w < 5) or in sqrt(w) - 3 (tail), times x.
  float w = -fast_logf((1.0f - x) * (1.0f + x));
  float p;
  if (w < 5.0f) {
    w = w - 2.5f;
    p = 2.81022636e-08f;
    p = 3.43273939e-07f + p * w;
    p = -3.5233877e-06f + p * w;
    p = -4.39150654e-06f + p * w;
    p = 0.00021858087f + p * w;
    p = -0.00125372503f + p * w;
    p = -0.00417768164f + p * w;
    p = 0.246640727f + p * w;
    p = 1.50140941f + p * w;
  } else {
    w = std::sqrt(w) - 3.0f;
    p = -0.000200214257f;
    p = 0.000100950558f + p * w;
    p = 0.00134934322f + p * w;
    p = -0.00367342844f + p * w;
    p = 0.00573950773f + p * w;
    p = -0.0076224613f + p * w;
    p = 0.00943887047f + p * w;
    p = 1.00167406f + p * w;
    p = 2.83297682f + p * w;
  }
  return p * x;
}

float erfcinv_giles(float x) { return erfinv_giles(1.0f - x); }

float normal_icdf_cuda_from_uniform(float u) {
  return 1.41421356237309505f * erfinv_giles(2.0f * u - 1.0f);
}

float normal_icdf_cuda(std::uint32_t u) {
  // Map to the open interval (0,1): never exactly 0 or 1, so erfinv's
  // argument stays inside (-1, 1).
  const float uf = (static_cast<float>(u) + 0.5f) * 0x1.0p-32f;
  return normal_icdf_cuda_from_uniform(uf);
}

}  // namespace dwi::rng
