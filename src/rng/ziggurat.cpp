#include "rng/ziggurat.h"

#include <cmath>

#include "common/bits.h"

namespace dwi::rng {

namespace {

constexpr double kR = 3.442619855899;        // rightmost layer edge
constexpr double kV = 9.91256303526217e-3;   // per-layer area
constexpr double kM = 2147483648.0;          // 2^31

}  // namespace

ZigguratNormal::ZigguratNormal() {
  // Marsaglia & Tsang's zigset: equal-area layer construction.
  double dn = kR;
  double tn = kR;
  const double q = kV / std::exp(-0.5 * dn * dn);
  k_[0] = static_cast<std::uint32_t>((dn / q) * kM);
  k_[1] = 0;
  w_[0] = q / kM;
  w_[kLayers - 1] = dn / kM;
  f_[0] = 1.0;
  f_[kLayers - 1] = std::exp(-0.5 * dn * dn);
  for (std::size_t i = kLayers - 2; i >= 1; --i) {
    dn = std::sqrt(-2.0 * std::log(kV / dn + std::exp(-0.5 * dn * dn)));
    k_[i + 1] = static_cast<std::uint32_t>((dn / tn) * kM);
    tn = dn;
    f_[i] = std::exp(-0.5 * dn * dn);
    w_[i] = dn / kM;
  }
}

float ZigguratNormal::sample(
    const std::function<std::uint32_t()>& next_u32) {
  ++draws_;
  auto signed_draw = [&] { return static_cast<std::int32_t>(next_u32()); };
  std::int32_t hz = signed_draw();
  unsigned iz = static_cast<unsigned>(hz) & (kLayers - 1);

  for (;;) {
    // Fast path: strictly inside the layer rectangle.
    if (static_cast<std::uint32_t>(hz < 0 ? -(std::int64_t)hz : hz) <
        k_[iz]) {
      return static_cast<float>(hz * w_[iz]);
    }
    ++slow_;

    const double x = hz * w_[iz];
    if (iz == 0) {
      // Tail beyond r: Marsaglia's exponential-wedge tail sampler.
      double tail_x;
      double tail_y;
      do {
        tail_x = -std::log(uint2double(next_u32()) +
                           0x1.0p-33) / kR;
        tail_y = -std::log(uint2double(next_u32()) + 0x1.0p-33);
      } while (tail_y + tail_y < tail_x * tail_x);
      return static_cast<float>(hz > 0 ? kR + tail_x : -kR - tail_x);
    }
    // Wedge: accept under the density between the layer lines.
    if (f_[iz] + uint2double(next_u32()) * (f_[iz - 1] - f_[iz]) <
        std::exp(-0.5 * x * x)) {
      return static_cast<float>(x);
    }
    hz = signed_draw();
    iz = static_cast<unsigned>(hz) & (kLayers - 1);
  }
}

}  // namespace dwi::rng
