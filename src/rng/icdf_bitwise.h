// Bit-level "FPGA-style" inverse normal CDF transform, following the
// hardware-efficient non-uniform-segmentation design of de Schryver et
// al. [19] that the paper uses on the FPGA (§II-D3).
//
// Principle: the normal ICDF Φ^{-1}(t) has a sqrt-log singularity as
// t → 0, so uniform segmentation would need a huge table. Instead the
// input's leading-zero count selects an *octave* (each halving of t
// gets its own segment — pure bit-level logic, a leading-zero detector
// in hardware), the next few mantissa bits select a uniform sub-segment
// inside the octave, and a small degree-2 polynomial in ap_fixed
// arithmetic evaluates the output. No floating point, no division, no
// transcendentals — only LZD, table lookup, and two fixed-point MACs.
//
// On fixed-architecture targets the same structure must be emulated
// with 32-bit integer shift/and/or operations, which §IV-E shows is
// markedly slower there (Table III "ICDF FPGA-style" rows); the
// functional result is identical, only the cost model differs.
//
// Accuracy: |output − Φ^{-1}| validated < 1e-3 absolute over the full
// input range (tests), KS-indistinguishable from normal at n = 10^6.
#pragma once

#include <array>
#include <cstdint>

#include "hls/ap_fixed.h"

namespace dwi::rng {

/// Segmentation geometry and coefficient tables for the bitwise ICDF.
class IcdfBitwiseTable {
 public:
  static constexpr unsigned kOctaves = 31;    ///< LZD-selected octaves
  static constexpr unsigned kSubBits = 3;     ///< sub-segments per octave
  static constexpr unsigned kSubSegments = 1u << kSubBits;

  /// Fixed-point formats: outputs/coefficients span ±~7σ.
  using Coeff = hls::ap_fixed<32, 5>;
  /// Local in-segment coordinate in [0, 1).
  using Local = hls::ap_fixed<32, 2>;

  /// Build the tables from the double-precision reference ICDF
  /// (Chebyshev-node quadratic fit per sub-segment).
  IcdfBitwiseTable();

  /// Shared immutable instance (tables are ~12 KB).
  static const IcdfBitwiseTable& instance();

  struct Segment {
    Coeff c0, c1, c2;  ///< g(x) ≈ c0 + c1·x + c2·x², x ∈ [0,1) local
  };

  const Segment& segment(unsigned octave, unsigned sub) const {
    return segments_[octave * kSubSegments + sub];
  }

  /// Total table footprint in bits (drives the BRAM resource estimate).
  static constexpr unsigned table_bits() {
    return kOctaves * kSubSegments * 3 * Coeff::width;
  }

 private:
  std::array<Segment, kOctaves * kSubSegments> segments_;
};

/// Result of one ICDF evaluation. `valid` is false only for the single
/// unsupported input word (t_int == 0, probability 2^-31); the paper's
/// pipeline treats an invalid normal exactly like a Marsaglia-Bray
/// rejection (the downstream twisters are not advanced).
struct IcdfResult {
  float value = 0.0f;
  bool valid = false;
};

/// Evaluate the bitwise ICDF on a 32-bit uniform integer.
IcdfResult normal_icdf_bitwise(std::uint32_t u);

/// Same evaluation path but returning the raw fixed-point output, for
/// tests that pin the bit-level behaviour.
IcdfBitwiseTable::Coeff normal_icdf_bitwise_fixed(std::uint32_t u,
                                                  bool* valid);

}  // namespace dwi::rng
