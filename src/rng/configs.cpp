#include "rng/configs.h"

#include "common/error.h"

namespace dwi::rng {

const std::array<AppConfig, 4>& all_configs() {
  static const std::array<AppConfig, 4> configs = {
      AppConfig{ConfigId::kConfig1, "Config1", true,
                NormalTransform::kMarsagliaBray,
                NormalTransform::kMarsagliaBray, mt19937_params()},
      AppConfig{ConfigId::kConfig2, "Config2", true,
                NormalTransform::kMarsagliaBray,
                NormalTransform::kMarsagliaBray, mt521_params()},
      AppConfig{ConfigId::kConfig3, "Config3", false,
                NormalTransform::kIcdfBitwise, NormalTransform::kIcdfCuda,
                mt19937_params()},
      AppConfig{ConfigId::kConfig4, "Config4", false,
                NormalTransform::kIcdfBitwise, NormalTransform::kIcdfCuda,
                mt521_params()},
  };
  return configs;
}

const AppConfig& config(ConfigId id) {
  for (const auto& c : all_configs()) {
    if (c.id == id) return c;
  }
  throw Error("unknown configuration id");
}

}  // namespace dwi::rng
