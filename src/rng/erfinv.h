// Single-precision inverse error function after M. Giles, "Approximating
// the erfinv Function", GPU Computing Gems Jade ed., ch. 10 [20] — the
// branch-minimizing polynomial approximation the paper substitutes for
// CUDA's erfcinv inside its "CUDA-style" ICDF (§II-D3), using the
// identity erfcinv(x) = erfinv(1 - x).
//
// The function has exactly one data-dependent branch (central region vs
// tail), taken with probability ~1 - 6.8e-6 on uniform inputs, which is
// why it behaves so well on fixed-SIMD architectures compared to the
// bit-level segmented ICDF.
#pragma once

#include <cstdint>

namespace dwi::rng {

/// erfinv(x) for x in (-1, 1), single precision (Giles' 9-term
/// polynomials; max relative error ~ 4 ulp in the central region).
float erfinv_giles(float x);

/// erfcinv(x) for x in (0, 2) via erfcinv(x) = erfinv(1 - x).
float erfcinv_giles(float x);

/// "CUDA-style" standard normal ICDF transform (modified
/// __curand_normal_icdf): maps a 32-bit uniform integer to a normal
/// variate via Φ^{-1}(u) = sqrt(2) · erfinv(2u − 1). Never rejects.
float normal_icdf_cuda(std::uint32_t u);

/// The same transform applied to a float u in (0, 1).
float normal_icdf_cuda_from_uniform(float u);

}  // namespace dwi::rng
