// Explicitly vectorized block kernels for the sampler's dense inner
// stages, with runtime dispatch.
//
// Contract: every kernel's AVX2 implementation executes the exact
// operation sequence of its scalar reference (same IEEE ops, same
// order, no FMA contraction — builds pin -ffp-contract=off), so the
// two are bit-identical on every input. tests/test_simd_kernels.cpp
// enforces this lane-for-lane; the scalar path is the always-available
// oracle and the fallback on hosts without AVX2.
//
// Dispatch: resolved once per process. The AVX2 translation unit is
// compiled whenever the compiler supports -mavx2 (it is only *executed*
// after a cpuid check), so portable CI builds still run vectorized on
// AVX2 hosts; DWI_NATIVE additionally tunes the scalar surroundings.
// Set DWI_SIMD=scalar (or avx2) in the environment to force a level.
#pragma once

#include <cstddef>
#include <cstdint>

#include "rng/gamma.h"
#include "rng/mersenne_twister.h"

namespace dwi::rng::simd {

enum class Level {
  kScalar,  ///< reference path, always available
  kAvx2,    ///< 8-wide float / 4-wide double kernels
};

const char* to_string(Level level);

/// True when the AVX2 translation unit was compiled into this binary.
bool avx2_compiled();

/// The level the dispatched kernels below will use: cpuid-detected,
/// overridable with DWI_SIMD=scalar|avx2, cached after first query.
Level active_level();

// --- dispatched kernels -------------------------------------------------
// Each `foo` runs `foo_avx2` when active_level() is kAvx2, else
// `foo_scalar`. The scalar variants are exported so tests can oracle
// against them regardless of dispatch state.

/// Marsaglia-Bray polar attempt: value/valid per lane, as
/// marsaglia_bray_attempt(ua[i], ub[i]).
void mb_attempt_block(const std::uint32_t* ua, const std::uint32_t* ub,
                      std::size_t count, float* value, std::uint8_t* valid);
void mb_attempt_block_scalar(const std::uint32_t* ua, const std::uint32_t* ub,
                             std::size_t count, float* value,
                             std::uint8_t* valid);

/// Marsaglia-Bray finish over pre-validated lanes (0 < s[i] < 1):
/// n0[i] *= sqrt(-2 ln s[i] / s[i]). The SIMT engine hoists this out
/// of its divergent region and feeds compacted lanes.
void mb_finish_block(float* n0, const float* s, std::size_t count);
void mb_finish_block_scalar(float* n0, const float* s, std::size_t count);

/// CUDA-style ICDF: value[i] = normal_icdf_cuda(u[i]); never rejects.
void icdf_cuda_block(const std::uint32_t* u, std::size_t count, float* value);
void icdf_cuda_block_scalar(const std::uint32_t* u, std::size_t count,
                            float* value);

/// Bitwise "FPGA-style" ICDF: value/valid per lane, as
/// normal_icdf_bitwise(u[i]). Pure integer datapath (LZD, table
/// lookup, two fixed-point MACs), so the AVX2 variant is exact by
/// construction: 32-bit lanes with 64-bit multiply intermediates
/// reproduce the ap_fixed wrap/truncate semantics bit-for-bit.
void icdf_bitwise_block(const std::uint32_t* u, std::size_t count,
                        float* value, std::uint8_t* valid);
void icdf_bitwise_block_scalar(const std::uint32_t* u, std::size_t count,
                               float* value, std::uint8_t* valid);

/// Marsaglia-Tsang rejection predicate: value/valid per lane, as
/// gamma_attempt(n0[i], uint2float_open0(u1[i]), k). The squeeze test
/// vectorizes; the rare exact-log lanes (~2% at the paper's shapes)
/// fall back to the scalar attempt, which is bitwise-equal anyway.
void gamma_attempt_block(const float* n0, const std::uint32_t* u1,
                         std::size_t count, const GammaConstants& k,
                         float* value, std::uint8_t* valid);
void gamma_attempt_block_scalar(const float* n0, const std::uint32_t* u1,
                                std::size_t count, const GammaConstants& k,
                                float* value, std::uint8_t* valid);

/// α < 1 correction over accepted lanes:
/// g[i] = gamma_correct(g[i], uint2float_open0(u2[i]), k).
void gamma_correct_block(float* g, const std::uint32_t* u2, std::size_t count,
                         const GammaConstants& k);
void gamma_correct_block_scalar(float* g, const std::uint32_t* u2,
                                std::size_t count, const GammaConstants& k);

/// Mersenne-Twister tempering pass: out[i] = temper(state[i]) under
/// p's shift/mask tuple — the dense half of MersenneTwister::refill.
void mt_temper_block(const std::uint32_t* state, std::size_t count,
                     const MtParams& p, std::uint32_t* out);
void mt_temper_block_scalar(const std::uint32_t* state, std::size_t count,
                            const MtParams& p, std::uint32_t* out);

/// One in-place Mersenne-Twister twist pass over `state` (n words)
/// under p's geometry — the recurrence half of MersenneTwister::refill.
/// Pure integer datapath, so all variants are bit-identical. The AVX2
/// variant runs 8 recurrences abreast; it requires m >= 8 and
/// n - m >= 8 (both repo geometries qualify: MT19937 and MT(521)) and
/// falls back to the scalar pass otherwise.
void mt_twist_block(std::uint32_t* state, const MtParams& p);
void mt_twist_block_scalar(std::uint32_t* state, const MtParams& p);

/// Philox4x32-10 counter run: encrypt the `nblocks` consecutive
/// 128-bit counters starting at `counter` (little-endian 4-word,
/// incremented with carry) under `key`, writing 4 outputs per block to
/// `out` in counter order — the bulk half of Philox::generate_block.
/// The AVX2 variant runs the 10 rounds on 8 counters abreast; counter
/// arithmetic is integer-exact, so all variants are bit-identical.
void philox_block(const std::uint32_t* counter, const std::uint32_t* key,
                  std::size_t nblocks, std::uint32_t* out);
void philox_block_scalar(const std::uint32_t* counter, const std::uint32_t* key,
                         std::size_t nblocks, std::uint32_t* out);

// --- AVX2 variants (defined only when the TU is compiled; call through
// the dispatched entry points unless testing) ---------------------------
#if defined(DWI_SIMD_AVX2)
void mb_attempt_block_avx2(const std::uint32_t* ua, const std::uint32_t* ub,
                           std::size_t count, float* value,
                           std::uint8_t* valid);
void mb_finish_block_avx2(float* n0, const float* s, std::size_t count);
void icdf_cuda_block_avx2(const std::uint32_t* u, std::size_t count,
                          float* value);
void icdf_bitwise_block_avx2(const std::uint32_t* u, std::size_t count,
                             float* value, std::uint8_t* valid);
void gamma_attempt_block_avx2(const float* n0, const std::uint32_t* u1,
                              std::size_t count, const GammaConstants& k,
                              float* value, std::uint8_t* valid);
void gamma_correct_block_avx2(float* g, const std::uint32_t* u2,
                              std::size_t count, const GammaConstants& k);
void mt_temper_block_avx2(const std::uint32_t* state, std::size_t count,
                          const MtParams& p, std::uint32_t* out);
void mt_twist_block_avx2(std::uint32_t* state, const MtParams& p);
void philox_block_avx2(const std::uint32_t* counter, const std::uint32_t* key,
                       std::size_t nblocks, std::uint32_t* out);
#endif

}  // namespace dwi::rng::simd
