// Ziggurat gaussian generator (Marsaglia & Tsang 2000) — the fastest
// classic software method in the GRNG survey the paper cites [16].
// Included as the software baseline the FPGA transforms compete with:
// table lookup + one multiply on ~98.8 % of draws, with the wedge and
// tail handled by rejection. Like Marsaglia-Bray it is a rejection
// method with data-dependent branches (the paper's divergence
// stressor); unlike it, the common path never touches log/sqrt.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

namespace dwi::rng {

class ZigguratNormal {
 public:
  ZigguratNormal();

  /// One N(0,1) variate; `next_u32` supplies all randomness.
  float sample(const std::function<std::uint32_t()>& next_u32);

  /// Fraction of draws that left the fast path (wedge/tail handling) —
  /// the divergence rate a lockstep architecture would pay for.
  double slow_path_rate() const {
    return draws_ == 0 ? 0.0
                       : static_cast<double>(slow_) /
                             static_cast<double>(draws_);
  }

 private:
  static constexpr unsigned kLayers = 128;
  std::array<double, kLayers> w_{};
  std::array<double, kLayers> f_{};
  std::array<std::uint32_t, kLayers> k_{};
  std::uint64_t draws_ = 0;
  std::uint64_t slow_ = 0;
};

}  // namespace dwi::rng
