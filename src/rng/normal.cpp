#include "rng/normal.h"

#include <cmath>
#include <numbers>

#include "common/bits.h"
#include "common/error.h"
#include "rng/erfinv.h"
#include "rng/fastmath.h"
#include "rng/icdf_bitwise.h"
#include "rng/simd_kernels.h"

namespace dwi::rng {

const char* to_string(NormalTransform t) {
  switch (t) {
    case NormalTransform::kMarsagliaBray: return "Marsaglia-Bray";
    case NormalTransform::kIcdfBitwise: return "ICDF (FPGA-style)";
    case NormalTransform::kIcdfCuda: return "ICDF (CUDA-style)";
    case NormalTransform::kBoxMuller: return "Box-Muller";
  }
  return "?";
}

unsigned uniforms_per_attempt(NormalTransform t) {
  switch (t) {
    case NormalTransform::kMarsagliaBray: return 2;
    case NormalTransform::kIcdfBitwise: return 1;
    case NormalTransform::kIcdfCuda: return 1;
    case NormalTransform::kBoxMuller: return 2;
  }
  return 1;
}

NormalAttempt marsaglia_bray_attempt(std::uint32_t u1, std::uint32_t u2) {
  // Map each uniform to (-1, 1); the open-interval mapping keeps s > 0.
  const float v1 = 2.0f * uint2float_open0(u1) - 1.0f;
  const float v2 = 2.0f * uint2float_open0(u2) - 1.0f;
  const float s = v1 * v1 + v2 * v2;
  if (s >= 1.0f || s == 0.0f) return NormalAttempt{0.0f, false};
  const float f = std::sqrt(-2.0f * fast_logf(s) / s);
  return NormalAttempt{v1 * f, true};
}

float box_muller(std::uint32_t u1, std::uint32_t u2, float* second) {
  const float a = uint2float_open0(u1);  // (0, 1], safe for log
  const float b = uint2float(u2);        // [0, 1)
  const float r = std::sqrt(-2.0f * std::log(a));
  const float theta = 2.0f * std::numbers::pi_v<float> * b;
  if (second != nullptr) *second = r * std::sin(theta);
  return r * std::cos(theta);
}

NormalAttempt normal_attempt(NormalTransform t, std::uint32_t u1,
                             std::uint32_t u2) {
  switch (t) {
    case NormalTransform::kMarsagliaBray:
      return marsaglia_bray_attempt(u1, u2);
    case NormalTransform::kIcdfBitwise: {
      const IcdfResult r = normal_icdf_bitwise(u1);
      return NormalAttempt{r.value, r.valid};
    }
    case NormalTransform::kIcdfCuda:
      return NormalAttempt{normal_icdf_cuda(u1), true};
    case NormalTransform::kBoxMuller:
      return NormalAttempt{box_muller(u1, u2), true};
  }
  return NormalAttempt{};
}

void normal_attempt_block(NormalTransform t, const std::uint32_t* ua,
                          const std::uint32_t* ub, std::size_t count,
                          float* value, std::uint8_t* valid) {
  switch (t) {
    case NormalTransform::kMarsagliaBray:
      // Dispatched block kernel (AVX2 when available; bit-identical
      // scalar otherwise — rng/simd_kernels.h).
      simd::mb_attempt_block(ua, ub, count, value, valid);
      return;
    case NormalTransform::kIcdfBitwise:
      // Dispatched integer kernel; exact by construction (LZD + table
      // lookup + fixed-point MACs have no rounding to diverge on).
      simd::icdf_bitwise_block(ua, count, value, valid);
      return;
    case NormalTransform::kIcdfCuda:
      simd::icdf_cuda_block(ua, count, value);
      for (std::size_t i = 0; i < count; ++i) valid[i] = 1;
      return;
    case NormalTransform::kBoxMuller:
      for (std::size_t i = 0; i < count; ++i) {
        value[i] = box_muller(ua[i], ub[i]);
        valid[i] = 1;
      }
      return;
  }
}

double analytic_acceptance(NormalTransform t) {
  switch (t) {
    case NormalTransform::kMarsagliaBray: return std::numbers::pi / 4.0;
    case NormalTransform::kIcdfBitwise: return 1.0 - 0x1.0p-31;
    case NormalTransform::kIcdfCuda: return 1.0;
    case NormalTransform::kBoxMuller: return 1.0;
  }
  return 1.0;
}

}  // namespace dwi::rng
