#include "rng/simd_kernels.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/bits.h"
#include "rng/erfinv.h"
#include "rng/fastmath.h"
#include "rng/icdf_bitwise.h"
#include "rng/normal.h"
#include "rng/philox.h"

namespace dwi::rng::simd {

const char* to_string(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
  }
  return "?";
}

bool avx2_compiled() {
#if defined(DWI_SIMD_AVX2)
  return true;
#else
  return false;
#endif
}

namespace {

Level detect_level() {
  if (const char* e = std::getenv("DWI_SIMD")) {
    if (std::strcmp(e, "scalar") == 0) return Level::kScalar;
    if (std::strcmp(e, "avx2") == 0 && avx2_compiled()) return Level::kAvx2;
    // Unknown or unavailable request: fall through to detection so a
    // typo degrades to the safe default instead of crashing later.
  }
#if defined(DWI_SIMD_AVX2)
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
}

}  // namespace

Level active_level() {
  static const Level level = detect_level();
  return level;
}

// --- scalar references --------------------------------------------------
// These call the canonical scalar functions so the oracle is the
// production scalar path itself, not a reimplementation.

void mb_attempt_block_scalar(const std::uint32_t* ua, const std::uint32_t* ub,
                             std::size_t count, float* value,
                             std::uint8_t* valid) {
  for (std::size_t i = 0; i < count; ++i) {
    const NormalAttempt a = marsaglia_bray_attempt(ua[i], ub[i]);
    value[i] = a.value;
    valid[i] = a.valid ? 1 : 0;
  }
}

void mb_finish_block_scalar(float* n0, const float* s, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    n0[i] = n0[i] * std::sqrt(-2.0f * fast_logf(s[i]) / s[i]);
  }
}

void icdf_cuda_block_scalar(const std::uint32_t* u, std::size_t count,
                            float* value) {
  for (std::size_t i = 0; i < count; ++i) {
    value[i] = normal_icdf_cuda(u[i]);
  }
}

void icdf_bitwise_block_scalar(const std::uint32_t* u, std::size_t count,
                               float* value, std::uint8_t* valid) {
  for (std::size_t i = 0; i < count; ++i) {
    const IcdfResult r = normal_icdf_bitwise(u[i]);
    value[i] = r.value;
    valid[i] = r.valid ? 1 : 0;
  }
}

void gamma_attempt_block_scalar(const float* n0, const std::uint32_t* u1,
                                std::size_t count, const GammaConstants& k,
                                float* value, std::uint8_t* valid) {
  for (std::size_t i = 0; i < count; ++i) {
    const GammaAttempt g = gamma_attempt(n0[i], uint2float_open0(u1[i]), k);
    value[i] = g.value;
    valid[i] = g.valid ? 1 : 0;
  }
}

void gamma_correct_block_scalar(float* g, const std::uint32_t* u2,
                                std::size_t count, const GammaConstants& k) {
  for (std::size_t i = 0; i < count; ++i) {
    g[i] = gamma_correct(g[i], uint2float_open0(u2[i]), k);
  }
}

void mt_temper_block_scalar(const std::uint32_t* state, std::size_t count,
                            const MtParams& p, std::uint32_t* out) {
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t y = state[i];
    y ^= (y >> p.u) & p.d;
    y ^= (y << p.s) & p.b;
    y ^= (y << p.t) & p.c;
    y ^= y >> p.l;
    out[i] = y;
  }
}

void mt_twist_block_scalar(std::uint32_t* state, const MtParams& p) {
  // Mirror of the classic three-segment twist (see the commentary in
  // MersenneTwister::twist before it delegated here). (-(x & 1)) & a
  // selects the twist coefficient branchlessly — the lsb is
  // effectively random, so a conditional would mispredict half the
  // time.
  std::uint32_t* s = state;
  const unsigned n = p.n;
  const unsigned m = p.m;
  const std::uint32_t a = p.a;
  const std::uint32_t lm =
      (p.r == 32) ? 0xffffffffu : ((std::uint32_t{1} << p.r) - 1);
  const std::uint32_t um = ~lm;

  for (unsigned i = 0; i < n - m; ++i) {
    const std::uint32_t x = (s[i] & um) | (s[i + 1] & lm);
    s[i] = s[i + m] ^ (x >> 1) ^ ((-(x & 1u)) & a);
  }
  for (unsigned i = n - m; i < n - 1; ++i) {
    const std::uint32_t x = (s[i] & um) | (s[i + 1] & lm);
    s[i] = s[i + m - n] ^ (x >> 1) ^ ((-(x & 1u)) & a);
  }
  {
    const std::uint32_t x = (s[n - 1] & um) | (s[0] & lm);
    s[n - 1] = s[m - 1] ^ (x >> 1) ^ ((-(x & 1u)) & a);
  }
}

void philox_block_scalar(const std::uint32_t* counter, const std::uint32_t* key,
                         std::size_t nblocks, std::uint32_t* out) {
  std::array<std::uint32_t, 4> c{counter[0], counter[1], counter[2],
                                 counter[3]};
  const std::array<std::uint32_t, 2> k{key[0], key[1]};
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::array<std::uint32_t, 4> r = philox4x32(c, k);
    out[0] = r[0];
    out[1] = r[1];
    out[2] = r[2];
    out[3] = r[3];
    out += 4;
    for (auto& w : c) {
      if (++w != 0) break;
    }
  }
}

// --- dispatched entry points --------------------------------------------

#if defined(DWI_SIMD_AVX2)
#define DWI_DISPATCH(fn, ...)                                     \
  do {                                                            \
    if (active_level() == Level::kAvx2) return fn##_avx2(__VA_ARGS__); \
    return fn##_scalar(__VA_ARGS__);                              \
  } while (0)
#else
#define DWI_DISPATCH(fn, ...) return fn##_scalar(__VA_ARGS__)
#endif

void mb_attempt_block(const std::uint32_t* ua, const std::uint32_t* ub,
                      std::size_t count, float* value, std::uint8_t* valid) {
  DWI_DISPATCH(mb_attempt_block, ua, ub, count, value, valid);
}

void mb_finish_block(float* n0, const float* s, std::size_t count) {
  DWI_DISPATCH(mb_finish_block, n0, s, count);
}

void icdf_cuda_block(const std::uint32_t* u, std::size_t count, float* value) {
  DWI_DISPATCH(icdf_cuda_block, u, count, value);
}

void icdf_bitwise_block(const std::uint32_t* u, std::size_t count,
                        float* value, std::uint8_t* valid) {
  DWI_DISPATCH(icdf_bitwise_block, u, count, value, valid);
}

void gamma_attempt_block(const float* n0, const std::uint32_t* u1,
                         std::size_t count, const GammaConstants& k,
                         float* value, std::uint8_t* valid) {
  DWI_DISPATCH(gamma_attempt_block, n0, u1, count, k, value, valid);
}

void gamma_correct_block(float* g, const std::uint32_t* u2, std::size_t count,
                         const GammaConstants& k) {
  DWI_DISPATCH(gamma_correct_block, g, u2, count, k);
}

void mt_temper_block(const std::uint32_t* state, std::size_t count,
                     const MtParams& p, std::uint32_t* out) {
  DWI_DISPATCH(mt_temper_block, state, count, p, out);
}

void mt_twist_block(std::uint32_t* state, const MtParams& p) {
  DWI_DISPATCH(mt_twist_block, state, p);
}

void philox_block(const std::uint32_t* counter, const std::uint32_t* key,
                  std::size_t nblocks, std::uint32_t* out) {
  DWI_DISPATCH(philox_block, counter, key, nblocks, out);
}

#undef DWI_DISPATCH

}  // namespace dwi::rng::simd
