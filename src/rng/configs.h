// The four application configurations of Table I, shared by every
// engine (FPGA simulator, SIMT model, mini-OpenCL runtime, benches).
//
//   Config1: Marsaglia-Bray + MT(19937)   (624 state words / twister)
//   Config2: Marsaglia-Bray + MT(521)     (17 state words / twister)
//   Config3: ICDF          + MT(19937)
//   Config4: ICDF          + MT(521)
//
// For the ICDF configurations the *functional* transform differs by
// platform (§II-D3): the FPGA uses the bit-level segmented version,
// the fixed architectures use the CUDA-style erfinv version (the
// FPGA-style one is also runnable there — Table III's "ICDF FPGA-style"
// rows — just slow). Marsaglia-Bray is identical everywhere.
#pragma once

#include <array>
#include <cstdint>

#include "rng/mersenne_twister.h"
#include "rng/normal.h"

namespace dwi::rng {

enum class ConfigId : unsigned { kConfig1 = 1, kConfig2, kConfig3, kConfig4 };

struct AppConfig {
  ConfigId id;
  const char* name;
  /// Transform family of Table I (MB for 1/2, ICDF for 3/4).
  bool uses_marsaglia_bray;
  /// Concrete transform on the FPGA.
  NormalTransform fpga_transform;
  /// Concrete transform on CPU/GPU/PHI ("CUDA-style" by default, per
  /// §IV-B; Table III also reports the FPGA-style variant there).
  NormalTransform fixed_arch_transform;
  MtParams mt;

  /// Twisters per work-item: MB needs two parallel input sequences
  /// ([18]) plus rejection and correction uniforms; ICDF needs one
  /// input sequence plus the same two.
  unsigned num_twisters() const { return uses_marsaglia_bray ? 4u : 3u; }

  /// Private PRNG state bytes per work-item (drives spill/occupancy
  /// modelling on fixed architectures and BRAM on the FPGA).
  std::uint64_t state_bytes_per_work_item() const {
    return static_cast<std::uint64_t>(num_twisters()) * mt.n * 4u;
  }
};

/// The Table I configuration set, in order Config1..Config4.
const std::array<AppConfig, 4>& all_configs();

/// Lookup by id.
const AppConfig& config(ConfigId id);

}  // namespace dwi::rng
