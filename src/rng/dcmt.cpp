#include "rng/dcmt.h"

#include <algorithm>

#include "common/error.h"

namespace dwi::rng {

Gf2Matrix::Gf2Matrix(unsigned dim)
    : dim_(dim), words_per_row_((dim + 63) / 64),
      bits_(static_cast<std::size_t>(dim) * words_per_row_, 0) {
  DWI_REQUIRE(dim >= 1 && dim <= 4096, "GF(2) matrix dimension out of range");
}

Gf2Matrix Gf2Matrix::identity(unsigned dim) {
  Gf2Matrix m(dim);
  for (unsigned i = 0; i < dim; ++i) m.set(i, i, true);
  return m;
}

bool Gf2Matrix::get(unsigned row, unsigned col) const {
  DWI_ASSERT(row < dim_ && col < dim_);
  return (bits_[static_cast<std::size_t>(row) * words_per_row_ + col / 64] >>
          (col % 64)) &
         1u;
}

void Gf2Matrix::set(unsigned row, unsigned col, bool v) {
  DWI_ASSERT(row < dim_ && col < dim_);
  auto& w = bits_[static_cast<std::size_t>(row) * words_per_row_ + col / 64];
  const std::uint64_t mask = std::uint64_t{1} << (col % 64);
  if (v) {
    w |= mask;
  } else {
    w &= ~mask;
  }
}

Gf2Matrix Gf2Matrix::operator*(const Gf2Matrix& o) const {
  DWI_REQUIRE(dim_ == o.dim_, "dimension mismatch");
  Gf2Matrix r(dim_);
  // Row-major accumulation: result row i = XOR of o's rows j where
  // this(i, j) = 1. Inner loops stream whole limb rows — the
  // bit-sliced form that makes the 521 squarings of the period proof
  // affordable.
  for (unsigned i = 0; i < dim_; ++i) {
    const std::uint64_t* a_row =
        &bits_[static_cast<std::size_t>(i) * words_per_row_];
    std::uint64_t* r_row =
        &r.bits_[static_cast<std::size_t>(i) * words_per_row_];
    for (unsigned jw = 0; jw < words_per_row_; ++jw) {
      std::uint64_t a_bits = a_row[jw];
      while (a_bits != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctzll(a_bits));
        a_bits &= a_bits - 1;
        const unsigned j = jw * 64 + bit;
        const std::uint64_t* b_row =
            &o.bits_[static_cast<std::size_t>(j) * words_per_row_];
        for (unsigned k = 0; k < words_per_row_; ++k) r_row[k] ^= b_row[k];
      }
    }
  }
  return r;
}

bool Gf2Matrix::operator==(const Gf2Matrix& o) const {
  return dim_ == o.dim_ && bits_ == o.bits_;
}

unsigned Gf2Matrix::rank() const {
  std::vector<std::uint64_t> rows = bits_;
  unsigned rank = 0;
  for (unsigned col = 0; col < dim_ && rank < dim_; ++col) {
    // Find a pivot row at or below `rank` with bit `col` set.
    unsigned pivot = dim_;
    for (unsigned r = rank; r < dim_; ++r) {
      if ((rows[static_cast<std::size_t>(r) * words_per_row_ + col / 64] >>
           (col % 64)) &
          1u) {
        pivot = r;
        break;
      }
    }
    if (pivot == dim_) continue;
    if (pivot != rank) {
      for (unsigned k = 0; k < words_per_row_; ++k) {
        std::swap(rows[static_cast<std::size_t>(pivot) * words_per_row_ + k],
                  rows[static_cast<std::size_t>(rank) * words_per_row_ + k]);
      }
    }
    for (unsigned r = rank + 1; r < dim_; ++r) {
      if ((rows[static_cast<std::size_t>(r) * words_per_row_ + col / 64] >>
           (col % 64)) &
          1u) {
        for (unsigned k = 0; k < words_per_row_; ++k) {
          rows[static_cast<std::size_t>(r) * words_per_row_ + k] ^=
              rows[static_cast<std::size_t>(rank) * words_per_row_ + k];
        }
      }
    }
    ++rank;
  }
  return rank;
}

std::vector<std::uint64_t> Gf2Matrix::apply(
    const std::vector<std::uint64_t>& x) const {
  DWI_REQUIRE(x.size() == words_per_row_, "vector size mismatch");
  std::vector<std::uint64_t> y(words_per_row_, 0);
  for (unsigned i = 0; i < dim_; ++i) {
    const std::uint64_t* row =
        &bits_[static_cast<std::size_t>(i) * words_per_row_];
    std::uint64_t acc = 0;
    for (unsigned k = 0; k < words_per_row_; ++k) acc ^= row[k] & x[k];
    if (__builtin_parityll(acc)) y[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  return y;
}

namespace {

/// One untempered MT word-step on a raw n-word state: the state
/// (x_0 .. x_{n-1}) advances to (x_1 .. x_n) with
/// x_n = x_m ⊕ twist((x_0 & upper) | (x_1 & lower)).
void mt_word_step(const MtParams& p, std::vector<std::uint32_t>& x) {
  const std::uint32_t lower =
      p.r == 32 ? 0xffffffffu : ((std::uint32_t{1} << p.r) - 1);
  const std::uint32_t upper = ~lower;
  const std::uint32_t mixed = (x[0] & upper) | (x[1] & lower);
  std::uint32_t xa = mixed >> 1;
  if (mixed & 1u) xa ^= p.a;
  const std::uint32_t next = x[p.m] ^ xa;
  for (unsigned i = 0; i + 1 < p.n; ++i) x[i] = x[i + 1];
  x[p.n - 1] = next;
}

/// Map a p-dimensional GF(2) basis index to the raw state layout: bit
/// 0..(w-r-1) are the upper bits of x_0; the rest fill x_1..x_{n-1}.
void basis_to_state(const MtParams& p, unsigned bit,
                    std::vector<std::uint32_t>& x) {
  std::fill(x.begin(), x.end(), 0u);
  const unsigned top_bits = 32 - p.r;
  if (bit < top_bits) {
    x[0] = std::uint32_t{1} << (p.r + bit);
  } else {
    const unsigned rest = bit - top_bits;
    x[1 + rest / 32] = std::uint32_t{1} << (rest % 32);
  }
}

/// Inverse of basis_to_state: read the p significant bits of the state.
void state_to_bits(const MtParams& p, const std::vector<std::uint32_t>& x,
                   Gf2Matrix& t, unsigned col) {
  const unsigned top_bits = 32 - p.r;
  for (unsigned b = 0; b < top_bits; ++b) {
    if ((x[0] >> (p.r + b)) & 1u) t.set(b, col, true);
  }
  unsigned row = top_bits;
  for (unsigned wi = 1; wi < p.n; ++wi) {
    for (unsigned b = 0; b < 32; ++b, ++row) {
      if ((x[wi] >> b) & 1u) t.set(row, col, true);
    }
  }
}

}  // namespace

Gf2Matrix mt_transition_matrix(const MtParams& params) {
  const unsigned p = params.period_exponent();
  Gf2Matrix t(p);
  std::vector<std::uint32_t> state(params.n);
  for (unsigned col = 0; col < p; ++col) {
    basis_to_state(params, col, state);
    mt_word_step(params, state);
    state_to_bits(params, state, t, col);
  }
  return t;
}

bool is_known_mersenne_prime_exponent(unsigned p) {
  // Mersenne prime exponents relevant to MT geometries.
  static constexpr unsigned kExponents[] = {
      2,    3,    5,    7,    13,   17,   19,   31,   61,    89,
      107,  127,  521,  607,  1279, 2203, 2281, 3217, 4253,  4423,
      9689, 9941, 11213, 19937, 21701, 23209, 44497};
  for (unsigned e : kExponents) {
    if (e == p) return true;
  }
  return false;
}

bool verify_full_period(const MtParams& params) {
  const unsigned p = params.period_exponent();
  DWI_REQUIRE(is_known_mersenne_prime_exponent(p),
              "period exponent is not a known Mersenne prime exponent");
  DWI_REQUIRE(p <= 1300,
              "period proof limited to p <= 1300 (cost grows as p^3)");

  const Gf2Matrix t = mt_transition_matrix(params);
  const Gf2Matrix id = Gf2Matrix::identity(p);
  if (t == id) return false;
  if (!t.invertible()) return false;

  // T^(2^p) via p squarings; full period iff it returns to T.
  Gf2Matrix s = t;
  for (unsigned i = 0; i < p; ++i) s = s.square();
  return s == t;
}

std::optional<MtParams> find_full_period_twist(MtParams params,
                                               std::uint32_t start_a,
                                               unsigned max_tries) {
  std::uint32_t a = start_a | 1u;  // twist coefficients are odd
  for (unsigned i = 0; i < max_tries; ++i) {
    params.a = a;
    if (verify_full_period(params)) return params;
    a += 2u;
  }
  return std::nullopt;
}

}  // namespace dwi::rng
