// AVX2 implementations of the block kernels in rng/simd_kernels.h.
//
// Compiled with -mavx2 -ffp-contract=off and only ever *called* after
// a cpuid check (see active_level()). Bit-identity rule: every float or
// double operation here is the same IEEE operation, in the same order,
// as the scalar reference — multiplies and adds stay separate (no
// FMA intrinsics), divisions and square roots are the correctly
// rounded vector forms, and the fastmath table lookups become gathers.
// Lanes a scalar early-out would skip are computed anyway and masked
// off; inputs outside the kernels' normal-range assumptions drop the
// whole 8-lane group to the scalar oracle, which is bitwise equal by
// construction.
#include "rng/simd_kernels.h"

#if defined(DWI_SIMD_AVX2)

#include <immintrin.h>

#include "common/bits.h"
#include "rng/fastmath.h"
#include "rng/icdf_bitwise.h"

namespace dwi::rng::simd {

namespace {

using namespace fastmath_detail;

/// Lanes whose float bits are below the normal range (subnormal, zero,
/// or negative — nothing the samplers produce, but the scalar fallback
/// keeps even abuse deterministic).
inline int nonnormal_mask(__m256 x) {
  const __m256i bits = _mm256_castps_si256(x);
  const __m256i small =
      _mm256_cmpgt_epi32(_mm256_set1_epi32(0x00800000), bits);
  return _mm256_movemask_ps(_mm256_castsi256_ps(small));
}

/// uint2float_open0 lane-wise: ((u >> 9) + 0.5f) * 0x1.0p-23f.
/// Every step is exact (see common/bits.h), so cvtepi32 is safe.
inline __m256 v_open0(__m256i u) {
  const __m256 f = _mm256_cvtepi32_ps(_mm256_srli_epi32(u, 9));
  return _mm256_mul_ps(_mm256_add_ps(f, _mm256_set1_ps(0.5f)),
                       _mm256_set1_ps(0x1.0p-23f));
}

struct VLogParts {
  __m256d r_lo, r_hi;
  __m256d kd_lo, kd_hi;
  __m128i idx_lo, idx_hi;
};

/// log_parts() for 8 positive normal floats (no subnormal branch —
/// callers route those groups to the scalar kernel).
inline VLogParts v_log_parts(__m256 x) {
  const __m256i ix = _mm256_castps_si256(x);
  const __m256i tmp = _mm256_sub_epi32(ix, _mm256_set1_epi32(
                                               static_cast<int>(kOff)));
  const __m256i idx = _mm256_and_si256(_mm256_srli_epi32(tmp, 19),
                                       _mm256_set1_epi32(15));
  const __m256i k = _mm256_srai_epi32(tmp, 23);
  const __m256i iz = _mm256_sub_epi32(
      ix, _mm256_and_si256(tmp, _mm256_set1_epi32(
                                    static_cast<int>(0xff800000u))));
  const __m256 z = _mm256_castsi256_ps(iz);

  VLogParts p;
  p.idx_lo = _mm256_castsi256_si128(idx);
  p.idx_hi = _mm256_extracti128_si256(idx, 1);
  const __m256d z_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(z));
  const __m256d z_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(z, 1));
  const __m256d invc_lo = _mm256_i32gather_pd(kInvC, p.idx_lo, 8);
  const __m256d invc_hi = _mm256_i32gather_pd(kInvC, p.idx_hi, 8);
  const __m256d one = _mm256_set1_pd(1.0);
  p.r_lo = _mm256_sub_pd(_mm256_mul_pd(z_lo, invc_lo), one);
  p.r_hi = _mm256_sub_pd(_mm256_mul_pd(z_hi, invc_hi), one);
  p.kd_lo = _mm256_cvtepi32_pd(_mm256_castsi256_si128(k));
  p.kd_hi = _mm256_cvtepi32_pd(_mm256_extracti128_si256(k, 1));
  return p;
}

/// lnp1() — same Horner chain, mul and add kept separate.
inline __m256d v_lnp1(__m256d r) {
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d p = _mm256_set1_pd(kP6);
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(kP5));
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(kP4));
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(kP3));
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(kP2));
  p = _mm256_add_pd(_mm256_mul_pd(p, r), one);
  p = _mm256_mul_pd(p, r);
  return p;
}

/// fast_logf() for 8 positive normal floats.
inline __m256 v_fast_logf(__m256 x) {
  const VLogParts p = v_log_parts(x);
  const __m256d ln2 = _mm256_set1_pd(kLn2);
  const __m256d y_lo =
      _mm256_add_pd(_mm256_mul_pd(p.kd_lo, ln2),
                    _mm256_i32gather_pd(kLogC, p.idx_lo, 8));
  const __m256d y_hi =
      _mm256_add_pd(_mm256_mul_pd(p.kd_hi, ln2),
                    _mm256_i32gather_pd(kLogC, p.idx_hi, 8));
  const __m256d r_lo = _mm256_add_pd(y_lo, v_lnp1(p.r_lo));
  const __m256d r_hi = _mm256_add_pd(y_hi, v_lnp1(p.r_hi));
  return _mm256_set_m128(_mm256_cvtpd_ps(r_hi), _mm256_cvtpd_ps(r_lo));
}

/// fast_log2d() for one 4-lane half.
inline __m256d v_log2d_half(__m256d r, __m256d kd, __m128i idx) {
  const __m256d log2c = _mm256_i32gather_pd(kLog2C, idx, 8);
  return _mm256_add_pd(_mm256_add_pd(kd, log2c),
                       _mm256_mul_pd(v_lnp1(r), _mm256_set1_pd(kInvLn2)));
}

/// exp2_pos() for 4 doubles in the clamped range.
inline __m256d v_exp2(__m256d t) {
  const __m256d magic = _mm256_set1_pd(0x1.8p52);
  const __m256d scaled = _mm256_mul_pd(t, _mm256_set1_pd(32.0));
  const __m256d kd_plus = _mm256_add_pd(scaled, magic);
  // Low dword of each double's bit pattern = the rounded int32.
  const __m256i kb = _mm256_castpd_si256(kd_plus);
  const __m256i packed = _mm256_permute4x64_epi64(
      _mm256_shuffle_epi32(kb, _MM_SHUFFLE(2, 0, 2, 0)),
      _MM_SHUFFLE(3, 3, 2, 0));
  const __m128i ki = _mm256_castsi256_si128(packed);
  const __m256d kd = _mm256_sub_pd(kd_plus, magic);
  const __m256d w = _mm256_mul_pd(_mm256_sub_pd(scaled, kd),
                                  _mm256_set1_pd(kLn2Div32));
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d q = _mm256_set1_pd(kQ4);
  q = _mm256_add_pd(_mm256_mul_pd(q, w), _mm256_set1_pd(kQ3));
  q = _mm256_add_pd(_mm256_mul_pd(q, w), _mm256_set1_pd(kQ2));
  q = _mm256_add_pd(_mm256_mul_pd(q, w), one);
  q = _mm256_add_pd(_mm256_mul_pd(q, w), one);
  const __m256i tab = _mm256_i32gather_epi64(
      reinterpret_cast<const long long*>(kExp2Tab),
      _mm_and_si128(ki, _mm_set1_epi32(31)), 8);
  const __m256i expo = _mm256_slli_epi64(
      _mm256_cvtepi32_epi64(_mm_srai_epi32(ki, 5)), 52);
  const __m256d s = _mm256_castsi256_pd(_mm256_add_epi64(tab, expo));
  return _mm256_mul_pd(s, q);
}

/// Write the sign bits of an 8-lane float mask as 0/1 bytes.
inline void store_valid(__m256 mask, std::uint8_t* valid) {
  const int m = _mm256_movemask_ps(mask);
  for (int i = 0; i < 8; ++i) valid[i] = static_cast<std::uint8_t>((m >> i) & 1);
}

}  // namespace

void mb_attempt_block_avx2(const std::uint32_t* ua, const std::uint32_t* ub,
                           std::size_t count, float* value,
                           std::uint8_t* valid) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 two = _mm256_set1_ps(2.0f);
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ua + i));
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ub + i));
    const __m256 v1 = _mm256_sub_ps(_mm256_mul_ps(two, v_open0(a)), one);
    const __m256 v2 = _mm256_sub_ps(_mm256_mul_ps(two, v_open0(b)), one);
    const __m256 s = _mm256_add_ps(_mm256_mul_ps(v1, v1),
                                   _mm256_mul_ps(v2, v2));
    if (nonnormal_mask(s) != 0) {  // unreachable for open0 inputs; safety
      mb_attempt_block_scalar(ua + i, ub + i, 8, value + i, valid + i);
      continue;
    }
    const __m256 ok = _mm256_and_ps(
        _mm256_cmp_ps(s, one, _CMP_LT_OQ),
        _mm256_cmp_ps(s, _mm256_setzero_ps(), _CMP_GT_OQ));
    const __m256 logs = v_fast_logf(s);
    const __m256 f = _mm256_sqrt_ps(_mm256_div_ps(
        _mm256_mul_ps(_mm256_set1_ps(-2.0f), logs), s));
    const __m256 val = _mm256_and_ps(_mm256_mul_ps(v1, f), ok);
    _mm256_storeu_ps(value + i, val);
    store_valid(ok, valid + i);
  }
  if (i < count) {
    mb_attempt_block_scalar(ua + i, ub + i, count - i, value + i, valid + i);
  }
}

void mb_finish_block_avx2(float* n0, const float* s, std::size_t count) {
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256 sv = _mm256_loadu_ps(s + i);
    if (nonnormal_mask(sv) != 0) {
      mb_finish_block_scalar(n0 + i, s + i, 8);
      continue;
    }
    const __m256 logs = v_fast_logf(sv);
    const __m256 f = _mm256_sqrt_ps(_mm256_div_ps(
        _mm256_mul_ps(_mm256_set1_ps(-2.0f), logs), sv));
    _mm256_storeu_ps(n0 + i, _mm256_mul_ps(_mm256_loadu_ps(n0 + i), f));
  }
  if (i < count) mb_finish_block_scalar(n0 + i, s + i, count - i);
}

void icdf_cuda_block_avx2(const std::uint32_t* u, std::size_t count,
                          float* value) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256i dbias = _mm256_set1_epi64x(0x4330000000000000ll);
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i ui = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(u + i));
    // Exact u32 -> double (bias-bit trick), then the correctly rounded
    // double -> float matches the scalar static_cast<float>(u).
    const __m256i lo64 = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(ui));
    const __m256i hi64 =
        _mm256_cvtepu32_epi64(_mm256_extracti128_si256(ui, 1));
    const __m256d d52 = _mm256_set1_pd(0x1.0p52);
    const __m256d d_lo = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(lo64, dbias)), d52);
    const __m256d d_hi = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(hi64, dbias)), d52);
    const __m256 uf32 =
        _mm256_set_m128(_mm256_cvtpd_ps(d_hi), _mm256_cvtpd_ps(d_lo));
    const __m256 uf = _mm256_mul_ps(
        _mm256_add_ps(uf32, _mm256_set1_ps(0.5f)),
        _mm256_set1_ps(0x1.0p-32f));
    const __m256 x = _mm256_sub_ps(_mm256_mul_ps(_mm256_set1_ps(2.0f), uf),
                                   one);
    const __m256 arg = _mm256_mul_ps(_mm256_sub_ps(one, x),
                                     _mm256_add_ps(one, x));
    if (nonnormal_mask(arg) != 0) {  // |x| rounded to 1 (u within 64 of
      icdf_cuda_block_scalar(u + i, 8, value + i);  // an endpoint)
      continue;
    }
    const __m256 w = _mm256_xor_ps(v_fast_logf(arg),
                                   _mm256_set1_ps(-0.0f));
    // Giles' two polynomial branches, both evaluated, blended on w < 5.
    const __m256 wc = _mm256_sub_ps(w, _mm256_set1_ps(2.5f));
    __m256 pc = _mm256_set1_ps(2.81022636e-08f);
    pc = _mm256_add_ps(_mm256_set1_ps(3.43273939e-07f), _mm256_mul_ps(pc, wc));
    pc = _mm256_add_ps(_mm256_set1_ps(-3.5233877e-06f), _mm256_mul_ps(pc, wc));
    pc = _mm256_add_ps(_mm256_set1_ps(-4.39150654e-06f), _mm256_mul_ps(pc, wc));
    pc = _mm256_add_ps(_mm256_set1_ps(0.00021858087f), _mm256_mul_ps(pc, wc));
    pc = _mm256_add_ps(_mm256_set1_ps(-0.00125372503f), _mm256_mul_ps(pc, wc));
    pc = _mm256_add_ps(_mm256_set1_ps(-0.00417768164f), _mm256_mul_ps(pc, wc));
    pc = _mm256_add_ps(_mm256_set1_ps(0.246640727f), _mm256_mul_ps(pc, wc));
    pc = _mm256_add_ps(_mm256_set1_ps(1.50140941f), _mm256_mul_ps(pc, wc));
    const __m256 wt = _mm256_sub_ps(_mm256_sqrt_ps(w), _mm256_set1_ps(3.0f));
    __m256 pt = _mm256_set1_ps(-0.000200214257f);
    pt = _mm256_add_ps(_mm256_set1_ps(0.000100950558f), _mm256_mul_ps(pt, wt));
    pt = _mm256_add_ps(_mm256_set1_ps(0.00134934322f), _mm256_mul_ps(pt, wt));
    pt = _mm256_add_ps(_mm256_set1_ps(-0.00367342844f), _mm256_mul_ps(pt, wt));
    pt = _mm256_add_ps(_mm256_set1_ps(0.00573950773f), _mm256_mul_ps(pt, wt));
    pt = _mm256_add_ps(_mm256_set1_ps(-0.0076224613f), _mm256_mul_ps(pt, wt));
    pt = _mm256_add_ps(_mm256_set1_ps(0.00943887047f), _mm256_mul_ps(pt, wt));
    pt = _mm256_add_ps(_mm256_set1_ps(1.00167406f), _mm256_mul_ps(pt, wt));
    pt = _mm256_add_ps(_mm256_set1_ps(2.83297682f), _mm256_mul_ps(pt, wt));
    const __m256 central = _mm256_cmp_ps(w, _mm256_set1_ps(5.0f), _CMP_LT_OQ);
    const __m256 p = _mm256_blendv_ps(pt, pc, central);
    const __m256 erfv = _mm256_mul_ps(p, x);
    _mm256_storeu_ps(value + i,
                     _mm256_mul_ps(_mm256_set1_ps(1.41421356237309505f),
                                   erfv));
  }
  if (i < count) icdf_cuda_block_scalar(u + i, count - i, value + i);
}

void gamma_attempt_block_avx2(const float* n0, const std::uint32_t* u1,
                              std::size_t count, const GammaConstants& k,
                              float* value, std::uint8_t* valid) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 kc = _mm256_set1_ps(k.c);
  const __m256 kd_ = _mm256_set1_ps(k.d);
  const __m256 kscale = _mm256_set1_ps(k.scale);
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256 x = _mm256_loadu_ps(n0 + i);
    const __m256 u1f = v_open0(_mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(u1 + i)));
    const __m256 t = _mm256_add_ps(one, _mm256_mul_ps(kc, x));
    const __m256 tpos = _mm256_cmp_ps(t, _mm256_setzero_ps(), _CMP_GT_OQ);
    const __m256 v = _mm256_mul_ps(_mm256_mul_ps(t, t), t);
    const __m256 x2 = _mm256_mul_ps(x, x);
    const __m256 rhs = _mm256_sub_ps(
        one, _mm256_mul_ps(_mm256_mul_ps(_mm256_set1_ps(0.0331f), x2), x2));
    const __m256 squeeze = _mm256_cmp_ps(u1f, rhs, _CMP_LT_OQ);
    const __m256 fast_ok = _mm256_and_ps(tpos, squeeze);
    const __m256 val = _mm256_and_ps(
        _mm256_mul_ps(_mm256_mul_ps(kd_, v), kscale), fast_ok);
    _mm256_storeu_ps(value + i, val);
    store_valid(fast_ok, valid + i);
    // Squeeze misses with t > 0 take the exact log test through the
    // scalar attempt (identical arithmetic; ~2% of lanes at v = 1.39).
    int need = _mm256_movemask_ps(_mm256_andnot_ps(squeeze, tpos));
    while (need != 0) {
      const std::size_t lane =
          static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(need)));
      need &= need - 1;
      const GammaAttempt g = gamma_attempt(
          n0[i + lane], uint2float_open0(u1[i + lane]), k);
      value[i + lane] = g.value;
      valid[i + lane] = g.valid ? 1 : 0;
    }
  }
  if (i < count) {
    gamma_attempt_block_scalar(n0 + i, u1 + i, count - i, k, value + i,
                               valid + i);
  }
}

void gamma_correct_block_avx2(float* g, const std::uint32_t* u2,
                              std::size_t count, const GammaConstants& k) {
  const __m256d y = _mm256_set1_pd(static_cast<double>(k.inv_alpha));
  const __m256d lo_clamp = _mm256_set1_pd(-151.0);
  const __m256d hi_clamp = _mm256_set1_pd(129.0);
  const __m256d inf = _mm256_set1_pd(
      fastmath_detail::bits_f64(0x7ff0000000000000ull));
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256 u2f = v_open0(_mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(u2 + i)));
    const VLogParts p = v_log_parts(u2f);  // open0 floats are normal
    const __m256d t_lo =
        _mm256_mul_pd(y, v_log2d_half(p.r_lo, p.kd_lo, p.idx_lo));
    const __m256d t_hi =
        _mm256_mul_pd(y, v_log2d_half(p.r_hi, p.kd_hi, p.idx_hi));
    __m256d e_lo = v_exp2(t_lo);
    __m256d e_hi = v_exp2(t_hi);
    e_lo = _mm256_blendv_pd(e_lo, _mm256_setzero_pd(),
                            _mm256_cmp_pd(t_lo, lo_clamp, _CMP_LE_OQ));
    e_hi = _mm256_blendv_pd(e_hi, _mm256_setzero_pd(),
                            _mm256_cmp_pd(t_hi, lo_clamp, _CMP_LE_OQ));
    e_lo = _mm256_blendv_pd(e_lo, inf,
                            _mm256_cmp_pd(t_lo, hi_clamp, _CMP_GE_OQ));
    e_hi = _mm256_blendv_pd(e_hi, inf,
                            _mm256_cmp_pd(t_hi, hi_clamp, _CMP_GE_OQ));
    const __m256 pw =
        _mm256_set_m128(_mm256_cvtpd_ps(e_hi), _mm256_cvtpd_ps(e_lo));
    _mm256_storeu_ps(g + i, _mm256_mul_ps(_mm256_loadu_ps(g + i), pw));
  }
  if (i < count) gamma_correct_block_scalar(g + i, u2 + i, count - i, k);
}

void mt_temper_block_avx2(const std::uint32_t* state, std::size_t count,
                          const MtParams& p, std::uint32_t* out) {
  const __m128i cu = _mm_cvtsi32_si128(static_cast<int>(p.u));
  const __m128i cs = _mm_cvtsi32_si128(static_cast<int>(p.s));
  const __m128i ct = _mm_cvtsi32_si128(static_cast<int>(p.t));
  const __m128i cl = _mm_cvtsi32_si128(static_cast<int>(p.l));
  const __m256i md = _mm256_set1_epi32(static_cast<int>(p.d));
  const __m256i mb = _mm256_set1_epi32(static_cast<int>(p.b));
  const __m256i mc = _mm256_set1_epi32(static_cast<int>(p.c));
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256i y = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(state + i));
    y = _mm256_xor_si256(y, _mm256_and_si256(_mm256_srl_epi32(y, cu), md));
    y = _mm256_xor_si256(y, _mm256_and_si256(_mm256_sll_epi32(y, cs), mb));
    y = _mm256_xor_si256(y, _mm256_and_si256(_mm256_sll_epi32(y, ct), mc));
    y = _mm256_xor_si256(y, _mm256_srl_epi32(y, cl));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), y);
  }
  if (i < count) mt_temper_block_scalar(state + i, count - i, p, out + i);
}

void mt_twist_block_avx2(std::uint32_t* state, const MtParams& p) {
  const unsigned n = p.n;
  const unsigned m = p.m;
  // Chunking preserves the scalar pass's read-before-write order only
  // if no chunk rewrites a word another lane of the same chunk still
  // has to read: segment 1 reads s[i+m..i+m+7] while writing
  // s[i..i+7] (needs m >= 8), segment 2 reads the rewritten prefix
  // s[i+m-n..i+m-n+7] which must stay strictly below the write window
  // (needs n - m >= 8). Both repo geometries qualify (MT19937:
  // m=397, n-m=227; MT(521): m=8, n-m=9); anything else drops to the
  // scalar pass.
  if (m < 8 || n - m < 8) {
    mt_twist_block_scalar(state, p);
    return;
  }
  std::uint32_t* s = state;
  const std::uint32_t a = p.a;
  const std::uint32_t lm32 =
      (p.r == 32) ? 0xffffffffu : ((std::uint32_t{1} << p.r) - 1);
  const std::uint32_t um32 = ~lm32;
  const __m256i va = _mm256_set1_epi32(static_cast<int>(a));
  const __m256i vlm = _mm256_set1_epi32(static_cast<int>(lm32));
  const __m256i vum = _mm256_set1_epi32(static_cast<int>(um32));
  const __m256i one = _mm256_set1_epi32(1);
  // s[i+m] ^ (x >> 1) ^ ((-(x & 1)) & a), 8 recurrences abreast.
  const auto step = [&](__m256i cur, __m256i nxt, __m256i mid) {
    const __m256i x = _mm256_or_si256(_mm256_and_si256(cur, vum),
                                      _mm256_and_si256(nxt, vlm));
    const __m256i coeff = _mm256_and_si256(
        _mm256_sub_epi32(_mm256_setzero_si256(), _mm256_and_si256(x, one)),
        va);
    return _mm256_xor_si256(
        mid, _mm256_xor_si256(_mm256_srli_epi32(x, 1), coeff));
  };
  const auto loadu = [](const std::uint32_t* ptr) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ptr));
  };

  unsigned i = 0;
  // Segment 1 (i < n - m): all three reads are old-epoch words.
  for (; i + 8 <= n - m; i += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(s + i),
                        step(loadu(s + i), loadu(s + i + 1), loadu(s + i + m)));
  }
  for (; i < n - m; ++i) {
    const std::uint32_t x = (s[i] & um32) | (s[i + 1] & lm32);
    s[i] = s[i + m] ^ (x >> 1) ^ ((-(x & 1u)) & a);
  }
  // Segment 2 (n - m <= i < n - 1): the middle word wraps onto the
  // rewritten prefix; successors are still old-epoch (s[n-1] last).
  for (; i + 8 <= n - 1; i += 8) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(s + i),
        step(loadu(s + i), loadu(s + i + 1), loadu(s + i + m - n)));
  }
  if (const unsigned rem = (n - 1) - i; rem > 0) {
    // Masked tail — full loads would run past s[n-1]. For MT(521)
    // this is the whole 7-word segment, so it matters.
    static const std::int32_t kMaskSrc[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                              0,  0,  0,  0,  0,  0,  0,  0};
    const __m256i mask = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kMaskSrc + (8 - rem)));
    const auto maskload = [&](const std::uint32_t* ptr) {
      return _mm256_maskload_epi32(reinterpret_cast<const int*>(ptr), mask);
    };
    _mm256_maskstore_epi32(
        reinterpret_cast<int*>(s + i), mask,
        step(maskload(s + i), maskload(s + i + 1), maskload(s + i + m - n)));
    i += rem;
  }
  {
    const std::uint32_t x = (s[n - 1] & um32) | (s[0] & lm32);
    s[n - 1] = s[m - 1] ^ (x >> 1) ^ ((-(x & 1u)) & a);
  }
}

void philox_block_avx2(const std::uint32_t* counter, const std::uint32_t* key,
                       std::size_t nblocks, std::uint32_t* out) {
  // Integer-only kernel: 8 counters abreast through the 10 rounds,
  // SoA in registers, transposed to counter-order AoS on store. The
  // 32x32→64 mulhilo splits into even/odd _mm256_mul_epu32 pairs
  // recombined by dword blends. Exactness is trivial (no floats), so
  // the only care point is the 128-bit counter carry: a group whose
  // low word would wrap mid-group drops to the scalar oracle.
  std::uint32_t k0[10], k1[10];
  {
    std::uint32_t a = key[0], b = key[1];
    for (int r = 0; r < 10; ++r) {
      k0[r] = a;
      k1[r] = b;
      a += 0x9E3779B9u;
      b += 0xBB67AE85u;
    }
  }
  const __m256i mul0 = _mm256_set1_epi32(static_cast<int>(0xD2511F53u));
  const __m256i mul1 = _mm256_set1_epi32(static_cast<int>(0xCD9E8D57u));
  const __m256i lane_off = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);

  std::uint32_t c[4] = {counter[0], counter[1], counter[2], counter[3]};
  const auto advance8 = [&c] {
    const std::uint64_t next_lo = std::uint64_t{c[0]} + 8;
    c[0] = static_cast<std::uint32_t>(next_lo);
    if (next_lo >> 32) {
      for (int w = 1; w < 4; ++w) {
        if (++c[w] != 0) break;
      }
    }
  };

  std::size_t b = 0;
  for (; b + 8 <= nblocks; b += 8, out += 32) {
    if (c[0] > 0xffffffffu - 7u) {
      philox_block_scalar(c, key, 8, out);
      advance8();
      continue;
    }
    __m256i x0 = _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(c[0])),
                                  lane_off);
    __m256i x1 = _mm256_set1_epi32(static_cast<int>(c[1]));
    __m256i x2 = _mm256_set1_epi32(static_cast<int>(c[2]));
    __m256i x3 = _mm256_set1_epi32(static_cast<int>(c[3]));
    for (int r = 0; r < 10; ++r) {
      const __m256i even0 = _mm256_mul_epu32(x0, mul0);
      const __m256i odd0 = _mm256_mul_epu32(_mm256_srli_epi64(x0, 32), mul0);
      const __m256i lo0 =
          _mm256_blend_epi32(even0, _mm256_slli_epi64(odd0, 32), 0xAA);
      const __m256i hi0 =
          _mm256_blend_epi32(_mm256_srli_epi64(even0, 32), odd0, 0xAA);
      const __m256i even1 = _mm256_mul_epu32(x2, mul1);
      const __m256i odd1 = _mm256_mul_epu32(_mm256_srli_epi64(x2, 32), mul1);
      const __m256i lo1 =
          _mm256_blend_epi32(even1, _mm256_slli_epi64(odd1, 32), 0xAA);
      const __m256i hi1 =
          _mm256_blend_epi32(_mm256_srli_epi64(even1, 32), odd1, 0xAA);
      const __m256i vk0 = _mm256_set1_epi32(static_cast<int>(k0[r]));
      const __m256i vk1 = _mm256_set1_epi32(static_cast<int>(k1[r]));
      const __m256i n0 =
          _mm256_xor_si256(_mm256_xor_si256(hi1, x1), vk0);
      const __m256i n2 =
          _mm256_xor_si256(_mm256_xor_si256(hi0, x3), vk1);
      x0 = n0;
      x1 = lo1;
      x2 = n2;
      x3 = lo0;
    }
    // SoA → AoS: 4x8 dword transpose via unpack + 128-bit permutes.
    const __m256i t0 = _mm256_unpacklo_epi32(x0, x1);
    const __m256i t1 = _mm256_unpacklo_epi32(x2, x3);
    const __m256i t2 = _mm256_unpackhi_epi32(x0, x1);
    const __m256i t3 = _mm256_unpackhi_epi32(x2, x3);
    const __m256i u0 = _mm256_unpacklo_epi64(t0, t1);  // block 0 | block 4
    const __m256i u1 = _mm256_unpackhi_epi64(t0, t1);  // block 1 | block 5
    const __m256i u2 = _mm256_unpacklo_epi64(t2, t3);  // block 2 | block 6
    const __m256i u3 = _mm256_unpackhi_epi64(t2, t3);  // block 3 | block 7
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 0),
                        _mm256_permute2x128_si256(u0, u1, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8),
                        _mm256_permute2x128_si256(u2, u3, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 16),
                        _mm256_permute2x128_si256(u0, u1, 0x31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 24),
                        _mm256_permute2x128_si256(u2, u3, 0x31));
    advance8();
  }
  if (b < nblocks) philox_block_scalar(c, key, nblocks - b, out);
}

void icdf_bitwise_block_avx2(const std::uint32_t* u, std::size_t count,
                             float* value, std::uint8_t* valid) {
  // Pure integer datapath, so exactness needs no floating-point care:
  // 32-bit lanes wrap exactly like ap_fixed<32,·>, and the two
  // fixed-point MACs keep their full 64-bit intermediates via
  // _mm256_mul_epi32 (sign-extended low dwords). The leading-zero
  // detector runs through an exact int→double conversion (31-bit
  // values fit a double's mantissa), reading the exponent field.
  static_assert(IcdfBitwiseTable::kSubBits == 3,
                "sub-segment shifts below are hard-coded");
  static_assert(sizeof(IcdfBitwiseTable::Segment) == 24,
                "gather offsets assume three int64 coefficient raws");
  const int* base =
      reinterpret_cast<const int*>(&IcdfBitwiseTable::instance().segment(0, 0));

  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i pack64 = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);

  // r[i] = low32((sext64(a[i]) · sext64(b[i])) >> 27): the ap_fixed
  // full-precision multiply truncated back to 27 fractional bits. The
  // low dword of the 64-bit logical shift is exactly bits 27..58.
  const auto fx_mul = [](__m256i a, __m256i b) {
    const __m256i pe = _mm256_mul_epi32(a, b);
    const __m256i po = _mm256_mul_epi32(_mm256_shuffle_epi32(a, 0xF5),
                                        _mm256_shuffle_epi32(b, 0xF5));
    return _mm256_blend_epi32(
        _mm256_srli_epi64(pe, 27),
        _mm256_slli_epi64(_mm256_srli_epi64(po, 27), 32), 0xAA);
  };

  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i uu =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(u + i));
    const __m256i upper = _mm256_srai_epi32(uu, 31);  // -1 on the p≥.5 half
    const __m256i t = _mm256_and_si256(_mm256_xor_si256(uu, upper),
                                       _mm256_set1_epi32(0x7fffffff));
    const __m256i invalid = _mm256_cmpeq_epi32(t, zero);

    const __m256i blo =
        _mm256_castpd_si256(_mm256_cvtepi32_pd(_mm256_castsi256_si128(t)));
    const __m256i bhi = _mm256_castpd_si256(
        _mm256_cvtepi32_pd(_mm256_extracti128_si256(t, 1)));
    const __m128i elo = _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(_mm256_srli_epi64(blo, 52), pack64));
    const __m128i ehi = _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(_mm256_srli_epi64(bhi, 52), pack64));
    const __m256i msb = _mm256_sub_epi32(_mm256_set_m128i(ehi, elo),
                                         _mm256_set1_epi32(1023));

    // Octave / sub-segment / local coordinate. Invalid lanes produce
    // garbage through here (their variable shift counts exceed 31 and
    // yield zero); everything they feed is masked below, the gather
    // index included. `wide` is the msb_pos >= kSubBits branch.
    const __m256i octave = _mm256_sub_epi32(_mm256_set1_epi32(30), msb);
    const __m256i wide = _mm256_cmpgt_epi32(msb, _mm256_set1_epi32(2));
    const __m256i shift_a = _mm256_sub_epi32(msb, _mm256_set1_epi32(3));
    const __m256i sub_a =
        _mm256_and_si256(_mm256_srlv_epi32(t, shift_a), _mm256_set1_epi32(7));
    const __m256i local_a = _mm256_and_si256(
        t, _mm256_sub_epi32(_mm256_sllv_epi32(one, shift_a), one));
    const __m256i sub_b = _mm256_sllv_epi32(
        _mm256_and_si256(t,
                         _mm256_sub_epi32(_mm256_sllv_epi32(one, msb), one)),
        _mm256_sub_epi32(_mm256_set1_epi32(3), msb));
    const __m256i sub = _mm256_blendv_epi8(sub_b, sub_a, wide);
    const __m256i local_bits = _mm256_and_si256(local_a, wide);
    const __m256i local_width = _mm256_and_si256(shift_a, wide);

    // x as ap_fixed<32,2> raw (30 fractional bits), re-scaled into the
    // coefficient format (>> 3). local_width <= 27 here, so the scalar
    // path's width-beyond-30 clamp is unreachable.
    const __m256i xc = _mm256_srli_epi32(
        _mm256_sllv_epi32(
            local_bits,
            _mm256_sub_epi32(_mm256_set1_epi32(30), local_width)),
        3);

    // Three dword gathers into the {c0,c1,c2} int64 triples (the low
    // dword of each raw holds the wrapped 32-bit value). Invalid lanes
    // clamp to segment 0 to keep the gather in bounds.
    const __m256i idx = _mm256_andnot_si256(
        invalid, _mm256_add_epi32(_mm256_slli_epi32(octave, 3), sub));
    const __m256i dw = _mm256_mullo_epi32(idx, _mm256_set1_epi32(6));
    const __m256i c0 = _mm256_i32gather_epi32(base, dw, 4);
    const __m256i c1 = _mm256_i32gather_epi32(
        base, _mm256_add_epi32(dw, _mm256_set1_epi32(2)), 4);
    const __m256i c2 = _mm256_i32gather_epi32(
        base, _mm256_add_epi32(dw, _mm256_set1_epi32(4)), 4);

    // Horner (c2·x + c1)·x + c0 with 32-bit wraparound adds, then the
    // reflection (negate where the input sign bit was clear), the
    // invalid-lane zeroing, and the exact 2^-27 raw→float scale.
    __m256i g = _mm256_add_epi32(fx_mul(c2, xc), c1);
    g = _mm256_add_epi32(fx_mul(g, xc), c0);
    const __m256i neg = _mm256_xor_si256(upper, _mm256_set1_epi32(-1));
    g = _mm256_sub_epi32(_mm256_xor_si256(g, neg), neg);
    g = _mm256_andnot_si256(invalid, g);
    _mm256_storeu_ps(value + i, _mm256_mul_ps(_mm256_cvtepi32_ps(g),
                                              _mm256_set1_ps(0x1.0p-27f)));
    const int bad = _mm256_movemask_ps(_mm256_castsi256_ps(invalid));
    for (int j = 0; j < 8; ++j) {
      valid[i + static_cast<std::size_t>(j)] = ((bad >> j) & 1) ? 0 : 1;
    }
  }
  if (i < count) {
    icdf_bitwise_block_scalar(u + i, count - i, value + i, valid + i);
  }
}

}  // namespace dwi::rng::simd

#endif  // DWI_SIMD_AVX2
