#include "rng/icdf_bitwise.h"

#include <cmath>

#include "common/bits.h"
#include "common/error.h"
#include "stats/special.h"

namespace dwi::rng {

namespace {

// g(t) = -Φ^{-1}(t) for t in (0, 0.5): positive, decreasing in t.
double g_reference(double t) { return -stats::inverse_normal_cdf(t); }

// Sub-segment [t_lo, t_hi] in absolute t-space for (octave, sub).
// Octave k covers t_int in [2^(30-k), 2^(31-k)), i.e. t in
// [2^(30-k)/2^32, 2^(31-k)/2^32); each of the 2^kSubBits sub-segments
// splits that interval uniformly.
void sub_segment_bounds(unsigned octave, unsigned sub, double* t_lo,
                        double* t_hi) {
  const double octave_lo = std::exp2(static_cast<double>(30 - static_cast<int>(octave)) - 32.0);
  const double width = octave_lo / IcdfBitwiseTable::kSubSegments;
  *t_lo = octave_lo + sub * width;
  *t_hi = *t_lo + width;
}

}  // namespace

IcdfBitwiseTable::IcdfBitwiseTable() {
  // Quadratic fit per sub-segment through three Chebyshev-spaced nodes
  // of the local coordinate x in [0,1): {x0, 1/2, 1-x0} with
  // x0 = (1 - cos(π/6))/2, which roughly equi-oscillates the error.
  const double x0 = 0.5 * (1.0 - std::cos(M_PI / 6.0));
  const double xs[3] = {x0, 0.5, 1.0 - x0};

  for (unsigned octave = 0; octave < kOctaves; ++octave) {
    for (unsigned sub = 0; sub < kSubSegments; ++sub) {
      double t_lo = 0.0;
      double t_hi = 0.0;
      sub_segment_bounds(octave, sub, &t_lo, &t_hi);

      double y[3];
      for (int j = 0; j < 3; ++j) {
        // The evaluation path derives x from t_int's bits, so a bit
        // pattern at local coordinate x corresponds to the actual input
        // t = t_int·2^-32 + 2^-33 (the half-LSB open-interval offset).
        // Sample the reference at that shifted point so the polynomial
        // interpolates the transform exactly, octaves deep in the tail
        // included.
        const double t = t_lo + xs[j] * (t_hi - t_lo) + 0x1.0p-33;
        y[j] = g_reference(t);
      }
      // Solve the 3x3 Vandermonde for c0 + c1 x + c2 x² through
      // (xs[j], y[j]).
      const double d01 = xs[0] - xs[1];
      const double d02 = xs[0] - xs[2];
      const double d12 = xs[1] - xs[2];
      const double c2 = y[0] / (d01 * d02) - y[1] / (d01 * d12) +
                        y[2] / (d02 * d12);
      const double c1 =
          (y[0] - y[1]) / d01 - c2 * (xs[0] + xs[1]);
      const double c0 = y[0] - c1 * xs[0] - c2 * xs[0] * xs[0];

      segments_[octave * kSubSegments + sub] =
          Segment{Coeff(c0), Coeff(c1), Coeff(c2)};
    }
  }
}

const IcdfBitwiseTable& IcdfBitwiseTable::instance() {
  static const IcdfBitwiseTable table;
  return table;
}

IcdfBitwiseTable::Coeff normal_icdf_bitwise_fixed(std::uint32_t u,
                                                  bool* valid) {
  using Coeff = IcdfBitwiseTable::Coeff;
  using Local = IcdfBitwiseTable::Local;

  // Fold onto the half-range: p >= 0.5 reflects to t = 1 - p with a
  // positive output sign. t_int is a 31-bit integer with
  // t = (t_int + 0.5) · 2^-32 in (0, 0.5).
  const bool upper_half = (u >> 31) != 0;
  const std::uint32_t t_int = (upper_half ? ~u : u) & 0x7fffffffu;

  if (t_int == 0) {
    *valid = false;
    return Coeff(0.0);
  }
  *valid = true;

  // Leading-zero detector on the 31-bit value selects the octave.
  const int lz = count_leading_zeros(t_int);  // in [1, 31]
  const unsigned octave = static_cast<unsigned>(lz - 1);

  // Bits right below the leading one select the sub-segment; everything
  // after that is the local coordinate. msb_pos = 31 - lz.
  const int msb_pos = 31 - lz;
  unsigned sub = 0;
  std::uint32_t local_bits = 0;
  int local_width = 0;
  if (msb_pos >= static_cast<int>(IcdfBitwiseTable::kSubBits)) {
    const int shift = msb_pos - static_cast<int>(IcdfBitwiseTable::kSubBits);
    sub = (t_int >> shift) & (IcdfBitwiseTable::kSubSegments - 1);
    local_width = shift;
    local_bits = local_width > 0
                     ? (t_int & ((std::uint32_t{1} << shift) - 1))
                     : 0;
  } else {
    // Deep octaves with fewer than kSubBits mantissa bits: promote the
    // available bits to the top of the sub index (zero-fill below).
    const int shift = static_cast<int>(IcdfBitwiseTable::kSubBits) - msb_pos;
    sub = (t_int & ((std::uint32_t{1} << msb_pos) - 1)) << shift;
    local_width = 0;
    local_bits = 0;
  }

  // Local coordinate x in [0, 1) as an ap_fixed<32,2> (30 frac bits).
  Local x = Local::from_raw(
      local_width > 0
          ? static_cast<std::int64_t>(
                static_cast<std::uint64_t>(local_bits)
                << (30 - (local_width > 30 ? 30 : local_width)))
          : 0);
  if (local_width > 30) {
    x = Local::from_raw(static_cast<std::int64_t>(
        static_cast<std::uint64_t>(local_bits) >> (local_width - 30)));
  }

  const auto& seg = IcdfBitwiseTable::instance().segment(octave, sub);

  // Horner in fixed point: g = (c2·x + c1)·x + c0. The multiply mixes
  // formats; align by re-scaling x's raw bits into the coefficient
  // format (30 → 27 fractional bits; x < 1 so it always fits). This is
  // a pure shift, keeping the whole evaluation free of floating point.
  static_assert(Local::frac_bits >= Coeff::frac_bits);
  const Coeff xc =
      Coeff::from_raw(x.raw() >> (Local::frac_bits - Coeff::frac_bits));
  const Coeff g = (seg.c2 * xc + seg.c1) * xc + seg.c0;

  // Reflect: upper half is the positive branch.
  return upper_half ? g : -g;
}

IcdfResult normal_icdf_bitwise(std::uint32_t u) {
  bool valid = false;
  const auto fx = normal_icdf_bitwise_fixed(u, &valid);
  return IcdfResult{fx.to_float(), valid};
}

}  // namespace dwi::rng
