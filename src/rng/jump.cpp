#include "rng/jump.h"

#include <array>
#include <atomic>
#include <mutex>

#include "common/error.h"
#include "rng/dcmt.h"

namespace dwi::rng {

namespace {

/// Pack a raw state into the p-dimensional GF(2) vector used by the
/// transition matrix (same layout as dcmt.cpp's basis: the upper
/// 32−r bits of word 0 first, then words 1..n−1 in full).
std::vector<std::uint64_t> pack_state(const MtParams& p,
                                      const std::vector<std::uint32_t>& x) {
  const unsigned dim = p.period_exponent();
  const unsigned top_bits = 32 - p.r;
  std::vector<std::uint64_t> v((dim + 63) / 64, 0);
  auto set = [&](unsigned bit) {
    v[bit / 64] |= std::uint64_t{1} << (bit % 64);
  };
  for (unsigned b = 0; b < top_bits; ++b) {
    if ((x[0] >> (p.r + b)) & 1u) set(b);
  }
  unsigned bit = top_bits;
  for (unsigned w = 1; w < p.n; ++w) {
    for (unsigned b = 0; b < 32; ++b, ++bit) {
      if ((x[w] >> b) & 1u) set(bit);
    }
  }
  return v;
}

std::vector<std::uint32_t> unpack_state(const MtParams& p,
                                        const std::vector<std::uint64_t>& v) {
  const unsigned top_bits = 32 - p.r;
  std::vector<std::uint32_t> x(p.n, 0);
  auto get = [&](unsigned bit) {
    return (v[bit / 64] >> (bit % 64)) & 1u;
  };
  for (unsigned b = 0; b < top_bits; ++b) {
    if (get(b)) x[0] |= std::uint32_t{1} << (p.r + b);
  }
  unsigned bit = top_bits;
  for (unsigned w = 1; w < p.n; ++w) {
    for (unsigned b = 0; b < 32; ++b, ++bit) {
      if (get(bit)) x[w] |= std::uint32_t{1} << b;
    }
  }
  return x;
}

/// v ← T^k · v with square-and-apply (shares the squaring chain).
std::vector<std::uint64_t> apply_power(const Gf2Matrix& t, std::uint64_t k,
                                       std::vector<std::uint64_t> v) {
  Gf2Matrix power = t;
  while (k != 0) {
    if (k & 1u) v = power.apply(v);
    k >>= 1;
    if (k != 0) power = power.square();
  }
  return v;
}

}  // namespace

std::vector<std::uint32_t> initial_raw_state(const MtParams& params,
                                             std::uint32_t seed) {
  std::vector<std::uint32_t> state(params.n);
  state[0] = seed;
  for (unsigned i = 1; i < params.n; ++i) {
    state[i] = params.f * (state[i - 1] ^ (state[i - 1] >> 30)) + i;
  }
  return state;
}

MersenneTwister make_jumped(const MtParams& params, std::uint32_t seed,
                            std::uint64_t skip) {
  DWI_REQUIRE(params.period_exponent() <= 1300,
              "dense jump-ahead supports p <= 1300 (use the small DCMT "
              "geometries; MT19937's matrix is impractical here)");
  if (skip == 0) return MersenneTwister(params, seed);
  const Gf2Matrix t = mt_transition_matrix(params);
  auto v = pack_state(params, initial_raw_state(params, seed));
  v = apply_power(t, skip, std::move(v));
  return MersenneTwister(params, unpack_state(params, v));
}

/// chain[j] = T^(stride · 2^j), grown on demand. Growth (the expensive
/// matrix squarings) is serialized by `growth_mutex`; the matrix-vector
/// applies in stream() are lock-free. The scheme: slots live in a
/// fixed array (indices never exceed 64 bits, so 64 slots suffice and
/// nothing ever reallocates), a slot is fully constructed before
/// `ready` is advanced past it with release order, and readers that
/// observe `ready >= bit` with acquire order may dereference
/// chain[bit] without synchronization — entries below the watermark
/// are immutable for the cache's lifetime. Concurrent first-touch of
/// the same high bit is safe: both threads race to the mutex, the
/// loser re-checks `ready` and finds the squarings already done.
struct SubstreamSplitter::PowerCache {
  std::mutex growth_mutex;
  std::array<std::unique_ptr<Gf2Matrix>, 64> chain;
  std::atomic<std::size_t> ready{0};  ///< slots [0, ready) are immutable
};

SubstreamSplitter::SubstreamSplitter(const MtParams& params,
                                     std::uint32_t seed,
                                     std::uint64_t stride)
    : params_(params), stride_(stride),
      t_stride_(Gf2Matrix::identity(params.period_exponent())) {
  DWI_REQUIRE(stride >= 1, "stride must be positive");
  DWI_REQUIRE(params.period_exponent() <= 1300,
              "dense jump-ahead supports p <= 1300 (use the small DCMT "
              "geometries; MT19937's matrix is impractical here)");
  seed_state_ = pack_state(params, initial_raw_state(params, seed));
  // T^stride by square-and-multiply; stream(i) then applies it i times
  // (again square-and-multiply over i), so both factors stay O(log).
  Gf2Matrix base = mt_transition_matrix(params);
  std::uint64_t k = stride;
  for (;;) {
    if (k & 1u) t_stride_ = t_stride_ * base;
    k >>= 1;
    if (k == 0) break;
    base = base.square();
  }
  cache_ = std::make_shared<PowerCache>();
  cache_->chain[0] = std::make_unique<Gf2Matrix>(t_stride_);
  cache_->ready.store(1, std::memory_order_release);
}

MersenneTwister SubstreamSplitter::stream(std::uint64_t index) const {
  auto v = seed_state_;
  if (index > 0) {
    std::size_t bits = 0;
    for (std::uint64_t k = index; k != 0; k >>= 1) ++bits;
    if (cache_->ready.load(std::memory_order_acquire) < bits) {
      std::lock_guard lock(cache_->growth_mutex);
      std::size_t have = cache_->ready.load(std::memory_order_relaxed);
      while (have < bits) {
        cache_->chain[have] =
            std::make_unique<Gf2Matrix>(cache_->chain[have - 1]->square());
        cache_->ready.store(++have, std::memory_order_release);
      }
    }
    std::uint64_t k = index;
    for (std::size_t bit = 0; k != 0; k >>= 1, ++bit) {
      if (k & 1u) v = cache_->chain[bit]->apply(v);
    }
  }
  return MersenneTwister(params_, unpack_state(params_, v));
}

std::vector<MersenneTwister> make_parallel_streams(const MtParams& params,
                                                   std::uint32_t seed,
                                                   unsigned count,
                                                   std::uint64_t stride) {
  DWI_REQUIRE(count >= 1, "need at least one stream");
  DWI_REQUIRE(stride >= 1, "stride must be positive");
  DWI_REQUIRE(params.period_exponent() <= 1300,
              "dense jump-ahead supports p <= 1300");

  const Gf2Matrix t = mt_transition_matrix(params);
  std::vector<MersenneTwister> streams;
  streams.reserve(count);
  auto v = pack_state(params, initial_raw_state(params, seed));
  streams.emplace_back(params, unpack_state(params, v));
  for (unsigned w = 1; w < count; ++w) {
    v = apply_power(t, stride, std::move(v));
    streams.emplace_back(params, unpack_state(params, v));
  }
  return streams;
}

}  // namespace dwi::rng
