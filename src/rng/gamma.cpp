#include "rng/gamma.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <random>

#include "common/bits.h"
#include "common/error.h"
#include "rng/fastmath.h"
#include "rng/simd_kernels.h"

namespace dwi::rng {

GammaConstants GammaConstants::make(float alpha, float scale) {
  DWI_REQUIRE(alpha > 0.0f, "gamma shape must be positive");
  DWI_REQUIRE(scale > 0.0f, "gamma scale must be positive");
  GammaConstants k;
  k.alpha = alpha;
  k.scale = scale;
  k.boosted = alpha < 1.0f;
  const float alpha_eff = k.boosted ? alpha + 1.0f : alpha;
  k.d = alpha_eff - 1.0f / 3.0f;
  k.c = 1.0f / std::sqrt(9.0f * k.d);
  k.inv_alpha = 1.0f / alpha;
  return k;
}

GammaConstants GammaConstants::from_sector_variance(float v) {
  DWI_REQUIRE(v > 0.0f, "sector variance must be positive");
  return make(1.0f / v, v);
}

GammaAttempt gamma_attempt(float n0, float u1, const GammaConstants& k) {
  const float t = 1.0f + k.c * n0;
  if (t <= 0.0f) return GammaAttempt{0.0f, false};
  const float v = t * t * t;
  const float x2 = n0 * n0;
  // Squeeze test first (cheap), then the exact log test.
  const bool squeeze = u1 < 1.0f - 0.0331f * x2 * x2;
  const bool exact =
      squeeze ||
      fast_logf(u1) < 0.5f * x2 + k.d * (1.0f - v + fast_logf(v));
  if (!exact) return GammaAttempt{0.0f, false};
  return GammaAttempt{k.d * v * k.scale, true};
}

float gamma_correct(float g, float u2, const GammaConstants& k) {
  return g * fast_powf(u2, k.inv_alpha);
}

GammaSampler::GammaSampler(GammaConstants constants, NormalTransform transform)
    : k_(constants), transform_(transform) {}

float GammaSampler::sample(const std::function<std::uint32_t()>& next_u32) {
  for (;;) {
    ++attempts_;
    // Normal stage. Transforms consuming two uniforms pull both; the
    // scalar sampler has no need for the enable-flag machinery because
    // it simply does not call the source when a stage is skipped — the
    // pipelined kernels achieve the same effect with AdaptedMersenneTwister.
    const std::uint32_t ua = next_u32();
    const std::uint32_t ub =
        uniforms_per_attempt(transform_) == 2 ? next_u32() : 0;
    const NormalAttempt n = normal_attempt(transform_, ua, ub);
    if (!n.valid) continue;

    // Rejection stage.
    const float u1 = uint2float_open0(next_u32());
    const GammaAttempt g = gamma_attempt(n.value, u1, k_);
    if (!g.valid) continue;

    ++accepted_;
    if (!k_.boosted) return g.value;

    // Correction stage (α < 1).
    const float u2 = uint2float_open0(next_u32());
    return gamma_correct(g.value, u2, k_);
  }
}

void GammaSampler::sample_block(MersenneTwister& mt, float* out,
                                std::size_t count) {
  // Same rejection loop as sample(), but the uniform source is a block
  // buffer topped up by generate_block — one twist+temper pass per
  // kBuf draws instead of one std::function dispatch per draw. The
  // refill lambda preserves the exact draw order of mt.next().
  constexpr std::size_t kBuf = 1024;
  std::uint32_t buf[kBuf];
  std::size_t pos = kBuf;
  const auto next = [&]() -> std::uint32_t {
    if (pos == kBuf) {
      mt.generate_block(buf, kBuf);
      pos = 0;
    }
    return buf[pos++];
  };

  const bool two_uniforms = uniforms_per_attempt(transform_) == 2;
  for (std::size_t i = 0; i < count; ++i) {
    for (;;) {
      ++attempts_;
      const std::uint32_t ua = next();
      const std::uint32_t ub = two_uniforms ? next() : 0;
      const NormalAttempt n = normal_attempt(transform_, ua, ub);
      if (!n.valid) continue;

      const float u1 = uint2float_open0(next());
      const GammaAttempt g = gamma_attempt(n.value, u1, k_);
      if (!g.valid) continue;

      ++accepted_;
      if (!k_.boosted) {
        out[i] = g.value;
      } else {
        out[i] = gamma_correct(g.value, uint2float_open0(next()), k_);
      }
      break;
    }
  }
}

void GammaSampler::sample_block(Philox& px, float* out, std::size_t count) {
  // Batched rejection sampling over fixed rounds of kAttemptRound
  // attempts (the deterministic-order contract is documented on the
  // declaration): draw the round's uniforms in whole blocks, push them
  // through the vectorized transform / predicate / correction kernels,
  // and emit the accepted candidates until `count` is reached. Surplus
  // acceptances of the final round are discarded — out[] is always a
  // prefix of the stream's infinite variate tape.
  constexpr std::size_t kRound = kAttemptRound;
  std::uint32_t ua[kRound], ub[kRound], u1[kRound], u2[kRound];
  float n0[kRound], n0c[kRound], g_value[kRound];
  std::uint8_t n0_valid[kRound], g_ok[kRound];
  const bool two_uniforms = uniforms_per_attempt(transform_) == 2;

  std::size_t filled = 0;
  while (filled < count) {
    px.generate_block(ua, kRound);
    if (two_uniforms) px.generate_block(ub, kRound);
    normal_attempt_block(transform_, ua, two_uniforms ? ub : nullptr, kRound,
                         n0, n0_valid);

    // Compact the valid normals; u1 is drawn for exactly those.
    std::size_t n_valid = 0;
    for (std::size_t i = 0; i < kRound; ++i) {
      n0c[n_valid] = n0[i];
      n_valid += n0_valid[i];
    }
    px.generate_block(u1, n_valid);
    simd::gamma_attempt_block(n0c, u1, n_valid, k_, g_value, g_ok);

    // Compact the accepted candidates; u2 is drawn for exactly those.
    std::size_t n_accepted = 0;
    for (std::size_t i = 0; i < n_valid; ++i) {
      g_value[n_accepted] = g_value[i];
      n_accepted += g_ok[i];
    }
    if (k_.boosted) {
      px.generate_block(u2, n_accepted);
      simd::gamma_correct_block(g_value, u2, n_accepted, k_);
    }

    const std::size_t take = std::min(n_accepted, count - filled);
    std::memcpy(out + filled, g_value, take * sizeof(float));
    filled += take;
    if (take == n_accepted) {
      attempts_ += kRound;
      accepted_ += n_accepted;
    } else {
      // Final round: count attempts only up to the one that produced
      // the last emitted variate, matching the scalar stats contract.
      std::size_t acc = 0, vi = 0;
      for (std::size_t i = 0; i < kRound; ++i) {
        ++attempts_;
        if (n0_valid[i]) {
          if (g_ok[vi] && ++acc == take) break;
          ++vi;
        }
      }
      accepted_ += take;
    }
  }
}

double GammaSampler::rejection_rate() const {
  if (attempts_ == 0) return 0.0;
  return 1.0 - static_cast<double>(accepted_) / static_cast<double>(attempts_);
}

struct GammaReference::Impl {
  std::mt19937_64 engine;
  std::normal_distribution<double> normal{0.0, 1.0};
  std::uniform_real_distribution<double> uniform{0.0, 1.0};
};

GammaReference::GammaReference(double shape, double scale, std::uint64_t seed)
    : shape_(shape), scale_(scale), impl_(std::make_unique<Impl>()) {
  DWI_REQUIRE(shape > 0.0 && scale > 0.0,
              "gamma reference: positive shape and scale required");
  impl_->engine.seed(seed);
}

GammaReference::~GammaReference() = default;

double GammaReference::sample() {
  // Marsaglia-Tsang in double precision, independent uniform source.
  const bool boosted = shape_ < 1.0;
  const double alpha_eff = boosted ? shape_ + 1.0 : shape_;
  const double d = alpha_eff - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    const double x = impl_->normal(impl_->engine);
    const double t = 1.0 + c * x;
    if (t <= 0.0) continue;
    const double v = t * t * t;
    double u = impl_->uniform(impl_->engine);
    if (u <= 0.0) u = std::numeric_limits<double>::min();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2 ||
        std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      double g = d * v * scale_;
      if (boosted) {
        double u2 = impl_->uniform(impl_->engine);
        if (u2 <= 0.0) u2 = std::numeric_limits<double>::min();
        g *= std::pow(u2, 1.0 / shape_);
      }
      return g;
    }
  }
}

}  // namespace dwi::rng
