// Dynamic creation of Mersenne-Twister parameters (Matsumoto &
// Nishimura's DCMT [18]) — the tool the paper used to obtain its
// MT(521) generator, reimplemented from first principles.
//
// Core fact: an MT with geometry (w=32, n, r) acts linearly on a state
// space of dimension p = n·w − r over GF(2). When p is a *Mersenne
// prime exponent* (2^p − 1 prime — 521 is one), the generator has full
// period 2^p − 1 iff its transition matrix T satisfies
//
//     T invertible,  T ≠ I,  and  T^(2^p) = T,
//
// because then ord(T) divides the prime 2^p − 1 and is not 1. The
// T^(2^p) check needs only p matrix squarings — feasible in seconds
// for p = 521 with bit-sliced GF(2) arithmetic. This module provides:
//
//   * Gf2Matrix: dense bit-matrix over GF(2) (multiply, square, rank);
//   * mt_transition_matrix(): T built by pushing basis states through
//     the real untempered MT recurrence;
//   * verify_full_period(): the three-condition proof above;
//   * find_full_period_twist(): the DCMT search — scan twist
//     coefficients `a` until one passes, exactly how the paper's
//     MT(521) parameters were created.
//
// The shipped mt521_params() constant was found and verified with this
// machinery (see tests/test_dcmt.cpp, which re-verifies it).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rng/mersenne_twister.h"

namespace dwi::rng {

/// Dense square bit matrix over GF(2), rows stored as 64-bit limbs.
class Gf2Matrix {
 public:
  explicit Gf2Matrix(unsigned dim);

  static Gf2Matrix identity(unsigned dim);

  unsigned dim() const { return dim_; }
  bool get(unsigned row, unsigned col) const;
  void set(unsigned row, unsigned col, bool v);

  /// Matrix product over GF(2) (row-major XOR accumulation).
  Gf2Matrix operator*(const Gf2Matrix& o) const;
  Gf2Matrix square() const { return *this * *this; }

  bool operator==(const Gf2Matrix& o) const;

  /// Rank via Gaussian elimination (destructive on a copy).
  unsigned rank() const;
  bool invertible() const { return rank() == dim_; }

  /// Matrix-vector product: y = T·x with x, y as limb vectors.
  std::vector<std::uint64_t> apply(
      const std::vector<std::uint64_t>& x) const;

 private:
  unsigned dim_;
  unsigned words_per_row_;
  std::vector<std::uint64_t> bits_;  ///< dim_ rows × words_per_row_
};

/// Build the 521-dimensional (or general n·32−r) transition matrix of
/// the *untempered* MT recurrence for `params` (tempering is a
/// bijection on outputs and does not affect the period).
Gf2Matrix mt_transition_matrix(const MtParams& params);

/// Mersenne-prime exponents up to the sizes this library handles.
bool is_known_mersenne_prime_exponent(unsigned p);

/// Prove (or refute) full period 2^(n·32−r) − 1 for `params`.
/// Requires the period exponent to be a known Mersenne prime exponent
/// and small enough to verify (≤ ~1300) in reasonable time.
bool verify_full_period(const MtParams& params);

/// DCMT search: starting from `params`, scan odd twist coefficients
/// a = start, start+2, ... (wrapping) until verify_full_period holds;
/// returns the passing parameter set, or nullopt after `max_tries`.
std::optional<MtParams> find_full_period_twist(MtParams params,
                                               std::uint32_t start_a,
                                               unsigned max_tries = 256);

}  // namespace dwi::rng
