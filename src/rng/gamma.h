// Marsaglia-Tsang gamma random-number generation [14] — the paper's
// test-case algorithm (Fig 4): a *nested* rejection sampler that turns
// one normal and one uniform variate into one Gamma(α, 1) candidate per
// attempt, plus the α < 1 correction that consumes a second uniform.
//
// Shapes used by CreditRisk+ (§II-D4): sector variance v gives
// α = 1/v, scale b = v, so E[S] = 1 and Var[S] = v. For v = 1.39
// (the representative sector of §IV-B) α ≈ 0.72 < 1, so the correction
// path is live — exactly the configuration that exercises all three
// Mersenne-Twisters and all divergent branches of Listing 2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "rng/mersenne_twister.h"
#include "rng/normal.h"
#include "rng/philox.h"

namespace dwi::rng {

/// Pre-computed Marsaglia-Tsang constants for a given shape α.
/// When α < 1 the sampler draws from Gamma(α + 1) and corrects by
/// U^{1/α} (`boosted` true, Listing 2's `alphaFlag`).
struct GammaConstants {
  float alpha = 1.0f;       ///< requested shape
  float scale = 1.0f;       ///< scale b applied to the output
  bool boosted = false;     ///< α < 1: sample α+1, then correct
  float d = 0.0f;           ///< d = α_eff − 1/3
  float c = 0.0f;           ///< c = 1 / sqrt(9 d)
  float inv_alpha = 1.0f;   ///< 1/α for the correction exponent

  static GammaConstants make(float alpha, float scale = 1.0f);
  /// CreditRisk+ parameterization: α = 1/v, b = v.
  static GammaConstants from_sector_variance(float v);
};

/// Outcome of one pipelined gamma attempt (before correction).
struct GammaAttempt {
  float value = 0.0f;  ///< d·v·scale when valid (Gamma(α_eff) · scale)
  bool valid = false;
};

/// One Marsaglia-Tsang attempt: candidate from normal n0 and uniform u1.
///   v = (1 + c·n0)³; reject when v ≤ 0;
///   accept when u1 < 1 − 0.0331·n0⁴ (squeeze), else when
///   ln u1 < n0²/2 + d(1 − v + ln v); output d·v·scale.
GammaAttempt gamma_attempt(float n0, float u1, const GammaConstants& k);

/// Listing 2's `Correct`: the α < 1 correction g · u2^{1/α}.
/// Computed unconditionally in the pipeline; the result is selected only
/// when `alphaFlag` (k.boosted) is set.
float gamma_correct(float g, float u2, const GammaConstants& k);

/// Full scalar generator: repeatedly attempt until accepted, pulling
/// 32-bit uniforms from `next_u32` and converting via the chosen normal
/// transform. Mirrors the paper's dataflow (normal → rejection →
/// correction) without the pipeline machinery; used for validation and
/// rejection-rate measurement.
class GammaSampler {
 public:
  GammaSampler(GammaConstants constants, NormalTransform transform);

  /// Generate one variate; `next_u32` supplies all uniforms.
  float sample(const std::function<std::uint32_t()>& next_u32);

  /// Block fast path: fill out[0..count) with `count` variates whose
  /// uniforms come from `mt` via generate_block-buffered reads instead
  /// of one indirect call per draw. The uniform *consumption order* is
  /// exactly that of `count` successive sample() calls backed by
  /// mt.next(), so the variates (and attempts()/accepted()) are
  /// bit-identical — the equivalence suite pins this. The buffer reads
  /// ahead of demand, so `mt` should be dedicated to this sampler.
  void sample_block(MersenneTwister& mt, float* out, std::size_t count);

  /// Counter-based block path: fill out[0..count) from a Philox
  /// stream through the vectorized batch kernels (normal transform,
  /// Marsaglia-Tsang predicate, α<1 correction — rng/simd_kernels.h).
  ///
  /// Unlike the MersenneTwister overload, this path defines its OWN
  /// deterministic uniform-consumption order (it is NOT the scalar
  /// sample() order): attempts run in fixed rounds of kAttemptRound;
  /// each round draws one ua block (plus ub when the transform takes
  /// two uniforms), then one u1 block for the round's valid normals,
  /// then one u2 block for its accepted candidates. The order depends
  /// only on the stream contents, never on `count`, so out[] is a
  /// prefix of one infinite per-stream variate tape: serving the same
  /// stream with any count (or re-deriving the stream via O(1) seek)
  /// reproduces the same leading values bit-for-bit — the property the
  /// counter-based serving strategy keys on.
  void sample_block(Philox& px, float* out, std::size_t count);

  /// Fixed attempts-per-round of the Philox block path — part of the
  /// deterministic-order contract above, so changing it changes every
  /// counter-based stream's tape.
  static constexpr std::size_t kAttemptRound = 1024;

  /// Attempts and acceptances so far. The "combined rejection rate" in
  /// the paper's sense (§IV-E) is the fraction of main-loop iterations
  /// that do not emit a validated gamma RN.
  std::uint64_t attempts() const { return attempts_; }
  std::uint64_t accepted() const { return accepted_; }
  double rejection_rate() const;

  const GammaConstants& constants() const { return k_; }
  NormalTransform transform() const { return transform_; }

 private:
  GammaConstants k_;
  NormalTransform transform_;
  std::uint64_t attempts_ = 0;
  std::uint64_t accepted_ = 0;
};

/// Double-precision reference sampler built on std::mt19937_64 — an
/// independent code path playing the role of the paper's Matlab
/// `gamrnd` benchmark (Fig 6).
class GammaReference {
 public:
  GammaReference(double shape, double scale,
                 std::uint64_t seed = 0x9e3779b97f4a7c15ull);
  ~GammaReference();
  GammaReference(const GammaReference&) = delete;
  GammaReference& operator=(const GammaReference&) = delete;

  double sample();
  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  struct Impl;
  double shape_;
  double scale_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dwi::rng
