// Jump-ahead for the Mersenne-Twister family: compute the generator
// state k steps into the future in O(p² log k) bit operations instead
// of k sequential steps, using the GF(2) transition matrix from
// rng/dcmt.h.
//
// Why it matters here: the paper instantiates 3–4 twisters per
// work-item across 6–8 work-items and must guarantee the streams do
// not overlap. Distinct seeds make overlap only improbable; jump-ahead
// makes it impossible — each work-item receives the same master
// sequence offset by a fixed stride (a standard production technique
// for parallel Monte-Carlo). Supported for the small DCMT geometries
// (p ≤ ~1300); MT(19937)'s matrix is too large for this dense
// implementation, which is one more practical reason the paper's
// MT(521) configurations are attractive.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/mersenne_twister.h"

namespace dwi::rng {

/// The raw n-word state the standard Knuth initializer produces for
/// `seed` (what a fresh MersenneTwister holds before its first twist).
std::vector<std::uint32_t> initial_raw_state(const MtParams& params,
                                             std::uint32_t seed);

/// Build a generator whose output sequence equals a fresh
/// MersenneTwister(params, seed) with the first `skip` outputs
/// discarded. Cost: one transition-matrix build plus ~log2(skip)
/// matrix squarings.
MersenneTwister make_jumped(const MtParams& params, std::uint32_t seed,
                            std::uint64_t skip);

/// Partition one master sequence into `count` non-overlapping streams
/// of `stride` outputs each (work-item w gets outputs
/// [w·stride, (w+1)·stride)). Streams share one matrix build.
std::vector<MersenneTwister> make_parallel_streams(const MtParams& params,
                                                   std::uint32_t seed,
                                                   unsigned count,
                                                   std::uint64_t stride);

}  // namespace dwi::rng
