// Jump-ahead for the Mersenne-Twister family: compute the generator
// state k steps into the future in O(p² log k) bit operations instead
// of k sequential steps, using the GF(2) transition matrix from
// rng/dcmt.h.
//
// Why it matters here: the paper instantiates 3–4 twisters per
// work-item across 6–8 work-items and must guarantee the streams do
// not overlap. Distinct seeds make overlap only improbable; jump-ahead
// makes it impossible — each work-item receives the same master
// sequence offset by a fixed stride (a standard production technique
// for parallel Monte-Carlo). Supported for the small DCMT geometries
// (p ≤ ~1300); MT(19937)'s matrix is too large for this dense
// implementation, which is one more practical reason the paper's
// MT(521) configurations are attractive.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rng/dcmt.h"
#include "rng/mersenne_twister.h"

namespace dwi::rng {

/// The raw n-word state the standard Knuth initializer produces for
/// `seed` (what a fresh MersenneTwister holds before its first twist).
std::vector<std::uint32_t> initial_raw_state(const MtParams& params,
                                             std::uint32_t seed);

/// Build a generator whose output sequence equals a fresh
/// MersenneTwister(params, seed) with the first `skip` outputs
/// discarded. Cost: one transition-matrix build plus ~log2(skip)
/// matrix squarings.
MersenneTwister make_jumped(const MtParams& params, std::uint32_t seed,
                            std::uint64_t skip);

/// Partition one master sequence into `count` non-overlapping streams
/// of `stride` outputs each (work-item w gets outputs
/// [w·stride, (w+1)·stride)). Streams share one matrix build.
std::vector<MersenneTwister> make_parallel_streams(const MtParams& params,
                                                   std::uint32_t seed,
                                                   unsigned count,
                                                   std::uint64_t stride);

/// Lazy, index-addressed substream derivation for parallel workers.
///
/// Where make_parallel_streams materializes all streams eagerly (and
/// must step through them in order), the splitter precomputes T^stride
/// once and then serves stream(i) — the master sequence with the
/// first i·stride outputs discarded — for any index, in any order.
/// That is the shape parallel execution needs (src/exec): shards claim
/// indices dynamically, and a shard's stream depends only on its
/// *index*, never on which worker thread ran it or when, so parallel
/// results are run-to-run identical regardless of thread count. The
/// counter-based alternative with the same property is rng/philox
/// (key = shard index); this class provides it for the paper's
/// Mersenne-Twister family.
///
/// const and safe to share across threads after construction. The
/// matrix-vector applies in stream() are lock-free; only growing the
/// cached squaring chain (first touch of a new high bit of `index`)
/// takes a lock, and each squaring is computed exactly once.
class SubstreamSplitter {
 public:
  /// Requires a small DCMT geometry (period exponent <= 1300, e.g.
  /// the paper's MT(521)); `stride` must cover the worst-case number
  /// of outputs any one substream consumes.
  SubstreamSplitter(const MtParams& params, std::uint32_t seed,
                    std::uint64_t stride);

  /// Generator equal to MersenneTwister(params, seed) with the first
  /// `index * stride()` outputs discarded. Amortized cost per call is
  /// popcount(index) matrix-vector applies: the squaring chain
  /// T^(stride·2^j) is grown lazily and cached across calls, so
  /// high-rate callers (the serving layer derives one substream block
  /// per request) pay the matrix-matrix work only the first time a
  /// new high bit appears.
  MersenneTwister stream(std::uint64_t index) const;

  std::uint64_t stride() const { return stride_; }
  const MtParams& params() const { return params_; }

 private:
  struct PowerCache;  ///< lazily grown squaring chain (jump.cpp)

  MtParams params_;
  std::uint64_t stride_;
  std::vector<std::uint64_t> seed_state_;  ///< packed GF(2) seed vector
  Gf2Matrix t_stride_;                     ///< transition matrix ^ stride
  std::shared_ptr<PowerCache> cache_;      ///< shared by copies
};

}  // namespace dwi::rng
