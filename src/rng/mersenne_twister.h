// Mersenne-Twister uniform PRNG family (Matsumoto & Nishimura [15]).
//
// The paper instantiates two members (Table I):
//   * MT(19937): the classic generator, period 2^19937-1, 624 states;
//   * MT(521):   a Dynamic-Creation (DCMT, [18]) generator with period
//                2^521-1 and only 17 state words, chosen on the FPGA to
//                cut BRAM when three independent twisters per work-item
//                are needed.
//
// This implementation is a single engine parameterized by the standard
// MT tuple (w=32, n, m, r, a, u, d, s, b, t, c, l). MT19937 uses the
// published constants and is bit-exact against std::mt19937 (tested).
// For MT(521) the authors used parameters produced by the DCMT tool,
// which are not published in the paper and the tool is unavailable
// offline; we ship a representative parameter set with the correct
// state geometry (n=17, r=23, so n·w−r = 521) and validate its output
// statistically (equidistribution, KS, chi-square) instead of by
// period proof. See DESIGN.md §2 for this substitution.
//
// Hot-path structure: the generator regenerates and tempers a whole
// n-word block at a time (refill()) and serves individual draws from
// that buffer, so next() is a bounds check plus an array read, and
// generate_block() can hand out long runs with two memcpy-sized loops
// per n outputs. The twist runs modulo-free in three segments (see
// refill() in the .cpp); the output sequence is bit-identical to the
// classic one-word-at-a-time formulation — tests/test_block_rng.cpp
// pins block-vs-scalar equality across block boundaries and after
// jump-ahead.
//
// AdaptedMersenneTwister implements the paper's Listing 3: the
// generator is free-running inside an II=1 pipeline and an external
// `enable` flag controls whether the state actually advances — the key
// trick that lets downstream rejection logic "stop" an upstream
// twister without stalling the pipeline or discarding numbers.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.h"

namespace dwi::rng {

/// The full 32-bit Mersenne-Twister parameter tuple.
struct MtParams {
  unsigned n;         ///< state size in 32-bit words
  unsigned m;         ///< middle word offset
  unsigned r;         ///< separation point of one word
  std::uint32_t a;    ///< twist matrix coefficient
  unsigned u;         ///< tempering shift u
  std::uint32_t d;    ///< tempering mask d
  unsigned s;         ///< tempering shift s
  std::uint32_t b;    ///< tempering mask b
  unsigned t;         ///< tempering shift t
  std::uint32_t c;    ///< tempering mask c
  unsigned l;         ///< tempering shift l
  std::uint32_t f;    ///< initialization multiplier

  /// Period exponent n·32 − r (19937 or 521 for the paper's configs).
  unsigned period_exponent() const { return n * 32 - r; }
};

/// Published MT19937 parameters.
MtParams mt19937_params();

/// Representative DCMT-style parameters with period exponent 521
/// (n = 17, r = 23). See the file comment for the substitution note.
MtParams mt521_params();

/// Classic sequential Mersenne-Twister.
class MersenneTwister {
 public:
  explicit MersenneTwister(const MtParams& params, std::uint32_t seed = 5489u);

  /// Construct from a raw n-word state (as produced by jump-ahead,
  /// rng/jump.h): the next output is temper(x_n) of the recurrence
  /// continued from this state. The low r bits of word 0 are ignored.
  MersenneTwister(const MtParams& params,
                  const std::vector<std::uint32_t>& raw_state);

  /// Re-seed with the standard Knuth initializer.
  void seed(std::uint32_t s);

  /// Next tempered 32-bit output; state advances by one word. Served
  /// from the tempered block buffer — one refill() per n draws.
  std::uint32_t next() {
    if (index_ >= params_.n) refill();
    return block_[index_++];
  }

  /// Block fast path: fill out[0..count) with exactly the next `count`
  /// outputs of the next() sequence (same state advance, same values).
  /// Whole-buffer copies amortize the twist+temper over n words and
  /// eliminate the per-draw call overhead in batched consumers.
  void generate_block(std::uint32_t* out, std::size_t count);

  const MtParams& params() const { return params_; }
  unsigned state_words() const { return params_.n; }

 private:
  friend class AdaptedMersenneTwister;

  /// One in-place twist pass over the whole state array (no temper).
  void twist();

  /// Twist the whole state array and temper it into block_; resets
  /// index_ to 0. Bit-identical to n successive classic twist steps.
  void refill();

  MtParams params_;
  std::vector<std::uint32_t> state_;  ///< raw recurrence state
  std::vector<std::uint32_t> block_;  ///< tempered outputs of state_
  unsigned index_;
  std::uint32_t lower_mask_;
  std::uint32_t upper_mask_;
};

/// Listing 3: enable-gated Mersenne-Twister for fully pipelined designs.
///
/// next(enable) always *computes* the output for the current state word
/// (the hardware datapath runs every cycle), but the state update and
/// index increment only commit when `enable` is true. Filtering the
/// call sequence to enabled calls therefore yields exactly the plain
/// MT sequence — the invariant that prevents the distribution
/// distortion described in §II-E, and the property our tests check.
class AdaptedMersenneTwister {
 public:
  explicit AdaptedMersenneTwister(const MtParams& params,
                                  std::uint32_t seed = 5489u);

  /// Wrap an existing generator — e.g. a jump-ahead substream from
  /// rng/jump.h — so the enable-gated pipeline twister can run on a
  /// partitioned master sequence instead of a distinct seed.
  explicit AdaptedMersenneTwister(MersenneTwister inner);

  void seed(std::uint32_t s);

  /// Compute the current output; commit the state update iff `enable`.
  /// The inner generator's block buffer already holds tempered words,
  /// so a disabled call is a plain re-read of the same buffered value.
  std::uint32_t next(bool enable) {
    if (inner_.index_ >= inner_.params_.n) inner_.refill();
    const std::uint32_t y = inner_.block_[inner_.index_];
    if (enable) {
      ++inner_.index_;
      ++committed_;
    }
    return y;
  }

  /// Block fast path for a run of `count` *enabled* draws: equivalent
  /// to count× next(true), for batched consumers that know up front
  /// how many commits they need (e.g. the tape-batched work-item).
  void generate_block(std::uint32_t* out, std::size_t count) {
    inner_.generate_block(out, count);
    committed_ += count;
  }

  /// Number of committed (enabled) steps so far.
  std::uint64_t committed_steps() const { return committed_; }

  const MtParams& params() const { return inner_.params(); }

 private:
  MersenneTwister inner_;
  std::uint64_t committed_ = 0;
};

}  // namespace dwi::rng
