// Uniform-to-normal transforms (§II-D2, §II-D3).
//
// The paper evaluates two families:
//   * Marsaglia-Bray (polar) rejection method [17]: two uniforms in,
//     at most one normal out, acceptance probability π/4 ≈ 78.5 % —
//     heavy ops (log, sqrt, divide) and a data-dependent branch, the
//     divergence stressor for Config1/2;
//   * ICDF transforms: direct mapping of one uniform to one normal —
//     CUDA-style (erfinv polynomial, see erfinv.h) for the fixed
//     architectures, bit-level segmented (see icdf_bitwise.h) for the
//     FPGA — used in Config3/4 where only the gamma stage rejects.
//
// Every transform exposes the same per-attempt shape so the pipelined
// kernel (Listing 2), the SIMT lockstep kernels and the statistics
// suite all consume one interface.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dwi::rng {

/// Outcome of one pipelined normal-generation attempt.
struct NormalAttempt {
  float value = 0.0f;
  bool valid = false;
};

/// Which uniform-to-normal transform a configuration uses (Table I).
enum class NormalTransform {
  kMarsagliaBray,  ///< polar rejection (Config1, Config2)
  kIcdfBitwise,    ///< FPGA-style segmented ICDF (Config3, Config4 on FPGA)
  kIcdfCuda,       ///< CUDA-style erfinv ICDF (Config3, Config4 on CPU/GPU/PHI)
  kBoxMuller,      ///< classic trigonometric pair (baseline, §II-D2)
};

const char* to_string(NormalTransform t);

/// Number of 32-bit uniforms one attempt of the transform consumes.
/// Marsaglia-Bray needs two (split into two parallel twisters per [18]);
/// the ICDF transforms need one; Box-Muller consumes two and produces
/// two (we use one, matching the paper's single-output pipeline).
unsigned uniforms_per_attempt(NormalTransform t);

/// Marsaglia-Bray polar attempt: v_i = 2 u_i − 1, s = v₁² + v₂²;
/// accepted iff 0 < s < 1, output v₁ · sqrt(−2 ln s / s).
NormalAttempt marsaglia_bray_attempt(std::uint32_t u1, std::uint32_t u2);

/// Box-Muller: always valid; returns the cosine branch and optionally
/// the sine branch through `second`.
float box_muller(std::uint32_t u1, std::uint32_t u2,
                 float* second = nullptr);

/// Dispatch one attempt of `t` on up to two uniforms (u2 ignored when
/// the transform consumes one).
NormalAttempt normal_attempt(NormalTransform t, std::uint32_t u1,
                             std::uint32_t u2);

/// Batched form of normal_attempt for block-generated uniforms: apply
/// `t` to `count` attempts, reading ua[i] (and ub[i] for two-uniform
/// transforms; ub may be null otherwise) and writing value[i] /
/// valid[i]. The dispatch happens once per block instead of once per
/// attempt and each case is a tight loop over the same scalar helpers,
/// so results are bit-identical to `count` normal_attempt calls.
void normal_attempt_block(NormalTransform t, const std::uint32_t* ua,
                          const std::uint32_t* ub, std::size_t count,
                          float* value, std::uint8_t* valid);

/// Acceptance probability of one attempt, analytic where known:
/// π/4 for Marsaglia-Bray, 1 − 2^-31 for the bitwise ICDF, 1 otherwise.
double analytic_acceptance(NormalTransform t);

}  // namespace dwi::rng
