#include "rng/mersenne_twister.h"

#include <algorithm>
#include <cstring>

namespace dwi::rng {

MtParams mt19937_params() {
  return MtParams{
      /*n=*/624,    /*m=*/397,          /*r=*/31,
      /*a=*/0x9908b0dfu,
      /*u=*/11,     /*d=*/0xffffffffu,
      /*s=*/7,      /*b=*/0x9d2c5680u,
      /*t=*/15,     /*c=*/0xefc60000u,
      /*l=*/18,     /*f=*/1812433253u,
  };
}

MtParams mt521_params() {
  // DCMT geometry for period exponent 521: n*32 - r = 17*32 - 23. The
  // twist coefficient a = 0xe4bd7697 was found by this library's own
  // dynamic-creation search (rng/dcmt.h) and PROVEN to give the full
  // period 2^521 - 1: the GF(2) transition matrix is invertible,
  // non-identity, and satisfies T^(2^521) = T, and 2^521 - 1 is a
  // Mersenne prime so the order is exactly 2^521 - 1. The paper's own
  // DCMT output is unpublished; tempering masks are ours (tempering is
  // a bijection and does not affect the period), validated
  // statistically in tests/test_mersenne_twister.cpp.
  return MtParams{
      /*n=*/17,     /*m=*/8,            /*r=*/23,
      /*a=*/0xe4bd7697u,
      /*u=*/11,     /*d=*/0xffffffffu,
      /*s=*/7,      /*b=*/0x655e5280u,
      /*t=*/15,     /*c=*/0xffd58000u,
      /*l=*/18,     /*f=*/1812433253u,
  };
}

MersenneTwister::MersenneTwister(const MtParams& params, std::uint32_t seed_v)
    : params_(params), state_(params.n), block_(params.n), index_(params.n),
      lower_mask_((params.r == 32) ? 0xffffffffu
                                   : ((std::uint32_t{1} << params.r) - 1)),
      upper_mask_(~lower_mask_) {
  DWI_REQUIRE(params.n >= 2 && params.m >= 1 && params.m < params.n,
              "invalid Mersenne-Twister geometry");
  DWI_REQUIRE(params.r >= 1 && params.r <= 32, "invalid separation point r");
  seed(seed_v);
}

MersenneTwister::MersenneTwister(const MtParams& params,
                                 const std::vector<std::uint32_t>& raw_state)
    : MersenneTwister(params, 5489u) {
  DWI_REQUIRE(raw_state.size() == params.n,
              "raw state must have n words");
  state_ = raw_state;
  index_ = params_.n;  // force a twist before the first output
}

void MersenneTwister::seed(std::uint32_t s) {
  state_[0] = s;
  for (unsigned i = 1; i < params_.n; ++i) {
    state_[i] =
        params_.f * (state_[i - 1] ^ (state_[i - 1] >> 30)) + i;
  }
  index_ = params_.n;
}

void MersenneTwister::refill() {
  // One in-place pass of the twist recurrence
  //   x = (s[i] & upper) | (s[i+1 mod n] & lower)
  //   s[i] <- s[i+m mod n] ^ (x >> 1) ^ (lsb(x) ? a : 0)
  // split into three modulo-free segments so each loop body is pure
  // straight-line integer code. Segment boundaries encode exactly
  // which neighbours have already been rewritten by this pass (for
  // i >= n-m the middle word i+m wraps onto the updated prefix; the
  // last word additionally wraps its successor onto updated s[0]),
  // so the result is bit-identical to the classic word-at-a-time
  // formulation. Tempering then runs as a second tight loop into
  // block_, which next()/generate_block() serve from.
  std::uint32_t* s = state_.data();
  const unsigned n = params_.n;
  const unsigned m = params_.m;
  const std::uint32_t a = params_.a;
  const std::uint32_t um = upper_mask_;
  const std::uint32_t lm = lower_mask_;

  for (unsigned i = 0; i < n - m; ++i) {
    const std::uint32_t x = (s[i] & um) | (s[i + 1] & lm);
    s[i] = s[i + m] ^ (x >> 1) ^ ((x & 1u) ? a : 0u);
  }
  for (unsigned i = n - m; i < n - 1; ++i) {
    const std::uint32_t x = (s[i] & um) | (s[i + 1] & lm);
    s[i] = s[i + m - n] ^ (x >> 1) ^ ((x & 1u) ? a : 0u);
  }
  {
    const std::uint32_t x = (s[n - 1] & um) | (s[0] & lm);
    s[n - 1] = s[m - 1] ^ (x >> 1) ^ ((x & 1u) ? a : 0u);
  }

  std::uint32_t* out = block_.data();
  const unsigned sh_u = params_.u, sh_s = params_.s;
  const unsigned sh_t = params_.t, sh_l = params_.l;
  const std::uint32_t d = params_.d, b = params_.b, c = params_.c;
  for (unsigned i = 0; i < n; ++i) {
    std::uint32_t y = s[i];
    y ^= (y >> sh_u) & d;
    y ^= (y << sh_s) & b;
    y ^= (y << sh_t) & c;
    y ^= y >> sh_l;
    out[i] = y;
  }
  index_ = 0;
}

void MersenneTwister::generate_block(std::uint32_t* out, std::size_t count) {
  const unsigned n = params_.n;
  while (count > 0) {
    if (index_ >= n) refill();
    const std::size_t take =
        std::min<std::size_t>(count, static_cast<std::size_t>(n - index_));
    std::memcpy(out, block_.data() + index_, take * sizeof(std::uint32_t));
    index_ += static_cast<unsigned>(take);
    out += take;
    count -= take;
  }
}

AdaptedMersenneTwister::AdaptedMersenneTwister(const MtParams& params,
                                               std::uint32_t seed_v)
    : inner_(params, seed_v) {}

AdaptedMersenneTwister::AdaptedMersenneTwister(MersenneTwister inner)
    : inner_(std::move(inner)) {}

void AdaptedMersenneTwister::seed(std::uint32_t s) {
  inner_.seed(s);
  committed_ = 0;
}

}  // namespace dwi::rng
