#include "rng/mersenne_twister.h"

namespace dwi::rng {

MtParams mt19937_params() {
  return MtParams{
      /*n=*/624,    /*m=*/397,          /*r=*/31,
      /*a=*/0x9908b0dfu,
      /*u=*/11,     /*d=*/0xffffffffu,
      /*s=*/7,      /*b=*/0x9d2c5680u,
      /*t=*/15,     /*c=*/0xefc60000u,
      /*l=*/18,     /*f=*/1812433253u,
  };
}

MtParams mt521_params() {
  // DCMT geometry for period exponent 521: n*32 - r = 17*32 - 23. The
  // twist coefficient a = 0xe4bd7697 was found by this library's own
  // dynamic-creation search (rng/dcmt.h) and PROVEN to give the full
  // period 2^521 - 1: the GF(2) transition matrix is invertible,
  // non-identity, and satisfies T^(2^521) = T, and 2^521 - 1 is a
  // Mersenne prime so the order is exactly 2^521 - 1. The paper's own
  // DCMT output is unpublished; tempering masks are ours (tempering is
  // a bijection and does not affect the period), validated
  // statistically in tests/test_mersenne_twister.cpp.
  return MtParams{
      /*n=*/17,     /*m=*/8,            /*r=*/23,
      /*a=*/0xe4bd7697u,
      /*u=*/11,     /*d=*/0xffffffffu,
      /*s=*/7,      /*b=*/0x655e5280u,
      /*t=*/15,     /*c=*/0xffd58000u,
      /*l=*/18,     /*f=*/1812433253u,
  };
}

MersenneTwister::MersenneTwister(const MtParams& params, std::uint32_t seed_v)
    : params_(params), state_(params.n), index_(params.n),
      lower_mask_((params.r == 32) ? 0xffffffffu
                                   : ((std::uint32_t{1} << params.r) - 1)),
      upper_mask_(~lower_mask_) {
  DWI_REQUIRE(params.n >= 2 && params.m >= 1 && params.m < params.n,
              "invalid Mersenne-Twister geometry");
  DWI_REQUIRE(params.r >= 1 && params.r <= 32, "invalid separation point r");
  seed(seed_v);
}

MersenneTwister::MersenneTwister(const MtParams& params,
                                 const std::vector<std::uint32_t>& raw_state)
    : MersenneTwister(params, 5489u) {
  DWI_REQUIRE(raw_state.size() == params.n,
              "raw state must have n words");
  state_ = raw_state;
  index_ = params_.n;  // force a twist before the first output
}

void MersenneTwister::seed(std::uint32_t s) {
  state_[0] = s;
  for (unsigned i = 1; i < params_.n; ++i) {
    state_[i] =
        params_.f * (state_[i - 1] ^ (state_[i - 1] >> 30)) + i;
  }
  index_ = params_.n;
}

std::uint32_t MersenneTwister::twist_word(unsigned i) const {
  const unsigned n = params_.n;
  const std::uint32_t x = (state_[i] & upper_mask_) |
                          (state_[(i + 1) % n] & lower_mask_);
  std::uint32_t x_a = x >> 1;
  if (x & 1u) x_a ^= params_.a;
  return state_[(i + params_.m) % n] ^ x_a;
}

std::uint32_t MersenneTwister::next() {
  if (index_ >= params_.n) {
    for (unsigned i = 0; i < params_.n; ++i) state_[i] = twist_word(i);
    index_ = 0;
  }
  std::uint32_t y = state_[index_++];
  y ^= (y >> params_.u) & params_.d;
  y ^= (y << params_.s) & params_.b;
  y ^= (y << params_.t) & params_.c;
  y ^= y >> params_.l;
  return y;
}

AdaptedMersenneTwister::AdaptedMersenneTwister(const MtParams& params,
                                               std::uint32_t seed_v)
    : inner_(params, seed_v) {}

AdaptedMersenneTwister::AdaptedMersenneTwister(MersenneTwister inner)
    : inner_(std::move(inner)) {}

void AdaptedMersenneTwister::seed(std::uint32_t s) {
  inner_.seed(s);
  committed_ = 0;
}

std::uint32_t AdaptedMersenneTwister::next(bool enable) {
  // The datapath computes the output of the *current* state word every
  // call (the pipeline runs every cycle); the commit is conditional.
  auto& st = inner_.state_;
  auto& idx = inner_.index_;
  const auto& p = inner_.params_;

  if (idx >= p.n) {
    // Regenerate the block lazily, exactly as the sequential generator
    // would at this point; this is state-observation, not a commit —
    // the same value is recomputed until the enable finally fires.
    // (Cheaper incremental variant: twist only word `idx % n`; the block
    // form is kept for bit-exactness with MersenneTwister::next.)
    for (unsigned i = 0; i < p.n; ++i) st[i] = inner_.twist_word(i);
    idx = 0;
  }
  std::uint32_t y = st[idx];
  y ^= (y >> p.u) & p.d;
  y ^= (y << p.s) & p.b;
  y ^= (y << p.t) & p.c;
  y ^= y >> p.l;

  if (enable) {
    ++idx;
    ++committed_;
  }
  return y;
}

}  // namespace dwi::rng
