#include "rng/mersenne_twister.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "rng/simd_kernels.h"

namespace dwi::rng {

MtParams mt19937_params() {
  return MtParams{
      /*n=*/624,    /*m=*/397,          /*r=*/31,
      /*a=*/0x9908b0dfu,
      /*u=*/11,     /*d=*/0xffffffffu,
      /*s=*/7,      /*b=*/0x9d2c5680u,
      /*t=*/15,     /*c=*/0xefc60000u,
      /*l=*/18,     /*f=*/1812433253u,
  };
}

MtParams mt521_params() {
  // DCMT geometry for period exponent 521: n*32 - r = 17*32 - 23. The
  // twist coefficient a = 0xe4bd7697 was found by this library's own
  // dynamic-creation search (rng/dcmt.h) and PROVEN to give the full
  // period 2^521 - 1: the GF(2) transition matrix is invertible,
  // non-identity, and satisfies T^(2^521) = T, and 2^521 - 1 is a
  // Mersenne prime so the order is exactly 2^521 - 1. The paper's own
  // DCMT output is unpublished; tempering masks are ours (tempering is
  // a bijection and does not affect the period), validated
  // statistically in tests/test_mersenne_twister.cpp.
  return MtParams{
      /*n=*/17,     /*m=*/8,            /*r=*/23,
      /*a=*/0xe4bd7697u,
      /*u=*/11,     /*d=*/0xffffffffu,
      /*s=*/7,      /*b=*/0x655e5280u,
      /*t=*/15,     /*c=*/0xffd58000u,
      /*l=*/18,     /*f=*/1812433253u,
  };
}

MersenneTwister::MersenneTwister(const MtParams& params, std::uint32_t seed_v)
    : params_(params), state_(params.n), block_(params.n), index_(params.n),
      lower_mask_((params.r == 32) ? 0xffffffffu
                                   : ((std::uint32_t{1} << params.r) - 1)),
      upper_mask_(~lower_mask_) {
  DWI_REQUIRE(params.n >= 2 && params.m >= 1 && params.m < params.n,
              "invalid Mersenne-Twister geometry");
  DWI_REQUIRE(params.r >= 1 && params.r <= 32, "invalid separation point r");
  seed(seed_v);
}

MersenneTwister::MersenneTwister(const MtParams& params,
                                 const std::vector<std::uint32_t>& raw_state)
    : MersenneTwister(params, 5489u) {
  DWI_REQUIRE(raw_state.size() == params.n,
              "raw state must have n words");
  state_ = raw_state;
  index_ = params_.n;  // force a twist before the first output
}

namespace {

// Memoized Knuth seeding. Partition sweeps (simt/runtime_estimator)
// construct thousands of twisters from a small set of recurring
// (seed, geometry) pairs; the serial init recurrence is the dominant
// construction cost, while replaying a cached state is one memcpy.
// Thread-local, so no synchronization; capped so long-lived servers
// with many distinct seeds cannot grow it without bound.
struct SeedKey {
  std::uint32_t s, n, f;
  bool operator==(const SeedKey& o) const {
    return s == o.s && n == o.n && f == o.f;
  }
};
struct SeedKeyHash {
  std::size_t operator()(const SeedKey& k) const {
    std::uint64_t h = (std::uint64_t{k.s} << 32) ^
                      (std::uint64_t{k.n} << 8) ^ k.f;
    h *= 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};
constexpr std::size_t kSeedCacheCap = 1024;

}  // namespace

void MersenneTwister::seed(std::uint32_t s) {
  thread_local std::unordered_map<SeedKey, std::vector<std::uint32_t>,
                                  SeedKeyHash>
      cache;
  const SeedKey key{s, params_.n, params_.f};
  auto it = cache.find(key);
  if (it != cache.end()) {
    std::memcpy(state_.data(), it->second.data(),
                params_.n * sizeof(std::uint32_t));
    index_ = params_.n;
    return;
  }
  state_[0] = s;
  for (unsigned i = 1; i < params_.n; ++i) {
    state_[i] =
        params_.f * (state_[i - 1] ^ (state_[i - 1] >> 30)) + i;
  }
  index_ = params_.n;
  if (cache.size() >= kSeedCacheCap) cache.clear();
  cache.emplace(key, state_);
}

void MersenneTwister::twist() {
  // One in-place pass of the twist recurrence
  //   x = (s[i] & upper) | (s[i+1 mod n] & lower)
  //   s[i] <- s[i+m mod n] ^ (x >> 1) ^ (lsb(x) ? a : 0)
  // via the dispatched block kernel (rng/simd_kernels.h): three
  // modulo-free segments whose boundaries encode exactly which
  // neighbours have already been rewritten by this pass, bit-identical
  // to the classic word-at-a-time formulation in every variant.
  simd::mt_twist_block(state_.data(), params_);
}

void MersenneTwister::refill() {
  // Twist, then temper as a second tight loop into block_, which
  // next()/generate_block() serve from.
  twist();
  simd::mt_temper_block(state_.data(), params_.n, params_, block_.data());
  index_ = 0;
}

void MersenneTwister::generate_block(std::uint32_t* out, std::size_t count) {
  const unsigned n = params_.n;
  // Drain whatever the tempered buffer still holds.
  if (index_ < n) {
    const std::size_t take =
        std::min<std::size_t>(count, static_cast<std::size_t>(n - index_));
    std::memcpy(out, block_.data() + index_, take * sizeof(std::uint32_t));
    index_ += static_cast<unsigned>(take);
    out += take;
    count -= take;
  }
  // Bulk path: twist whole blocks straight into `out` untempered, then
  // temper the run in one pass (in place — the kernel is elementwise).
  // For small-n geometries (MT(521), n = 17) this replaces a per-block
  // refill + dispatch + memcpy round-trip with one dense temper call.
  if (count >= n) {
    std::uint32_t* const raw = out;
    std::size_t run = 0;
    do {
      twist();
      std::memcpy(out, state_.data(), n * sizeof(std::uint32_t));
      out += n;
      run += n;
      count -= n;
    } while (count >= n);
    simd::mt_temper_block(raw, run, params_, raw);
  }
  // Tail shorter than a block: refill and serve from the buffer.
  if (count > 0) {
    refill();
    std::memcpy(out, block_.data(), count * sizeof(std::uint32_t));
    index_ = static_cast<unsigned>(count);
  }
}

AdaptedMersenneTwister::AdaptedMersenneTwister(const MtParams& params,
                                               std::uint32_t seed_v)
    : inner_(params, seed_v) {}

AdaptedMersenneTwister::AdaptedMersenneTwister(MersenneTwister inner)
    : inner_(std::move(inner)) {}

void AdaptedMersenneTwister::seed(std::uint32_t s) {
  inner_.seed(s);
  committed_ = 0;
}

}  // namespace dwi::rng
