#include "rng/philox.h"

namespace dwi::rng {

namespace {

constexpr std::uint32_t kMul0 = 0xD2511F53u;
constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

inline void mulhilo(std::uint32_t a, std::uint32_t b, std::uint32_t* hi,
                    std::uint32_t* lo) {
  const std::uint64_t p = static_cast<std::uint64_t>(a) * b;
  *hi = static_cast<std::uint32_t>(p >> 32);
  *lo = static_cast<std::uint32_t>(p);
}

inline std::array<std::uint32_t, 4> round_once(
    const std::array<std::uint32_t, 4>& x,
    const std::array<std::uint32_t, 2>& k) {
  std::uint32_t hi0, lo0, hi1, lo1;
  mulhilo(kMul0, x[0], &hi0, &lo0);
  mulhilo(kMul1, x[2], &hi1, &lo1);
  return {hi1 ^ x[1] ^ k[0], lo1, hi0 ^ x[3] ^ k[1], lo0};
}

}  // namespace

std::array<std::uint32_t, 4> philox4x32(
    const std::array<std::uint32_t, 4>& counter,
    const std::array<std::uint32_t, 2>& key) {
  std::array<std::uint32_t, 4> x = counter;
  std::array<std::uint32_t, 2> k = key;
  for (int round = 0; round < 10; ++round) {
    x = round_once(x, k);
    k[0] += kWeyl0;
    k[1] += kWeyl1;
  }
  return x;
}

Philox::Philox(std::uint32_t seed, std::uint32_t stream_id)
    : key_{seed, stream_id} {}

void Philox::refill() {
  block_ = philox4x32(counter_, key_);
  lane_ = 0;
  // 128-bit counter increment.
  for (auto& c : counter_) {
    if (++c != 0) break;
  }
}

std::uint32_t Philox::next() {
  if (lane_ >= 4) refill();
  return block_[lane_++];
}

void Philox::seek(std::uint64_t output_index) {
  const std::uint64_t block = output_index / 4;
  counter_ = {static_cast<std::uint32_t>(block),
              static_cast<std::uint32_t>(block >> 32), 0, 0};
  refill();
  lane_ = static_cast<unsigned>(output_index % 4);
}

}  // namespace dwi::rng
