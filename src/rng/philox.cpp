#include "rng/philox.h"

#include <cstring>

#include "rng/simd_kernels.h"

namespace dwi::rng {

namespace {

constexpr std::uint32_t kMul0 = 0xD2511F53u;
constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

inline void mulhilo(std::uint32_t a, std::uint32_t b, std::uint32_t* hi,
                    std::uint32_t* lo) {
  const std::uint64_t p = static_cast<std::uint64_t>(a) * b;
  *hi = static_cast<std::uint32_t>(p >> 32);
  *lo = static_cast<std::uint32_t>(p);
}

inline std::array<std::uint32_t, 4> round_once(
    const std::array<std::uint32_t, 4>& x,
    const std::array<std::uint32_t, 2>& k) {
  std::uint32_t hi0, lo0, hi1, lo1;
  mulhilo(kMul0, x[0], &hi0, &lo0);
  mulhilo(kMul1, x[2], &hi1, &lo1);
  return {hi1 ^ x[1] ^ k[0], lo1, hi0 ^ x[3] ^ k[1], lo0};
}

/// 128-bit add of `n` onto the little-endian 4-word counter.
inline void counter_add(std::array<std::uint32_t, 4>* c, std::uint64_t n) {
  std::uint64_t carry = n;
  for (auto& w : *c) {
    carry += w;
    w = static_cast<std::uint32_t>(carry);
    carry >>= 32;
    if (carry == 0) break;
  }
}

}  // namespace

std::array<std::uint32_t, 4> philox4x32(
    const std::array<std::uint32_t, 4>& counter,
    const std::array<std::uint32_t, 2>& key) {
  std::array<std::uint32_t, 4> x = counter;
  std::array<std::uint32_t, 2> k = key;
  for (int round = 0; round < 10; ++round) {
    x = round_once(x, k);
    k[0] += kWeyl0;
    k[1] += kWeyl1;
  }
  return x;
}

Philox::Philox(std::uint32_t seed, std::uint32_t stream_id)
    : key_{seed, stream_id} {}

void Philox::refill() {
  block_ = philox4x32(counter_, key_);
  lane_ = 0;
  // 128-bit counter increment.
  for (auto& c : counter_) {
    if (++c != 0) break;
  }
}

std::uint32_t Philox::next() {
  if (lane_ >= 4) refill();
  return block_[lane_++];
}

void Philox::generate_block(std::uint32_t* out, std::size_t count) {
  // Drain whatever the current block still holds.
  while (lane_ < 4 && count > 0) {
    *out++ = block_[lane_++];
    --count;
  }
  // Bulk path: encrypt whole counters straight into `out` — the block
  // kernel runs 8 counters abreast under AVX2. counter_ already names
  // the NEXT unconsumed block (refill() post-increments), so the run
  // continues the sequence exactly.
  if (count >= 4) {
    const std::size_t nblocks = count / 4;
    simd::philox_block(counter_.data(), key_.data(), nblocks, out);
    counter_add(&counter_, nblocks);
    out += nblocks * 4;
    count -= nblocks * 4;
  }
  // Tail shorter than a block: refill and serve partial lanes.
  if (count > 0) {
    refill();
    std::memcpy(out, block_.data(), count * sizeof(std::uint32_t));
    lane_ = static_cast<unsigned>(count);
  }
}

void Philox::seek(std::uint64_t output_index) {
  seek(output_index, 0);
}

void Philox::seek(std::uint64_t output_index_lo,
                  std::uint64_t output_index_hi) {
  // block = position / 4 across the full 128-bit position.
  const std::uint64_t block_lo =
      (output_index_lo >> 2) | (output_index_hi << 62);
  const std::uint64_t block_hi = output_index_hi >> 2;
  counter_ = {static_cast<std::uint32_t>(block_lo),
              static_cast<std::uint32_t>(block_lo >> 32),
              static_cast<std::uint32_t>(block_hi),
              static_cast<std::uint32_t>(block_hi >> 32)};
  refill();
  lane_ = static_cast<unsigned>(output_index_lo % 4);
}

void Philox::skip(std::uint64_t count) {
  // Consume what the buffered block still holds (cheap, bounded by 4).
  while (lane_ < 4 && count > 0) {
    ++lane_;
    --count;
  }
  if (count == 0) return;
  // Now positioned at the start of block counter_; hop whole blocks by
  // counter arithmetic and land mid-block via refill.
  counter_add(&counter_, count / 4);
  refill();
  lane_ = static_cast<unsigned>(count % 4);
}

CounterSubstreams::CounterSubstreams(std::uint32_t seed, std::uint64_t stride,
                                     std::uint32_t stream_id)
    : seed_(seed), stream_id_(stream_id), stride_(stride) {}

Philox CounterSubstreams::stream(std::uint64_t index) const {
  // 128-bit start position index·stride: two 64-bit products never
  // exceed 2^128, and the counter space holds 2^130 outputs, so every
  // (index, stride) pair maps to a distinct non-overlapping window.
  const std::uint64_t a_lo = index & 0xffffffffull, a_hi = index >> 32;
  const std::uint64_t b_lo = stride_ & 0xffffffffull, b_hi = stride_ >> 32;
  const std::uint64_t mid0 = a_lo * b_hi, mid1 = a_hi * b_lo;
  std::uint64_t lo = a_lo * b_lo;
  std::uint64_t hi = a_hi * b_hi + (mid0 >> 32) + (mid1 >> 32);
  const std::uint64_t mid_sum = (mid0 & 0xffffffffull) + (mid1 & 0xffffffffull) +
                                (lo >> 32);
  lo = (lo & 0xffffffffull) | (mid_sum << 32);
  hi += mid_sum >> 32;
  Philox p(seed_, stream_id_);
  p.seek(lo, hi);
  return p;
}

}  // namespace dwi::rng
