#include "finance/creditrisk_plus.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <random>

#include "common/error.h"
#include "rng/gamma.h"
#include "rng/mersenne_twister.h"

namespace dwi::finance {

GammaSource buffered_gamma_source(std::span<const float> buffer,
                                  std::size_t num_sectors) {
  DWI_REQUIRE(num_sectors >= 1, "need at least one sector");
  return [buffer, num_sectors](std::uint64_t scenario,
                               std::size_t sector) -> double {
    const std::uint64_t idx = scenario * num_sectors + sector;
    DWI_REQUIRE(idx < buffer.size(),
                "gamma buffer exhausted: generate more scenarios");
    return static_cast<double>(buffer[idx]);
  };
}

GammaSource sampler_gamma_source(const Portfolio& portfolio,
                                 std::uint32_t seed) {
  // One independent sampler + twister per sector, shared across calls.
  struct SectorStream {
    rng::GammaSampler sampler;
    rng::MersenneTwister mt;
  };
  auto streams = std::make_shared<std::vector<SectorStream>>();
  streams->reserve(portfolio.num_sectors());
  for (std::size_t k = 0; k < portfolio.num_sectors(); ++k) {
    streams->push_back(SectorStream{
        rng::GammaSampler(
            rng::GammaConstants::from_sector_variance(
                static_cast<float>(portfolio.sectors()[k].variance)),
            rng::NormalTransform::kMarsagliaBray),
        rng::MersenneTwister(rng::mt19937_params(),
                             seed + static_cast<std::uint32_t>(k) * 7919u)});
  }
  return [streams](std::uint64_t, std::size_t sector) -> double {
    auto& s = (*streams)[sector];
    return static_cast<double>(
        s.sampler.sample([&s] { return s.mt.next(); }));
  };
}

LossDistribution::LossDistribution(std::vector<double> losses)
    : losses_(std::move(losses)) {
  DWI_REQUIRE(!losses_.empty(), "empty loss distribution");
  std::sort(losses_.begin(), losses_.end());
}

double LossDistribution::mean() const {
  double sum = 0.0;
  for (double l : losses_) sum += l;
  return sum / static_cast<double>(losses_.size());
}

double LossDistribution::variance() const {
  DWI_REQUIRE(losses_.size() > 1, "variance needs two scenarios");
  const double m = mean();
  double sum = 0.0;
  for (double l : losses_) sum += (l - m) * (l - m);
  return sum / static_cast<double>(losses_.size() - 1);
}

double LossDistribution::value_at_risk(double p) const {
  DWI_REQUIRE(p > 0.0 && p < 1.0, "confidence must be in (0, 1)");
  const auto idx = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(losses_.size())) - 1);
  return losses_[std::min(idx, losses_.size() - 1)];
}

double LossDistribution::expected_shortfall(double p) const {
  const double var = value_at_risk(p);
  double sum = 0.0;
  std::size_t n = 0;
  for (auto it = losses_.rbegin(); it != losses_.rend() && *it >= var; ++it) {
    sum += *it;
    ++n;
  }
  DWI_ASSERT(n > 0);
  return sum / static_cast<double>(n);
}

ScenarioAggregator::ScenarioAggregator(const Portfolio& portfolio,
                                       std::uint64_t poisson_seed)
    : portfolio_(&portfolio),
      engine_(poisson_seed),
      row_(portfolio.num_sectors()) {}

void ScenarioAggregator::consume_row(const double* sector_draws) {
  const Portfolio& p = *portfolio_;
  double loss = 0.0;
  for (const auto& o : p.obligors()) {
    // λ_i = p_i · (w_0 + Σ_k w_ik S_k): the CreditRisk+ conditional
    // Poisson intensity.
    double factor = o.idiosyncratic_weight();
    for (std::size_t k = 0; k < p.num_sectors(); ++k) {
      factor += o.sector_weights[k] * sector_draws[k];
    }
    const double lambda = o.default_probability * factor;
    std::poisson_distribution<unsigned> poisson(lambda);
    loss += static_cast<double>(poisson(engine_)) * o.exposure;
  }
  losses_.push_back(loss);
}

void ScenarioAggregator::consume_row(const float* sector_draws) {
  for (std::size_t k = 0; k < row_.size(); ++k) {
    row_[k] = static_cast<double>(sector_draws[k]);
  }
  consume_row(row_.data());
}

LossDistribution ScenarioAggregator::finish() && {
  return LossDistribution(std::move(losses_));
}

LossDistribution simulate_losses(const Portfolio& portfolio,
                                 const McConfig& config,
                                 const GammaSource& gamma) {
  DWI_REQUIRE(config.num_scenarios >= 2, "need at least two scenarios");
  ScenarioAggregator agg(portfolio, config.seed);
  std::vector<double> sector_draw(portfolio.num_sectors());
  for (std::uint64_t s = 0; s < config.num_scenarios; ++s) {
    for (std::size_t k = 0; k < portfolio.num_sectors(); ++k) {
      sector_draw[k] = gamma(s, k);
    }
    agg.consume_row(sector_draw.data());
  }
  return std::move(agg).finish();
}

}  // namespace dwi::finance
