#include "finance/contributions.h"

#include <algorithm>
#include <random>

#include "common/error.h"

namespace dwi::finance {

std::vector<RiskContribution> ContributionReport::ranked() const {
  auto sorted = contributions;
  std::sort(sorted.begin(), sorted.end(),
            [](const RiskContribution& a, const RiskContribution& b) {
              return a.shortfall_contribution > b.shortfall_contribution;
            });
  return sorted;
}

ContributionReport shortfall_contributions(const Portfolio& portfolio,
                                           const McConfig& config,
                                           const GammaSource& gamma,
                                           double confidence) {
  DWI_REQUIRE(confidence > 0.0 && confidence < 1.0,
              "confidence must be in (0, 1)");
  DWI_REQUIRE(static_cast<double>(config.num_scenarios) *
                      (1.0 - confidence) >=
                  20.0,
              "too few tail scenarios for a stable allocation");

  const std::size_t n_obl = portfolio.num_obligors();
  std::mt19937_64 default_eng(config.seed);

  // Per-scenario per-obligor losses (the allocation needs the joint
  // realization, so this is memory-heavier than plain simulation).
  std::vector<double> totals;
  totals.reserve(config.num_scenarios);
  std::vector<std::vector<double>> per_obligor(
      config.num_scenarios, std::vector<double>(n_obl, 0.0));
  std::vector<double> sector_draw(portfolio.num_sectors());

  for (std::uint64_t s = 0; s < config.num_scenarios; ++s) {
    for (std::size_t k = 0; k < portfolio.num_sectors(); ++k) {
      sector_draw[k] = gamma(s, k);
    }
    double total = 0.0;
    for (std::size_t i = 0; i < n_obl; ++i) {
      const auto& o = portfolio.obligors()[i];
      double factor = o.idiosyncratic_weight();
      for (std::size_t k = 0; k < portfolio.num_sectors(); ++k) {
        factor += o.sector_weights[k] * sector_draw[k];
      }
      std::poisson_distribution<unsigned> poisson(o.default_probability *
                                                  factor);
      const double loss =
          static_cast<double>(poisson(default_eng)) * o.exposure;
      per_obligor[s][i] = loss;
      total += loss;
    }
    totals.push_back(total);
  }

  // Empirical VaR and the tail set.
  std::vector<double> sorted = totals;
  std::sort(sorted.begin(), sorted.end());
  const auto var_idx = static_cast<std::size_t>(
      std::ceil(confidence * static_cast<double>(sorted.size())) - 1);
  const double var = sorted[std::min(var_idx, sorted.size() - 1)];

  ContributionReport report;
  report.value_at_risk = var;
  report.contributions.resize(n_obl);
  for (std::size_t i = 0; i < n_obl; ++i) {
    report.contributions[i].obligor = i;
    report.contributions[i].expected_loss =
        portfolio.obligors()[i].default_probability *
        portfolio.obligors()[i].exposure;
  }

  std::size_t tail_count = 0;
  double tail_total = 0.0;
  for (std::uint64_t s = 0; s < config.num_scenarios; ++s) {
    if (totals[s] < var) continue;
    ++tail_count;
    tail_total += totals[s];
    for (std::size_t i = 0; i < n_obl; ++i) {
      report.contributions[i].shortfall_contribution += per_obligor[s][i];
    }
  }
  DWI_ASSERT(tail_count > 0);
  for (auto& c : report.contributions) {
    c.shortfall_contribution /= static_cast<double>(tail_count);
  }
  report.expected_shortfall = tail_total / static_cast<double>(tail_count);
  return report;
}

}  // namespace dwi::finance
