#include "finance/portfolio.h"

#include <cmath>
#include <random>

#include "common/error.h"

namespace dwi::finance {

double Obligor::idiosyncratic_weight() const {
  double sum = 0.0;
  for (double w : sector_weights) sum += w;
  return 1.0 - sum;
}

Portfolio::Portfolio(std::vector<Sector> sectors,
                     std::vector<Obligor> obligors)
    : sectors_(std::move(sectors)), obligors_(std::move(obligors)) {
  DWI_REQUIRE(!sectors_.empty(), "portfolio needs at least one sector");
  DWI_REQUIRE(!obligors_.empty(), "portfolio needs at least one obligor");
  for (const auto& s : sectors_) {
    DWI_REQUIRE(s.variance > 0.0, "sector variance must be positive");
  }
  for (const auto& o : obligors_) {
    DWI_REQUIRE(o.exposure >= 0.0, "negative exposure");
    DWI_REQUIRE(o.default_probability >= 0.0 && o.default_probability <= 1.0,
                "default probability must be in [0, 1]");
    DWI_REQUIRE(o.sector_weights.size() == sectors_.size(),
                "loading vector must match the sector count");
    double sum = 0.0;
    for (double w : o.sector_weights) {
      DWI_REQUIRE(w >= 0.0, "negative factor loading");
      sum += w;
    }
    DWI_REQUIRE(sum <= 1.0 + 1e-9, "factor loadings must sum to <= 1");
  }
}

double Portfolio::expected_loss() const {
  double el = 0.0;
  for (const auto& o : obligors_) {
    el += o.default_probability * o.exposure;
  }
  return el;
}

double Portfolio::analytic_loss_variance() const {
  // Idiosyncratic Poisson term.
  double var = 0.0;
  for (const auto& o : obligors_) {
    var += o.exposure * o.exposure * o.default_probability;
  }
  // Sector terms: v_k · (Σ_i w_ik p_i e_i)².
  for (std::size_t k = 0; k < sectors_.size(); ++k) {
    double sk = 0.0;
    for (const auto& o : obligors_) {
      sk += o.sector_weights[k] * o.default_probability * o.exposure;
    }
    var += sectors_[k].variance * sk * sk;
  }
  return var;
}

Portfolio Portfolio::synthetic(std::size_t n, std::vector<Sector> sectors,
                               std::uint64_t seed) {
  DWI_REQUIRE(n >= 1, "empty synthetic portfolio");
  std::mt19937_64 eng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);

  std::vector<Obligor> obligors;
  obligors.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Obligor o;
    // Log-uniform exposures over three decades (loan book shape).
    o.exposure = std::pow(10.0, 4.0 + 3.0 * u(eng));
    // Ratings-like PDs: log-uniform between 10 bp and 8 %.
    o.default_probability = std::pow(10.0, -3.0 + 1.9 * u(eng));
    // Random loadings, normalized to a total systematic share of ~70 %.
    o.sector_weights.resize(sectors.size());
    double sum = 0.0;
    for (auto& w : o.sector_weights) {
      w = u(eng);
      sum += w;
    }
    const double systematic = 0.4 + 0.4 * u(eng);
    for (auto& w : o.sector_weights) w *= systematic / sum;
    obligors.push_back(std::move(o));
  }
  return Portfolio(std::move(sectors), std::move(obligors));
}

}  // namespace dwi::finance
