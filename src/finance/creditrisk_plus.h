// CreditRisk+ Monte-Carlo engine: the consumer of the paper's gamma
// random numbers (§II-D4). Each scenario draws one gamma variable per
// sector, conditions every obligor's Poisson default intensity on the
// sector draw, and accumulates the portfolio loss; the loss
// distribution yields Value-at-Risk and expected shortfall.
//
// The gamma variables can come from any source — the library sampler,
// the double-precision reference, or a buffer produced by the FPGA
// pipeline (examples/credit_risk_plus wires the full decoupled
// work-item path in) — so the engine doubles as an end-to-end
// validation consumer for every generator in the repository.
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <span>
#include <vector>

#include "finance/portfolio.h"

namespace dwi::finance {

/// Supplies the gamma draw for (scenario, sector). Must return samples
/// from Gamma(1/v_k, v_k) for the portfolio's sector k.
using GammaSource =
    std::function<double(std::uint64_t scenario, std::size_t sector)>;

/// A GammaSource over a pre-generated buffer laid out scenario-major
/// (scenario · num_sectors + sector) — the layout the FPGA transfer
/// units produce per §IV-B.
GammaSource buffered_gamma_source(std::span<const float> buffer,
                                  std::size_t num_sectors);

/// A GammaSource drawing live from the library's Marsaglia-Tsang
/// sampler (one independent stream per sector).
GammaSource sampler_gamma_source(const Portfolio& portfolio,
                                 std::uint32_t seed);

struct McConfig {
  std::uint64_t num_scenarios = 10'000;
  std::uint64_t seed = 1;  ///< for the Poisson default draws
};

class LossDistribution {
 public:
  explicit LossDistribution(std::vector<double> losses);

  double mean() const;
  double variance() const;
  /// Empirical quantile (VaR at confidence `p`, e.g. 0.999).
  double value_at_risk(double p) const;
  /// Expected shortfall: mean loss beyond the VaR.
  double expected_shortfall(double p) const;
  std::size_t scenarios() const { return losses_.size(); }
  const std::vector<double>& losses() const { return losses_; }

 private:
  std::vector<double> losses_;  ///< sorted ascending
};

/// Run the Monte-Carlo simulation.
LossDistribution simulate_losses(const Portfolio& portfolio,
                                 const McConfig& config,
                                 const GammaSource& gamma);

/// Streaming form of the Monte-Carlo consumer: the conditional-Poisson
/// loss accumulator of the CreditRisk+/Panjer model, fed one scenario
/// row (all sector draws) at a time. simulate_losses is expressed on
/// top of this, and the pipelined engines (finance/pipeline, the
/// resident serving chain) feed it from a pipe instead of a callback —
/// consuming rows in scenario order reproduces simulate_losses bit for
/// bit, because the Poisson engine state advances identically.
class ScenarioAggregator {
 public:
  /// `poisson_seed` is McConfig::seed.
  ScenarioAggregator(const Portfolio& portfolio, std::uint64_t poisson_seed);

  /// Consume one scenario: `sector_draws` holds num_sectors() gamma
  /// draws. Rows must arrive in scenario order.
  void consume_row(const double* sector_draws);
  /// Same, over the float rows the FPGA-shaped stages emit (each draw
  /// widened exactly as buffered_gamma_source widens a buffer entry).
  void consume_row(const float* sector_draws);

  std::uint64_t scenarios() const { return losses_.size(); }

  /// Finish: sort and wrap the losses. The aggregator is spent.
  LossDistribution finish() &&;

 private:
  const Portfolio* portfolio_;
  std::mt19937_64 engine_;
  std::vector<double> losses_;
  std::vector<double> row_;  ///< widening scratch for float rows
};

}  // namespace dwi::finance
