// Analytic CreditRisk+ loss distribution via the Panjer-style
// recursion of the original CSFB framework [21] — the industry method
// the paper's Monte-Carlo gamma simulation approximates at scale.
//
// Model: exposures are discretized into integer multiples ν_j of a
// loss unit L0. Conditional on the sector variables, obligor defaults
// are Poisson; integrating the Gamma(1/v_k, v_k) sectors gives the
// probability generating function
//
//   G(z) = exp(μ0 (Q0(z) − 1)) · Π_k (1 − v_k μ_k (Q_k(z) − 1))^(−1/v_k)
//
// with μ_k = Σ_j w_jk p_j and Q_k(z) = Σ_j (w_jk p_j / μ_k) z^{ν_j}
// (sector 0 is the idiosyncratic remainder). The loss probabilities
// are the power-series coefficients of G, computed exactly (up to
// truncation) with log/exp-of-series recursions — no sampling noise.
//
// This module cross-validates the Monte-Carlo engine (tests compare
// the two distributions) and provides fast tail quantiles for the
// examples.
#pragma once

#include <cstddef>
#include <vector>

#include "finance/portfolio.h"

namespace dwi::finance {

/// Truncated power-series helpers (exposed for testing).
namespace series {
/// c = a · b, truncated to a.size() terms.
std::vector<double> multiply(const std::vector<double>& a,
                             const std::vector<double>& b);
/// log(B) for a series with B[0] > 0.
std::vector<double> log(const std::vector<double>& b);
/// exp(H) for any series.
std::vector<double> exp(const std::vector<double>& h);
}  // namespace series

struct AnalyticLossDistribution {
  double loss_unit = 0.0;
  /// probabilities[n] = P(L = n · loss_unit), n = 0..N-1.
  std::vector<double> probabilities;

  double mean() const;
  double variance() const;
  /// Smallest loss level with CDF >= p.
  double value_at_risk(double p) const;
  double expected_shortfall(double p) const;
  /// Total probability mass captured by the truncation (should be ~1).
  double captured_mass() const;
};

/// Run the CreditRisk+ recursion for `portfolio` with losses
/// discretized to `loss_unit`, truncated to `max_bands` coefficients.
AnalyticLossDistribution creditrisk_plus_analytic(const Portfolio& portfolio,
                                                  double loss_unit,
                                                  std::size_t max_bands);

/// A reasonable default loss unit: expected loss / 64 (fine enough for
/// 99.9 % quantiles at a few thousand bands).
double default_loss_unit(const Portfolio& portfolio);

}  // namespace dwi::finance
