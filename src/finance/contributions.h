// Risk contributions: which obligors drive the tail? Standard Euler
// allocation of expected shortfall — obligor i's contribution is its
// expected loss conditional on the portfolio landing in the tail,
// estimated over the Monte-Carlo scenarios:
//
//   ESC_i(p) = E[ L_i | L >= VaR_p ],   Σ_i ESC_i = ES_p.
//
// This is the quantity a CreditRisk+ user actually acts on (limit
// setting, hedging); it also exercises the scenario-level machinery of
// the Monte-Carlo engine, so it doubles as an integration test surface.
#pragma once

#include <cstdint>
#include <vector>

#include "finance/creditrisk_plus.h"
#include "finance/portfolio.h"

namespace dwi::finance {

struct RiskContribution {
  std::size_t obligor = 0;
  double expected_loss = 0.0;       ///< unconditional E[L_i]
  double shortfall_contribution = 0.0;  ///< E[L_i | tail]
};

struct ContributionReport {
  double value_at_risk = 0.0;
  double expected_shortfall = 0.0;
  std::vector<RiskContribution> contributions;  ///< per obligor

  /// Contributions sorted by shortfall share, largest first.
  std::vector<RiskContribution> ranked() const;
};

/// Simulate and allocate: runs the Monte-Carlo engine while recording
/// per-obligor losses, then conditions on the p-tail.
ContributionReport shortfall_contributions(const Portfolio& portfolio,
                                           const McConfig& config,
                                           const GammaSource& gamma,
                                           double confidence);

}  // namespace dwi::finance
