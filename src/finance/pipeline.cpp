#include "finance/pipeline.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.h"
#include "core/pipeline_kernels.h"
#include "hls/dataflow.h"
#include "hls/pipe.h"
#include "rng/jump.h"
#include "rng/mersenne_twister.h"
#include "rng/philox.h"

namespace dwi::finance {

namespace {

/// Payload of the final pipe: a block of consecutive scenarios, each
/// row holding every sector's draw (scenario-major, the transfer-unit
/// layout of §IV-B).
struct ScenarioRows {
  std::uint64_t first = 0;  ///< index of the first scenario in the block
  std::size_t rows = 0;
  std::vector<float> data;  ///< rows × num_sectors
};

void validate(const Portfolio& portfolio, const PipelineConfig& cfg) {
  DWI_REQUIRE(portfolio.num_sectors() >= 1, "pipeline: need a sector");
  DWI_REQUIRE(cfg.num_scenarios >= 2, "pipeline: need at least two scenarios");
  DWI_REQUIRE(cfg.round >= 1, "pipeline: round size must be at least 1");
  DWI_REQUIRE(cfg.pipe_depth >= 1, "pipeline: pipe depth must be at least 1");
  DWI_REQUIRE(cfg.scenario_block >= 1,
              "pipeline: scenario block must be at least 1");
}

std::vector<rng::GammaConstants> sector_constants(const Portfolio& portfolio) {
  std::vector<rng::GammaConstants> constants;
  constants.reserve(portfolio.num_sectors());
  for (const Sector& s : portfolio.sectors()) {
    constants.push_back(rng::GammaConstants::from_sector_variance(
        static_cast<float>(s.variance)));
  }
  return constants;
}

core::StreamConfig stream_config(const PipelineConfig& cfg) {
  core::StreamConfig scfg;
  scfg.strategy = cfg.strategy;
  scfg.seed = static_cast<std::uint32_t>(cfg.seed);
  scfg.stride = cfg.substream_stride;
  return scfg;
}

}  // namespace

LossDistribution run_staged(const Portfolio& portfolio,
                            const PipelineConfig& cfg, PipelineStats* stats) {
  validate(portfolio, cfg);
  const std::size_t K = portfolio.num_sectors();
  auto constants = sector_constants(portfolio);
  core::UniformKernel uniform(stream_config(cfg), cfg.transform, constants,
                              cfg.round);
  core::GammaRejectKernel reject(std::move(constants));
  const double per_attempt = core::expected_accept_per_attempt(cfg.transform);

  PipelineStats st;
  std::vector<std::vector<float>> acc(K);
  for (auto& a : acc) a.reserve(cfg.num_scenarios);

  bool all_done = false;
  while (!all_done) {
    ++st.epochs;
    // Kernel launch 1 — uniform RNG: size this epoch's rounds per
    // sector from the analytic acceptance estimate and materialize
    // every bundle (the host round-trip the piped mode eliminates).
    std::vector<core::RoundBundle> rounds;
    for (std::size_t k = 0; k < K; ++k) {
      const std::uint64_t have = acc[k].size();
      if (have >= cfg.num_scenarios) continue;
      const double need = static_cast<double>(cfg.num_scenarios - have);
      const auto n_rounds =
          static_cast<std::size_t>(
              need / (per_attempt * static_cast<double>(cfg.round))) +
          1;
      for (std::size_t r = 0; r < n_rounds; ++r) {
        rounds.push_back(uniform.next_round(k));
      }
    }
    st.rounds_produced += rounds.size();

    // Kernel launch 2 — normal transform over the materialized rounds.
    std::vector<core::CandidateBundle> candidates;
    candidates.reserve(rounds.size());
    for (auto& b : rounds) {
      candidates.push_back(core::normal_kernel(cfg.transform, std::move(b)));
    }
    rounds.clear();

    // Kernel launch 3 — gamma rejection; each sector keeps the first
    // num_scenarios accepted variates (surplus discarded, per the tape
    // contract in core/pipeline_kernels.h).
    for (const auto& c : candidates) {
      auto& a = acc[c.sector];
      if (a.size() >= cfg.num_scenarios) {
        ++st.bundles_discarded;
        continue;
      }
      core::AcceptedBlock blk = reject.run(c);
      const std::size_t take =
          std::min<std::size_t>(blk.values.size(),
                                cfg.num_scenarios - a.size());
      a.insert(a.end(), blk.values.begin(),
               blk.values.begin() + static_cast<std::ptrdiff_t>(take));
    }
    all_done = true;
    for (const auto& a : acc) {
      if (a.size() < cfg.num_scenarios) all_done = false;
    }
  }

  // Kernel launch 4 — aggregation over the gathered scenario rows.
  ScenarioAggregator agg(portfolio, cfg.seed);
  std::vector<float> row(K);
  for (std::uint64_t s = 0; s < cfg.num_scenarios; ++s) {
    for (std::size_t k = 0; k < K; ++k) row[k] = acc[k][s];
    agg.consume_row(row.data());
  }

  st.attempts = reject.attempts();
  st.accepted = reject.accepted();
  if (stats != nullptr) *stats = st;
  return std::move(agg).finish();
}

LossDistribution run_piped(const Portfolio& portfolio,
                           const PipelineConfig& cfg, PipelineStats* stats) {
  validate(portfolio, cfg);
  const std::size_t K = portfolio.num_sectors();
  auto constants = sector_constants(portfolio);
  core::UniformKernel uniform(stream_config(cfg), cfg.transform, constants,
                              cfg.round);
  core::GammaRejectKernel reject(std::move(constants));

  hls::Pipe<core::RoundBundle> round_pipe(cfg.pipe_depth, "uniform.normal");
  hls::Pipe<core::CandidateBundle> cand_pipe(cfg.pipe_depth, "normal.gamma");
  hls::Pipe<ScenarioRows> scen_pipe(cfg.pipe_depth, "gamma.aggregate");
  // Backward control channel: one done token per sector, depth K so
  // try_write never fails and the rejection kernel never blocks on it.
  hls::Pipe<std::uint32_t> done_pipe(K, "gamma.uniform.done");

  PipelineStats st;
  ScenarioAggregator agg(portfolio, cfg.seed);

  hls::DataflowRegion region;

  // Stage 1 — uniform RNG kernel: free-runs rounds, round-robin over
  // the sectors not yet reported done. A sector's rounds still leave in
  // order, so downstream sees the fixed tape regardless of how many
  // surplus rounds were in flight when its done token arrived.
  region.add_process("uniform_kernel", [&] {
    std::vector<char> done(K, 0);
    std::size_t remaining = K;
    std::size_t k = 0;
    std::uint64_t produced = 0;
    std::uint32_t token = 0;
    while (remaining > 0) {
      while (done_pipe.try_read(&token)) {
        if (done[token] == 0) {
          done[token] = 1;
          --remaining;
        }
      }
      if (remaining == 0) break;
      while (done[k] != 0) k = (k + 1) % K;
      round_pipe.write(uniform.next_round(k));
      ++produced;
      k = (k + 1) % K;
    }
    round_pipe.close();
    st.rounds_produced = produced;
  });

  // Stage 2 — normal-transform kernel: pure map, one bundle in/out.
  region.add_process("normal_kernel", [&] {
    core::RoundBundle b;
    while (round_pipe.read(&b)) {
      cand_pipe.write(core::normal_kernel(cfg.transform, std::move(b)));
    }
    cand_pipe.close();
  });

  // Stage 3 — gamma-rejection kernel: accumulates per-sector accepted
  // prefixes, reports quota-filled sectors backward, discards surplus
  // bundles, and re-blocks the draws scenario-major for aggregation.
  region.add_process("gamma_reject_kernel", [&] {
    std::vector<std::vector<float>> acc(K);
    for (auto& a : acc) a.reserve(cfg.num_scenarios);
    std::vector<char> done(K, 0);
    std::uint64_t emitted = 0;
    std::uint64_t discarded = 0;

    const auto ready_rows = [&] {
      std::uint64_t m = cfg.num_scenarios;
      for (const auto& a : acc) {
        m = std::min<std::uint64_t>(m, a.size());
      }
      return m;
    };
    // Emit every complete scenario_block (plus the final partial block
    // once every sector is done) as soon as all sectors cross it.
    const auto flush_ready = [&] {
      while (true) {
        const std::uint64_t ready = ready_rows();
        const std::uint64_t avail = ready - emitted;
        const bool final_flush = ready == cfg.num_scenarios;
        if (avail == 0 || (avail < cfg.scenario_block && !final_flush)) break;
        const auto rows = static_cast<std::size_t>(
            std::min<std::uint64_t>(cfg.scenario_block, avail));
        ScenarioRows out;
        out.first = emitted;
        out.rows = rows;
        out.data.resize(rows * K);
        for (std::size_t r = 0; r < rows; ++r) {
          for (std::size_t kk = 0; kk < K; ++kk) {
            out.data[r * K + kk] = acc[kk][emitted + r];
          }
        }
        emitted += rows;
        scen_pipe.write(std::move(out));
      }
    };

    core::CandidateBundle c;
    while (cand_pipe.read(&c)) {
      auto& a = acc[c.sector];
      if (a.size() >= cfg.num_scenarios) {
        ++discarded;  // surplus in flight after the done token
        continue;
      }
      core::AcceptedBlock blk = reject.run(c);
      const std::size_t take =
          std::min<std::size_t>(blk.values.size(),
                                cfg.num_scenarios - a.size());
      a.insert(a.end(), blk.values.begin(),
               blk.values.begin() + static_cast<std::ptrdiff_t>(take));
      if (a.size() >= cfg.num_scenarios && done[c.sector] == 0) {
        done[c.sector] = 1;
        const bool sent =
            done_pipe.try_write(static_cast<std::uint32_t>(c.sector));
        DWI_ASSERT(sent);  // depth K, one token per sector
      }
      flush_ready();
    }
    DWI_ASSERT(emitted == cfg.num_scenarios);
    scen_pipe.close();
    st.bundles_discarded = discarded;
  });

  // Stage 4 — aggregation kernel: the conditional-Poisson consumer,
  // fed scenario rows in order (bit-equal to simulate_losses).
  region.add_process("aggregate_kernel", [&] {
    ScenarioRows rows;
    while (scen_pipe.read(&rows)) {
      for (std::size_t r = 0; r < rows.rows; ++r) {
        agg.consume_row(rows.data.data() + r * K);
      }
    }
  });

  region.run();

  st.attempts = reject.attempts();
  st.accepted = reject.accepted();
  st.uniform_pipe_full = round_pipe.write_stalls();
  st.normal_pipe_full = cand_pipe.write_stalls();
  st.scenario_pipe_full = scen_pipe.write_stalls();
  st.normal_pipe_empty = round_pipe.read_stalls();
  st.gamma_pipe_empty = cand_pipe.read_stalls();
  st.aggregate_pipe_empty = scen_pipe.read_stalls();
  if (stats != nullptr) *stats = st;
  return std::move(agg).finish();
}

LossDistribution run_scalar_reference(const Portfolio& portfolio,
                                      const PipelineConfig& cfg) {
  validate(portfolio, cfg);
  // One scalar sampler per sector, one per-draw uniform at a time
  // through a std::function — the pre-pipeline architecture.
  struct SectorStream {
    rng::GammaSampler sampler;
    std::optional<rng::MersenneTwister> mt;
    std::optional<rng::Philox> px;
  };
  auto streams = std::make_shared<std::vector<SectorStream>>();
  streams->reserve(portfolio.num_sectors());
  const core::StreamConfig scfg = stream_config(cfg);
  for (std::size_t k = 0; k < portfolio.num_sectors(); ++k) {
    SectorStream s{
        rng::GammaSampler(
            rng::GammaConstants::from_sector_variance(
                static_cast<float>(portfolio.sectors()[k].variance)),
            cfg.transform),
        std::nullopt, std::nullopt};
    switch (cfg.strategy) {
      case rng::StreamStrategy::kCounterBased:
        s.px.emplace(rng::CounterSubstreams(scfg.seed, scfg.stride).stream(k));
        break;
      case rng::StreamStrategy::kJumpAhead:
        s.mt.emplace(rng::SubstreamSplitter(scfg.jump_params, scfg.seed,
                                            scfg.stride)
                         .stream(k));
        break;
      case rng::StreamStrategy::kDistinctSeeds:
        s.mt.emplace(rng::mt19937_params(),
                     scfg.seed + static_cast<std::uint32_t>(k) * 7919u);
        break;
    }
    streams->push_back(std::move(s));
  }
  const McConfig mc{cfg.num_scenarios, cfg.seed};
  const GammaSource source = [streams](std::uint64_t,
                                       std::size_t sector) -> double {
    auto& s = (*streams)[sector];
    return static_cast<double>(s.sampler.sample([&s]() -> std::uint32_t {
      return s.px ? s.px->next() : s.mt->next();
    }));
  };
  return simulate_losses(portfolio, mc, source);
}

}  // namespace dwi::finance
