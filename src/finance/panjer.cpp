#include "finance/panjer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace dwi::finance {

namespace series {

std::vector<double> multiply(const std::vector<double>& a,
                             const std::vector<double>& b) {
  DWI_REQUIRE(!a.empty() && !b.empty(), "empty series");
  std::vector<double> c(a.size(), 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0.0) continue;
    const std::size_t jmax = std::min(b.size(), a.size() - i);
    for (std::size_t j = 0; j < jmax; ++j) c[i + j] += a[i] * b[j];
  }
  return c;
}

std::vector<double> log(const std::vector<double>& b) {
  DWI_REQUIRE(!b.empty() && b[0] > 0.0, "log needs positive constant term");
  // L' B = B'  →  n L_n B_0 = n B_n − Σ_{j=1}^{n-1} j L_j B_{n−j}.
  std::vector<double> l(b.size(), 0.0);
  l[0] = std::log(b[0]);
  for (std::size_t n = 1; n < b.size(); ++n) {
    double acc = static_cast<double>(n) * b[n];
    for (std::size_t j = 1; j < n; ++j) {
      if (n - j < b.size()) acc -= static_cast<double>(j) * l[j] * b[n - j];
    }
    l[n] = acc / (static_cast<double>(n) * b[0]);
  }
  return l;
}

std::vector<double> exp(const std::vector<double>& h) {
  DWI_REQUIRE(!h.empty(), "empty series");
  // A' = H' A  →  n A_n = Σ_{j=1}^{n} j H_j A_{n−j}.
  std::vector<double> a(h.size(), 0.0);
  a[0] = std::exp(h[0]);
  for (std::size_t n = 1; n < h.size(); ++n) {
    double acc = 0.0;
    for (std::size_t j = 1; j <= n; ++j) {
      acc += static_cast<double>(j) * h[j] * a[n - j];
    }
    a[n] = acc / static_cast<double>(n);
  }
  return a;
}

}  // namespace series

double AnalyticLossDistribution::mean() const {
  double m = 0.0;
  for (std::size_t n = 0; n < probabilities.size(); ++n) {
    m += static_cast<double>(n) * probabilities[n];
  }
  return m * loss_unit;
}

double AnalyticLossDistribution::variance() const {
  const double mu = mean();
  double m2 = 0.0;
  for (std::size_t n = 0; n < probabilities.size(); ++n) {
    const double x = static_cast<double>(n) * loss_unit;
    m2 += x * x * probabilities[n];
  }
  return m2 - mu * mu;
}

double AnalyticLossDistribution::value_at_risk(double p) const {
  DWI_REQUIRE(p > 0.0 && p < 1.0, "confidence must be in (0, 1)");
  double cdf = 0.0;
  for (std::size_t n = 0; n < probabilities.size(); ++n) {
    cdf += probabilities[n];
    if (cdf >= p) return static_cast<double>(n) * loss_unit;
  }
  return static_cast<double>(probabilities.size() - 1) * loss_unit;
}

double AnalyticLossDistribution::expected_shortfall(double p) const {
  const double var = value_at_risk(p);
  double mass = 0.0;
  double acc = 0.0;
  for (std::size_t n = 0; n < probabilities.size(); ++n) {
    const double x = static_cast<double>(n) * loss_unit;
    if (x >= var) {
      mass += probabilities[n];
      acc += x * probabilities[n];
    }
  }
  DWI_REQUIRE(mass > 0.0, "no mass beyond the VaR (truncation too short)");
  return acc / mass;
}

double AnalyticLossDistribution::captured_mass() const {
  double m = 0.0;
  for (double p : probabilities) m += p;
  return m;
}

AnalyticLossDistribution creditrisk_plus_analytic(const Portfolio& portfolio,
                                                  double loss_unit,
                                                  std::size_t max_bands) {
  DWI_REQUIRE(loss_unit > 0.0, "loss unit must be positive");
  DWI_REQUIRE(max_bands >= 2, "need at least two bands");

  const std::size_t k_sectors = portfolio.num_sectors();

  // Exposure bands ν_j and the sector polynomials w_jk p_j z^{ν_j}.
  // H(z) = log G(z) accumulates each sector's contribution.
  std::vector<double> h(max_bands, 0.0);

  // Idiosyncratic part: μ0 (Q0(z) − 1) added directly to H.
  {
    double mu0 = 0.0;
    std::vector<double> poly(max_bands, 0.0);
    for (const auto& o : portfolio.obligors()) {
      const double w0 = o.idiosyncratic_weight();
      if (w0 <= 0.0 || o.default_probability <= 0.0) continue;
      const auto nu = static_cast<std::size_t>(std::max(
          1.0, std::round(o.exposure / loss_unit)));
      const double intensity = w0 * o.default_probability;
      mu0 += intensity;
      if (nu < max_bands) poly[nu] += intensity;
      // ν beyond the truncation contributes only to lost mass.
    }
    for (std::size_t n = 1; n < max_bands; ++n) h[n] += poly[n];
    h[0] += -mu0;
  }

  // Gamma sectors: −α_k · log(1 + v_k μ_k − v_k μ_k Q_k(z)).
  for (std::size_t k = 0; k < k_sectors; ++k) {
    const double v = portfolio.sectors()[k].variance;
    const double alpha = 1.0 / v;
    double mu_k = 0.0;
    std::vector<double> b(max_bands, 0.0);
    for (const auto& o : portfolio.obligors()) {
      const double w = o.sector_weights[k];
      if (w <= 0.0 || o.default_probability <= 0.0) continue;
      const auto nu = static_cast<std::size_t>(std::max(
          1.0, std::round(o.exposure / loss_unit)));
      const double intensity = w * o.default_probability;
      mu_k += intensity;
      if (nu < max_bands) b[nu] -= v * intensity;  // −v_k μ_k Q_k(z) terms
    }
    if (mu_k <= 0.0) continue;
    b[0] = 1.0 + v * mu_k;
    const auto log_b = series::log(b);
    for (std::size_t n = 0; n < max_bands; ++n) h[n] -= alpha * log_b[n];
  }

  AnalyticLossDistribution dist;
  dist.loss_unit = loss_unit;
  dist.probabilities = series::exp(h);

  // Numerical hygiene: clamp the tiny negative coefficients that long
  // recursions can produce.
  for (double& p : dist.probabilities) {
    if (p < 0.0 && p > -1e-12) p = 0.0;
    DWI_ASSERT(p >= -1e-9);
  }
  return dist;
}

double default_loss_unit(const Portfolio& portfolio) {
  return portfolio.expected_loss() / 64.0;
}

}  // namespace dwi::finance
