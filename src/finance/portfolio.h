// CreditRisk+ portfolio model (§II-D4, [21]): a book of loans whose
// default risk is driven by gamma-distributed sector variables.
//
// Each sector S_k ~ Gamma(1/v_k, v_k) (unit mean, variance v_k); each
// obligor i has exposure e_i, unconditional default probability p_i and
// factor loadings w_ik (plus an idiosyncratic remainder w_i0 so that
// w_i0 + Σ_k w_ik = 1). Conditional on a scenario, obligor i defaults
// with Poisson intensity λ_i = p_i · (w_i0 + Σ_k w_ik S_k) — the
// CreditRisk+ Poisson approximation, the only industry model focused on
// the event of default. The larger a simulated sector variable, the
// worse that sector performs in the scenario (§II-D4).
#pragma once

#include <cstdint>
#include <vector>

namespace dwi::finance {

struct Sector {
  double variance = 1.39;  ///< v_k; the paper's representative value
  const char* name = "";
};

struct Obligor {
  double exposure = 0.0;          ///< loss given default (unit LGD)
  double default_probability = 0.0;
  /// Factor loadings onto the sectors; sum must be <= 1, the remainder
  /// is the idiosyncratic weight w_0.
  std::vector<double> sector_weights;

  double idiosyncratic_weight() const;
};

class Portfolio {
 public:
  Portfolio(std::vector<Sector> sectors, std::vector<Obligor> obligors);

  const std::vector<Sector>& sectors() const { return sectors_; }
  const std::vector<Obligor>& obligors() const { return obligors_; }
  std::size_t num_sectors() const { return sectors_.size(); }
  std::size_t num_obligors() const { return obligors_.size(); }

  /// E[L] = Σ p_i e_i (sector variables have unit mean, so expected
  /// loss is factor-independent).
  double expected_loss() const;

  /// Var[L] = Σ e_i² p_i + Σ_k v_k (Σ_i w_ik p_i e_i)² — Poisson
  /// idiosyncratic variance plus the gamma factor contribution.
  double analytic_loss_variance() const;

  /// Build a reproducible synthetic test portfolio: `n` obligors with
  /// log-uniform exposures, ratings-like default probabilities, and
  /// random loadings onto `sectors`.
  static Portfolio synthetic(std::size_t n, std::vector<Sector> sectors,
                             std::uint64_t seed);

 private:
  std::vector<Sector> sectors_;
  std::vector<Obligor> obligors_;
};

}  // namespace dwi::finance
