// CreditRisk+ as a 4-stage inter-kernel pipeline:
//
//   uniform RNG  →  normal transform  →  gamma rejection  →  aggregation
//  (per-sector      (Marsaglia-Bray /    (Marsaglia-Tsang    (conditional-
//   substreams)      ICDF blocks)         predicate + α<1     Poisson loss
//                                         correction)         accumulator)
//
// Three runners over the same stage kernels (core/pipeline_kernels):
//
//   run_staged: each kernel runs to completion and materializes its
//     whole output before the next one starts — the host-round-trip
//     baseline. Because rejection makes the uniform demand
//     data-dependent, the staged path runs *epochs*: size each kernel
//     launch from the analytic acceptance estimate, then loop back to
//     the host when a sector came up short (each epoch is one more
//     host round-trip, counted in PipelineStats::epochs).
//
//   run_piped: all four kernels resident at once (one thread each, the
//     DATAFLOW execution model of hls/dataflow.h), chained by bounded
//     hls::Pipe channels. The rejection stage reports each finished
//     sector through a backward control pipe; the uniform kernel
//     free-runs rounds for unfinished sectors and the rejection stage
//     discards the few in-flight surplus bundles — the decoupled
//     producer/consumer idiom of the paper, lifted from work-items to
//     whole kernels. Sector batches flow end to end without touching
//     the host.
//
//   run_scalar_reference: the pre-pipe architecture — per-draw scalar
//     samplers behind a GammaSource callback feeding simulate_losses —
//     kept as the end-to-end baseline the benches compare against.
//
// Determinism: run_staged and run_piped are bit-identical to each
// other for every pipe depth, round size, scenario-block size and
// stream strategy (the per-sector uniform tape is fixed by the layout
// contract in core/pipeline_kernels.h; tests/test_pipeline.cpp pins
// it). run_scalar_reference samples the same model through a different
// (per-draw) tape, so it matches statistically, not bit-for-bit.
#pragma once

#include <cstdint>

#include "core/pipeline_kernels.h"
#include "finance/creditrisk_plus.h"
#include "finance/portfolio.h"
#include "rng/normal.h"
#include "rng/stream_strategy.h"

namespace dwi::finance {

struct PipelineConfig {
  std::uint64_t num_scenarios = 10'000;
  /// Seeds both the sector substream master (core::StreamConfig::seed)
  /// and the aggregation stage's Poisson engine.
  std::uint64_t seed = 1;
  rng::StreamStrategy strategy = rng::StreamStrategy::kCounterBased;
  rng::NormalTransform transform = rng::NormalTransform::kMarsagliaBray;

  /// Attempts per uniform round — part of the tape contract: changing
  /// it changes every sector's variate sequence.
  std::size_t round = 1024;
  /// Depth of the three forward inter-kernel pipes (bundles, not
  /// scalars). 1 serializes every handoff; see docs/PERF.md for
  /// tuning guidance.
  std::size_t pipe_depth = 8;
  /// Scenarios per aggregation block flowing through the final pipe.
  std::size_t scenario_block = 256;
  /// Master-sequence outputs reserved per sector substream.
  std::uint64_t substream_stride = 1ull << 26;
};

/// Observability of one run (all runners fill what applies to them).
struct PipelineStats {
  std::uint64_t rounds_produced = 0;    ///< uniform bundles generated
  std::uint64_t bundles_discarded = 0;  ///< surplus after sector done
  std::uint64_t attempts = 0;           ///< rejection-stage attempts
  std::uint64_t accepted = 0;           ///< accepted gamma variates
  std::size_t epochs = 0;               ///< staged host round-trips

  // Piped mode: blocking-wait counts per pipe (hls::Pipe stall
  // counters), the host analogue of fpga::PipelineSim stall cycles.
  std::uint64_t uniform_pipe_full = 0;    ///< uniform blocked, pipe full
  std::uint64_t normal_pipe_full = 0;     ///< normal blocked, pipe full
  std::uint64_t scenario_pipe_full = 0;   ///< rejection blocked, pipe full
  std::uint64_t normal_pipe_empty = 0;    ///< normal starved
  std::uint64_t gamma_pipe_empty = 0;     ///< rejection starved
  std::uint64_t aggregate_pipe_empty = 0; ///< aggregation starved
};

/// Staged baseline: host-sequenced kernel launches with materialized
/// intermediate buffers (epochs on shortfall).
LossDistribution run_staged(const Portfolio& portfolio,
                            const PipelineConfig& cfg,
                            PipelineStats* stats = nullptr);

/// Resident pipeline: four concurrent kernels over hls::Pipe channels.
/// Bit-identical to run_staged.
LossDistribution run_piped(const Portfolio& portfolio,
                           const PipelineConfig& cfg,
                           PipelineStats* stats = nullptr);

/// Pre-change end-to-end path (per-draw samplers + GammaSource
/// callback into simulate_losses); the bench's staged-scalar baseline.
LossDistribution run_scalar_reference(const Portfolio& portfolio,
                                      const PipelineConfig& cfg);

}  // namespace dwi::finance
