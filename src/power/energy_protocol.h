// The full §IV-F measurement protocol, end to end: enqueue the gamma
// kernel repeatedly on one device until the run exceeds the minimum
// duration (the paper uses > 150 s), synthesize the wall-plug trace,
// and derive the system-level dynamic energy per kernel invocation
// from the final 100 s window — the quantity plotted in Fig 9.
#pragma once

#include <memory>
#include <vector>

#include "minicl/devices.h"
#include "minicl/runtime.h"
#include "power/trace.h"

namespace dwi::power {

struct ProtocolConfig {
  double min_total_seconds = 150.0;  ///< enqueue until past this point
  double window_seconds = 100.0;     ///< integration window (last two markers)
  double idle_tail_seconds = 5.0;    ///< trace padding after the last kernel
  SystemPowerConfig system{};
};

struct ProtocolResult {
  PowerTrace trace;
  DynamicEnergyResult energy;
  double kernel_seconds = 0.0;       ///< single-invocation kernel time
  unsigned invocations = 0;          ///< total kernels enqueued
  double device_dynamic_watts = 0.0;
};

/// Run the protocol for `launch` on `device`.
ProtocolResult run_energy_protocol(minicl::Device& device,
                                   const minicl::KernelLaunch& launch,
                                   const ProtocolConfig& cfg = {});

}  // namespace dwi::power
