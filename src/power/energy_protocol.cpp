#include "power/energy_protocol.h"

#include <cmath>

#include "common/error.h"

namespace dwi::power {

ProtocolResult run_energy_protocol(minicl::Device& device,
                                   const minicl::KernelLaunch& launch,
                                   const ProtocolConfig& cfg) {
  minicl::CommandQueue queue(device);

  // First execution gives the kernel time; the host then keeps
  // enqueuing asynchronously (cl_events track completion) until the
  // device-busy timeline passes the minimum duration.
  ProtocolResult result;
  queue.enqueue_kernel(launch);
  result.kernel_seconds = queue.last_profile().kernel_seconds;
  DWI_REQUIRE(result.kernel_seconds > 0.0, "kernel reported zero time");
  result.device_dynamic_watts =
      device.dynamic_power_watts(queue.last_profile().efficiency);
  result.invocations = 1;

  while (queue.now() < cfg.min_total_seconds) {
    queue.enqueue_kernel(launch);
    ++result.invocations;
  }

  // Build the activity timeline from the queue's events. Back-to-back
  // kernels form one continuous busy interval per event; the trace
  // model handles adjacency naturally.
  std::vector<ActivityInterval> activity;
  activity.reserve(queue.events().size());
  for (const auto& e : queue.events()) {
    activity.push_back(ActivityInterval{e->started_at(), e->finished_at(),
                                        result.device_dynamic_watts});
  }

  const double total = queue.finish() + cfg.idle_tail_seconds;
  result.trace = simulate_trace(cfg.system, activity, total);

  // Fig 8's last two markers: the integration window is the final
  // `window_seconds` ending at the last kernel completion.
  const double t_end = queue.finish();
  result.trace.markers_s.push_back(t_end - cfg.window_seconds);
  result.trace.markers_s.push_back(t_end);

  // Integrate over that window.
  PowerTrace window_trace = result.trace;
  // derive_dynamic_energy integrates the *final* window of the trace;
  // truncate the idle tail so the window ends at the last marker.
  const auto tail_samples = static_cast<std::size_t>(
      std::round(cfg.idle_tail_seconds / result.trace.sample_period_s));
  DWI_ASSERT(window_trace.samples_watts.size() > tail_samples);
  window_trace.samples_watts.resize(window_trace.samples_watts.size() -
                                    tail_samples);
  result.energy = derive_dynamic_energy(cfg.system, window_trace, activity,
                                        cfg.window_seconds);
  return result;
}

}  // namespace dwi::power
