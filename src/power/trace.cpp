#include "power/trace.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace dwi::power {

namespace {

/// Instantaneous accelerator dynamic power at time t.
double dynamic_at(const std::vector<ActivityInterval>& activity, double t) {
  for (const auto& a : activity) {
    if (t >= a.start_s && t < a.end_s) return a.dynamic_watts;
  }
  return 0.0;
}

/// Deterministic sub-watt "measurement jitter" (reproducible runs).
double jitter(std::uint64_t sample, double amplitude) {
  std::uint64_t z = sample * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull;
  z ^= z >> 29;
  z *= 0xbf58476d1ce4e5b9ull;
  z ^= z >> 32;
  const double u =
      static_cast<double>(z & 0xffffffu) / static_cast<double>(0xffffffu);
  return (u - 0.5) * 2.0 * amplitude;
}

}  // namespace

PowerTrace simulate_trace(const SystemPowerConfig& cfg,
                          const std::vector<ActivityInterval>& activity,
                          double total_seconds) {
  DWI_REQUIRE(total_seconds > 0.0, "trace must span positive time");
  DWI_REQUIRE(cfg.sample_period_s > 0.0, "sample period must be positive");

  PowerTrace trace;
  trace.sample_period_s = cfg.sample_period_s;
  const auto n_samples = static_cast<std::uint64_t>(
      std::ceil(total_seconds / cfg.sample_period_s));
  trace.samples_watts.reserve(n_samples);

  double first_activity = total_seconds;
  double last_activity = 0.0;
  for (const auto& a : activity) {
    first_activity = std::min(first_activity, a.start_s);
    last_activity = std::max(last_activity, a.end_s);
  }

  // Cooling state integrates between samples with a first-order lag
  // toward its target (fan controller in `optimal` mode).
  double cooling = 0.0;
  for (std::uint64_t i = 0; i < n_samples; ++i) {
    const double t = static_cast<double>(i) * cfg.sample_period_s;
    const double dyn = dynamic_at(activity, t);
    const double cooling_target = cfg.cooling_gain * dyn;
    const double alpha = 1.0 - std::exp(-cfg.sample_period_s / cfg.cooling_tau_s);
    cooling += alpha * (cooling_target - cooling);

    double host = 0.0;
    if (t >= first_activity &&
        t < first_activity + cfg.host_enqueue_seconds) {
      host = cfg.host_enqueue_watts;  // the Fig 8 spike at marker 0
    }

    trace.samples_watts.push_back(cfg.idle_watts + dyn + cooling + host +
                                  jitter(i, cfg.noise_watts));
  }

  trace.markers_s = {first_activity};
  return trace;
}

dwi::Joules integrate_energy(const PowerTrace& trace, double t0, double t1) {
  DWI_REQUIRE(t1 > t0, "empty integration window");
  DWI_REQUIRE(t1 <= trace.duration_s() + 1e-9,
              "window exceeds the trace");
  double joules = 0.0;
  const double dt = trace.sample_period_s;
  for (std::size_t i = 0; i < trace.samples_watts.size(); ++i) {
    const double s0 = static_cast<double>(i) * dt;
    const double s1 = s0 + dt;
    const double lo = std::max(s0, t0);
    const double hi = std::min(s1, t1);
    if (hi > lo) joules += trace.samples_watts[i] * (hi - lo);
  }
  return dwi::Joules{joules};
}

DynamicEnergyResult derive_dynamic_energy(
    const SystemPowerConfig& cfg, const PowerTrace& trace,
    const std::vector<ActivityInterval>& activity, double window_s) {
  const double t1 = trace.duration_s();
  const double t0 = t1 - window_s;
  DWI_REQUIRE(t0 >= 0.0, "window longer than the trace");

  DynamicEnergyResult r;
  r.total = integrate_energy(trace, t0, t1);
  r.dynamic = r.total - dwi::Joules{cfg.idle_watts * window_s};

  // Fractional repetitions inside the window (§IV-F: "the number of
  // repetitions is no longer an integer value").
  double inv = 0.0;
  for (const auto& a : activity) {
    const double lo = std::max(a.start_s, t0);
    const double hi = std::min(a.end_s, t1);
    if (hi > lo && a.end_s > a.start_s) {
      inv += (hi - lo) / (a.end_s - a.start_s);
    }
  }
  r.invocations_in_window = inv;
  DWI_REQUIRE(inv > 0.0, "no kernel activity inside the window");
  r.per_invocation = dwi::Joules{r.dynamic.value / inv};
  return r;
}

}  // namespace dwi::power
