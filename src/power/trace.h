// System-level power-trace model reproducing the paper's measurement
// setup (§IV-F): a Voltcraft VC870 multimeter at the wall plug, one
// sample per second, watching a workstation whose idle floor is
// ~204 W. The host enqueues the kernel repeatedly (asynchronously, so
// the host itself goes quiet after the initial burst), and the cooling
// system in `optimal` mode ramps with the thermal load — both visible
// in Fig 8's trace.
//
// The trace is synthesized from the minicl event timeline: during a
// kernel event the accelerator adds its (efficiency-gated) dynamic
// power; cooling follows with a first-order lag; the enqueue burst
// adds host power for its duration. Markers mirror the paper's plot:
// marker 0 at the first enqueue, and two markers delimiting the final
// 100 s integration window.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace dwi::power {

struct SystemPowerConfig {
  double idle_watts = 204.0;       ///< measured idle floor (Fig 8)
  double sample_period_s = 1.0;    ///< VC870: one sample per second
  double host_enqueue_watts = 22.0;  ///< host burst while enqueuing
  double host_enqueue_seconds = 2.0;
  double cooling_gain = 0.12;      ///< cooling watts per dynamic watt
  double cooling_tau_s = 9.0;      ///< fan ramp time constant
  double noise_watts = 0.8;        ///< multimeter jitter amplitude
};

/// One accelerator-busy interval on the modeled timeline.
struct ActivityInterval {
  double start_s = 0.0;
  double end_s = 0.0;
  double dynamic_watts = 0.0;
};

struct PowerTrace {
  std::vector<double> samples_watts;  ///< one per sample period
  double sample_period_s = 1.0;
  std::vector<double> markers_s;      ///< plot markers (Fig 8)

  double duration_s() const {
    return static_cast<double>(samples_watts.size()) * sample_period_s;
  }
};

/// Synthesize the wall-plug trace for a set of kernel intervals.
/// `total_seconds` extends the trace past the last activity (idle
/// tail, as in Fig 8).
PowerTrace simulate_trace(const SystemPowerConfig& cfg,
                          const std::vector<ActivityInterval>& activity,
                          double total_seconds);

/// Rectangle-integrate the samples over [t0, t1] (the multimeter gives
/// no better than its sampling period).
dwi::Joules integrate_energy(const PowerTrace& trace, double t0, double t1);

/// The paper's §IV-F derivation: integrate the final `window_s`,
/// subtract the idle energy, divide by the (fractional) number of
/// kernel repetitions inside the window.
struct DynamicEnergyResult {
  dwi::Joules total;               ///< window energy
  dwi::Joules dynamic;             ///< after idle subtraction
  double invocations_in_window = 0.0;
  dwi::Joules per_invocation;
};

DynamicEnergyResult derive_dynamic_energy(
    const SystemPowerConfig& cfg, const PowerTrace& trace,
    const std::vector<ActivityInterval>& activity, double window_s);

}  // namespace dwi::power
