#include "minicl/context.h"

#include "common/error.h"
#include "minicl/devices.h"

namespace dwi::minicl {

Buffer::Buffer(std::uint64_t size_bytes, Access access)
    : size_(size_bytes), access_(access) {
  DWI_REQUIRE(size_bytes > 0, "zero-sized buffer");
}

Context::Context(std::vector<std::shared_ptr<Device>> devices)
    : devices_(std::move(devices)) {
  DWI_REQUIRE(!devices_.empty(), "context needs at least one device");
  for (const auto& d : devices_) {
    DWI_REQUIRE(d != nullptr, "null device in context");
  }
}

BufferPtr Context::create_buffer(std::uint64_t size_bytes,
                                 Buffer::Access access) {
  auto buffer = std::make_shared<Buffer>(size_bytes, access);
  buffers_.push_back(buffer);
  return buffer;
}

CommandQueue Context::create_queue(std::size_t device_index,
                                   PcieModel pcie) const {
  DWI_REQUIRE(device_index < devices_.size(), "device index out of range");
  return CommandQueue(*devices_[device_index], pcie);
}

std::uint64_t Context::allocated_bytes() const {
  std::uint64_t total = 0;
  for (const auto& b : buffers_) total += b->size();
  return total;
}

EventPtr enqueue_read_buffer(CommandQueue& queue, const Buffer& buffer,
                             std::uint64_t bytes, BufferCombining combining,
                             unsigned work_items) {
  DWI_REQUIRE(bytes <= buffer.size(), "read exceeds the buffer size");
  DWI_REQUIRE(buffer.access() != Buffer::Access::kWriteOnly,
              "reading a write-only buffer");
  return queue.enqueue_read(bytes, combining, work_items);
}

}  // namespace dwi::minicl
