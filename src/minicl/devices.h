// Device implementations behind the minicl runtime: the three
// fixed-architecture accelerators (backed by the SIMT lockstep model)
// and the FPGA (backed by the cycle-level dataflow simulator). Each
// device also exposes its dynamic-power model for the Fig 8/9 energy
// experiments.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "minicl/runtime.h"
#include "simt/platform.h"

namespace dwi::minicl {

/// Memoization key for kernel launches: repeated enqueues of the same
/// kernel (the Fig 8/9 protocol enqueues hundreds) hit the simulation
/// once. Deterministic engines make this exact, not approximate.
struct LaunchKey {
  unsigned config_id;
  unsigned transform;
  std::uint64_t total_outputs;
  std::uint64_t global_size;
  unsigned local_size;
  float sector_variance;

  static LaunchKey from(const KernelLaunch& l) {
    return LaunchKey{static_cast<unsigned>(l.config.id),
                     static_cast<unsigned>(l.transform), l.total_outputs,
                     l.global_size, l.local_size, l.sector_variance};
  }
  auto tie() const {
    return std::tie(config_id, transform, total_outputs, global_size,
                    local_size, sector_variance);
  }
  bool operator<(const LaunchKey& o) const { return tie() < o.tie(); }
};

class Device {
 public:
  virtual ~Device() = default;

  const std::string& name() const { return name_; }

  /// Execute one kernel launch; called by CommandQueue.
  virtual LaunchProfile execute(const KernelLaunch& launch) = 0;

  /// System-level dynamic power (above the 204 W idle baseline) while
  /// this device runs `launch`-class work with the given efficiency.
  /// Lower SIMD/pipeline activity gates datapath toggling and lowers
  /// draw — the mechanism that lets Fig 9's per-config ratios vary.
  virtual double dynamic_power_watts(double efficiency) const = 0;

 protected:
  explicit Device(std::string name) : name_(std::move(name)) {}

 private:
  std::string name_;
};

/// CPU / GPU / PHI: wraps simt::estimate_runtime.
class SimtDevice final : public Device {
 public:
  explicit SimtDevice(const simt::PlatformModel& model,
                      double base_dynamic_watts);

  LaunchProfile execute(const KernelLaunch& launch) override;
  double dynamic_power_watts(double efficiency) const override;

  const simt::PlatformModel& model() const { return *model_; }

 private:
  const simt::PlatformModel* model_;
  double base_dynamic_watts_;
  std::map<LaunchKey, LaunchProfile> cache_;
};

/// FPGA: wraps core::run_fpga_application. The "bitstream" for a
/// configuration is selected per launch (config → work-item count and
/// burst size via the resource model).
class FpgaDevice final : public Device {
 public:
  explicit FpgaDevice(double base_dynamic_watts,
                      std::uint64_t sim_scale_divisor = 1024);

  LaunchProfile execute(const KernelLaunch& launch) override;
  double dynamic_power_watts(double efficiency) const override;

 private:
  double base_dynamic_watts_;
  std::uint64_t sim_scale_divisor_;
  std::map<LaunchKey, LaunchProfile> cache_;
};

/// Calibrated system-level dynamic power constants (see power module
/// and EXPERIMENTS.md): host + accelerator + cooling above idle.
double cpu_base_dynamic_watts();
double gpu_base_dynamic_watts();
double phi_base_dynamic_watts();
double fpga_base_dynamic_watts();

}  // namespace dwi::minicl
