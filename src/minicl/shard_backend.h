// Shard-owned simulated devices: the device-backend seam between the
// serving cluster (serve/cluster.h) and the repo's simulated
// accelerators.
//
// `default_devices()` hands out process-wide singletons — fine for the
// paper's single-queue experiments, wrong for a sharded server where
// every shard must own its accelerator exclusively (its launch cache
// and modeled timeline are per-shard state). A ShardBackend constructs
// a *fresh* device instance per shard — the fpgasim FPGA or one of the
// SIMT fixed architectures — and keeps the shard's modeled busy-time
// account: every admitted request is mirrored as a KernelLaunch on the
// shard's device, so the cluster can report per-device utilization and
// a modeled aggregate capacity (the same modeled-timeline convention
// the Fig 8/9 experiments use; nothing here runs in host time).
//
// Results never flow through the device model — responses are computed
// on the host from (server_seed, request id) substreams precisely so
// that WHICH device/shard served a request cannot move a bit of the
// response. The backend models when the work would finish on real
// silicon, not what it produces.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "minicl/devices.h"

namespace dwi::minicl {

/// Which simulated accelerator a shard owns.
enum class BackendKind { kFpga, kCpu, kGpu, kPhi };

const char* to_string(BackendKind kind);

class ShardBackend {
 public:
  /// Constructs a fresh device of `kind`; `ordinal` only names the
  /// instance (e.g. "fpgasim:2").
  ShardBackend(BackendKind kind, unsigned ordinal);

  ShardBackend(const ShardBackend&) = delete;
  ShardBackend& operator=(const ShardBackend&) = delete;

  BackendKind kind() const { return kind_; }
  /// "<kind>:<ordinal> (<device name>)".
  const std::string& name() const { return name_; }

  /// Mirror one admitted request onto the modeled timeline: executes
  /// the equivalent KernelLaunch on this shard's device (memoized per
  /// launch shape) and extends the busy account. Thread-safe; called
  /// by the cluster router at admission.
  void account(std::uint64_t total_outputs, float sector_variance);

  /// Total modeled kernel seconds this shard's device has accumulated.
  double modeled_busy_seconds() const;
  /// Number of launches accounted so far.
  std::uint64_t modeled_launches() const;

  /// Modeled kernel seconds of ONE request of this shape — the same
  /// launch account() would mirror, without touching the busy-time
  /// account. The capacity planner (src/tune) divides a workload mix
  /// through this to get a shard's modeled requests/second.
  /// Thread-safe; memoized like account().
  double estimate_seconds(std::uint64_t total_outputs,
                          float sector_variance) const;

 private:
  BackendKind kind_;
  std::string name_;
  std::shared_ptr<Device> device_;
  mutable std::mutex mutex_;
  double busy_seconds_ = 0.0;
  std::uint64_t launches_ = 0;
};

/// Factory used by the serving cluster to bind shard `ordinal` to its
/// own simulated device.
std::unique_ptr<ShardBackend> make_shard_backend(BackendKind kind,
                                                 unsigned ordinal);

}  // namespace dwi::minicl
