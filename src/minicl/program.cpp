#include "minicl/program.h"

#include <sstream>

#include "common/error.h"

namespace dwi::minicl {

Program::Program(std::shared_ptr<Device> device, rng::AppConfig config)
    : device_(std::move(device)), config_(config) {
  DWI_REQUIRE(device_ != nullptr, "program needs a device");
}

BuildResult Program::build(unsigned requested_compute_units) const {
  BuildResult result;
  std::ostringstream log;

  const bool is_fpga = device_->name().find("FPGA") != std::string::npos;
  if (!is_fpga) {
    // Fixed architectures: fast JIT; compute units = hardware
    // partitions (informational only — the estimator owns scheduling).
    result.compute_units =
        requested_compute_units != 0 ? requested_compute_units : 1;
    result.build_seconds = 0.2;  // driver JIT
    log << "clBuildProgram: JIT for " << device_->name() << " ok\n";
    result.log = log.str();
    return result;
  }

  const auto& dev = fpga::adm_pcie_7v3();
  const unsigned max_cu = fpga::max_work_items(dev, config_);
  const unsigned cu = requested_compute_units != 0
                          ? requested_compute_units
                          : max_cu;
  result.utilization = fpga::estimate_utilization(dev, config_, cu);
  result.compute_units = cu;
  // The 2015-era SDAccel flow: ~1.5 h base plus ~0.5 h per compute
  // unit of logic to synthesize/place/route (order-of-magnitude model).
  result.build_seconds = 5'400.0 + 1'800.0 * cu;

  log << "SDAccel build for " << device_->name() << "\n"
      << "  configuration: " << config_.name << " ("
      << (config_.uses_marsaglia_bray ? "Marsaglia-Bray" : "ICDF")
      << ", MT(" << config_.mt.period_exponent() << "))\n"
      << "  compute units: " << cu << (requested_compute_units == 0
                                           ? " (auto, max routable)"
                                           : " (requested)")
      << "\n"
      << "  utilization: slices "
      << result.utilization.slice_util * 100 << "%, DSP "
      << result.utilization.dsp_util * 100 << "%, BRAM "
      << result.utilization.bram_util * 100 << "%\n";
  if (!result.utilization.routable) {
    result.status = BuildStatus::kPlaceAndRouteFailed;
    log << "  ERROR: place and route failed (slice ceiling "
        << dev.route_ceiling_slice_util * 100 << "%)\n";
  } else {
    log << "  timing met at " << dev.clock_hz / 1e6 << " MHz\n";
  }
  result.log = log.str();
  return result;
}

}  // namespace dwi::minicl
