// Context and Buffer objects completing the OpenCL-shaped host API:
// a Context groups devices and owns buffer lifetimes; a Buffer is a
// sized device allocation with access flags. CommandQueue overloads
// validate transfers against buffer bounds, catching the classic
// size-mismatch host bugs the raw byte-count API cannot.
//
// §III-E in these terms: host-level combining allocates N buffers of
// L/N each and enqueues N reads with destination offsets; device-level
// combining allocates one buffer of L that every work-item addresses
// through its wid offset (the paper's choice).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "minicl/runtime.h"

namespace dwi::minicl {

class Buffer {
 public:
  enum class Access { kReadWrite, kReadOnly, kWriteOnly };

  Buffer(std::uint64_t size_bytes, Access access);

  std::uint64_t size() const { return size_; }
  Access access() const { return access_; }

 private:
  std::uint64_t size_;
  Access access_;
};

using BufferPtr = std::shared_ptr<Buffer>;

class Context {
 public:
  explicit Context(std::vector<std::shared_ptr<Device>> devices);

  /// clCreateBuffer analogue.
  BufferPtr create_buffer(std::uint64_t size_bytes,
                          Buffer::Access access = Buffer::Access::kReadWrite);

  /// clCreateCommandQueue analogue (in-order).
  CommandQueue create_queue(std::size_t device_index = 0,
                            PcieModel pcie = {}) const;

  const std::vector<std::shared_ptr<Device>>& devices() const {
    return devices_;
  }
  std::size_t buffer_count() const { return buffers_.size(); }
  /// Total device memory allocated through this context.
  std::uint64_t allocated_bytes() const;

 private:
  std::vector<std::shared_ptr<Device>> devices_;
  std::vector<BufferPtr> buffers_;
};

/// Bounds- and access-checked read of `bytes` from `buffer` (the
/// §III-E device-level single-read). Throws on overrun or on reading
/// a write-only buffer.
EventPtr enqueue_read_buffer(CommandQueue& queue, const Buffer& buffer,
                             std::uint64_t bytes,
                             BufferCombining combining =
                                 BufferCombining::kDeviceLevel,
                             unsigned work_items = 1);

}  // namespace dwi::minicl
