#include "minicl/shard_backend.h"

#include <algorithm>

#include "common/error.h"
#include "simt/platform.h"

namespace dwi::minicl {

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kFpga: return "fpgasim";
    case BackendKind::kCpu: return "simt-cpu";
    case BackendKind::kGpu: return "simt-gpu";
    case BackendKind::kPhi: return "simt-phi";
  }
  return "?";
}

namespace {

std::shared_ptr<Device> make_device(BackendKind kind) {
  // The platform models are static singletons (simt/platform.h), so a
  // SimtDevice holding a reference into them is safe for any lifetime.
  switch (kind) {
    case BackendKind::kCpu:
      return std::make_shared<SimtDevice>(simt::cpu_haswell(),
                                          cpu_base_dynamic_watts());
    case BackendKind::kGpu:
      return std::make_shared<SimtDevice>(simt::gpu_tesla_k80(),
                                          gpu_base_dynamic_watts());
    case BackendKind::kPhi:
      return std::make_shared<SimtDevice>(simt::phi_7120p(),
                                          phi_base_dynamic_watts());
    case BackendKind::kFpga:
      return std::make_shared<FpgaDevice>(fpga_base_dynamic_watts());
  }
  throw Error("shard backend: unknown device kind");
}

}  // namespace

ShardBackend::ShardBackend(BackendKind kind, unsigned ordinal)
    : kind_(kind), device_(make_device(kind)) {
  name_ = std::string(to_string(kind)) + ":" + std::to_string(ordinal) +
          " (" + device_->name() + ")";
}

void ShardBackend::account(std::uint64_t total_outputs,
                           float sector_variance) {
  KernelLaunch launch;
  // The SIMT estimator needs at least one output per work-item, so
  // small requests are modeled at the NDRange floor (the FPGA path has
  // its own scenario-count guard).
  launch.total_outputs = std::max(total_outputs, launch.global_size);
  launch.sector_variance = sector_variance;
  std::lock_guard lock(mutex_);
  // execute() memoizes by launch shape, so repeated request shapes cost
  // a map lookup, not a simulation.
  const LaunchProfile profile = device_->execute(launch);
  busy_seconds_ += profile.kernel_seconds;
  ++launches_;
}

double ShardBackend::estimate_seconds(std::uint64_t total_outputs,
                                      float sector_variance) const {
  KernelLaunch launch;
  // Same NDRange floor as account(): the estimate must price exactly
  // the launch the router would mirror.
  launch.total_outputs = std::max(total_outputs, launch.global_size);
  launch.sector_variance = sector_variance;
  std::lock_guard lock(mutex_);
  return device_->execute(launch).kernel_seconds;
}

double ShardBackend::modeled_busy_seconds() const {
  std::lock_guard lock(mutex_);
  return busy_seconds_;
}

std::uint64_t ShardBackend::modeled_launches() const {
  std::lock_guard lock(mutex_);
  return launches_;
}

std::unique_ptr<ShardBackend> make_shard_backend(BackendKind kind,
                                                 unsigned ordinal) {
  return std::make_unique<ShardBackend>(kind, ordinal);
}

}  // namespace dwi::minicl
