// minicl: an OpenCL-shaped host runtime over the simulated devices.
//
// The paper's host-side mechanics matter for three experiments:
//   * Fig 5: localSize/globalSize sweeps through clEnqueueNDRangeKernel;
//   * §III-E: buffer-combining strategies (N read requests vs one);
//   * Fig 8: asynchronous repeated kernel enqueue with cl_event
//     completion tracking, which shapes the power trace and the
//     energy-integration window.
//
// minicl reproduces those mechanics on a *modeled timeline*: enqueue
// operations are ordered per in-order queue, each operation gets start
// and end timestamps from the device/PCIe models, and events expose
// the same queued/running/complete view profiling gives in OpenCL.
// Nothing here runs in real time — a 150 s Fig 8 protocol simulates in
// microseconds, and the timeline feeds the power-trace module.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rng/configs.h"
#include "rng/normal.h"

namespace dwi::minicl {

class Device;

/// The gamma-generation NDRange/Task launch (the only kernel family in
/// the paper's evaluation; devices interpret the fields they need).
struct KernelLaunch {
  rng::AppConfig config = rng::config(rng::ConfigId::kConfig1);
  /// Transform actually compiled for this device (CUDA- vs FPGA-style
  /// ICDF on fixed architectures, bit-level on FPGA).
  rng::NormalTransform transform = rng::NormalTransform::kMarsagliaBray;
  std::uint64_t total_outputs = 2'621'440ull * 240ull;
  std::uint64_t global_size = 65'536;   ///< ignored by the FPGA Task
  unsigned local_size = 0;              ///< 0 = platform optimum
  float sector_variance = 1.39f;
};

/// Execution report a device returns for one launch.
struct LaunchProfile {
  double kernel_seconds = 0.0;
  double rejection_rate = 0.0;
  double efficiency = 1.0;       ///< SIMD efficiency / pipeline activity
  double bytes_produced = 0.0;
};

/// Timeline event with OpenCL-profiling-style timestamps (seconds on
/// the modeled clock).
class Event {
 public:
  enum class Status { kQueued, kRunning, kComplete };

  double queued_at() const { return queued_; }
  double started_at() const { return start_; }
  double finished_at() const { return end_; }
  Status status_at(double t) const;
  double duration() const { return end_ - start_; }

 private:
  friend class CommandQueue;
  double queued_ = 0.0;
  double start_ = 0.0;
  double end_ = 0.0;
};

using EventPtr = std::shared_ptr<Event>;

/// Host↔device interconnect model (PCIe gen3 x8 as on the testbed).
struct PcieModel {
  double bandwidth_bytes_per_s = 6.0e9;  ///< effective, not line rate
  double request_latency_s = 25e-6;      ///< per read/write request

  double transfer_seconds(std::uint64_t bytes, unsigned requests = 1) const {
    return static_cast<double>(requests) * request_latency_s +
           static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }
};

/// §III-E: how the host gathers the N work-item result slices.
enum class BufferCombining {
  kHostLevel,    ///< N device buffers, N read requests into one host buffer
  kDeviceLevel,  ///< one device buffer, single read request (the paper's choice)
};

/// An in-order command queue on one device, with a modeled timeline.
class CommandQueue {
 public:
  explicit CommandQueue(Device& device, PcieModel pcie = {});

  /// clEnqueueNDRangeKernel / clEnqueueTask analogue.
  EventPtr enqueue_kernel(const KernelLaunch& launch);

  /// clEnqueueReadBuffer analogue; `work_items` and `combining` model
  /// the §III-E strategies (request count).
  EventPtr enqueue_read(std::uint64_t bytes,
                        BufferCombining combining = BufferCombining::kDeviceLevel,
                        unsigned work_items = 1);

  /// Block until everything enqueued so far is complete; returns the
  /// completion time on the modeled clock.
  double finish();

  /// Current modeled time (end of the last enqueued operation).
  double now() const { return device_busy_until_; }

  Device& device() { return *device_; }
  const std::vector<EventPtr>& events() const { return events_; }
  const LaunchProfile& last_profile() const { return last_profile_; }

 private:
  Device* device_;
  PcieModel pcie_;
  double device_busy_until_ = 0.0;
  std::vector<EventPtr> events_;
  LaunchProfile last_profile_;
};

/// Platform discovery: the four host+accelerator combinations of §IV-A.
std::vector<std::shared_ptr<Device>> default_devices();

/// Find a device by name fragment ("CPU", "GPU", "PHI", "FPGA").
std::shared_ptr<Device> find_device(const std::string& name_fragment);

}  // namespace dwi::minicl
