#include "minicl/runtime.h"

#include "common/error.h"
#include "exec/thread_pool.h"
#include "minicl/devices.h"

namespace dwi::minicl {

Event::Status Event::status_at(double t) const {
  if (t < start_) return Status::kQueued;
  if (t < end_) return Status::kRunning;
  return Status::kComplete;
}

CommandQueue::CommandQueue(Device& device, PcieModel pcie)
    : device_(&device), pcie_(pcie) {}

EventPtr CommandQueue::enqueue_kernel(const KernelLaunch& launch) {
  auto event = std::make_shared<Event>();
  event->queued_ = device_busy_until_;
  // In-order queue: the kernel starts when the device frees up.
  event->start_ = device_busy_until_;
  last_profile_ = device_->execute(launch);
  event->end_ = event->start_ + last_profile_.kernel_seconds;
  device_busy_until_ = event->end_;
  events_.push_back(event);
  return event;
}

EventPtr CommandQueue::enqueue_read(std::uint64_t bytes,
                                    BufferCombining combining,
                                    unsigned work_items) {
  DWI_REQUIRE(work_items >= 1, "need at least one work-item slice");
  auto event = std::make_shared<Event>();
  event->queued_ = device_busy_until_;
  event->start_ = device_busy_until_;
  // §III-E: host-level combining issues one read request per work-item
  // buffer; device-level combining reads the single shared buffer.
  const unsigned requests =
      combining == BufferCombining::kHostLevel ? work_items : 1;
  event->end_ = event->start_ + pcie_.transfer_seconds(bytes, requests);
  device_busy_until_ = event->end_;
  events_.push_back(event);
  return event;
}

double CommandQueue::finish() { return device_busy_until_; }

std::vector<std::shared_ptr<Device>> default_devices() {
  // Device::execute routes simulations through exec::parallel_map;
  // warm the pool here so the first enqueue does not pay worker
  // start-up inside a timed launch.
  (void)exec::global_pool();
  static std::vector<std::shared_ptr<Device>> devices = {
      std::make_shared<SimtDevice>(simt::cpu_haswell(),
                                   cpu_base_dynamic_watts()),
      std::make_shared<SimtDevice>(simt::gpu_tesla_k80(),
                                   gpu_base_dynamic_watts()),
      std::make_shared<SimtDevice>(simt::phi_7120p(),
                                   phi_base_dynamic_watts()),
      std::make_shared<FpgaDevice>(fpga_base_dynamic_watts()),
  };
  return devices;
}

std::shared_ptr<Device> find_device(const std::string& name_fragment) {
  for (auto& d : default_devices()) {
    if (d->name().find(name_fragment) != std::string::npos) return d;
  }
  throw Error("no device matching '" + name_fragment + "'");
}

}  // namespace dwi::minicl
