#include "minicl/devices.h"

#include "common/error.h"
#include "core/fpga_app.h"
#include "simt/runtime_estimator.h"

namespace dwi::minicl {

// --- calibrated system-level dynamic power (above the 204 W idle) ---------
// Fitted so bench/fig9_energy reproduces the paper's ratios: FPGA best
// by 9.5x / 7.9x / 4.1x vs CPU / GPU / PHI under Config1, shrinking to
// ~2.2x vs GPU and PHI under Config4 (§IV-F). The efficiency-gated
// draw (dynamic_power_watts) is what makes the ratios config-dependent.
double cpu_base_dynamic_watts() { return 80.0; }
double gpu_base_dynamic_watts() { return 91.0; }
double phi_base_dynamic_watts() { return 110.0; }
double fpga_base_dynamic_watts() { return 30.0; }

namespace {

// Clock/power gating floor: even fully stalled silicon toggles clocks,
// queues and the host-side polling loop.
constexpr double kPowerFloor = 0.55;

double gated_power(double base_watts, double efficiency) {
  if (efficiency < 0.0) efficiency = 0.0;
  if (efficiency > 1.0) efficiency = 1.0;
  return base_watts * (kPowerFloor + (1.0 - kPowerFloor) * efficiency);
}

}  // namespace

SimtDevice::SimtDevice(const simt::PlatformModel& model,
                       double base_dynamic_watts)
    : Device(std::string(simt::to_string(model.id)) + " [" + model.name + "]"),
      model_(&model), base_dynamic_watts_(base_dynamic_watts) {}

LaunchProfile SimtDevice::execute(const KernelLaunch& launch) {
  const LaunchKey key = LaunchKey::from(launch);
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  simt::NdRangeWorkload w;
  w.total_outputs = launch.total_outputs;
  w.global_size = launch.global_size;
  w.local_size = launch.local_size;
  w.sector_variance = launch.sector_variance;
  const auto est =
      simt::estimate_runtime(*model_, launch.config, launch.transform, w);
  LaunchProfile p;
  p.kernel_seconds = est.seconds;
  p.rejection_rate = est.rejection_rate;
  p.efficiency = est.simd_efficiency;
  p.bytes_produced = static_cast<double>(launch.total_outputs) * 4.0;
  cache_.emplace(key, p);
  return p;
}

double SimtDevice::dynamic_power_watts(double efficiency) const {
  return gated_power(base_dynamic_watts_, efficiency);
}

FpgaDevice::FpgaDevice(double base_dynamic_watts,
                       std::uint64_t sim_scale_divisor)
    : Device("FPGA [Alpha Data ADM-PCIE-7V3, Virtex-7 690T]"),
      base_dynamic_watts_(base_dynamic_watts),
      sim_scale_divisor_(sim_scale_divisor) {}

LaunchProfile FpgaDevice::execute(const KernelLaunch& launch) {
  const LaunchKey key = LaunchKey::from(launch);
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  core::FpgaWorkload w;
  // Interpret the NDRange totals as the Task workload: scenarios spread
  // over the standard 240-sector portfolio unless total_outputs is
  // smaller than one sector sweep.
  w.num_sectors = 240;
  if (launch.total_outputs < w.num_sectors * 16ull) {
    w.num_sectors = 1;
  }
  w.num_scenarios = launch.total_outputs / w.num_sectors;
  w.sector_variance = launch.sector_variance;
  w.scale_divisor = sim_scale_divisor_;

  const auto run = core::run_fpga_application(launch.config, w);
  LaunchProfile p;
  p.kernel_seconds = run.seconds_full;
  p.rejection_rate = run.rejection_rate;
  p.efficiency = 1.0 - run.compute_stall_fraction;
  p.bytes_produced = static_cast<double>(w.total_bytes());
  cache_.emplace(key, p);
  return p;
}

double FpgaDevice::dynamic_power_watts(double efficiency) const {
  return gated_power(base_dynamic_watts_, efficiency);
}

}  // namespace dwi::minicl
