// Program objects: the clCreateProgramWithSource / clBuildProgram
// analogue of the mini-runtime, with the build-flow asymmetry that
// shapes FPGA development (§II-A):
//
//   * fixed architectures JIT the kernel in milliseconds;
//   * the FPGA "build" is the SDAccel hardware flow — HLS, logic
//     synthesis, place and route — which takes *hours* and either
//     meets timing or fails. The build result carries the Table II
//     style utilization report and the compute-unit (work-item) count
//     the resource model admits, exactly the information UG1023's
//     build logs give a designer.
//
// The modeled build time matters for experiments like §IV-C's
// "iteratively increased the number of work-items ... as far as the
// place-and-route process allowed": that methodology costs a P&R run
// per step, which this model makes visible.
#pragma once

#include <memory>
#include <string>

#include "fpga/resource_model.h"
#include "minicl/devices.h"
#include "minicl/runtime.h"

namespace dwi::minicl {

enum class BuildStatus { kSuccess, kPlaceAndRouteFailed };

struct BuildResult {
  BuildStatus status = BuildStatus::kSuccess;
  std::string log;
  /// Parallel compute units (decoupled work-items) instantiated; for
  /// fixed platforms this is the device's preferred partition count.
  unsigned compute_units = 0;
  /// Modeled wall-clock build time (hours for the FPGA flow, ~ms JIT
  /// elsewhere) — not simulated time, a planning figure.
  double build_seconds = 0.0;
  /// FPGA only: the utilization report of the built design.
  fpga::UtilizationReport utilization;
};

/// A kernel program bound to one device and one Table I configuration.
class Program {
 public:
  Program(std::shared_ptr<Device> device, rng::AppConfig config);

  /// Build for the device. `requested_compute_units` = 0 lets the flow
  /// pick the maximum routable count (the paper's methodology);
  /// a specific count either routes or fails.
  BuildResult build(unsigned requested_compute_units = 0) const;

  const rng::AppConfig& config() const { return config_; }
  Device& device() const { return *device_; }

 private:
  std::shared_ptr<Device> device_;
  rng::AppConfig config_;
};

}  // namespace dwi::minicl
