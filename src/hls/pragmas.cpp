#include "hls/pragmas.h"

namespace dwi::hls {

unsigned PragmaSet::effective_ii() const {
  if (pipeline.empty()) return 0;
  return pipeline.back().initiation_interval;
}

std::size_t PragmaSet::stream_depth(const std::string& variable) const {
  for (const auto& s : streams) {
    if (s.variable == variable) return s.depth;
  }
  return 2;
}

bool PragmaSet::has_false_dependence(const std::string& variable) const {
  for (const auto& d : dependences) {
    if (d.variable == variable && d.is_false_dependence) return true;
  }
  return false;
}

}  // namespace dwi::hls
