// Software model of #pragma HLS DATAFLOW: every function call inside the
// region becomes a concurrently executing process, communicating only
// through hls::stream channels (single producer-consumer pairs — the
// constraint the paper calls out in §III-A). We realize this by running
// each process on its own std::thread and joining at region exit, which
// is exactly the completion semantics of the RTL dataflow region.
#pragma once

#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.h"

namespace dwi::hls {

/// Collects processes and runs them all concurrently on run().
/// Exceptions thrown by any process are captured and rethrown from
/// run() after every thread has joined (first one wins).
class DataflowRegion {
 public:
  /// Register a process. `name` is used in error reporting only.
  void add_process(std::string name, std::function<void()> fn) {
    processes_.push_back({std::move(name), std::move(fn)});
  }

  /// Execute all processes concurrently; blocks until all complete.
  void run() {
    std::vector<std::thread> threads;
    std::vector<std::exception_ptr> errors(processes_.size());
    threads.reserve(processes_.size());
    for (std::size_t i = 0; i < processes_.size(); ++i) {
      threads.emplace_back([this, i, &errors] {
        try {
          processes_[i].fn();
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    for (auto& t : threads) t.join();
    for (const auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  std::size_t process_count() const { return processes_.size(); }

 private:
  struct Process {
    std::string name;
    std::function<void()> fn;
  };
  std::vector<Process> processes_;
};

/// Convenience: run a parameter pack of callables as one dataflow region.
template <typename... Fns>
void dataflow(Fns&&... fns) {
  DataflowRegion region;
  (region.add_process("process", std::function<void()>(std::forward<Fns>(fns))),
   ...);
  region.run();
}

}  // namespace dwi::hls
