// ap_uint<W>: arbitrary-precision unsigned integer modelled on the
// Vivado HLS type of the same name (ap_int.h). The paper's Transfer
// block (Listing 4) packs sixteen single-precision values into an
// ap_uint<512> word before bursting it to device global memory; this
// implementation provides the subset of the Vivado semantics the
// kernels rely on, in portable C++20:
//
//   * value semantics, width fixed at compile time, modulo-2^W wraparound
//   * construction/assignment from built-in unsigned integers
//   * bitwise ops, shifts, addition/subtraction/multiplication
//   * bit test/set and runtime range read/write in chunks of <= 64 bits
//     (set_range / get_range64, replacing Vivado's operator()(hi, lo))
//
// Storage is little-endian uint64 limbs; bits above W are kept zero as a
// class invariant so comparisons are plain limb comparisons.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "common/error.h"

namespace dwi::hls {

template <unsigned W>
class ap_uint {
  static_assert(W >= 1 && W <= 4096, "ap_uint width out of supported range");

 public:
  static constexpr unsigned width = W;
  static constexpr unsigned num_limbs = (W + 63) / 64;

  constexpr ap_uint() = default;

  constexpr ap_uint(std::uint64_t v) {  // NOLINT(google-explicit-constructor)
    limbs_[0] = v;
    trim();
  }

  /// Widening / narrowing conversion between widths; narrowing truncates
  /// (modulo 2^W), matching Vivado semantics.
  template <unsigned V>
  explicit constexpr ap_uint(const ap_uint<V>& other) {
    const unsigned n = num_limbs < ap_uint<V>::num_limbs
                           ? num_limbs
                           : ap_uint<V>::num_limbs;
    for (unsigned i = 0; i < n; ++i) limbs_[i] = other.limb(i);
    trim();
  }

  constexpr std::uint64_t limb(unsigned i) const {
    return i < num_limbs ? limbs_[i] : 0;
  }

  /// Low 64 bits (truncating), matching Vivado's to_uint64().
  constexpr std::uint64_t to_uint64() const { return limbs_[0]; }
  constexpr std::uint32_t to_uint32() const {
    return static_cast<std::uint32_t>(limbs_[0]);
  }

  constexpr bool is_zero() const {
    for (unsigned i = 0; i < num_limbs; ++i) {
      if (limbs_[i] != 0) return false;
    }
    return true;
  }

  /// Test bit `pos` (0-based from LSB).
  constexpr bool bit(unsigned pos) const {
    DWI_ASSERT(pos < W);
    return (limbs_[pos / 64] >> (pos % 64)) & 1u;
  }

  /// Set bit `pos` to `value`.
  constexpr void set_bit(unsigned pos, bool value) {
    DWI_ASSERT(pos < W);
    const std::uint64_t mask = std::uint64_t{1} << (pos % 64);
    if (value) {
      limbs_[pos / 64] |= mask;
    } else {
      limbs_[pos / 64] &= ~mask;
    }
  }

  /// Read bits [hi:lo] (inclusive, hi-lo <= 63) as a uint64.
  constexpr std::uint64_t get_range64(unsigned hi, unsigned lo) const {
    DWI_ASSERT(hi < W && lo <= hi && hi - lo < 64);
    const unsigned nbits = hi - lo + 1;
    const unsigned limb_i = lo / 64;
    const unsigned off = lo % 64;
    std::uint64_t v = limbs_[limb_i] >> off;
    if (off + nbits > 64 && limb_i + 1 < num_limbs) {
      v |= limbs_[limb_i + 1] << (64 - off);
    }
    if (nbits < 64) v &= (std::uint64_t{1} << nbits) - 1;
    return v;
  }

  /// Write bits [hi:lo] (inclusive, hi-lo <= 63) from a uint64; bits of
  /// `value` above the range width are ignored.
  constexpr void set_range(unsigned hi, unsigned lo, std::uint64_t value) {
    DWI_ASSERT(hi < W && lo <= hi && hi - lo < 64);
    const unsigned nbits = hi - lo + 1;
    const std::uint64_t mask =
        nbits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << nbits) - 1;
    value &= mask;
    const unsigned limb_i = lo / 64;
    const unsigned off = lo % 64;
    limbs_[limb_i] = (limbs_[limb_i] & ~(mask << off)) | (value << off);
    if (off + nbits > 64 && limb_i + 1 < num_limbs) {
      const unsigned spill = off + nbits - 64;
      const std::uint64_t spill_mask = (std::uint64_t{1} << spill) - 1;
      limbs_[limb_i + 1] = (limbs_[limb_i + 1] & ~spill_mask) |
                           ((value >> (64 - off)) & spill_mask);
    }
    trim();
  }

  // --- bitwise -----------------------------------------------------------
  constexpr ap_uint operator~() const {
    ap_uint r;
    for (unsigned i = 0; i < num_limbs; ++i) r.limbs_[i] = ~limbs_[i];
    r.trim();
    return r;
  }
  constexpr ap_uint operator&(const ap_uint& o) const {
    ap_uint r;
    for (unsigned i = 0; i < num_limbs; ++i) r.limbs_[i] = limbs_[i] & o.limbs_[i];
    return r;
  }
  constexpr ap_uint operator|(const ap_uint& o) const {
    ap_uint r;
    for (unsigned i = 0; i < num_limbs; ++i) r.limbs_[i] = limbs_[i] | o.limbs_[i];
    return r;
  }
  constexpr ap_uint operator^(const ap_uint& o) const {
    ap_uint r;
    for (unsigned i = 0; i < num_limbs; ++i) r.limbs_[i] = limbs_[i] ^ o.limbs_[i];
    return r;
  }
  constexpr ap_uint& operator&=(const ap_uint& o) { return *this = *this & o; }
  constexpr ap_uint& operator|=(const ap_uint& o) { return *this = *this | o; }
  constexpr ap_uint& operator^=(const ap_uint& o) { return *this = *this ^ o; }

  // --- shifts ------------------------------------------------------------
  constexpr ap_uint operator<<(unsigned s) const {
    ap_uint r;
    if (s >= W) return r;
    const unsigned limb_shift = s / 64;
    const unsigned bit_shift = s % 64;
    for (unsigned i = num_limbs; i-- > 0;) {
      std::uint64_t v = 0;
      if (i >= limb_shift) {
        v = limbs_[i - limb_shift] << bit_shift;
        if (bit_shift != 0 && i > limb_shift) {
          v |= limbs_[i - limb_shift - 1] >> (64 - bit_shift);
        }
      }
      r.limbs_[i] = v;
    }
    r.trim();
    return r;
  }
  constexpr ap_uint operator>>(unsigned s) const {
    ap_uint r;
    if (s >= W) return r;
    const unsigned limb_shift = s / 64;
    const unsigned bit_shift = s % 64;
    for (unsigned i = 0; i < num_limbs; ++i) {
      std::uint64_t v = 0;
      if (i + limb_shift < num_limbs) {
        v = limbs_[i + limb_shift] >> bit_shift;
        if (bit_shift != 0 && i + limb_shift + 1 < num_limbs) {
          v |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
        }
      }
      r.limbs_[i] = v;
    }
    return r;
  }
  constexpr ap_uint& operator<<=(unsigned s) { return *this = *this << s; }
  constexpr ap_uint& operator>>=(unsigned s) { return *this = *this >> s; }

  // --- arithmetic (modulo 2^W) --------------------------------------------
  constexpr ap_uint operator+(const ap_uint& o) const {
    ap_uint r;
    std::uint64_t carry = 0;
    for (unsigned i = 0; i < num_limbs; ++i) {
      const std::uint64_t a = limbs_[i];
      const std::uint64_t s1 = a + o.limbs_[i];
      const std::uint64_t c1 = s1 < a ? 1u : 0u;
      const std::uint64_t s2 = s1 + carry;
      const std::uint64_t c2 = s2 < s1 ? 1u : 0u;
      r.limbs_[i] = s2;
      carry = c1 + c2;
    }
    r.trim();
    return r;
  }
  constexpr ap_uint operator-(const ap_uint& o) const {
    ap_uint r;
    std::uint64_t borrow = 0;
    for (unsigned i = 0; i < num_limbs; ++i) {
      const std::uint64_t a = limbs_[i];
      const std::uint64_t b = o.limbs_[i];
      const std::uint64_t d1 = a - b;
      const std::uint64_t b1 = a < b ? 1u : 0u;
      const std::uint64_t d2 = d1 - borrow;
      const std::uint64_t b2 = d1 < borrow ? 1u : 0u;
      r.limbs_[i] = d2;
      borrow = b1 + b2;
    }
    r.trim();
    return r;
  }
  constexpr ap_uint operator*(const ap_uint& o) const {
    ap_uint r;
    for (unsigned i = 0; i < num_limbs; ++i) {
      if (limbs_[i] == 0) continue;
      std::uint64_t carry = 0;
      __extension__ using uint128 = unsigned __int128;
      for (unsigned j = 0; i + j < num_limbs; ++j) {
        const uint128 prod =
            static_cast<uint128>(limbs_[i]) * o.limbs_[j] +
            r.limbs_[i + j] + carry;
        r.limbs_[i + j] = static_cast<std::uint64_t>(prod);
        carry = static_cast<std::uint64_t>(prod >> 64);
      }
    }
    r.trim();
    return r;
  }
  constexpr ap_uint& operator+=(const ap_uint& o) { return *this = *this + o; }
  constexpr ap_uint& operator-=(const ap_uint& o) { return *this = *this - o; }
  constexpr ap_uint& operator++() { return *this += ap_uint(1); }

  /// Quotient and remainder by bit-serial long division (how an HLS
  /// integer divider core computes it). Divisor must be nonzero.
  static constexpr void divmod(const ap_uint& num, const ap_uint& den,
                               ap_uint* quotient, ap_uint* remainder) {
    DWI_ASSERT(!den.is_zero());
    ap_uint q;
    ap_uint r;
    for (unsigned i = W; i-- > 0;) {
      r = r << 1;
      r.set_bit(0, num.bit(i));
      if (r >= den) {
        r -= den;
        q.set_bit(i, true);
      }
    }
    *quotient = q;
    *remainder = r;
  }
  constexpr ap_uint operator/(const ap_uint& o) const {
    ap_uint q;
    ap_uint r;
    divmod(*this, o, &q, &r);
    return q;
  }
  constexpr ap_uint operator%(const ap_uint& o) const {
    ap_uint q;
    ap_uint r;
    divmod(*this, o, &q, &r);
    return r;
  }

  // --- comparison ----------------------------------------------------------
  constexpr bool operator==(const ap_uint& o) const {
    for (unsigned i = 0; i < num_limbs; ++i) {
      if (limbs_[i] != o.limbs_[i]) return false;
    }
    return true;
  }
  constexpr std::strong_ordering operator<=>(const ap_uint& o) const {
    for (unsigned i = num_limbs; i-- > 0;) {
      if (limbs_[i] != o.limbs_[i]) return limbs_[i] <=> o.limbs_[i];
    }
    return std::strong_ordering::equal;
  }

  /// Hex string (most significant nibble first), for diagnostics.
  std::string to_hex_string() const {
    static constexpr char digits[] = "0123456789abcdef";
    const unsigned nibbles = (W + 3) / 4;
    std::string s(nibbles, '0');
    for (unsigned n = 0; n < nibbles; ++n) {
      const unsigned pos = n * 4;
      const unsigned hi = pos + 3 < W ? pos + 3 : W - 1;
      const auto v = get_range64(hi, pos);
      s[nibbles - 1 - n] = digits[v & 0xF];
    }
    return s;
  }

 private:
  constexpr void trim() {
    constexpr unsigned top_bits = W % 64;
    if constexpr (top_bits != 0) {
      limbs_[num_limbs - 1] &= (std::uint64_t{1} << top_bits) - 1;
    }
  }

  std::array<std::uint64_t, num_limbs> limbs_{};
};

}  // namespace dwi::hls
