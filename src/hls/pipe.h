// hls::Pipe<T>: a first-class *inter-kernel* channel, distinct from
// hls::stream (stream.h). A stream connects two processes inside ONE
// dataflow region and has no termination concept — both ends must agree
// on counts out of band. A Pipe connects two *kernels* that the
// host/scheduler keeps resident at the same time (the OpenCL 2.0 pipe /
// Intel channel model the MKPipe and "OpenCL kernels through pipes"
// papers build on), so it adds exactly what kernel-to-kernel streaming
// needs and a stream lacks:
//
//   * close()/drained() end-of-stream semantics: the producer closes
//     the pipe when its quota is flushed; a blocking read() returns
//     false once the pipe is closed AND empty, so consumers terminate
//     without knowing producer counts (the data-dependent-exit problem
//     of the paper, moved across kernel boundaries);
//   * non-blocking try_read()/try_write() (OpenCL's read_pipe /
//     write_pipe reserve-free forms) for control channels that must
//     never deadlock a kernel (e.g. backward demand/done tokens);
//   * stall accounting: write_stalls()/read_stalls() count the blocking
//     waits on a full/empty pipe — the host-side analogue of the
//     fpga::PipelineSim full/empty stall cycles, used to tune depths
//     (docs/PERF.md).
//
// Depth bounds occupancy like the RTL FIFO it models: writers block on
// full (backpressure propagates upstream through the chain), readers
// block on empty. Writes after close() are a contract violation.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <utility>

#include "common/error.h"

namespace dwi::hls {

template <typename T>
class Pipe {
 public:
  explicit Pipe(std::size_t depth, std::string name = {})
      : depth_(depth), name_(std::move(name)) {
    DWI_REQUIRE(depth >= 1, "pipe depth must be at least 1");
  }

  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;

  /// Blocking write: waits while the pipe is full. Writing to a closed
  /// pipe is a contract violation.
  void write(T value) {
    std::unique_lock lock(mutex_);
    DWI_REQUIRE(!closed_, "pipe: write after close");
    if (queue_.size() >= depth_) {
      ++write_stalls_;
      not_full_.wait(lock, [&] { return queue_.size() < depth_; });
    }
    queue_.push_back(std::move(value));
    peak_depth_ = std::max(peak_depth_, queue_.size());
    ++total_writes_;
    lock.unlock();
    not_empty_.notify_one();
  }

  /// Blocking read: waits while the pipe is empty and not closed.
  /// Returns true with *out set, or false when the pipe is closed and
  /// fully drained (end of stream).
  bool read(T* out) {
    std::unique_lock lock(mutex_);
    if (queue_.empty() && !closed_) {
      ++read_stalls_;
      not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
    }
    if (queue_.empty()) return false;  // closed and drained
    *out = std::move(queue_.front());
    queue_.pop_front();
    ++total_reads_;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking write; false when full. Same close contract as
  /// write().
  bool try_write(const T& value) {
    {
      std::lock_guard lock(mutex_);
      DWI_REQUIRE(!closed_, "pipe: write after close");
      if (queue_.size() >= depth_) return false;
      queue_.push_back(value);
      peak_depth_ = std::max(peak_depth_, queue_.size());
      ++total_writes_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking read; false when currently empty (whether or not the
  /// pipe is closed — poll drained() to distinguish end of stream).
  bool try_read(T* out) {
    {
      std::lock_guard lock(mutex_);
      if (queue_.empty()) return false;
      *out = std::move(queue_.front());
      queue_.pop_front();
      ++total_reads_;
    }
    not_full_.notify_one();
    return true;
  }

  /// Producer side: no more writes will arrive. Readers blocked on an
  /// empty pipe wake up and observe end of stream. Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }
  /// End of stream: closed and nothing left to read.
  bool drained() const {
    std::lock_guard lock(mutex_);
    return closed_ && queue_.empty();
  }

  bool empty() const {
    std::lock_guard lock(mutex_);
    return queue_.empty();
  }
  bool full() const {
    std::lock_guard lock(mutex_);
    return queue_.size() >= depth_;
  }
  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }
  std::size_t depth() const { return depth_; }
  const std::string& name() const { return name_; }

  // --- occupancy / stall statistics (depth tuning, docs/PERF.md) ----------
  std::size_t peak_depth() const {
    std::lock_guard lock(mutex_);
    return peak_depth_;
  }
  std::uint64_t total_writes() const {
    std::lock_guard lock(mutex_);
    return total_writes_;
  }
  std::uint64_t total_reads() const {
    std::lock_guard lock(mutex_);
    return total_reads_;
  }
  /// Number of write() calls that had to block on a full pipe.
  std::uint64_t write_stalls() const {
    std::lock_guard lock(mutex_);
    return write_stalls_;
  }
  /// Number of read() calls that had to block on an empty pipe.
  std::uint64_t read_stalls() const {
    std::lock_guard lock(mutex_);
    return read_stalls_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  std::size_t depth_;
  bool closed_ = false;
  std::size_t peak_depth_ = 0;
  std::uint64_t total_writes_ = 0;
  std::uint64_t total_reads_ = 0;
  std::uint64_t write_stalls_ = 0;
  std::uint64_t read_stalls_ = 0;
  std::string name_;
};

}  // namespace dwi::hls
