// hls::stream<T>: blocking bounded FIFO modelled on the Vivado HLS
// stream (hls_stream.h). In the paper it is the only channel between a
// work-item's GammaRNG producer and its Transfer consumer (Listing 1);
// the DATAFLOW pragma turns those functions into concurrently running
// processes. We reproduce that execution model with one std::thread per
// process (see dataflow.h), so the stream is a thread-safe queue with
// blocking read/write — the software analogue of the RTL FIFO
// handshake.
//
// Default capacity is 2, matching the Vivado default FIFO depth; the
// paper sizes transfer streams deeper via #pragma HLS STREAM, modelled
// here by the constructor argument.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <utility>

#include "common/error.h"

namespace dwi::hls {

template <typename T>
class stream {
 public:
  explicit stream(std::size_t depth = 2, std::string name = {})
      : depth_(depth), name_(std::move(name)) {
    DWI_REQUIRE(depth >= 1, "stream depth must be at least 1");
  }

  stream(const stream&) = delete;
  stream& operator=(const stream&) = delete;

  /// Blocking write: waits while the FIFO is full.
  void write(const T& value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return queue_.size() < depth_; });
    queue_.push_back(value);
    peak_depth_ = std::max(peak_depth_, queue_.size());
    ++total_writes_;
    lock.unlock();
    not_empty_.notify_one();
  }

  /// Blocking read: waits while the FIFO is empty.
  T read() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !queue_.empty(); });
    T value = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking write; returns false when full (Vivado write_nb).
  bool write_nb(const T& value) {
    {
      std::lock_guard lock(mutex_);
      if (queue_.size() >= depth_) return false;
      queue_.push_back(value);
      peak_depth_ = std::max(peak_depth_, queue_.size());
      ++total_writes_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking read; returns false when empty (Vivado read_nb).
  bool read_nb(T& value) {
    {
      std::lock_guard lock(mutex_);
      if (queue_.empty()) return false;
      value = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  /// OpenCL-pipe-style spellings of the non-blocking pair, so code
  /// written against hls::Pipe (pipe.h) can talk to a plain stream
  /// inside one dataflow region without renaming call sites.
  bool try_write(const T& value) { return write_nb(value); }
  bool try_read(T& value) { return read_nb(value); }

  bool empty() const {
    std::lock_guard lock(mutex_);
    return queue_.empty();
  }
  bool full() const {
    std::lock_guard lock(mutex_);
    return queue_.size() >= depth_;
  }
  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }
  std::size_t depth() const { return depth_; }
  const std::string& name() const { return name_; }

  /// Peak occupancy observed — used by tests to confirm that the
  /// producer/consumer really ran decoupled (bounded, not batched).
  std::size_t peak_depth() const {
    std::lock_guard lock(mutex_);
    return peak_depth_;
  }
  std::size_t total_writes() const {
    std::lock_guard lock(mutex_);
    return total_writes_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  std::size_t depth_;
  std::size_t peak_depth_ = 0;
  std::size_t total_writes_ = 0;
  std::string name_;
};

}  // namespace dwi::hls
