// ap_int<W>: fixed-width signed integer with two's-complement wraparound,
// modelled on the Vivado HLS type. Widths up to 64 bits are supported,
// which covers every signed quantity in the reproduced kernels; wider
// unsigned data uses ap_uint<W>.
#pragma once

#include <compare>
#include <cstdint>

#include "common/error.h"

namespace dwi::hls {

template <unsigned W>
class ap_int {
  static_assert(W >= 1 && W <= 64, "ap_int supports widths 1..64");

 public:
  static constexpr unsigned width = W;

  constexpr ap_int() = default;
  constexpr ap_int(std::int64_t v) : raw_(wrap(v)) {}  // NOLINT

  constexpr std::int64_t value() const { return raw_; }

  constexpr ap_int operator+(ap_int o) const { return ap_int(raw_ + o.raw_); }
  constexpr ap_int operator-(ap_int o) const { return ap_int(raw_ - o.raw_); }
  constexpr ap_int operator*(ap_int o) const { return ap_int(raw_ * o.raw_); }
  constexpr ap_int operator-() const { return ap_int(-raw_); }
  constexpr ap_int operator&(ap_int o) const { return ap_int(raw_ & o.raw_); }
  constexpr ap_int operator|(ap_int o) const { return ap_int(raw_ | o.raw_); }
  constexpr ap_int operator^(ap_int o) const { return ap_int(raw_ ^ o.raw_); }
  constexpr ap_int operator<<(unsigned s) const {
    return ap_int(static_cast<std::int64_t>(
        static_cast<std::uint64_t>(raw_) << (s >= W ? W : s)));
  }
  /// Arithmetic right shift.
  constexpr ap_int operator>>(unsigned s) const {
    if (s >= W) return ap_int(raw_ < 0 ? -1 : 0);
    return ap_int(raw_ >> s);
  }
  constexpr ap_int& operator+=(ap_int o) { return *this = *this + o; }
  constexpr ap_int& operator-=(ap_int o) { return *this = *this - o; }

  constexpr auto operator<=>(const ap_int&) const = default;

 private:
  // Wrap to W bits, sign-extending bit W-1.
  static constexpr std::int64_t wrap(std::int64_t v) {
    if constexpr (W == 64) return v;
    const std::uint64_t mask = (std::uint64_t{1} << W) - 1;
    std::uint64_t u = static_cast<std::uint64_t>(v) & mask;
    const std::uint64_t sign = std::uint64_t{1} << (W - 1);
    if (u & sign) u |= ~mask;
    return static_cast<std::int64_t>(u);
  }

  std::int64_t raw_ = 0;
};

}  // namespace dwi::hls
