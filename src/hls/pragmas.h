// Descriptors for the HLS pragmas the paper's kernels rely on.
//
// In Vivado HLS, pragmas are compile-time directives; in this
// reproduction they become explicit metadata objects consumed by the
// FPGA timing simulator (initiation interval, FIFO depth, array
// partitioning, dependence hints) and by the resource estimator. A
// kernel description therefore carries the same information a pragma-
// annotated .c kernel would, but in a form a plain C++ toolchain can
// check and a simulator can honor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dwi::hls {

/// #pragma HLS PIPELINE II=<n>
/// Initiation interval the scheduler must sustain. The paper's central
/// achievement for the main loop is II = 1 despite the loop-carried
/// counter dependency (Listing 2).
struct PipelinePragma {
  unsigned initiation_interval = 1;
};

/// #pragma HLS STREAM variable=<v> depth=<n>
struct StreamPragma {
  std::string variable;
  std::size_t depth = 2;
};

/// #pragma HLS ARRAY_PARTITION variable=<v> complete
/// Complete partitioning turns an array into registers — required for
/// the prevCounter shift register in Listing 2 so every element is
/// readable in the same cycle.
struct ArrayPartitionPragma {
  std::string variable;
  bool complete = true;
  unsigned factor = 0;  ///< cyclic/block factor when not complete
};

/// #pragma HLS DEPENDENCE variable=<v> inter false
/// Asserts that successive loop iterations never access the same element
/// (Listing 4 uses it on the transfer buffer). The simulator honours it
/// by not inserting stalls for that variable; tests check the assertion
/// actually holds for the access patterns we generate.
struct DependencePragma {
  std::string variable;
  bool inter_iteration = true;
  bool is_false_dependence = true;
};

/// #pragma HLS LOOP_FLATTEN off (Listing 4 disables flattening so the
/// burst memcpy stays at the REPLOOP boundary).
struct LoopFlattenPragma {
  bool enabled = false;
};

/// #pragma HLS INLINE — function is absorbed into the caller; affects
/// the resource model (no extra control FSM) but not timing.
struct InlinePragma {
  bool enabled = true;
};

/// The pragma set attached to one loop or function in a kernel model.
struct PragmaSet {
  std::vector<PipelinePragma> pipeline;
  std::vector<StreamPragma> streams;
  std::vector<ArrayPartitionPragma> partitions;
  std::vector<DependencePragma> dependences;
  std::vector<LoopFlattenPragma> flatten;

  /// Effective initiation interval: the innermost PIPELINE pragma, or 0
  /// (not pipelined) when absent.
  unsigned effective_ii() const;

  /// FIFO depth for a named stream variable (default 2 when absent).
  std::size_t stream_depth(const std::string& variable) const;

  /// True when a false-dependence assertion exists for `variable`.
  bool has_false_dependence(const std::string& variable) const;
};

}  // namespace dwi::hls
