// ap_fixed<W, I>: signed fixed-point number with W total bits, I integer
// bits (including sign) and W-I fractional bits, modelled on the Vivado
// HLS type (ap_fixed.h). The bit-level "FPGA-style" ICDF transform
// (de Schryver et al. [19]) evaluates its segment polynomials in this
// arithmetic, which is what gives the FPGA implementation its resource
// advantage over floating point.
//
// Semantics implemented (the Vivado defaults): truncation toward
// negative infinity on quantization (AP_TRN) and wraparound on overflow
// (AP_WRAP). Multiplication computes the full 2W-bit product internally
// (via __int128) and truncates back to the W-bit format, which is how a
// DSP-mapped fixed-point multiply behaves after the output cast.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>

#include "common/error.h"

namespace dwi::hls {

template <unsigned W, unsigned I>
class ap_fixed {
  static_assert(W >= 2 && W <= 64, "ap_fixed supports widths 2..64");
  static_assert(I >= 1 && I <= W, "integer bits must be in [1, W]");

 public:
  static constexpr unsigned width = W;
  static constexpr unsigned integer_bits = I;
  static constexpr unsigned frac_bits = W - I;

  constexpr ap_fixed() = default;

  /// Quantize a double (truncation toward -inf, AP_TRN; wrap, AP_WRAP).
  constexpr explicit ap_fixed(double v)
      : raw_(wrap(static_cast<std::int64_t>(
            std::floor(v * std::exp2(static_cast<double>(frac_bits)))))) {}

  /// Build from a raw fixed-point bit pattern.
  static constexpr ap_fixed from_raw(std::int64_t raw) {
    ap_fixed f;
    f.raw_ = wrap(raw);
    return f;
  }

  constexpr std::int64_t raw() const { return raw_; }

  constexpr double to_double() const {
    return static_cast<double>(raw_) *
           std::exp2(-static_cast<double>(frac_bits));
  }
  constexpr float to_float() const { return static_cast<float>(to_double()); }

  constexpr ap_fixed operator+(ap_fixed o) const {
    return from_raw(raw_ + o.raw_);
  }
  constexpr ap_fixed operator-(ap_fixed o) const {
    return from_raw(raw_ - o.raw_);
  }
  constexpr ap_fixed operator-() const { return from_raw(-raw_); }

  /// Full-precision product truncated back to this format.
  constexpr ap_fixed operator*(ap_fixed o) const {
    __extension__ using int128 = __int128;
    const int128 prod = static_cast<int128>(raw_) * o.raw_;
    return from_raw(static_cast<std::int64_t>(prod >> frac_bits));
  }

  constexpr ap_fixed operator<<(unsigned s) const {
    return from_raw(static_cast<std::int64_t>(
        static_cast<std::uint64_t>(raw_) << s));
  }
  constexpr ap_fixed operator>>(unsigned s) const { return from_raw(raw_ >> s); }

  constexpr ap_fixed& operator+=(ap_fixed o) { return *this = *this + o; }
  constexpr ap_fixed& operator-=(ap_fixed o) { return *this = *this - o; }
  constexpr ap_fixed& operator*=(ap_fixed o) { return *this = *this * o; }

  constexpr auto operator<=>(const ap_fixed&) const = default;

  /// Smallest representable increment.
  static constexpr double epsilon() {
    return std::exp2(-static_cast<double>(frac_bits));
  }

 private:
  static constexpr std::int64_t wrap(std::int64_t v) {
    if constexpr (W == 64) return v;
    const std::uint64_t mask = (std::uint64_t{1} << W) - 1;
    std::uint64_t u = static_cast<std::uint64_t>(v) & mask;
    const std::uint64_t sign = std::uint64_t{1} << (W - 1);
    if (u & sign) u |= ~mask;
    return static_cast<std::int64_t>(u);
  }

  std::int64_t raw_ = 0;
};

}  // namespace dwi::hls
