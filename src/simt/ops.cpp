#include "simt/ops.h"

namespace dwi::simt {

const char* to_string(OpClass c) {
  switch (c) {
    case OpClass::kIntAlu: return "int_alu";
    case OpClass::kFloatAdd: return "float_add";
    case OpClass::kFloatMul: return "float_mul";
    case OpClass::kFloatDiv: return "float_div";
    case OpClass::kSqrt: return "sqrt";
    case OpClass::kLog: return "log";
    case OpClass::kExp: return "exp";
    case OpClass::kPow: return "pow";
    case OpClass::kTableLookup: return "table_lookup";
    case OpClass::kMemStore: return "mem_store";
    case OpClass::kLoopCtl: return "loop_ctl";
    case OpClass::kStateSpill: return "state_spill";
    case OpClass::kCount: break;
  }
  return "?";
}

namespace bundles {

OpBundle mersenne_twister_step() {
  // Twist: 2 loads, masks, shift, conditional xor, middle-word xor (~6
  // int ops amortized) + tempering: 4 shift-xor pairs (~8 ops) + index.
  return OpBundle{}.add(OpClass::kIntAlu, 15);
}

OpBundle marsaglia_bray_setup() {
  // v1 = 2u−1 (×2), s = v1² + v2², compare: 2 mul + 3 add-class + int→fp.
  return OpBundle{}
      .add(OpClass::kFloatMul, 4)
      .add(OpClass::kFloatAdd, 3);
}

OpBundle marsaglia_bray_finish() {
  // f = sqrt(−2 ln s / s); out = v1 · f.
  return OpBundle{}
      .add(OpClass::kLog, 1)
      .add(OpClass::kFloatDiv, 1)
      .add(OpClass::kSqrt, 1)
      .add(OpClass::kFloatMul, 2);
}

OpBundle icdf_cuda() {
  // w = −log(1−x²); degree-8 Horner (8 FMA); p·x; the sqrt tail branch
  // has probability ~7e-6 and is amortized away.
  return OpBundle{}
      .add(OpClass::kLog, 1)
      .add(OpClass::kFloatMul, 10)
      .add(OpClass::kFloatAdd, 10);
}

OpBundle icdf_bitwise_fixed_arch() {
  // Emulated LZD (~8 int ops without a CLZ instruction exposed in
  // OpenCL C 1.x), segment/sub-segment extraction (~10 masks/shifts),
  // 3 coefficient loads from a gathered table, 2 integer MACs emulated
  // on 32-bit lanes (~6 ops), format fix-ups (~6). This is the §II-D3
  // "inefficient on CPU and Xeon Phi" path.
  return OpBundle{}
      .add(OpClass::kIntAlu, 45)
      .add(OpClass::kTableLookup, 4);
}

OpBundle gamma_candidate() {
  // t = 1 + c·x; v = t³; squeeze u < 1 − 0.0331 x⁴: ~5 mul, 3 add/cmp.
  return OpBundle{}
      .add(OpClass::kFloatMul, 5)
      .add(OpClass::kFloatAdd, 3);
}

OpBundle gamma_exact_test() {
  // ln u and ln v plus the quadratic form.
  return OpBundle{}
      .add(OpClass::kLog, 2)
      .add(OpClass::kFloatMul, 3)
      .add(OpClass::kFloatAdd, 3);
}

OpBundle gamma_correction() {
  return OpBundle{}.add(OpClass::kPow, 1).add(OpClass::kFloatMul, 1);
}

OpBundle output_store() {
  return OpBundle{}.add(OpClass::kMemStore, 1).add(OpClass::kIntAlu, 2);
}

OpBundle loop_control() { return OpBundle{}.add(OpClass::kLoopCtl, 1); }

}  // namespace bundles
}  // namespace dwi::simt
