// The fixed-architecture (NDRange .cl) version of the paper's gamma
// kernel, executed on the lockstep engine: each lane is one work-item
// looping until it has produced its quota of validated gamma RNs.
//
// This is the counterpart of the FPGA kernel in src/core: same
// numerics (shared rng primitives), but the control flow runs under
// divergence masks so the engine can charge the hardware-partition
// costs that Fig 2b illustrates. Functional output is bit-faithful to
// the scalar sampler, so the same statistical validation applies.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/configs.h"
#include "rng/gamma.h"
#include "rng/stream_strategy.h"
#include "simt/executor.h"
#include "simt/platform.h"

namespace dwi::simt {

/// Result of simulating one partition of the gamma kernel.
struct GammaKernelResult {
  SlotStats stats;
  std::uint64_t iterations = 0;       ///< MAINLOOP trips of the partition
  std::uint64_t attempts = 0;         ///< lane attempts executed
  std::uint64_t accepted = 0;         ///< validated gamma RNs
  std::vector<float> outputs;         ///< all lanes' outputs, interleaved

  double rejection_rate() const {
    return attempts == 0
               ? 0.0
               : 1.0 - static_cast<double>(accepted) /
                           static_cast<double>(attempts);
  }
};

/// Execute one `width`-lane partition until every lane has produced
/// `quota_per_lane` outputs.
///
/// `transform` selects the uniform-to-normal stage (the "CUDA-style" vs
/// "FPGA-style" ICDF rows of Table III differ only here); the
/// Mersenne-Twister parameters and the state-spill penalty come from
/// `config` + `platform`. `seed` decorrelates partitions.
/// `strategy` selects how lanes derive their private uniform streams:
/// kDistinctSeeds (default, the paper's scheme — per-lane mixed MT
/// seeds) or kCounterBased (lane l owns fixed-stride windows of one
/// master Philox sequence; O(1) derivation, no state to spill, and
/// outputs independent of partition scheduling by construction).
/// kJumpAhead is not offered here: partitions sample *disjoint seeds*
/// by design, and the GF(2) machinery would dominate lane setup.
/// `observer` (optional) receives every executed region's (mask,
/// parent, ops) — the Fig 2 visualization hook.
GammaKernelResult run_gamma_partition(
    const PlatformModel& platform, const rng::AppConfig& config,
    rng::NormalTransform transform, float sector_variance,
    std::uint32_t quota_per_lane, std::uint32_t seed,
    rng::StreamStrategy strategy = rng::StreamStrategy::kDistinctSeeds,
    LockstepPartition::RegionObserver observer = nullptr);

/// One-time per-work-item setup cost (PRNG seeding of all twisters),
/// in platform slots — used by the Fig 5b global-size model.
double gamma_kernel_init_slots(const PlatformModel& platform,
                               const rng::AppConfig& config);

}  // namespace dwi::simt
