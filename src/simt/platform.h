// Platform models for the three fixed-architecture accelerators of the
// paper's testbed (§IV-A):
//   CPU: 2× Intel Xeon E5-2670 v3 (Haswell, 2×12 cores, 2.3 GHz)
//   GPU: Nvidia Tesla K80 (2× GK210, 2×13 SMX, 560 MHz base)
//   PHI: Intel Xeon Phi 7120P (61 cores, 1.238 GHz, 512-bit SIMD)
//
// The model converts the lockstep executor's issue-slot counts into
// seconds. Geometry (widths, executor counts, clocks) comes straight
// from the datasheets; the per-platform behavioural constants
// (op costs, divergence scalarization, state-spill penalty, issue
// efficiency) are CALIBRATION constants fitted once against Table III
// and documented below — see DESIGN.md §6 for the reproduction
// contract (shape, not absolute testbed numbers).
//
// Mechanisms the model must carry to reproduce Table III's shape:
//   1. divergence: partitions pay for branch sides any lane takes
//      (executor.h), worse on wider partitions;
//   2. divergence scalarization on implicitly vectorized platforms:
//      masked transcendentals become per-lane scalar calls (CPU worst,
//      PHI partial, GPU none) — this is what makes Config1 (30 %
//      rejection + log/sqrt/div in the divergent path) so expensive on
//      CPU while Config3 (7 % rejection, branchless erfinv) is cheap;
//   3. PRNG state spill: with MT(19937), a work-item carries 7.5–10 KB
//      of private state, which no longer fits registers/fast memory on
//      GPU/PHI — every twister step pays a slow-memory access. This is
//      why Config2/Config4 (17-word MT(521)) run ~2× faster than
//      Config1/Config3 on GPU but CPU (with its large caches) does not
//      move (Table III);
//   4. work-group size effects (Fig 5a) and global-size effects
//      (Fig 5b): underfilled partitions, latency hiding, per-work-item
//      state working set vs cache, and per-work-item PRNG init cost.
#pragma once

#include <cstdint>
#include <string>

#include "rng/configs.h"
#include "simt/executor.h"
#include "simt/ops.h"

namespace dwi::simt {

enum class PlatformId { kCpu, kGpu, kPhi };

const char* to_string(PlatformId id);

struct PlatformModel {
  PlatformId id;
  std::string name;

  // --- geometry (datasheet) ---------------------------------------------
  unsigned width;        ///< hardware partition width (lanes)
  unsigned executors;    ///< concurrent partition issue units
  double clock_hz;       ///< base clock
  double issue_rate;     ///< issue slots per executor-cycle (calibrated)

  // --- behavioural constants (calibrated against Table III) --------------
  double divergence_scalarization;  ///< p in executor.h's cost rule
  std::uint64_t fast_state_bytes;   ///< private state that stays fast
  double spill_slots;               ///< extra slots per MT step when spilled
  std::uint64_t cache_bytes_per_executor;  ///< for the Fig 5a model
  double cache_penalty_slope;       ///< runtime factor per doubling over
  double latency_hiding_groups;     ///< partitions/group needed to hide
                                    ///< latency (GPU warps per block)
  double latency_penalty;           ///< slowdown when under-occupied
  double launch_overhead_s;         ///< per kernel invocation
  /// Serialization factor of the bit-level segmented ICDF on this
  /// platform: indexed gathers + LZD emulation defeat implicit
  /// vectorization (§II-D3), so the region executes (partially)
  /// per-lane. 1 = fully vectorized/native (GPU); `width` = fully
  /// scalar. This is what produces Table III's "ICDF FPGA-style"
  /// CPU/PHI rows.
  double bitwise_icdf_serial_factor;
  OpCostTable costs;

  // --- derived -----------------------------------------------------------

  /// Op bundle of one Mersenne-Twister step for a work-item whose total
  /// private PRNG state is `state_bytes` (mechanism 3 above).
  OpBundle mt_step_bundle(std::uint64_t state_bytes) const;

  /// Work-group size multiplier on runtime (Fig 5a model): partition
  /// underfill, latency hiding, and state working set vs cache.
  double work_group_factor(unsigned local_size,
                           std::uint64_t state_bytes_per_wi) const;

  /// Global-size multiplier at fixed total work (Fig 5b model):
  /// device underutilization at small global sizes; PRNG re-init
  /// overhead per extra work-item at large ones. `init_slots_per_wi` is
  /// the one-time seeding cost, `work_slots_total` the steady-state
  /// kernel cost at the reference global size.
  double global_size_factor(std::uint64_t global_size,
                            double init_slots_per_wi,
                            double work_slots_total) const;

  /// Convert total issued partition-slots into seconds of kernel time.
  double slots_to_seconds(double issued_slots) const;
};

/// Factory functions for the paper's three fixed platforms.
const PlatformModel& cpu_haswell();
const PlatformModel& gpu_tesla_k80();
const PlatformModel& phi_7120p();

const PlatformModel& platform(PlatformId id);

/// Optimal local sizes the paper derives from Fig 5a.
unsigned paper_optimal_local_size(PlatformId id);

}  // namespace dwi::simt
