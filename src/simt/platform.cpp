#include "simt/platform.h"

#include <cmath>

#include "common/error.h"

namespace dwi::simt {

const char* to_string(PlatformId id) {
  switch (id) {
    case PlatformId::kCpu: return "CPU";
    case PlatformId::kGpu: return "GPU";
    case PlatformId::kPhi: return "PHI";
  }
  return "?";
}

namespace {

OpCostTable make_costs(double int_alu, double fadd, double fmul, double fdiv,
                       double sqrt_c, double log_c, double exp_c, double pow_c,
                       double table, double store, double loop,
                       double spill) {
  OpCostTable t;
  auto set = [&](OpClass c, double v) {
    t.slots[static_cast<std::size_t>(c)] = v;
  };
  set(OpClass::kIntAlu, int_alu);
  set(OpClass::kFloatAdd, fadd);
  set(OpClass::kFloatMul, fmul);
  set(OpClass::kFloatDiv, fdiv);
  set(OpClass::kSqrt, sqrt_c);
  set(OpClass::kLog, log_c);
  set(OpClass::kExp, exp_c);
  set(OpClass::kPow, pow_c);
  set(OpClass::kTableLookup, table);
  set(OpClass::kMemStore, store);
  set(OpClass::kLoopCtl, loop);
  set(OpClass::kStateSpill, spill);
  return t;
}

}  // namespace

OpBundle PlatformModel::mt_step_bundle(std::uint64_t state_bytes) const {
  OpBundle b = bundles::mersenne_twister_step();
  if (state_bytes > fast_state_bytes) {
    // One slow state access per step once the private PRNG state no
    // longer fits fast storage; `spill_slots` scales the kStateSpill
    // class cost so the penalty is a single calibrated number.
    b.add(OpClass::kStateSpill, 1);
  }
  return b;
}

double PlatformModel::work_group_factor(
    unsigned local_size, std::uint64_t state_bytes_per_wi) const {
  DWI_REQUIRE(local_size >= 1, "local size must be positive");
  const double w = static_cast<double>(width);
  const double l = static_cast<double>(local_size);

  // 1) Partition underfill: a work-group of L work-items occupies
  //    ceil(L/W) partitions; the last one runs partially filled.
  const double partitions = std::ceil(l / w);
  const double fill = l / (partitions * w);
  const double underfill_factor = 1.0 / fill;

  // 2) Latency hiding: the executor needs `latency_hiding_groups`
  //    resident partitions per work-group to cover pipeline/memory
  //    latency (GPU: ≥2 warps per block). Below that, stalls surface.
  const double needed = latency_hiding_groups;
  double latency_factor = 1.0;
  if (partitions < needed) {
    latency_factor += latency_penalty * (needed - partitions) / needed;
  }

  // 3) State working set: L work-items × private PRNG state must share
  //    the executor-local cache; each doubling beyond it costs
  //    `cache_penalty_slope`.
  const double ws = l * static_cast<double>(state_bytes_per_wi);
  double cache_factor = 1.0;
  const double cache = static_cast<double>(cache_bytes_per_executor);
  if (ws > cache) {
    cache_factor += cache_penalty_slope * std::log2(ws / cache);
  }

  return underfill_factor * latency_factor * cache_factor;
}

double PlatformModel::global_size_factor(std::uint64_t global_size,
                                         double init_slots_per_wi,
                                         double work_slots_total) const {
  DWI_REQUIRE(global_size >= 1, "global size must be positive");
  // Underutilization: fewer work-items than the device's lane count ×
  // an oversubscription factor (load balancing across executors) leaves
  // lanes idle.
  const double device_lanes =
      static_cast<double>(executors) * static_cast<double>(width);
  const double needed = device_lanes * 4.0;  // 4× oversubscription
  const double g = static_cast<double>(global_size);
  const double util_factor = g < needed ? needed / g : 1.0;

  // Per-work-item one-time cost (PRNG seeding: Table I's 624-word state
  // × 3-4 twisters is substantial) grows linearly with global size.
  const double init_total = init_slots_per_wi * g;
  const double init_factor =
      work_slots_total > 0.0 ? 1.0 + init_total / work_slots_total : 1.0;

  return util_factor * init_factor;
}

double PlatformModel::slots_to_seconds(double issued_slots) const {
  return issued_slots /
         (static_cast<double>(executors) * issue_rate * clock_hz);
}

// ---------------------------------------------------------------------------
// Calibration notes (DESIGN.md §6): geometry from §IV-A; `issue_rate`,
// op costs, scalarization and spill constants fitted to Table III's
// twelve fixed-architecture cells (see bench/table3_runtime and
// EXPERIMENTS.md for achieved vs paper).
// ---------------------------------------------------------------------------

const PlatformModel& cpu_haswell() {
  static const PlatformModel m = [] {
    PlatformModel p;
    p.id = PlatformId::kCpu;
    p.name = "CPU (2x Xeon E5-2670 v3, OpenCL accelerator)";
    p.width = 8;          // AVX2: 8 fp32 lanes per implicit SIMD group
    p.executors = 24;     // 24 cores (the 24 HT threads share ports)
    p.clock_hz = 2.3e9;
    p.issue_rate = 0.34;  // OpenCL-on-CPU efficiency vs peak (calibrated)
    p.divergence_scalarization = 1.0;  // masked libm → per-lane scalar
    p.fast_state_bytes = 64 * 1024;    // L1+L2 slice: MT19937 never spills
    p.cache_bytes_per_executor = 256 * 1024;
    p.cache_penalty_slope = 0.18;
    p.latency_hiding_groups = 1.0;     // OoO core needs no SMT groups
    p.latency_penalty = 0.0;
    p.launch_overhead_s = 30e-6;
    p.bitwise_icdf_serial_factor = 8.0;   // fully scalar on 8-wide AVX2
    p.costs = make_costs(/*int*/ 1.0, /*fadd*/ 1.0, /*fmul*/ 1.0,
                         /*fdiv*/ 10.0, /*sqrt*/ 10.0, /*log*/ 22.0,
                         /*exp*/ 22.0, /*pow*/ 34.0, /*table*/ 4.0,
                         /*store*/ 2.0, /*loop*/ 2.0, /*spill*/ 8.0);
    return p;
  }();
  return m;
}

const PlatformModel& gpu_tesla_k80() {
  static const PlatformModel m = [] {
    PlatformModel p;
    p.id = PlatformId::kGpu;
    p.name = "GPU (Nvidia Tesla K80, 2x GK210)";
    p.width = 32;        // warp
    p.executors = 104;   // 2 GPUs x 13 SMX x 4 warp schedulers
    p.clock_hz = 0.56e9;
    p.issue_rate = 0.136;  // sustained warp-issue vs peak (calibrated)
    p.divergence_scalarization = 0.08;  // predication + replay overhead
    p.fast_state_bytes = 2 * 1024;     // registers + L1 slice per thread
    p.cache_bytes_per_executor = 16 * 1024;
    p.cache_penalty_slope = 0.05;
    p.latency_hiding_groups = 2.0;     // ≥2 warps per block (Fig 5a: 64)
    p.latency_penalty = 0.9;
    p.launch_overhead_s = 60e-6;
    p.bitwise_icdf_serial_factor = 1.0;  // gathers/CLZ are native on GPU
    p.costs = make_costs(/*int*/ 1.0, /*fadd*/ 1.0, /*fmul*/ 1.0,
                         /*fdiv*/ 6.0, /*sqrt*/ 6.0, /*log*/ 12.0,
                         /*exp*/ 12.0, /*pow*/ 24.0, /*table*/ 2.0,
                         /*store*/ 4.0, /*loop*/ 1.0, /*spill*/ 33.0);
    return p;
  }();
  return m;
}

const PlatformModel& phi_7120p() {
  static const PlatformModel m = [] {
    PlatformModel p;
    p.id = PlatformId::kPhi;
    p.name = "PHI (Intel Xeon Phi 7120P)";
    p.width = 16;       // 512-bit / fp32
    p.executors = 61;   // cores (4 SMT threads feed one VPU)
    p.clock_hz = 1.238e9;
    p.issue_rate = 0.19;  // in-order VPU sustained issue (calibrated)
    p.divergence_scalarization = 0.05;  // masked SVML: partial penalty
    p.fast_state_bytes = 2 * 1024;      // L1 share per work-item
    p.cache_bytes_per_executor = 512 * 1024;  // L2 per core
    p.cache_penalty_slope = 0.12;
    p.latency_hiding_groups = 1.0;      // (SMT threads, not partitions)
    p.latency_penalty = 0.3;
    p.launch_overhead_s = 80e-6;
    p.bitwise_icdf_serial_factor = 10.0;  // near-scalar: masked gathers stall
    p.costs = make_costs(/*int*/ 1.0, /*fadd*/ 1.0, /*fmul*/ 1.0,
                         /*fdiv*/ 8.0, /*sqrt*/ 8.0, /*log*/ 10.0,
                         /*exp*/ 10.0, /*pow*/ 22.0, /*table*/ 5.0,
                         /*store*/ 2.0, /*loop*/ 2.0, /*spill*/ 12.0);
    return p;
  }();
  return m;
}

const PlatformModel& platform(PlatformId id) {
  switch (id) {
    case PlatformId::kCpu: return cpu_haswell();
    case PlatformId::kGpu: return gpu_tesla_k80();
    case PlatformId::kPhi: return phi_7120p();
  }
  throw Error("unknown platform id");
}

unsigned paper_optimal_local_size(PlatformId id) {
  switch (id) {
    case PlatformId::kCpu: return 8;
    case PlatformId::kGpu: return 64;
    case PlatformId::kPhi: return 16;
  }
  return 1;
}

}  // namespace dwi::simt
