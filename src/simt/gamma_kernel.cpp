#include "simt/gamma_kernel.h"

#include <cmath>

#include "common/bits.h"
#include "common/block_arena.h"
#include "common/error.h"
#include "rng/erfinv.h"
#include "rng/icdf_bitwise.h"
#include "rng/normal.h"

namespace dwi::simt {

namespace {

/// Per-lane private state: the work-item's twisters and progress.
struct LaneState {
  // MB uses two input twisters (mt0a/mt0b per [18]); ICDF uses mt0a.
  rng::MersenneTwister mt0a;
  rng::MersenneTwister mt0b;
  rng::MersenneTwister mt1;   // rejection uniform
  rng::MersenneTwister mt2;   // correction uniform
  std::uint32_t produced = 0;

  // Per-iteration scratch, written by one region and read by the next.
  float n0 = 0.0f;
  bool n0_valid = false;
  float candidate = 0.0f;
  float v = 0.0f;
  float u1 = 0.0f;
  bool squeeze_pass = false;
  bool accepted = false;

  LaneState(const rng::MtParams& params, std::uint32_t seed)
      : mt0a(params, seed), mt0b(params, seed ^ 0x5851f42du),
        mt1(params, seed ^ 0x9e3779b9u), mt2(params, seed ^ 0x6c078965u) {}
};

}  // namespace

GammaKernelResult run_gamma_partition(
    const PlatformModel& platform, const rng::AppConfig& config,
    rng::NormalTransform transform, float sector_variance,
    std::uint32_t quota_per_lane, std::uint32_t seed,
    LockstepPartition::RegionObserver observer) {
  DWI_REQUIRE(quota_per_lane > 0, "quota must be positive");
  const unsigned width = platform.width;
  LockstepPartition part(width, platform.costs,
                         platform.divergence_scalarization);
  if (observer) part.set_observer(std::move(observer));

  const auto k = rng::GammaConstants::from_sector_variance(sector_variance);
  const bool uses_mb = transform == rng::NormalTransform::kMarsagliaBray;
  const OpBundle mt_step =
      platform.mt_step_bundle(config.state_bytes_per_work_item());

  // Region bundles assembled once. The bit-level ICDF cannot be fully
  // vectorized on CPU/PHI (§II-D3): its op counts are multiplied by the
  // platform's serialization factor to model per-lane scalar execution.
  OpBundle icdf_bitwise = bundles::icdf_bitwise_fixed_arch();
  {
    OpBundle scaled;
    for (std::size_t i = 0; i < kNumOpClasses; ++i) {
      scaled.counts[i] = static_cast<std::uint32_t>(
          std::lround(static_cast<double>(icdf_bitwise.counts[i]) *
                      platform.bitwise_icdf_serial_factor));
    }
    icdf_bitwise = scaled;
  }
  const OpBundle normal_gen_bundle =
      uses_mb ? mt_step + mt_step + bundles::marsaglia_bray_setup()
      : transform == rng::NormalTransform::kIcdfCuda
          ? mt_step + bundles::icdf_cuda()
          : mt_step + icdf_bitwise;
  const OpBundle mb_finish_bundle = bundles::marsaglia_bray_finish();
  const OpBundle rejection_bundle = mt_step + bundles::gamma_candidate();
  const OpBundle exact_bundle = bundles::gamma_exact_test();
  const OpBundle correct_bundle = k.boosted
                                      ? mt_step + bundles::gamma_correction() +
                                            bundles::output_store()
                                      : bundles::output_store();
  const OpBundle loop_bundle = bundles::loop_control();

  std::vector<LaneState> lanes;
  lanes.reserve(width);
  for (unsigned i = 0; i < width; ++i) {
    lanes.emplace_back(config.mt, seed * 2654435761u + i * 40503u + 1u);
  }

  GammaKernelResult result;
  result.outputs.reserve(static_cast<std::size_t>(width) * quota_per_lane);

  auto lane_bit = [](unsigned lane) { return Mask{1} << lane; };

  Mask alive = part.full_mask();
  while (alive != 0) {
    ++result.iterations;
    part.charge(alive, part.full_mask(), loop_bundle);

    // --- normal generation (all alive lanes) ----------------------------
    // The per-lane transform dispatch is hoisted out of the region:
    // uniforms are pre-drawn in lane order (each lane owns its
    // twisters, so this is stream-identical to drawing inside the
    // callback, which the executor also runs in ascending lane order)
    // and the transform runs as one dense batch over the alive lanes.
    // Marsaglia-Bray keeps its split shape — the normal-gen region
    // computes only the polar setup; sqrt/log live in the divergent
    // finish region below — so it batches its setup arithmetic here
    // instead of going through rng::normal_attempt_block.
    Mask normal_valid = 0;
    {
      common::BlockArena& arena = common::thread_block_arena();
      std::uint32_t* ua = arena.u32(0, width);
      std::uint32_t* ub = arena.u32(1, width);
      float* n_value = arena.f32(0, width);
      float* n_aux = arena.f32(1, width);
      std::uint8_t* n_ok = arena.u8(0, width);
      const bool two_uniforms = rng::uniforms_per_attempt(transform) == 2;
      std::size_t cnt = 0;
      for (unsigned i = 0; i < width; ++i) {
        if ((alive & lane_bit(i)) == 0) continue;
        ua[cnt] = lanes[i].mt0a.next();
        if (two_uniforms) ub[cnt] = lanes[i].mt0b.next();
        ++cnt;
      }
      if (uses_mb) {
        for (std::size_t j = 0; j < cnt; ++j) {
          const float v1 = 2.0f * uint2float_open0(ua[j]) - 1.0f;
          const float v2 = 2.0f * uint2float_open0(ub[j]) - 1.0f;
          const float s = v1 * v1 + v2 * v2;
          n_value[j] = v1;
          n_aux[j] = s;
          n_ok[j] = (s < 1.0f && s > 0.0f) ? 1 : 0;
        }
      } else {
        rng::normal_attempt_block(transform, ua, ub, cnt, n_value, n_ok);
      }
      std::size_t j = 0;
      part.region(alive, alive, normal_gen_bundle, [&](unsigned i) {
        LaneState& l = lanes[i];
        ++result.attempts;
        l.n0 = n_value[j];
        l.n0_valid = n_ok[j] != 0;
        if (uses_mb) l.v = n_aux[j];
        ++j;
        if (l.n0_valid) normal_valid |= lane_bit(i);
      });
    }

    // --- Marsaglia-Bray finish (divergent: only accepted lanes) ---------
    if (uses_mb) {
      part.region(normal_valid, alive, mb_finish_bundle, [&](unsigned i) {
        LaneState& l = lanes[i];
        const float s = l.v;
        l.n0 = l.n0 * std::sqrt(-2.0f * std::log(s) / s);
      });
    }

    // --- rejection stage (divergent when the transform rejects) ---------
    Mask candidate_ok = 0;
    part.region(normal_valid, alive, rejection_bundle, [&](unsigned i) {
      LaneState& l = lanes[i];
      l.u1 = uint2float_open0(l.mt1.next());
      const float t = 1.0f + k.c * l.n0;
      if (t <= 0.0f) {
        l.squeeze_pass = false;
        l.accepted = false;
        return;
      }
      l.v = t * t * t;
      const float x2 = l.n0 * l.n0;
      l.squeeze_pass = l.u1 < 1.0f - 0.0331f * x2 * x2;
      l.accepted = l.squeeze_pass;
      candidate_ok |= lane_bit(i);
    });

    // --- exact log test for squeeze failures (divergent) ----------------
    Mask need_exact = 0;
    for (unsigned i = 0; i < width; ++i) {
      if ((candidate_ok & lane_bit(i)) && !lanes[i].squeeze_pass) {
        need_exact |= lane_bit(i);
      }
    }
    part.region(need_exact, alive, exact_bundle, [&](unsigned i) {
      LaneState& l = lanes[i];
      const float x2 = l.n0 * l.n0;
      l.accepted =
          std::log(l.u1) < 0.5f * x2 + k.d * (1.0f - l.v + std::log(l.v));
    });

    // --- correction + store (divergent: only accepted lanes) ------------
    Mask accepted_mask = 0;
    for (unsigned i = 0; i < width; ++i) {
      if ((candidate_ok & lane_bit(i)) && lanes[i].accepted &&
          lanes[i].produced < quota_per_lane) {
        accepted_mask |= lane_bit(i);
      }
    }
    part.region(accepted_mask, alive, correct_bundle, [&](unsigned i) {
      LaneState& l = lanes[i];
      float g = k.d * l.v * k.scale;
      if (k.boosted) {
        const float u2 = uint2float_open0(l.mt2.next());
        g = rng::gamma_correct(g, u2, k);
      }
      result.outputs.push_back(g);
      ++l.produced;
      ++result.accepted;
    });

    // --- loop exit: a lane retires when its quota is met -----------------
    Mask next_alive = 0;
    for (unsigned i = 0; i < width; ++i) {
      if (lanes[i].produced < quota_per_lane) next_alive |= lane_bit(i);
    }
    alive = next_alive;
  }

  result.stats = part.stats();
  return result;
}

double gamma_kernel_init_slots(const PlatformModel& platform,
                               const rng::AppConfig& config) {
  // Knuth seeding: one multiply + add + xor/shift per state word, per
  // twister (§IV-B makes this visible at large global sizes, Fig 5b).
  OpBundle init;
  init.add(OpClass::kIntAlu, 4 * config.mt.n * config.num_twisters());
  return platform.costs.cost(init);
}

}  // namespace dwi::simt
