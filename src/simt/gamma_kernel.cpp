#include "simt/gamma_kernel.h"

#include <cmath>
#include <optional>

#include "common/bits.h"
#include "common/block_arena.h"
#include "common/error.h"
#include "rng/erfinv.h"
#include "rng/fastmath.h"
#include "rng/icdf_bitwise.h"
#include "rng/normal.h"
#include "rng/simd_kernels.h"

namespace dwi::simt {

namespace {

/// Per-lane private state: the work-item's uniform streams and
/// progress. Exactly one stream family is live per run — either the
/// paper's distinct-seed twisters or, under kCounterBased, per-lane
/// windows of one master Philox counter sequence (the optionals stay
/// empty for the family not in use).
struct LaneState {
  // MB uses two input twisters (mt0a/mt0b per [18]); ICDF uses mt0a.
  // mt0b is only constructed (and seeded) for two-uniform transforms —
  // its stream is never consumed otherwise, so the other twisters'
  // sequences are unaffected.
  std::optional<rng::MersenneTwister> mt0a;
  std::optional<rng::MersenneTwister> mt0b;
  std::optional<rng::MersenneTwister> mt1;   // rejection uniform
  std::optional<rng::MersenneTwister> mt2;   // correction uniform

  // Counter-based streams: lane stream s is substream lane*4+s of the
  // master sequence — derivation is a counter write, so "seeding" all
  // lanes costs nothing (the modeled init advantage of statelessness).
  std::optional<rng::Philox> px0a;
  std::optional<rng::Philox> px0b;
  std::optional<rng::Philox> px1;
  std::optional<rng::Philox> px2;

  std::uint32_t produced = 0;

  // Per-iteration scratch, written by one region and read by the next.
  float n0 = 0.0f;
  bool n0_valid = false;
  float candidate = 0.0f;
  float v = 0.0f;
  float u1 = 0.0f;
  bool squeeze_pass = false;
  bool accepted = false;

  LaneState(const rng::MtParams& params, std::uint32_t seed,
            bool two_uniforms) {
    mt0a.emplace(params, seed);
    mt1.emplace(params, seed ^ 0x9e3779b9u);
    mt2.emplace(params, seed ^ 0x6c078965u);
    if (two_uniforms) mt0b.emplace(params, seed ^ 0x5851f42du);
  }

  LaneState(const rng::CounterSubstreams& substreams, unsigned lane,
            bool two_uniforms) {
    const std::uint64_t base = std::uint64_t{lane} * 4u;
    px0a = substreams.stream(base + 0);
    px1 = substreams.stream(base + 2);
    px2 = substreams.stream(base + 3);
    if (two_uniforms) px0b = substreams.stream(base + 1);
  }

  std::uint32_t next0a() { return px0a ? px0a->next() : mt0a->next(); }
  std::uint32_t next0b() { return px0b ? px0b->next() : mt0b->next(); }
  std::uint32_t next1() { return px1 ? px1->next() : mt1->next(); }
  std::uint32_t next2() { return px2 ? px2->next() : mt2->next(); }
};

}  // namespace

GammaKernelResult run_gamma_partition(
    const PlatformModel& platform, const rng::AppConfig& config,
    rng::NormalTransform transform, float sector_variance,
    std::uint32_t quota_per_lane, std::uint32_t seed,
    rng::StreamStrategy strategy,
    LockstepPartition::RegionObserver observer) {
  DWI_REQUIRE(quota_per_lane > 0, "quota must be positive");
  const unsigned width = platform.width;
  LockstepPartition part(width, platform.costs,
                         platform.divergence_scalarization);
  if (observer) part.set_observer(std::move(observer));

  const auto k = rng::GammaConstants::from_sector_variance(sector_variance);
  const bool uses_mb = transform == rng::NormalTransform::kMarsagliaBray;
  const OpBundle mt_step =
      platform.mt_step_bundle(config.state_bytes_per_work_item());

  // Region bundles assembled once. The bit-level ICDF cannot be fully
  // vectorized on CPU/PHI (§II-D3): its op counts are multiplied by the
  // platform's serialization factor to model per-lane scalar execution.
  OpBundle icdf_bitwise = bundles::icdf_bitwise_fixed_arch();
  {
    OpBundle scaled;
    for (std::size_t i = 0; i < kNumOpClasses; ++i) {
      scaled.counts[i] = static_cast<std::uint32_t>(
          std::lround(static_cast<double>(icdf_bitwise.counts[i]) *
                      platform.bitwise_icdf_serial_factor));
    }
    icdf_bitwise = scaled;
  }
  const OpBundle normal_gen_bundle =
      uses_mb ? mt_step + mt_step + bundles::marsaglia_bray_setup()
      : transform == rng::NormalTransform::kIcdfCuda
          ? mt_step + bundles::icdf_cuda()
          : mt_step + icdf_bitwise;
  const OpBundle mb_finish_bundle = bundles::marsaglia_bray_finish();
  const OpBundle rejection_bundle = mt_step + bundles::gamma_candidate();
  const OpBundle exact_bundle = bundles::gamma_exact_test();
  const OpBundle correct_bundle = k.boosted
                                      ? mt_step + bundles::gamma_correction() +
                                            bundles::output_store()
                                      : bundles::output_store();
  const OpBundle loop_bundle = bundles::loop_control();

  DWI_REQUIRE(strategy != rng::StreamStrategy::kJumpAhead,
              "simt: partitions use distinct seeds or counter-based "
              "streams (see run_gamma_partition docs)");
  const bool two_uniforms = rng::uniforms_per_attempt(transform) == 2;
  const bool counter_based = strategy == rng::StreamStrategy::kCounterBased;
  // Stride bound for counter-based lanes: each stream advances at most
  // once per MAINLOOP trip, and a lane's expected trips per output are
  // the attempt count (< 6 at every config shape); 64x quota plus slack
  // leaves orders of magnitude of headroom inside the 2^128 counter
  // space, which costs nothing.
  const rng::CounterSubstreams substreams(
      seed, std::uint64_t{quota_per_lane} * 64u + 4096u);
  std::vector<LaneState> lanes;
  lanes.reserve(width);
  for (unsigned i = 0; i < width; ++i) {
    if (counter_based) {
      lanes.emplace_back(substreams, i, two_uniforms);
    } else {
      lanes.emplace_back(config.mt, seed * 2654435761u + i * 40503u + 1u,
                         two_uniforms);
    }
  }

  GammaKernelResult result;
  result.outputs.reserve(static_cast<std::size_t>(width) * quota_per_lane);

  auto lane_bit = [](unsigned lane) { return Mask{1} << lane; };

  // Per-bundle issue-slot costs are loop-invariant; fold the op-class
  // dot products once instead of on every region call.
  const double loop_cost = part.bundle_cost(loop_bundle);
  const double normal_gen_cost = part.bundle_cost(normal_gen_bundle);
  const double mb_finish_cost = part.bundle_cost(mb_finish_bundle);
  const double rejection_cost = part.bundle_cost(rejection_bundle);
  const double exact_cost = part.bundle_cost(exact_bundle);
  const double correct_cost = part.bundle_cost(correct_bundle);

  // Scratch for the hoisted block stages, sized so every block-kernel
  // call can be padded up to a multiple of the 8-lane SIMD group with
  // benign inputs (padded results are never read back); the pad keeps
  // small active sets on the vector path instead of the scalar tail.
  common::BlockArena& arena = common::thread_block_arena();
  const std::size_t cap = static_cast<std::size_t>(width) + 8;
  std::uint32_t* ua = arena.u32(0, cap);
  std::uint32_t* ub = arena.u32(1, cap);
  std::uint32_t* u2 = arena.u32(2, cap);
  float* n_value = arena.f32(0, cap);
  float* n_aux = arena.f32(1, cap);
  float* fin_n0 = arena.f32(2, cap);
  float* fin_s = arena.f32(3, cap);
  float* gbuf = arena.f32(4, cap);
  std::uint8_t* n_ok = arena.u8(0, cap);
  const auto pad8 = [](std::size_t cnt) { return (cnt + 7) & ~std::size_t{7}; };

  Mask alive = part.full_mask();
  while (alive != 0) {
    ++result.iterations;
    part.charge(alive, part.full_mask(), loop_bundle, loop_cost);

    // --- normal generation (all alive lanes) ----------------------------
    // The per-lane transform dispatch is hoisted out of the region:
    // uniforms are pre-drawn in lane order (each lane owns its
    // twisters, so this is stream-identical to drawing inside the
    // callback, which the executor also runs in ascending lane order)
    // and the transform runs as one dense batch over the alive lanes.
    // Marsaglia-Bray keeps its split shape — the normal-gen region
    // computes only the polar setup; sqrt/log live in the divergent
    // finish region below — so it batches its setup arithmetic here
    // instead of going through rng::normal_attempt_block.
    Mask normal_valid = 0;
    {
      std::size_t cnt = 0;
      for (Mask m = alive; m != 0; m &= m - 1) {
        const unsigned i = static_cast<unsigned>(__builtin_ctzll(m));
        ua[cnt] = lanes[i].next0a();
        if (two_uniforms) ub[cnt] = lanes[i].next0b();
        ++cnt;
      }
      if (uses_mb) {
        for (std::size_t j = 0; j < cnt; ++j) {
          const float v1 = 2.0f * uint2float_open0(ua[j]) - 1.0f;
          const float v2 = 2.0f * uint2float_open0(ub[j]) - 1.0f;
          const float s = v1 * v1 + v2 * v2;
          n_value[j] = v1;
          n_aux[j] = s;
          n_ok[j] = (s < 1.0f && s > 0.0f) ? 1 : 0;
        }
      } else {
        std::size_t padded = cnt;
        if (transform == rng::NormalTransform::kIcdfCuda) {
          // Pad to a full SIMD group; extra lanes compute a benign
          // icdf(~0.5) that the region callback never reads.
          for (padded = pad8(cnt); cnt < padded;) ua[cnt++] = 0x80000000u;
        }
        rng::normal_attempt_block(transform, ua, ub, padded, n_value, n_ok);
      }
      std::size_t j = 0;
      part.region(alive, alive, normal_gen_bundle, normal_gen_cost,
                  [&](unsigned i) {
        LaneState& l = lanes[i];
        ++result.attempts;
        l.n0 = n_value[j];
        l.n0_valid = n_ok[j] != 0;
        if (uses_mb) l.v = n_aux[j];
        ++j;
        if (l.n0_valid) normal_valid |= lane_bit(i);
      });
    }

    // --- Marsaglia-Bray finish (divergent: only accepted lanes) ---------
    // log/sqrt are the region's whole cost; batch them over the valid
    // lanes (compacted in ascending lane order, matching the executor's
    // callback order) and have the callback only write results back.
    if (uses_mb) {
      std::size_t cnt = 0;
      for (Mask m = normal_valid; m != 0; m &= m - 1) {
        const unsigned i = static_cast<unsigned>(__builtin_ctzll(m));
        fin_n0[cnt] = lanes[i].n0;
        fin_s[cnt] = lanes[i].v;
        ++cnt;
      }
      for (std::size_t p = pad8(cnt); cnt < p; ++cnt) {
        fin_n0[cnt] = 0.0f;
        fin_s[cnt] = 0.5f;
      }
      rng::simd::mb_finish_block(fin_n0, fin_s, cnt);
      std::size_t j = 0;
      part.region(normal_valid, alive, mb_finish_bundle, mb_finish_cost,
                  [&](unsigned i) { lanes[i].n0 = fin_n0[j++]; });
    }

    // --- rejection stage (divergent when the transform rejects) ---------
    Mask candidate_ok = 0;
    part.region(normal_valid, alive, rejection_bundle, rejection_cost,
                [&](unsigned i) {
      LaneState& l = lanes[i];
      l.u1 = uint2float_open0(l.next1());
      const float t = 1.0f + k.c * l.n0;
      if (t <= 0.0f) {
        l.squeeze_pass = false;
        l.accepted = false;
        return;
      }
      l.v = t * t * t;
      const float x2 = l.n0 * l.n0;
      l.squeeze_pass = l.u1 < 1.0f - 0.0331f * x2 * x2;
      l.accepted = l.squeeze_pass;
      candidate_ok |= lane_bit(i);
    });

    // --- exact log test for squeeze failures (divergent) ----------------
    Mask need_exact = 0;
    for (Mask m = candidate_ok; m != 0; m &= m - 1) {
      const unsigned i = static_cast<unsigned>(__builtin_ctzll(m));
      if (!lanes[i].squeeze_pass) need_exact |= lane_bit(i);
    }
    part.region(need_exact, alive, exact_bundle, exact_cost,
                [&](unsigned i) {
      LaneState& l = lanes[i];
      const float x2 = l.n0 * l.n0;
      l.accepted = rng::fast_logf(l.u1) <
                   0.5f * x2 + k.d * (1.0f - l.v + rng::fast_logf(l.v));
    });

    // --- correction + store (divergent: only accepted lanes) ------------
    Mask accepted_mask = 0;
    for (Mask m = candidate_ok; m != 0; m &= m - 1) {
      const unsigned i = static_cast<unsigned>(__builtin_ctzll(m));
      if (lanes[i].accepted && lanes[i].produced < quota_per_lane) {
        accepted_mask |= lane_bit(i);
      }
    }
    // The pow-based correction dominates this region; draw the u2
    // uniforms in lane order and run one dense gamma_correct_block over
    // the accepted lanes, leaving only the ordered stores in the
    // callback.
    {
      std::size_t cnt = 0;
      for (Mask m = accepted_mask; m != 0; m &= m - 1) {
        const unsigned i = static_cast<unsigned>(__builtin_ctzll(m));
        gbuf[cnt] = k.d * lanes[i].v * k.scale;
        if (k.boosted) u2[cnt] = lanes[i].next2();
        ++cnt;
      }
      if (k.boosted) {
        const std::size_t real = cnt;
        for (std::size_t p = pad8(cnt); cnt < p; ++cnt) {
          gbuf[cnt] = 1.0f;
          u2[cnt] = 0x80000000u;
        }
        rng::simd::gamma_correct_block(gbuf, u2, cnt, k);
        cnt = real;
      }
      std::size_t j = 0;
      part.region(accepted_mask, alive, correct_bundle, correct_cost,
                  [&](unsigned i) {
        result.outputs.push_back(gbuf[j++]);
        ++lanes[i].produced;
        ++result.accepted;
      });
    }

    // --- loop exit: a lane retires when its quota is met -----------------
    Mask next_alive = 0;
    for (Mask m = alive; m != 0; m &= m - 1) {
      const unsigned i = static_cast<unsigned>(__builtin_ctzll(m));
      if (lanes[i].produced < quota_per_lane) next_alive |= lane_bit(i);
    }
    alive = next_alive;
  }

  result.stats = part.stats();
  return result;
}

double gamma_kernel_init_slots(const PlatformModel& platform,
                               const rng::AppConfig& config) {
  // Knuth seeding: one multiply + add + xor/shift per state word, per
  // twister (§IV-B makes this visible at large global sizes, Fig 5b).
  OpBundle init;
  init.add(OpClass::kIntAlu, 4 * config.mt.n * config.num_twisters());
  return platform.costs.cost(init);
}

}  // namespace dwi::simt
