// Lockstep partition executor: the mechanical core of the
// fixed-architecture model (Fig 2a/2b).
//
// A partition is a group of `width` work-items (a warp on Nvidia, an
// implicit SIMD group on CPU / Xeon Phi) that issues one instruction
// stream. A *region* is a straight-line piece of the kernel guarded by
// an activity mask. Executing a region:
//   * is skipped entirely when no lane is active (branch not taken by
//     anyone — the hardware really does skip it);
//   * otherwise charges its op cost to the partition regardless of how
//     many lanes are active — the inactive lanes are the paper's red
//     dots in Fig 2b;
//   * runs the per-lane body for each active lane, so results stay
//     bit-faithful to the scalar algorithm.
//
// Divergence model: a region whose mask is a strict subset of its
// enclosing control-flow mask is *divergent*. GPUs execute it once
// with predication (cost ×1). Implicitly vectorized platforms
// (CPU / Xeon Phi OpenCL) partially scalarize such regions — masked
// transcendentals fall back to per-lane scalar library calls — which
// we model with the platform's `divergence_scalarization` factor
// p ∈ [0,1]: charged cost = base · ((1−p) + p·active_lanes).
//
// SlotStats separates issued slots (what the hardware paid) from useful
// lane-slots (what the algorithm needed); their ratio is the SIMD
// efficiency the benchmarks report.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "common/error.h"
#include "simt/ops.h"

namespace dwi::simt {

using Mask = std::uint64_t;

inline unsigned popcount(Mask m) {
  return static_cast<unsigned>(__builtin_popcountll(m));
}

/// Issue-slot accounting for one partition.
struct SlotStats {
  double issued_slots = 0.0;            ///< partition-issued slots
  double useful_slots = 0.0;            ///< lane-weighted useful share
  std::uint64_t regions = 0;            ///< regions executed
  std::uint64_t divergent_regions = 0;  ///< executed with a partial mask

  /// Fraction of issued lane-slots that did useful work (0..1].
  double simd_efficiency(unsigned width) const {
    if (issued_slots <= 0.0) return 1.0;
    return useful_slots / (issued_slots * static_cast<double>(width));
  }

  SlotStats& operator+=(const SlotStats& o) {
    issued_slots += o.issued_slots;
    useful_slots += o.useful_slots;
    regions += o.regions;
    divergent_regions += o.divergent_regions;
    return *this;
  }
};

/// Executes masked regions over a fixed-width lane group.
class LockstepPartition {
 public:
  /// `scalarization`: the platform's divergence-scalarization factor
  /// (0 = pure predication, 1 = full per-lane serialization of
  /// divergent regions).
  /// The cost table is copied (it is a few doubles), so callers may
  /// pass a temporary — storing a reference here once made the
  /// partition silently read a dangling stack slot.
  LockstepPartition(unsigned width, const OpCostTable& costs,
                    double scalarization = 0.0)
      : width_(width), costs_(costs), scalarization_(scalarization) {
    DWI_REQUIRE(width >= 1 && width <= 64,
                "partition width must be in [1, 64]");
    DWI_REQUIRE(scalarization >= 0.0 && scalarization <= 1.0,
                "scalarization factor must be in [0, 1]");
  }

  unsigned width() const { return width_; }

  Mask full_mask() const {
    return width_ == 64 ? ~Mask{0} : ((Mask{1} << width_) - 1);
  }

  /// The issue-slot cost of a bundle on this partition's platform.
  /// Kernels that execute the same bundle every iteration precompute
  /// this once and pass it to the `base_cost` region overload below.
  double bundle_cost(const OpBundle& ops) const { return costs_.cost(ops); }

  /// Execute `body(lane)` for every lane active in `mask`. `parent`
  /// is the enclosing control-flow mask; mask ⊊ parent marks the
  /// region divergent. Cost is charged per the divergence model above.
  template <typename Body>
  void region(Mask mask, Mask parent, const OpBundle& ops, Body&& body) {
    region(mask, parent, ops, costs_.cost(ops), std::forward<Body>(body));
  }

  /// Same, with the bundle's cost precomputed by `bundle_cost` —
  /// hoists the per-op-class dot product out of hot loops.
  template <typename Body>
  void region(Mask mask, Mask parent, const OpBundle& ops, double base_cost,
              Body&& body) {
    mask &= full_mask();
    parent &= full_mask();
    DWI_ASSERT((mask & ~parent) == 0);
    if (mask == 0) return;
    const unsigned active = popcount(mask);
    const bool divergent = mask != parent;
    const double base = base_cost;
    const double charged =
        divergent
            ? base * ((1.0 - scalarization_) +
                      scalarization_ * static_cast<double>(active))
            : base;
    stats_.issued_slots += charged;
    stats_.useful_slots += base * static_cast<double>(active);
    ++stats_.regions;
    if (divergent) ++stats_.divergent_regions;
    if (observer_) observer_(mask, parent, ops);
    for (Mask m = mask; m != 0; m &= m - 1) {
      body(static_cast<unsigned>(__builtin_ctzll(m)));
    }
  }

  /// Charge cost without a body (pure control overhead).
  void charge(Mask mask, Mask parent, const OpBundle& ops) {
    region(mask, parent, ops, [](unsigned) {});
  }

  /// Same, with the cost precomputed by `bundle_cost`.
  void charge(Mask mask, Mask parent, const OpBundle& ops,
              double base_cost) {
    region(mask, parent, ops, base_cost, [](unsigned) {});
  }

  const SlotStats& stats() const { return stats_; }
  void reset_stats() { stats_ = SlotStats{}; }

  /// Observer invoked for every executed region with (mask, parent,
  /// ops) — used by the Fig 2 divergence visualization and by tests
  /// that pin the region sequence. Null by default (no overhead).
  using RegionObserver = std::function<void(Mask, Mask, const OpBundle&)>;
  void set_observer(RegionObserver observer) {
    observer_ = std::move(observer);
  }

 private:
  unsigned width_;
  OpCostTable costs_;
  double scalarization_;
  SlotStats stats_;
  RegionObserver observer_;
};

}  // namespace dwi::simt
