#include "simt/runtime_estimator.h"

#include <cmath>

#include "common/bits.h"
#include "common/error.h"
#include "exec/parallel_for.h"

namespace dwi::simt {

RuntimeEstimate estimate_runtime(const PlatformModel& platform,
                                 const rng::AppConfig& config,
                                 rng::NormalTransform transform,
                                 const NdRangeWorkload& workload,
                                 unsigned sample_partitions,
                                 std::uint32_t sample_quota,
                                 std::uint32_t seed) {
  DWI_REQUIRE(workload.global_size >= platform.width,
              "global size below one partition");
  DWI_REQUIRE(workload.total_outputs >= workload.global_size,
              "fewer outputs than work-items");

  const unsigned local_size = workload.local_size != 0
                                  ? workload.local_size
                                  : paper_optimal_local_size(platform.id);

  // --- simulate a sample of partitions ---------------------------------
  // Partitions are embarrassingly parallel (each seeds its own lanes
  // from the partition index), so they shard across the pool; the
  // SlotStats fold runs in partition order on this thread, keeping the
  // floating-point totals bit-identical to the serial loop for any
  // DWI_THREADS (tests/test_exec.cpp pins this).
  SlotStats stats;
  std::uint64_t attempts = 0;
  std::uint64_t accepted = 0;
  const auto samples = exec::parallel_map(
      sample_partitions, [&](std::size_t s) {
        return run_gamma_partition(
            platform, config, transform, workload.sector_variance,
            sample_quota,
            seed + static_cast<std::uint32_t>(s) * 7919u);
      });
  for (const auto& r : samples) {
    stats += r.stats;
    attempts += r.attempts;
    accepted += r.accepted;
  }
  const double sampled_outputs =
      static_cast<double>(sample_partitions) * platform.width * sample_quota;
  const double slots_per_output = stats.issued_slots / sampled_outputs;

  // --- scale to the full NDRange ---------------------------------------
  const double work_slots =
      slots_per_output * static_cast<double>(workload.total_outputs);

  // Work-group and global-size multipliers (Fig 5 models). The
  // global-size factor covers both device underutilization and the
  // per-work-item PRNG seeding overhead.
  const double wg = platform.work_group_factor(
      local_size, config.state_bytes_per_work_item());
  const double gs = platform.global_size_factor(
      workload.global_size, gamma_kernel_init_slots(platform, config),
      work_slots);
  const double slots_total = work_slots * wg * gs;

  RuntimeEstimate e;
  e.slots_total = slots_total;
  e.seconds = platform.slots_to_seconds(slots_total) +
              platform.launch_overhead_s;
  e.simd_efficiency = stats.simd_efficiency(platform.width);
  e.rejection_rate =
      attempts == 0 ? 0.0
                    : 1.0 - static_cast<double>(accepted) /
                                static_cast<double>(attempts);
  e.sampled_partitions = sample_partitions;
  e.slots_per_output = slots_per_output;
  return e;
}

}  // namespace dwi::simt
