// Operation classes and cost bundles for the lockstep (SIMT) execution
// model of the fixed-architecture accelerators.
//
// Why this exists: the paper's explanation for the FPGA's advantage
// (Fig 2) is that fixed architectures execute work-items in hardware
// partitions (warps / SIMD groups) and data-dependent branches force
// the partition to issue both branch sides while inactive lanes idle.
// To reproduce Table III's *shape* we therefore need an engine that
// charges instruction-issue slots per *region* of a kernel (once per
// partition, regardless of how many lanes are active) and tracks how
// many of those slots did useful work. OpBundle is the per-region cost
// vocabulary; OpCostTable holds a platform's per-class slot costs.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace dwi::simt {

/// Instruction classes with materially different costs on the paper's
/// platforms. Kept deliberately coarse: the model targets ratios
/// between configurations, not cycle-accurate CPU simulation.
enum class OpClass : unsigned {
  kIntAlu = 0,   ///< integer add/shift/mask (Mersenne-Twister body)
  kFloatAdd,     ///< FP add/sub/compare
  kFloatMul,     ///< FP multiply / FMA
  kFloatDiv,     ///< FP divide
  kSqrt,         ///< square root
  kLog,          ///< natural logarithm
  kExp,          ///< exponential
  kPow,          ///< powf (the α<1 correction) ≈ log + mul + exp
  kTableLookup,  ///< indexed constant-table load (segmented ICDF)
  kMemStore,     ///< global-memory store of one output
  kLoopCtl,      ///< loop bookkeeping per iteration
  kStateSpill,   ///< PRNG state access once it exceeds fast private
                 ///< storage (registers/L1) — the mechanism behind the
                 ///< Config1→Config2 speedups on GPU/PHI (Table III)
  kCount,
};

constexpr std::size_t kNumOpClasses = static_cast<std::size_t>(OpClass::kCount);

const char* to_string(OpClass c);

/// A multiset of operations executed by one region of a kernel, per lane.
struct OpBundle {
  std::array<std::uint32_t, kNumOpClasses> counts{};

  OpBundle& add(OpClass c, std::uint32_t n = 1) {
    counts[static_cast<std::size_t>(c)] += n;
    return *this;
  }
  std::uint32_t count(OpClass c) const {
    return counts[static_cast<std::size_t>(c)];
  }
  OpBundle operator+(const OpBundle& o) const {
    OpBundle r = *this;
    for (std::size_t i = 0; i < kNumOpClasses; ++i) r.counts[i] += o.counts[i];
    return r;
  }
};

/// Per-platform issue-slot costs of each operation class.
struct OpCostTable {
  std::array<double, kNumOpClasses> slots{};

  double cost(OpClass c) const { return slots[static_cast<std::size_t>(c)]; }
  double cost(const OpBundle& b) const {
    double total = 0.0;
    for (std::size_t i = 0; i < kNumOpClasses; ++i) {
      total += slots[i] * b.counts[i];
    }
    return total;
  }
};

/// Canonical op bundles for the kernels' building blocks, so that every
/// engine (SIMT and the FPGA resource model) agrees on what one step of
/// each algorithm "is".
namespace bundles {

/// One Mersenne-Twister output: twist (conditional xor, shifts, masks)
/// amortized + 4 tempering xors/shifts.
OpBundle mersenne_twister_step();

/// Marsaglia-Bray geometry: 2 uniforms → v1, v2, s and the accept test.
OpBundle marsaglia_bray_setup();

/// Marsaglia-Bray accepted-path finish: log, divide, sqrt, multiply.
OpBundle marsaglia_bray_finish();

/// CUDA-style ICDF: log, sqrt (tail only, amortized), polynomial.
OpBundle icdf_cuda();

/// Bit-level segmented ICDF, executed with 32-bit integer ops on fixed
/// architectures (§II-D3 explains why this is slow there): LZD emulation,
/// masks/shifts, table lookups, fixed-point MACs.
OpBundle icdf_bitwise_fixed_arch();

/// Gamma candidate: cube, squeeze test.
OpBundle gamma_candidate();

/// Gamma exact test (squeeze failed): two logs and arithmetic.
OpBundle gamma_exact_test();

/// α<1 correction: one powf and a multiply.
OpBundle gamma_correction();

/// Output store + counter bookkeeping.
OpBundle output_store();

/// Per-iteration loop control.
OpBundle loop_control();

}  // namespace bundles

}  // namespace dwi::simt
