// Converts lockstep simulation of a *sample* of partitions into the
// full NDRange kernel runtime for a fixed-architecture platform —
// the quantity Table III reports for CPU / GPU / PHI.
//
// Scaling argument (DESIGN.md §5): after its first few iterations the
// kernel is in steady state, so issued slots grow linearly in the
// per-lane quota. We simulate a handful of partitions with a reduced
// quota, take the mean slots per produced output, and scale to the
// paper's 629M outputs. Under-filled tails, one-time PRNG seeding,
// work-group and global-size effects are added analytically.
#pragma once

#include <cstdint>

#include "rng/configs.h"
#include "simt/gamma_kernel.h"
#include "simt/platform.h"

namespace dwi::simt {

/// The NDRange workload of §IV-B.
struct NdRangeWorkload {
  std::uint64_t total_outputs = 2'621'440ull * 240ull;
  std::uint64_t global_size = 65'536;
  unsigned local_size = 0;  ///< 0 = the platform's Fig 5a optimum
  float sector_variance = 1.39f;
};

struct RuntimeEstimate {
  double seconds = 0.0;
  double slots_total = 0.0;
  double simd_efficiency = 1.0;     ///< useful / issued lane-slots
  double rejection_rate = 0.0;      ///< measured in the simulated sample
  double sampled_partitions = 0.0;
  double slots_per_output = 0.0;
};

/// Estimate the kernel runtime of `config` on `platform`.
/// `transform` usually comes from config.fixed_arch_transform; pass
/// kIcdfBitwise explicitly for Table III's "ICDF FPGA-style" rows.
/// `sample_partitions` × `sample_quota` control simulation effort.
RuntimeEstimate estimate_runtime(const PlatformModel& platform,
                                 const rng::AppConfig& config,
                                 rng::NormalTransform transform,
                                 const NdRangeWorkload& workload,
                                 unsigned sample_partitions = 4,
                                 std::uint32_t sample_quota = 400,
                                 std::uint32_t seed = 1);

}  // namespace dwi::simt
