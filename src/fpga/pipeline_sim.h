// Cycle-level model of CO-RESIDENT kernels chained by inter-kernel
// pipes — the device-side counterpart of hls::Pipe and the
// finance/pipeline execution mode, and the multi-kernel generalization
// of kernel_sim.h (which models N *identical* decoupled work-items
// behind one channel; here the stages are *heterogeneous* and
// dependent, the OpenCL-pipes / Intel-channels topology of the MKPipe
// line of work).
//
// Each stage is one pipelined kernel: it launches an initiation every
// II cycles when a token is available on its input pipe, carries it
// through `latency` pipeline cycles, and emits a result token with
// probability `acceptance` (rejection stages filter the token stream —
// the data-dependent production of the paper's Listing 2, moved across
// a kernel boundary). Pipes are depth-bounded FIFOs with registered
// handoff (a token written in cycle c is readable in cycle c+1):
//
//   * output pipe full at emission time  → the stage FREEZES this
//     cycle (classic HLS pipeline stall; backpressure propagates
//     upstream stage by stage) — counted in full_stalls;
//   * input pipe empty at initiation time → the stage inserts a bubble
//     — counted in empty_stalls (starvation).
//
// The final stage drains into a transfer collector that packs 16
// floats per 512-bit beat and bursts through the shared MemoryChannel
// (double-buffered, as in Listing 4), so the sink sees the same memory
// bottleneck as kernel_sim. The run ends when the quota has been
// burst to memory.
//
// The steady-state sink throughput is bounded by the slowest stage in
// token terms — min over stages of acceptance_s/II_s scaled by the
// downstream acceptance product — and by the channel's burst
// efficiency; analytic_sink_rate() computes the bound, and
// tests/test_pipeline.cpp checks the simulator converges to it and
// that deepening pipes is monotonically non-slower.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/memory_channel.h"

namespace dwi::fpga {

/// One resident kernel in the chain.
struct PipelineStageConfig {
  std::string name;
  unsigned initiation_interval = 1;  ///< II of the stage's main loop
  unsigned latency = 10;             ///< datapath depth in cycles
  /// Probability an initiation emits a token (1.0 = pure map; the
  /// Marsaglia-Tsang rejection stage is ~0.95 given a valid normal).
  double acceptance = 1.0;
  std::uint32_t seed = 1;  ///< for the acceptance draws (deterministic)
};

struct PipelineSimConfig {
  /// stages[0] is the source (unlimited input); the last stage feeds
  /// the memory collector.
  std::vector<PipelineStageConfig> stages;
  std::size_t pipe_depth = 8;        ///< depth of every inter-stage pipe
  std::uint64_t outputs = 100'000;   ///< floats the sink must commit
  unsigned burst_beats = 16;         ///< beats per burst (16 floats/beat)
  MemoryChannelConfig channel{};
};

struct PipelineStageStats {
  std::string name;
  std::uint64_t initiations = 0;
  std::uint64_t tokens_out = 0;
  std::uint64_t full_stalls = 0;   ///< cycles frozen on a full output pipe
  std::uint64_t empty_stalls = 0;  ///< cycles starved on an empty input
};

struct PipelineSimResult {
  std::uint64_t cycles = 0;
  std::uint64_t outputs = 0;  ///< floats committed to memory
  std::vector<PipelineStageStats> stages;
  std::uint64_t bursts = 0;
  double channel_bytes_per_cycle = 0.0;

  /// Index of the stage with the most full+empty stall cycles — where
  /// to spend depth or II effort first (docs/PERF.md).
  std::size_t bottleneck_stage() const;
  double outputs_per_cycle() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(outputs) /
                             static_cast<double>(cycles);
  }
};

/// Run the chain to completion (quota burst to memory).
PipelineSimResult simulate_pipeline(const PipelineSimConfig& cfg);

/// Steady-state sink tokens/cycle bound: min over stages of the
/// stage-limited rate (acceptance_s / II_s x downstream acceptance
/// product) and the channel's burst-efficiency rate.
double analytic_sink_rate(const PipelineSimConfig& cfg);

}  // namespace dwi::fpga
