#include "fpga/pipeline_sim.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/error.h"

namespace dwi::fpga {

namespace {

constexpr std::size_t kFloatsPerBeat = 16;  // 512-bit beats

/// The BernoulliProducer LCG (kernel_sim.cpp), reused so stage
/// acceptance draws are deterministic and cheap.
struct AcceptDraw {
  std::uint32_t threshold;
  std::uint64_t state;

  AcceptDraw(double acceptance, std::uint32_t seed)
      : threshold(static_cast<std::uint32_t>(
            acceptance >= 1.0
                ? 0xffffffffu
                : acceptance * 4294967296.0)),
        state(seed | 1u) {}

  bool operator()() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 32) <= threshold;
  }
};

struct Stage {
  const PipelineStageConfig* cfg;
  AcceptDraw draw;
  std::vector<std::uint8_t> shift;  ///< in-flight slots, [0]=newest
  unsigned ii_countdown = 0;
  PipelineStageStats stats;

  Stage(const PipelineStageConfig& c)
      : cfg(&c), draw(c.acceptance, c.seed), shift(c.latency, 0) {
    stats.name = c.name;
  }
};

/// Registered inter-stage FIFO: reads this cycle see only tokens
/// present at cycle start (`avail`); writes land in `pending` and
/// become visible next cycle. A read frees its slot for a same-cycle
/// write (first-word-fall-through on the write side).
struct SimPipe {
  std::size_t depth;
  std::size_t occ = 0;
  std::size_t avail = 0;    ///< readable this cycle (start-of-cycle occ)
  std::size_t pending = 0;  ///< written this cycle

  bool can_write() const { return occ + pending < depth; }
  void write() { ++pending; }
  bool can_read() const { return avail > 0; }
  void read() {
    --avail;
    --occ;
  }
  void begin_cycle() { avail = occ; }
  void end_cycle() {
    occ += pending;
    pending = 0;
  }
};

}  // namespace

std::size_t PipelineSimResult::bottleneck_stage() const {
  std::size_t worst = 0;
  std::uint64_t worst_stalls = 0;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const std::uint64_t stalls =
        stages[s].full_stalls + stages[s].empty_stalls;
    if (stalls > worst_stalls) {
      worst_stalls = stalls;
      worst = s;
    }
  }
  return worst;
}

PipelineSimResult simulate_pipeline(const PipelineSimConfig& cfg) {
  DWI_REQUIRE(!cfg.stages.empty(), "pipeline sim: need at least one stage");
  DWI_REQUIRE(cfg.pipe_depth >= 1, "pipeline sim: pipe depth must be >= 1");
  DWI_REQUIRE(cfg.outputs >= 1, "pipeline sim: need a quota");
  DWI_REQUIRE(cfg.burst_beats >= 1, "pipeline sim: need a burst size");
  for (const auto& s : cfg.stages) {
    DWI_REQUIRE(s.initiation_interval >= 1, "pipeline sim: II must be >= 1");
    DWI_REQUIRE(s.latency >= 1, "pipeline sim: latency must be >= 1");
    DWI_REQUIRE(s.acceptance > 0.0 && s.acceptance <= 1.0,
                "pipeline sim: acceptance must be in (0, 1]");
  }

  const std::size_t n = cfg.stages.size();
  std::vector<Stage> stages;
  stages.reserve(n);
  for (const auto& c : cfg.stages) stages.emplace_back(c);
  // pipes[s] is stage s's OUTPUT pipe; the last one feeds the
  // collector. Stage 0 has an unlimited source on its input side.
  std::vector<SimPipe> pipes(n);
  for (auto& p : pipes) p.depth = cfg.pipe_depth;

  MemoryChannel channel(cfg.channel);
  const std::size_t burst_floats = cfg.burst_beats * kFloatsPerBeat;
  // Double-buffered collector (Listing 4): one burst in flight while
  // the next fills.
  std::size_t buffer_floats = 0;
  std::size_t inflight_floats = 0;
  bool inflight = false;
  std::uint64_t collected = 0;  ///< floats taken off the last pipe
  std::uint64_t committed = 0;  ///< floats whose burst completed

  std::uint64_t cycle = 0;
  while (committed < cfg.outputs) {
    ++cycle;
    for (auto& p : pipes) p.begin_cycle();

    channel.tick();
    if (inflight && channel.burst_done(0)) {
      committed += inflight_floats;
      inflight = false;
      inflight_floats = 0;
    }

    // Collector: drain one float per cycle from the last pipe while
    // quota remains and the staging buffer has room.
    if (collected < cfg.outputs && pipes[n - 1].can_read() &&
        buffer_floats < 2 * burst_floats) {
      pipes[n - 1].read();
      ++buffer_floats;
      ++collected;
    }
    if (!inflight && channel.can_accept()) {
      if (buffer_floats >= burst_floats) {
        const bool ok = channel.request_burst(0, cfg.burst_beats);
        DWI_ASSERT(ok);
        buffer_floats -= burst_floats;
        inflight_floats = burst_floats;
        inflight = true;
      } else if (collected >= cfg.outputs && buffer_floats > 0) {
        // Final partial burst once the quota is fully collected.
        const auto beats = static_cast<unsigned>(
            (buffer_floats + kFloatsPerBeat - 1) / kFloatsPerBeat);
        const bool ok = channel.request_burst(0, beats);
        DWI_ASSERT(ok);
        inflight_floats = buffer_floats;
        buffer_floats = 0;
        inflight = true;
      }
    }

    // Stages: emission first — a full output pipe freezes the whole
    // stage this cycle (no shift, no initiation).
    for (std::size_t s = 0; s < n; ++s) {
      Stage& st = stages[s];
      const unsigned latency = st.cfg->latency;
      if (st.shift[latency - 1] != 0 && !pipes[s].can_write()) {
        ++st.stats.full_stalls;
        continue;  // frozen
      }
      if (st.shift[latency - 1] != 0) {
        pipes[s].write();
        ++st.stats.tokens_out;
      }
      for (std::size_t i = latency - 1; i > 0; --i) {
        st.shift[i] = st.shift[i - 1];
      }
      if (st.ii_countdown > 0) {
        --st.ii_countdown;
        st.shift[0] = 0;
      } else if (s == 0 || pipes[s - 1].can_read()) {
        if (s > 0) pipes[s - 1].read();
        ++st.stats.initiations;
        st.shift[0] = st.draw() ? 1 : 0;
        st.ii_countdown = st.cfg->initiation_interval - 1;
      } else {
        st.shift[0] = 0;
        ++st.stats.empty_stalls;  // starved: II slot open, input empty
      }
    }

    for (auto& p : pipes) p.end_cycle();
  }

  PipelineSimResult result;
  result.cycles = cycle;
  result.outputs = committed;
  result.stages.reserve(n);
  for (const auto& st : stages) result.stages.push_back(st.stats);
  result.bursts = channel.bursts_served();
  result.channel_bytes_per_cycle = channel.bytes_per_cycle();
  return result;
}

double analytic_sink_rate(const PipelineSimConfig& cfg) {
  DWI_REQUIRE(!cfg.stages.empty(), "pipeline sim: need at least one stage");
  // Downstream acceptance products: tokens surviving from stage s's
  // output to the sink.
  double rate = 16.0 * static_cast<double>(cfg.burst_beats) /
                static_cast<double>(cfg.channel.turnaround_cycles +
                                    cfg.burst_beats);
  double downstream = 1.0;
  for (std::size_t s = cfg.stages.size(); s-- > 0;) {
    const auto& st = cfg.stages[s];
    rate = std::min(rate, st.acceptance * downstream /
                              static_cast<double>(st.initiation_interval));
    downstream *= st.acceptance;
  }
  return rate;
}

}  // namespace dwi::fpga
