// Cycle-level model of the single device-global-memory channel the
// decoupled work-items share (Fig 3: transfers are serialized on one
// channel and interleave with computation).
//
// A burst of B beats (one beat = the full 512-bit interface = 16
// floats) occupies the channel for `turnaround + B` cycles: the
// turnaround covers AXI address handshake, datamover setup and DDR
// bank overhead of the SDAccel 2015.4 memory subsystem. The constant
// is calibrated so the transfers-only bandwidth matches the paper's
// measured 3.58–3.94 GB/s (§IV-E, Fig 7) against the 12.8 GB/s raw
// interface peak — the paper itself notes that "further customizations
// of the memory controller inside the tool would improve the
// performance".
//
// Requests queue FIFO; the channel serves one burst at a time, which
// is exactly what shifts the work-items apart in time in Fig 3.
#pragma once

#include <cstdint>

#include "common/error.h"
#include "common/ring_buffer.h"

namespace dwi::fpga {

struct MemoryChannelConfig {
  unsigned turnaround_cycles = 41;  ///< per-burst fixed overhead (calibrated)
  std::size_t queue_depth = 64;     ///< outstanding burst requests
  /// Optional DRAM refresh modeling (off by default: the calibrated
  /// turnaround already absorbs the time-averaged refresh cost). When
  /// enabled, the channel blocks for `refresh_cycles` every
  /// `refresh_interval_cycles` (DDR3 at 200 MHz: tREFI ≈ 7.8 µs = 1560
  /// cycles, tRFC ≈ 350 ns = 70 cycles → ~4.3 % of raw bandwidth —
  /// one identifiable slice of the 12.8 → 3.9 GB/s gap).
  unsigned refresh_interval_cycles = 0;  ///< 0 = disabled
  unsigned refresh_cycles = 70;
};

class MemoryChannel {
 public:
  explicit MemoryChannel(MemoryChannelConfig cfg = {});

  /// Enqueue a burst of `beats` full-width beats for `requester`.
  /// Returns false when the request queue is full (caller retries).
  bool request_burst(unsigned requester, unsigned beats);

  /// Advance one clock cycle. Inline: the kernel cycle loop calls this
  /// (and the queries below) once per simulated cycle per channel.
  void tick() {
    ++cycle_;
    // DRAM refresh: the channel is dead for refresh_cycles at every
    // interval boundary; an in-flight burst is stretched by pushing
    // its finish time out.
    if (cfg_.refresh_interval_cycles != 0 &&
        cycle_ % cfg_.refresh_interval_cycles == 0) {
      refresh_until_ = cycle_ + cfg_.refresh_cycles;
      if (in_flight_) finish_cycle_ += cfg_.refresh_cycles;
    }
    if (cycle_ < refresh_until_) {
      if (in_flight_) ++busy_cycles_;
      return;
    }
    if (!in_flight_ && !queue_.empty()) {
      current_ = queue_.pop();
      in_flight_ = true;
      // The dequeuing tick is the first busy cycle, so the burst
      // completes after turnaround + beats ticks in total.
      finish_cycle_ = cycle_ + cfg_.turnaround_cycles + current_.beats - 1;
    }
    if (in_flight_) {
      ++busy_cycles_;
      if (cycle_ >= finish_cycle_) {
        beats_transferred_ += current_.beats;
        data_cycles_ += current_.beats;
        ++bursts_served_;
        done_mask_ |= std::uint64_t{1} << current_.requester;
        in_flight_ = false;
      }
    }
  }

  /// Cycle-skipping support: how many consecutive tick()s from the
  /// current state are pure countdowns — no dequeue, no burst
  /// completion, no unconsumed completion flag, no refresh-boundary
  /// crossing. advance(k) for any k <= skippable_ticks() is
  /// bit-identical to k tick() calls. Returns kInfiniteTicks when the
  /// channel is fully idle (nothing ever happens without a new
  /// request).
  std::uint64_t skippable_ticks() const {
    // A completion flag someone has not consumed yet makes the very
    // next cycle an event (the owning transfer unit will clear it).
    if (done_mask_ != 0) return 0;
    std::uint64_t safe = kInfiniteTicks;
    if (in_flight_) {
      // The tick where cycle_ reaches finish_cycle_ completes the
      // burst (and during a refresh window the finish has already been
      // pushed past the window), so everything before it is countdown.
      safe = finish_cycle_ - cycle_ - 1;
    } else if (!queue_.empty()) {
      // Next non-refresh tick dequeues; refresh ticks are pure waits.
      safe = cycle_ < refresh_until_ ? refresh_until_ - cycle_ - 1 : 0;
    }
    if (cfg_.refresh_interval_cycles != 0) {
      // The tick landing on an interval boundary mutates refresh state.
      const std::uint64_t to_boundary =
          cfg_.refresh_interval_cycles -
          (cycle_ % cfg_.refresh_interval_cycles);
      safe = safe < to_boundary - 1 ? safe : to_boundary - 1;
    }
    return safe;
  }

  /// Fast-forward `ticks` cycles at once; caller must ensure
  /// ticks <= skippable_ticks() (checked in debug builds).
  void advance(std::uint64_t ticks) {
    DWI_ASSERT(ticks <= skippable_ticks());
    // Replays exactly what `ticks` tick() calls would do on a
    // countdown stretch: the clock moves, an in-flight burst accrues
    // busy time, nothing else changes.
    cycle_ += ticks;
    if (in_flight_) busy_cycles_ += ticks;
  }

  /// True when request_burst would currently be accepted (queue not
  /// full) — a const query for the cycle-skip event scan.
  bool can_accept() const { return !queue_.full(); }

  static constexpr std::uint64_t kInfiniteTicks = ~std::uint64_t{0};

  /// True when `requester`'s burst finished this or an earlier cycle
  /// and has not been consumed yet.
  bool burst_done(unsigned requester) {
    const std::uint64_t bit = std::uint64_t{1} << requester;
    if (done_mask_ & bit) {
      done_mask_ &= ~bit;
      return true;
    }
    return false;
  }

  /// True when no burst is in flight or queued.
  bool idle() const { return !in_flight_ && queue_.empty(); }

  /// Requester id of the burst currently occupying the channel, or -1
  /// when idle — the Fig 3 schedule-visualization hook.
  int active_requester() const {
    return in_flight_ ? static_cast<int>(current_.requester) : -1;
  }

  // --- statistics ---------------------------------------------------------
  std::uint64_t cycles() const { return cycle_; }
  std::uint64_t busy_cycles() const { return busy_cycles_; }
  std::uint64_t data_cycles() const { return data_cycles_; }
  std::uint64_t beats_transferred() const { return beats_transferred_; }
  std::uint64_t bursts_served() const { return bursts_served_; }

  /// Achieved bandwidth in bytes per cycle (×clock = bytes/s).
  double bytes_per_cycle() const;

 private:
  struct Burst {
    unsigned requester;
    unsigned beats;
  };

  MemoryChannelConfig cfg_;
  RingBuffer<Burst> queue_;
  bool in_flight_ = false;
  Burst current_{0, 0};
  std::uint64_t finish_cycle_ = 0;
  std::uint64_t refresh_until_ = 0;
  std::uint64_t done_mask_ = 0;  ///< per-requester completion flags

  std::uint64_t cycle_ = 0;
  std::uint64_t busy_cycles_ = 0;
  std::uint64_t data_cycles_ = 0;
  std::uint64_t beats_transferred_ = 0;
  std::uint64_t bursts_served_ = 0;
};

}  // namespace dwi::fpga
