// Cycle-level model of the single device-global-memory channel the
// decoupled work-items share (Fig 3: transfers are serialized on one
// channel and interleave with computation).
//
// A burst of B beats (one beat = the full 512-bit interface = 16
// floats) occupies the channel for `turnaround + B` cycles: the
// turnaround covers AXI address handshake, datamover setup and DDR
// bank overhead of the SDAccel 2015.4 memory subsystem. The constant
// is calibrated so the transfers-only bandwidth matches the paper's
// measured 3.58–3.94 GB/s (§IV-E, Fig 7) against the 12.8 GB/s raw
// interface peak — the paper itself notes that "further customizations
// of the memory controller inside the tool would improve the
// performance".
//
// Requests queue FIFO; the channel serves one burst at a time, which
// is exactly what shifts the work-items apart in time in Fig 3.
#pragma once

#include <cstdint>

#include "common/error.h"
#include "common/ring_buffer.h"

namespace dwi::fpga {

struct MemoryChannelConfig {
  unsigned turnaround_cycles = 41;  ///< per-burst fixed overhead (calibrated)
  std::size_t queue_depth = 64;     ///< outstanding burst requests
  /// Optional DRAM refresh modeling (off by default: the calibrated
  /// turnaround already absorbs the time-averaged refresh cost). When
  /// enabled, the channel blocks for `refresh_cycles` every
  /// `refresh_interval_cycles` (DDR3 at 200 MHz: tREFI ≈ 7.8 µs = 1560
  /// cycles, tRFC ≈ 350 ns = 70 cycles → ~4.3 % of raw bandwidth —
  /// one identifiable slice of the 12.8 → 3.9 GB/s gap).
  unsigned refresh_interval_cycles = 0;  ///< 0 = disabled
  unsigned refresh_cycles = 70;
};

class MemoryChannel {
 public:
  explicit MemoryChannel(MemoryChannelConfig cfg = {});

  /// Enqueue a burst of `beats` full-width beats for `requester`.
  /// Returns false when the request queue is full (caller retries).
  bool request_burst(unsigned requester, unsigned beats);

  /// Advance one clock cycle.
  void tick();

  /// Cycle-skipping support: how many consecutive tick()s from the
  /// current state are pure countdowns — no dequeue, no burst
  /// completion, no unconsumed completion flag, no refresh-boundary
  /// crossing. advance(k) for any k <= skippable_ticks() is
  /// bit-identical to k tick() calls. Returns kInfiniteTicks when the
  /// channel is fully idle (nothing ever happens without a new
  /// request).
  std::uint64_t skippable_ticks() const;

  /// Fast-forward `ticks` cycles at once; caller must ensure
  /// ticks <= skippable_ticks() (checked in debug builds).
  void advance(std::uint64_t ticks);

  /// True when request_burst would currently be accepted (queue not
  /// full) — a const query for the cycle-skip event scan.
  bool can_accept() const { return !queue_.full(); }

  static constexpr std::uint64_t kInfiniteTicks = ~std::uint64_t{0};

  /// True when `requester`'s burst finished this or an earlier cycle
  /// and has not been consumed yet.
  bool burst_done(unsigned requester);

  /// True when no burst is in flight or queued.
  bool idle() const;

  /// Requester id of the burst currently occupying the channel, or -1
  /// when idle — the Fig 3 schedule-visualization hook.
  int active_requester() const {
    return in_flight_ ? static_cast<int>(current_.requester) : -1;
  }

  // --- statistics ---------------------------------------------------------
  std::uint64_t cycles() const { return cycle_; }
  std::uint64_t busy_cycles() const { return busy_cycles_; }
  std::uint64_t data_cycles() const { return data_cycles_; }
  std::uint64_t beats_transferred() const { return beats_transferred_; }
  std::uint64_t bursts_served() const { return bursts_served_; }

  /// Achieved bandwidth in bytes per cycle (×clock = bytes/s).
  double bytes_per_cycle() const;

 private:
  struct Burst {
    unsigned requester;
    unsigned beats;
  };

  MemoryChannelConfig cfg_;
  RingBuffer<Burst> queue_;
  bool in_flight_ = false;
  Burst current_{0, 0};
  std::uint64_t finish_cycle_ = 0;
  std::uint64_t refresh_until_ = 0;
  std::uint64_t done_mask_ = 0;  ///< per-requester completion flags

  std::uint64_t cycle_ = 0;
  std::uint64_t busy_cycles_ = 0;
  std::uint64_t data_cycles_ = 0;
  std::uint64_t beats_transferred_ = 0;
  std::uint64_t bursts_served_ = 0;
};

}  // namespace dwi::fpga
