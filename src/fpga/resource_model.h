// FPGA resource estimator reproducing Table II: post-place-and-route
// slice / DSP / BRAM utilization of the four configurations, and the
// paper's §IV-C methodology of growing the number of parallel
// work-items until place-and-route fails.
//
// The estimate is compositional: every hardware block of the design
// (Mersenne-Twister, the two normal transforms, the gamma datapath,
// the correction unit, the 512-bit transfer unit, the per-work-item
// AXI/datamover plumbing, and the PCIe/DDR static region) carries a
// LUT/FF/DSP/BRAM cost, calibrated so the N_max designs land on
// Table II (see EXPERIMENTS.md for achieved vs paper). Slices are
// derived from LUTs/FFs via the device packing model (4 LUT + 8 FF per
// slice, with an empirical packing efficiency).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/device.h"
#include "rng/configs.h"

namespace dwi::fpga {

/// Raw resource vector of one hardware block.
struct BlockResources {
  std::uint32_t luts = 0;
  std::uint32_t ffs = 0;
  std::uint32_t dsps = 0;
  std::uint32_t bram36 = 0;

  BlockResources operator+(const BlockResources& o) const {
    return {luts + o.luts, ffs + o.ffs, dsps + o.dsps, bram36 + o.bram36};
  }
  BlockResources operator*(std::uint32_t n) const {
    return {luts * n, ffs * n, dsps * n, bram36 * n};
  }
  BlockResources& operator+=(const BlockResources& o) {
    return *this = *this + o;
  }
};

/// The block library (one entry per distinct datapath block).
namespace blocks {
/// One Mersenne-Twister: twist/temper logic plus state storage; the
/// state maps to BRAM when it exceeds the distributed-RAM threshold
/// (MT19937's 624 words do, MT521's 17 words do not).
BlockResources mersenne_twister(unsigned state_words);
/// Marsaglia-Bray: 2× uint2float, polar arithmetic, log/sqrt/divide.
BlockResources marsaglia_bray_unit();
/// Bit-level segmented ICDF: LZD, coefficient ROM, 2 fixed-point MACs.
BlockResources icdf_bitwise_unit();
/// Box-Muller (§II-D2's well-known alternative): sinf/cosf cores plus
/// log/sqrt — the trigonometric cost the paper avoids. Used by the
/// transform ablation only.
BlockResources box_muller_unit();
/// Gamma candidate + squeeze + exact test (cube, x⁴, two logs).
BlockResources gamma_unit();
/// α<1 correction: powf = log+exp+mul.
BlockResources correction_unit();
/// Listing 4: 16-float packer, LTRANSF-word burst buffer, memcpy FSM.
BlockResources transfer_unit();
/// hls::stream FIFO between GammaRNG and Transfer.
BlockResources stream_fifo();
/// Per-work-item share of the OCL-region AXI datamover / interconnect
/// (512-bit wide, heavily BRAM-buffered — this is why Table II's BRAM
/// is insensitive to the MT state size).
BlockResources axi_plumbing_per_work_item();
/// PCIe + DDR controller static region (Table II footnote 1).
BlockResources static_region();
}  // namespace blocks

/// Utilization report of one configuration at a work-item count.
struct UtilizationReport {
  std::string config_name;
  unsigned work_items = 0;
  BlockResources total;      ///< including the static region
  double slice_util = 0.0;   ///< fraction of device slices
  double dsp_util = 0.0;
  double bram_util = 0.0;
  bool routable = false;     ///< within the P&R ceiling
};

/// Estimate resources of `config` with `work_items` parallel pipelines.
UtilizationReport estimate_utilization(const DeviceSpec& dev,
                                       const rng::AppConfig& config,
                                       unsigned work_items);

/// A tunable design point: the §IV-C work-item count plus the two
/// depth knobs a re-synthesis would actually change — the
/// GammaRNG→Transfer FIFO depth and the burst-buffer length (LTRANSF).
/// Deeper FIFOs and longer bursts buy throughput at a BRAM (and a
/// little control-logic) cost; the autotuner (src/tune) prunes points
/// whose extra storage no longer fits the device. At the calibrated
/// defaults (depth 64, any burst whose double buffer fits the
/// transfer_unit() budget) the estimate is IDENTICAL to the Table II
/// path above — tests/test_tune.cpp pins this.
struct DesignPoint {
  unsigned work_items = 1;
  std::size_t stream_depth = 64;
  unsigned burst_beats = 16;
};

/// Extra storage of a stream FIFO deepened beyond the calibrated
/// default and of a burst double-buffer lengthened beyond the
/// calibrated LTRANSF — the deltas estimate_utilization(DesignPoint)
/// adds per work-item (zero at or below the defaults).
BlockResources stream_fifo_extra(std::size_t stream_depth);
BlockResources transfer_unit_extra(unsigned burst_beats);

UtilizationReport estimate_utilization(const DeviceSpec& dev,
                                       const rng::AppConfig& config,
                                       const DesignPoint& point);

/// §IV-C methodology: grow the work-item count until P&R fails; returns
/// the last routable count (paper: 6 for Config1/2, 8 for Config3/4).
unsigned max_work_items(const DeviceSpec& dev, const rng::AppConfig& config);

/// Ablation variants: utilization / max work-items for an arbitrary
/// uniform-to-normal transform (e.g. Box-Muller, which no Table I
/// configuration uses) with the given twister parameters.
UtilizationReport estimate_utilization_transform(
    const DeviceSpec& dev, rng::NormalTransform transform,
    const rng::MtParams& mt, unsigned work_items);
unsigned max_work_items_transform(const DeviceSpec& dev,
                                  rng::NormalTransform transform,
                                  const rng::MtParams& mt);

/// Slices implied by LUT/FF counts under the packing model.
std::uint32_t slices_from_luts_ffs(std::uint32_t luts, std::uint32_t ffs);

}  // namespace dwi::fpga
