// Modulo-scheduling model of the Vivado HLS pipeline scheduler: given
// a loop body as a dependence graph of operations (with latencies and
// inter-iteration dependence distances), derive the minimum initiation
// interval the pipeline can sustain.
//
// This is the machinery that makes the paper's Listing 2 story
// *derivable* instead of asserted: the dynamically-modified loop exit
// creates a recurrence (increment → compare → exit-select → next
// iteration's increment) whose total latency exceeds one cycle, so
// RecMII > 1; the delayed-counter workaround raises the dependence
// distance of that cycle (the comparison reads a value written
// breakId+1 iterations earlier), and RecMII = ceil(latency / distance)
// drops back to 1.
//
// Standard theory (Rau): MII = max(RecMII, ResMII).
//   * RecMII: the smallest II for which the constraint system
//       start(v) ≥ start(u) + latency(u) − II·distance(u→v)
//     has no positive cycle — found by testing candidate IIs with a
//     Bellman-Ford positive-cycle check (graphs here are tiny).
//   * ResMII: ⌈uses of each resource class / available instances⌉.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dwi::fpga {

class DependenceGraph {
 public:
  using OpId = std::size_t;

  /// Add an operation with `latency` cycles; `resource` names the
  /// hardware class it occupies each initiation ("" = fully pipelined
  /// dedicated hardware, never a ResMII constraint).
  OpId add_operation(std::string name, unsigned latency,
                     std::string resource = {});

  /// Add a dependence `from → to` with inter-iteration `distance`
  /// (0 = same iteration; k = `to` consumes the value `from` produced
  /// k iterations earlier).
  void add_dependence(OpId from, OpId to, unsigned distance = 0);

  std::size_t operation_count() const { return ops_.size(); }
  const std::string& operation_name(OpId id) const { return ops_[id].name; }

  /// Recurrence-constrained minimum II.
  unsigned recurrence_mii() const;

  /// Resource-constrained minimum II given instance counts per class
  /// (classes not listed are assumed unlimited).
  unsigned resource_mii(
      const std::map<std::string, unsigned>& available) const;

  /// MII = max(RecMII, ResMII, 1).
  unsigned min_initiation_interval(
      const std::map<std::string, unsigned>& available = {}) const;

  /// True when the constraint system admits a schedule at `ii`
  /// (no positive-weight cycle).
  bool feasible_at(unsigned ii) const;

  /// A valid ASAP modulo schedule at `ii` (start cycle per op);
  /// requires feasible_at(ii).
  std::vector<unsigned> schedule_at(unsigned ii) const;

  /// Total latency of the scheduled body (pipeline depth).
  unsigned depth_at(unsigned ii) const;

 private:
  struct Op {
    std::string name;
    unsigned latency;
    std::string resource;
  };
  struct Edge {
    OpId from, to;
    unsigned distance;
  };

  std::vector<Op> ops_;
  std::vector<Edge> edges_;
};

/// Build the dependence graph of Listing 2's MAINLOOP body:
/// the datapath chain (twisters → transform → rejection → correction →
/// guarded write) plus the loop-control recurrence. `counter_delay` is
/// the dependence distance of the exit comparison (1 = naive counter,
/// breakId+2 = delayed by the shift register); `uses_marsaglia_bray`
/// selects the normal-transform stage.
DependenceGraph gamma_mainloop_graph(unsigned counter_delay,
                                     bool uses_marsaglia_bray);

/// Build the dependence graph of an INTER-KERNEL chain: one operation
/// per resident kernel (latency = its pipeline depth), forward
/// dependences carrying tokens through the connecting pipes
/// (distance 0), and for each pipe a backward dependence
/// consumer → producer with distance = `pipe_depth` — a depth-D FIFO
/// lets the producer run at most D tokens ahead, so its (n+D)-th write
/// waits on the consumer's n-th read. The same modulo-scheduling
/// machinery that derives Listing 2's delayed-counter II then derives
/// the chain's sustainable II: RecMII ≈ ceil((lat_p + lat_c) / D) over
/// adjacent pairs, i.e. shallow pipes between deep kernels throttle
/// the whole chain exactly as fpga::simulate_pipeline measures
/// (docs/PERF.md, depth tuning).
DependenceGraph inter_kernel_chain_graph(
    const std::vector<unsigned>& stage_latencies, unsigned pipe_depth);

}  // namespace dwi::fpga
