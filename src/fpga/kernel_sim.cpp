#include "fpga/kernel_sim.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/bits.h"
#include "common/error.h"
#include "common/ring_buffer.h"
#include "exec/parallel_for.h"

namespace dwi::fpga {

BernoulliProducer::BernoulliProducer(double acceptance, std::uint32_t seed)
    : threshold_(static_cast<std::uint32_t>(
          acceptance >= 1.0 ? 0xffffffffu
                            : acceptance * 4294967296.0)),
      state_(seed | 1u) {
  DWI_REQUIRE(acceptance >= 0.0 && acceptance <= 1.0,
              "acceptance must be a probability");
}

bool BernoulliProducer::produce(float* value) {
  // xorshift64*: cheap, good enough for timing experiments.
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  const auto r = static_cast<std::uint32_t>((state_ * 2685821657736338717ull) >> 32);
  *value = uint2float(r);
  return r <= threshold_;
}

namespace {

/// Per-work-item simulation state.
struct WorkItem {
  std::unique_ptr<ProducerModel> producer;

  // Compute side.
  std::uint64_t produced = 0;        ///< accepted outputs emitted
  unsigned ii_countdown = 0;         ///< cycles until next initiation
  bool pending_emit = false;         ///< output waiting for FIFO space
  float pending_value = 0.0f;

  // gammaStream FIFO (occupancy model; values flow through `fifo`).
  RingBuffer<float> fifo;

  // Transfer unit.
  unsigned floats_in_beat = 0;       ///< packer fill (0..15)
  unsigned beats_collected = 0;      ///< beats in the burst buffer
  bool burst_pending = false;        ///< one outstanding burst
  std::uint64_t floats_transferred = 0;

  explicit WorkItem(std::size_t depth) : fifo(depth) {}
};

/// Recorded outcome stream of one work-item's compute pipeline: the
/// accept/reject bit of every initiation plus the accepted values, in
/// order. A work-item's produce() sequence is schedule-independent
/// (FIFO stalls delay initiations without reordering them), so the
/// tape captured in isolation replays exactly inside the cycle loop.
struct PrerunTape {
  std::vector<std::uint8_t> accepted;
  std::vector<float> values;
};

PrerunTape prerun_work_item(ProducerModel& producer, std::uint64_t quota) {
  PrerunTape tape;
  tape.values.reserve(quota);
  while (tape.values.size() < quota) {
    float value = 0.0f;
    const bool ok = producer.produce(&value);
    tape.accepted.push_back(ok ? 1 : 0);
    if (ok) tape.values.push_back(value);
    // Runaway guard, mirroring the cycle-loop's: a producer that can
    // never meet its quota must not spin forever.
    DWI_ASSERT(tape.accepted.size() < (std::uint64_t{1} << 40));
  }
  return tape;
}

class ReplayProducer final : public ProducerModel {
 public:
  explicit ReplayProducer(const PrerunTape& tape) : tape_(&tape) {}

  bool produce(float* value) override {
    DWI_ASSERT(attempt_ < tape_->accepted.size());
    const bool ok = tape_->accepted[attempt_++] != 0;
    if (ok) *value = tape_->values[output_++];
    return ok;
  }

 private:
  const PrerunTape* tape_;
  std::size_t attempt_ = 0;
  std::size_t output_ = 0;
};

/// Prerun tapes above this per-work-item quota would hog memory
/// (~4 bytes + ~1.3 accept bytes per output); kAuto stays serial.
constexpr std::uint64_t kAutoTapeQuotaLimit = std::uint64_t{1} << 23;

/// The cycle-accurate scheduling loop — the sequential synchronization
/// point where the work-items meet the shared memory channel(s).
KernelSimResult run_schedule(const KernelSimConfig& cfg,
                             std::vector<WorkItem> wis) {
  const unsigned floats_per_beat = 16;  // 512-bit / fp32
  std::vector<MemoryChannel> channels;
  channels.reserve(cfg.memory_channels);
  for (unsigned c = 0; c < cfg.memory_channels; ++c) {
    channels.emplace_back(cfg.channel);
  }
  // Work-item → channel is a fixed round-robin assignment; resolve it
  // once instead of dividing inside the cycle loop (twice per
  // work-item per simulated cycle).
  std::vector<unsigned> channel_index(wis.size());
  for (std::size_t wid = 0; wid < wis.size(); ++wid) {
    channel_index[wid] = static_cast<unsigned>(wid % cfg.memory_channels);
  }
  auto channel_of = [&](std::size_t wid) -> MemoryChannel& {
    return channels[channel_index[wid]];
  };

  KernelSimResult result;
  if (cfg.record_outputs) {
    result.outputs_data.reserve(cfg.work_items *
                                cfg.outputs_per_work_item);
  }
  if (cfg.trace != nullptr) {
    cfg.trace->work_items.assign(cfg.work_items, std::string());
    cfg.trace->channel.clear();
  }

  const std::uint64_t total_floats_per_wi = cfg.outputs_per_work_item;

  // --- cycle-skipping fast-forward ------------------------------------
  // A cycle is an *event* cycle when some pipeline changes occupancy
  // state: an initiation fires, a FIFO drains, a stalled emit could
  // succeed, a tail beat pads, a burst issues, or a channel dequeues /
  // completes / crosses a refresh boundary. Between events every state
  // element is a pure countdown (II counters, in-flight burst timers),
  // so the stretch can be applied in one step: countdowns decrease by
  // k, stall counters and traces extend by k, the clock advances by k.
  // The scan is conservative — anything it cannot prove event-free
  // falls through to the stepped loop — and short-circuits on the
  // first active pipeline, so steady-compute workloads pay one check
  // against work-item 0 per cycle.
  const auto skippable_cycles = [&](std::vector<WorkItem>& items,
                                    std::vector<MemoryChannel>& chans)
      -> std::uint64_t {
    std::uint64_t skip = MemoryChannel::kInfiniteTicks;
    for (const auto& ch : chans) {
      skip = std::min(skip, ch.skippable_ticks());
      if (skip == 0) return 0;
    }
    for (auto& wi : items) {
      const auto wid = static_cast<std::size_t>(&wi - items.data());
      if (wi.produced < total_floats_per_wi || wi.pending_emit) {
        if (wi.pending_emit) {
          // Deterministic 'S' retry-and-fail only while the FIFO stays
          // full; a successful retry is an event.
          if (!wi.fifo.full()) return 0;
        } else if (wi.ii_countdown == 0) {
          return 0;  // initiation fires this cycle
        } else {
          skip = std::min(skip,
                          static_cast<std::uint64_t>(wi.ii_countdown));
        }
      }
      const bool buffer_space =
          cfg.transfer_double_buffered
              ? (wi.beats_collected < cfg.burst_beats ||
                 (!wi.burst_pending &&
                  wi.beats_collected < 2 * cfg.burst_beats))
              : (!wi.burst_pending &&
                 wi.beats_collected < cfg.burst_beats);
      if (buffer_space && !wi.fifo.empty()) return 0;  // drain
      const bool wi_done = wi.produced >= total_floats_per_wi &&
                           !wi.pending_emit && wi.fifo.empty();
      if (wi_done && wi.floats_in_beat > 0) return 0;  // tail pad
      if (!wi.burst_pending) {
        const bool burst_ready =
            wi.beats_collected >= cfg.burst_beats ||
            (wi_done && wi.beats_collected > 0);
        if (burst_ready && channel_of(wid).can_accept()) return 0;
      }
    }
    return skip;
  };

  std::uint64_t cycle = 0;
  for (;;) {
    if (cfg.cycle_skipping) {
      const std::uint64_t skip = skippable_cycles(wis, channels);
      if (skip > 0 && skip != MemoryChannel::kInfiniteTicks) {
        for (auto& wi : wis) {
          char trace_state = '.';
          if (wi.produced < total_floats_per_wi || wi.pending_emit) {
            if (wi.pending_emit) {
              trace_state = 'S';
              result.compute_stall_cycles += skip;
            } else {
              trace_state = '-';
              wi.ii_countdown -= static_cast<unsigned>(skip);
            }
          }
          if (cfg.trace != nullptr) {
            cfg.trace
                ->work_items[static_cast<std::size_t>(&wi - wis.data())]
                .append(static_cast<std::size_t>(skip), trace_state);
          }
        }
        for (auto& ch : channels) ch.advance(skip);
        if (cfg.trace != nullptr) {
          const int req = channels[0].active_requester();
          cfg.trace->channel.append(
              static_cast<std::size_t>(skip),
              req < 0 ? '.' : static_cast<char>('0' + req % 10));
        }
        cycle += skip;
        DWI_ASSERT(cycle < (std::uint64_t{1} << 40));
        continue;
      }
    }

    bool all_done = true;

    for (auto& wi : wis) {
      char trace_state = '.';
      // ---- compute pipeline: one initiation every II cycles ----------
      if (wi.produced < total_floats_per_wi || wi.pending_emit) {
        all_done = false;
        if (wi.pending_emit) {
          // Stalled on a full FIFO: retry the emission (backpressure).
          trace_state = 'S';
          if (wi.fifo.try_push(wi.pending_value)) {
            wi.pending_emit = false;
            ++wi.produced;
          } else {
            ++result.compute_stall_cycles;
          }
        } else if (wi.ii_countdown == 0) {
          trace_state = 'C';
          ++result.attempts;
          float value = 0.0f;
          if (wi.producer->produce(&value)) {
            if (cfg.record_outputs) result.outputs_data.push_back(value);
            if (wi.fifo.try_push(value)) {
              ++wi.produced;
            } else {
              wi.pending_emit = true;
              wi.pending_value = value;
              ++result.compute_stall_cycles;
            }
          }
          wi.ii_countdown = cfg.initiation_interval - 1;
        } else {
          trace_state = '-';
          --wi.ii_countdown;
        }
      }
      if (cfg.trace != nullptr) {
        cfg.trace->work_items[static_cast<std::size_t>(&wi - wis.data())]
            .push_back(trace_state);
      }

      // ---- transfer unit: drain 1 float/cycle, pack, burst ------------
      // Double-buffered burst buffer (Listing 4's DEPENDENCE false):
      // collection continues while one burst is in flight, stalling
      // only when the second buffer is also full.
      const auto wid = static_cast<std::size_t>(&wi - wis.data());
      if (wi.burst_pending &&
          channel_of(wid).burst_done(static_cast<unsigned>(wid))) {
        wi.burst_pending = false;
      }
      const bool buffer_space =
          cfg.transfer_double_buffered
              ? (wi.beats_collected < cfg.burst_beats ||
                 (!wi.burst_pending &&
                  wi.beats_collected < 2 * cfg.burst_beats))
              : (!wi.burst_pending &&
                 wi.beats_collected < cfg.burst_beats);
      if (buffer_space && !wi.fifo.empty()) {
        (void)wi.fifo.pop();
        ++wi.floats_transferred;
        if (++wi.floats_in_beat == floats_per_beat) {
          wi.floats_in_beat = 0;
          ++wi.beats_collected;
        }
      }
      // Flush the tail: when the work-item is done and a partial beat
      // remains, pad it to a full beat (the paper's data sizes are
      // multiples of 16, so this only triggers in tests).
      const bool wi_done = wi.produced >= total_floats_per_wi &&
                           !wi.pending_emit && wi.fifo.empty();
      if (wi_done && wi.floats_in_beat > 0) {
        wi.floats_in_beat = 0;
        ++wi.beats_collected;
      }
      // Issue a burst when a full buffer is ready, or flush the tail.
      if (!wi.burst_pending) {
        unsigned beats = 0;
        if (wi.beats_collected >= cfg.burst_beats) {
          beats = cfg.burst_beats;
        } else if (wi_done && wi.beats_collected > 0) {
          beats = wi.beats_collected;
        }
        if (beats > 0 && channel_of(wid).request_burst(
                             static_cast<unsigned>(wid), beats)) {
          wi.beats_collected -= beats;
          wi.burst_pending = true;
        }
      }
      if (!wi_done || wi.beats_collected > 0 || wi.burst_pending ||
          wi.floats_in_beat > 0) {
        all_done = false;
      }
    }

    bool channels_idle = true;
    for (auto& ch : channels) {
      ch.tick();
      if (!ch.idle()) channels_idle = false;
    }
    if (cfg.trace != nullptr) {
      const int req = channels[0].active_requester();
      cfg.trace->channel.push_back(
          req < 0 ? '.' : static_cast<char>('0' + req % 10));
    }
    ++cycle;
    if (all_done && channels_idle) break;
    DWI_ASSERT(cycle < (std::uint64_t{1} << 40));  // runaway guard
  }

  result.cycles = cycle + cfg.pipeline_latency;
  result.outputs = 0;
  for (const auto& wi : wis) result.outputs += wi.produced;
  for (const auto& ch : channels) {
    result.bursts += ch.bursts_served();
    result.channel_bytes_per_cycle += ch.bytes_per_cycle();
  }
  return result;
}

}  // namespace

KernelSimResult simulate_kernel(const KernelSimConfig& cfg,
                                const ProducerFactory& make_producer) {
  DWI_REQUIRE(cfg.work_items >= 1 && cfg.work_items <= 64,
              "work-item count out of range");
  DWI_REQUIRE(cfg.initiation_interval >= 1, "II must be at least 1");
  DWI_REQUIRE(cfg.burst_beats >= 1, "burst must be at least one beat");
  DWI_REQUIRE(cfg.outputs_per_work_item >= 1, "empty workload");
  DWI_REQUIRE(cfg.memory_channels >= 1, "need at least one memory channel");

  // Producers are deterministic self-contained state machines; build
  // them on the calling thread so factories need no synchronization.
  std::vector<std::unique_ptr<ProducerModel>> producers;
  producers.reserve(cfg.work_items);
  for (unsigned w = 0; w < cfg.work_items; ++w) {
    producers.push_back(make_producer(w));
    DWI_REQUIRE(producers.back() != nullptr, "null producer");
  }

  const bool parallel =
      cfg.engine == SimEngine::kParallel ||
      (cfg.engine == SimEngine::kAuto && cfg.work_items > 1 &&
       exec::thread_count() > 1 &&
       cfg.outputs_per_work_item <= kAutoTapeQuotaLimit);

  std::vector<PrerunTape> tapes;
  if (parallel) {
    // Decoupled phase: every work-item's compute pipeline runs to
    // completion independently on the pool — the expensive real
    // numerics, sharded exactly like the paper's N hardware pipelines.
    tapes = exec::parallel_map(cfg.work_items, [&](std::size_t w) {
      return prerun_work_item(*producers[w], cfg.outputs_per_work_item);
    });
    for (unsigned w = 0; w < cfg.work_items; ++w) {
      producers[w] = std::make_unique<ReplayProducer>(tapes[w]);
    }
  }

  std::vector<WorkItem> wis;
  wis.reserve(cfg.work_items);
  for (unsigned w = 0; w < cfg.work_items; ++w) {
    wis.emplace_back(cfg.stream_depth);
    wis.back().producer = std::move(producers[w]);
  }
  return run_schedule(cfg, std::move(wis));
}

double extrapolate_seconds(const KernelSimResult& scaled,
                           std::uint64_t full_outputs, double clock_hz) {
  DWI_REQUIRE(scaled.outputs > 0, "cannot extrapolate an empty run");
  const double cycles_per_output =
      static_cast<double>(scaled.cycles) /
      static_cast<double>(scaled.outputs);
  return cycles_per_output * static_cast<double>(full_outputs) / clock_hz;
}

double eq1_theoretical_seconds(std::uint64_t total_outputs,
                               unsigned work_items, double clock_hz,
                               double rejection_rate) {
  return static_cast<double>(total_outputs) /
         (static_cast<double>(work_items) * clock_hz) *
         (1.0 + rejection_rate);
}

}  // namespace dwi::fpga
