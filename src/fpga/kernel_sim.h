// Cycle-level simulation of the paper's decoupled-work-item design on
// the FPGA (Fig 3): N fully pipelined work-items, each a GammaRNG
// producer streaming into its own Transfer unit, all Transfer units
// sharing the single device-memory channel.
//
// The simulator advances the whole design one clock at a time:
//   * each work-item's compute pipeline launches one MAINLOOP iteration
//     every II cycles (II = 1 with the paper's delayed-counter
//     workaround, > 1 for the naive-counter ablation), emitting a
//     validated float with the algorithm's acceptance probability —
//     computed by a pluggable ProducerModel running the *real* numerics;
//   * emission blocks when the hls::stream FIFO is full (backpressure);
//   * the Transfer unit drains one float per cycle, packs 16 into a
//     512-bit beat, and bursts `burst_beats` beats at a time through
//     the shared MemoryChannel (double-buffered, per Listing 4's
//     DEPENDENCE-false transfer buffer);
//   * the run ends when every quota is produced and flushed.
//
// The same machinery serves Table III's FPGA column (real producer),
// Fig 7 (dummy producer, transfers only), and the ablation benches
// (II > 1, single coupled pipeline, burst-size sweeps).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fpga/device.h"
#include "fpga/memory_channel.h"

namespace dwi::fpga {

/// One pipeline initiation of a work-item's compute function.
class ProducerModel {
 public:
  virtual ~ProducerModel() = default;
  /// Run one initiation; returns true and sets *value when this
  /// initiation emits a validated output (rejection methods return
  /// false on rejected iterations — the pipeline keeps running).
  virtual bool produce(float* value) = 0;
};

/// Always-valid producer for transfers-only experiments (Fig 7's
/// "dummy data") and FIFO/channel stress tests.
class DummyProducer final : public ProducerModel {
 public:
  bool produce(float* value) override {
    *value = static_cast<float>(counter_++);
    return true;
  }

 private:
  std::uint32_t counter_ = 0;
};

/// Accept/reject with fixed probability from a cheap LCG — for timing
/// tests that do not need the full numerics.
class BernoulliProducer final : public ProducerModel {
 public:
  BernoulliProducer(double acceptance, std::uint32_t seed);
  bool produce(float* value) override;

 private:
  std::uint32_t threshold_;
  std::uint64_t state_;
};

using ProducerFactory =
    std::function<std::unique_ptr<ProducerModel>(unsigned work_item)>;

/// Per-cycle schedule trace (Fig 3 visualization): one row of state
/// characters per work-item plus one for the memory channel.
///   work-item rows: 'C' initiation issued, '-' waiting for the next
///   initiation slot (II > 1), 'S' stalled on a full stream, '.' done;
///   channel row: the serving work-item's digit, '.' idle.
struct ScheduleTrace {
  std::vector<std::string> work_items;
  std::string channel;
};

/// How simulate_kernel uses the host.
///
/// The parallel engine exploits exactly the independence the paper's
/// design exploits (Fig 3): a work-item's compute pipeline is a
/// self-contained state machine whose produce() call sequence does not
/// depend on FIFO stalls or channel arbitration (stalls delay the
/// calls, they never reorder or re-argument them). So each work-item's
/// pipeline is *pre-run* to completion on a pool worker, recording its
/// accept/reject outcomes and emitted values, and the cycle-accurate
/// scheduling loop — the single shared-MemoryChannel synchronization
/// point — then replays the recordings serially. Cycle counts, stall
/// counts, output bytes and traces are bit-identical to kSerial for
/// every thread count (tests/test_exec.cpp cross-checks them).
enum class SimEngine {
  kAuto,      ///< parallel when DWI_THREADS > 1 and the tapes fit
  kSerial,    ///< the single-thread reference engine
  kParallel,  ///< force prerun + replay (even with one thread)
};

struct KernelSimConfig {
  unsigned work_items = 6;
  unsigned initiation_interval = 1;  ///< II of MAINLOOP
  unsigned pipeline_latency = 90;    ///< datapath fill depth (cycles)
  std::size_t stream_depth = 64;     ///< gammaStream FIFO depth
  unsigned burst_beats = 16;         ///< beats per memcpy burst (LTRANSF)
  std::uint64_t outputs_per_work_item = 100'000;
  MemoryChannelConfig channel{};
  /// Independent device-memory channels; work-items are assigned
  /// round-robin. The paper's board exposes one (the Fig 3/Fig 7
  /// bottleneck); >1 models the "further customizations of the memory
  /// controller" its conclusion calls for (bench/extension_scaling).
  unsigned memory_channels = 1;
  /// Listing 4's `#pragma HLS DEPENDENCE variable=transfBuf false`
  /// lets the tool double-buffer the burst buffer, so collection
  /// overlaps the in-flight burst. false = the conservative schedule
  /// the tool produces WITHOUT the pragma: collection stalls while a
  /// burst is in flight (bench/ablation_stream_depth quantifies it).
  bool transfer_double_buffered = true;
  bool record_outputs = false;       ///< keep the generated floats
  ScheduleTrace* trace = nullptr;    ///< optional Fig 3 trace sink
  /// Cycle-skipping fast-forward: when no pipeline changes occupancy
  /// state in the next k cycles (every compute pipeline is counting
  /// down its II or stalled on a full stream, every channel is a known
  /// number of cycles from its next dequeue/completion/refresh event),
  /// the clock advances by k in one step instead of k loop
  /// iterations. Cycle counts, stall counts, burst statistics and the
  /// Fig 2/3 schedule traces are bit-identical to the cycle-stepped
  /// loop (tests/test_block_rng.cpp pins this); set false to force the
  /// stepped reference engine.
  bool cycle_skipping = true;
  /// Host execution engine. Results are engine-invariant; only wall
  /// time changes. kAuto falls back to kSerial for single-thread
  /// configs and for quotas whose prerun tapes would not fit in
  /// memory (> ~8M outputs per work-item).
  SimEngine engine = SimEngine::kAuto;
};

struct KernelSimResult {
  std::uint64_t cycles = 0;          ///< total kernel cycles
  std::uint64_t outputs = 0;         ///< validated outputs written
  std::uint64_t attempts = 0;        ///< pipeline initiations
  std::uint64_t compute_stall_cycles = 0;  ///< FIFO-full backpressure
  std::uint64_t bursts = 0;
  double channel_bytes_per_cycle = 0.0;
  std::vector<float> outputs_data;   ///< when record_outputs

  double rejection_rate() const {
    return attempts == 0 ? 0.0
                         : 1.0 - static_cast<double>(outputs) /
                                     static_cast<double>(attempts);
  }
  double seconds_at(double clock_hz) const {
    return static_cast<double>(cycles) / clock_hz;
  }
  /// Achieved memory bandwidth in bytes/second.
  double bandwidth_bytes(double clock_hz) const {
    return channel_bytes_per_cycle * clock_hz;
  }
};

/// Run the design to completion.
KernelSimResult simulate_kernel(const KernelSimConfig& cfg,
                                const ProducerFactory& make_producer);

/// Linear extrapolation of a scaled simulation to the full workload
/// (steady-state argument, DESIGN.md §5): returns full-run seconds.
double extrapolate_seconds(const KernelSimResult& scaled,
                           std::uint64_t full_outputs, double clock_hz);

/// Eq (1): t ≈ numOutputs / (numWorkItems · f) · (1 + r), the paper's
/// compute-side approximation that ignores the memory bottleneck.
double eq1_theoretical_seconds(std::uint64_t total_outputs,
                               unsigned work_items, double clock_hz,
                               double rejection_rate);

}  // namespace dwi::fpga
