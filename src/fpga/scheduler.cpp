#include "fpga/scheduler.h"

#include <algorithm>
#include <limits>

#include "common/bits.h"
#include "common/error.h"

namespace dwi::fpga {

DependenceGraph::OpId DependenceGraph::add_operation(std::string name,
                                                     unsigned latency,
                                                     std::string resource) {
  DWI_REQUIRE(latency >= 1, "operations take at least one cycle");
  ops_.push_back(Op{std::move(name), latency, std::move(resource)});
  return ops_.size() - 1;
}

void DependenceGraph::add_dependence(OpId from, OpId to, unsigned distance) {
  DWI_REQUIRE(from < ops_.size() && to < ops_.size(),
              "dependence references unknown operation");
  edges_.push_back(Edge{from, to, distance});
}

bool DependenceGraph::feasible_at(unsigned ii) const {
  DWI_REQUIRE(ii >= 1, "II must be at least 1");
  // Bellman-Ford longest path on weights w(u→v) = latency(u) − II·dist.
  // A positive cycle means the recurrence cannot close within II.
  const std::size_t n = ops_.size();
  std::vector<long long> dist(n, 0);
  for (std::size_t round = 0; round <= n; ++round) {
    bool changed = false;
    for (const Edge& e : edges_) {
      const long long w = static_cast<long long>(ops_[e.from].latency) -
                          static_cast<long long>(ii) * e.distance;
      if (dist[e.from] + w > dist[e.to]) {
        dist[e.to] = dist[e.from] + w;
        changed = true;
        if (round == n) return false;  // still relaxing: positive cycle
      }
    }
    if (!changed) return true;
  }
  return true;
}

unsigned DependenceGraph::recurrence_mii() const {
  // Graphs here are small; a linear scan suffices and is exact.
  unsigned ii = 1;
  while (!feasible_at(ii)) {
    ++ii;
    DWI_ASSERT(ii <= 4096);
  }
  return ii;
}

unsigned DependenceGraph::resource_mii(
    const std::map<std::string, unsigned>& available) const {
  std::map<std::string, unsigned> uses;
  for (const Op& op : ops_) {
    if (!op.resource.empty()) ++uses[op.resource];
  }
  unsigned mii = 1;
  for (const auto& [res, count] : uses) {
    const auto it = available.find(res);
    const unsigned avail = it == available.end() ? count : it->second;
    DWI_REQUIRE(avail >= 1, "resource class with zero instances");
    mii = std::max(mii, ceil_div(count, avail));
  }
  return mii;
}

unsigned DependenceGraph::min_initiation_interval(
    const std::map<std::string, unsigned>& available) const {
  return std::max(recurrence_mii(), resource_mii(available));
}

std::vector<unsigned> DependenceGraph::schedule_at(unsigned ii) const {
  DWI_REQUIRE(feasible_at(ii), "no schedule exists at this II");
  const std::size_t n = ops_.size();
  std::vector<long long> start(n, 0);
  for (std::size_t round = 0; round < n + 1; ++round) {
    for (const Edge& e : edges_) {
      const long long w = static_cast<long long>(ops_[e.from].latency) -
                          static_cast<long long>(ii) * e.distance;
      start[e.to] = std::max(start[e.to], start[e.from] + w);
    }
  }
  // Shift so the earliest op starts at 0.
  long long lo = 0;
  for (long long s : start) lo = std::min(lo, s);
  std::vector<unsigned> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<unsigned>(start[i] - lo);
  }
  return out;
}

unsigned DependenceGraph::depth_at(unsigned ii) const {
  const auto sched = schedule_at(ii);
  unsigned depth = 0;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    depth = std::max(depth, sched[i] + ops_[i].latency);
  }
  return depth;
}

DependenceGraph gamma_mainloop_graph(unsigned counter_delay,
                                     bool uses_marsaglia_bray) {
  DWI_REQUIRE(counter_delay >= 1, "delay distance is at least 1");
  DependenceGraph g;

  // --- datapath (latencies: Virtex-7 floating-point operator depths) ---
  const auto mt0 = g.add_operation("MT0", 2);
  const auto transform = uses_marsaglia_bray
                             ? g.add_operation("MarsagliaBray", 28)
                             : g.add_operation("IcdfBitwise", 8);
  const auto mt1 = g.add_operation("MT1", 2);
  const auto reject = g.add_operation("GammaReject", 24);
  const auto mt2 = g.add_operation("MT2", 2);
  const auto correct = g.add_operation("Correct(pow)", 30);
  const auto select = g.add_operation("OutputSelect", 1);
  const auto write = g.add_operation("GuardedWrite", 1);

  g.add_dependence(mt0, transform);
  g.add_dependence(transform, reject);
  g.add_dependence(mt1, reject);
  g.add_dependence(reject, correct);
  g.add_dependence(mt2, correct);
  g.add_dependence(correct, select);
  g.add_dependence(select, write);

  // Twister state recurrences: each MT step consumes the state written
  // by the previous iteration — latency 2, distance 1... which would
  // force II = 2; the implementation splits read and update phases so
  // the recurrence closes in 1 cycle (Listing 3's structure).
  const auto mt0_state = g.add_operation("MT0.state", 1);
  const auto mt1_state = g.add_operation("MT1.state", 1);
  const auto mt2_state = g.add_operation("MT2.state", 1);
  g.add_dependence(mt0_state, mt0_state, 1);
  g.add_dependence(mt1_state, mt1_state, 1);
  g.add_dependence(mt2_state, mt2_state, 1);
  g.add_dependence(mt0_state, mt0);
  g.add_dependence(mt1_state, mt1);
  g.add_dependence(mt2_state, mt2);

  // --- loop-control recurrence (the Listing 2 problem) ----------------
  // guarded increment → exit compare → (back edge) next iteration's
  // increment: 2 cycles of latency around the loop. The compare reads
  // the counter through `counter_delay - 1` delay registers
  // (UpdateRegUI's prevCounter shift), i.e. total dependence distance
  // counter_delay: 1 for the naive counter (II = 2), breakId + 2 for
  // the workaround (II = 1 already at breakId = 0 — the paper's
  // "delay of one cycle").
  const auto increment = g.add_operation("counter++", 1);
  const auto compare = g.add_operation("exit-compare", 1);
  g.add_dependence(write, increment);  // guard arrives from the datapath
  g.add_dependence(increment, compare, counter_delay - 1);
  g.add_dependence(compare, increment, 1);  // loop back-edge

  return g;
}

DependenceGraph inter_kernel_chain_graph(
    const std::vector<unsigned>& stage_latencies, unsigned pipe_depth) {
  DWI_REQUIRE(!stage_latencies.empty(),
              "inter-kernel chain: need at least one stage");
  DWI_REQUIRE(pipe_depth >= 1, "inter-kernel chain: pipe depth must be >= 1");
  DependenceGraph g;
  std::vector<DependenceGraph::OpId> stages;
  stages.reserve(stage_latencies.size());
  for (std::size_t s = 0; s < stage_latencies.size(); ++s) {
    stages.push_back(
        g.add_operation("kernel" + std::to_string(s), stage_latencies[s]));
  }
  for (std::size_t s = 0; s + 1 < stages.size(); ++s) {
    // Token flow through the pipe, and the FIFO capacity recurrence:
    // the producer's (n + depth)-th token cannot be written until the
    // consumer has read token n.
    g.add_dependence(stages[s], stages[s + 1]);
    g.add_dependence(stages[s + 1], stages[s], pipe_depth);
  }
  return g;
}

}  // namespace dwi::fpga
