#include "fpga/memory_channel.h"

#include <algorithm>

namespace dwi::fpga {

MemoryChannel::MemoryChannel(MemoryChannelConfig cfg)
    : cfg_(cfg), queue_(cfg.queue_depth) {}

bool MemoryChannel::request_burst(unsigned requester, unsigned beats) {
  DWI_REQUIRE(beats >= 1, "empty burst");
  DWI_REQUIRE(requester < 64, "requester id out of range");
  return queue_.try_push(Burst{requester, beats});
}

double MemoryChannel::bytes_per_cycle() const {
  if (cycle_ == 0) return 0.0;
  return static_cast<double>(beats_transferred_) * 64.0 /
         static_cast<double>(cycle_);
}

}  // namespace dwi::fpga
