#include "fpga/memory_channel.h"

#include <algorithm>

namespace dwi::fpga {

MemoryChannel::MemoryChannel(MemoryChannelConfig cfg)
    : cfg_(cfg), queue_(cfg.queue_depth) {}

bool MemoryChannel::request_burst(unsigned requester, unsigned beats) {
  DWI_REQUIRE(beats >= 1, "empty burst");
  DWI_REQUIRE(requester < 64, "requester id out of range");
  return queue_.try_push(Burst{requester, beats});
}

void MemoryChannel::tick() {
  ++cycle_;
  // DRAM refresh: the channel is dead for refresh_cycles at every
  // interval boundary; an in-flight burst is stretched by pushing its
  // finish time out.
  if (cfg_.refresh_interval_cycles != 0 &&
      cycle_ % cfg_.refresh_interval_cycles == 0) {
    refresh_until_ = cycle_ + cfg_.refresh_cycles;
    if (in_flight_) finish_cycle_ += cfg_.refresh_cycles;
  }
  if (cycle_ < refresh_until_) {
    if (in_flight_) ++busy_cycles_;
    return;
  }
  if (!in_flight_ && !queue_.empty()) {
    current_ = queue_.pop();
    in_flight_ = true;
    // The dequeuing tick is the first busy cycle, so the burst
    // completes after turnaround + beats ticks in total.
    finish_cycle_ = cycle_ + cfg_.turnaround_cycles + current_.beats - 1;
  }
  if (in_flight_) {
    ++busy_cycles_;
    if (cycle_ >= finish_cycle_) {
      beats_transferred_ += current_.beats;
      data_cycles_ += current_.beats;
      ++bursts_served_;
      done_mask_ |= std::uint64_t{1} << current_.requester;
      in_flight_ = false;
    }
  }
}

std::uint64_t MemoryChannel::skippable_ticks() const {
  // A completion flag someone has not consumed yet makes the very next
  // cycle an event (the owning transfer unit will clear it).
  if (done_mask_ != 0) return 0;
  std::uint64_t safe = kInfiniteTicks;
  if (in_flight_) {
    // The tick where cycle_ reaches finish_cycle_ completes the burst
    // (and during a refresh window the finish has already been pushed
    // past the window), so everything before it is countdown.
    safe = finish_cycle_ - cycle_ - 1;
  } else if (!queue_.empty()) {
    // Next non-refresh tick dequeues; refresh ticks are pure waits.
    safe = cycle_ < refresh_until_ ? refresh_until_ - cycle_ - 1 : 0;
  }
  if (cfg_.refresh_interval_cycles != 0) {
    // The tick landing on an interval boundary mutates refresh state.
    const std::uint64_t to_boundary =
        cfg_.refresh_interval_cycles -
        (cycle_ % cfg_.refresh_interval_cycles);
    safe = std::min(safe, to_boundary - 1);
  }
  return safe;
}

void MemoryChannel::advance(std::uint64_t ticks) {
  DWI_ASSERT(ticks <= skippable_ticks());
  // Replays exactly what `ticks` tick() calls would do on a countdown
  // stretch: the clock moves, an in-flight burst accrues busy time,
  // nothing else changes.
  cycle_ += ticks;
  if (in_flight_) busy_cycles_ += ticks;
}

bool MemoryChannel::burst_done(unsigned requester) {
  const std::uint64_t bit = std::uint64_t{1} << requester;
  if (done_mask_ & bit) {
    done_mask_ &= ~bit;
    return true;
  }
  return false;
}

bool MemoryChannel::idle() const { return !in_flight_ && queue_.empty(); }

double MemoryChannel::bytes_per_cycle() const {
  if (cycle_ == 0) return 0.0;
  return static_cast<double>(beats_transferred_) * 64.0 /
         static_cast<double>(cycle_);
}

}  // namespace dwi::fpga
