#include "fpga/device.h"

namespace dwi::fpga {

const DeviceSpec& adm_pcie_7v3() {
  static const DeviceSpec spec{};
  return spec;
}

const DeviceSpec& aws_f1_vu9p() {
  static const DeviceSpec spec = [] {
    DeviceSpec s;
    s.slices = 295'560;   // 1,182,240 LUTs / 4 (7-series-equivalent units)
    s.dsps = 6'840;
    s.bram36 = 2'160;
    s.clock_hz = 250e6;   // typical SDAccel/Vitis kernel clock on F1
    s.mem_interface_bits = 512;
    s.ocl_region_fraction = 0.75;  // the F1 shell is relatively smaller
    s.route_ceiling_slice_util = 0.60;
    return s;
  }();
  return spec;
}

}  // namespace dwi::fpga
