#include "fpga/resource_model.h"

#include <cmath>

#include "common/bits.h"
#include "common/error.h"

namespace dwi::fpga {

namespace blocks {

// Calibration targets (Table II at the paper's work-item counts):
//   Config1/2 (6 WI): 53.43/52.75 % slices, 23.67 % DSP, 20.31 % BRAM
//   Config3/4 (8 WI): 52.92/52.72 % slices, 21.56 % DSP, 24.05 % BRAM
// Derived per-work-item budgets: ~3600 slices / 142 DSP / ~30 BRAM for
// the Marsaglia-Bray pipeline, ~2630 slices / 97 DSP / ~30 BRAM for the
// ICDF pipeline, on top of a 1/3-device static region. Individual block
// numbers below are sized from Xilinx 7-series operator footprints and
// scaled to meet those budgets.

BlockResources mersenne_twister(unsigned state_words) {
  BlockResources r;
  r.dsps = 0;
  // 624 × 32-bit state exceeds distributed RAM and maps to one BRAM36;
  // the 17-word MT(521) state stays in LUTRAM, and its narrower index
  // arithmetic slightly shrinks the control logic (Table II: Config2's
  // slice count is marginally below Config1's).
  if (state_words * 4 > 512) {
    r.luts = 560;  // twist/temper xors, shifts, masks, 10-bit index FSM
    r.ffs = 850;
    r.bram36 = 1;
  } else {
    r.luts = 520;  // same datapath, LUTRAM state, 5-bit index FSM
    r.ffs = 800;
    r.bram36 = 0;
  }
  return r;
}

BlockResources marsaglia_bray_unit() {
  // 2× uint2float, polar arithmetic, compare, logf + 1/x + sqrtf + muls.
  return {2800, 4500, 51, 0};
}

BlockResources icdf_bitwise_unit() {
  // LZD, segment extraction, 2 fixed-point MACs; the 744-entry
  // coefficient ROM (≈24 Kb) occupies one BRAM36.
  return {450, 700, 6, 1};
}

BlockResources box_muller_unit() {
  // sinf + cosf cores (polynomial/CORDIC hybrid), logf, sqrtf and the
  // angle scaling — the "heavy trigonometric math operations" of
  // §II-D2 that Marsaglia-Bray avoids.
  return {4200, 6500, 64, 0};
}

BlockResources gamma_unit() {
  // cube, x⁴ squeeze, exact test with two logf cores.
  return {2500, 4000, 56, 0};
}

BlockResources correction_unit() {
  // powf = logf + multiply + expf.
  return {1350, 2200, 35, 0};
}

BlockResources transfer_unit() {
  // 16-float packer, LTRANSF×512-bit double buffer, burst FSM.
  return {700, 1300, 0, 2};
}

BlockResources stream_fifo() { return {80, 120, 0, 1}; }

BlockResources axi_plumbing_per_work_item() {
  // 512-bit AXI master port, datamover FIFOs, interconnect share. The
  // wide FIFOs dominate per-work-item BRAM — which is why Table II's
  // BRAM utilization barely reacts to the Mersenne-Twister state size.
  return {1130, 2000, 0, 23};
}

BlockResources static_region() {
  // PCIe endpoint + DDR3 controller + OCL-region shell (≈ 1/3 of the
  // device, Table II footnote 2).
  return {107'400, 160'000, 12, 120};
}

}  // namespace blocks

std::uint32_t slices_from_luts_ffs(std::uint32_t luts, std::uint32_t ffs) {
  // Each slice: 4 LUTs + 8 FFs (Table II footnote 3); real designs
  // reach ~75 % packing, so effective capacity is 3 LUTs / 6 FFs.
  const double by_lut = static_cast<double>(luts) / 3.0;
  const double by_ff = static_cast<double>(ffs) / 6.0;
  return static_cast<std::uint32_t>(std::ceil(std::max(by_lut, by_ff)));
}

namespace {

BlockResources transform_block(rng::NormalTransform t) {
  switch (t) {
    case rng::NormalTransform::kMarsagliaBray:
      return blocks::marsaglia_bray_unit();
    case rng::NormalTransform::kIcdfBitwise:
    case rng::NormalTransform::kIcdfCuda:  // not built on FPGAs; proxy
      return blocks::icdf_bitwise_unit();
    case rng::NormalTransform::kBoxMuller:
      return blocks::box_muller_unit();
  }
  return blocks::icdf_bitwise_unit();
}

unsigned twisters_for(rng::NormalTransform t) {
  return rng::uniforms_per_attempt(t) + 2;  // + rejection + correction
}

BlockResources work_item_resources_transform(rng::NormalTransform t,
                                             const rng::MtParams& mt) {
  BlockResources r;
  r += blocks::mersenne_twister(mt.n) * twisters_for(t);
  r += transform_block(t);
  r += blocks::gamma_unit();
  r += blocks::correction_unit();
  r += blocks::transfer_unit();
  r += blocks::stream_fifo();
  r += blocks::axi_plumbing_per_work_item();
  return r;
}

BlockResources work_item_resources(const rng::AppConfig& config) {
  return work_item_resources_transform(config.fpga_transform, config.mt);
}

UtilizationReport report_for(const DeviceSpec& dev, const char* name,
                             const BlockResources& per_wi,
                             unsigned work_items) {
  UtilizationReport rep;
  rep.config_name = name;
  rep.work_items = work_items;
  rep.total = blocks::static_region() + per_wi * work_items;
  const std::uint32_t slices =
      slices_from_luts_ffs(rep.total.luts, rep.total.ffs);
  rep.slice_util = static_cast<double>(slices) / dev.slices;
  rep.dsp_util = static_cast<double>(rep.total.dsps) / dev.dsps;
  rep.bram_util = static_cast<double>(rep.total.bram36) / dev.bram36;
  rep.routable = rep.slice_util <= dev.route_ceiling_slice_util &&
                 rep.dsp_util <= 1.0 && rep.bram_util <= 1.0;
  return rep;
}

}  // namespace

UtilizationReport estimate_utilization(const DeviceSpec& dev,
                                       const rng::AppConfig& config,
                                       unsigned work_items) {
  DWI_REQUIRE(work_items >= 1, "need at least one work-item");
  return report_for(dev, config.name, work_item_resources(config),
                    work_items);
}

BlockResources stream_fifo_extra(std::size_t stream_depth) {
  // The calibrated stream_fifo() is one BRAM36 (4.5 KB), which covers
  // a 32-bit FIFO up to 1152 entries — comfortably past the default
  // depth 64. Deeper FIFOs add whole BRAM36s plus a little wider
  // read/write pointer logic per extra address bit.
  constexpr std::size_t kDefaultDepth = 64;
  constexpr std::size_t kEntriesPerBram = 4608 / 4;  // 36 Kb / 32-bit words
  BlockResources extra;
  if (stream_depth <= kDefaultDepth) return extra;
  const std::uint32_t brams = static_cast<std::uint32_t>(
      (stream_depth + kEntriesPerBram - 1) / kEntriesPerBram);
  extra.bram36 = brams > 1 ? brams - 1 : 0;
  for (std::size_t d = kDefaultDepth; d < stream_depth; d *= 2) {
    extra.luts += 8;  // one more pointer/occupancy-counter bit
    extra.ffs += 12;
  }
  return extra;
}

BlockResources transfer_unit_extra(unsigned burst_beats) {
  // transfer_unit()'s two BRAM36s hold the calibrated double buffer
  // (2 × LTRANSF × 512-bit with LTRANSF ≤ 18, ≈ 2.3 KB) alongside the
  // packer; a longer burst grows the double buffer by 128 bytes per
  // beat and the burst-length FSM counters by one bit per doubling.
  constexpr unsigned kDefaultBeats = 18;  // the larger calibrated LTRANSF
  constexpr unsigned kBytesPerBeat = 64;
  constexpr unsigned kBramBytes = 4608;
  BlockResources extra;
  if (burst_beats <= kDefaultBeats) return extra;
  const std::uint32_t buffer_bytes = 2u * burst_beats * kBytesPerBeat;
  const std::uint32_t default_bytes = 2u * kDefaultBeats * kBytesPerBeat;
  extra.bram36 = (buffer_bytes + kBramBytes - 1) / kBramBytes -
                 (default_bytes + kBramBytes - 1) / kBramBytes;
  for (unsigned b = kDefaultBeats; b < burst_beats; b *= 2) {
    extra.luts += 12;  // wider beat counter + address increment
    extra.ffs += 16;
  }
  return extra;
}

UtilizationReport estimate_utilization(const DeviceSpec& dev,
                                       const rng::AppConfig& config,
                                       const DesignPoint& point) {
  DWI_REQUIRE(point.work_items >= 1, "need at least one work-item");
  DWI_REQUIRE(point.stream_depth >= 1, "need a non-empty stream FIFO");
  DWI_REQUIRE(point.burst_beats >= 1, "need at least one beat per burst");
  BlockResources per_wi = work_item_resources(config);
  per_wi += stream_fifo_extra(point.stream_depth);
  per_wi += transfer_unit_extra(point.burst_beats);
  return report_for(dev, config.name, per_wi, point.work_items);
}

unsigned max_work_items(const DeviceSpec& dev, const rng::AppConfig& config) {
  unsigned n = 0;
  // §IV-C: "iteratively increased the number of parallel work-items in
  // steps of one, as far as the place-and-route process allowed."
  while (estimate_utilization(dev, config, n + 1).routable) {
    ++n;
    DWI_ASSERT(n < 1024);  // the device is finite
  }
  DWI_REQUIRE(n >= 1, "design does not fit the device at all");
  return n;
}

UtilizationReport estimate_utilization_transform(
    const DeviceSpec& dev, rng::NormalTransform transform,
    const rng::MtParams& mt, unsigned work_items) {
  DWI_REQUIRE(work_items >= 1, "need at least one work-item");
  return report_for(dev, rng::to_string(transform),
                    work_item_resources_transform(transform, mt),
                    work_items);
}

unsigned max_work_items_transform(const DeviceSpec& dev,
                                  rng::NormalTransform transform,
                                  const rng::MtParams& mt) {
  unsigned n = 0;
  while (estimate_utilization_transform(dev, transform, mt, n + 1)
             .routable) {
    ++n;
    DWI_ASSERT(n < 1024);
  }
  DWI_REQUIRE(n >= 1, "design does not fit the device at all");
  return n;
}

}  // namespace dwi::fpga
